package modeldata_test

// One benchmark per paper artifact: each BenchmarkF*/BenchmarkE* runs
// the registered experiment that regenerates the corresponding figure
// or quantitative claim, failing if the paper's qualitative shape does
// not hold. Micro-benchmarks for the hot substrate operations follow.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"modeldata/internal/assimilate"
	"modeldata/internal/engine"
	"modeldata/internal/experiments"
	"modeldata/internal/linalg"
	"modeldata/internal/mcdb"
	"modeldata/internal/rng"
	"modeldata/internal/sgd"
	"modeldata/internal/timeseries"
	"modeldata/internal/wildfire"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(context.Background(), id, 20140622)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verdict {
			b.Fatalf("%s failed to reproduce:\n%s", id, res)
		}
	}
}

func BenchmarkF1Extrapolation(b *testing.B)       { benchExperiment(b, "F1") }
func BenchmarkF2ResultCaching(b *testing.B)       { benchExperiment(b, "F2") }
func BenchmarkF3FractionalFactorial(b *testing.B) { benchExperiment(b, "F3") }
func BenchmarkF4MainEffects(b *testing.B)         { benchExperiment(b, "F4") }
func BenchmarkF5LatinHypercube(b *testing.B)      { benchExperiment(b, "F5") }
func BenchmarkE1TupleBundles(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2SimSQLChain(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3SplineDSGD(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4TimeAlignment(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5AlphaStar(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6Indemics(b *testing.B)            { benchExperiment(b, "E6") }
func BenchmarkE7RangeQueries(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8MSM(b *testing.B)                 { benchExperiment(b, "E8") }
func BenchmarkE9ParticleFilter(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10Kriging(b *testing.B)            { benchExperiment(b, "E10") }
func BenchmarkE11DesignSizes(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12Bifurcation(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13Gridfield(b *testing.B)          { benchExperiment(b, "E13") }
func BenchmarkE14GPScreening(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15PolicyOptimization(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16StochasticKriging(b *testing.B)  { benchExperiment(b, "E16") }
func BenchmarkE17DemandQueueRC(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkA1KaczmarzStep(b *testing.B)        { benchExperiment(b, "A1") }
func BenchmarkA2CommonRandomNumbers(b *testing.B) { benchExperiment(b, "A2") }
func BenchmarkA3CyclingReuse(b *testing.B)        { benchExperiment(b, "A3") }
func BenchmarkA4SelfJoinParallel(b *testing.B)    { benchExperiment(b, "A4") }

// --- substrate micro-benchmarks ---

func BenchmarkEngineHashJoin(b *testing.B) {
	left := engine.MustNewTable("l", engine.Schema{
		{Name: "k", Type: engine.TypeInt}, {Name: "v", Type: engine.TypeFloat},
	})
	right := engine.MustNewTable("r", engine.Schema{
		{Name: "k", Type: engine.TypeInt}, {Name: "w", Type: engine.TypeFloat},
	})
	for i := 0; i < 10000; i++ {
		left.MustInsert(engine.Int(int64(i)), engine.Float(float64(i)))
		right.MustInsert(engine.Int(int64(i%1000)), engine.Float(float64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := engine.EquiJoin(left, right, "k", "k")
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() != 10000 {
			b.Fatalf("join rows = %d", out.Len())
		}
	}
}

func BenchmarkEngineGroupBy(b *testing.B) {
	t := engine.MustNewTable("t", engine.Schema{
		{Name: "g", Type: engine.TypeInt}, {Name: "v", Type: engine.TypeFloat},
	})
	for i := 0; i < 20000; i++ {
		t.MustInsert(engine.Int(int64(i%100)), engine.Float(float64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := engine.GroupBy(t, []string{"g"}, []engine.Aggregate{
			{Fn: engine.AggSum, Col: "v", As: "s"},
		})
		if err != nil || out.Len() != 100 {
			b.Fatalf("groups = %d err = %v", out.Len(), err)
		}
	}
}

func BenchmarkBundleEstimate(b *testing.B) {
	db, err := experiments.SBPDatabase(200)
	if err != nil {
		b.Fatal(err)
	}
	bundles, err := db.InstantiateBundled(500, 1)
	if err != nil {
		b.Fatal(err)
	}
	bt := bundles["sbp_data"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Estimate("sbp", engine.AggAvg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThomasSolve(b *testing.B) {
	n := 100000
	tri := &linalg.Tridiagonal{
		Sub: make([]float64, n-1), Diag: make([]float64, n), Super: make([]float64, n-1),
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		tri.Diag[i] = 4
		d[i] = math.Sin(float64(i))
	}
	for i := 0; i < n-1; i++ {
		tri.Sub[i], tri.Super[i] = 1, 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tri.SolveThomas(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDSGDEpoch(b *testing.B) {
	n := 30000
	tri := &linalg.Tridiagonal{
		Sub: make([]float64, n-1), Diag: make([]float64, n), Super: make([]float64, n-1),
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		tri.Diag[i] = 4
		d[i] = math.Cos(float64(i) / 7)
	}
	for i := 0; i < n-1; i++ {
		tri.Sub[i], tri.Super[i] = 1, 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sgd.SolveDistributed(tri, d, sgd.Options{
			Epochs: 1, Kaczmarz: true, Seed: uint64(i), Workers: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplineFitAndEval(b *testing.B) {
	n := 5000
	ts := make([]float64, n)
	vs := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)
		vs[i] = math.Sin(float64(i) / 50)
	}
	s, err := timeseries.FromSlices("bench", ts, vs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := timeseries.NewSpline(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sp.At(1234.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParticleFilterStep(b *testing.B) {
	p := wildfire.Params{SpreadProb: 0.25, BurnSteps: 5, IntensityMean: 1, IntensityStd: 0.2}
	sm := wildfire.Sensors{Block: 4, Ambient: 20, FireTemp: 50, Noise: 5}
	init := func(r *rng.Stream) *wildfire.State {
		s, _ := wildfire.NewState(16, 16)
		_ = s.Ignite(8, 8, 1)
		return s
	}
	r := rng.New(3)
	truth := init(r)
	truth, err := wildfire.StepFire(truth, p, r)
	if err != nil {
		b.Fatal(err)
	}
	y := sm.Observe(truth, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := assimilate.NewFilter(wildfire.PriorModel(p, sm, init), 100, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Step(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVGNormal(b *testing.B) {
	vg := mcdb.NormalVG()
	params := engine.Row{engine.Float(120), engine.Float(15)}
	r := rng.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vg(params, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRNGStream(b *testing.B) {
	r := rng.New(1)
	b.Run("Uint64", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink = r.Uint64()
		}
		_ = sink
	})
	b.Run("StdNormal", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink = r.StdNormal()
		}
		_ = sink
	})
	b.Run("Poisson50", func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			sink = r.Poisson(50)
		}
		_ = sink
	})
}

// TestExperimentRegistry documents the facade's experiment listing.
func TestExperimentRegistry(t *testing.T) {
	ids := experiments.IDs()
	if got := fmt.Sprint(len(ids), " ", ids[0], " ", ids[len(ids)-1]); got != "26 F1 A4" {
		t.Fatalf("registry = %s", got)
	}
}
