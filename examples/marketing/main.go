// Marketing integration (§3.1): Bonabeau's WSC 2013 argument, built.
// Four disparate data sources — survey data (customer properties),
// media/sales data (marketing effectiveness), product reports (the
// offer), and social tracking (word-of-mouth) — cannot be joined by
// ordinary integration because they describe different granularities.
// An agent-based simulation of synthetic personas brings them together:
// each data source pins down part of the model, calibration (method of
// simulated moments) matches the rest, and the calibrated model then
// answers what-if questions no single dataset could.
package main

import (
	"fmt"
	"log"
	"math"

	"modeldata/internal/calibrate"
	"modeldata/internal/rng"
)

const (
	nPersonas = 300
	weeks     = 30
	price     = 1.0 // from product/industry reports
)

// personaStats simulates the persona ABS at θ = (mediaEffect,
// womEffect) and returns the statistic vector the data sources measure:
// (mean weekly sales in weeks 1–10, mean weekly sales in weeks 21–30,
// final awareness fraction, mean weekly word-of-mouth events). The
// early/late split matters for identifiability: media buys early
// awareness while word-of-mouth compounds late, so the two effects
// leave different time signatures.
func personaStats(theta []float64, r *rng.Stream) []float64 {
	mediaEffect := math.Abs(theta[0])
	womEffect := math.Abs(theta[1])

	// Survey data: initial awareness and perception distributions.
	aware := make([]bool, nPersonas)
	perception := make([]float64, nPersonas)
	for i := range perception {
		aware[i] = r.Bool(0.1)
		perception[i] = 0.3 + 0.4*r.Float64()
	}
	// Social tracking data: a small-world contact structure.
	friends := make([][]int, nPersonas)
	for i := range friends {
		for k := 1; k <= 3; k++ {
			friends[i] = append(friends[i], (i+k)%nPersonas)
		}
		friends[i] = append(friends[i], r.Intn(nPersonas))
	}

	var earlySales, lateSales, totalWOM float64
	for w := 0; w < weeks; w++ {
		// Media (from media-spend data): converts unaware personas.
		for i := range aware {
			if !aware[i] && r.Bool(mediaEffect) {
				aware[i] = true
			}
		}
		// Purchases and word-of-mouth.
		weekSales, weekWOM := 0.0, 0.0
		for i := range aware {
			if !aware[i] {
				continue
			}
			pBuy := perception[i] * math.Exp(-price/2) * 0.3
			if r.Bool(pBuy) {
				weekSales++
				// Buyers talk: each contact hears with probability
				// womEffect and becomes aware / warms up.
				for _, f := range friends[i] {
					if r.Bool(womEffect) {
						weekWOM++
						aware[f] = true
						perception[f] += 0.05 * (1 - perception[f])
					}
				}
			}
		}
		if w < 10 {
			earlySales += weekSales
		} else if w >= 20 {
			lateSales += weekSales
		}
		totalWOM += weekWOM
	}
	awareFrac := 0.0
	for _, a := range aware {
		if a {
			awareFrac++
		}
	}
	return []float64{
		earlySales / 10,
		lateSales / 10,
		awareFrac / nPersonas,
		totalWOM / weeks,
	}
}

func main() {
	log.SetFlags(0)
	trueTheta := []float64{0.04, 0.3} // the real market's hidden dynamics

	// "Observed" data: what the brand tracker, sales feed, and social
	// tracker actually measured.
	r := rng.New(77)
	observed := make([][]float64, 24)
	for i := range observed {
		observed[i] = personaStats(trueTheta, r.Split())
	}
	fmt.Printf("observed: %.1f early / %.1f late sales per week, %.0f%% awareness, %.1f WOM events/week\n",
		observed[0][0], observed[0][1], 100*observed[0][2], observed[0][3])

	// Calibrate the persona model to match all three data sources at
	// once — the §3.1 "key is then to calibrate the model ... to
	// approximately match existing datasets".
	problem := &calibrate.MSM{
		Observed: observed,
		Simulate: personaStats,
		SimReps:  25,
		Seed:     5,
	}
	if err := problem.EstimateOptimalWeight(); err != nil {
		log.Fatal(err)
	}
	res, err := problem.Calibrate([]float64{0.1, 0.1}, calibrate.NMOptions{MaxEvals: 250, Tol: 1e-9})
	if err != nil {
		log.Fatal(err)
	}
	theta := []float64{math.Abs(res.X[0]), math.Abs(res.X[1])}
	fmt.Printf("calibrated θ̂ = (media %.3f, word-of-mouth %.3f); true θ = (%.3f, %.3f)\n",
		theta[0], theta[1], trueTheta[0], trueTheta[1])

	// The integrated model forecasts what the datasets alone cannot:
	// the sales impact of touch-point changes.
	base := personaStats(theta, rng.New(9))
	doubleMedia := personaStats([]float64{theta[0] * 2, theta[1]}, rng.New(9))
	doubleWOM := personaStats([]float64{theta[0], math.Min(theta[1]*2, 0.95)}, rng.New(9))
	fmt.Println()
	fmt.Println("what-if forecasts from the calibrated persona model (late-window sales/week):")
	fmt.Printf("  baseline:             %.1f\n", base[1])
	fmt.Printf("  double media spend:   %.1f (%+.0f%%)\n",
		doubleMedia[1], 100*(doubleMedia[1]/base[1]-1))
	fmt.Printf("  double word-of-mouth: %.1f (%+.0f%%)\n",
		doubleWOM[1], 100*(doubleWOM[1]/base[1]-1))
	fmt.Println()
	fmt.Println("No single dataset — sales, survey, or social — could answer these;")
	fmt.Println("the ABS is the integration vehicle (Bonabeau, §3.1).")
}
