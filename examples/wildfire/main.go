// Wildfire data assimilation (§3.2): a stochastic fire spreads over a
// grid while noisy temperature sensors stream readings; a particle
// filter fuses the DEVS-FIRE-style simulation with the sensor data and
// tracks the true fire front far better than an unassimilated
// simulation. The demo prints ASCII maps of truth, the free-running
// simulation, and the filter's consensus estimate.
package main

import (
	"fmt"
	"log"
	"strings"

	"modeldata/internal/assimilate"
	"modeldata/internal/rng"
	"modeldata/internal/wildfire"
)

const (
	width  = 20
	height = 12
	steps  = 12
)

func render(s *wildfire.State) string {
	var b strings.Builder
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			c, _ := s.At(x, y)
			switch c {
			case wildfire.Burning:
				b.WriteByte('*')
			case wildfire.Burned:
				b.WriteByte('#')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func main() {
	log.SetFlags(0)
	params := wildfire.Params{
		SpreadProb: 0.3, WindX: 0.8, BurnSteps: 6,
		IntensityMean: 1, IntensityStd: 0.2,
	}
	sensors := wildfire.Sensors{Block: 4, Ambient: 20, FireTemp: 50, Noise: 5}
	ignite := func(r *rng.Stream) *wildfire.State {
		s, err := wildfire.NewState(width, height)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Ignite(4, height/2, 1); err != nil {
			log.Fatal(err)
		}
		return s
	}

	// The "real" fire and its sensor stream.
	r := rng.New(42)
	truth := ignite(r)

	// The assimilating filter and an unassimilated control simulation.
	filter, err := assimilate.NewFilter(wildfire.PriorModel(params, sensors, ignite), 200, 7)
	if err != nil {
		log.Fatal(err)
	}
	free := ignite(rng.New(99))
	rFree := rng.New(100)

	var pfErrTotal, freeErrTotal int
	var lastConsensus *wildfire.State
	for step := 1; step <= steps; step++ {
		truth, err = wildfire.StepFire(truth, params, r)
		if err != nil {
			log.Fatal(err)
		}
		reading := sensors.Observe(truth, r)

		particles, err := filter.Step(reading)
		if err != nil {
			log.Fatal(err)
		}
		lastConsensus, err = wildfire.ConsensusState(particles)
		if err != nil {
			log.Fatal(err)
		}
		pfErrTotal += wildfire.CellError(lastConsensus, truth)

		free, err = wildfire.StepFire(free, params, rFree)
		if err != nil {
			log.Fatal(err)
		}
		freeErrTotal += wildfire.CellError(free, truth)
	}

	fmt.Printf("after %d steps (burning=*, burned=#, unburned=.):\n\n", steps)
	fmt.Println("true fire:")
	fmt.Println(render(truth))
	fmt.Println("free-running simulation (no sensors):")
	fmt.Println(render(free))
	fmt.Println("particle-filter consensus (simulation + sensors):")
	fmt.Println(render(lastConsensus))
	fmt.Printf("mean cell error per step: assimilated %.1f vs free-running %.1f\n",
		float64(pfErrTotal)/steps, float64(freeErrTotal)/steps)
}
