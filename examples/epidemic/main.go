// Epidemic intervention (§2.4): the Indemics division of labour. The
// compute side advances a contact-network SEIR epidemic day by day; at
// each observation time a relational snapshot is queried with SQL-style
// operators, and Algorithm 1 of the paper — vaccinate all preschoolers
// once more than 1% of them are infectious — is applied interactively.
package main

import (
	"fmt"
	"log"

	"modeldata/internal/engine"
	"modeldata/internal/indemics"
	"modeldata/internal/rng"
)

func main() {
	log.SetFlags(0)

	build := func() *indemics.Sim {
		net, err := indemics.GeneratePopulation(indemics.PopulationConfig{
			N: 5000, MeanDegree: 8, Rewire: 0.1,
		}, rng.New(11))
		if err != nil {
			log.Fatal(err)
		}
		sim, err := indemics.NewSim(net, indemics.Params{
			Beta: 0.25, LatentDays: 2, InfectiousDays: 4,
		}, 13)
		if err != nil {
			log.Fatal(err)
		}
		sim.Seed(10)
		return sim
	}

	// Baseline: no intervention.
	baseline := build()
	if err := baseline.Run(120, nil); err != nil {
		log.Fatal(err)
	}

	// Intervention: Algorithm 1 expressed in SQL, plus a running
	// per-day query trace against the relational snapshot.
	policy, firedDay := indemics.VaccinatePreschoolersSQL(0.01)
	managed := build()
	err := managed.Run(120, func(day int, db *engine.Database, sim *indemics.Sim) error {
		if day%20 == 0 {
			infected, err := db.QueryScalar(`SELECT COUNT(*) FROM person WHERE state = 'I'`)
			if err != nil {
				return err
			}
			fmt.Printf("day %3d: %4.0f infectious (SQL over relational snapshot)\n", day, infected)
		}
		return policy(day, db, sim)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("attack rate without intervention: %.1f%%\n", 100*baseline.AttackRate())
	fmt.Printf("attack rate with Algorithm 1:     %.1f%%\n", 100*managed.AttackRate())
	if *firedDay >= 0 {
		fmt.Printf("preschool vaccination triggered on day %d\n", *firedDay)
	} else {
		fmt.Println("the 1% preschool trigger never fired")
	}
	counts := managed.Counts()
	fmt.Printf("final states: S=%d E=%d I=%d R=%d V=%d\n",
		counts[indemics.Susceptible], counts[indemics.Exposed],
		counts[indemics.Infectious], counts[indemics.Recovered],
		counts[indemics.Vaccinated])
}
