// Splash-style composite modeling (§2.2–2.3 + §4.2): two independently
// authored models — a fine-grained demand model and a coarse-grained
// clinic model — are loosely coupled by dataset exchange. The platform
// detects the timescale mismatch and synthesizes the alignment
// transformation, the experiment manager sweeps a factorial design over
// the unified parameter view, and the result-caching optimizer chooses
// how often to re-run the expensive upstream model.
//
// With -chaos, the demand→clinic alignment job additionally runs on the
// fault-tolerant MapReduce runtime under injected task crashes and
// straggler latency, demonstrating the Hadoop property the paper's
// Splash deployment relies on: tasks die and lag, the job's output does
// not change by a single bit.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"modeldata/internal/composite"
	"modeldata/internal/doe"
	"modeldata/internal/mapreduce"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
	"modeldata/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	chaos := flag.Bool("chaos", false, "re-run the time-alignment job under injected crashes and latency")
	flag.Parse()

	// --- Model 1: hourly patient-demand model (tick = 1 hour). ---
	demand := &composite.Model{
		Name: "demand",
		Inputs: []composite.PortSpec{
			{Name: "base_rate", Kind: composite.KindScalar},
		},
		Outputs: []composite.PortSpec{
			{Name: "arrivals", Kind: composite.KindSeries, TickDelta: 1},
		},
		Run: func(in map[string]composite.Dataset, r *rng.Stream) (map[string]composite.Dataset, error) {
			rate := in["base_rate"].Scalar
			ts := make([]float64, 24*14)
			vs := make([]float64, len(ts))
			for i := range ts {
				ts[i] = float64(i)
				vs[i] = float64(r.Poisson(rate * diurnal(i%24)))
			}
			s, err := timeseries.FromSlices("arrivals", ts, vs)
			if err != nil {
				return nil, err
			}
			return map[string]composite.Dataset{"arrivals": composite.SeriesData("arrivals", s)}, nil
		},
	}

	// --- Model 2: daily clinic staffing model (tick = 24 hours). ---
	clinic := &composite.Model{
		Name: "clinic",
		Inputs: []composite.PortSpec{
			{Name: "load", Kind: composite.KindSeries, TickDelta: 24, Agg: timeseries.AggSum},
			{Name: "staff", Kind: composite.KindScalar},
		},
		Outputs: []composite.PortSpec{
			{Name: "overload", Kind: composite.KindScalar},
		},
		Run: func(in map[string]composite.Dataset, r *rng.Stream) (map[string]composite.Dataset, error) {
			capacityPerDay := in["staff"].Scalar * 20
			over := 0.0
			for _, p := range in["load"].Series.Points {
				if p.V > capacityPerDay {
					over += p.V - capacityPerDay
				}
			}
			return map[string]composite.Dataset{"overload": composite.ScalarData("overload", over)}, nil
		},
	}

	c := composite.NewComposite()
	if err := c.Register(demand); err != nil {
		log.Fatal(err)
	}
	if err := c.Register(clinic); err != nil {
		log.Fatal(err)
	}
	desc, err := c.Connect("demand", "arrivals", "clinic", "load")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mismatch detected; synthesized transformation: %s\n\n", desc)

	// --- Experiment manager (§4.2): unified parameter view. ---
	mgr := composite.NewManager(c)
	if err := mgr.AddParameter("demand", "base_rate", 2, 6); err != nil {
		log.Fatal(err)
	}
	if err := mgr.AddParameter("clinic", "staff", 2, 8); err != nil {
		log.Fatal(err)
	}
	if err := mgr.SetOutput("clinic", "overload"); err != nil {
		log.Fatal(err)
	}
	design, err := doe.FullFactorial(2)
	if err != nil {
		log.Fatal(err)
	}
	responses, err := mgr.RunDesign(design.Points(), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2² factorial over (base_rate, staff):")
	for i, run := range design.Runs {
		fmt.Printf("  rate=%+d staff=%+d → weekly overload %.0f patients\n",
			run[0], run[1], responses[i])
	}
	effects, err := doe.MainEffects(design, responses)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("main effects: base_rate %+.0f, staff %+.0f\n\n",
		effects[0].Effect, effects[1].Effect)

	// --- Input-file synthesis (§4.2's templating mechanism). ---
	input, err := mgr.SynthesizeInput(
		"rate = ${demand.base_rate}\nstaff = ${clinic.staff}\n",
		[]float64{4, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized model input file:\n%s\n", input)

	// --- Result caching (§2.3) for the Monte Carlo study. ---
	two := composite.TwoStage{
		M1: func(r *rng.Stream) float64 {
			// The expensive upstream model reduced to its scalar
			// summary (weekly arrivals).
			total := 0.0
			for i := 0; i < 24*14; i++ {
				total += float64(r.Poisson(4 * diurnal(i%24)))
			}
			return total
		},
		M2: func(y1 float64, r *rng.Stream) float64 {
			capacity := 5.0 * 20 * 14
			over := y1 - capacity + r.Normal(0, 20)
			if over < 0 {
				over = 0
			}
			return over
		},
		C1: 50, C2: 1,
	}
	stats, err := two.PilotEstimate(200, 7)
	if err != nil {
		log.Fatal(err)
	}
	alpha := composite.OptimalAlpha(stats, 0.01)
	fmt.Printf("pilot statistics: %v\n", stats)
	fmt.Printf("optimal replication fraction α* = %.3f  (efficiency gain vs α=1: %.2f×)\n",
		alpha, composite.GAlpha(1, stats)/composite.GAlpha(alpha, stats))
	run, err := two.RunBudgeted(5000, alpha, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget 5000 work units: %d M1 runs reused across %d M2 runs; θ̂ = %.1f\n",
		run.M1Runs, run.M2Runs, run.Theta)

	if *chaos {
		if err := chaosAlignment(); err != nil {
			log.Fatal(err)
		}
	}
}

// chaosAlignment re-runs a demand-curve interpolation job on the
// MapReduce runtime under a fault injector that crashes ~30% of task
// attempts and stalls ~20% of them, with a 6-retry budget and
// speculative re-execution of stragglers, then verifies the output is
// bit-identical to the failure-free run.
func chaosAlignment() error {
	fmt.Println("\n--- chaos mode: alignment under injected faults ---")
	r := rng.New(20140622)
	ts := make([]float64, 24*14)
	vs := make([]float64, len(ts))
	for i := range ts {
		ts[i] = float64(i)
		vs[i] = float64(r.Poisson(4 * diurnal(i%24)))
	}
	arrivals, err := timeseries.FromSlices("arrivals", ts, vs)
	if err != nil {
		return err
	}
	sp, err := timeseries.NewSpline(arrivals)
	if err != nil {
		return err
	}
	var targets []float64
	for t := 0.25; t < 24*14-1; t += 0.25 {
		targets = append(targets, t)
	}

	clean, _, err := timeseries.ParallelInterpolate(sp, targets, mapreduce.Config{Mappers: 8, Reducers: 4})
	if err != nil {
		return err
	}
	faulty, stats, err := timeseries.ParallelInterpolate(sp, targets, mapreduce.Config{
		Mappers: 8, Reducers: 4,
		MaxRetries:        6,
		SpeculativeFactor: 4,
		Injector: parallel.Chain{
			parallel.PanicInjector{Prob: 0.3, Seed: 7},
			parallel.LatencyInjector{Prob: 0.2, Delay: 2 * time.Millisecond, Seed: 8},
		},
	})
	if err != nil {
		return err
	}
	for i, p := range faulty.Points {
		if p != clean.Points[i] {
			return fmt.Errorf("chaos run diverged at t=%v: %v vs %v", p.T, p.V, clean.Points[i].V)
		}
	}
	fmt.Printf("job survived injected faults: %s\n", stats)
	fmt.Printf("output identical to failure-free run across %d aligned points ✓\n", len(faulty.Points))
	return nil
}

// diurnal shapes hourly demand: quiet nights, busy mid-day.
func diurnal(hour int) float64 {
	switch {
	case hour < 6:
		return 0.3
	case hour < 10:
		return 1.2
	case hour < 18:
		return 1.6
	default:
		return 0.8
	}
}
