// Traffic calibration (§1 + §3.1): the paper's motivating example. An
// agent-based traffic model encodes what traffic experts know — drivers
// brake when someone appears in front and accelerate to a comfortable
// speed on a clear road — and data is used to *calibrate* it: the
// method of simulated moments recovers the behavioral parameters from
// observed mean-speed statistics alone.
package main

import (
	"fmt"
	"log"
	"math"

	"modeldata/internal/calibrate"
	"modeldata/internal/experiments"
	"modeldata/internal/rng"
)

func main() {
	log.SetFlags(0)
	trueTheta := []float64{0.3, 0.6} // (acceleration gain, braking gain)

	// "Real-world" traffic observations: moment vectors of the mean
	// speed series from the true behavioral parameters.
	r := rng.New(2024)
	observed := make([][]float64, 30)
	for i := range observed {
		observed[i] = experiments.TrafficMoments(trueTheta, r.Split())
	}
	fmt.Printf("observed mean speed ≈ %.3f, variance ≈ %.4f, lag-1 cov ≈ %.4f\n",
		observed[0][0], observed[0][1], observed[0][2])

	problem := &calibrate.MSM{
		Observed: observed,
		Simulate: experiments.TrafficMoments,
		SimReps:  30,
		Seed:     7,
	}
	if err := problem.EstimateOptimalWeight(); err != nil {
		log.Fatal(err)
	}

	// Calibrate from a deliberately wrong starting point.
	start := []float64{0.1, 0.2}
	res, err := problem.Calibrate(start, calibrate.NMOptions{MaxEvals: 400, Tol: 1e-10, Step: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true θ        = (accel %.2f, brake %.2f)\n", trueTheta[0], trueTheta[1])
	fmt.Printf("starting θ    = (accel %.2f, brake %.2f)\n", start[0], start[1])
	fmt.Printf("calibrated θ̂  = (accel %.3f, brake %.3f)   J(θ̂) = %.4f after %d simulated evaluations\n",
		math.Abs(res.X[0]), math.Abs(res.X[1]), res.F, res.Evals)

	jTrue, err := problem.J(trueTheta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for reference, J(true θ) = %.4f\n", jTrue)
	fmt.Println()
	fmt.Println("Note: J(θ̂) ≈ J(true θ) although θ̂ ≠ true θ — the moment signature has a")
	fmt.Println("ridge along which acceleration and braking trade off. This is exactly the")
	fmt.Println("calibration-identifiability hazard §3.1 warns about (Shi & Brooks [51]):")
	fmt.Println("multiple calibrations are 'acceptable' yet can differ in their predictions.")

	// What the calibrated model predicts for a what-if question the
	// data alone cannot answer: more cautious drivers (higher braking).
	cautious := []float64{math.Abs(res.X[0]), math.Abs(res.X[1]) * 1.5}
	m := experiments.TrafficMoments(cautious, rng.New(3))
	base := experiments.TrafficMoments([]float64{math.Abs(res.X[0]), math.Abs(res.X[1])}, rng.New(3))
	fmt.Printf("what-if (50%% stronger braking): mean speed %.3f → %.3f\n", base[0], m[0])
}
