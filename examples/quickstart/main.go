// Quickstart: the paper's §2.1 Monte Carlo Database example, end to
// end. We declare the SBP_DATA stochastic table —
//
//	CREATE TABLE SBP_DATA(PID, GENDER, SBP) AS
//	  FOR EACH p in PATIENTS
//	  WITH SBP AS Normal (SELECT s.MEAN, s.STD FROM SBP_PARAM s)
//	  SELECT p.PID, p.GENDER, b.VALUE FROM SBP b
//
// — realize it with tuple-bundle execution, and ask distributional
// questions of the query results.
package main

import (
	"fmt"
	"log"

	"modeldata/internal/engine"
	"modeldata/internal/mcdb"
	"modeldata/internal/rng"
)

func main() {
	log.SetFlags(0)

	// 1. Deterministic base tables.
	base := engine.NewDatabase()
	patients := engine.MustNewTable("patients", engine.Schema{
		{Name: "pid", Type: engine.TypeInt},
		{Name: "gender", Type: engine.TypeString},
	})
	for i := 0; i < 40; i++ {
		g := "F"
		if i%2 == 0 {
			g = "M"
		}
		patients.MustInsert(engine.Int(int64(i)), engine.Str(g))
	}
	base.Put(patients)

	param := engine.MustNewTable("sbp_param", engine.Schema{
		{Name: "mean", Type: engine.TypeFloat},
		{Name: "std", Type: engine.TypeFloat},
	})
	param.MustInsert(engine.Float(120), engine.Float(15))
	base.Put(param)

	// 2. The stochastic table: FOR EACH patient, SBP ~ Normal(mean, std)
	//    with parameters read by a query over SBP_PARAM.
	db := mcdb.New(base)
	err := db.AddSpec(&mcdb.TableSpec{
		Name: "sbp_data",
		Schema: engine.Schema{
			{Name: "pid", Type: engine.TypeInt},
			{Name: "gender", Type: engine.TypeString},
			{Name: "sbp", Type: engine.TypeFloat},
		},
		ForEach: "patients",
		Params: func(db *engine.Database, outer engine.Row) (engine.Row, error) {
			p, err := db.Get("sbp_param")
			if err != nil {
				return nil, err
			}
			return p.Rows[0], nil
		},
		VG:            mcdb.NormalVG(),
		UncertainCols: []int{2},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. One realization is an ordinary database instance.
	inst, err := db.Instantiate(rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := inst.Get("sbp_data")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one realization of SBP_DATA:")
	fmt.Println(engine.Limit(tbl, 5))

	// 4. Monte Carlo with tuple bundles: the plan executes once, each
	//    uncertain cell carries its 1000 instantiations.
	bundles, err := db.InstantiateBundled(1000, 7)
	if err != nil {
		log.Fatal(err)
	}
	bt := bundles["sbp_data"]

	// "What is the average SBP of male patients?"
	males := bt.FilterDet(func(det engine.Row) bool { return det[1].AsString() == "M" })
	maleMeans, err := males.Estimate("sbp", engine.AggAvg, nil)
	if err != nil {
		log.Fatal(err)
	}
	est, err := mcdb.Summarize(maleMeans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("male mean SBP across 1000 Monte Carlo worlds: %v\n", est)

	// "How likely is a hypertension count above 8?"
	counts, err := bt.Estimate("sbp", engine.AggCount, func(_ engine.Row, unc []float64) bool {
		return unc[0] > 140
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := mcdb.ThresholdProbability(counts, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(more than 8 hypertensive patients) ≈ %.3f\n", p)

	// 5. MCDB-R risk analysis: the 99.9th percentile of the count.
	q, err := mcdb.RiskQuantile(counts, 0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("0.999-quantile of the hypertensive count ≈ %.1f\n", q)
}
