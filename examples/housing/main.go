// Housing extrapolation (Figure 1): "Data is dead... without what-if
// analytics". A simple time-series model is fitted to median housing
// prices 1970–2006 and extrapolated to 2011. Because the model only
// extrapolates past patterns, it cannot anticipate the 2006 collapse —
// the paper's argument for combining data with domain-expert models.
package main

import (
	"fmt"
	"log"
	"strings"

	"modeldata/internal/experiments"
	"modeldata/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	series := experiments.HousingIndex(1970)
	train := series.Slice(1970, 2007)
	model, err := timeseries.FitTrend(train, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("year   actual  extrapolated")
	maxV := 0.0
	for _, p := range series.Points {
		if p.V > maxV {
			maxV = p.V
		}
		if model.At(p.T) > maxV {
			maxV = model.At(p.T)
		}
	}
	for _, p := range series.Points {
		if int(p.T)%2 != 0 {
			continue
		}
		pred := model.At(p.T)
		marker := " "
		if p.T >= 2007 {
			marker = "!"
		}
		bar := strings.Repeat("█", int(p.V/maxV*40))
		fmt.Printf("%4.0f %s %8.1f %12.1f  %s\n", p.T, marker, p.V, pred, bar)
	}
	last := series.Points[series.Len()-1]
	fmt.Printf("\n2011: model says %.0f, reality says %.0f — off by %.0f%%.\n",
		model.At(2011), last.V, 100*(model.At(2011)-last.V)/last.V)
	fmt.Println("The extrapolation ignored everything economists knew about the bubble.")
}
