module modeldata

go 1.22
