package modeldata_test

// The determinism contract of internal/parallel, verified end to end:
// every parallel hot loop must produce bit-identical results at any
// worker count, because each iteration consumes its own random
// substream split from the parent in iteration order before the fan-
// out. These tests compare exact float64 values — no tolerances — at
// workers 1, 2, and 8, and check that cancellation is honored promptly
// with ctx.Err().

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"modeldata"
	"modeldata/internal/assimilate"
	"modeldata/internal/doe"
	"modeldata/internal/engine"
	"modeldata/internal/experiments"
	"modeldata/internal/mapreduce"
	"modeldata/internal/mcdb"
	"modeldata/internal/rng"
)

var workerCounts = []int{1, 2, 8}

// equalExact fails unless a and b are identical float slices (NaN
// compares equal to NaN so a genuine bit-level divergence is never
// masked by NaN semantics).
func equalExact(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			t.Fatalf("%s: index %d: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func TestMCDBSessionDeterministicAcrossWorkers(t *testing.T) {
	db, err := experiments.SBPDatabase(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []mcdb.Strategy{mcdb.StrategyNaive, mcdb.StrategyBundle} {
		q := mcdb.AggQuery{Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg}
		var ref []float64
		for _, w := range workerCounts {
			got, err := db.NewSession().Exec(context.Background(), q, mcdb.ExecOptions{
				Strategy:   strat,
				Iterations: 60,
				Workers:    w,
				Seed:       7,
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", strat, w, err)
			}
			if ref == nil {
				ref = got
				continue
			}
			equalExact(t, strat.String(), ref, got)
		}
	}
}

// scalarFilter builds a small linear-Gaussian bootstrap filter over a
// shared synthetic observation sequence.
func scalarFilter(n, workers int) (*assimilate.Filter[float64, float64], []float64, error) {
	model := assimilate.BootstrapModel(
		func(r *rng.Stream) float64 { return r.Normal(0, 1) },
		func(prev float64, r *rng.Stream) float64 { return 0.9*prev + r.Normal(0, 0.3) },
		func(x, y float64) float64 { d := x - y; return -d * d / 2 },
	)
	f, err := assimilate.NewFilter(model, n, 11)
	if err != nil {
		return nil, nil, err
	}
	f.Workers = workers
	obsRNG := rng.New(99)
	obs := make([]float64, 12)
	for i := range obs {
		obs[i] = obsRNG.Normal(0, 1)
	}
	return f, obs, nil
}

func TestParticleFilterDeterministicAcrossWorkers(t *testing.T) {
	var refMeans []float64
	var refESS []float64
	for _, w := range workerCounts {
		f, obs, err := scalarFilter(64, w)
		if err != nil {
			t.Fatal(err)
		}
		var means []float64
		for _, y := range obs {
			ps, err := f.StepCtx(context.Background(), y)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			sum := 0.0
			for _, p := range ps {
				sum += p.W * p.X
			}
			means = append(means, sum)
		}
		if refMeans == nil {
			refMeans, refESS = means, f.ESSTrace
			continue
		}
		equalExact(t, "posterior means", refMeans, means)
		equalExact(t, "ESS trace", refESS, f.ESSTrace)
	}
}

func TestDesignEvaluationDeterministicAcrossWorkers(t *testing.T) {
	d := doe.ResolutionIII7()
	sim := func(levels []int, r *rng.Stream) float64 {
		v := 0.0
		for _, l := range levels {
			v += float64(l) * r.Normal(1, 0.1)
		}
		return v
	}
	var ref []float64
	for _, w := range workerCounts {
		got, err := doe.EvaluateDesign(context.Background(), d, sim, doe.EvalOptions{
			Replications: 3, Seed: 5, Workers: w,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = got
			continue
		}
		equalExact(t, "design responses", ref, got)
	}
}

// TestRunDeterministicAcrossWorkers exercises the public facade: a full
// experiment must report identical numbers whatever WithWorkers says.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var ref modeldata.ExperimentResult
	for _, w := range workerCounts {
		res, err := modeldata.Run(context.Background(), "F4",
			modeldata.WithSeed(3), modeldata.WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if w == workerCounts[0] {
			ref = res
			continue
		}
		if len(res.Rows) != len(ref.Rows) {
			t.Fatalf("workers=%d: %d rows vs %d", w, len(res.Rows), len(ref.Rows))
		}
		for i := range res.Rows {
			if res.Rows[i] != ref.Rows[i] {
				t.Fatalf("workers=%d row %d: %+v vs %+v", w, i, res.Rows[i], ref.Rows[i])
			}
		}
	}
}

// TestCancellationPromptness cancels a large Monte Carlo run mid-loop
// and requires it to stop with ctx.Err() well before finishing.
func TestCancellationPromptness(t *testing.T) {
	db, err := experiments.SBPDatabase(200)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.MonteCarlo(ctx, 1_000_000, 1, 2, func(inst *engine.Database) (float64, error) {
			return 0, nil
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop promptly after cancellation")
	}
}

// TestMapReduceCancellation verifies the mapreduce runtime returns
// ctx.Err() rather than running every stage on a canceled context.
func TestMapReduceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	splits := make([]any, 32)
	for i := range splits {
		splits[i] = i
	}
	_, _, err := mapreduce.RunCtx(ctx, mapreduce.Config{}, splits,
		func(split any, emit func(mapreduce.Pair)) error {
			emit(mapreduce.Pair{Key: "k", Value: 1.0})
			return nil
		},
		func(key string, values []any, emit func(mapreduce.Pair)) error {
			emit(mapreduce.Pair{Key: key, Value: len(values)})
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunPlannerEquivalenceAcrossWorkers runs a full experiment with
// the query planner forced off (written-order execution) and forced
// on (cost-based reordering), at workers 1, 2, and 8, and requires
// every variant to produce identical rows. This is the end-to-end
// statement of the planner's contract: plan choice may change speed,
// never results — even under parallel replay.
func TestRunPlannerEquivalenceAcrossWorkers(t *testing.T) {
	run := func(on bool, workers int) modeldata.ExperimentResult {
		t.Helper()
		prev := engine.SetPlannerDefault(on)
		defer engine.SetPlannerDefault(prev)
		res, err := modeldata.Run(context.Background(), "F4",
			modeldata.WithSeed(3), modeldata.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(false, 1)
	for _, on := range []bool{false, true} {
		for _, w := range workerCounts {
			got := run(on, w)
			if len(got.Rows) != len(ref.Rows) {
				t.Fatalf("planner=%v workers=%d: %d rows vs %d", on, w, len(got.Rows), len(ref.Rows))
			}
			for i := range ref.Rows {
				if got.Rows[i] != ref.Rows[i] {
					t.Fatalf("planner=%v workers=%d: row %d: %+v vs %+v",
						on, w, i, got.Rows[i], ref.Rows[i])
				}
			}
		}
	}
}

// TestRunStatsAndProgress checks the per-run counters and progress
// callback wiring of the options API.
func TestRunStatsAndProgress(t *testing.T) {
	var st modeldata.Stats
	calls := 0
	res, err := modeldata.Run(context.Background(), "E1",
		modeldata.WithSeed(3),
		modeldata.WithStats(&st),
		modeldata.WithProgress(func(done, total int) { calls++ }))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict {
		t.Fatalf("E1 failed to reproduce")
	}
	if st.Iterations == 0 {
		t.Fatalf("stats recorded no iterations: %+v", st)
	}
	if st.SamplesPerSec <= 0 || st.Elapsed <= 0 {
		t.Fatalf("implausible throughput stats: %+v", st)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
}
