// Package prov implements why-provenance for relational operators: each
// output tuple is annotated with the set of input tuples that contributed
// to it. The annotation algebra is the set-union semiring over input-tuple
// leaves — both the join combinator (⊗) and the aggregation/dedup
// combinator (⊕) are set union, which makes annotations insensitive to
// operator reassociation and reordering. That invariance is load-bearing:
// the planner may reorder joins, and the provenance of a row must not
// depend on the order the optimizer picked.
//
// Sets are interned in an Arena: each distinct set of leaves is stored
// once and identified by a small integer handle (Set). Combining two sets
// that were combined before is a map lookup, not an allocation, so wide
// joins and large group-bys stay cheap. An Arena serves one query
// execution and is not safe for concurrent use.
package prov

import (
	"encoding/binary"
	"sort"
)

// Leaf identifies one input tuple: a source table name plus the row's
// index in that table at annotation time.
type Leaf struct {
	Table string
	Row   int
}

// Set is a handle to an interned set of leaves within an Arena. The zero
// Set is the empty set in every arena.
type Set int32

// Empty is the annotation of a tuple with no recorded inputs (for
// example, the synthesized all-table group of an empty aggregation).
const Empty Set = 0

// Arena interns leaves and leaf sets for one query execution.
type Arena struct {
	leaves  []Leaf         // leaf id -> leaf
	leafIDs map[Leaf]int32 // leaf -> leaf id

	sets    [][]int32      // set handle -> sorted unique leaf ids
	setIDs  map[string]Set // canonical encoding -> handle
	joinIDs map[[2]Set]Set // memoized pairwise unions

	keyBuf []byte
	tmp    []int32
}

// NewArena returns an empty arena whose Set 0 is the empty set.
func NewArena() *Arena {
	a := &Arena{
		leafIDs: make(map[Leaf]int32),
		setIDs:  make(map[string]Set),
		joinIDs: make(map[[2]Set]Set),
	}
	a.sets = append(a.sets, nil) // handle 0: empty set
	a.setIDs[""] = Empty
	return a
}

// leafID interns a leaf and returns its id.
func (a *Arena) leafID(l Leaf) int32 {
	if id, ok := a.leafIDs[l]; ok {
		return id
	}
	id := int32(len(a.leaves))
	a.leaves = append(a.leaves, l)
	a.leafIDs[l] = id
	return id
}

// Leaf returns the singleton set {table:row}.
func (a *Arena) Leaf(table string, row int) Set {
	return a.intern([]int32{a.leafID(Leaf{Table: table, Row: row})})
}

// intern returns the handle for the given sorted, duplicate-free id
// slice, adding it to the arena if new. The slice is copied when stored.
func (a *Arena) intern(ids []int32) Set {
	a.keyBuf = a.keyBuf[:0]
	for _, id := range ids {
		a.keyBuf = binary.AppendVarint(a.keyBuf, int64(id))
	}
	if s, ok := a.setIDs[string(a.keyBuf)]; ok {
		return s
	}
	s := Set(len(a.sets))
	stored := make([]int32, len(ids))
	copy(stored, ids)
	a.sets = append(a.sets, stored)
	a.setIDs[string(a.keyBuf)] = s
	return s
}

// Join returns the ⊗-combination of two annotations: the union of their
// leaf sets. In the why-provenance semiring ⊗ and ⊕ coincide.
func (a *Arena) Join(x, y Set) Set {
	if x == y || y == Empty {
		return x
	}
	if x == Empty {
		return y
	}
	if x > y {
		x, y = y, x
	}
	k := [2]Set{x, y}
	if s, ok := a.joinIDs[k]; ok {
		return s
	}
	s := a.intern(mergeSorted(a.tmpBuf(), a.sets[x], a.sets[y]))
	a.joinIDs[k] = s
	return s
}

// Union is the ⊕-combination used by aggregation and duplicate
// elimination. It is identical to Join in this semiring; the separate
// name keeps call sites self-documenting.
func (a *Arena) Union(x, y Set) Set { return a.Join(x, y) }

// SetOf interns the union of the given leaves in one pass, avoiding the
// pairwise memo for bulk construction (e.g. one lineage set per Monte
// Carlo iteration covering hundreds of tuples).
func (a *Arena) SetOf(leaves []Leaf) Set {
	ids := a.tmpBuf()
	for _, l := range leaves {
		ids = append(ids, a.leafID(l))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ids = dedupSorted(ids)
	s := a.intern(ids)
	a.tmp = ids[:0]
	return s
}

// Leaves returns the members of a set ordered by table then row. The
// returned slice is freshly allocated.
func (a *Arena) Leaves(s Set) []Leaf {
	if s < 0 || int(s) >= len(a.sets) {
		return nil
	}
	ids := a.sets[s]
	out := make([]Leaf, len(ids))
	for i, id := range ids {
		out[i] = a.leaves[id]
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Row < out[j].Row
	})
	return out
}

// Size returns the cardinality of a set without materializing leaves.
func (a *Arena) Size(s Set) int {
	if s < 0 || int(s) >= len(a.sets) {
		return 0
	}
	return len(a.sets[s])
}

// NumSets returns the number of distinct interned sets (including the
// empty set), a rough measure of annotation diversity.
func (a *Arena) NumSets() int { return len(a.sets) }

func (a *Arena) tmpBuf() []int32 {
	if a.tmp == nil {
		a.tmp = make([]int32, 0, 16)
	}
	return a.tmp[:0]
}

// mergeSorted writes the sorted union of x and y into dst.
func mergeSorted(dst, x, y []int32) []int32 {
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			dst = append(dst, x[i])
			i++
		case x[i] > y[j]:
			dst = append(dst, y[j])
			j++
		default:
			dst = append(dst, x[i])
			i++
			j++
		}
	}
	dst = append(dst, x[i:]...)
	dst = append(dst, y[j:]...)
	return dst
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(ids []int32) []int32 {
	if len(ids) < 2 {
		return ids
	}
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}
