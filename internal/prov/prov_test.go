package prov

import (
	"reflect"
	"testing"
)

func TestLeafSingleton(t *testing.T) {
	a := NewArena()
	s := a.Leaf("t", 3)
	if got := a.Leaves(s); !reflect.DeepEqual(got, []Leaf{{"t", 3}}) {
		t.Fatalf("Leaves = %v", got)
	}
	if s2 := a.Leaf("t", 3); s2 != s {
		t.Fatalf("identical leaves interned to different sets: %d vs %d", s, s2)
	}
	if a.Size(s) != 1 {
		t.Fatalf("Size = %d, want 1", a.Size(s))
	}
}

func TestJoinIsUnion(t *testing.T) {
	a := NewArena()
	x := a.Leaf("l", 0)
	y := a.Leaf("r", 5)
	j := a.Join(x, y)
	want := []Leaf{{"l", 0}, {"r", 5}}
	if got := a.Leaves(j); !reflect.DeepEqual(got, want) {
		t.Fatalf("Join leaves = %v, want %v", got, want)
	}
	// Commutative and memoized.
	if a.Join(y, x) != j {
		t.Fatal("Join is not commutative under interning")
	}
	// Idempotent.
	if a.Join(j, x) != j {
		t.Fatal("Join with a subset changed the set")
	}
	if a.Join(j, j) != j {
		t.Fatal("self-join changed the set")
	}
}

func TestEmptyIsIdentity(t *testing.T) {
	a := NewArena()
	x := a.Leaf("t", 1)
	if a.Join(x, Empty) != x || a.Join(Empty, x) != x {
		t.Fatal("Empty is not the identity for Join")
	}
	if a.Union(Empty, Empty) != Empty {
		t.Fatal("Empty ⊕ Empty != Empty")
	}
	if got := a.Leaves(Empty); len(got) != 0 {
		t.Fatalf("Leaves(Empty) = %v", got)
	}
}

func TestAssociativityInvariance(t *testing.T) {
	// (x⊗y)⊗z == x⊗(y⊗z): the planner may reassociate joins freely.
	a := NewArena()
	x, y, z := a.Leaf("a", 1), a.Leaf("b", 2), a.Leaf("c", 3)
	l := a.Join(a.Join(x, y), z)
	r := a.Join(x, a.Join(y, z))
	if l != r {
		t.Fatalf("association changed interned set: %d vs %d", l, r)
	}
}

func TestSetOfBulk(t *testing.T) {
	a := NewArena()
	s := a.SetOf([]Leaf{{"t", 4}, {"t", 1}, {"t", 4}, {"u", 0}})
	want := []Leaf{{"t", 1}, {"t", 4}, {"u", 0}}
	if got := a.Leaves(s); !reflect.DeepEqual(got, want) {
		t.Fatalf("SetOf leaves = %v, want %v", got, want)
	}
	// Same members via pairwise joins interns to the same handle.
	p := a.Join(a.Join(a.Leaf("t", 4), a.Leaf("t", 1)), a.Leaf("u", 0))
	if p != s {
		t.Fatalf("bulk and pairwise construction disagree: %d vs %d", s, p)
	}
	if a.SetOf(nil) != Empty {
		t.Fatal("SetOf(nil) != Empty")
	}
}

func TestLeavesSorted(t *testing.T) {
	a := NewArena()
	s := a.SetOf([]Leaf{{"z", 0}, {"a", 9}, {"a", 2}})
	want := []Leaf{{"a", 2}, {"a", 9}, {"z", 0}}
	if got := a.Leaves(s); !reflect.DeepEqual(got, want) {
		t.Fatalf("Leaves = %v, want %v", got, want)
	}
}
