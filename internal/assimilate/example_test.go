package assimilate_test

import (
	"fmt"

	"modeldata/internal/assimilate"
	"modeldata/internal/rng"
)

// ExampleNewFilter runs Algorithm 2 on a one-dimensional random walk
// observed through Gaussian noise.
func ExampleNewFilter() {
	model := assimilate.BootstrapModel[float64, float64](
		func(r *rng.Stream) float64 { return r.Normal(0, 1) },
		func(prev float64, r *rng.Stream) float64 { return prev + r.Normal(0, 0.3) },
		func(x, y float64) float64 {
			return rng.NormalDist{Mu: x, Sigma: 0.5}.LogPDF(y)
		},
	)
	f, err := assimilate.NewFilter(model, 2000, 7)
	if err != nil {
		panic(err)
	}
	// The hidden state sits near 1.0; three noisy observations arrive.
	for _, y := range []float64{0.9, 1.1, 1.0} {
		ps, err := f.Step(y)
		if err != nil {
			panic(err)
		}
		est := assimilate.EstimateWeighted(ps, func(x float64) float64 { return x })
		fmt.Printf("posterior mean ≈ %.1f\n", est)
	}
	// Output:
	// posterior mean ≈ 0.7
	// posterior mean ≈ 0.9
	// posterior mean ≈ 1.0
}
