package assimilate

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

func TestImportanceSamplingEstimatesMean(t *testing.T) {
	// Target: N(2, 1); proposal: N(0, 2). Estimate E[X].
	target := rng.NormalDist{Mu: 2, Sigma: 1}
	proposal := rng.NormalDist{Mu: 0, Sigma: 2}
	ps, _, err := ImportanceSample(50000,
		func(r *rng.Stream) float64 { return proposal.Sample(r) },
		func(x float64) float64 { return target.LogPDF(x) - proposal.LogPDF(x) },
		rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	mean := EstimateWeighted(ps, func(x float64) float64 { return x })
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("IS mean = %g, want ≈ 2", mean)
	}
	// Weights are normalized.
	sum := 0.0
	for _, p := range ps {
		sum += p.W
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", sum)
	}
}

func TestImportanceSamplingNormalizingConstant(t *testing.T) {
	// γ(x) = 3·φ(x) (unnormalized), q = φ ⇒ Z = 3.
	phi := rng.NormalDist{Mu: 0, Sigma: 1}
	_, z, err := ImportanceSample(20000,
		func(r *rng.Stream) float64 { return phi.Sample(r) },
		func(x float64) float64 { return math.Log(3) },
		rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-3) > 1e-9 {
		t.Fatalf("Ẑ = %g, want 3", z)
	}
}

func TestImportanceSamplingErrors(t *testing.T) {
	if _, _, err := ImportanceSample[float64](0, nil, nil, rng.New(1)); !errors.Is(err, ErrBadN) {
		t.Fatalf("got %v", err)
	}
	_, _, err := ImportanceSample(10,
		func(r *rng.Stream) float64 { return 0 },
		func(x float64) float64 { return math.Inf(-1) },
		rng.New(1))
	if !errors.Is(err, ErrCollapsed) {
		t.Fatalf("got %v", err)
	}
}

func TestResamplePreservesDistribution(t *testing.T) {
	// A weighted sample with atoms 0 and 1, weights 0.3/0.7.
	ps := []Weighted[float64]{}
	for i := 0; i < 1000; i++ {
		x := 0.0
		w := 0.3 / 500
		if i >= 500 {
			x = 1
			w = 0.7 / 500
		}
		ps = append(ps, Weighted[float64]{X: x, W: w})
	}
	out := Resample(ps, rng.New(3))
	if len(out) != 1000 {
		t.Fatalf("resampled size = %d", len(out))
	}
	mean := 0.0
	for _, p := range out {
		if p.W != 1.0/1000 {
			t.Fatal("resampled weights not uniform")
		}
		mean += p.X
	}
	mean /= 1000
	if math.Abs(mean-0.7) > 0.05 {
		t.Fatalf("resampled mean = %g, want ≈ 0.7", mean)
	}
}

func TestESS(t *testing.T) {
	uniform := []Weighted[int]{{X: 1, W: 0.25}, {X: 2, W: 0.25}, {X: 3, W: 0.25}, {X: 4, W: 0.25}}
	if got := ESS(uniform); math.Abs(got-4) > 1e-12 {
		t.Fatalf("uniform ESS = %g", got)
	}
	degenerate := []Weighted[int]{{X: 1, W: 1}, {X: 2, W: 0}}
	if got := ESS(degenerate); math.Abs(got-1) > 1e-12 {
		t.Fatalf("degenerate ESS = %g", got)
	}
	if ESS([]Weighted[int]{}) != 0 {
		t.Fatal("empty ESS")
	}
}

// linearGaussianHMM builds the canonical test model
// X₁ ~ N(0, 1); Xₙ = a·Xₙ₋₁ + N(0, q²); Yₙ = Xₙ + N(0, r²),
// for which the Kalman filter gives the exact posterior.
func linearGaussianHMM(a, q, obsSigma float64) Model[float64, float64] {
	return BootstrapModel[float64, float64](
		func(r *rng.Stream) float64 { return r.Normal(0, 1) },
		func(prev float64, r *rng.Stream) float64 { return a*prev + r.Normal(0, q) },
		func(x, y float64) float64 {
			return rng.NormalDist{Mu: x, Sigma: obsSigma}.LogPDF(y)
		},
	)
}

// kalman runs the exact filter for the same model.
func kalman(a, q, obsSigma float64, ys []float64) (means []float64) {
	m, p := 0.0, 1.0
	r2 := obsSigma * obsSigma
	for i, y := range ys {
		if i > 0 {
			m = a * m
			p = a*a*p + q*q
		}
		k := p / (p + r2)
		m += k * (y - m)
		p *= 1 - k
		means = append(means, m)
	}
	return means
}

func TestParticleFilterTracksKalman(t *testing.T) {
	const a, q, obsSigma = 0.9, 0.5, 0.4
	// Generate a synthetic trajectory.
	r := rng.New(10)
	x := r.Normal(0, 1)
	var ys []float64
	for i := 0; i < 40; i++ {
		if i > 0 {
			x = a*x + r.Normal(0, q)
		}
		ys = append(ys, x+r.Normal(0, obsSigma))
	}
	exact := kalman(a, q, obsSigma, ys)

	f, err := NewFilter(linearGaussianHMM(a, q, obsSigma), 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range ys {
		ps, err := f.Step(y)
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateWeighted(ps, func(s float64) float64 { return s })
		if math.Abs(est-exact[i]) > 0.15 {
			t.Fatalf("step %d: PF mean %g vs Kalman %g", i, est, exact[i])
		}
	}
}

func TestSISCollapsesWithoutResampling(t *testing.T) {
	const a, q, obsSigma = 0.9, 0.5, 0.4
	r := rng.New(12)
	var ys []float64
	x := 0.0
	for i := 0; i < 50; i++ {
		x = a*x + r.Normal(0, q)
		ys = append(ys, x+r.Normal(0, obsSigma))
	}
	run := func(disable bool) float64 {
		f, err := NewFilter(linearGaussianHMM(a, q, obsSigma), 500, 13)
		if err != nil {
			t.Fatal(err)
		}
		f.DisableResampling = disable
		for _, y := range ys {
			if _, err := f.Step(y); err != nil {
				t.Fatal(err)
			}
		}
		return f.ESSTrace[len(f.ESSTrace)-1]
	}
	sisESS := run(true)
	sirESS := run(false)
	if sisESS > 20 {
		t.Fatalf("SIS final ESS = %g, expected collapse toward 1", sisESS)
	}
	if sirESS < 50 {
		t.Fatalf("SIR final ESS = %g, resampling failed to prevent collapse", sirESS)
	}
}

func TestFilterValidation(t *testing.T) {
	if _, err := NewFilter(linearGaussianHMM(1, 1, 1), 0, 1); !errors.Is(err, ErrBadN) {
		t.Fatalf("got %v", err)
	}
	if _, err := NewFilter(Model[float64, float64]{}, 10, 1); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("got %v", err)
	}
	f, err := NewFilter(linearGaussianHMM(1, 1, 1), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Particles(); !errors.Is(err, ErrNoparticles) {
		t.Fatalf("got %v", err)
	}
	if _, err := f.Step(0.5); err != nil {
		t.Fatal(err)
	}
	ps, err := f.Particles()
	if err != nil || len(ps) != 10 {
		t.Fatalf("particles: %d, %v", len(ps), err)
	}
}

func TestFilterDeterministic(t *testing.T) {
	run := func() float64 {
		f, err := NewFilter(linearGaussianHMM(0.9, 0.5, 0.4), 200, 77)
		if err != nil {
			t.Fatal(err)
		}
		var last float64
		for _, y := range []float64{0.1, 0.5, -0.2, 0.9} {
			ps, err := f.Step(y)
			if err != nil {
				t.Fatal(err)
			}
			last = EstimateWeighted(ps, func(s float64) float64 { return s })
		}
		return last
	}
	if run() != run() {
		t.Fatal("filter not deterministic for fixed seed")
	}
}

func TestNormalizeLogWeightsStability(t *testing.T) {
	// Extremely negative log weights must not underflow to collapse.
	w, _, err := normalizeLogWeights([]float64{-1e6, -1e6 + math.Log(3)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[1]-0.75) > 1e-9 || math.Abs(w[0]-0.25) > 1e-9 {
		t.Fatalf("weights = %v", w)
	}
}

func TestEstimateWeightedVariance(t *testing.T) {
	r := rng.New(20)
	xs := rng.SampleN(rng.NormalDist{Mu: 5, Sigma: 2}, r, 20000)
	ps := make([]Weighted[float64], len(xs))
	for i, x := range xs {
		ps[i] = Weighted[float64]{X: x, W: 1 / float64(len(xs))}
	}
	m := EstimateWeighted(ps, func(x float64) float64 { return x })
	v := EstimateWeighted(ps, func(x float64) float64 { return (x - m) * (x - m) })
	if math.Abs(m-5) > 0.1 || math.Abs(v-4) > 0.2 {
		t.Fatalf("m=%g v=%g", m, v)
	}
	_ = stats.Mean(xs) // keep stats imported for symmetry with other tests
}

func TestAdaptiveResamplingTracksKalman(t *testing.T) {
	const a, q, obsSigma = 0.9, 0.5, 0.4
	r := rng.New(30)
	x := r.Normal(0, 1)
	var ys []float64
	for i := 0; i < 40; i++ {
		if i > 0 {
			x = a*x + r.Normal(0, q)
		}
		ys = append(ys, x+r.Normal(0, obsSigma))
	}
	exact := kalman(a, q, obsSigma, ys)

	run := func(threshold float64) (maxErr float64, resamples int) {
		f, err := NewFilter(linearGaussianHMM(a, q, obsSigma), 3000, 31)
		if err != nil {
			t.Fatal(err)
		}
		f.ResampleThreshold = threshold
		for i, y := range ys {
			ps, err := f.Step(y)
			if err != nil {
				t.Fatal(err)
			}
			est := EstimateWeighted(ps, func(s float64) float64 { return s })
			if e := math.Abs(est - exact[i]); e > maxErr {
				maxErr = e
			}
		}
		return maxErr, f.Resamples
	}
	errAlways, nAlways := run(0)
	errAdaptive, nAdaptive := run(0.5)
	if nAdaptive >= nAlways {
		t.Fatalf("adaptive resampled %d times vs %d always", nAdaptive, nAlways)
	}
	if errAdaptive > errAlways*2+0.1 {
		t.Fatalf("adaptive accuracy degraded: %g vs %g", errAdaptive, errAlways)
	}
	if nAlways != 40 {
		t.Fatalf("always-resample count = %d", nAlways)
	}
}
