// Package assimilate implements the sequential Monte Carlo toolkit of
// §3.2 of the paper, following the Doucet–Johansen presentation the
// paper uses: plain importance sampling, sequential importance sampling
// (SIS), resampling (SIR), and the particle filtering algorithm
// (Algorithm 2) for hidden Markov models. Data assimilation — fusing a
// simulation model with streaming sensor data — is the application
// built on top in internal/wildfire.
package assimilate

import (
	"context"
	"errors"
	"fmt"
	"math"

	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// Common errors.
var (
	ErrBadN        = errors.New("assimilate: particle count must be positive")
	ErrCollapsed   = errors.New("assimilate: all particle weights are zero or non-finite")
	ErrIncomplete  = errors.New("assimilate: model is missing required hooks")
	ErrNoparticles = errors.New("assimilate: filter has no particles (call Init first)")
)

// Weighted is a weighted sample.
type Weighted[S any] struct {
	X S
	W float64 // normalized weight
}

// ImportanceSample draws n samples from the proposal q and corrects
// them with the weight function, returning the normalized weighted
// sample and the estimate Ẑ of the normalizing constant (Eqs. 1–2 of
// §3.2). logW must return log(γ(x)/q(x)).
func ImportanceSample[S any](n int, sampleQ func(r *rng.Stream) S, logW func(S) float64, r *rng.Stream) ([]Weighted[S], float64, error) {
	if n <= 0 {
		return nil, 0, ErrBadN
	}
	xs := make([]S, n)
	lw := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = sampleQ(r)
		lw[i] = logW(xs[i])
	}
	w, sum, err := normalizeLogWeights(lw)
	if err != nil {
		return nil, 0, err
	}
	out := make([]Weighted[S], n)
	for i := range out {
		out[i] = Weighted[S]{X: xs[i], W: w[i]}
	}
	// Ẑ = (1/N) Σ w(Xⁱ); sum is in linear scale relative to max.
	return out, sum / float64(n), nil
}

// normalizeLogWeights converts log weights to normalized linear weights
// using the log-sum-exp trick; it also returns the linear-scale sum
// Σ exp(lwᵢ) for normalizing-constant estimation.
func normalizeLogWeights(lw []float64) ([]float64, float64, error) {
	maxLW := math.Inf(-1)
	for _, v := range lw {
		if v > maxLW {
			maxLW = v
		}
	}
	if math.IsInf(maxLW, -1) || math.IsNaN(maxLW) {
		return nil, 0, ErrCollapsed
	}
	w := make([]float64, len(lw))
	total := 0.0
	for i, v := range lw {
		w[i] = math.Exp(v - maxLW)
		total += w[i]
	}
	if total == 0 || math.IsNaN(total) { //lint:allow floateq exact zero means every weight underflowed: the collapse being detected
		return nil, 0, ErrCollapsed
	}
	linearSum := total * math.Exp(maxLW)
	for i := range w {
		w[i] /= total
	}
	return w, linearSum, nil
}

// EstimateWeighted computes Σ wᵢ·g(xᵢ) over a normalized weighted
// sample — the Monte Carlo approximation of ∫ g dπ.
func EstimateWeighted[S any](ps []Weighted[S], g func(S) float64) float64 {
	s := 0.0
	for _, p := range ps {
		s += p.W * g(p.X)
	}
	return s
}

// ESS returns the effective sample size 1/Σwᵢ² of a normalized weighted
// sample — the standard collapse diagnostic.
func ESS[S any](ps []Weighted[S]) float64 {
	s := 0.0
	for _, p := range ps {
		s += p.W * p.W
	}
	if s == 0 { //lint:allow floateq exact-zero guard before dividing; any nonzero sum is a valid ESS
		return 0
	}
	return 1 / s
}

// Resample draws a fresh equal-weight sample of the same size by
// systematic resampling on the normalized weights (the SIR step that
// prevents weight collapse and exponential variance growth).
func Resample[S any](ps []Weighted[S], r *rng.Stream) []Weighted[S] {
	n := len(ps)
	out := make([]Weighted[S], n)
	u := r.Float64() / float64(n)
	acc := 0.0
	j := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)/float64(n)
		for acc+ps[j].W < target && j < n-1 {
			acc += ps[j].W
			j++
		}
		out[i] = Weighted[S]{X: ps[j].X, W: 1 / float64(n)}
	}
	return out
}

// Model specifies a hidden Markov model plus proposal for particle
// filtering, in the decomposition of Algorithm 2:
//
//   - SampleInit draws X₁ⁱ ~ q₁(x₁ | y₁);
//   - LogWeightInit returns log[p₁(x₁)·p(y₁|x₁)/q₁(x₁|y₁)];
//   - SampleProposal draws Xₙⁱ ~ qₙ(xₙ | yₙ, x̄ₙ₋₁ⁱ);
//   - LogWeight returns log αₙ = log[p(yₙ|xₙ)·p(xₙ|xₙ₋₁)/qₙ(xₙ|yₙ,xₙ₋₁)].
type Model[S, Y any] struct {
	SampleInit     func(y Y, r *rng.Stream) S
	LogWeightInit  func(x S, y Y) float64
	SampleProposal func(prev S, y Y, r *rng.Stream) S
	LogWeight      func(x, prev S, y Y) float64
}

func (m Model[S, Y]) validate() error {
	if m.SampleInit == nil || m.LogWeightInit == nil || m.SampleProposal == nil || m.LogWeight == nil {
		return ErrIncomplete
	}
	return nil
}

// BootstrapModel builds the "bootstrap" filter of §3.2, the original
// Xue et al. formulation: the proposal is the state transition density
// itself (ignoring the observation), so the weights reduce to the
// observation likelihood.
func BootstrapModel[S, Y any](
	sampleInit func(r *rng.Stream) S,
	transition func(prev S, r *rng.Stream) S,
	obsLogLik func(x S, y Y) float64,
) Model[S, Y] {
	return Model[S, Y]{
		SampleInit:     func(y Y, r *rng.Stream) S { return sampleInit(r) },
		LogWeightInit:  func(x S, y Y) float64 { return obsLogLik(x, y) },
		SampleProposal: func(prev S, y Y, r *rng.Stream) S { return transition(prev, r) },
		LogWeight:      func(x, prev S, y Y) float64 { return obsLogLik(x, y) },
	}
}

// Filter runs Algorithm 2.
type Filter[S, Y any] struct {
	model Model[S, Y]
	n     int
	r     *rng.Stream
	// Workers bounds particle-level parallelism per Step; zero uses the
	// context default (see internal/parallel). Particle propagation and
	// weighting are embarrassingly parallel; each particle draws from a
	// substream split in particle order, so the filter trajectory is
	// bit-identical at any worker count. Model hooks must be safe for
	// concurrent calls with distinct streams.
	Workers int
	// Resampling may be disabled to obtain plain SIS, demonstrating
	// weight collapse.
	DisableResampling bool
	// ResampleThreshold enables adaptive resampling: the SIR resample
	// step runs only when the effective sample size drops below this
	// fraction of N (e.g. 0.5). Zero means resample every step
	// (Algorithm 2 as written). Ignored when DisableResampling is set.
	ResampleThreshold float64
	// Resamples counts resampling steps actually performed.
	Resamples int
	particles []Weighted[S]
	// cumLogW carries the running log weights w_n = w_{n−1}·α_n; after
	// a resampling step they reset to uniform (weight 1/N), which is
	// what keeps SIR from collapsing while pure SIS does.
	cumLogW []float64
	step    int
	// ESSTrace records the effective sample size before each
	// resampling decision.
	ESSTrace []float64
}

// NewFilter creates a particle filter with n particles.
func NewFilter[S, Y any](model Model[S, Y], n int, seed uint64) (*Filter[S, Y], error) {
	if n <= 0 {
		return nil, ErrBadN
	}
	if err := model.validate(); err != nil {
		return nil, err
	}
	return &Filter[S, Y]{model: model, n: n, r: rng.New(seed)}, nil
}

// Step assimilates the next observation on the default worker pool.
// See StepCtx.
func (f *Filter[S, Y]) Step(y Y) ([]Weighted[S], error) {
	return f.StepCtx(context.Background(), y)
}

// StepCtx assimilates the next observation: lines 1–4 of Algorithm 2 on
// the first call, lines 6–11 afterwards. It returns the normalized
// weighted particle set after the weight update (before resampling), so
// callers can form estimates with the proper weights. Particle
// propagation and weighting fan out over the parallel runtime;
// cancellation of ctx aborts between particles with ctx.Err().
func (f *Filter[S, Y]) StepCtx(ctx context.Context, y Y) ([]Weighted[S], error) {
	lw := make([]float64, f.n)
	next := make([]Weighted[S], f.n)
	opts := parallel.Options{Workers: f.Workers}
	var err error
	if f.step == 0 {
		f.cumLogW = make([]float64, f.n)
		err = parallel.ForStreams(ctx, f.r, f.n, opts, func(i int, r *rng.Stream) error {
			x := f.model.SampleInit(y, r)
			lw[i] = f.model.LogWeightInit(x, y)
			next[i] = Weighted[S]{X: x}
			return nil
		})
	} else {
		err = parallel.ForStreams(ctx, f.r, f.n, opts, func(i int, r *rng.Stream) error {
			prev := f.particles[i].X
			x := f.model.SampleProposal(prev, y, r)
			lw[i] = f.model.LogWeight(x, prev, y)
			next[i] = Weighted[S]{X: x}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	// SIS recursion: wₙ = wₙ₋₁·αₙ. With resampling enabled the prior
	// weights are uniform (reset below), so this reduces to αₙ alone.
	for i := range lw {
		f.cumLogW[i] += lw[i]
	}
	w, _, err := normalizeLogWeights(f.cumLogW)
	if err != nil {
		return nil, fmt.Errorf("step %d: %w", f.step+1, err)
	}
	for i := range next {
		next[i].W = w[i]
	}
	ess := ESS(next)
	f.ESSTrace = append(f.ESSTrace, ess)
	weighted := make([]Weighted[S], f.n)
	copy(weighted, next)
	switch {
	case f.DisableResampling:
		f.particles = next
	case f.ResampleThreshold > 0 && ess >= f.ResampleThreshold*float64(f.n):
		// Adaptive SIR: weights still healthy, keep them and skip the
		// resampling noise this step.
		f.particles = next
	default:
		f.particles = Resample(next, f.r)
		f.Resamples++
		for i := range f.cumLogW {
			f.cumLogW[i] = 0
		}
	}
	f.step++
	return weighted, nil
}

// Particles returns the current (post-resampling) particle set.
func (f *Filter[S, Y]) Particles() ([]Weighted[S], error) {
	if f.particles == nil {
		return nil, ErrNoparticles
	}
	out := make([]Weighted[S], len(f.particles))
	copy(out, f.particles)
	return out, nil
}
