// Package wildfire implements the data-assimilation application of
// §3.2 of the paper (Xue, Gu & Hu): a DEVS-FIRE-style stochastic
// simulation of fire spread over a gridded terrain, a Gaussian model of
// temperature sensors scattered over the grid, and the glue that plugs
// both into the particle filter of internal/assimilate — including the
// sensor-aware proposal distribution of [57] with KDE-estimated
// densities.
//
// The real DEVS-FIRE consumes GIS terrain and live sensor feeds; here
// both are synthetic, which preserves the hidden-Markov structure and
// the sensor noise model that the assimilation results depend on.
package wildfire

import (
	"errors"
	"fmt"
	"math"

	"modeldata/internal/assimilate"
	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// Common errors.
var (
	ErrBadGrid   = errors.New("wildfire: invalid grid dimensions")
	ErrBadParams = errors.New("wildfire: invalid spread parameters")
	ErrOffGrid   = errors.New("wildfire: cell outside the grid")
)

// CellState is the fire status of one terrain cell: the paper's
// "unburned, burning, or burned".
type CellState uint8

// Cell states.
const (
	Unburned CellState = iota
	Burning
	Burned
)

// State is the fire state over a W×H grid; burning cells carry an
// intensity.
type State struct {
	W, H      int
	Cells     []CellState
	Intensity []float64
	Step      int
}

// NewState returns an all-unburned state.
func NewState(w, h int) (*State, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("%w: %d×%d", ErrBadGrid, w, h)
	}
	return &State{
		W: w, H: h,
		Cells:     make([]CellState, w*h),
		Intensity: make([]float64, w*h),
	}, nil
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{W: s.W, H: s.H, Step: s.Step}
	c.Cells = append([]CellState(nil), s.Cells...)
	c.Intensity = append([]float64(nil), s.Intensity...)
	return c
}

// idx returns the flat index of (x, y).
func (s *State) idx(x, y int) int { return y*s.W + x }

// At returns the state of cell (x, y).
func (s *State) At(x, y int) (CellState, error) {
	if x < 0 || x >= s.W || y < 0 || y >= s.H {
		return Unburned, fmt.Errorf("%w: (%d, %d)", ErrOffGrid, x, y)
	}
	return s.Cells[s.idx(x, y)], nil
}

// Ignite sets cell (x, y) burning with the given intensity.
func (s *State) Ignite(x, y int, intensity float64) error {
	if x < 0 || x >= s.W || y < 0 || y >= s.H {
		return fmt.Errorf("%w: (%d, %d)", ErrOffGrid, x, y)
	}
	i := s.idx(x, y)
	s.Cells[i] = Burning
	s.Intensity[i] = intensity
	return nil
}

// BurningCount returns the number of burning cells.
func (s *State) BurningCount() int {
	n := 0
	for _, c := range s.Cells {
		if c == Burning {
			n++
		}
	}
	return n
}

// BurnedOrBurning reports per-cell whether fire has reached it.
func (s *State) BurnedOrBurning() []bool {
	out := make([]bool, len(s.Cells))
	for i, c := range s.Cells {
		out[i] = c != Unburned
	}
	return out
}

// Params govern the stochastic spread model.
type Params struct {
	// SpreadProb is the per-step probability that a burning cell
	// ignites a given unburned 4-neighbor.
	SpreadProb float64
	// WindX and WindY bias spread: the ignition probability toward the
	// wind direction is multiplied by (1+|w|), against it by 1/(1+|w|).
	WindX, WindY float64
	// BurnSteps is the mean number of steps a cell burns before
	// becoming Burned (geometric burnout).
	BurnSteps float64
	// IntensityMean and IntensityStd describe a newly burning cell's
	// fire intensity.
	IntensityMean, IntensityStd float64
}

func (p Params) validate() error {
	if p.SpreadProb <= 0 || p.SpreadProb >= 1 || p.BurnSteps < 1 || p.IntensityMean <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	return nil
}

// neighborOffsets are 4-neighborhood offsets with wind-bias axes.
var neighborOffsets = [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// StepFire advances the fire by one Δt: burning cells ignite unburned
// neighbors with wind-biased probability and burn out geometrically.
// The input state is not modified.
func StepFire(s *State, p Params, r *rng.Stream) (*State, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	next := s.Clone()
	next.Step++
	pOut := 1 / p.BurnSteps
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			i := s.idx(x, y)
			if s.Cells[i] != Burning {
				continue
			}
			// Spread to neighbors.
			for _, d := range neighborOffsets {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= s.W || ny < 0 || ny >= s.H {
					continue
				}
				j := s.idx(nx, ny)
				if s.Cells[j] != Unburned || next.Cells[j] != Unburned {
					continue
				}
				prob := p.SpreadProb * windFactor(d[0], d[1], p.WindX, p.WindY)
				if prob > 0.99 {
					prob = 0.99
				}
				if r.Float64() < prob {
					next.Cells[j] = Burning
					next.Intensity[j] = math.Max(0.1, r.Normal(p.IntensityMean, p.IntensityStd))
				}
			}
			// Burn out.
			if r.Float64() < pOut {
				next.Cells[i] = Burned
				next.Intensity[i] = 0
			}
		}
	}
	return next, nil
}

// windFactor scales spread probability along the wind.
func windFactor(dx, dy int, wx, wy float64) float64 {
	dot := float64(dx)*wx + float64(dy)*wy
	if dot > 0 {
		return 1 + dot
	}
	return 1 / (1 - dot)
}

// Sensors is the Gaussian sensor model: one temperature sensor per
// Block×Block tile; a reading is ambient temperature plus FireTemp per
// burning-cell intensity unit within the tile, plus N(0, Noise²) —
// yielding the closed-form observation density Algorithm 2 needs.
type Sensors struct {
	Block    int
	Ambient  float64
	FireTemp float64
	Noise    float64
}

// Count returns the number of sensors covering state s.
func (sm Sensors) Count(s *State) int {
	bx := (s.W + sm.Block - 1) / sm.Block
	by := (s.H + sm.Block - 1) / sm.Block
	return bx * by
}

// mean returns the noiseless reading of each sensor.
func (sm Sensors) mean(s *State) []float64 {
	bx := (s.W + sm.Block - 1) / sm.Block
	by := (s.H + sm.Block - 1) / sm.Block
	out := make([]float64, bx*by)
	for i := range out {
		out[i] = sm.Ambient
	}
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			i := s.idx(x, y)
			if s.Cells[i] == Burning {
				b := (y/sm.Block)*bx + x/sm.Block
				out[b] += sm.FireTemp * s.Intensity[i]
			}
		}
	}
	return out
}

// Observe draws a noisy sensor reading vector from state s.
func (sm Sensors) Observe(s *State, r *rng.Stream) []float64 {
	mu := sm.mean(s)
	for i := range mu {
		mu[i] += r.Normal(0, sm.Noise)
	}
	return mu
}

// LogLik returns log p(y | x) under the Gaussian sensor model.
func (sm Sensors) LogLik(s *State, ys []float64) float64 {
	mu := sm.mean(s)
	if len(mu) != len(ys) {
		return math.Inf(-1)
	}
	ll := 0.0
	for i := range ys {
		z := (ys[i] - mu[i]) / sm.Noise
		ll += -0.5*z*z - math.Log(sm.Noise) - 0.5*math.Log(2*math.Pi)
	}
	return ll
}

// SensorBlockOf returns the sensor index covering cell (x, y).
func (sm Sensors) SensorBlockOf(s *State, x, y int) int {
	bx := (s.W + sm.Block - 1) / sm.Block
	return (y/sm.Block)*bx + x/sm.Block
}

// CellError counts cells whose fire-reached status differs between two
// states — the assimilation accuracy metric of the experiments.
func CellError(a, b *State) int {
	av, bv := a.BurnedOrBurning(), b.BurnedOrBurning()
	n := 0
	for i := range av {
		if av[i] != bv[i] {
			n++
		}
	}
	return n
}

// ConsensusState builds the per-cell majority-vote state over a
// weighted particle set: a cell is marked reached if the total weight
// of particles in which it is reached exceeds 1/2 (burning if burning
// weight dominates burned weight).
func ConsensusState(ps []assimilate.Weighted[*State]) (*State, error) {
	if len(ps) == 0 {
		return nil, assimilate.ErrNoparticles
	}
	proto := ps[0].X
	out, err := NewState(proto.W, proto.H)
	if err != nil {
		return nil, err
	}
	nCells := len(proto.Cells)
	reached := make([]float64, nCells)
	burning := make([]float64, nCells)
	for _, p := range ps {
		for i, c := range p.X.Cells {
			if c != Unburned {
				reached[i] += p.W
			}
			if c == Burning {
				burning[i] += p.W
			}
		}
	}
	for i := 0; i < nCells; i++ {
		if reached[i] > 0.5 {
			if burning[i] > reached[i]/2 {
				out.Cells[i] = Burning
			} else {
				out.Cells[i] = Burned
			}
		}
	}
	return out, nil
}

// kdeOverSummary builds a KDE over the burning-count summary statistic
// of M samples drawn by the given sampler — the density-estimation step
// of the [57] proposal.
func kdeOverSummary(m int, sample func() *State) (*stats.KDE, error) {
	xs := make([]float64, m)
	for i := range xs {
		xs[i] = float64(sample().BurningCount())
	}
	return stats.NewKDE(xs, 0, nil)
}
