package wildfire

import (
	"math"

	"modeldata/internal/assimilate"
	"modeldata/internal/rng"
)

// This file plugs the fire simulator into the particle filter: the
// prior (bootstrap) proposal of [56] and the sensor-aware proposal of
// [57].

// PriorModel builds the original Xue et al. formulation: the proposal
// is the state transition p(xₙ | xₙ₋₁) — simply setting the simulation
// state to x̄ₙ₋₁ and simulating for Δt — so the weights reduce to the
// Gaussian observation likelihood.
func PriorModel(p Params, sm Sensors, init func(r *rng.Stream) *State) assimilate.Model[*State, []float64] {
	return assimilate.BootstrapModel[*State, []float64](
		init,
		func(prev *State, r *rng.Stream) *State {
			next, err := StepFire(prev, p, r)
			if err != nil {
				// Params are validated at filter construction; a
				// failure here is programmer error.
				panic(err)
			}
			return next
		},
		func(x *State, y []float64) float64 { return sm.LogLik(x, y) },
	)
}

// SensorAwareConfig tunes the [57] proposal.
type SensorAwareConfig struct {
	// HotThreshold: an unburned cell whose sensor reads above this is a
	// candidate for random ignition in the adjusted state x′.
	HotThreshold float64
	// CoolThreshold: a burning cell whose sensor reads below this is a
	// candidate for extinction in x′.
	CoolThreshold float64
	// AdjustProb is the per-candidate-cell probability of applying the
	// adjustment when building x′.
	AdjustProb float64
	// ModelConfidence is the probability of returning the pure
	// simulation state x rather than the sensor-adjusted x′ — the
	// "relative confidence in the sensors and in the simulation model".
	ModelConfidence float64
	// M is the number of extra samples drawn to KDE-estimate the
	// transition and proposal densities needed for the weights.
	M int
}

// withDefaults fills zero fields.
func (c SensorAwareConfig) withDefaults(sm Sensors) SensorAwareConfig {
	if c.HotThreshold == 0 { //lint:allow floateq zero value is the unset sentinel for config defaults
		c.HotThreshold = sm.Ambient + 3*sm.Noise
	}
	if c.CoolThreshold == 0 { //lint:allow floateq zero value is the unset sentinel for config defaults
		c.CoolThreshold = sm.Ambient + sm.Noise
	}
	if c.AdjustProb == 0 { //lint:allow floateq zero value is the unset sentinel for config defaults
		c.AdjustProb = 0.5
	}
	if c.ModelConfidence == 0 { //lint:allow floateq zero value is the unset sentinel for config defaults
		c.ModelConfidence = 0.5
	}
	if c.M == 0 {
		c.M = 20
	}
	return c
}

// adjustBySensors builds x′ from x per [57]: randomly ignite unburned
// cells with sufficiently hot sensors and turn off the fire in burning
// cells with sufficiently cool sensors.
func adjustBySensors(x *State, y []float64, p Params, sm Sensors, cfg SensorAwareConfig, r *rng.Stream) *State {
	out := x.Clone()
	for cy := 0; cy < x.H; cy++ {
		for cx := 0; cx < x.W; cx++ {
			i := out.idx(cx, cy)
			b := sm.SensorBlockOf(x, cx, cy)
			if b >= len(y) {
				continue
			}
			switch out.Cells[i] {
			case Unburned:
				if y[b] > cfg.HotThreshold && r.Float64() < cfg.AdjustProb {
					out.Cells[i] = Burning
					out.Intensity[i] = math.Max(0.1, r.Normal(p.IntensityMean, p.IntensityStd))
				}
			case Burning:
				if y[b] < cfg.CoolThreshold && r.Float64() < cfg.AdjustProb {
					out.Cells[i] = Burned
					out.Intensity[i] = 0
				}
			}
		}
	}
	return out
}

// SensorAwareModel builds the improved proposal of [57]: each particle
// first simulates x from p(xₙ | xₙ₋₁); an adjusted state x′ is derived
// from the sensor readings; one of x, x′ is returned according to the
// model-confidence mixture. The densities p(xₙ | xₙ₋₁) and
// q(xₙ | yₙ, xₙ₋₁) required for the weights have no closed form, so —
// exactly as in the paper — M additional samples are drawn from each
// and the densities are estimated with a kernel density estimator over
// a summary statistic (here the burning-cell count).
func SensorAwareModel(p Params, sm Sensors, init func(r *rng.Stream) *State, cfg SensorAwareConfig) assimilate.Model[*State, []float64] {
	cfg = cfg.withDefaults(sm)
	sampleProposalOnce := func(prev *State, y []float64, r *rng.Stream) *State {
		x, err := StepFire(prev, p, r)
		if err != nil {
			panic(err)
		}
		if r.Float64() < cfg.ModelConfidence {
			return x
		}
		return adjustBySensors(x, y, p, sm, cfg, r)
	}
	return assimilate.Model[*State, []float64]{
		SampleInit:    func(y []float64, r *rng.Stream) *State { return init(r) },
		LogWeightInit: func(x *State, y []float64) float64 { return sm.LogLik(x, y) },
		SampleProposal: func(prev *State, y []float64, r *rng.Stream) *State {
			return sampleProposalOnce(prev, y, r)
		},
		LogWeight: func(x, prev *State, y []float64) float64 {
			// log αₙ = log p(y|x) + log p̂(x|prev) − log q̂(x|y,prev),
			// with both densities KDE-estimated from M fresh samples.
			r := rng.New(uint64(x.Step)*2654435761 + uint64(x.BurningCount()) + 1)
			pKDE, errP := kdeOverSummary(cfg.M, func() *State {
				s, err := StepFire(prev, p, r)
				if err != nil {
					panic(err)
				}
				return s
			})
			qKDE, errQ := kdeOverSummary(cfg.M, func() *State {
				return sampleProposalOnce(prev, y, r)
			})
			ll := sm.LogLik(x, y)
			if errP != nil || errQ != nil {
				return ll
			}
			summary := float64(x.BurningCount())
			logP := pKDE.LogDensity(summary)
			logQ := qKDE.LogDensity(summary)
			if math.IsInf(logP, -1) || math.IsInf(logQ, -1) {
				// Outside both KDE supports: fall back to the
				// likelihood-only weight rather than killing the
				// particle on estimator support error.
				return ll
			}
			return ll + logP - logQ
		},
	}
}
