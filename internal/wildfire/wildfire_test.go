package wildfire

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/assimilate"
	"modeldata/internal/rng"
)

func testParams() Params {
	return Params{
		SpreadProb: 0.25, BurnSteps: 5,
		IntensityMean: 1, IntensityStd: 0.2,
	}
}

func testSensors() Sensors {
	return Sensors{Block: 4, Ambient: 20, FireTemp: 50, Noise: 5}
}

func centerIgnited(t *testing.T, w, h int) *State {
	t.Helper()
	s, err := NewState(w, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ignite(w/2, h/2, 1); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStateBasics(t *testing.T) {
	s := centerIgnited(t, 8, 8)
	if s.BurningCount() != 1 {
		t.Fatal("ignite failed")
	}
	if c, err := s.At(4, 4); err != nil || c != Burning {
		t.Fatalf("At = %v, %v", c, err)
	}
	if _, err := s.At(-1, 0); !errors.Is(err, ErrOffGrid) {
		t.Fatalf("got %v", err)
	}
	if err := s.Ignite(99, 0, 1); !errors.Is(err, ErrOffGrid) {
		t.Fatalf("got %v", err)
	}
	if _, err := NewState(0, 5); !errors.Is(err, ErrBadGrid) {
		t.Fatalf("got %v", err)
	}
	c := s.Clone()
	c.Cells[0] = Burned
	if s.Cells[0] == Burned {
		t.Fatal("Clone not deep")
	}
}

func TestFireSpreadsAndBurnsOut(t *testing.T) {
	s := centerIgnited(t, 16, 16)
	r := rng.New(1)
	p := testParams()
	reached := 1
	for i := 0; i < 40; i++ {
		var err error
		s, err = StepFire(s, p, r)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, c := range s.BurnedOrBurning() {
			if c {
				n++
			}
		}
		if n < reached {
			t.Fatal("fire-reached set must be monotone")
		}
		reached = n
	}
	if reached < 10 {
		t.Fatalf("fire reached only %d cells in 40 steps", reached)
	}
	// Eventually everything burns out with no fuel left.
	for i := 0; i < 400 && s.BurningCount() > 0; i++ {
		var err error
		s, err = StepFire(s, p, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.BurningCount() != 0 {
		t.Fatal("fire never burned out")
	}
}

func TestWindBias(t *testing.T) {
	// Strong +x wind: fire front should reach farther right than left.
	p := testParams()
	p.WindX = 2
	rightMinusLeft := 0
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		s := centerIgnited(t, 31, 31)
		for i := 0; i < 12; i++ {
			var err error
			s, err = StepFire(s, p, r)
			if err != nil {
				t.Fatal(err)
			}
		}
		maxRight, maxLeft := 0, 0
		for y := 0; y < s.H; y++ {
			for x := 0; x < s.W; x++ {
				c, _ := s.At(x, y)
				if c != Unburned {
					if d := x - 15; d > maxRight {
						maxRight = d
					}
					if d := 15 - x; d > maxLeft {
						maxLeft = d
					}
				}
			}
		}
		rightMinusLeft += maxRight - maxLeft
	}
	if rightMinusLeft <= 0 {
		t.Fatalf("wind bias absent: Σ(right−left) = %d", rightMinusLeft)
	}
}

func TestStepFireValidation(t *testing.T) {
	s := centerIgnited(t, 4, 4)
	if _, err := StepFire(s, Params{}, rng.New(1)); !errors.Is(err, ErrBadParams) {
		t.Fatalf("got %v", err)
	}
}

func TestSensorsObserveAndLogLik(t *testing.T) {
	s := centerIgnited(t, 8, 8)
	sm := testSensors()
	if sm.Count(s) != 4 {
		t.Fatalf("sensor count = %d", sm.Count(s))
	}
	r := rng.New(2)
	y := sm.Observe(s, r)
	if len(y) != 4 {
		t.Fatalf("reading length = %d", len(y))
	}
	// The block containing the burning cell should read hotter on
	// average.
	hot := sm.SensorBlockOf(s, 4, 4)
	sumHot, sumCold := 0.0, 0.0
	for i := 0; i < 200; i++ {
		y := sm.Observe(s, r)
		sumHot += y[hot]
		sumCold += y[(hot+1)%4]
	}
	if sumHot/200 < sumCold/200+30 {
		t.Fatalf("hot block %g vs cold %g", sumHot/200, sumCold/200)
	}
	// Likelihood should prefer the true state over an empty one.
	empty, err := NewState(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	yTrue := sm.Observe(s, r)
	if sm.LogLik(s, yTrue) <= sm.LogLik(empty, yTrue) {
		t.Fatal("likelihood does not favour the generating state")
	}
	if !math.IsInf(sm.LogLik(s, []float64{1}), -1) {
		t.Fatal("length mismatch should be -Inf")
	}
}

func TestCellErrorAndConsensus(t *testing.T) {
	a := centerIgnited(t, 6, 6)
	b, err := NewState(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if CellError(a, b) != 1 {
		t.Fatalf("CellError = %d", CellError(a, b))
	}
	ps := []assimilate.Weighted[*State]{
		{X: a, W: 0.7},
		{X: b, W: 0.3},
	}
	cons, err := ConsensusState(ps)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := cons.At(3, 3); c != Burning {
		t.Fatalf("consensus center = %v", c)
	}
	if _, err := ConsensusState(nil); err == nil {
		t.Fatal("empty particle set accepted")
	}
}

// runAssimilation simulates a true fire with sensor readings and runs a
// particle filter against it, returning the mean cell error across
// steps.
func runAssimilation(t *testing.T, model assimilate.Model[*State, []float64], n int, seed uint64) float64 {
	t.Helper()
	const w, h, steps = 12, 12, 15
	p := testParams()
	sm := testSensors()
	r := rng.New(seed)
	truth := centerIgnited(t, w, h)
	f, err := assimilate.NewFilter(model, n, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	totalErr := 0
	for step := 0; step < steps; step++ {
		var err error
		truth, err = StepFire(truth, p, r)
		if err != nil {
			t.Fatal(err)
		}
		y := sm.Observe(truth, r)
		ps, err := f.Step(y)
		if err != nil {
			t.Fatal(err)
		}
		cons, err := ConsensusState(ps)
		if err != nil {
			t.Fatal(err)
		}
		totalErr += CellError(cons, truth)
	}
	return float64(totalErr) / steps
}

func initState(t *testing.T) func(r *rng.Stream) *State {
	return func(r *rng.Stream) *State {
		s, err := NewState(12, 12)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Ignite(6, 6, 1); err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func TestAssimilationBeatsFreeRunning(t *testing.T) {
	p := testParams()
	sm := testSensors()
	pfErr := runAssimilation(t, PriorModel(p, sm, initState(t)), 150, 5)

	// Free-running baseline: one unassimilated simulation vs truth.
	r := rng.New(5)
	truth := centerIgnited(t, 12, 12)
	free := centerIgnited(t, 12, 12)
	rFree := rng.New(999)
	totalErr := 0
	for step := 0; step < 15; step++ {
		var err error
		truth, err = StepFire(truth, p, r)
		if err != nil {
			t.Fatal(err)
		}
		sm.Observe(truth, r) // keep the truth stream in lockstep with runAssimilation
		free, err = StepFire(free, p, rFree)
		if err != nil {
			t.Fatal(err)
		}
		totalErr += CellError(free, truth)
	}
	freeErr := float64(totalErr) / 15
	if pfErr >= freeErr {
		t.Fatalf("assimilation error %g not better than free-running %g", pfErr, freeErr)
	}
}

func TestSensorAwareProposalReasonable(t *testing.T) {
	p := testParams()
	sm := testSensors()
	cfg := SensorAwareConfig{M: 10}
	// With few particles the sensor-aware proposal should remain
	// competitive with the prior proposal (the paper reports accuracy
	// improvements; we assert it is not substantially worse, leaving
	// the precise comparison to the E9 experiment harness).
	prior := runAssimilation(t, PriorModel(p, sm, initState(t)), 40, 21)
	aware := runAssimilation(t, SensorAwareModel(p, sm, initState(t), cfg), 40, 21)
	if aware > prior*1.5+2 {
		t.Fatalf("sensor-aware error %g ≫ prior %g", aware, prior)
	}
}

func TestSensorAwareAdjustment(t *testing.T) {
	p := testParams()
	sm := testSensors()
	cfg := SensorAwareConfig{}.withDefaults(sm)
	s := centerIgnited(t, 8, 8)
	// Readings: all blocks scorching hot.
	y := make([]float64, sm.Count(s))
	for i := range y {
		y[i] = 1000
	}
	r := rng.New(4)
	adj := adjustBySensors(s, y, p, sm, cfg, r)
	if adj.BurningCount() <= s.BurningCount() {
		t.Fatal("hot sensors ignited nothing")
	}
	// All blocks cold: burning center should eventually extinguish.
	for i := range y {
		y[i] = 0
	}
	extinguished := false
	for trial := 0; trial < 20; trial++ {
		adj = adjustBySensors(s, y, p, sm, cfg, r)
		if adj.BurningCount() == 0 {
			extinguished = true
			break
		}
	}
	if !extinguished {
		t.Fatal("cold sensors never extinguished the fire")
	}
}
