// Package sgd implements stochastic gradient descent for the
// least-squares problem min_x L(x) = ‖Ax − b‖² with tridiagonal A, and
// the distributed stratified variant (DSGD) described in §2.2 of the
// paper: rows are partitioned into the three strata {1, 4, 7, …},
// {2, 5, 8, …}, {3, 6, 9, …}; within a stratum the tridiagonal
// structure makes row updates touch disjoint entries of x, so they can
// run in parallel; the algorithm switches strata according to a
// regenerative schedule that spends equal time in each stratum.
//
// The package accounts for the data that a MapReduce realization of
// each algorithm would shuffle, which is the paper's argument for DSGD:
// "the amount of data that needs to be shuffled is negligible".
package sgd

import (
	"context"
	"errors"
	"fmt"
	"math"

	"modeldata/internal/linalg"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// ErrDiverged is returned when the iterate becomes non-finite.
var ErrDiverged = errors.New("sgd: iterate diverged")

// TridiagonalSolver is any routine that approximately solves the
// tridiagonal least-squares system; timeseries.NewSplineSGD accepts one.
type TridiagonalSolver func(tri *linalg.Tridiagonal, b []float64) ([]float64, error)

// Options configure the solvers.
type Options struct {
	// Epochs is the number of passes over the rows. Default 50.
	Epochs int
	// Step0 scales the step size; with Kaczmarz=false the step at
	// update n is Step0·(n₀+n)^(−Alpha). Default 0.5.
	Step0 float64
	// Alpha is the step-size decay exponent of the schedule
	// εₙ = n^(−α) from the paper. Default 0.75.
	Alpha float64
	// Kaczmarz selects the exact-projection step (randomized Kaczmarz),
	// an SGD variant with per-row optimal step size; it converges
	// linearly on consistent systems and is the default for the spline
	// experiments.
	Kaczmarz bool
	// Workers bounds within-stratum parallelism for DSGD. Default 4.
	Workers int
	// Seed seeds row sampling and the regenerative stratum schedule.
	Seed uint64
	// Tol, if positive, stops early once the full residual ‖Ax−b‖
	// drops below it (checked once per epoch).
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.Epochs <= 0 {
		o.Epochs = 50
	}
	if o.Step0 <= 0 {
		o.Step0 = 0.5
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.75
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// Stats describes a solver run.
type Stats struct {
	Updates      int     // row updates applied
	Epochs       int     // epochs completed
	Residual     float64 // final ‖Ax − b‖
	ShuffleBytes int64   // estimated MapReduce shuffle volume
	StratumSwaps int     // DSGD only: number of stratum switches
}

func (s Stats) String() string {
	return fmt.Sprintf("updates=%d epochs=%d residual=%.3g shuffle=%dB swaps=%d",
		s.Updates, s.Epochs, s.Residual, s.ShuffleBytes, s.StratumSwaps)
}

// rowResidual computes A_i·x − b_i for a tridiagonal A.
func rowResidual(tri *linalg.Tridiagonal, b, x []float64, i int) float64 {
	n := len(x)
	r := tri.Diag[i]*x[i] - b[i]
	if i > 0 {
		r += tri.Sub[i-1] * x[i-1]
	}
	if i < n-1 {
		r += tri.Super[i] * x[i+1]
	}
	return r
}

// rowNormSq returns ‖A_i‖² for a tridiagonal A.
func rowNormSq(tri *linalg.Tridiagonal, i int) float64 {
	n := len(tri.Diag)
	s := tri.Diag[i] * tri.Diag[i]
	if i > 0 {
		s += tri.Sub[i-1] * tri.Sub[i-1]
	}
	if i < n-1 {
		s += tri.Super[i] * tri.Super[i]
	}
	return s
}

// applyRowUpdate performs one SGD step on row i, scaling the gradient
// −2(A_i·x−b_i)·A_iᵀ by step (plain SGD) or projecting exactly
// (Kaczmarz). Only x[i−1], x[i], x[i+1] change.
func applyRowUpdate(tri *linalg.Tridiagonal, b, x []float64, i int, step float64, kaczmarz bool) {
	res := rowResidual(tri, b, x, i)
	var scale float64
	if kaczmarz {
		ns := rowNormSq(tri, i)
		if ns == 0 { //lint:allow floateq an exactly zero row norm means an all-zero row; skip before dividing
			return
		}
		scale = -res / ns
	} else {
		scale = -step * 2 * res
	}
	n := len(x)
	x[i] += scale * tri.Diag[i]
	if i > 0 {
		x[i-1] += scale * tri.Sub[i-1]
	}
	if i < n-1 {
		x[i+1] += scale * tri.Super[i]
	}
}

func residualNorm(tri *linalg.Tridiagonal, b, x []float64) (float64, error) {
	ax, err := tri.MulVec(x)
	if err != nil {
		return 0, err
	}
	return linalg.Norm2(linalg.Sub(ax, b)), nil
}

func checkFinite(x []float64) error {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrDiverged
		}
	}
	return nil
}

// Solve runs sequential SGD on min ‖Ax − b‖², sampling rows uniformly
// at random, exactly the "ordinary stochastic gradient descent" of
// §2.2. A MapReduce realization of unstratified SGD must reshuffle the
// full iterate every synchronization (once per epoch here), so
// ShuffleBytes grows with epochs·n — the cost DSGD avoids.
func Solve(tri *linalg.Tridiagonal, b []float64, opts Options) ([]float64, Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if err := tri.Validate(); err != nil {
		return nil, stats, err
	}
	n := tri.N()
	if len(b) != n {
		return nil, stats, fmt.Errorf("%w: rhs has %d entries for n=%d", linalg.ErrShape, len(b), n)
	}
	r := rng.New(opts.Seed)
	x := make([]float64, n)
	updates := 0
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for k := 0; k < n; k++ {
			i := r.Intn(n)
			step := opts.Step0 * math.Pow(float64(updates+2), -opts.Alpha)
			applyRowUpdate(tri, b, x, i, step, opts.Kaczmarz)
			updates++
		}
		stats.Epochs++
		// Full-iterate shuffle per epoch in the MapReduce realization.
		stats.ShuffleBytes += int64(8 * n)
		if err := checkFinite(x); err != nil {
			return nil, stats, err
		}
		if opts.Tol > 0 {
			res, err := residualNorm(tri, b, x)
			if err != nil {
				return nil, stats, err
			}
			if res < opts.Tol {
				break
			}
		}
	}
	stats.Updates = updates
	res, err := residualNorm(tri, b, x)
	if err != nil {
		return nil, stats, err
	}
	stats.Residual = res
	return x, stats, nil
}

// SolveDistributed runs DSGD with no cancellation. See
// SolveDistributedCtx.
func SolveDistributed(tri *linalg.Tridiagonal, b []float64, opts Options) ([]float64, Stats, error) {
	return SolveDistributedCtx(context.Background(), tri, b, opts)
}

// SolveDistributedCtx runs DSGD. Rows are stratified by index mod 3;
// rows within a stratum touch pairwise-disjoint slices of x (row i
// updates x[i−1..i+1], and stratum members are 3 apart), so each
// stratum's rows are partitioned among Workers and the partitions run
// as parallel tasks on the internal/parallel runtime (which credits
// iteration counters to any stats collector carried by ctx). Strata are
// visited in regenerative cycles: each cycle is a fresh uniform
// permutation of the three strata, giving equal long-run time per
// stratum, the condition under which [21] proves convergence.
// Cancellation of ctx is honored between stratum passes.
//
// Partition tasks mutate x in place and are therefore NOT re-runnable:
// they opt out of the runtime's retry machinery (parallel.Options.
// NoFaults), exactly as a real DSGD epoch must restart from the last
// iterate snapshot rather than re-run a half-applied sub-epoch.
//
// Shuffle accounting: on each stratum switch, only the boundary entries
// between worker partitions move (2 values per worker), matching the
// paper's "negligible" claim.
func SolveDistributedCtx(ctx context.Context, tri *linalg.Tridiagonal, b []float64, opts Options) ([]float64, Stats, error) {
	opts = opts.withDefaults()
	var stats Stats
	if err := tri.Validate(); err != nil {
		return nil, stats, err
	}
	n := tri.N()
	if len(b) != n {
		return nil, stats, fmt.Errorf("%w: rhs has %d entries for n=%d", linalg.ErrShape, len(b), n)
	}
	r := rng.New(opts.Seed)
	x := make([]float64, n)

	// Precompute strata row lists.
	strata := make([][]int, 3)
	for i := 0; i < n; i++ {
		strata[i%3] = append(strata[i%3], i)
	}

	var updates int
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		// One regenerative cycle: all three strata in random order.
		order := r.Perm(3)
		for _, s := range order {
			rows := strata[s]
			if len(rows) == 0 {
				continue
			}
			stats.StratumSwaps++
			stats.ShuffleBytes += int64(8 * 2 * opts.Workers)
			// Partition the stratum's rows among workers; disjoint x
			// regions mean no synchronization is needed inside. Seeds
			// are drawn in partition order before the fan-out so the
			// result is identical at any scheduling.
			nw := opts.Workers
			if nw > len(rows) {
				nw = len(rows)
			}
			chunk := (len(rows) + nw - 1) / nw
			base := updates // step-size clock, fixed for this stratum pass
			type part struct {
				rows []int
				seed uint64
			}
			parts := make([]part, 0, nw)
			for w := 0; w < nw; w++ {
				lo := w * chunk
				hi := lo + chunk
				if hi > len(rows) {
					hi = len(rows)
				}
				if lo >= hi {
					continue
				}
				parts = append(parts, part{rows: rows[lo:hi], seed: r.Uint64()})
			}
			err := parallel.For(ctx, len(parts), parallel.Options{Workers: len(parts), NoFaults: true}, func(w int) error {
				wr := rng.New(parts[w].seed)
				pr := parts[w].rows
				for k := 0; k < len(pr); k++ {
					i := pr[wr.Intn(len(pr))]
					step := opts.Step0 * math.Pow(float64(base+k+2), -opts.Alpha)
					applyRowUpdate(tri, b, x, i, step, opts.Kaczmarz)
				}
				return nil
			})
			if err != nil {
				return nil, stats, err
			}
			updates += len(rows)
		}
		stats.Epochs++
		if err := checkFinite(x); err != nil {
			return nil, stats, err
		}
		if opts.Tol > 0 {
			res, err := residualNorm(tri, b, x)
			if err != nil {
				return nil, stats, err
			}
			if res < opts.Tol {
				break
			}
		}
	}
	stats.Updates = updates
	res, err := residualNorm(tri, b, x)
	if err != nil {
		return nil, stats, err
	}
	stats.Residual = res
	return x, stats, nil
}

// Solver adapts Solve to the TridiagonalSolver interface.
func Solver(opts Options) TridiagonalSolver {
	return func(tri *linalg.Tridiagonal, b []float64) ([]float64, error) {
		x, _, err := Solve(tri, b, opts)
		return x, err
	}
}

// DistributedSolver adapts SolveDistributed to the TridiagonalSolver
// interface.
func DistributedSolver(opts Options) TridiagonalSolver {
	return func(tri *linalg.Tridiagonal, b []float64) ([]float64, error) {
		x, _, err := SolveDistributed(tri, b, opts)
		return x, err
	}
}
