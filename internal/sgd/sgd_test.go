package sgd

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/linalg"
	"modeldata/internal/rng"
)

// splineSystem builds the spline-like tridiagonal system used across
// the SGD tests, with a known solution.
func splineSystem(n int, seed uint64) (*linalg.Tridiagonal, []float64, []float64) {
	r := rng.New(seed)
	tri := &linalg.Tridiagonal{
		Sub:   make([]float64, n-1),
		Diag:  make([]float64, n),
		Super: make([]float64, n-1),
	}
	for i := 0; i < n; i++ {
		tri.Diag[i] = 4
	}
	for i := 0; i < n-1; i++ {
		tri.Sub[i] = 1
		tri.Super[i] = 1
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = r.Normal(0, 2)
	}
	b, err := tri.MulVec(xTrue)
	if err != nil {
		panic(err)
	}
	return tri, b, xTrue
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSolveKaczmarzConverges(t *testing.T) {
	tri, b, xTrue := splineSystem(200, 1)
	x, stats, err := Solve(tri, b, Options{Epochs: 200, Kaczmarz: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(x, xTrue); d > 1e-6 {
		t.Fatalf("Kaczmarz SGD max error = %g (stats %v)", d, stats)
	}
}

func TestSolvePlainSGDReducesResidual(t *testing.T) {
	tri, b, _ := splineSystem(100, 2)
	// Residual at x = 0 is ‖b‖.
	res0 := linalg.Norm2(b)
	_, stats, err := Solve(tri, b, Options{Epochs: 500, Step0: 0.02, Alpha: 0.51, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Residual > res0/4 {
		t.Fatalf("plain SGD residual %g did not drop well below %g", stats.Residual, res0)
	}
}

func TestSolveDistributedMatchesThomas(t *testing.T) {
	tri, b, _ := splineSystem(3000, 3)
	exact, err := tri.SolveThomas(b)
	if err != nil {
		t.Fatal(err)
	}
	x, stats, err := SolveDistributed(tri, b, Options{Epochs: 150, Kaczmarz: true, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(x, exact); d > 1e-5 {
		t.Fatalf("DSGD max error vs Thomas = %g (stats %v)", d, stats)
	}
}

func TestDSGDShuffleNegligibleVsSGD(t *testing.T) {
	// The paper's claim: DSGD shuffles a negligible amount of data
	// compared with approaches that reshuffle the full iterate.
	tri, b, _ := splineSystem(10000, 4)
	_, sgdStats, err := Solve(tri, b, Options{Epochs: 20, Kaczmarz: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, dsgdStats, err := SolveDistributed(tri, b, Options{Epochs: 20, Kaczmarz: true, Seed: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dsgdStats.ShuffleBytes*10 >= sgdStats.ShuffleBytes {
		t.Fatalf("DSGD shuffle %dB not ≪ SGD shuffle %dB",
			dsgdStats.ShuffleBytes, sgdStats.ShuffleBytes)
	}
}

func TestSolveEarlyStopOnTol(t *testing.T) {
	tri, b, _ := splineSystem(100, 5)
	_, stats, err := Solve(tri, b, Options{Epochs: 10000, Kaczmarz: true, Seed: 9, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epochs == 10000 {
		t.Fatal("Tol early stop did not trigger")
	}
	if stats.Residual > 1e-6 {
		t.Fatalf("residual after early stop = %g", stats.Residual)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	tri, _, _ := splineSystem(10, 6)
	if _, _, err := Solve(tri, []float64{1, 2}, Options{}); !errors.Is(err, linalg.ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
	if _, _, err := SolveDistributed(tri, []float64{1}, Options{}); !errors.Is(err, linalg.ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
	bad := &linalg.Tridiagonal{Diag: nil}
	if _, _, err := Solve(bad, nil, Options{}); err == nil {
		t.Fatal("invalid system accepted")
	}
}

func TestSolveDiverges(t *testing.T) {
	tri, b, _ := splineSystem(50, 7)
	// Huge constant-ish step forces divergence of plain SGD.
	_, _, err := Solve(tri, b, Options{Epochs: 50, Step0: 100, Alpha: 0.0001, Seed: 10})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("got %v, want ErrDiverged", err)
	}
}

func TestSolveDeterministic(t *testing.T) {
	tri, b, _ := splineSystem(80, 8)
	x1, _, err := Solve(tri, b, Options{Epochs: 10, Kaczmarz: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := Solve(tri, b, Options{Epochs: 10, Kaczmarz: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(x1, x2) != 0 {
		t.Fatal("Solve not deterministic for a fixed seed")
	}
}

func TestDistributedSmallSystems(t *testing.T) {
	// Systems smaller than the worker count and smaller than 3 rows
	// must still work.
	for _, n := range []int{2, 3, 4, 5} {
		tri, b, xTrue := splineSystem(n, uint64(20+n))
		x, _, err := SolveDistributed(tri, b, Options{Epochs: 400, Kaczmarz: true, Workers: 8, Seed: 1})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxAbsDiff(x, xTrue); d > 1e-5 {
			t.Fatalf("n=%d: max error %g", n, d)
		}
	}
}

func TestSolverAdapters(t *testing.T) {
	tri, b, xTrue := splineSystem(60, 30)
	for _, solver := range []TridiagonalSolver{
		Solver(Options{Epochs: 300, Kaczmarz: true, Seed: 2}),
		DistributedSolver(Options{Epochs: 300, Kaczmarz: true, Seed: 2}),
	} {
		x, err := solver(tri, b)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(x, xTrue); d > 1e-5 {
			t.Fatalf("adapter error %g", d)
		}
	}
}

func TestStatsString(t *testing.T) {
	if (Stats{}).String() == "" {
		t.Fatal("empty Stats string")
	}
}
