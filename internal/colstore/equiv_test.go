package colstore_test

// Storage-equivalence suite: every Query/SQL pipeline over the on-disk
// backend must return a byte-identical table to the same pipeline over
// the in-memory Table — including float payload bits (NaN, -0, ±Inf),
// integers beyond 2^53, spill-forced joins and group-bys at tiny
// memory budgets, and concurrent scans (run under -race).

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"modeldata/internal/colstore"
	"modeldata/internal/engine"
	"modeldata/internal/engine/plan"
	"modeldata/internal/rng"
)

// sameValueBits mirrors the engine golden suite: float equality is
// bit-pattern equality with all NaNs one class, so -0 != +0 and payload
// bits must survive the disk round-trip.
func sameValueBits(a, b engine.Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch a.Type() {
	case engine.TypeFloat:
		af, bf := a.AsFloat(), b.AsFloat()
		if math.IsNaN(af) || math.IsNaN(bf) {
			return math.IsNaN(af) && math.IsNaN(bf)
		}
		return math.Float64bits(af) == math.Float64bits(bf)
	case engine.TypeInt:
		return a.AsInt() == b.AsInt()
	case engine.TypeString:
		return a.AsString() == b.AsString()
	case engine.TypeBool:
		return a.AsBool() == b.AsBool()
	}
	return false
}

func requireSameTable(t *testing.T, label string, want, got *engine.Table) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("%s: name %q, want %q", label, got.Name, want.Name)
	}
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("%s: schema %v, want %v", label, got.Schema, want.Schema)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Schema {
			if !sameValueBits(want.Rows[i][j], got.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d: %v, want %v", label, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// randomValue mirrors the engine golden suite's corner-heavy generator:
// int64s beyond 2^53 (where float round-trips lose exactness), NaN,
// -0, ±Inf, and strings with embedded NULs.
func randomValue(r *rng.Stream, typ engine.Type) engine.Value {
	switch typ {
	case engine.TypeInt:
		switch r.Intn(8) {
		case 0:
			return engine.Int(int64(1)<<53 + 1 + int64(r.Intn(5)))
		case 1:
			return engine.Int(-(int64(1)<<53 + 3 + int64(r.Intn(5))))
		default:
			return engine.Int(int64(r.Intn(7)) - 3)
		}
	case engine.TypeFloat:
		switch r.Intn(10) {
		case 0:
			return engine.Float(math.NaN())
		case 1:
			return engine.Float(math.Copysign(0, -1))
		case 2:
			return engine.Float(math.Inf(1 - 2*r.Intn(2)))
		default:
			return engine.Float(float64(r.Intn(9))/2 - 2)
		}
	case engine.TypeString:
		opts := []string{"", "a", "b", "ab", "a\x00", "\x00a", "a\x00b", "xyz"}
		return engine.Str(opts[r.Intn(len(opts))])
	default:
		return engine.Bool(r.Intn(2) == 0)
	}
}

var equivSchema = engine.Schema{
	{Name: "id", Type: engine.TypeInt},
	{Name: "x", Type: engine.TypeFloat},
	{Name: "tag", Type: engine.TypeString},
	{Name: "flag", Type: engine.TypeBool},
}

func randomTable(r *rng.Stream, name string, n int) *engine.Table {
	t := &engine.Table{Name: name, Schema: equivSchema.Clone()}
	for i := 0; i < n; i++ {
		row := make(engine.Row, len(equivSchema))
		for j, c := range equivSchema {
			row[j] = randomValue(r, c.Type)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// pipeline is one randomly chosen op sequence, applied identically to
// the in-memory and storage-backed queries.
type pipeline struct {
	desc string
	ops  []func(*engine.Query) *engine.Query
}

func (p *pipeline) apply(q *engine.Query) *engine.Query {
	for _, op := range p.ops {
		q = op(q)
	}
	return q
}

func randomPipeline(r *rng.Stream, join *engine.Table) *pipeline {
	p := &pipeline{}
	add := func(desc string, op func(*engine.Query) *engine.Query) {
		p.desc += desc + ";"
		p.ops = append(p.ops, op)
	}
	// Leading filters (zero or more) — these double as pruning hints.
	for i := r.Intn(3); i > 0; i-- {
		switch r.Intn(4) {
		case 0:
			probe := randomValue(r, engine.Type(r.Intn(4)))
			col := equivSchema[probe.Type()].Name // schema is typ-ordered
			add(fmt.Sprintf("eq(%s)", col), func(q *engine.Query) *engine.Query {
				return q.WhereEq(col, probe)
			})
		case 1:
			cut := float64(r.Intn(5)) - 2
			add("floatle", func(q *engine.Query) *engine.Query {
				return q.WhereFloat("x", func(v float64) bool { return v <= cut })
			})
		case 2:
			lo := int64(r.Intn(7)) - 3
			hi := lo + int64(r.Intn(4))
			add("between", func(q *engine.Query) *engine.Query {
				return q.WhereExpr(plan.Between{Col: "id", Lo: plan.IntLit(lo), Hi: plan.IntLit(hi)})
			})
		case 3:
			op := []string{"<", "<=", ">", ">=", "!="}[r.Intn(5)]
			cut := float64(r.Intn(5)) - 2
			add("cmp"+op, func(q *engine.Query) *engine.Query {
				return q.WhereExpr(plan.Cmp{Op: op, Col: "x", Val: plan.FloatLit(cut)})
			})
		}
	}
	// One shaping stage.
	switch r.Intn(4) {
	case 0:
		add("groupby", func(q *engine.Query) *engine.Query {
			return q.GroupBy([]string{"tag"},
				engine.Aggregate{Fn: engine.AggCount, As: "n"},
				engine.Aggregate{Fn: engine.AggSum, Col: "x", As: "sx"},
				engine.Aggregate{Fn: engine.AggMin, Col: "id", As: "mid"},
				engine.Aggregate{Fn: engine.AggMax, Col: "x", As: "mx"},
			)
		})
	case 1:
		if join != nil {
			add("join", func(q *engine.Query) *engine.Query {
				return q.Join(join, "id", "jid")
			})
		}
	case 2:
		add("distinct", func(q *engine.Query) *engine.Query {
			return q.Select("tag", "flag").Distinct()
		})
	case 3:
		desc := r.Intn(2) == 0
		n := 1 + r.Intn(20)
		add("orderlimit", func(q *engine.Query) *engine.Query {
			return q.OrderBy("id", desc).Limit(n)
		})
	}
	return p
}

func TestStorageEquivalenceRandomPipelines(t *testing.T) {
	r := rng.New(907)
	for trial := 0; trial < 40; trial++ {
		tr := r.Split()
		tbl := randomTable(tr, "ev", tr.Intn(200))
		join := &engine.Table{Name: "dim", Schema: engine.Schema{
			{Name: "jid", Type: engine.TypeInt},
			{Name: "label", Type: engine.TypeString},
		}}
		for i := -3; i <= 3; i++ {
			join.Rows = append(join.Rows, engine.Row{engine.Int(int64(i)), engine.Str(fmt.Sprintf("L%d", i))})
		}
		st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 1 + tr.Intn(32)})
		p := randomPipeline(tr, join)

		want, werr := p.apply(engine.From(tbl)).Run()
		got, gerr := p.apply(engine.FromStorage(st)).Run()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("trial %d [%s]: error mismatch: mem=%v store=%v", trial, p.desc, werr, gerr)
		}
		if werr != nil {
			continue
		}
		requireSameTable(t, fmt.Sprintf("trial %d [%s]", trial, p.desc), want, got)
	}
}

func TestStorageEquivalenceSpillForced(t *testing.T) {
	r := rng.New(911)
	for trial := 0; trial < 15; trial++ {
		tr := r.Split()
		tbl := randomTable(tr, "ev", 50+tr.Intn(150))
		join := &engine.Table{Name: "dim", Schema: engine.Schema{
			{Name: "jid", Type: engine.TypeInt},
			{Name: "label", Type: engine.TypeString},
		}}
		for i := -5; i <= 5; i++ {
			join.Rows = append(join.Rows, engine.Row{engine.Int(int64(i)), engine.Str(fmt.Sprintf("L%d", i))})
		}
		st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 16})

		// A one-byte budget forces Grace spill on every hash build; the
		// result must still be byte-identical to the unlimited path.
		spillDir := t.TempDir()
		label := fmt.Sprintf("trial %d", trial)

		want, err := engine.From(tbl).Join(join, "id", "jid").Run()
		if err != nil {
			t.Fatalf("%s join mem: %v", label, err)
		}
		got, err := engine.FromStorage(st).Join(join, "id", "jid").
			WithMemoryBudget(1).WithSpillDir(spillDir).Run()
		if err != nil {
			t.Fatalf("%s join spill: %v", label, err)
		}
		requireSameTable(t, label+" spilled join", want, got)

		aggs := []engine.Aggregate{
			{Fn: engine.AggCount, As: "n"},
			{Fn: engine.AggSum, Col: "x", As: "sx"},
			{Fn: engine.AggMin, Col: "id", As: "mid"},
		}
		want, err = engine.From(tbl).GroupBy([]string{"tag", "flag"}, aggs...).Run()
		if err != nil {
			t.Fatalf("%s group mem: %v", label, err)
		}
		got, err = engine.FromStorage(st).GroupBy([]string{"tag", "flag"}, aggs...).
			WithMemoryBudget(1).WithSpillDir(spillDir).Run()
		if err != nil {
			t.Fatalf("%s group spill: %v", label, err)
		}
		requireSameTable(t, label+" spilled group-by", want, got)
	}
}

func TestStorageEquivalenceSQL(t *testing.T) {
	r := rng.New(919)
	tbl := randomTable(r, "ev", 300)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 32})

	mem := engine.NewDatabase()
	mem.Put(tbl)
	disk := engine.NewDatabase()
	disk.PutStorage(st)

	queries := []string{
		`SELECT * FROM ev`,
		`SELECT id, x FROM ev WHERE id BETWEEN -2 AND 2 ORDER BY id`,
		`SELECT tag, COUNT(*) AS n, SUM(x) AS sx FROM ev GROUP BY tag ORDER BY tag`,
		`SELECT DISTINCT tag FROM ev ORDER BY tag`,
		`SELECT id, tag FROM ev WHERE x >= 0 AND flag = TRUE ORDER BY id LIMIT 10`,
		`SELECT COUNT(*) AS n FROM ev WHERE x <= 0`,
	}
	for _, sql := range queries {
		want, werr := mem.Query(sql)
		got, gerr := disk.Query(sql)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: error mismatch: mem=%v store=%v", sql, werr, gerr)
		}
		if werr != nil {
			continue
		}
		requireSameTable(t, sql, want, got)
	}
}

func TestStorageEquivalenceConcurrent(t *testing.T) {
	r := rng.New(929)
	tbl := randomTable(r, "ev", 400)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 32})
	pred := plan.Between{Col: "id", Lo: plan.IntLit(-1), Hi: plan.IntLit(2)}
	want, err := engine.From(tbl).WhereExpr(pred).Run()
	if err != nil {
		t.Fatalf("in-memory: %v", err)
	}
	aggs := []engine.Aggregate{
		{Fn: engine.AggCount, As: "n"},
		{Fn: engine.AggSum, Col: "x", As: "sx"},
	}
	wantG, err := engine.From(tbl).GroupBy([]string{"tag"}, aggs...).Run()
	if err != nil {
		t.Fatalf("in-memory group: %v", err)
	}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 5; i++ {
						got, err := engine.FromStorage(st).WhereExpr(pred).Run()
						if err != nil {
							errs <- fmt.Errorf("worker %d scan: %w", w, err)
							return
						}
						if len(got.Rows) != len(want.Rows) {
							errs <- fmt.Errorf("worker %d: %d rows, want %d", w, len(got.Rows), len(want.Rows))
							return
						}
						gotG, err := engine.FromStorage(st).GroupBy([]string{"tag"}, aggs...).
							WithMemoryBudget(1).WithSpillDir(t.TempDir()).Run()
						if err != nil {
							errs <- fmt.Errorf("worker %d group: %w", w, err)
							return
						}
						if len(gotG.Rows) != len(wantG.Rows) {
							errs <- fmt.Errorf("worker %d: %d groups, want %d", w, len(gotG.Rows), len(wantG.Rows))
							return
						}
					}
					errs <- nil
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
