package colstore

// Writer: partitioning a relation into on-disk segments. Rows buffer
// in column vectors until SegmentRows accumulate, then flush as one
// segment file; Close flushes the remainder. A relation with zero rows
// still writes one empty segment so the schema round-trips.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"modeldata/internal/engine"
)

// Writer partitions blocks of one relation into segment files under a
// directory. Not safe for concurrent use.
type Writer struct {
	dir    string
	name   string
	schema engine.Schema
	rows   int // rows per segment

	// buf holds the pending segment's column vectors, schema order.
	// bounded by rows (one segment's worth; flushSegment resets it)
	buf      []any
	buffered int
	nextSeg  int
	wrote    bool
	closed   bool
}

// Options configures a Writer or Store.
type Options struct {
	// SegmentRows is the partition size; 0 means DefaultSegmentRows.
	SegmentRows int
	// DisablePruning makes Store scans decode every segment, ignoring
	// zone maps — the full-decode baseline the benchmarks compare
	// against. Writers ignore it.
	DisablePruning bool
}

// NewWriter creates a segment writer for a relation with the given
// name and schema, writing files named seg-NNNNNN.mdcs under dir
// (created if needed).
func NewWriter(dir, name string, schema engine.Schema, opt Options) (*Writer, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("colstore: relation %q needs at least one column", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	rows := opt.SegmentRows
	if rows <= 0 {
		rows = DefaultSegmentRows
	}
	w := &Writer{dir: dir, name: name, schema: schema.Clone(), rows: rows}
	w.resetBuf()
	return w, nil
}

func (w *Writer) resetBuf() {
	// bounded by one segment's row budget (w.rows)
	w.buf = make([]any, len(w.schema))
	for j, c := range w.schema {
		switch c.Type {
		case engine.TypeInt:
			w.buf[j] = make([]int64, 0, w.rows)
		case engine.TypeFloat:
			w.buf[j] = make([]float64, 0, w.rows)
		case engine.TypeString:
			w.buf[j] = make([]string, 0, w.rows)
		case engine.TypeBool:
			w.buf[j] = make([]bool, 0, w.rows)
		}
	}
	w.buffered = 0
}

// AppendBlock buffers a block's rows, flushing full segments as they
// fill. The block's schema must equal the writer's.
func (w *Writer) AppendBlock(b *engine.ColumnBlock) error {
	if w.closed {
		return fmt.Errorf("colstore: writer for %q is closed", w.name)
	}
	if !b.Schema.Equal(w.schema) {
		return fmt.Errorf("%w: block schema does not match writer", engine.ErrSchema)
	}
	d := b.Dense()
	n := d.Len()
	for lo := 0; lo < n; {
		take := w.rows - w.buffered
		if take > n-lo {
			take = n - lo
		}
		for j := range w.schema {
			vec, err := d.Vec(j)
			if err != nil {
				return err
			}
			switch v := vec.(type) {
			case []int64:
				w.buf[j] = append(w.buf[j].([]int64), v[lo:lo+take]...)
			case []float64:
				w.buf[j] = append(w.buf[j].([]float64), v[lo:lo+take]...)
			case []string:
				w.buf[j] = append(w.buf[j].([]string), v[lo:lo+take]...)
			case []bool:
				w.buf[j] = append(w.buf[j].([]bool), v[lo:lo+take]...)
			}
		}
		w.buffered += take
		lo += take
		if w.buffered == w.rows {
			if err := w.flushSegment(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AppendTable buffers a table's rows (decoded strictly — a mixed
// column is an error, since segments are typed).
func (w *Writer) AppendTable(t *engine.Table) error {
	b, err := engine.FromTable(t)
	if err != nil {
		return err
	}
	b.Name = w.name
	nb, err := reschema(b, w.schema)
	if err != nil {
		return err
	}
	return w.AppendBlock(nb)
}

// reschema renames b's columns to match the writer schema positionally
// when only names differ; types must match exactly.
func reschema(b *engine.ColumnBlock, schema engine.Schema) (*engine.ColumnBlock, error) {
	if b.Schema.Equal(schema) {
		return b, nil
	}
	if len(b.Schema) != len(schema) {
		return nil, fmt.Errorf("%w: %d columns, writer has %d", engine.ErrSchema, len(b.Schema), len(schema))
	}
	for j := range schema {
		if b.Schema[j].Type != schema[j].Type {
			return nil, fmt.Errorf("%w: column %q is %s, writer wants %s",
				engine.ErrSchema, b.Schema[j].Name, b.Schema[j].Type, schema[j].Type)
		}
	}
	d := b.Dense()
	vecs := make([]any, len(schema))
	for j := range schema {
		v, err := d.Vec(j)
		if err != nil {
			return nil, err
		}
		vecs[j] = v
	}
	return engine.BlockOf(b.Name, schema, vecs)
}

// Close flushes any buffered rows. If nothing was ever written, one
// empty segment is emitted so Open can recover the schema.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.buffered > 0 || !w.wrote {
		return w.flushSegment()
	}
	return nil
}

// flushSegment writes the buffered vectors as segment file nextSeg.
func (w *Writer) flushSegment() error {
	path := filepath.Join(w.dir, fmt.Sprintf("seg-%06d.mdcs", w.nextSeg))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeSegment(f, w.name, w.schema, w.buf, w.buffered); err != nil {
		f.Close() //lint:allow errdrop error-path cleanup; the segment write error is the one to surface
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	w.nextSeg++
	w.wrote = true
	w.resetBuf()
	return nil
}

// countingWriter tracks bytes and a running fnv64a over what passes
// through, so block offsets and checksums fall out of the write path.
type countingWriter struct {
	w   *bufio.Writer
	off int64
	sum uint64
}

func (cw *countingWriter) write(b []byte) error {
	if _, err := cw.w.Write(b); err != nil {
		return err
	}
	cw.off += int64(len(b))
	cw.sum = fnv64a(cw.sum, b)
	return nil
}

// writeSegment serializes one segment: header, column blocks, footer.
func writeSegment(f *os.File, name string, schema engine.Schema, vecs []any, rows int) error {
	cw := &countingWriter{w: bufio.NewWriterSize(f, 1<<16)}
	if err := cw.write([]byte(segMagic)); err != nil {
		return err
	}
	if err := cw.write([]byte{segVersion}); err != nil {
		return err
	}

	metas := make([]colMeta, len(schema))
	var scratch [8]byte
	for j, c := range schema {
		start := cw.off
		cw.sum = fnvOffset
		zone := engine.ZoneMap{Rows: int64(rows)}
		switch c.Type {
		case engine.TypeInt:
			v := vecs[j].([]int64)[:rows]
			var mn, mx int64
			for i, x := range v {
				binary.BigEndian.PutUint64(scratch[:], uint64(x))
				if err := cw.write(scratch[:]); err != nil {
					return err
				}
				if i == 0 || x < mn {
					mn = x
				}
				if i == 0 || x > mx {
					mx = x
				}
			}
			if rows > 0 {
				zone.HasRange = true
				zone.Min, zone.Max = engine.Int(mn), engine.Int(mx)
			}
		case engine.TypeFloat:
			v := vecs[j].([]float64)[:rows]
			var mn, mx float64
			seen := false
			for _, x := range v {
				binary.BigEndian.PutUint64(scratch[:], math.Float64bits(x))
				if err := cw.write(scratch[:]); err != nil {
					return err
				}
				if math.IsNaN(x) {
					zone.HasNaN = true
					continue
				}
				if !seen || x < mn {
					mn = x
				}
				if !seen || x > mx {
					mx = x
				}
				seen = true
			}
			if seen {
				zone.HasRange = true
				zone.Min, zone.Max = engine.Float(mn), engine.Float(mx)
			}
		case engine.TypeString:
			v := vecs[j].([]string)[:rows]
			var mn, mx string
			for i, x := range v {
				var lb [binary.MaxVarintLen64]byte
				n := binary.PutUvarint(lb[:], uint64(len(x)))
				if err := cw.write(lb[:n]); err != nil {
					return err
				}
				if err := cw.write([]byte(x)); err != nil {
					return err
				}
				if i == 0 || x < mn {
					mn = x
				}
				if i == 0 || x > mx {
					mx = x
				}
			}
			if rows > 0 {
				zone.HasRange = true
				zone.Min, zone.Max = engine.Str(mn), engine.Str(mx)
			}
		case engine.TypeBool:
			v := vecs[j].([]bool)[:rows]
			mn, mx := true, false
			for _, x := range v {
				b := byte(0)
				if x {
					b = 1
				}
				if err := cw.write([]byte{b}); err != nil {
					return err
				}
				if !x {
					mn = false
				}
				if x {
					mx = true
				}
			}
			if rows > 0 {
				zone.HasRange = true
				zone.Min, zone.Max = engine.Bool(mn), engine.Bool(mx)
			}
		}
		metas[j] = colMeta{
			name: c.Name, typ: c.Type,
			off: start, size: cw.off - start, sum: cw.sum,
			zone: zone,
		}
	}

	// Footer.
	footer := appendUvarint(nil, uint64(rows))
	footer = appendUvarint(footer, uint64(len(name)))
	footer = append(footer, name...)
	footer = appendUvarint(footer, uint64(len(metas)))
	for _, m := range metas {
		footer = appendUvarint(footer, uint64(len(m.name)))
		footer = append(footer, m.name...)
		footer = append(footer, byte(m.typ))
		footer = appendUvarint(footer, uint64(m.off))
		footer = appendUvarint(footer, uint64(m.size))
		footer = appendU64(footer, m.sum)
		var flags byte
		if m.zone.HasRange {
			flags |= zmFlagRange
		}
		if m.zone.HasNaN {
			flags |= zmFlagNaN
		}
		footer = append(footer, flags)
		footer = appendUvarint(footer, 0) // nulls, reserved
		if m.zone.HasRange {
			footer = appendTypedValue(footer, m.typ, m.zone.Min)
			footer = appendTypedValue(footer, m.typ, m.zone.Max)
		}
	}
	if err := cw.write(footer); err != nil {
		return err
	}
	if err := cw.write(appendU64(nil, fnv64a(fnvOffset, footer))); err != nil {
		return err
	}
	if err := cw.write([]byte(segTrailer)); err != nil {
		return err
	}
	if err := cw.write(appendU64(nil, uint64(len(footer)))); err != nil {
		return err
	}
	return cw.w.Flush()
}

// WriteTable is the one-call form: partition t into segments under dir.
func WriteTable(dir string, t *engine.Table, opt Options) error {
	w, err := NewWriter(dir, t.Name, t.Schema, opt)
	if err != nil {
		return err
	}
	if err := w.AppendTable(t); err != nil {
		return err
	}
	return w.Close()
}

// WriteBlock is the one-call form for a block source.
func WriteBlock(dir string, b *engine.ColumnBlock, opt Options) error {
	w, err := NewWriter(dir, b.Name, b.Schema, opt)
	if err != nil {
		return err
	}
	if err := w.AppendBlock(b); err != nil {
		return err
	}
	return w.Close()
}
