package colstore_test

// Regression tests for zone-map pruning through leading projections and
// renames. Query.leadingFilterExpr historically stopped at the first
// non-filter operation, so a leading Select or Rename silently disabled
// pruning even though the filters after it still restricted stored
// columns; every block was decoded and the only symptom was a quiet
// slowdown. The pruning hint now maps current column names back to
// stored names across the leading Select/Rename run, and these goldens
// pin that EXPLAIN reports real pruning for such queries.

import (
	"strings"
	"testing"

	"modeldata/internal/colstore"
	"modeldata/internal/engine"
	"modeldata/internal/engine/plan"
)

// explainText renders a query's EXPLAIN tree.
func explainText(t *testing.T, q *engine.Query) string {
	t.Helper()
	tree, err := q.Explain()
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	return tree.Text()
}

// requirePruned asserts the EXPLAIN output shows the expected pruning
// annotation — the golden for "pruning fired".
func requirePruned(t *testing.T, text, want string) {
	t.Helper()
	if !strings.Contains(text, "partitions=10") || !strings.Contains(text, want) {
		t.Fatalf("Explain missing %q (pruning did not fire):\n%s", want, text)
	}
}

func TestPruningSurvivesLeadingSelect(t *testing.T) {
	tbl := seqTable("z", 1000)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 100})
	pred := plan.Between{Col: "id", Lo: plan.IntLit(250), Hi: plan.IntLit(349)}

	// Filter *after* a projection: the filter column is still a stored
	// column, so 8 of 10 segments (4 blocks each) must be pruned, same
	// as the filter-first query.
	q := engine.FromStorage(st).Select("id", "x").WhereExpr(pred)
	requirePruned(t, explainText(t, q), "blocks_pruned=32")

	// Pruning stays invisible in results.
	want, err := engine.From(tbl).Select("id", "x").WhereExpr(pred).Run()
	if err != nil {
		t.Fatalf("in-memory Run: %v", err)
	}
	got, err := q.Run()
	if err != nil {
		t.Fatalf("storage Run: %v", err)
	}
	requireSameTable(t, "select-then-filter", want, got)
}

func TestPruningSurvivesLeadingRename(t *testing.T) {
	tbl := seqTable("z", 1000)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 100})
	pred := plan.Between{Col: "key", Lo: plan.IntLit(250), Hi: plan.IntLit(349)}

	// The filter references the renamed column; the pruning hint must
	// map "key" back to the stored column "id".
	q := engine.FromStorage(st).Rename("id", "key").WhereExpr(pred)
	requirePruned(t, explainText(t, q), "blocks_pruned=32")

	want, err := engine.From(tbl).Rename("id", "key").WhereExpr(pred).Run()
	if err != nil {
		t.Fatalf("in-memory Run: %v", err)
	}
	got, err := q.Run()
	if err != nil {
		t.Fatalf("storage Run: %v", err)
	}
	requireSameTable(t, "rename-then-filter", want, got)
}

func TestPruningMapsSwappedNamesCorrectly(t *testing.T) {
	// The adversarial case for name mapping: after Rename(id→key) and
	// Rename(x→id), the current name "id" refers to the STORED column
	// x. A filter on current-"id" must prune against x's zone maps (x =
	// i/8, so [10,12] hits only segment 0 → 9 segments × 4 blocks
	// pruned), and results must match the in-memory run exactly.
	tbl := seqTable("z", 1000)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 100})
	pred := plan.Between{Col: "id", Lo: plan.IntLit(10), Hi: plan.IntLit(12)}

	q := engine.FromStorage(st).Rename("id", "key").Rename("x", "id").WhereExpr(pred)
	requirePruned(t, explainText(t, q), "blocks_pruned=36")

	want, err := engine.From(tbl).Rename("id", "key").Rename("x", "id").WhereExpr(pred).Run()
	if err != nil {
		t.Fatalf("in-memory Run: %v", err)
	}
	got, err := q.Run()
	if err != nil {
		t.Fatalf("storage Run: %v", err)
	}
	requireSameTable(t, "swapped-rename filter", want, got)
}

func TestPruningStopsAtReshapingOps(t *testing.T) {
	// Operations that change row content or multiplicity end the
	// leading run: a filter after GroupBy must contribute nothing to
	// the hint (its column no longer maps to stored data).
	tbl := seqTable("z", 1000)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 100})
	q := engine.FromStorage(st).
		GroupBy([]string{"tag"}, engine.Aggregate{Fn: engine.AggCount, As: "n"}).
		WhereExpr(plan.Cmp{Op: ">", Col: "n", Val: plan.IntLit(0)})
	text := explainText(t, q)
	if strings.Contains(text, "blocks_pruned=") {
		t.Fatalf("post-aggregate filter should prune nothing:\n%s", text)
	}
}
