// Package colstore is the on-disk columnar storage backend: tables
// partition into fixed-row-count segment files, each holding one typed
// block per column plus a footer of per-column zone maps (row count,
// min/max, NaN presence) and fnv64a checksums. A Store opens a segment
// directory and implements engine.Storage, streaming segments back as
// engine.ColumnBlocks with zone-map pruning against the scan's
// predicate — so the whole operator suite (filters, joins, group-by,
// the planner, SQL) runs unchanged over on-disk data, and the
// storage-equivalence suite can pin its results byte-identical to the
// in-memory path.
//
// Segment layout (all integers big-endian or uvarint as noted):
//
//	"MDCS" <version:1>                      header
//	column blocks, concatenated:            per column, rows values
//	    int    8B two's-complement BE each
//	    float  8B IEEE-754 bits BE each
//	    string uvarint length + bytes each
//	    bool   1B each
//	footer:
//	    uvarint rows, uvarint len(name)+name, uvarint ncols
//	    per column:
//	        uvarint len(colname)+colname, 1B type
//	        uvarint offset, uvarint length      (block bounds)
//	        8B fnv64a of the block bytes
//	        1B zone flags (1=HasRange, 2=HasNaN)
//	        uvarint nulls (always 0; reserved)
//	        typed min, typed max                (when HasRange)
//	    8B fnv64a of the footer bytes above
//	"MDCF" <footerLen:8BE>                  trailer
//
// The trailer is fixed-size so a reader can locate the footer from the
// file end; per-block checksums verify lazily at decode, so opening a
// store reads only footers.
package colstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"modeldata/internal/engine"
)

const (
	segMagic     = "MDCS"
	segTrailer   = "MDCF"
	segVersion   = 1
	trailerBytes = 4 + 8 // magic + footer length

	// DefaultSegmentRows is the default rows-per-segment partition
	// size: 64k rows keeps segments near a few MB for typical schemas
	// while giving zone maps enough granularity to prune selectively.
	DefaultSegmentRows = 1 << 16

	zmFlagRange = 1
	zmFlagNaN   = 2
)

// ErrCorrupt reports a segment file whose structure or checksums do
// not verify.
var ErrCorrupt = fmt.Errorf("colstore: corrupt segment")

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv64a extends hash h with b (FNV-1a); seed with fnvOffset.
func fnv64a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// colMeta is one column's footer entry.
type colMeta struct {
	name string
	typ  engine.Type
	off  int64
	size int64
	sum  uint64
	zone engine.ZoneMap
}

// segMeta is one segment's parsed footer.
type segMeta struct {
	path string
	rows int64
	name string
	cols []colMeta
}

// appendUvarint appends v to dst.
func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// appendU64 appends v big-endian.
func appendU64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// appendTypedValue appends a zone-map bound in the column's typed
// encoding. Unlike the engine's key encoding — which collapses
// float-representable ints into float bit space — this keeps exact
// int64 bounds, which pruning comparisons need.
func appendTypedValue(dst []byte, typ engine.Type, v engine.Value) []byte {
	switch typ {
	case engine.TypeInt:
		return appendU64(dst, uint64(v.AsInt()))
	case engine.TypeFloat:
		return appendU64(dst, math.Float64bits(v.AsFloat()))
	case engine.TypeString:
		s := v.AsString()
		dst = appendUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	case engine.TypeBool:
		if v.AsBool() {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	return dst
}

// byteReader reads from an in-memory footer slice, tracking position.
type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint", ErrCorrupt)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.b) {
		return nil, fmt.Errorf("%w: truncated field", ErrCorrupt)
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *byteReader) byte() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// typedValue reads one zone-map bound written by appendTypedValue.
func (r *byteReader) typedValue(typ engine.Type) (engine.Value, error) {
	switch typ {
	case engine.TypeInt:
		u, err := r.u64()
		if err != nil {
			return engine.Value{}, err
		}
		return engine.Int(int64(u)), nil
	case engine.TypeFloat:
		u, err := r.u64()
		if err != nil {
			return engine.Value{}, err
		}
		return engine.Float(math.Float64frombits(u)), nil
	case engine.TypeString:
		n, err := r.uvarint()
		if err != nil {
			return engine.Value{}, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return engine.Value{}, err
		}
		return engine.Str(string(b)), nil
	case engine.TypeBool:
		b, err := r.byte()
		if err != nil {
			return engine.Value{}, err
		}
		return engine.Bool(b != 0), nil
	}
	return engine.Value{}, fmt.Errorf("%w: unknown bound type", ErrCorrupt)
}

// parseFooter decodes the footer bytes (checksum already verified).
func parseFooter(path string, footer []byte) (*segMeta, error) {
	r := &byteReader{b: footer}
	rows, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nameLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	name, err := r.bytes(int(nameLen))
	if err != nil {
		return nil, err
	}
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols > 1<<16 {
		return nil, fmt.Errorf("%w: implausible column count %d", ErrCorrupt, ncols)
	}
	sm := &segMeta{path: path, rows: int64(rows), name: string(name)}
	// bounded by the footer's verified column count
	sm.cols = make([]colMeta, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		cnLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		cn, err := r.bytes(int(cnLen))
		if err != nil {
			return nil, err
		}
		tb, err := r.byte()
		if err != nil {
			return nil, err
		}
		typ := engine.Type(tb)
		if typ > engine.TypeBool {
			return nil, fmt.Errorf("%w: unknown column type %d", ErrCorrupt, tb)
		}
		off, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		size, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		sum, err := r.u64()
		if err != nil {
			return nil, err
		}
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		if _, err := r.uvarint(); err != nil { // nulls, reserved
			return nil, err
		}
		cm := colMeta{
			name: string(cn), typ: typ,
			off: int64(off), size: int64(size), sum: sum,
			zone: engine.ZoneMap{
				Rows:     int64(rows),
				HasRange: flags&zmFlagRange != 0,
				HasNaN:   flags&zmFlagNaN != 0,
			},
		}
		if cm.zone.HasRange {
			if cm.zone.Min, err = r.typedValue(typ); err != nil {
				return nil, err
			}
			if cm.zone.Max, err = r.typedValue(typ); err != nil {
				return nil, err
			}
		}
		sm.cols = append(sm.cols, cm)
	}
	if r.pos != len(footer) {
		return nil, fmt.Errorf("%w: %d trailing footer bytes", ErrCorrupt, len(footer)-r.pos)
	}
	return sm, nil
}

// schema reconstructs the segment's engine schema.
func (sm *segMeta) schema() engine.Schema {
	s := make(engine.Schema, len(sm.cols))
	for i, c := range sm.cols {
		s[i] = engine.Column{Name: c.name, Type: c.typ}
	}
	return s
}
