package colstore

// Store: the on-disk implementation of engine.Storage. Open parses
// only segment footers (zone maps, offsets, checksums); scans decode
// segments lazily, verifying each block's checksum and skipping whole
// segments the zone maps prove predicate-free. A Store is immutable
// after Open and safe for concurrent scans — each segment read opens
// its own file handle.

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"modeldata/internal/engine"
	"modeldata/internal/engine/plan"
	"modeldata/internal/obs"
)

// Metric names reported by colstore into obs.Default().
const (
	// MetricSegmentsScanned counts segments actually decoded by scans.
	MetricSegmentsScanned = "colstore.segments_scanned"
	// MetricBlocksPruned counts column blocks skipped without decode
	// because a segment's zone maps refuted the scan predicate.
	MetricBlocksPruned = "colstore.blocks_pruned"
)

var (
	segmentsScanned = obs.Default().Counter(MetricSegmentsScanned)
	blocksPruned    = obs.Default().Counter(MetricBlocksPruned)
)

// Store is an opened segment directory.
type Store struct {
	dir     string
	name    string
	schema  engine.Schema
	segs    []*segMeta // footer per segment, file-name order
	rows    int64
	noPrune bool
}

// Open reads the footers of every seg-*.mdcs file under dir (sorted by
// file name, which is write order) and validates that all segments
// agree on relation name and schema.
func Open(dir string, opt Options) (*Store, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.mdcs"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("colstore: no segments under %q", dir)
	}
	sort.Strings(paths)
	st := &Store{dir: dir, noPrune: opt.DisablePruning}
	// bounded by the segment files present on disk
	st.segs = make([]*segMeta, 0, len(paths))
	for _, p := range paths {
		sm, err := readFooter(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if len(st.segs) == 0 {
			st.name = sm.name
			st.schema = sm.schema()
		} else {
			if sm.name != st.name {
				return nil, fmt.Errorf("%w: segment %s is relation %q, store is %q", ErrCorrupt, p, sm.name, st.name)
			}
			if !sm.schema().Equal(st.schema) {
				return nil, fmt.Errorf("%w: segment %s schema differs", ErrCorrupt, p)
			}
		}
		st.rows += sm.rows
		st.segs = append(st.segs, sm)
	}
	return st, nil
}

// readFooter locates, checksums, and parses one segment's footer.
func readFooter(path string) (*segMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(len(segMagic))+1+8+trailerBytes {
		return nil, fmt.Errorf("%w: file too short", ErrCorrupt)
	}
	var head [5]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if string(head[:4]) != segMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if head[4] != segVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, head[4])
	}
	var trailer [trailerBytes]byte
	if _, err := f.ReadAt(trailer[:], size-trailerBytes); err != nil {
		return nil, err
	}
	if string(trailer[:4]) != segTrailer {
		return nil, fmt.Errorf("%w: bad trailer", ErrCorrupt)
	}
	footerLen := int64(binary.BigEndian.Uint64(trailer[4:]))
	footerEnd := size - trailerBytes - 8 // footer checksum precedes trailer
	if footerLen <= 0 || footerLen > footerEnd-int64(len(segMagic))-1 {
		return nil, fmt.Errorf("%w: implausible footer length %d", ErrCorrupt, footerLen)
	}
	// bounded by the trailer's validated footer length
	buf := make([]byte, footerLen+8)
	if _, err := f.ReadAt(buf, footerEnd-footerLen); err != nil {
		return nil, err
	}
	footer, sumBytes := buf[:footerLen], buf[footerLen:]
	if fnv64a(fnvOffset, footer) != binary.BigEndian.Uint64(sumBytes) {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	return parseFooter(path, footer)
}

// StorageName implements engine.Storage.
func (st *Store) StorageName() string { return st.name }

// StorageSchema implements engine.Storage.
func (st *Store) StorageSchema() engine.Schema { return st.schema.Clone() }

// NumRows implements engine.Storage.
func (st *Store) NumRows() int64 { return st.rows }

// NumSegments returns the number of on-disk segments.
func (st *Store) NumSegments() int { return len(st.segs) }

// colProjection resolves cols (nil = all) to column indexes.
func (st *Store) colProjection(cols []string) ([]int, error) {
	if cols == nil {
		idx := make([]int, len(st.schema))
		for j := range idx {
			idx[j] = j
		}
		return idx, nil
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := st.schema.ColIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	return idx, nil
}

// ScanPartitions implements engine.Storage: each segment is one
// partition. pred is a pruning hint only — segments whose zone maps
// cannot satisfy it are skipped whole (every projected block counted
// as pruned); surviving segments decode and stream back in file order,
// so concatenated scan output is deterministic.
func (st *Store) ScanPartitions(ctx context.Context, cols []string, pred plan.Expr) (engine.PartitionIter, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	proj, err := st.colProjection(cols)
	if err != nil {
		return nil, err
	}
	return &segIter{st: st, ctx: ctx, proj: proj, pred: pred}, nil
}

// PlanScan implements engine.ScanPlanner for EXPLAIN: it predicts the
// scan's partition count and pruned-block count from footers alone.
func (st *Store) PlanScan(pred plan.Expr) (partitions, pruned int64) {
	partitions = int64(len(st.segs))
	if st.noPrune || pred == nil {
		return partitions, 0
	}
	for _, sm := range st.segs {
		if !engine.ZoneMayMatch(pred, sm.zoneStats()) {
			pruned += int64(len(st.schema))
		}
	}
	return partitions, pruned
}

// zoneStats adapts a segment's footer to the zone evaluator's lookup.
func (sm *segMeta) zoneStats() func(string) (engine.ZoneMap, bool) {
	return func(col string) (engine.ZoneMap, bool) {
		for i := range sm.cols {
			if strings.EqualFold(sm.cols[i].name, col) {
				return sm.cols[i].zone, true
			}
		}
		return engine.ZoneMap{}, false
	}
}

// segIter streams a store's segments as partitions.
type segIter struct {
	st    *Store
	ctx   context.Context
	proj  []int
	pred  plan.Expr
	next  int
	stats engine.ScanStats
}

// Next implements engine.PartitionIter.
func (it *segIter) Next() (*engine.ColumnBlock, error) {
	for it.next < len(it.st.segs) {
		if err := it.ctx.Err(); err != nil {
			return nil, err
		}
		sm := it.st.segs[it.next]
		it.next++
		it.stats.Partitions++
		if !it.st.noPrune && it.pred != nil && !engine.ZoneMayMatch(it.pred, sm.zoneStats()) {
			n := int64(len(it.proj))
			it.stats.BlocksPruned += n
			blocksPruned.Add(n)
			continue
		}
		b, err := decodeSegment(sm, it.st.schema, it.proj)
		if err != nil {
			return nil, err
		}
		it.stats.Scanned++
		segmentsScanned.Add(1)
		return b, nil
	}
	return nil, nil
}

// Stats implements engine.PartitionIter.
func (it *segIter) Stats() engine.ScanStats { return it.stats }
