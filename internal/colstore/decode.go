package colstore

// Segment decode: reading column blocks back into engine vectors. Each
// block reads with one positioned read (its footer offset/length),
// verifies its fnv64a checksum, then decodes into a typed vector that
// engine.BlockOf assembles without row boxing.

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"modeldata/internal/engine"
)

// decodeSegment reads the projected columns of one segment into an
// engine.ColumnBlock.
func decodeSegment(sm *segMeta, schema engine.Schema, proj []int) (*engine.ColumnBlock, error) {
	f, err := os.Open(sm.path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read-only descriptor; close errors carry no data loss

	outSchema := make(engine.Schema, len(proj))
	vecs := make([]any, len(proj))
	for i, j := range proj {
		cm := &sm.cols[j]
		outSchema[i] = engine.Column{Name: cm.name, Type: cm.typ}
		// bounded by the column's footer-declared block size
		raw := make([]byte, cm.size)
		if _, err := f.ReadAt(raw, cm.off); err != nil {
			return nil, fmt.Errorf("%s: column %q: %w", sm.path, cm.name, err)
		}
		if got := fnv64a(fnvOffset, raw); got != cm.sum {
			return nil, fmt.Errorf("%w: %s column %q block checksum mismatch", ErrCorrupt, sm.path, cm.name)
		}
		vec, err := decodeBlock(raw, cm.typ, int(sm.rows))
		if err != nil {
			return nil, fmt.Errorf("%s: column %q: %w", sm.path, cm.name, err)
		}
		vecs[i] = vec
	}
	return engine.BlockOf(sm.name, outSchema, vecs)
}

// decodeBlock decodes one column block's bytes into a typed vector.
func decodeBlock(raw []byte, typ engine.Type, rows int) (any, error) {
	switch typ {
	case engine.TypeInt:
		if len(raw) != rows*8 {
			return nil, fmt.Errorf("%w: int block is %d bytes, want %d", ErrCorrupt, len(raw), rows*8)
		}
		// bounded by the segment's footer-declared row count
		v := make([]int64, rows)
		for i := range v {
			v[i] = int64(binary.BigEndian.Uint64(raw[i*8:]))
		}
		return v, nil
	case engine.TypeFloat:
		if len(raw) != rows*8 {
			return nil, fmt.Errorf("%w: float block is %d bytes, want %d", ErrCorrupt, len(raw), rows*8)
		}
		// bounded by the segment's footer-declared row count
		v := make([]float64, rows)
		for i := range v {
			v[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[i*8:]))
		}
		return v, nil
	case engine.TypeString:
		// bounded by the segment's footer-declared row count
		v := make([]string, rows)
		pos := 0
		for i := range v {
			n, w := binary.Uvarint(raw[pos:])
			if w <= 0 || pos+w+int(n) > len(raw) {
				return nil, fmt.Errorf("%w: truncated string block", ErrCorrupt)
			}
			pos += w
			v[i] = string(raw[pos : pos+int(n)])
			pos += int(n)
		}
		if pos != len(raw) {
			return nil, fmt.Errorf("%w: %d trailing string-block bytes", ErrCorrupt, len(raw)-pos)
		}
		return v, nil
	case engine.TypeBool:
		if len(raw) != rows {
			return nil, fmt.Errorf("%w: bool block is %d bytes, want %d", ErrCorrupt, len(raw), rows)
		}
		// bounded by the segment's footer-declared row count
		v := make([]bool, rows)
		for i := range v {
			v[i] = raw[i] != 0
		}
		return v, nil
	}
	return nil, fmt.Errorf("%w: unknown column type %d", ErrCorrupt, typ)
}
