package colstore_test

// Unit tests for the segment format: write/read round-trips, segment
// partitioning, empty relations, corruption detection, and zone-map
// pruning accounting (iterator stats vs PlanScan's footer-only
// prediction).

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modeldata/internal/colstore"
	"modeldata/internal/engine"
	"modeldata/internal/engine/plan"
)

func seqTable(name string, n int) *engine.Table {
	t := &engine.Table{Name: name, Schema: engine.Schema{
		{Name: "id", Type: engine.TypeInt},
		{Name: "x", Type: engine.TypeFloat},
		{Name: "tag", Type: engine.TypeString},
		{Name: "flag", Type: engine.TypeBool},
	}}
	tags := []string{"a", "b", "c", ""}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, engine.Row{
			engine.Int(int64(i)),
			engine.Float(float64(i) / 8),
			engine.Str(tags[i%len(tags)]),
			engine.Bool(i%3 == 0),
		})
	}
	return t
}

func writeAndOpen(t *testing.T, tbl *engine.Table, opt colstore.Options) *colstore.Store {
	t.Helper()
	dir := t.TempDir()
	if err := colstore.WriteTable(dir, tbl, opt); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	st, err := colstore.Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

func drain(t *testing.T, it engine.PartitionIter) []*engine.ColumnBlock {
	t.Helper()
	var parts []*engine.ColumnBlock
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if b == nil {
			return parts
		}
		parts = append(parts, b)
	}
}

func TestRoundTripMultiSegment(t *testing.T) {
	tbl := seqTable("events", 100)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 16})
	if got, want := st.NumSegments(), 7; got != want { // ceil(100/16)
		t.Fatalf("NumSegments = %d, want %d", got, want)
	}
	if got := st.NumRows(); got != 100 {
		t.Fatalf("NumRows = %d, want 100", got)
	}
	if st.StorageName() != "events" {
		t.Fatalf("StorageName = %q", st.StorageName())
	}
	if !st.StorageSchema().Equal(tbl.Schema) {
		t.Fatalf("schema mismatch: %v", st.StorageSchema())
	}
	out, err := engine.FromStorage(st).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	requireSameTable(t, "round-trip", tbl, out)
}

func TestRoundTripEmptyRelation(t *testing.T) {
	tbl := seqTable("empty", 0)
	st := writeAndOpen(t, tbl, colstore.Options{})
	if st.NumSegments() != 1 {
		t.Fatalf("empty relation should write one segment, got %d", st.NumSegments())
	}
	if st.NumRows() != 0 {
		t.Fatalf("NumRows = %d, want 0", st.NumRows())
	}
	if !st.StorageSchema().Equal(tbl.Schema) {
		t.Fatalf("schema did not round-trip: %v", st.StorageSchema())
	}
	out, err := engine.FromStorage(st).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out.Rows) != 0 || !out.Schema.Equal(tbl.Schema) {
		t.Fatalf("empty query result wrong: %d rows, schema %v", len(out.Rows), out.Schema)
	}
}

func TestWriterAppendAcrossSegmentBoundaries(t *testing.T) {
	// Append in ragged block sizes; segment boundaries must not care.
	tbl := seqTable("ragged", 50)
	dir := t.TempDir()
	w, err := colstore.NewWriter(dir, tbl.Name, tbl.Schema, colstore.Options{SegmentRows: 8})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for lo := 0; lo < 50; {
		hi := lo + 1 + lo%7
		if hi > 50 {
			hi = 50
		}
		part := &engine.Table{Name: tbl.Name, Schema: tbl.Schema, Rows: tbl.Rows[lo:hi]}
		if err := w.AppendTable(part); err != nil {
			t.Fatalf("AppendTable[%d:%d]: %v", lo, hi, err)
		}
		lo = hi
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st, err := colstore.Open(dir, colstore.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	out, err := engine.FromStorage(st).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	requireSameTable(t, "ragged append", tbl, out)
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := colstore.Open(t.TempDir(), colstore.Options{}); err == nil {
		t.Fatal("Open on an empty dir should fail")
	}
}

// corruptAt flips one byte of the single segment file under dir.
func corruptAt(t *testing.T, dir string, pick func(size int64) int64) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.mdcs"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(paths))
	}
	f, err := os.OpenFile(paths[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	off := pick(fi.Size())
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("read: %v", err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func TestBlockCorruptionDetectedAtScan(t *testing.T) {
	tbl := seqTable("c", 64)
	dir := t.TempDir()
	if err := colstore.WriteTable(dir, tbl, colstore.Options{}); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	// Byte 16 is inside the first column block (header is 5 bytes, the
	// id block spans 64*8 bytes after it), far from the footer.
	corruptAt(t, dir, func(int64) int64 { return 16 })
	st, err := colstore.Open(dir, colstore.Options{})
	if err != nil {
		t.Fatalf("Open should succeed (footer intact): %v", err)
	}
	_, err = engine.FromStorage(st).Run()
	if !errors.Is(err, colstore.ErrCorrupt) {
		t.Fatalf("scan error = %v, want ErrCorrupt", err)
	}
}

func TestFooterCorruptionDetectedAtOpen(t *testing.T) {
	tbl := seqTable("c", 64)
	dir := t.TempDir()
	if err := colstore.WriteTable(dir, tbl, colstore.Options{}); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	// 40 bytes before EOF lands inside the footer (trailer is 12 bytes,
	// footer checksum 8 more; the footer itself precedes those).
	corruptAt(t, dir, func(size int64) int64 { return size - 40 })
	if _, err := colstore.Open(dir, colstore.Options{}); !errors.Is(err, colstore.ErrCorrupt) {
		t.Fatalf("Open error = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedFileDetectedAtOpen(t *testing.T) {
	tbl := seqTable("c", 64)
	dir := t.TempDir()
	if err := colstore.WriteTable(dir, tbl, colstore.Options{}); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "seg-*.mdcs"))
	fi, err := os.Stat(paths[0])
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(paths[0], fi.Size()-5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := colstore.Open(dir, colstore.Options{}); err == nil {
		t.Fatal("Open on a truncated segment should fail")
	}
}

func TestZoneMapPruning(t *testing.T) {
	// Sequential ids, 100 per segment: a BETWEEN over [250, 349] spans
	// exactly segments 2 and 3 of 10.
	tbl := seqTable("z", 1000)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 100})
	pred := plan.Between{Col: "id", Lo: plan.IntLit(250), Hi: plan.IntLit(349)}

	it, err := st.ScanPartitions(context.Background(), nil, pred)
	if err != nil {
		t.Fatalf("ScanPartitions: %v", err)
	}
	parts := drain(t, it)
	stats := it.Stats()
	if stats.Partitions != 10 || stats.Scanned != 2 {
		t.Fatalf("stats = %+v, want 10 partitions / 2 scanned", stats)
	}
	wantPruned := int64(8 * len(tbl.Schema))
	if stats.BlocksPruned != wantPruned {
		t.Fatalf("BlocksPruned = %d, want %d", stats.BlocksPruned, wantPruned)
	}
	if planned, pruned := st.PlanScan(pred); planned != 10 || pruned != wantPruned {
		t.Fatalf("PlanScan = (%d, %d), want (10, %d)", planned, pruned, wantPruned)
	}
	var rows int
	for _, b := range parts {
		rows += b.Len()
	}
	if rows != 200 { // two whole segments survive; filters re-apply later
		t.Fatalf("surviving rows = %d, want 200", rows)
	}

	// Pruning must be invisible in results: the storage query matches
	// the in-memory one exactly.
	want, err := engine.From(tbl).WhereExpr(pred).Run()
	if err != nil {
		t.Fatalf("in-memory Run: %v", err)
	}
	got, err := engine.FromStorage(st).WhereExpr(pred).Run()
	if err != nil {
		t.Fatalf("storage Run: %v", err)
	}
	requireSameTable(t, "pruned scan", want, got)
}

func TestDisablePruningScansEverything(t *testing.T) {
	tbl := seqTable("z", 1000)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 100, DisablePruning: true})
	pred := plan.Between{Col: "id", Lo: plan.IntLit(250), Hi: plan.IntLit(349)}
	it, err := st.ScanPartitions(context.Background(), nil, pred)
	if err != nil {
		t.Fatalf("ScanPartitions: %v", err)
	}
	drain(t, it)
	stats := it.Stats()
	if stats.Scanned != 10 || stats.BlocksPruned != 0 {
		t.Fatalf("stats = %+v, want all 10 scanned, 0 pruned", stats)
	}
	if _, pruned := st.PlanScan(pred); pruned != 0 {
		t.Fatalf("PlanScan pruned = %d, want 0", pruned)
	}
}

func TestNaNSegmentsSurviveOrderPredicates(t *testing.T) {
	// A segment whose float column is all NaN must still be scanned for
	// <=-style predicates (NaN rows match them under engine semantics)
	// but may be pruned for <.
	tbl := &engine.Table{Name: "nan", Schema: engine.Schema{
		{Name: "x", Type: engine.TypeFloat},
	}}
	for i := 0; i < 4; i++ {
		tbl.Rows = append(tbl.Rows, engine.Row{engine.Float(math.NaN())})
	}
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 4})

	le := plan.Cmp{Op: "<=", Col: "x", Val: plan.FloatLit(0)}
	if _, pruned := st.PlanScan(le); pruned != 0 {
		t.Fatalf("all-NaN segment pruned for <= (pruned=%d); NaN rows match <=", pruned)
	}
	lt := plan.Cmp{Op: "<", Col: "x", Val: plan.FloatLit(0)}
	if _, pruned := st.PlanScan(lt); pruned == 0 {
		t.Fatal("all-NaN segment not pruned for <; NaN rows never match <")
	}

	for _, pred := range []plan.Expr{le, lt} {
		want, err := engine.From(tbl).WhereExpr(pred).Run()
		if err != nil {
			t.Fatalf("in-memory: %v", err)
		}
		got, err := engine.FromStorage(st).WhereExpr(pred).Run()
		if err != nil {
			t.Fatalf("storage: %v", err)
		}
		requireSameTable(t, "NaN pruning", want, got)
	}
}

func TestExplainReportsPruning(t *testing.T) {
	tbl := seqTable("z", 1000)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 100})
	tree, err := engine.FromStorage(st).
		WhereExpr(plan.Between{Col: "id", Lo: plan.IntLit(250), Hi: plan.IntLit(349)}).
		Explain()
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	text := tree.Text()
	if !strings.Contains(text, "partitions=10") || !strings.Contains(text, "blocks_pruned=32") {
		t.Fatalf("Explain missing partition/pruning annotations:\n%s", text)
	}
}

func TestScanHonorsContextCancel(t *testing.T) {
	tbl := seqTable("c", 64)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 8})
	ctx, cancel := context.WithCancel(context.Background())
	it, err := st.ScanPartitions(ctx, nil, nil)
	if err != nil {
		t.Fatalf("ScanPartitions: %v", err)
	}
	if _, err := it.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	cancel()
	if _, err := it.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
}

func TestColumnProjection(t *testing.T) {
	tbl := seqTable("p", 40)
	st := writeAndOpen(t, tbl, colstore.Options{SegmentRows: 16})
	it, err := st.ScanPartitions(context.Background(), []string{"tag", "id"}, nil)
	if err != nil {
		t.Fatalf("ScanPartitions: %v", err)
	}
	for _, b := range drain(t, it) {
		if len(b.Schema) != 2 || b.Schema[0].Name != "tag" || b.Schema[1].Name != "id" {
			t.Fatalf("projected schema = %v", b.Schema)
		}
	}
	if _, err := st.ScanPartitions(context.Background(), []string{"nope"}, nil); err == nil {
		t.Fatal("projection of a missing column should fail")
	}
}
