package indemics

import (
	"fmt"
	"math"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
)

// Params are the disease-dynamics parameters of the transition
// functions.
type Params struct {
	// Beta is the per-day transmission rate along a unit-weight edge:
	// an infectious person transmits to a susceptible contact with
	// probability 1 − exp(−Beta·weight) each day.
	Beta float64
	// LatentDays is the mean E→I delay; InfectiousDays the mean I→R
	// duration. Both are geometric with these means.
	LatentDays     float64
	InfectiousDays float64
	// FearGrowth raises a person's fear level when a neighbor is
	// infectious; fear scales contact weights down by (1 − Fear).
	FearGrowth float64
}

func (p Params) validate() error {
	if p.Beta <= 0 || p.LatentDays <= 0 || p.InfectiousDays <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadParams, p)
	}
	return nil
}

// Sim is the compute-side ("HPC") epidemic simulation: it owns the
// network state and advances it day by day between observation times.
type Sim struct {
	Net    *Network
	Params Params
	Day    int
	r      *rng.Stream
}

// NewSim creates a simulation over the network.
func NewSim(net *Network, params Params, seed uint64) (*Sim, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return &Sim{Net: net, Params: params, r: rng.New(seed)}, nil
}

// Seed infects k randomly chosen susceptible people.
func (s *Sim) Seed(k int) {
	n := len(s.Net.People)
	for tries := 0; k > 0 && tries < 100*n; tries++ {
		i := s.r.Intn(n)
		if s.Net.People[i].State == Susceptible {
			s.Net.People[i].State = Infectious
			s.Net.People[i].daysInState = 0
			k--
		}
	}
}

// Step advances the epidemic by one day: infectious people expose
// susceptible contacts, exposed people progress to infectious, and
// infectious people recover, with fear levels rising near infection —
// the node/edge transition functions of §2.4.
func (s *Sim) Step() {
	people := s.Net.People
	pRecover := 1 / s.Params.InfectiousDays
	pActivate := 1 / s.Params.LatentDays

	// Phase 1: transmission, computed against the start-of-day states.
	newlyExposed := make([]int, 0)
	for i := range people {
		if people[i].State != Infectious {
			continue
		}
		for _, c := range s.Net.Adj[i] {
			dst := &people[c.To]
			if dst.State != Susceptible {
				continue
			}
			w := c.Weight * (1 - dst.Fear)
			pInfect := 1 - math.Exp(-s.Params.Beta*w)
			if s.r.Float64() < pInfect {
				newlyExposed = append(newlyExposed, c.To)
			}
			if s.Params.FearGrowth > 0 {
				dst.Fear += s.Params.FearGrowth * (1 - dst.Fear)
			}
		}
	}
	// Phase 2: disease progression.
	for i := range people {
		p := &people[i]
		switch p.State {
		case Exposed:
			if s.r.Float64() < pActivate {
				p.State = Infectious
				p.daysInState = 0
				continue
			}
		case Infectious:
			if s.r.Float64() < pRecover {
				p.State = Recovered
				p.daysInState = 0
				continue
			}
		}
		p.daysInState++
	}
	// Phase 3: apply the day's exposures (duplicates are harmless).
	for _, id := range newlyExposed {
		if people[id].State == Susceptible {
			people[id].State = Exposed
			people[id].daysInState = 0
		}
	}
	s.Day++
}

// Counts tallies the population by health state.
func (s *Sim) Counts() map[Health]int {
	out := make(map[Health]int, 5)
	for i := range s.Net.People {
		out[s.Net.People[i].State]++
	}
	return out
}

// AttackRate returns the fraction of the population that has left the
// susceptible state through infection (E+I+R).
func (s *Sim) AttackRate() float64 {
	c := s.Counts()
	n := len(s.Net.People)
	return float64(c[Exposed]+c[Infectious]+c[Recovered]) / float64(n)
}

// Vaccinate applies the vaccination action to the given people:
// susceptible (and exposed, modeling post-exposure prophylaxis)
// individuals become Vaccinated and stop participating in transmission.
func (s *Sim) Vaccinate(ids []int) error {
	for _, id := range ids {
		if id < 0 || id >= len(s.Net.People) {
			return fmt.Errorf("%w: %d", ErrNoPerson, id)
		}
		p := &s.Net.People[id]
		if p.State == Susceptible || p.State == Exposed {
			p.State = Vaccinated
			p.daysInState = 0
		}
	}
	return nil
}

// Quarantine removes all contacts of the given people (edge deletion).
func (s *Sim) Quarantine(ids []int) error {
	for _, id := range ids {
		if id < 0 || id >= len(s.Net.People) {
			return fmt.Errorf("%w: %d", ErrNoPerson, id)
		}
		s.Net.RemoveEdges(id)
	}
	return nil
}

// PersonTable snapshots the person states into a relational table —
// the RDBMS side of the Indemics division of labour. Columns: pid, age,
// state, fear, days_in_state.
func (s *Sim) PersonTable() *engine.Table {
	t := engine.MustNewTable("person", engine.Schema{
		{Name: "pid", Type: engine.TypeInt},
		{Name: "age", Type: engine.TypeInt},
		{Name: "state", Type: engine.TypeString},
		{Name: "fear", Type: engine.TypeFloat},
		{Name: "days_in_state", Type: engine.TypeInt},
	})
	for i := range s.Net.People {
		p := &s.Net.People[i]
		t.MustInsert(
			engine.Int(int64(p.ID)),
			engine.Int(int64(p.Age)),
			engine.Str(p.State.String()),
			engine.Float(p.Fear),
			engine.Int(int64(p.daysInState)),
		)
	}
	return t
}

// Database snapshots the full simulation state as a relational
// database: person plus contact tables.
func (s *Sim) Database() *engine.Database {
	db := engine.NewDatabase()
	db.Put(s.PersonTable())
	contacts := engine.MustNewTable("contact", engine.Schema{
		{Name: "src", Type: engine.TypeInt},
		{Name: "dst", Type: engine.TypeInt},
		{Name: "weight", Type: engine.TypeFloat},
	})
	for i, adj := range s.Net.Adj {
		for _, c := range adj {
			if i < c.To { // one row per undirected edge
				contacts.MustInsert(engine.Int(int64(i)), engine.Int(int64(c.To)), engine.Float(c.Weight))
			}
		}
	}
	db.Put(contacts)
	return db
}

// Observer is invoked at each observation time with the current day and
// a fresh relational snapshot; it may inspect the state with queries
// and apply interventions to the simulation. This is the interactive
// extension to partially observed Markov decision processes that §2.4
// describes.
type Observer func(day int, db *engine.Database, sim *Sim) error

// Run advances the simulation for days steps, invoking the observer
// after each day's transition (observe may be nil). The per-day
// snapshot carries the person table; observers needing the (much
// larger) contact table can call sim.Database() for a full snapshot.
func (s *Sim) Run(days int, observe Observer) error {
	for d := 0; d < days; d++ {
		s.Step()
		if observe != nil {
			db := engine.NewDatabase()
			db.Put(s.PersonTable())
			if err := observe(s.Day, db, s); err != nil {
				return fmt.Errorf("indemics: observer at day %d: %w", s.Day, err)
			}
		}
	}
	return nil
}

// PIDs extracts the pid column of a query result as ints — the common
// "intervention subpopulation" shape of Algorithm 1.
func PIDs(t *engine.Table) ([]int, error) {
	col, err := t.FloatColumn("pid")
	if err != nil {
		// The pid column may be prefixed after joins; try common forms.
		for _, c := range t.Schema {
			if len(c.Name) >= 4 && c.Name[len(c.Name)-4:] == ".pid" {
				col, err = t.FloatColumn(c.Name)
				break
			}
		}
		if err != nil {
			return nil, err
		}
	}
	out := make([]int, len(col))
	for i, v := range col {
		out[i] = int(v)
	}
	return out, nil
}

// VaccinatePreschoolersPolicy is Algorithm 1 of the paper, compiled to
// code: after each day, count preschoolers (0 ≤ age ≤ 4); if more than
// triggerFrac of them are infectious, vaccinate all of them. It returns
// the observer and a pointer to the day the intervention fired (-1 if
// never).
func VaccinatePreschoolersPolicy(triggerFrac float64) (Observer, *int) {
	fired := -1
	firedPtr := &fired
	obs := func(day int, db *engine.Database, sim *Sim) error {
		if *firedPtr >= 0 {
			return nil // vaccinate once
		}
		person, err := db.Get("person")
		if err != nil {
			return err
		}
		// CREATE TABLE Preschool(pid) AS SELECT pid FROM Person
		// WHERE 0 <= age <= 4.
		preschool, err := engine.From(person).
			WhereFloat("age", func(a float64) bool { return a >= 0 && a <= 4 }).
			Select("pid").
			Run()
		if err != nil {
			return err
		}
		nPreschool := preschool.Len()
		if nPreschool == 0 {
			return nil
		}
		// WITH InfectedPreschool AS (... join with infected persons).
		infected, err := engine.From(person).
			WhereFloat("age", func(a float64) bool { return a >= 0 && a <= 4 }).
			WhereEq("state", engine.Str("I")).
			Count()
		if err != nil {
			return err
		}
		if float64(infected) > triggerFrac*float64(nPreschool) {
			ids, err := PIDs(preschool)
			if err != nil {
				return err
			}
			if err := sim.Vaccinate(ids); err != nil {
				return err
			}
			*firedPtr = day
		}
		return nil
	}
	return obs, firedPtr
}

// VaccinatePreschoolersSQL is Algorithm 1 expressed in actual SQL text
// against the relational snapshot, mirroring the paper's listing:
//
//	CREATE TABLE Preschool(pid) AS
//	  (SELECT pid FROM Person WHERE 0 <= age <= 4);
//	DEFINE nPreschool AS (SELECT COUNT(pid) FROM Preschool);
//	for day = 1 to 300:
//	  WITH InfectedPreschool(pid) AS (SELECT pid FROM Preschool,
//	       InfectedPerson WHERE Preschool.pid = InfectedPerson.pid);
//	  DEFINE nInfectedPreschool AS (SELECT COUNT(pid) FROM ...);
//	  if nInfectedPreschool > 1% × nPreschool:
//	     Apply vaccines to SELECT(pid FROM Preschool)
//
// It behaves identically to VaccinatePreschoolersPolicy but exercises
// the engine's SQL front end.
func VaccinatePreschoolersSQL(triggerFrac float64) (Observer, *int) {
	fired := -1
	firedPtr := &fired
	obs := func(day int, db *engine.Database, sim *Sim) error {
		if *firedPtr >= 0 {
			return nil
		}
		nPreschool, err := db.QueryScalar(
			`SELECT COUNT(pid) FROM person WHERE age >= 0 AND age <= 4`)
		if err != nil {
			return err
		}
		if nPreschool == 0 { //lint:allow floateq COUNT returns an exact small integer in a float column
			return nil
		}
		nInfected, err := db.QueryScalar(
			`SELECT COUNT(pid) FROM person WHERE age >= 0 AND age <= 4 AND state = 'I'`)
		if err != nil {
			return err
		}
		if nInfected > triggerFrac*nPreschool {
			preschool, err := db.Query(`SELECT pid FROM person WHERE age >= 0 AND age <= 4`)
			if err != nil {
				return err
			}
			ids, err := PIDs(preschool)
			if err != nil {
				return err
			}
			if err := sim.Vaccinate(ids); err != nil {
				return err
			}
			*firedPtr = day
		}
		return nil
	}
	return obs, firedPtr
}

// Damage computes the economic performance measure of §2.4 ("number of
// infected cases or economic damage"): a cost per person ever infected
// plus a cost per vaccine administered. Policies are compared — and
// optimized — on this scalar.
func (s *Sim) Damage(costPerCase, costPerVaccine float64) float64 {
	c := s.Counts()
	cases := c[Exposed] + c[Infectious] + c[Recovered]
	return costPerCase*float64(cases) + costPerVaccine*float64(c[Vaccinated])
}
