// Package indemics reproduces the Indemics architecture of §2.4 of the
// paper (Bisset et al., TOMACS 2014): an interactive epidemic-modeling
// system that divides labour between a compute side — a network model
// of disease transmission whose state is advanced by transition
// functions — and a relational database side, against which the
// experimenter issues SQL queries at observation times to assess the
// epidemic state, compute performance measures, and specify complex
// interventions as subset-selection queries plus actions.
package indemics

import (
	"errors"
	"fmt"

	"modeldata/internal/rng"
)

// Common errors.
var (
	ErrNoPerson  = errors.New("indemics: no such person")
	ErrBadParams = errors.New("indemics: invalid simulation parameters")
)

// Health is the disease state of an individual (an SEIR-style
// progression plus vaccination).
type Health uint8

// Health states.
const (
	Susceptible Health = iota
	Exposed
	Infectious
	Recovered
	Vaccinated
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Susceptible:
		return "S"
	case Exposed:
		return "E"
	case Infectious:
		return "I"
	case Recovered:
		return "R"
	case Vaccinated:
		return "V"
	}
	return fmt.Sprintf("Health(%d)", uint8(h))
}

// Person is one node of the contact network. Nodes carry health and
// behavioral state plus static demographics, per §2.4.
type Person struct {
	ID    int
	Age   int
	State Health
	// Fear is the behavioral state in [0, 1]; frightened individuals
	// reduce their contact weights.
	Fear float64
	// daysInState counts days since the last state transition.
	daysInState int
}

// Contact is a weighted edge of the network; Weight folds the §2.4 edge
// attributes (contact duration and type) into a transmission-rate
// multiplier.
type Contact struct {
	To     int
	Weight float64
}

// Network is the contact network: people plus adjacency lists. Edges
// are stored once per direction so deletions (quarantine) are local.
type Network struct {
	People []Person
	Adj    [][]Contact
}

// NewNetwork creates a network with n isolated people.
func NewNetwork(n int) *Network {
	net := &Network{
		People: make([]Person, n),
		Adj:    make([][]Contact, n),
	}
	for i := range net.People {
		net.People[i] = Person{ID: i, State: Susceptible}
	}
	return net
}

// AddEdge inserts an undirected contact between a and b.
func (n *Network) AddEdge(a, b int, weight float64) error {
	if a < 0 || a >= len(n.People) || b < 0 || b >= len(n.People) {
		return fmt.Errorf("%w: edge %d–%d", ErrNoPerson, a, b)
	}
	n.Adj[a] = append(n.Adj[a], Contact{To: b, Weight: weight})
	n.Adj[b] = append(n.Adj[b], Contact{To: a, Weight: weight})
	return nil
}

// RemoveEdges deletes every contact incident on person id — the edge
// deletion ("quarantine") transition of §2.4.
func (n *Network) RemoveEdges(id int) {
	for _, c := range n.Adj[id] {
		peers := n.Adj[c.To]
		out := peers[:0]
		for _, pc := range peers {
			if pc.To != id {
				out = append(out, pc)
			}
		}
		n.Adj[c.To] = out
	}
	n.Adj[id] = nil
}

// Degree returns the contact count of person id.
func (n *Network) Degree(id int) int { return len(n.Adj[id]) }

// NumEdges returns the number of undirected edges.
func (n *Network) NumEdges() int {
	total := 0
	for _, adj := range n.Adj {
		total += len(adj)
	}
	return total / 2
}

// PopulationConfig drives synthetic population generation, standing in
// for the regional synthetic populations Indemics was run on.
type PopulationConfig struct {
	N int
	// MeanDegree is the average number of contacts per person in the
	// Watts-Strogatz substrate.
	MeanDegree int
	// Rewire is the Watts-Strogatz rewiring probability, giving the
	// small-world structure of real contact networks.
	Rewire float64
	// AgeWeights gives the population share of each age band
	// 0–4, 5–17, 18–64, 65+. If nil, a default pyramid is used.
	AgeWeights []float64
}

// ageBands maps band index to a representative sampler range.
var ageBands = [4][2]int{{0, 5}, {5, 18}, {18, 65}, {65, 95}}

// GeneratePopulation builds a synthetic small-world contact network
// with demographic attributes.
func GeneratePopulation(cfg PopulationConfig, r *rng.Stream) (*Network, error) {
	if cfg.N <= 2 || cfg.MeanDegree < 2 {
		return nil, fmt.Errorf("%w: N=%d MeanDegree=%d", ErrBadParams, cfg.N, cfg.MeanDegree)
	}
	weights := cfg.AgeWeights
	if weights == nil {
		weights = []float64{0.06, 0.17, 0.62, 0.15}
	}
	if len(weights) != 4 {
		return nil, fmt.Errorf("%w: need 4 age weights, got %d", ErrBadParams, len(weights))
	}
	net := NewNetwork(cfg.N)
	for i := range net.People {
		band := r.Categorical(weights)
		lo, hi := ageBands[band][0], ageBands[band][1]
		net.People[i].Age = lo + r.Intn(hi-lo)
	}
	// Watts-Strogatz ring lattice with rewiring.
	k := cfg.MeanDegree / 2
	type edgeKey struct{ a, b int }
	seen := make(map[edgeKey]bool)
	addOnce := func(a, b int, w float64) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		key := edgeKey{a, b}
		if seen[key] {
			return
		}
		seen[key] = true
		_ = net.AddEdge(a, b, w) //lint:allow errdrop indices are in range by construction, so AddEdge cannot fail
	}
	for i := 0; i < cfg.N; i++ {
		for j := 1; j <= k; j++ {
			dst := (i + j) % cfg.N
			if r.Float64() < cfg.Rewire {
				dst = r.Intn(cfg.N)
			}
			w := 0.5 + r.Float64() // heterogeneous contact intensity
			addOnce(i, dst, w)
		}
	}
	return net, nil
}
