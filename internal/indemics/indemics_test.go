package indemics

import (
	"errors"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
)

func testPopulation(t *testing.T, n int, seed uint64) *Network {
	t.Helper()
	net, err := GeneratePopulation(PopulationConfig{
		N: n, MeanDegree: 8, Rewire: 0.1,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testParams() Params {
	return Params{Beta: 0.3, LatentDays: 2, InfectiousDays: 4}
}

func TestGeneratePopulationShape(t *testing.T) {
	net := testPopulation(t, 500, 1)
	if len(net.People) != 500 {
		t.Fatalf("people = %d", len(net.People))
	}
	// Mean degree ≈ 8.
	totalDeg := 0
	for i := range net.People {
		totalDeg += net.Degree(i)
	}
	mean := float64(totalDeg) / 500
	if mean < 6 || mean > 10 {
		t.Fatalf("mean degree = %g", mean)
	}
	// Ages span the bands.
	bands := make(map[int]int)
	for _, p := range net.People {
		switch {
		case p.Age < 5:
			bands[0]++
		case p.Age < 18:
			bands[1]++
		case p.Age < 65:
			bands[2]++
		default:
			bands[3]++
		}
	}
	for b := 0; b < 4; b++ {
		if bands[b] == 0 {
			t.Fatalf("age band %d empty", b)
		}
	}
}

func TestGeneratePopulationErrors(t *testing.T) {
	if _, err := GeneratePopulation(PopulationConfig{N: 1, MeanDegree: 4}, rng.New(1)); !errors.Is(err, ErrBadParams) {
		t.Fatalf("got %v", err)
	}
	if _, err := GeneratePopulation(PopulationConfig{N: 100, MeanDegree: 4, AgeWeights: []float64{1}}, rng.New(1)); !errors.Is(err, ErrBadParams) {
		t.Fatalf("got %v", err)
	}
}

func TestNetworkEdgeOps(t *testing.T) {
	net := NewNetwork(4)
	if err := net.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddEdge(0, 9, 1); !errors.Is(err, ErrNoPerson) {
		t.Fatalf("got %v", err)
	}
	if net.NumEdges() != 2 || net.Degree(1) != 2 {
		t.Fatalf("edges=%d deg1=%d", net.NumEdges(), net.Degree(1))
	}
	net.RemoveEdges(1)
	if net.NumEdges() != 0 || net.Degree(0) != 0 || net.Degree(2) != 0 {
		t.Fatal("quarantine did not remove incident edges")
	}
}

func TestEpidemicSpreads(t *testing.T) {
	net := testPopulation(t, 1000, 2)
	sim, err := NewSim(net, testParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sim.Seed(5)
	if c := sim.Counts(); c[Infectious] != 5 {
		t.Fatalf("seeded %d infectious", c[Infectious])
	}
	if err := sim.Run(60, nil); err != nil {
		t.Fatal(err)
	}
	ar := sim.AttackRate()
	if ar < 0.3 {
		t.Fatalf("attack rate = %g, epidemic did not take off", ar)
	}
	c := sim.Counts()
	total := 0
	for _, v := range c {
		total += v
	}
	if total != 1000 {
		t.Fatalf("state counts sum to %d", total)
	}
}

func TestEpidemicDeterministic(t *testing.T) {
	run := func() float64 {
		net := testPopulation(t, 300, 7)
		sim, err := NewSim(net, testParams(), 9)
		if err != nil {
			t.Fatal(err)
		}
		sim.Seed(3)
		if err := sim.Run(30, nil); err != nil {
			t.Fatal(err)
		}
		return sim.AttackRate()
	}
	if run() != run() {
		t.Fatal("simulation not deterministic for fixed seeds")
	}
}

func TestFearDampensSpread(t *testing.T) {
	attack := func(fearGrowth float64) float64 {
		net := testPopulation(t, 800, 11)
		p := testParams()
		p.FearGrowth = fearGrowth
		sim, err := NewSim(net, p, 13)
		if err != nil {
			t.Fatal(err)
		}
		sim.Seed(5)
		if err := sim.Run(60, nil); err != nil {
			t.Fatal(err)
		}
		return sim.AttackRate()
	}
	noFear := attack(0)
	fear := attack(0.3)
	if fear >= noFear {
		t.Fatalf("fear did not dampen spread: %g vs %g", fear, noFear)
	}
}

func TestParamsValidation(t *testing.T) {
	net := NewNetwork(10)
	if _, err := NewSim(net, Params{}, 1); !errors.Is(err, ErrBadParams) {
		t.Fatalf("got %v", err)
	}
}

func TestVaccinateAndQuarantine(t *testing.T) {
	net := NewNetwork(3)
	if err := net.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(net, testParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	net.People[2].State = Infectious
	if err := sim.Vaccinate([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if net.People[0].State != Vaccinated {
		t.Fatal("susceptible not vaccinated")
	}
	if net.People[2].State != Infectious {
		t.Fatal("vaccination must not cure the infectious")
	}
	if err := sim.Vaccinate([]int{99}); !errors.Is(err, ErrNoPerson) {
		t.Fatalf("got %v", err)
	}
	if err := sim.Quarantine([]int{0}); err != nil {
		t.Fatal(err)
	}
	if net.NumEdges() != 0 {
		t.Fatal("quarantine kept edges")
	}
	if err := sim.Quarantine([]int{-1}); !errors.Is(err, ErrNoPerson) {
		t.Fatalf("got %v", err)
	}
}

func TestSnapshotTables(t *testing.T) {
	net := testPopulation(t, 50, 21)
	sim, err := NewSim(net, testParams(), 22)
	if err != nil {
		t.Fatal(err)
	}
	sim.Seed(2)
	db := sim.Database()
	person, err := db.Get("person")
	if err != nil {
		t.Fatal(err)
	}
	if person.Len() != 50 {
		t.Fatalf("person rows = %d", person.Len())
	}
	contact, err := db.Get("contact")
	if err != nil {
		t.Fatal(err)
	}
	if contact.Len() != net.NumEdges() {
		t.Fatalf("contact rows = %d, want %d", contact.Len(), net.NumEdges())
	}
	// SQL-side observation: percent infected via a query.
	n, err := engine.From(person).WhereEq("state", engine.Str("I")).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("infected by query = %d, want 2", n)
	}
}

func TestPIDs(t *testing.T) {
	tbl := engine.MustNewTable("x", engine.Schema{{Name: "pid", Type: engine.TypeInt}})
	tbl.MustInsert(engine.Int(4))
	tbl.MustInsert(engine.Int(7))
	ids, err := PIDs(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 7 {
		t.Fatalf("ids = %v", ids)
	}
	bad := engine.MustNewTable("y", engine.Schema{{Name: "other", Type: engine.TypeInt}})
	if _, err := PIDs(bad); err == nil {
		t.Fatal("missing pid accepted")
	}
}

func TestVaccinatePreschoolersPolicy(t *testing.T) {
	// Algorithm 1 end-to-end: with the policy active, preschoolers
	// should end up largely vaccinated and the final attack rate lower
	// than without intervention.
	runWith := func(policy bool) (float64, int, *Sim) {
		net := testPopulation(t, 1500, 31)
		sim, err := NewSim(net, testParams(), 33)
		if err != nil {
			t.Fatal(err)
		}
		sim.Seed(10)
		var obs Observer
		fired := -1
		var firedPtr *int = &fired
		if policy {
			obs, firedPtr = VaccinatePreschoolersPolicy(0.01)
		}
		if err := sim.Run(100, obs); err != nil {
			t.Fatal(err)
		}
		return sim.AttackRate(), *firedPtr, sim
	}
	arBase, _, _ := runWith(false)
	arPolicy, fired, sim := runWith(true)
	if fired < 0 {
		t.Fatal("intervention never fired")
	}
	if arPolicy >= arBase {
		t.Fatalf("intervention did not reduce attack rate: %g vs %g", arPolicy, arBase)
	}
	// Most preschoolers should be vaccinated (those still S/E at
	// trigger time).
	vax := 0
	preschool := 0
	for _, p := range sim.Net.People {
		if p.Age <= 4 {
			preschool++
			if p.State == Vaccinated {
				vax++
			}
		}
	}
	if preschool == 0 || float64(vax)/float64(preschool) < 0.5 {
		t.Fatalf("vaccinated %d of %d preschoolers", vax, preschool)
	}
}

func TestObserverErrorPropagates(t *testing.T) {
	net := testPopulation(t, 100, 41)
	sim, err := NewSim(net, testParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("obs-fail")
	err = sim.Run(5, func(int, *engine.Database, *Sim) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v", err)
	}
}

func TestVaccinatePreschoolersSQLMatchesFluent(t *testing.T) {
	// The SQL-text Algorithm 1 must behave identically to the fluent-
	// API version: same trigger day, same final attack rate.
	run := func(useSQL bool) (float64, int) {
		net := testPopulation(t, 1200, 51)
		sim, err := NewSim(net, testParams(), 53)
		if err != nil {
			t.Fatal(err)
		}
		sim.Seed(8)
		var obs Observer
		var firedPtr *int
		if useSQL {
			obs, firedPtr = VaccinatePreschoolersSQL(0.01)
		} else {
			obs, firedPtr = VaccinatePreschoolersPolicy(0.01)
		}
		if err := sim.Run(80, obs); err != nil {
			t.Fatal(err)
		}
		return sim.AttackRate(), *firedPtr
	}
	arSQL, daySQL := run(true)
	arFluent, dayFluent := run(false)
	if daySQL != dayFluent {
		t.Fatalf("trigger days differ: SQL %d vs fluent %d", daySQL, dayFluent)
	}
	if arSQL != arFluent {
		t.Fatalf("attack rates differ: SQL %g vs fluent %g", arSQL, arFluent)
	}
	if daySQL < 0 {
		t.Fatal("intervention never fired")
	}
}
