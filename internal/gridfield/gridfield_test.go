package gridfield

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"modeldata/internal/rng"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid("g")
	if err := g.AddCell(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCell(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCell(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddCell(0, 0); err == nil {
		t.Fatal("duplicate cell accepted")
	}
	if err := g.AddCell(3, -1); !errors.Is(err, ErrBadDim) {
		t.Fatalf("got %v", err)
	}
	if err := g.AddIncidence(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddIncidence(2, 0); !errors.Is(err, ErrIncident) {
		t.Fatalf("got %v", err)
	}
	if err := g.AddIncidence(9, 2); !errors.Is(err, ErrNoCell) {
		t.Fatalf("got %v", err)
	}
	if d, _ := g.Dim(2); d != 1 {
		t.Fatal("Dim wrong")
	}
	if _, err := g.Dim(42); !errors.Is(err, ErrNoCell) {
		t.Fatalf("got %v", err)
	}
}

func TestIncidenceRelation(t *testing.T) {
	// Segment example from the paper: line segment x is a side of
	// square y, so x ≤ y; vertices below segments below squares.
	g := NewGrid("g")
	for id, dim := range map[int]int{0: 0, 1: 0, 10: 1, 20: 2} {
		if err := g.AddCell(id, dim); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddIncidence(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddIncidence(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := g.AddIncidence(10, 20); err != nil {
		t.Fatal(err)
	}
	if !g.Incident(0, 0) {
		t.Fatal("x ≤ x must hold")
	}
	if !g.Incident(0, 10) || !g.Incident(10, 20) {
		t.Fatal("direct incidence missing")
	}
	if !g.Incident(0, 20) {
		t.Fatal("incidence must be transitive (vertex ≤ square)")
	}
	if g.Incident(20, 0) {
		t.Fatal("incidence must not hold downward")
	}
}

func TestUniformGrid1D(t *testing.T) {
	g, err := UniformGrid1D("line", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells(0)) != 5 || len(g.Cells(1)) != 4 {
		t.Fatalf("cells: %d vertices, %d segments", len(g.Cells(0)), len(g.Cells(1)))
	}
	if !g.Incident(2, 6) { // vertex 2 is an endpoint of segment 6 (= 5+1)
		t.Fatal("vertex-segment incidence missing")
	}
	if _, err := UniformGrid1D("x", 1); !errors.Is(err, ErrBadDim) {
		t.Fatalf("got %v", err)
	}
}

func TestIrregularGrid2D(t *testing.T) {
	g, err := IrregularGrid2D("estuary", 4, 3, func(q int) bool { return q == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells(0)) != 12 {
		t.Fatalf("vertices = %d", len(g.Cells(0)))
	}
	// 3×2 = 6 quads minus the dropped one.
	if len(g.Cells(2)) != 5 {
		t.Fatalf("quads = %d", len(g.Cells(2)))
	}
	// A surviving quad touches its four corners.
	quad := g.Cells(2)[0]
	n := 0
	for _, v := range g.Cells(0) {
		if g.Incident(v, quad) {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("quad corner count = %d", n)
	}
	if _, err := IrregularGrid2D("x", 1, 5, nil); !errors.Is(err, ErrBadDim) {
		t.Fatalf("got %v", err)
	}
}

func TestBindAndRestrict(t *testing.T) {
	g, err := UniformGrid1D("line", 10)
	if err != nil {
		t.Fatal(err)
	}
	fld, err := Bind(g, 0, func(id int) float64 { return float64(id) })
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := fld.Value(7); v != 7 {
		t.Fatal("bind wrong")
	}
	if _, err := fld.Value(999); !errors.Is(err, ErrNoData) {
		t.Fatalf("got %v", err)
	}
	big := fld.Restrict(func(id int, v float64) bool { return v >= 5 })
	if len(big.Data) != 5 {
		t.Fatalf("restricted cells = %d", len(big.Data))
	}
	if _, err := Bind(g, 7, nil); !errors.Is(err, ErrBadDim) {
		t.Fatalf("got %v", err)
	}
}

func TestRegridAggregations(t *testing.T) {
	src, err := UniformGrid1D("fine", 9) // vertices 0..8
	if err != nil {
		t.Fatal(err)
	}
	dst, err := UniformGrid1D("coarse", 3) // vertices 0..2
	if err != nil {
		t.Fatal(err)
	}
	fld, err := Bind(src, 0, func(id int) float64 { return float64(id) })
	if err != nil {
		t.Fatal(err)
	}
	assign := func(srcID int) (int, bool) { return srcID / 3, true }
	cases := map[Agg][3]float64{
		AggMean:  {1, 4, 7},
		AggSum:   {3, 12, 21},
		AggMin:   {0, 3, 6},
		AggMax:   {2, 5, 8},
		AggCount: {3, 3, 3},
	}
	for agg, want := range cases {
		out, err := fld.Regrid(dst, 0, assign, agg)
		if err != nil {
			t.Fatalf("agg %d: %v", agg, err)
		}
		for dstID := 0; dstID < 3; dstID++ {
			if v := out.Data[dstID]; v != want[dstID] {
				t.Errorf("agg %d cell %d = %g, want %g", agg, dstID, v, want[dstID])
			}
		}
	}
}

func TestRegridDropsUnassigned(t *testing.T) {
	src, _ := UniformGrid1D("fine", 6)
	dst, _ := UniformGrid1D("coarse", 2)
	fld, _ := Bind(src, 0, func(id int) float64 { return 1 })
	out, err := fld.Regrid(dst, 0, func(srcID int) (int, bool) {
		if srcID < 3 {
			return 0, true
		}
		return 0, false
	}, AggCount)
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 3 {
		t.Fatalf("count = %g", out.Data[0])
	}
	if _, ok := out.Data[1]; ok {
		t.Fatal("empty target cell materialized")
	}
}

func TestRegridDimensionCheck(t *testing.T) {
	src, _ := UniformGrid1D("fine", 4)
	dst, _ := UniformGrid1D("coarse", 4)
	fld, _ := Bind(src, 0, func(id int) float64 { return 0 })
	// Segment IDs in dst are 4..6 (dim 1), not dim 0.
	_, err := fld.Regrid(dst, 0, func(srcID int) (int, bool) { return 4, true }, AggMean)
	if !errors.Is(err, ErrBadDim) {
		t.Fatalf("got %v", err)
	}
	_, err = fld.Regrid(dst, 0, func(srcID int) (int, bool) { return 99, true }, AggMean)
	if !errors.Is(err, ErrNoCell) {
		t.Fatalf("got %v", err)
	}
}

func TestMerge(t *testing.T) {
	g, _ := UniformGrid1D("g", 5)
	a, _ := Bind(g, 0, func(id int) float64 { return float64(id) })
	b, _ := Bind(g, 0, func(id int) float64 { return 10 })
	m, err := a.Merge(b, func(x, y float64) float64 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	if m.Data[3] != 13 {
		t.Fatalf("merge = %g", m.Data[3])
	}
	other, _ := UniformGrid1D("h", 5)
	c, _ := Bind(other, 0, func(id int) float64 { return 0 })
	if _, err := a.Merge(c, nil); !errors.Is(err, ErrBadDim) {
		t.Fatalf("got %v", err)
	}
}

// TestRestrictRegridCommute verifies the optimization law of §2.2: a
// restriction on the regrid output commutes with regridding the
// restricted input, when the restriction predicate depends only on
// which target cell a source cell maps to.
func TestRestrictRegridCommute(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		src, err := IrregularGrid2D("fine", 9, 9, func(q int) bool { return r.Bool(0.2) })
		if err != nil {
			return false
		}
		dst, err := UniformGrid1D("bands", 9)
		if err != nil {
			return false
		}
		fld, err := Bind(src, 0, func(id int) float64 { return float64(id % 17) })
		if err != nil {
			return false
		}
		// Source vertex (i, j) maps to band j (a dim-0 cell of dst).
		assign := func(srcID int) (int, bool) { return srcID / 9, true }
		keepBand := func(band int) bool { return band%2 == 0 }

		// Plan A: regrid everything, then restrict the output.
		full, err := fld.Regrid(dst, 0, assign, AggMean)
		if err != nil {
			return false
		}
		planA := full.Restrict(func(id int, v float64) bool { return keepBand(id) })

		// Plan B: restrict the source to cells mapping into kept
		// bands, then regrid (fewer cells touched).
		restricted := fld.Restrict(func(id int, v float64) bool {
			band, _ := assign(id)
			return keepBand(band)
		})
		planB, err := restricted.Regrid(dst, 0, assign, AggMean)
		if err != nil {
			return false
		}
		if len(planA.Data) != len(planB.Data) {
			return false
		}
		for id, v := range planA.Data {
			if w, ok := planB.Data[id]; !ok || math.Abs(v-w) > 1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPushdownTouchesFewerCells verifies the efficiency half of the
// rewrite: restriction-first regrids fewer cells.
func TestPushdownTouchesFewerCells(t *testing.T) {
	src, err := UniformGrid1D("fine", 1000)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := UniformGrid1D("coarse", 10)
	if err != nil {
		t.Fatal(err)
	}
	assign := func(srcID int) (int, bool) { return srcID / 100, true }
	keep := func(band int) bool { return band == 0 }

	mk := func() *Field {
		fld, err := Bind(src, 0, func(id int) float64 { return float64(id) })
		if err != nil {
			t.Fatal(err)
		}
		return fld
	}

	// Plan A: regrid-then-restrict.
	a := mk()
	full, err := a.Regrid(dst, 0, assign, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	full.Restrict(func(id int, v float64) bool { return keep(id) })
	regridA := *a.RegridTouched

	// Plan B: restrict-then-regrid.
	b := mk()
	restricted := b.Restrict(func(id int, v float64) bool {
		band, _ := assign(id)
		return keep(band)
	})
	if _, err := restricted.Regrid(dst, 0, assign, AggMean); err != nil {
		t.Fatal(err)
	}
	regridB := *b.RegridTouched

	// Plan B regrids only the surviving 10% of the cells; the expensive
	// operator does an order of magnitude less work.
	if regridB*5 >= regridA {
		t.Fatalf("pushdown regridded %d cells vs %d — no saving", regridB, regridA)
	}
}
