// Package gridfield implements the gridfield algebra of Howe and Maier
// (VLDB Journal 2005), surveyed in §2.2 of the paper as database-style
// technology for transforming gridded scientific data. A grid is a
// collection of heterogeneous cells of various dimensions with an
// incidence relation x ≤ y (x = y, or dim(x) < dim(y) and x touches y).
// A gridfield binds data to the cells of one dimension. The central
// operator is regrid, which maps a source gridfield's cells onto a
// target grid's cells via a many-to-one assignment function and
// aggregates the bound values; restrict is the selection analogue. The
// algebra's optimization opportunity — certain restrictions commute
// with regrid, so filters can be pushed below the (expensive) regrid —
// is exercised by experiment E13.
package gridfield

import (
	"errors"
	"fmt"
	"sort"
)

// Common errors.
var (
	ErrNoCell   = errors.New("gridfield: no such cell")
	ErrNoData   = errors.New("gridfield: no data bound at this dimension")
	ErrBadDim   = errors.New("gridfield: invalid cell dimension")
	ErrBadAgg   = errors.New("gridfield: unknown aggregation")
	ErrIncident = errors.New("gridfield: invalid incidence pair")
)

// Cell is one abstract cell of a grid.
type Cell struct {
	ID  int
	Dim int
}

// Grid is a collection of cells plus the incidence relation.
type Grid struct {
	Name string
	// cells maps dimension → sorted cell IDs.
	cells map[int][]int
	// up[id] lists the higher-dimensional cells incident to id;
	// down[id] the lower-dimensional ones.
	up, down map[int][]int
	dimOf    map[int]int
}

// NewGrid returns an empty grid.
func NewGrid(name string) *Grid {
	return &Grid{
		Name:  name,
		cells: make(map[int][]int),
		up:    make(map[int][]int),
		down:  make(map[int][]int),
		dimOf: make(map[int]int),
	}
}

// AddCell inserts a cell. Cell IDs are global across dimensions.
func (g *Grid) AddCell(id, dim int) error {
	if dim < 0 {
		return fmt.Errorf("%w: %d", ErrBadDim, dim)
	}
	if _, ok := g.dimOf[id]; ok {
		return fmt.Errorf("gridfield: duplicate cell id %d", id)
	}
	g.dimOf[id] = dim
	g.cells[dim] = insertSorted(g.cells[dim], id)
	return nil
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// AddIncidence records x ≤ y: dim(x) must be strictly less than dim(y)
// and x touches y.
func (g *Grid) AddIncidence(x, y int) error {
	dx, ok := g.dimOf[x]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoCell, x)
	}
	dy, ok := g.dimOf[y]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoCell, y)
	}
	if dx >= dy {
		return fmt.Errorf("%w: dim(%d)=%d not below dim(%d)=%d", ErrIncident, x, dx, y, dy)
	}
	g.up[x] = append(g.up[x], y)
	g.down[y] = append(g.down[y], x)
	return nil
}

// Cells returns the sorted IDs of dimension-k cells.
func (g *Grid) Cells(k int) []int {
	out := make([]int, len(g.cells[k]))
	copy(out, g.cells[k])
	return out
}

// Dim returns a cell's dimension.
func (g *Grid) Dim(id int) (int, error) {
	d, ok := g.dimOf[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoCell, id)
	}
	return d, nil
}

// Incident reports x ≤ y per the paper's definition: x = y, or x
// appears in y's downward incidence closure (transitively).
func (g *Grid) Incident(x, y int) bool {
	if x == y {
		return true
	}
	// BFS down from y.
	seen := map[int]bool{y: true}
	queue := []int{y}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, d := range g.down[c] {
			if d == x {
				return true
			}
			if !seen[d] {
				seen[d] = true
				queue = append(queue, d)
			}
		}
	}
	return false
}

// Field is a gridfield: a grid with data bound to the cells of one
// dimension (type τ_k = float64 in this implementation).
type Field struct {
	Grid *Grid
	Dim  int
	Data map[int]float64 // cell ID → value
	// Touched counts cell visits performed by operators on this field
	// and its derivations. RegridTouched counts only the visits made by
	// the (expensive) regrid operator — the quantity the E13 rewrite
	// experiment compares, since restriction is a cheap scan while each
	// regridded cell pays assignment plus aggregation work.
	Touched       *int
	RegridTouched *int
}

// Bind creates a gridfield by evaluating f on every dimension-k cell of
// the grid.
func Bind(g *Grid, k int, f func(cellID int) float64) (*Field, error) {
	ids := g.cells[k]
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: dimension %d has no cells", ErrBadDim, k)
	}
	touched, regridTouched := 0, 0
	fld := &Field{
		Grid: g, Dim: k, Data: make(map[int]float64, len(ids)),
		Touched: &touched, RegridTouched: &regridTouched,
	}
	for _, id := range ids {
		fld.Data[id] = f(id)
	}
	return fld, nil
}

// Value returns the datum bound to a cell.
func (f *Field) Value(cellID int) (float64, error) {
	v, ok := f.Data[cellID]
	if !ok {
		return 0, fmt.Errorf("%w: cell %d", ErrNoData, cellID)
	}
	return v, nil
}

// CellIDs returns the sorted cell IDs carrying data.
func (f *Field) CellIDs() []int {
	out := make([]int, 0, len(f.Data))
	for id := range f.Data {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Restrict keeps the cells whose bound value satisfies pred — the
// analogue of relational selection.
func (f *Field) Restrict(pred func(cellID int, v float64) bool) *Field {
	out := &Field{
		Grid: f.Grid, Dim: f.Dim, Data: make(map[int]float64),
		Touched: f.Touched, RegridTouched: f.RegridTouched,
	}
	for _, id := range f.CellIDs() {
		*f.Touched++
		v := f.Data[id]
		if pred(id, v) {
			out.Data[id] = v
		}
	}
	return out
}

// Agg is a regrid aggregation function.
type Agg uint8

// Aggregations.
const (
	AggMean Agg = iota
	AggSum
	AggMin
	AggMax
	AggCount
)

// Regrid maps this field's cells onto the target grid's dimension-k
// cells via the many-to-one assignment function and aggregates the
// mapped values — the central gridfield operator. Source cells whose
// assignment returns ok=false are dropped. Target cells receiving no
// source cells are absent from the result.
func (f *Field) Regrid(target *Grid, k int, assign func(srcCellID int) (dstCellID int, ok bool), agg Agg) (*Field, error) {
	sums := make(map[int]float64)
	mins := make(map[int]float64)
	maxs := make(map[int]float64)
	counts := make(map[int]int)
	for _, src := range f.CellIDs() {
		*f.Touched++
		*f.RegridTouched++
		dst, ok := assign(src)
		if !ok {
			continue
		}
		if d, err := target.Dim(dst); err != nil {
			return nil, err
		} else if d != k {
			return nil, fmt.Errorf("%w: assignment maps into dimension %d, want %d", ErrBadDim, d, k)
		}
		v := f.Data[src]
		if counts[dst] == 0 {
			mins[dst], maxs[dst] = v, v
		} else {
			if v < mins[dst] {
				mins[dst] = v
			}
			if v > maxs[dst] {
				maxs[dst] = v
			}
		}
		sums[dst] += v
		counts[dst]++
	}
	out := &Field{
		Grid: target, Dim: k, Data: make(map[int]float64, len(counts)),
		Touched: f.Touched, RegridTouched: f.RegridTouched,
	}
	for dst, n := range counts {
		switch agg {
		case AggMean:
			out.Data[dst] = sums[dst] / float64(n)
		case AggSum:
			out.Data[dst] = sums[dst]
		case AggMin:
			out.Data[dst] = mins[dst]
		case AggMax:
			out.Data[dst] = maxs[dst]
		case AggCount:
			out.Data[dst] = float64(n)
		default:
			return nil, fmt.Errorf("%w: %d", ErrBadAgg, agg)
		}
	}
	return out, nil
}

// Merge intersects two fields over the same grid dimension, combining
// values with the given function (the algebra's binary operator).
func (f *Field) Merge(other *Field, combine func(a, b float64) float64) (*Field, error) {
	if f.Grid != other.Grid || f.Dim != other.Dim {
		return nil, fmt.Errorf("%w: merge across grids or dimensions", ErrBadDim)
	}
	out := &Field{
		Grid: f.Grid, Dim: f.Dim, Data: make(map[int]float64),
		Touched: f.Touched, RegridTouched: f.RegridTouched,
	}
	for id, a := range f.Data {
		if b, ok := other.Data[id]; ok {
			out.Data[id] = combine(a, b)
		}
	}
	return out, nil
}

// UniformGrid1D builds a 1-D grid with n vertices (dim 0, IDs 0..n−1)
// and n−1 segments (dim 1, IDs n..2n−2), each segment incident to its
// two endpoint vertices — the simplest CORIE-style grid.
func UniformGrid1D(name string, n int) (*Grid, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2 vertices", ErrBadDim)
	}
	g := NewGrid(name)
	for i := 0; i < n; i++ {
		if err := g.AddCell(i, 0); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n-1; i++ {
		seg := n + i
		if err := g.AddCell(seg, 1); err != nil {
			return nil, err
		}
		if err := g.AddIncidence(i, seg); err != nil {
			return nil, err
		}
		if err := g.AddIncidence(i+1, seg); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// IrregularGrid2D builds a 2-D grid of nx×ny vertices with quad cells,
// dropping each quad independently with probability holeFrac decided by
// the pick function — an irregular grid of the kind the gridfield
// algebra targets. pick(i) must be deterministic for reproducibility.
//
// Vertex (i, j) has ID j·nx+i (dim 0); quad (i, j) has
// ID nx·ny + j·(nx−1)+i (dim 2) and is incident to its four corner
// vertices.
func IrregularGrid2D(name string, nx, ny int, dropQuad func(quadIndex int) bool) (*Grid, error) {
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2×2 vertices", ErrBadDim)
	}
	g := NewGrid(name)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if err := g.AddCell(j*nx+i, 0); err != nil {
				return nil, err
			}
		}
	}
	base := nx * ny
	for j := 0; j < ny-1; j++ {
		for i := 0; i < nx-1; i++ {
			qi := j*(nx-1) + i
			if dropQuad != nil && dropQuad(qi) {
				continue
			}
			id := base + qi
			if err := g.AddCell(id, 2); err != nil {
				return nil, err
			}
			for _, v := range []int{j*nx + i, j*nx + i + 1, (j+1)*nx + i, (j+1)*nx + i + 1} {
				if err := g.AddIncidence(v, id); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
