package parallel

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats accumulates per-run execution counters across every parallel
// loop (and MapReduce shuffle) that runs under a context carrying it.
// All methods are safe for concurrent use and nil-safe: a nil *Stats
// counts nothing, so hot loops may call Add* unconditionally.
type Stats struct {
	start        time.Time
	iterations   atomic.Int64
	shuffleBytes atomic.Int64
	taskAttempts atomic.Int64
	retries      atomic.Int64
	specLaunches atomic.Int64
	specWins     atomic.Int64
	backoffNanos atomic.Int64
}

// NewStats returns a Stats collector whose clock starts now.
func NewStats() *Stats { return &Stats{start: time.Now()} }

// AddIterations records n completed Monte Carlo iterations (samples,
// particles, chain replicates, design points, …).
func (s *Stats) AddIterations(n int64) {
	if s != nil {
		s.iterations.Add(n)
	}
}

// AddShuffleBytes records n bytes moved through a shuffle stage.
func (s *Stats) AddShuffleBytes(n int64) {
	if s != nil {
		s.shuffleBytes.Add(n)
	}
}

// AddTaskAttempts records n task attempts launched (first tries,
// retries, and speculative backups all count).
func (s *Stats) AddTaskAttempts(n int64) {
	if s != nil {
		s.taskAttempts.Add(n)
	}
}

// AddRetries records n failed task attempts that were re-run.
func (s *Stats) AddRetries(n int64) {
	if s != nil {
		s.retries.Add(n)
	}
}

// AddSpeculativeLaunches records n backup attempts launched against
// straggling tasks.
func (s *Stats) AddSpeculativeLaunches(n int64) {
	if s != nil {
		s.specLaunches.Add(n)
	}
}

// AddSpeculativeWins records n tasks whose committed result came from a
// speculative backup rather than the original attempt.
func (s *Stats) AddSpeculativeWins(n int64) {
	if s != nil {
		s.specWins.Add(n)
	}
}

// AddBackoff records time spent pausing between failed attempts.
func (s *Stats) AddBackoff(d time.Duration) {
	if s != nil {
		s.backoffNanos.Add(int64(d))
	}
}

// Iterations returns the iterations completed so far.
func (s *Stats) Iterations() int64 {
	if s == nil {
		return 0
	}
	return s.iterations.Load()
}

// ShuffleBytes returns the shuffle bytes recorded so far.
func (s *Stats) ShuffleBytes() int64 {
	if s == nil {
		return 0
	}
	return s.shuffleBytes.Load()
}

// TaskAttempts returns the task attempts launched so far.
func (s *Stats) TaskAttempts() int64 {
	if s == nil {
		return 0
	}
	return s.taskAttempts.Load()
}

// Retries returns the failed attempts re-run so far.
func (s *Stats) Retries() int64 {
	if s == nil {
		return 0
	}
	return s.retries.Load()
}

// SpeculativeLaunches returns the backup attempts launched so far.
func (s *Stats) SpeculativeLaunches() int64 {
	if s == nil {
		return 0
	}
	return s.specLaunches.Load()
}

// SpeculativeWins returns the tasks won by a backup attempt so far.
func (s *Stats) SpeculativeWins() int64 {
	if s == nil {
		return 0
	}
	return s.specWins.Load()
}

// BackoffTime returns the cumulative retry backoff recorded so far.
func (s *Stats) BackoffTime() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.backoffNanos.Load())
}

// Elapsed returns the wall-clock time since NewStats.
func (s *Stats) Elapsed() time.Duration {
	if s == nil || s.start.IsZero() {
		return 0
	}
	return time.Since(s.start)
}

// SamplesPerSec returns the iteration throughput since NewStats.
func (s *Stats) SamplesPerSec() float64 {
	el := s.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Iterations()) / el
}

// Snapshot is a point-in-time copy of the counters, safe to retain.
type Snapshot struct {
	Iterations          int64
	ShuffleBytes        int64
	TaskAttempts        int64
	Retries             int64
	SpeculativeLaunches int64
	SpeculativeWins     int64
	BackoffTime         time.Duration
	Elapsed             time.Duration
	SamplesPerSec       float64
}

// Snapshot captures the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Iterations:          s.Iterations(),
		ShuffleBytes:        s.ShuffleBytes(),
		TaskAttempts:        s.TaskAttempts(),
		Retries:             s.Retries(),
		SpeculativeLaunches: s.SpeculativeLaunches(),
		SpeculativeWins:     s.SpeculativeWins(),
		BackoffTime:         s.BackoffTime(),
		Elapsed:             s.Elapsed(),
		SamplesPerSec:       s.SamplesPerSec(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("iters=%d shuffle=%dB attempts=%d retries=%d spec=%d/%d backoff=%s elapsed=%s rate=%.4g/s",
		s.Iterations, s.ShuffleBytes, s.TaskAttempts, s.Retries,
		s.SpeculativeWins, s.SpeculativeLaunches,
		s.BackoffTime.Round(time.Microsecond),
		s.Elapsed.Round(time.Millisecond), s.SamplesPerSec)
}
