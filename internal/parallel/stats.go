package parallel

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats accumulates per-run execution counters across every parallel
// loop (and MapReduce shuffle) that runs under a context carrying it.
// All methods are safe for concurrent use and nil-safe: a nil *Stats
// counts nothing, so hot loops may call Add* unconditionally.
type Stats struct {
	start        time.Time
	iterations   atomic.Int64
	shuffleBytes atomic.Int64
}

// NewStats returns a Stats collector whose clock starts now.
func NewStats() *Stats { return &Stats{start: time.Now()} }

// AddIterations records n completed Monte Carlo iterations (samples,
// particles, chain replicates, design points, …).
func (s *Stats) AddIterations(n int64) {
	if s != nil {
		s.iterations.Add(n)
	}
}

// AddShuffleBytes records n bytes moved through a shuffle stage.
func (s *Stats) AddShuffleBytes(n int64) {
	if s != nil {
		s.shuffleBytes.Add(n)
	}
}

// Iterations returns the iterations completed so far.
func (s *Stats) Iterations() int64 {
	if s == nil {
		return 0
	}
	return s.iterations.Load()
}

// ShuffleBytes returns the shuffle bytes recorded so far.
func (s *Stats) ShuffleBytes() int64 {
	if s == nil {
		return 0
	}
	return s.shuffleBytes.Load()
}

// Elapsed returns the wall-clock time since NewStats.
func (s *Stats) Elapsed() time.Duration {
	if s == nil || s.start.IsZero() {
		return 0
	}
	return time.Since(s.start)
}

// SamplesPerSec returns the iteration throughput since NewStats.
func (s *Stats) SamplesPerSec() float64 {
	el := s.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Iterations()) / el
}

// Snapshot is a point-in-time copy of the counters, safe to retain.
type Snapshot struct {
	Iterations    int64
	ShuffleBytes  int64
	Elapsed       time.Duration
	SamplesPerSec float64
}

// Snapshot captures the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Iterations:    s.Iterations(),
		ShuffleBytes:  s.ShuffleBytes(),
		Elapsed:       s.Elapsed(),
		SamplesPerSec: s.SamplesPerSec(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("iters=%d shuffle=%dB elapsed=%s rate=%.4g/s",
		s.Iterations, s.ShuffleBytes, s.Elapsed.Round(time.Millisecond), s.SamplesPerSec)
}
