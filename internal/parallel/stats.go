package parallel

import (
	"fmt"
	"time"

	"modeldata/internal/obs"
)

// Metric names under which Stats counters live in the per-run registry
// (DESIGN.md §8 documents the naming scheme). Layers that want to read
// or assert on these counters address them by name through
// Stats.Registry().
const (
	MetricIterations   = "parallel.iterations"
	MetricShuffleBytes = "mapreduce.shuffle_bytes"
	MetricAttempts     = "task.attempts"
	MetricRetries      = "task.retries"
	MetricSpecLaunches = "task.speculative_launches"
	MetricSpecWins     = "task.speculative_wins"
	MetricBackoffNanos = "task.backoff_ns"
)

// Stats accumulates per-run execution counters across every parallel
// loop (and MapReduce shuffle) that runs under a context carrying it.
// The counters are backed by a per-run obs.Registry — the same numbers
// are readable through the typed metrics API (Registry) and through the
// legacy accessor methods, which are kept so existing callers see no
// change. All methods are safe for concurrent use and nil-safe: a nil
// *Stats counts nothing, so hot loops may call Add* unconditionally.
type Stats struct {
	clock obs.Clock
	start time.Time
	reg   *obs.Registry

	iterations   *obs.Counter
	shuffleBytes *obs.Counter
	taskAttempts *obs.Counter
	retries      *obs.Counter
	specLaunches *obs.Counter
	specWins     *obs.Counter
	backoffNanos *obs.Counter
}

// NewStats returns a Stats collector whose clock starts now (wall
// time).
func NewStats() *Stats { return NewStatsClock(obs.Wall) }

// NewStatsClock returns a Stats collector timed by c, so tests can
// freeze or step elapsed time deterministically.
func NewStatsClock(c obs.Clock) *Stats {
	if c == nil {
		c = obs.Wall
	}
	reg := obs.NewRegistry()
	return &Stats{
		clock:        c,
		start:        c.Now(),
		reg:          reg,
		iterations:   reg.Counter(MetricIterations),
		shuffleBytes: reg.Counter(MetricShuffleBytes),
		taskAttempts: reg.Counter(MetricAttempts),
		retries:      reg.Counter(MetricRetries),
		specLaunches: reg.Counter(MetricSpecLaunches),
		specWins:     reg.Counter(MetricSpecWins),
		backoffNanos: reg.Counter(MetricBackoffNanos),
	}
}

// Registry exposes the per-run metrics registry backing this collector,
// so layers with richer metrics (realize-cache hits, per-stage
// histograms) report into the same per-run sink. Returns nil for a nil
// *Stats; obs metrics are nil-safe, so the result can be used without
// checking.
func (s *Stats) Registry() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// AddIterations records n completed Monte Carlo iterations (samples,
// particles, chain replicates, design points, …).
func (s *Stats) AddIterations(n int64) {
	if s != nil {
		s.iterations.Add(n)
	}
}

// AddShuffleBytes records n bytes moved through a shuffle stage.
func (s *Stats) AddShuffleBytes(n int64) {
	if s != nil {
		s.shuffleBytes.Add(n)
	}
}

// AddTaskAttempts records n task attempts launched (first tries,
// retries, and speculative backups all count).
func (s *Stats) AddTaskAttempts(n int64) {
	if s != nil {
		s.taskAttempts.Add(n)
	}
}

// AddRetries records n failed task attempts that were re-run.
func (s *Stats) AddRetries(n int64) {
	if s != nil {
		s.retries.Add(n)
	}
}

// AddSpeculativeLaunches records n backup attempts launched against
// straggling tasks.
func (s *Stats) AddSpeculativeLaunches(n int64) {
	if s != nil {
		s.specLaunches.Add(n)
	}
}

// AddSpeculativeWins records n tasks whose committed result came from a
// speculative backup rather than the original attempt.
func (s *Stats) AddSpeculativeWins(n int64) {
	if s != nil {
		s.specWins.Add(n)
	}
}

// AddBackoff records time spent pausing between failed attempts.
func (s *Stats) AddBackoff(d time.Duration) {
	if s != nil {
		s.backoffNanos.Add(int64(d))
	}
}

// Iterations returns the iterations completed so far.
func (s *Stats) Iterations() int64 {
	if s == nil {
		return 0
	}
	return s.iterations.Value()
}

// ShuffleBytes returns the shuffle bytes recorded so far.
func (s *Stats) ShuffleBytes() int64 {
	if s == nil {
		return 0
	}
	return s.shuffleBytes.Value()
}

// TaskAttempts returns the task attempts launched so far.
func (s *Stats) TaskAttempts() int64 {
	if s == nil {
		return 0
	}
	return s.taskAttempts.Value()
}

// Retries returns the failed attempts re-run so far.
func (s *Stats) Retries() int64 {
	if s == nil {
		return 0
	}
	return s.retries.Value()
}

// SpeculativeLaunches returns the backup attempts launched so far.
func (s *Stats) SpeculativeLaunches() int64 {
	if s == nil {
		return 0
	}
	return s.specLaunches.Value()
}

// SpeculativeWins returns the tasks won by a backup attempt so far.
func (s *Stats) SpeculativeWins() int64 {
	if s == nil {
		return 0
	}
	return s.specWins.Value()
}

// BackoffTime returns the cumulative retry backoff recorded so far.
func (s *Stats) BackoffTime() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.backoffNanos.Value())
}

// Elapsed returns the time since NewStats, measured by the collector's
// clock.
func (s *Stats) Elapsed() time.Duration {
	if s == nil || s.start.IsZero() {
		return 0
	}
	return s.clock.Now().Sub(s.start)
}

// SamplesPerSec returns the iteration throughput since NewStats.
func (s *Stats) SamplesPerSec() float64 {
	el := s.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Iterations()) / el
}

// Snapshot is a point-in-time copy of the counters, safe to retain.
type Snapshot struct {
	Iterations          int64
	ShuffleBytes        int64
	TaskAttempts        int64
	Retries             int64
	SpeculativeLaunches int64
	SpeculativeWins     int64
	BackoffTime         time.Duration
	Elapsed             time.Duration
	SamplesPerSec       float64
}

// Snapshot captures the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Iterations:          s.Iterations(),
		ShuffleBytes:        s.ShuffleBytes(),
		TaskAttempts:        s.TaskAttempts(),
		Retries:             s.Retries(),
		SpeculativeLaunches: s.SpeculativeLaunches(),
		SpeculativeWins:     s.SpeculativeWins(),
		BackoffTime:         s.BackoffTime(),
		Elapsed:             s.Elapsed(),
		SamplesPerSec:       s.SamplesPerSec(),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("iters=%d shuffle=%dB attempts=%d retries=%d spec=%d/%d backoff=%s elapsed=%s rate=%.4g/s",
		s.Iterations, s.ShuffleBytes, s.TaskAttempts, s.Retries,
		s.SpeculativeWins, s.SpeculativeLaunches,
		s.BackoffTime.Round(time.Microsecond),
		s.Elapsed.Round(time.Millisecond), s.SamplesPerSec)
}
