package parallel

// Fault injection for the task runtime. A FaultInjector is the
// simulator-substitution hook of the fault-tolerance layer: instead of
// waiting for real machine failures, tests and chaos modes install an
// injector that panics or stalls chosen task attempts, and the runtime
// must absorb the damage through retries and speculative execution
// without changing a single output bit.
//
// Injector decisions are derived from (stage, task index, attempt
// number) and a seed — never from wall-clock time or scheduling order —
// so a chaos run is itself reproducible: the same injector against the
// same job fails the same attempts regardless of worker count.

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrInjectedFault is the sentinel wrapped by every injector-caused
// failure, so tests can distinguish injected crashes from genuine bugs
// with errors.Is.
var ErrInjectedFault = errors.New("parallel: injected fault")

// TaskInfo identifies one task attempt for fault-injection decisions.
type TaskInfo struct {
	// Stage names the runtime stage ("map", "reduce", "parallel", …).
	Stage string
	// Index is the task's index within its stage (split number,
	// iteration number, partition number).
	Index int
	// Attempt is the 1-based attempt number for this task, counting
	// retries and speculative backups.
	Attempt int
}

func (ti TaskInfo) String() string {
	return fmt.Sprintf("%s[%d] attempt %d", ti.Stage, ti.Index, ti.Attempt)
}

// FaultInjector decides the fate of a task attempt. Inject is called at
// the start of the attempt and may return normally (healthy), sleep
// (injected straggler latency), or panic with an ErrInjectedFault-
// wrapping error (injected crash). Implementations must be safe for
// concurrent use and deterministic in the TaskInfo alone.
type FaultInjector interface {
	Inject(ti TaskInfo)
}

// injectedFault is the panic payload raised by the stock injectors; it
// unwraps to ErrInjectedFault.
type injectedFault struct{ ti TaskInfo }

func (f injectedFault) Error() string { return fmt.Sprintf("injected crash in %s", f.ti) }
func (f injectedFault) Unwrap() error { return ErrInjectedFault }

// faultHash mixes a TaskInfo with a seed into 64 uniform bits
// (SplitMix64-style finalizer over an FNV-ish accumulation), the basis
// for the probabilistic injectors' scheduling-independent decisions.
func faultHash(seed uint64, ti TaskInfo) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, c := range []byte(ti.Stage) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h ^= uint64(ti.Index) * 0xbf58476d1ce4e5b9
	h ^= uint64(ti.Attempt) * 0x94d049bb133111eb
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// faultUnit maps a TaskInfo to a uniform variate in [0, 1).
func faultUnit(seed uint64, ti TaskInfo) float64 {
	return float64(faultHash(seed, ti)>>11) * (1.0 / (1 << 53))
}

// PanicInjector crashes each attempt independently with probability
// Prob, decided by hashing the attempt identity with Seed. Because the
// hash varies with the attempt number, a crashed task's retry rolls a
// fresh coin and eventually succeeds (with enough retries).
type PanicInjector struct {
	Prob float64
	Seed uint64
}

// Inject panics with an injected fault when the attempt's hash falls
// below Prob.
func (p PanicInjector) Inject(ti TaskInfo) {
	if faultUnit(p.Seed, ti) < p.Prob {
		panic(injectedFault{ti})
	}
}

// LatencyInjector stalls each attempt independently with probability
// Prob for Delay, manufacturing stragglers for the speculative-
// execution path. It never fails an attempt.
type LatencyInjector struct {
	Prob  float64
	Delay time.Duration
	Seed  uint64
}

// Inject sleeps for Delay when the attempt's hash falls below Prob.
func (l LatencyInjector) Inject(ti TaskInfo) {
	if faultUnit(l.Seed, ti) < l.Prob {
		time.Sleep(l.Delay)
	}
}

// CrashAttempts deterministically crashes the first Times attempts of
// one task — the classic "task dies N times then succeeds" Hadoop test
// fixture. Stage "" matches every stage; Index -1 matches every task.
type CrashAttempts struct {
	Stage string
	Index int
	Times int
}

// Inject panics while the attempt number is at most Times and the
// stage/index selectors match.
func (c CrashAttempts) Inject(ti TaskInfo) {
	if c.Stage != "" && c.Stage != ti.Stage {
		return
	}
	if c.Index >= 0 && c.Index != ti.Index {
		return
	}
	if ti.Attempt <= c.Times {
		panic(injectedFault{ti})
	}
}

// Chain composes injectors; each is consulted in order.
type Chain []FaultInjector

// Inject invokes every injector in order.
func (cs Chain) Inject(ti TaskInfo) {
	for _, c := range cs {
		c.Inject(ti)
	}
}

// WithFaultInjector returns a context whose task runtimes (parallel
// loops and MapReduce stages) pass every task attempt through fi. A nil
// fi returns ctx unchanged.
func WithFaultInjector(ctx context.Context, fi FaultInjector) context.Context {
	if fi == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey, fi)
}

// InjectorFrom returns the fault injector installed on ctx, or nil.
func InjectorFrom(ctx context.Context) FaultInjector {
	fi, _ := ctx.Value(injectorKey).(FaultInjector)
	return fi
}
