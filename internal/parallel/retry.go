package parallel

// Task retry with exponential backoff — the half of the fault-tolerance
// layer that lives inside each worker. A RetryPolicy turns one logical
// task into a bounded sequence of attempts: a failed attempt (error or
// recovered panic, injected or genuine) is re-run after an
// exponentially growing pause, on the same worker, against the same
// inputs. Determinism under retry is the caller's half of the contract:
// an attempt must be re-runnable from identical starting state
// (ForStreams hands every attempt a fresh copy of the iteration's rng
// substream; MapReduce buffers emissions per attempt and discards
// partial output).

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrTaskFailed is wrapped by task failures that exhausted their retry
// budget.
var ErrTaskFailed = errors.New("parallel: task failed")

// RetryPolicy configures per-task fault tolerance.
type RetryPolicy struct {
	// MaxRetries is the number of re-runs allowed after a task's first
	// failed attempt; 0 fails the job on the first failure.
	MaxRetries int
	// Backoff is the pause before the first retry; it doubles on each
	// subsequent retry of the same task. Zero means DefaultBackoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means
	// DefaultMaxBackoff.
	MaxBackoff time.Duration
	// SpeculativeFactor enables speculative execution in runtimes that
	// support it (MapReduce): when a task's elapsed time exceeds
	// SpeculativeFactor × the median completion time of finished tasks
	// in the same stage, a backup attempt is launched and the first
	// result wins. Zero disables speculation.
	SpeculativeFactor float64
}

// Backoff defaults.
const (
	DefaultBackoff    = 500 * time.Microsecond
	DefaultMaxBackoff = 100 * time.Millisecond
)

// BackoffFor returns the pause before retrying a task that has failed
// `failures` times (failures ≥ 1): Backoff·2^(failures−1), capped at
// MaxBackoff.
func (p RetryPolicy) BackoffFor(failures int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = DefaultBackoff
	}
	ceil := p.MaxBackoff
	if ceil <= 0 {
		ceil = DefaultMaxBackoff
	}
	d := base
	for i := 1; i < failures && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	return d
}

// active reports whether the policy enables any fault-tolerance
// machinery at all.
func (p RetryPolicy) active() bool {
	return p.MaxRetries > 0 || p.SpeculativeFactor > 0
}

// WithRetryPolicy returns a context whose task runtimes (parallel loops
// and MapReduce stages) apply policy p to every task.
func WithRetryPolicy(ctx context.Context, p RetryPolicy) context.Context {
	return context.WithValue(ctx, retryKey, p)
}

// RetryPolicyFrom returns the retry policy installed on ctx and whether
// one was installed.
func RetryPolicyFrom(ctx context.Context) (RetryPolicy, bool) {
	p, ok := ctx.Value(retryKey).(RetryPolicy)
	return p, ok
}

// sleepCtx pauses for d or until ctx is canceled, returning ctx.Err()
// in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attemptOnce runs one guarded task attempt: the injector fires first
// (it may sleep or panic), then fn; any panic is converted into an
// error so the retry loop — not the process — decides its fate.
func attemptOnce(stage string, index, attempt int, inj FaultInjector, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("%s[%d] attempt %d panicked: %w", stage, index, attempt, e)
				return
			}
			err = fmt.Errorf("%s[%d] attempt %d panicked: %v", stage, index, attempt, r)
		}
	}()
	if inj != nil {
		inj.Inject(TaskInfo{Stage: stage, Index: index, Attempt: attempt})
	}
	return fn()
}

// runTaskAttempts executes one task under the retry policy: attempts
// are made serially with exponential backoff between failures until one
// succeeds, the retry budget is exhausted, or ctx is canceled. Attempt
// and retry counts and backoff time are credited to stats. fn must be
// re-runnable: each attempt must start from identical task state.
func runTaskAttempts(ctx context.Context, stage string, index int, p RetryPolicy, inj FaultInjector, stats *Stats, fn func() error) error {
	failures := 0
	for attempt := 1; ; attempt++ {
		stats.AddTaskAttempts(1)
		err := attemptOnce(stage, index, attempt, inj, fn)
		if err == nil {
			return nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		failures++
		if failures > p.MaxRetries {
			return fmt.Errorf("%w: %s[%d] after %d attempt(s): %w", ErrTaskFailed, stage, index, attempt, err)
		}
		d := p.BackoffFor(failures)
		stats.AddRetries(1)
		stats.AddBackoff(d)
		if err := sleepCtx(ctx, d); err != nil {
			return err
		}
	}
}
