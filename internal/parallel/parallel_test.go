package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"modeldata/internal/rng"
)

func TestForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 100
		counts := make([]atomic.Int64, n)
		err := For(context.Background(), n, Options{Workers: workers}, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroIterations(t *testing.T) {
	if err := For(context.Background(), 0, Options{}, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := For(context.Background(), 50, Options{Workers: workers}, func(i int) error {
			if i == 17 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v", workers, err)
		}
	}
}

func TestForObservesCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		errCh := make(chan error, 1)
		go func() {
			errCh <- For(ctx, 1_000_000, Options{Workers: workers}, func(i int) error {
				started.Add(1)
				time.Sleep(100 * time.Microsecond)
				return nil
			})
		}()
		for started.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		select {
		case err := <-errCh:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: got %v", workers, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: loop did not stop after cancel", workers)
		}
		if s := started.Load(); s >= 1_000_000 {
			t.Fatalf("workers=%d: loop ran to completion despite cancel", workers)
		}
	}
}

func TestForPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := For(ctx, 10, Options{}, func(int) error {
		t.Fatal("fn called under canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

// TestForStreamsDeterministic is the package-level half of the
// determinism contract: identical output and identical parent stream
// state at any worker count.
func TestForStreamsDeterministic(t *testing.T) {
	run := func(workers int) ([]float64, uint64) {
		parent := rng.New(42)
		const n = 200
		out := make([]float64, n)
		err := ForStreams(context.Background(), parent, n, Options{Workers: workers}, func(i int, r *rng.Stream) error {
			s := 0.0
			for k := 0; k < 10; k++ {
				s += r.Normal(0, 1)
			}
			out[i] = s
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, parent.Uint64()
	}
	ref, refNext := run(1)
	for _, workers := range []int{2, 8} {
		got, gotNext := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], ref[i])
			}
		}
		if gotNext != refNext {
			t.Fatalf("workers=%d: parent stream diverged", workers)
		}
	}
}

func TestProgressReportsEveryIteration(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		var last atomic.Int64
		ctx := WithProgress(context.Background(), func(done, total int) {
			calls.Add(1)
			if total != 30 {
				t.Errorf("total = %d", total)
			}
			last.Store(int64(done))
		})
		if err := For(ctx, 30, Options{Workers: workers}, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 30 {
			t.Fatalf("workers=%d: %d progress calls", workers, calls.Load())
		}
		if last.Load() != 30 {
			t.Fatalf("workers=%d: final done = %d", workers, last.Load())
		}
	}
}

func TestStatsCountIterationsAndShuffle(t *testing.T) {
	s := NewStats()
	ctx := WithStats(context.Background(), s)
	if err := For(ctx, 25, Options{Workers: 4}, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	StatsFrom(ctx).AddShuffleBytes(512)
	snap := s.Snapshot()
	if snap.Iterations != 25 || snap.ShuffleBytes != 512 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestNilStatsIsSafe(t *testing.T) {
	var s *Stats
	s.AddIterations(1)
	s.AddShuffleBytes(1)
	if s.Iterations() != 0 || s.ShuffleBytes() != 0 || s.SamplesPerSec() != 0 || s.Elapsed() != 0 {
		t.Fatal("nil stats counted something")
	}
	// A context with no stats yields a nil collector usable directly.
	StatsFrom(context.Background()).AddIterations(5)
}

func TestWorkersFromDefaults(t *testing.T) {
	if WorkersFrom(context.Background()) < 1 {
		t.Fatal("default workers < 1")
	}
	ctx := WithWorkers(context.Background(), 3)
	if WorkersFrom(ctx) != 3 {
		t.Fatalf("got %d", WorkersFrom(ctx))
	}
	// Non-positive override falls back to the default.
	if WorkersFrom(WithWorkers(context.Background(), 0)) < 1 {
		t.Fatal("zero workers accepted")
	}
}

// TestForStreamsRangeShardsBitIdentical checks the sharding primitive:
// disjoint windows of one n-iteration loop, concatenated in index
// order, reproduce the full ForStreams run exactly — and the parent
// stream ends on the same trajectory either way.
func TestForStreamsRangeShardsBitIdentical(t *testing.T) {
	const n = 23
	draw := func(out []float64) func(i int, r *rng.Stream) error {
		return func(i int, r *rng.Stream) error {
			out[i] = r.Normal(0, 1) + float64(i)
			return nil
		}
	}

	full := make([]float64, n)
	parentFull := rng.New(99)
	if err := ForStreams(context.Background(), parentFull, n, Options{Workers: 4}, draw(full)); err != nil {
		t.Fatal(err)
	}

	// Each shard re-seeds its own parent from the query seed — the
	// substream for iteration i is then identical on every shard.
	sharded := make([]float64, n)
	var lastParent *rng.Stream
	for _, w := range [][2]int{{0, 7}, {7, 7}, {7, 16}, {16, n}} { // includes an empty window
		parent := rng.New(99)
		if err := ForStreamsRange(context.Background(), parent, n, w[0], w[1], Options{Workers: 3}, draw(sharded)); err != nil {
			t.Fatal(err)
		}
		lastParent = parent
	}
	for i := range full {
		if sharded[i] != full[i] {
			t.Fatalf("iter %d: sharded %v != full %v", i, sharded[i], full[i])
		}
	}
	// Every call advances its parent exactly n splits, window or not,
	// matching the ForStreams trajectory contract.
	ref := rng.New(99)
	for i := 0; i < n; i++ {
		ref.Split()
	}
	if ref.Uint64() != lastParent.Uint64() {
		t.Fatal("parent stream trajectory diverged from split count contract")
	}
}

func TestForStreamsRangeBadWindow(t *testing.T) {
	for _, w := range [][2]int{{-1, 2}, {0, 11}, {5, 4}} {
		err := ForStreamsRange(context.Background(), rng.New(1), 10, w[0], w[1], Options{}, func(int, *rng.Stream) error { return nil })
		if err == nil {
			t.Fatalf("window %v: expected error", w)
		}
	}
}
