// Package parallel is the deterministic fan-out runtime underneath
// every embarrassingly parallel Monte Carlo loop in this repository:
// MCDB naive and tuple-bundle realization (§2.1), SimSQL chain
// replicates, particle propagation and weighting (Algorithm 2, §3.2),
// MapReduce map/reduce stages (§2.2), and DoE design-point evaluation
// (§4).
//
// # Determinism contract
//
// A parallel loop produces output that is bit-identical to sequential
// execution at any worker count. The contract has two halves:
//
//  1. Randomness is assigned by iteration index, not by scheduling:
//     callers pre-split one rng.Stream substream per iteration from the
//     parent stream, in index order (rng.Stream.SplitN), before any
//     worker starts. ForStreams packages this pattern.
//  2. Each iteration writes only to its own index-addressed slot, and
//     any cross-iteration reduction happens after the loop, in index
//     order.
//
// Under these rules the worker count changes wall-clock time and
// nothing else, which is what makes `go test -race` plus the root
// determinism suite a meaningful check.
//
// # Context plumbing
//
// Worker bounds, progress callbacks, and per-run Stats counters travel
// through context.Context (WithWorkers, WithProgress, WithStats), so
// the public facade can configure a whole experiment run without every
// intermediate layer threading extra parameters.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"modeldata/internal/obs"
	"modeldata/internal/rng"
)

// Options configure one parallel loop.
type Options struct {
	// Workers bounds loop parallelism. Zero or negative means "use the
	// context default" (WorkersFrom: WithWorkers value, else
	// GOMAXPROCS).
	Workers int
	// Retry overrides the context retry policy (WithRetryPolicy) for
	// this loop. Nil inherits from the context.
	Retry *RetryPolicy
	// NoFaults opts this loop out of the fault-tolerance machinery
	// entirely — no injection, no panic recovery, no retries — for
	// loops whose iterations mutate shared state in place and therefore
	// cannot be re-run (e.g. DSGD row updates). Such loops keep the
	// pre-fault-tolerance semantics: a panic propagates and crashes.
	NoFaults bool
}

// errBox carries the first error through an atomic.Value (which
// requires a single concrete stored type).
type errBox struct{ err error }

// For runs fn(i) for every i in [0, n) on a bounded worker pool and
// returns the first error. Iterations must follow the package
// determinism contract: write only to slot i, derive randomness only
// from per-index state. Cancellation of ctx is observed between
// iterations; a canceled run returns ctx.Err() without starting further
// iterations. Progress and Stats hooks installed on ctx are serviced
// after each completed iteration.
//
// When a retry policy (Options.Retry or WithRetryPolicy) or a fault
// injector (WithFaultInjector) is present and Options.NoFaults is
// unset, each iteration becomes a fault-tolerant task: a panic is
// recovered into an error, and failed attempts are re-run serially on
// the same worker with exponential backoff up to MaxRetries before
// failing the loop. Retried iterations re-run fn(i) from scratch, so fn
// must be re-runnable: it must fully overwrite slot i on success and
// derive randomness from state reset at attempt start (ForStreams
// arranges this automatically). Speculative execution never applies
// here — slot writes are owned by one worker at a time — only in the
// MapReduce runtime, whose framework-controlled commit makes backup
// attempts race-free.
func For(ctx context.Context, n int, opts Options, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = WorkersFrom(ctx)
	}
	if workers > n {
		workers = n
	}
	stats := StatsFrom(ctx)
	progress := progressFrom(ctx)

	// Tracing: one span for the loop, one child span per iteration.
	// Both are skipped entirely (no allocation, no ctx growth) when no
	// tracer is installed, so the hot path is unchanged for untraced
	// runs.
	traced := obs.Enabled(ctx)
	if traced {
		var loopSpan *obs.Span
		ctx, loopSpan = obs.Start(ctx, "parallel.for")
		loopSpan.SetInt("n", int64(n))
		loopSpan.SetInt("workers", int64(workers))
		defer loopSpan.End()
	}

	// run executes one iteration, through the retry machinery when a
	// policy or injector is installed.
	run := func(ctx context.Context, i int) error { return fn(i) }
	if !opts.NoFaults {
		pol, havePol := RetryPolicyFrom(ctx)
		if opts.Retry != nil {
			pol, havePol = *opts.Retry, true
		}
		if inj := InjectorFrom(ctx); havePol || inj != nil {
			run = func(ctx context.Context, i int) error {
				return runTaskAttempts(ctx, "parallel", i, pol, inj, stats, func() error { return fn(i) })
			}
		}
	}
	if traced {
		inner := run
		run = func(ctx context.Context, i int) error {
			_, sp := obs.Start(ctx, "parallel.iter")
			sp.SetAttr("i", strconv.Itoa(i))
			err := inner(ctx, i)
			sp.End()
			return err
		}
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(ctx, i); err != nil {
				return err
			}
			stats.AddIterations(1)
			if progress != nil {
				progress.report(i+1, n)
			}
		}
		return nil
	}

	loopCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		done     atomic.Int64
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if loopCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(loopCtx, i); err != nil {
					firstErr.CompareAndSwap(nil, errBox{err})
					cancel()
					return
				}
				d := done.Add(1)
				stats.AddIterations(1)
				if progress != nil {
					progress.report(int(d), n)
				}
			}
		}()
	}
	wg.Wait()
	if box, ok := firstErr.Load().(errBox); ok {
		return box.err
	}
	return ctx.Err()
}

// ForStreams runs fn(i, streams[i]) for every i in [0, n), where the
// substreams are pre-split from parent sequentially in index order
// before any worker starts — the canonical deterministic Monte Carlo
// loop. The parent stream is advanced exactly n splits regardless of
// worker count, so a caller that continues drawing from parent after
// the loop (e.g. for a resampling step) stays on the sequential
// trajectory too.
//
// Each invocation of fn receives a fresh copy of iteration i's pristine
// substream, so a retried iteration (see For) replays exactly the same
// random sequence as a first-try success: results under any fault
// injector that eventually lets every iteration succeed are
// bit-identical to the failure-free run.
func ForStreams(ctx context.Context, parent *rng.Stream, n int, opts Options, fn func(i int, r *rng.Stream) error) error {
	return ForStreamsRange(ctx, parent, n, 0, n, opts, fn)
}

// ForStreamsRange runs the window [lo, hi) of an n-iteration
// deterministic loop: substreams are pre-split from parent exactly as
// ForStreams would split them for the full n-iteration run, but only
// the window's iterations execute (fn still receives the global index
// i ∈ [lo, hi)). This is the sharding primitive: backends that
// partition [0, n) into disjoint contiguous windows and concatenate
// their outputs in index order reproduce the single-node run
// bit-identically, because iteration i draws from substream i no
// matter which shard runs it. The parent stream is advanced exactly n
// splits regardless of the window (even an empty one), preserving the
// ForStreams trajectory for callers that keep drawing afterwards.
func ForStreamsRange(ctx context.Context, parent *rng.Stream, n, lo, hi int, opts Options, fn func(i int, r *rng.Stream) error) error {
	if n <= 0 {
		return nil
	}
	if lo < 0 || hi > n || lo > hi {
		return fmt.Errorf("parallel: window [%d, %d) outside [0, %d)", lo, hi, n)
	}
	streams := parent.SplitN(n)
	return For(ctx, hi-lo, opts, func(j int) error {
		i := lo + j
		sub := *streams[i] // pristine per-attempt copy: retries replay the substream
		return fn(i, &sub)
	})
}

type ctxKey int

const (
	workersKey ctxKey = iota
	statsKey
	progressKey
	retryKey
	injectorKey
)

// WithWorkers returns a context whose parallel loops default to n
// workers (for loops that do not set Options.Workers explicitly).
func WithWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, workersKey, n)
}

// WorkersFrom returns the context's default worker bound:
// the WithWorkers value if positive, else GOMAXPROCS.
func WorkersFrom(ctx context.Context) int {
	if n, ok := ctx.Value(workersKey).(int); ok && n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// progressHook serializes a user progress callback so callers need not
// make it safe for concurrent use.
type progressHook struct {
	mu sync.Mutex
	fn func(done, total int)
}

func (p *progressHook) report(done, total int) {
	p.mu.Lock()
	p.fn(done, total)
	p.mu.Unlock()
}

// WithProgress returns a context whose parallel loops report each
// completed iteration to fn as fn(done, total). The callback is invoked
// once per finished iteration of each loop (done counts completions,
// which under parallelism is not the same as the highest finished
// index), is serialized by the runtime, and must be cheap — it runs on
// the worker's critical path.
func WithProgress(ctx context.Context, fn func(done, total int)) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey, &progressHook{fn: fn})
}

func progressFrom(ctx context.Context) *progressHook {
	h, _ := ctx.Value(progressKey).(*progressHook)
	return h
}

// ProgressFrom returns a serialized reporting function bound to the
// progress hook installed on ctx, or nil when none is installed. It
// lets runtimes that schedule their own workers (the MapReduce task
// scheduler) service the same hook as parallel loops.
func ProgressFrom(ctx context.Context) func(done, total int) {
	h := progressFrom(ctx)
	if h == nil {
		return nil
	}
	return h.report
}

// WithStats returns a context whose parallel loops (and the MapReduce
// shuffle) accumulate counters into s. A nil s is accepted and means
// "no accounting".
func WithStats(ctx context.Context, s *Stats) context.Context {
	return context.WithValue(ctx, statsKey, s)
}

// StatsFrom returns the Stats collector installed on ctx, or nil. All
// Stats methods are nil-safe, so callers may use the result without
// checking.
func StatsFrom(ctx context.Context) *Stats {
	s, _ := ctx.Value(statsKey).(*Stats)
	return s
}
