package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"modeldata/internal/rng"
)

// TestInjectorDecisionsAreSchedulingIndependent verifies the injector
// contract: the fate of an attempt depends only on its TaskInfo, never
// on call order or wall-clock time.
func TestInjectorDecisionsAreSchedulingIndependent(t *testing.T) {
	inj := PanicInjector{Prob: 0.5, Seed: 3}
	fate := func(ti TaskInfo) (crashed bool) {
		defer func() { crashed = recover() != nil }()
		inj.Inject(ti)
		return false
	}
	infos := []TaskInfo{
		{Stage: "map", Index: 0, Attempt: 1},
		{Stage: "map", Index: 1, Attempt: 1},
		{Stage: "reduce", Index: 0, Attempt: 1},
		{Stage: "map", Index: 0, Attempt: 2},
	}
	first := make([]bool, len(infos))
	for i, ti := range infos {
		first[i] = fate(ti)
	}
	// Replay in reverse: decisions must not change.
	for i := len(infos) - 1; i >= 0; i-- {
		if fate(infos[i]) != first[i] {
			t.Fatalf("decision for %v changed on replay", infos[i])
		}
	}
	// Prob extremes are absolute.
	always := PanicInjector{Prob: 1, Seed: 9}
	never := PanicInjector{Prob: 0, Seed: 9}
	for _, ti := range infos {
		crashed := func() (c bool) {
			defer func() { c = recover() != nil }()
			always.Inject(ti)
			return false
		}()
		if !crashed {
			t.Fatalf("Prob=1 spared %v", ti)
		}
		never.Inject(ti) // must not panic
	}
}

// TestInjectedFaultUnwraps checks the panic payload chains to
// ErrInjectedFault so tests can tell injected crashes from real bugs.
func TestInjectedFaultUnwraps(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("payload %v does not unwrap to ErrInjectedFault", r)
		}
	}()
	PanicInjector{Prob: 1}.Inject(TaskInfo{Stage: "map"})
}

// TestCrashAttemptsSelectors pins the stage/index matching and the
// crash-then-succeed lifecycle.
func TestCrashAttemptsSelectors(t *testing.T) {
	crashes := func(c CrashAttempts, ti TaskInfo) (crashed bool) {
		defer func() { crashed = recover() != nil }()
		c.Inject(ti)
		return false
	}
	c := CrashAttempts{Stage: "map", Index: 2, Times: 2}
	cases := []struct {
		ti   TaskInfo
		want bool
	}{
		{TaskInfo{"map", 2, 1}, true},
		{TaskInfo{"map", 2, 2}, true},
		{TaskInfo{"map", 2, 3}, false},    // budget spent: attempt 3 lives
		{TaskInfo{"map", 1, 1}, false},    // wrong index
		{TaskInfo{"reduce", 2, 1}, false}, // wrong stage
	}
	for _, tc := range cases {
		if got := crashes(c, tc.ti); got != tc.want {
			t.Errorf("crash(%v) = %v, want %v", tc.ti, got, tc.want)
		}
	}
	// Wildcards: Stage "" and Index -1 match everything.
	wild := CrashAttempts{Index: -1, Times: 1}
	if !crashes(wild, TaskInfo{"anything", 99, 1}) {
		t.Fatal("wildcard selectors did not match")
	}
}

func TestBackoffForGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.BackoffFor(i + 1); got != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Zero fields fall back to the defaults.
	var zero RetryPolicy
	if zero.BackoffFor(1) != DefaultBackoff {
		t.Fatalf("default backoff = %v", zero.BackoffFor(1))
	}
}

// TestBackoffForTable walks the full doubling schedule: exact
// Backoff·2^(failures−1) growth until the cap, then the cap exactly —
// never a value above it, for failure counts far past the point where
// naive doubling would overflow the cap.
func TestBackoffForTable(t *testing.T) {
	p := RetryPolicy{Backoff: 250 * time.Microsecond, MaxBackoff: 10 * time.Millisecond}
	cases := []struct {
		failures int
		want     time.Duration
	}{
		{1, 250 * time.Microsecond},
		{2, 500 * time.Microsecond},
		{3, 1 * time.Millisecond},
		{4, 2 * time.Millisecond},
		{5, 4 * time.Millisecond},
		{6, 8 * time.Millisecond},
		{7, 10 * time.Millisecond}, // 16ms capped
		{8, 10 * time.Millisecond},
		{9, 10 * time.Millisecond},
		{10, 10 * time.Millisecond},
		{11, 10 * time.Millisecond},
		{12, 10 * time.Millisecond},
	}
	for _, tc := range cases {
		got := p.BackoffFor(tc.failures)
		if got != tc.want {
			t.Errorf("BackoffFor(%d) = %v, want %v", tc.failures, got, tc.want)
		}
		if got > p.MaxBackoff {
			t.Errorf("BackoffFor(%d) = %v exceeds cap %v", tc.failures, got, p.MaxBackoff)
		}
	}
	// The defaulted policy honors DefaultMaxBackoff over the same range.
	var zero RetryPolicy
	for failures := 1; failures <= 12; failures++ {
		if got := zero.BackoffFor(failures); got > DefaultMaxBackoff {
			t.Errorf("default BackoffFor(%d) = %v exceeds DefaultMaxBackoff", failures, got)
		}
	}
}

// TestStatsRegistryParityUnderChaos pins the Stats ↔ registry contract
// introduced with the observability layer: the legacy Stats accessors
// and the named counters in Stats.Registry() are the same numbers, so a
// chaotic run must report identical values through both APIs.
func TestStatsRegistryParityUnderChaos(t *testing.T) {
	s := NewStats()
	ctx := WithStats(context.Background(), s)
	ctx = WithFaultInjector(ctx, PanicInjector{Prob: 0.4, Seed: 21})
	err := For(ctx, 64, Options{
		Workers: 4,
		Retry:   &RetryPolicy{MaxRetries: 8, Backoff: 20 * time.Microsecond},
	}, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	if reg == nil {
		t.Fatal("Stats.Registry() = nil for a live collector")
	}
	checks := []struct {
		metric string
		got    int64
	}{
		{MetricIterations, s.Iterations()},
		{MetricShuffleBytes, s.ShuffleBytes()},
		{MetricAttempts, s.TaskAttempts()},
		{MetricRetries, s.Retries()},
		{MetricSpecLaunches, s.SpeculativeLaunches()},
		{MetricSpecWins, s.SpeculativeWins()},
		{MetricBackoffNanos, int64(s.BackoffTime())},
	}
	for _, c := range checks {
		if v := reg.Counter(c.metric).Value(); v != c.got {
			t.Errorf("registry %q = %d, Stats accessor = %d", c.metric, v, c.got)
		}
	}
	// The chaos actually exercised the retry path — the parity above is
	// vacuous if everything stayed zero.
	if s.Iterations() != 64 {
		t.Fatalf("iterations = %d, want 64", s.Iterations())
	}
	if s.Retries() == 0 || s.TaskAttempts() <= 64 || s.BackoffTime() <= 0 {
		t.Fatalf("chaos run recorded no fault-tolerance activity: %s", s.Snapshot())
	}
}

// TestForRetriesInjectedCrashes runs a loop under an injector that
// kills the first two attempts of every index: with a sufficient retry
// budget every index still completes exactly once.
func TestForRetriesInjectedCrashes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 20
		counts := make([]atomic.Int64, n)
		s := NewStats()
		ctx := WithStats(context.Background(), s)
		ctx = WithFaultInjector(ctx, CrashAttempts{Index: -1, Times: 2})
		err := For(ctx, n, Options{
			Workers: workers,
			Retry:   &RetryPolicy{MaxRetries: 3, Backoff: 50 * time.Microsecond},
		}, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d committed %d times", workers, i, c)
			}
		}
		snap := s.Snapshot()
		if snap.TaskAttempts != 3*n {
			t.Fatalf("attempts = %d, want %d", snap.TaskAttempts, 3*n)
		}
		if snap.Retries != 2*n {
			t.Fatalf("retries = %d, want %d", snap.Retries, 2*n)
		}
		if snap.BackoffTime <= 0 {
			t.Fatalf("no backoff recorded: %+v", snap)
		}
	}
}

// TestForExhaustedRetryBudgetFails pins the failure path: a task that
// outlives its budget aborts the loop with ErrTaskFailed wrapping the
// injected fault.
func TestForExhaustedRetryBudgetFails(t *testing.T) {
	ctx := WithFaultInjector(context.Background(), CrashAttempts{Index: 3, Times: 100})
	err := For(ctx, 8, Options{
		Retry: &RetryPolicy{MaxRetries: 2, Backoff: 10 * time.Microsecond},
	}, func(i int) error { return nil })
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v, want chained ErrInjectedFault", err)
	}
}

// TestNoFaultsOptOutBypassesInjector verifies loops that declare their
// bodies non-re-runnable never see the injector.
func TestNoFaultsOptOutBypassesInjector(t *testing.T) {
	ctx := WithFaultInjector(context.Background(), PanicInjector{Prob: 1, Seed: 1})
	err := For(ctx, 10, Options{NoFaults: true}, func(i int) error { return nil })
	if err != nil {
		t.Fatalf("NoFaults loop hit the injector: %v", err)
	}
}

// TestForStreamsDeterministicUnderFaults is the heart of the
// determinism-under-retry contract: a loop whose attempts crash and
// retry must produce output bit-identical to the failure-free run,
// because every retry replays a pristine copy of the iteration's
// substream.
func TestForStreamsDeterministicUnderFaults(t *testing.T) {
	run := func(workers int, inj FaultInjector) []float64 {
		t.Helper()
		parent := rng.New(42)
		const n = 64
		out := make([]float64, n)
		ctx := WithFaultInjector(context.Background(), inj)
		err := ForStreams(ctx, parent, n, Options{
			Workers: workers,
			Retry:   &RetryPolicy{MaxRetries: 5, Backoff: 20 * time.Microsecond},
		}, func(i int, r *rng.Stream) error {
			s := 0.0
			for k := 0; k < 10; k++ {
				s += r.Normal(0, 1)
			}
			out[i] = s
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	clean := run(1, nil)
	for _, workers := range []int{1, 2, 8} {
		for _, inj := range []FaultInjector{
			CrashAttempts{Index: -1, Times: 1},
			PanicInjector{Prob: 0.4, Seed: 7},
			Chain{
				PanicInjector{Prob: 0.3, Seed: 11},
				LatencyInjector{Prob: 0.3, Delay: 100 * time.Microsecond, Seed: 12},
			},
		} {
			got := run(workers, inj)
			for i := range clean {
				if got[i] != clean[i] {
					t.Fatalf("workers=%d inj=%T: out[%d] = %v, want %v",
						workers, inj, i, got[i], clean[i])
				}
			}
		}
	}
}

// TestRetryPolicyContextRoundTrip pins the context plumbing used by the
// facade and the MapReduce runtime.
func TestRetryPolicyContextRoundTrip(t *testing.T) {
	if _, ok := RetryPolicyFrom(context.Background()); ok {
		t.Fatal("bare context reported a policy")
	}
	want := RetryPolicy{MaxRetries: 4, SpeculativeFactor: 2.5}
	got, ok := RetryPolicyFrom(WithRetryPolicy(context.Background(), want))
	if !ok || got != want {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
	if InjectorFrom(context.Background()) != nil {
		t.Fatal("bare context reported an injector")
	}
	inj := PanicInjector{Prob: 0.1}
	if InjectorFrom(WithFaultInjector(context.Background(), inj)) != inj {
		t.Fatal("injector did not round-trip")
	}
	// nil injector leaves the context untouched.
	ctx := context.Background()
	if WithFaultInjector(ctx, nil) != ctx {
		t.Fatal("nil injector allocated a context")
	}
}
