package mapreduce

// The fault-tolerant task scheduler: the piece of Hadoop that the rest
// of this runtime stands on. Each map or reduce task is executed as a
// sequence of attempts; a crashed attempt (panic, injected fault, or
// error) is retried with exponential backoff up to the policy's budget,
// and a straggling task — one running longer than SpeculativeFactor ×
// the median completion time of its stage — gets a speculative backup
// attempt, with the first finisher committing its result.
//
// Determinism under faults rests on two properties:
//
//  1. Attempts are hermetic. A task function receives only its task
//     index and buffers all output locally; a failed attempt's partial
//     output is discarded wholesale, and every attempt of a task
//     computes the identical result (callers that use randomness clone
//     the task's pre-split rng substream per attempt).
//  2. Commits are guarded per slot. The scheduler's mutex makes "first
//     successful attempt wins" atomic: exactly one attempt ever writes
//     results[i], so racing primary and backup attempts cannot
//     interleave, duplicate, or tear a commit.
//
// Together these guarantee that any fault schedule that lets every task
// eventually succeed yields output bit-identical to the failure-free
// run at any worker count.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"modeldata/internal/obs"
	"modeldata/internal/parallel"
)

// minSpecCompleted is the number of completed tasks required before the
// median completion time is considered meaningful for straggler
// detection.
const minSpecCompleted = 3

// minSpecAge floors the straggler threshold so microsecond-scale tasks
// do not trigger storms of pointless backups.
const minSpecAge = 50 * time.Microsecond

// taskStats are the fault-tolerance counters of one stage.
type taskStats struct {
	attempts     int64
	retries      int64
	specLaunches int64
	specWins     int64
	backoff      time.Duration
}

// add accumulates another stage's counters.
func (t *taskStats) add(o taskStats) {
	t.attempts += o.attempts
	t.retries += o.retries
	t.specLaunches += o.specLaunches
	t.specWins += o.specWins
	t.backoff += o.backoff
}

// attemptRef identifies one scheduled execution of a task.
type attemptRef struct {
	i    int  // task index
	n    int  // 1-based attempt number (retries and backups increment)
	spec bool // launched as a speculative backup
}

// taskState tracks one task's attempt lifecycle under the scheduler
// mutex.
type taskState struct {
	done     bool
	failures int       // failed attempts so far
	launches int       // attempts handed out so far (numbers attempts)
	running  int       // attempts executing right now
	backup   bool      // a speculative backup has been launched
	started  time.Time // start of the oldest currently-running attempt
}

// scheduler runs one stage's tasks with retries and speculation.
type scheduler[T any] struct {
	stage  string
	pol    parallel.RetryPolicy
	inj    parallel.FaultInjector
	run    func(i int) (T, error)
	pstats *parallel.Stats       // context-level counters (nil-safe)
	prog   func(done, total int) // context progress hook (may be nil)
	clock  obs.Clock             // injectable scheduler clock (straggler detection, durations)
	traced bool                  // a tracer rides the context: emit per-attempt spans

	mu      sync.Mutex
	tasks   []taskState
	results []T
	// bounded by one committed duration per task: commitLocked appends
	// exactly once per slot, so the slice never outgrows len(tasks)
	durations []time.Duration // guarded by mu
	remaining int
	ts        taskStats
	fatal     error

	queue  chan attemptRef
	doneCh chan struct{}
	cancel context.CancelFunc
}

// runTasks executes n independent tasks on a bounded worker pool under
// the retry policy and fault injector, returning every task's committed
// result in index order. The first task to exhaust its retry budget
// (or a context cancellation) aborts the stage.
func runTasks[T any](ctx context.Context, stage string, n, workers int, pol parallel.RetryPolicy, inj parallel.FaultInjector, run func(i int) (T, error)) ([]T, taskStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, taskStats{}, err
	}
	if workers > n {
		workers = n
	}
	ctx, stageSpan := obs.Start(ctx, "mapreduce."+stage)
	stageSpan.SetInt("tasks", int64(n))
	stageSpan.SetInt("workers", int64(workers))
	defer stageSpan.End()
	schedCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	s := &scheduler[T]{
		stage:     stage,
		pol:       pol,
		inj:       inj,
		run:       run,
		pstats:    parallel.StatsFrom(ctx),
		prog:      parallel.ProgressFrom(ctx),
		clock:     obs.ClockFrom(ctx),
		traced:    obs.Enabled(ctx),
		tasks:     make([]taskState, n),
		results:   make([]T, n),
		remaining: n,
		// Lifetime bound on enqueues per task: 1 first try + MaxRetries
		// retries + 1 speculative backup, so sends never block.
		queue:  make(chan attemptRef, n*(pol.MaxRetries+2)),
		doneCh: make(chan struct{}),
		cancel: cancel,
	}
	for i := 0; i < n; i++ {
		s.tasks[i].launches = 1
		s.queue <- attemptRef{i: i, n: 1}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(schedCtx)
		}()
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fatal != nil {
		return nil, s.ts, s.fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, s.ts, err
	}
	return s.results, s.ts, nil
}

// worker pulls attempts until the stage completes, fails, or is
// canceled. When speculation is enabled, idle workers also wake on a
// ticker to scan for stragglers.
func (s *scheduler[T]) worker(ctx context.Context) {
	var tickC <-chan time.Time
	if s.pol.SpeculativeFactor > 0 {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case a := <-s.queue:
			s.execute(ctx, a)
		case <-s.doneCh:
			return
		case <-ctx.Done():
			return
		case <-tickC:
			s.mu.Lock()
			s.checkStragglersLocked(s.clock.Now())
			s.mu.Unlock()
		}
	}
}

// execute runs one attempt end to end: guarded user code, then either a
// per-slot first-writer-wins commit or the retry/fatal path.
func (s *scheduler[T]) execute(ctx context.Context, a attemptRef) {
	s.mu.Lock()
	st := &s.tasks[a.i]
	if st.done || s.fatal != nil {
		s.mu.Unlock()
		return
	}
	began := s.clock.Now()
	st.running++
	if st.running == 1 {
		st.started = began
	}
	s.ts.attempts++
	s.mu.Unlock()
	s.pstats.AddTaskAttempts(1)

	var span *obs.Span
	if s.traced {
		_, span = obs.Start(ctx, s.stage+".task")
		span.SetInt("index", int64(a.i))
		span.SetInt("attempt", int64(a.n))
		if a.spec {
			span.SetAttr("speculative", "true")
		}
	}
	res, err := s.attempt(a)
	if span != nil {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}

	s.mu.Lock()
	st.running--
	if st.running == 0 {
		st.started = time.Time{}
	}
	if err == nil {
		s.commitLocked(a, res, s.clock.Now().Sub(began))
		return
	}
	s.failLocked(ctx, a, err)
}

// attempt runs the fault injector and the task body, converting panics
// into ErrWorkerPanic-wrapped errors.
func (s *scheduler[T]) attempt(a attemptRef) (res T, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("%w: %s[%d] attempt %d: %w", ErrWorkerPanic, s.stage, a.i, a.n, e)
				return
			}
			err = fmt.Errorf("%w: %s[%d] attempt %d: %v", ErrWorkerPanic, s.stage, a.i, a.n, r)
		}
	}()
	if s.inj != nil {
		s.inj.Inject(parallel.TaskInfo{Stage: s.stage, Index: a.i, Attempt: a.n})
	}
	return s.run(a.i)
}

// commitLocked installs the first successful result for a task and
// releases the scheduler lock. A task may finish twice when a primary
// and its speculative backup both succeed — the done re-check under the
// lock is the first-writer-wins guard: exactly one attempt ever writes
// the slot or decrements the remaining count; the loser is discarded
// whole.
func (s *scheduler[T]) commitLocked(a attemptRef, res T, dur time.Duration) {
	st := &s.tasks[a.i]
	if st.done {
		s.mu.Unlock()
		return
	}
	st.done = true
	s.results[a.i] = res
	s.durations = append(s.durations, dur)
	s.remaining--
	if a.spec {
		s.ts.specWins++
		s.pstats.AddSpeculativeWins(1)
	}
	completed := len(s.tasks) - s.remaining
	if s.remaining == 0 {
		close(s.doneCh)
	} else {
		s.checkStragglersLocked(s.clock.Now())
	}
	s.mu.Unlock()
	s.pstats.AddIterations(1)
	if s.prog != nil {
		s.prog(completed, len(s.tasks))
	}
}

// failLocked handles a failed attempt and releases the scheduler lock:
// context errors and exhausted retry budgets are fatal; anything else
// schedules a retry after exponential backoff.
func (s *scheduler[T]) failLocked(ctx context.Context, a attemptRef, err error) {
	st := &s.tasks[a.i]
	if st.done {
		// A concurrent attempt already committed; this failure is moot.
		s.mu.Unlock()
		return
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		s.fatalLocked(ctxErr)
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.fatalLocked(err)
		return
	}
	st.failures++
	if st.failures > s.pol.MaxRetries {
		if s.pol.MaxRetries > 0 {
			err = fmt.Errorf("%s[%d] failed after %d attempt(s): %w", s.stage, a.i, st.failures, err)
		}
		s.fatalLocked(err)
		return
	}
	d := s.pol.BackoffFor(st.failures)
	s.ts.retries++
	s.ts.backoff += d
	s.mu.Unlock()
	s.pstats.AddRetries(1)
	s.pstats.AddBackoff(d)

	// Back off outside the lock, then requeue unless the task resolved
	// (or the stage died) while we slept.
	timer := time.NewTimer(d)
	select {
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
		return
	case <-s.doneCh:
		timer.Stop()
		return
	}
	s.mu.Lock()
	if st.done || s.fatal != nil {
		s.mu.Unlock()
		return
	}
	st.launches++
	retry := attemptRef{i: a.i, n: st.launches, spec: a.spec}
	s.mu.Unlock()
	select {
	case s.queue <- retry:
	default: // lifetime bound makes this unreachable; never block
	}
}

// fatalLocked latches the stage's first fatal error, cancels the
// scheduler, and releases the lock.
func (s *scheduler[T]) fatalLocked(err error) {
	if s.fatal == nil {
		s.fatal = err
	}
	s.mu.Unlock()
	s.cancel()
}

// checkStragglersLocked launches speculative backups for running tasks
// whose elapsed time exceeds SpeculativeFactor × the median completion
// time. At most one backup is ever launched per task.
func (s *scheduler[T]) checkStragglersLocked(now time.Time) {
	if s.pol.SpeculativeFactor <= 0 || len(s.durations) < minSpecCompleted || s.remaining == 0 {
		return
	}
	med := medianDuration(s.durations)
	thr := time.Duration(s.pol.SpeculativeFactor * float64(med))
	if thr < minSpecAge {
		thr = minSpecAge
	}
	for i := range s.tasks {
		st := &s.tasks[i]
		if st.done || st.backup || st.running == 0 || st.started.IsZero() {
			continue
		}
		if now.Sub(st.started) <= thr {
			continue
		}
		st.backup = true
		st.launches++
		s.ts.specLaunches++
		s.pstats.AddSpeculativeLaunches(1)
		select {
		case s.queue <- attemptRef{i: i, n: st.launches, spec: true}:
		default:
			st.backup = false // queue full (should not happen): retract
			st.launches--
			s.ts.specLaunches--
			s.pstats.AddSpeculativeLaunches(-1)
		}
	}
}

// medianDuration returns the median of ds without mutating it.
func medianDuration(ds []time.Duration) time.Duration {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
