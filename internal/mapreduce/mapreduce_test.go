package mapreduce

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// wordCount is the canonical job used in several tests.
func wordCount(t *testing.T, cfg Config, docs []string) map[string]int {
	t.Helper()
	splits := make([]any, len(docs))
	for i, d := range docs {
		splits[i] = d
	}
	out, _, err := Run(cfg, splits,
		func(split any, emit func(Pair)) error {
			for _, w := range strings.Fields(split.(string)) {
				emit(Pair{Key: w, Value: 1})
			}
			return nil
		},
		func(key string, values []any, emit func(Pair)) error {
			emit(Pair{Key: key, Value: len(values)})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	res := make(map[string]int)
	for _, p := range out {
		res[p.Key] = p.Value.(int)
	}
	return res
}

func TestWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a"}
	got := wordCount(t, Config{}, docs)
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
}

func TestOutputSortedByKey(t *testing.T) {
	splits := []any{"z y x w v u"}
	out, _, err := Run(Config{Reducers: 4}, splits,
		func(split any, emit func(Pair)) error {
			for _, w := range strings.Fields(split.(string)) {
				emit(Pair{Key: w, Value: 1})
			}
			return nil
		},
		func(key string, values []any, emit func(Pair)) error {
			emit(Pair{Key: key, Value: nil})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key > out[i].Key {
			t.Fatalf("output not sorted: %q > %q", out[i-1].Key, out[i].Key)
		}
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	docs := []string{"p q r p", "q r s", "s s s p"}
	for _, cfg := range []Config{{Mappers: 1, Reducers: 1}, {Mappers: 8, Reducers: 5}} {
		got := wordCount(t, cfg, docs)
		if got["s"] != 4 || got["p"] != 3 {
			t.Fatalf("cfg %+v: %v", cfg, got)
		}
	}
}

func TestValueOrderFollowsSplitOrder(t *testing.T) {
	// All pairs share one key; values must arrive in split order.
	splits := []any{0, 1, 2, 3, 4, 5, 6, 7}
	out, _, err := Run(Config{Mappers: 8, Reducers: 2}, splits,
		func(split any, emit func(Pair)) error {
			emit(Pair{Key: "k", Value: split.(int)})
			return nil
		},
		func(key string, values []any, emit func(Pair)) error {
			for i, v := range values {
				if v.(int) != i {
					return fmt.Errorf("value %d at position %d", v, i)
				}
			}
			emit(Pair{Key: key, Value: len(values)})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Value.(int) != 8 {
		t.Fatalf("out = %v", out)
	}
}

func TestStats(t *testing.T) {
	splits := []any{"a a", "b"}
	_, stats, err := Run(Config{}, splits,
		func(split any, emit func(Pair)) error {
			for _, w := range strings.Fields(split.(string)) {
				emit(Pair{Key: w, Value: 3.14})
			}
			return nil
		},
		func(key string, values []any, emit func(Pair)) error {
			emit(Pair{Key: key, Value: len(values)})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputSplits != 2 || stats.MapOutput != 3 || stats.ReduceGroups != 2 || stats.Output != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// 3 pairs, each 1-byte key + 8-byte float.
	if stats.ShuffleBytes != 27 {
		t.Fatalf("shuffle bytes = %d, want 27", stats.ShuffleBytes)
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	wantErr := errors.New("boom")
	_, _, err := Run(Config{}, []any{1, 2},
		func(split any, emit func(Pair)) error {
			if split.(int) == 2 {
				return wantErr
			}
			return nil
		},
		func(key string, values []any, emit func(Pair)) error { return nil })
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	wantErr := errors.New("reduce-boom")
	_, _, err := Run(Config{}, []any{1},
		func(split any, emit func(Pair)) error {
			emit(Pair{Key: "k", Value: 1})
			return nil
		},
		func(key string, values []any, emit func(Pair)) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want wrapped reduce-boom", err)
	}
}

func TestNoInput(t *testing.T) {
	_, _, err := Run(Config{}, nil, nil, nil)
	if !errors.Is(err, ErrNoInput) {
		t.Fatalf("got %v, want ErrNoInput", err)
	}
	_, _, err = MapOnly(Config{}, nil, nil)
	if !errors.Is(err, ErrNoInput) {
		t.Fatalf("got %v, want ErrNoInput", err)
	}
}

func TestMapOnlyPreservesSplitOrder(t *testing.T) {
	splits := []any{3, 1, 2}
	out, stats, err := MapOnly(Config{Mappers: 3}, splits,
		func(split any, emit func(Pair)) error {
			emit(Pair{Key: "x", Value: split.(int)})
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Output != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	got := []int{out[0].Value.(int), out[1].Value.(int), out[2].Value.(int)}
	if got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("order = %v", got)
	}
}

func TestMapOnlyError(t *testing.T) {
	wantErr := errors.New("mo")
	_, _, err := MapOnly(Config{}, []any{1}, func(any, func(Pair)) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v", err)
	}
}

func TestDefaultSizeOf(t *testing.T) {
	cases := map[int]any{
		8:  3.14,
		5:  "hello",
		24: []float64{1, 2, 3},
		2:  []byte{1, 2},
		16: struct{}{},
	}
	for want, v := range cases {
		if got := DefaultSizeOf(v); got != want {
			t.Errorf("DefaultSizeOf(%v) = %d, want %d", v, got, want)
		}
	}
}

// Property: word count totals equal total input words for arbitrary
// word multisets.
func TestWordCountTotalProperty(t *testing.T) {
	err := quick.Check(func(counts []uint8) bool {
		if len(counts) == 0 {
			return true
		}
		if len(counts) > 20 {
			counts = counts[:20]
		}
		var words []string
		total := 0
		for i, c := range counts {
			n := int(c % 7)
			for j := 0; j < n; j++ {
				words = append(words, fmt.Sprintf("w%d", i))
				total++
			}
		}
		if total == 0 {
			return true
		}
		// Split into 3 docs.
		docs := []string{"", "", ""}
		for i, w := range words {
			docs[i%3] += w + " "
		}
		got := wordCount(t, Config{Mappers: 4, Reducers: 3}, docs)
		sum := 0
		for _, v := range got {
			sum += v
		}
		return sum == total
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapperPanicBecomesError(t *testing.T) {
	_, _, err := Run(Config{}, []any{1, 2},
		func(split any, emit func(Pair)) error {
			if split.(int) == 2 {
				panic("mapper exploded")
			}
			emit(Pair{Key: "k", Value: 1})
			return nil
		},
		func(key string, values []any, emit func(Pair)) error { return nil })
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("got %v, want ErrWorkerPanic", err)
	}
}

func TestReducerPanicBecomesError(t *testing.T) {
	_, _, err := Run(Config{}, []any{1},
		func(split any, emit func(Pair)) error {
			emit(Pair{Key: "k", Value: 1})
			return nil
		},
		func(key string, values []any, emit func(Pair)) error {
			panic("reducer exploded")
		})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("got %v, want ErrWorkerPanic", err)
	}
}

func TestMapOnlyPanicBecomesError(t *testing.T) {
	_, _, err := MapOnly(Config{}, []any{1}, func(any, func(Pair)) error {
		panic("boom")
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("got %v, want ErrWorkerPanic", err)
	}
}
