// Package mapreduce is an in-process MapReduce runtime: parallel
// mappers over input splits, a partitioned shuffle with byte
// accounting, and parallel reducers. It stands in for the Hadoop
// clusters used by SimSQL and Splash in the paper; the experiments that
// compare algorithms "on MapReduce" (time alignment, DSGD spline
// solving, §2.2) use the shuffle-byte counters of this package as the
// scale-free proxy for cluster communication cost.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"

	"modeldata/internal/parallel"
)

// ErrNoInput is returned when a job is run with no input splits.
var ErrNoInput = errors.New("mapreduce: no input splits")

// ErrWorkerPanic is returned when a mapper or reducer panics; the
// panic value is attached. Like a real cluster framework, a task crash
// fails the job rather than the process.
var ErrWorkerPanic = errors.New("mapreduce: worker panicked")

// guard converts a panic in user code into an error.
func guard(stage string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %s: %v", ErrWorkerPanic, stage, r)
		}
	}()
	return f()
}

// Pair is a keyed intermediate or output record.
type Pair struct {
	Key   string
	Value any
}

// Mapper processes one input split, emitting intermediate pairs.
type Mapper func(split any, emit func(Pair)) error

// Reducer processes all values that share a key, emitting output pairs.
type Reducer func(key string, values []any, emit func(Pair)) error

// Config controls job parallelism and shuffle accounting.
type Config struct {
	// Mappers and Reducers bound worker parallelism; zero means
	// GOMAXPROCS.
	Mappers, Reducers int
	// SizeOf estimates the serialized size of a shuffled value, for the
	// ShuffleBytes statistic. If nil, DefaultSizeOf is used.
	SizeOf func(v any) int
}

// Stats reports what a job did.
type Stats struct {
	InputSplits  int
	MapOutput    int   // intermediate pairs emitted by mappers
	ShuffleBytes int64 // estimated bytes moved through the shuffle
	ReduceGroups int   // distinct keys reduced
	Output       int   // output pairs emitted by reducers
}

func (s Stats) String() string {
	return fmt.Sprintf("splits=%d mapOut=%d shuffle=%dB groups=%d out=%d",
		s.InputSplits, s.MapOutput, s.ShuffleBytes, s.ReduceGroups, s.Output)
}

// DefaultSizeOf estimates value sizes for shuffle accounting: 8 bytes
// per float/int, string length for strings, element-wise for float
// slices, and a conservative 16 bytes otherwise.
func DefaultSizeOf(v any) int {
	switch x := v.(type) {
	case float64, int, int64, uint64:
		return 8
	case string:
		return len(x)
	case []float64:
		return 8 * len(x)
	case []byte:
		return len(x)
	default:
		return 16
	}
}

func workerCount(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes a MapReduce job over the input splits with no
// cancellation. See RunCtx.
func Run(cfg Config, splits []any, m Mapper, r Reducer) ([]Pair, Stats, error) {
	return RunCtx(context.Background(), cfg, splits, m, r)
}

// RunCtx executes a MapReduce job over the input splits and returns the
// reducer output sorted by key (ties preserve reducer emission order),
// along with execution statistics. The first mapper or reducer error
// aborts the job. Cancellation of ctx is honored between the map,
// shuffle, and reduce stages and between tasks within a stage: a
// canceled job stops scheduling work and returns ctx.Err() instead of
// running to completion. Shuffle bytes are also credited to any
// parallel.Stats collector carried by ctx.
func RunCtx(ctx context.Context, cfg Config, splits []any, m Mapper, r Reducer) ([]Pair, Stats, error) {
	var stats Stats
	if len(splits) == 0 {
		return nil, stats, ErrNoInput
	}
	stats.InputSplits = len(splits)
	sizeOf := cfg.SizeOf
	if sizeOf == nil {
		sizeOf = DefaultSizeOf
	}

	// Map phase: each task accumulates per-partition output locally, so
	// no locks are needed in the emit hot path.
	nRed := workerCount(cfg.Reducers)
	nMap := workerCount(cfg.Mappers)
	type mapResult struct {
		parts [][]Pair
		count int
		bytes int64
	}
	results := make([]mapResult, len(splits))
	err := parallel.For(ctx, len(splits), parallel.Options{Workers: nMap}, func(i int) error {
		res := mapResult{parts: make([][]Pair, nRed)}
		emit := func(p Pair) {
			h := fnv.New32a()
			h.Write([]byte(p.Key))
			part := int(h.Sum32()) % nRed
			res.parts[part] = append(res.parts[part], p)
			res.count++
			res.bytes += int64(len(p.Key) + sizeOf(p.Value))
		}
		if err := guard("map", func() error { return m(splits[i], emit) }); err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, stats, mapreduceErr("map", err)
	}

	// Shuffle: group by key within each partition. Mapper order (split
	// index) fixes value order within each key, keeping jobs
	// deterministic.
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	partitions := make([]map[string][]any, nRed)
	for p := range partitions {
		partitions[p] = make(map[string][]any)
	}
	for _, res := range results {
		stats.MapOutput += res.count
		stats.ShuffleBytes += res.bytes
		for p, pairs := range res.parts {
			for _, kv := range pairs {
				partitions[p][kv.Key] = append(partitions[p][kv.Key], kv.Value)
			}
		}
	}
	parallel.StatsFrom(ctx).AddShuffleBytes(stats.ShuffleBytes)

	// Reduce phase: partitions in parallel; keys sorted within each
	// partition for determinism.
	outParts := make([][]Pair, nRed)
	err = parallel.For(ctx, nRed, parallel.Options{Workers: nRed}, func(p int) error {
		keys := make([]string, 0, len(partitions[p]))
		for k := range partitions[p] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var out []Pair
		for _, k := range keys {
			emit := func(kv Pair) { out = append(out, kv) }
			if err := guard("reduce", func() error { return r(k, partitions[p][k], emit) }); err != nil {
				return err
			}
		}
		outParts[p] = out
		return nil
	})
	if err != nil {
		return nil, stats, mapreduceErr("reduce", err)
	}

	for p := range partitions {
		stats.ReduceGroups += len(partitions[p])
	}
	var out []Pair
	for _, part := range outParts {
		out = append(out, part...)
	}
	// Final parallel-sort stage (the paper's "assembled via a parallel
	// sort"): merge partition outputs into global key order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	stats.Output = len(out)
	return out, stats, nil
}

// mapreduceErr wraps a stage failure, passing context errors through
// unwrapped so callers can match errors.Is(err, context.Canceled)
// directly.
func mapreduceErr(stage string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("mapreduce: %s: %w", stage, err)
}

// MapOnly runs just a parallel map over the splits with no
// cancellation. See MapOnlyCtx.
func MapOnly(cfg Config, splits []any, m Mapper) ([]Pair, Stats, error) {
	return MapOnlyCtx(context.Background(), cfg, splits, m)
}

// MapOnlyCtx runs just a parallel map over the splits with no shuffle
// or reduce, returning each split's emissions concatenated in split
// order. Splash uses this shape for per-window transformations whose
// outputs are already disjoint. Cancellation of ctx is honored between
// map tasks.
func MapOnlyCtx(ctx context.Context, cfg Config, splits []any, m Mapper) ([]Pair, Stats, error) {
	var stats Stats
	if len(splits) == 0 {
		return nil, stats, ErrNoInput
	}
	stats.InputSplits = len(splits)
	nMap := workerCount(cfg.Mappers)
	results := make([][]Pair, len(splits))
	err := parallel.For(ctx, len(splits), parallel.Options{Workers: nMap}, func(i int) error {
		var local []Pair
		if err := guard("map", func() error {
			return m(splits[i], func(p Pair) { local = append(local, p) })
		}); err != nil {
			return err
		}
		results[i] = local
		return nil
	})
	if err != nil {
		return nil, stats, mapreduceErr("map", err)
	}
	var out []Pair
	for _, rs := range results {
		out = append(out, rs...)
	}
	stats.MapOutput = len(out)
	stats.Output = len(out)
	return out, stats, nil
}
