// Package mapreduce is an in-process MapReduce runtime: parallel
// mappers over input splits, a partitioned shuffle with byte
// accounting, and parallel reducers. It stands in for the Hadoop
// clusters used by SimSQL and Splash in the paper; the experiments that
// compare algorithms "on MapReduce" (time alignment, DSGD spline
// solving, §2.2) use the shuffle-byte counters of this package as the
// scale-free proxy for cluster communication cost.
//
// Like the Hadoop substrate it models, the runtime is fault-tolerant at
// task granularity: with a retry policy installed (Config or
// parallel.WithRetryPolicy), a crashed map or reduce task is re-run
// with exponential backoff instead of failing the job, and straggling
// tasks are speculatively re-executed with first-result-wins commits.
// Output is bit-identical to a failure-free run under any fault
// schedule that lets every task eventually succeed — see tasks.go for
// the argument.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"time"

	"modeldata/internal/obs"
	"modeldata/internal/parallel"
)

// ErrNoInput is returned when a job is run with no input splits.
var ErrNoInput = errors.New("mapreduce: no input splits")

// ErrWorkerPanic is returned when a mapper or reducer panics; the
// panic value is attached. Like a real cluster framework, a task crash
// fails the job only after the retry budget (Config.MaxRetries or the
// context retry policy; zero by default) is exhausted.
var ErrWorkerPanic = errors.New("mapreduce: worker panicked")

// Pair is a keyed intermediate or output record.
type Pair struct {
	Key   string
	Value any
}

// Mapper processes one input split, emitting intermediate pairs.
type Mapper func(split any, emit func(Pair)) error

// Reducer processes all values that share a key, emitting output pairs.
type Reducer func(key string, values []any, emit func(Pair)) error

// Config controls job parallelism, shuffle accounting, and fault
// tolerance.
type Config struct {
	// Mappers and Reducers bound worker parallelism; zero means
	// GOMAXPROCS.
	Mappers, Reducers int
	// SizeOf estimates the serialized size of a shuffled value, for the
	// ShuffleBytes statistic. If nil, DefaultSizeOf is used.
	SizeOf func(v any) int
	// MaxRetries is the per-task retry budget: a map or reduce task may
	// fail this many times and still be re-run before the job fails.
	// Together with Backoff and SpeculativeFactor it overrides any
	// context retry policy (parallel.WithRetryPolicy) when set.
	MaxRetries int
	// Backoff is the pause before a task's first retry, doubling per
	// subsequent retry; zero means parallel.DefaultBackoff.
	Backoff time.Duration
	// SpeculativeFactor enables straggler mitigation: a task running
	// longer than SpeculativeFactor × the stage's median task time gets
	// one backup attempt, first result wins. Zero disables.
	SpeculativeFactor float64
	// Injector, if non-nil, passes every task attempt through a fault
	// injector (chaos testing); it overrides any context injector
	// (parallel.WithFaultInjector).
	Injector parallel.FaultInjector
}

// faultSetup resolves the effective retry policy and injector: Config
// fields when any are set, else whatever the context carries.
func (cfg Config) faultSetup(ctx context.Context) (parallel.RetryPolicy, parallel.FaultInjector) {
	pol, _ := parallel.RetryPolicyFrom(ctx)
	if cfg.MaxRetries > 0 || cfg.Backoff > 0 || cfg.SpeculativeFactor > 0 {
		pol = parallel.RetryPolicy{
			MaxRetries:        cfg.MaxRetries,
			Backoff:           cfg.Backoff,
			SpeculativeFactor: cfg.SpeculativeFactor,
		}
	}
	inj := cfg.Injector
	if inj == nil {
		inj = parallel.InjectorFrom(ctx)
	}
	return pol, inj
}

// Stats reports what a job did.
type Stats struct {
	InputSplits  int
	MapOutput    int   // intermediate pairs emitted by mappers
	ShuffleBytes int64 // estimated bytes moved through the shuffle
	ReduceGroups int   // distinct keys reduced
	Output       int   // output pairs emitted by reducers

	// Fault-tolerance counters.
	TaskAttempts        int64         // attempts launched across map and reduce tasks
	Retries             int64         // failed attempts that were re-run
	SpeculativeLaunches int64         // backup attempts launched against stragglers
	SpeculativeWins     int64         // tasks committed by a backup attempt
	BackoffTime         time.Duration // cumulative retry backoff
}

// addTaskStats folds one stage's scheduler counters into the job stats.
func (s *Stats) addTaskStats(ts taskStats) {
	s.TaskAttempts += ts.attempts
	s.Retries += ts.retries
	s.SpeculativeLaunches += ts.specLaunches
	s.SpeculativeWins += ts.specWins
	s.BackoffTime += ts.backoff
}

func (s Stats) String() string {
	return fmt.Sprintf("splits=%d mapOut=%d shuffle=%dB groups=%d out=%d attempts=%d retries=%d spec=%d/%d backoff=%s",
		s.InputSplits, s.MapOutput, s.ShuffleBytes, s.ReduceGroups, s.Output,
		s.TaskAttempts, s.Retries, s.SpeculativeWins, s.SpeculativeLaunches,
		s.BackoffTime.Round(time.Microsecond))
}

// DefaultSizeOf estimates value sizes for shuffle accounting: 8 bytes
// per float/int, string length for strings, element-wise for float
// slices, and a conservative 16 bytes otherwise.
func DefaultSizeOf(v any) int {
	switch x := v.(type) {
	case float64, int, int64, uint64:
		return 8
	case string:
		return len(x)
	case []float64:
		return 8 * len(x)
	case []byte:
		return len(x)
	default:
		return 16
	}
}

func workerCount(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes a MapReduce job over the input splits with no
// cancellation. See RunCtx.
func Run(cfg Config, splits []any, m Mapper, r Reducer) ([]Pair, Stats, error) {
	return RunCtx(context.Background(), cfg, splits, m, r)
}

// RunCtx executes a MapReduce job over the input splits and returns the
// reducer output sorted by key (ties preserve reducer emission order),
// along with execution statistics. A mapper or reducer failure (error
// or panic) consumes one unit of the task's retry budget and the task
// is re-run after exponential backoff; the job aborts when a task
// exhausts its budget (immediately, with the default zero budget).
// Tasks must be deterministic per split — any randomness must come from
// per-split state reset at attempt start — for retried and speculative
// attempts to commute with failure-free execution. Cancellation of ctx
// is honored between the map, shuffle, and reduce stages and between
// tasks within a stage: a canceled job stops scheduling work and
// returns ctx.Err() instead of running to completion. Shuffle bytes and
// fault-tolerance counters are also credited to any parallel.Stats
// collector carried by ctx.
func RunCtx(ctx context.Context, cfg Config, splits []any, m Mapper, r Reducer) ([]Pair, Stats, error) {
	var stats Stats
	if len(splits) == 0 {
		return nil, stats, ErrNoInput
	}
	ctx, jobSpan := obs.Start(ctx, "mapreduce.job")
	jobSpan.SetInt("splits", int64(len(splits)))
	defer jobSpan.End()
	stats.InputSplits = len(splits)
	sizeOf := cfg.SizeOf
	if sizeOf == nil {
		sizeOf = DefaultSizeOf
	}

	pol, inj := cfg.faultSetup(ctx)

	// Map phase: each task attempt accumulates per-partition output
	// locally, so no locks are needed in the emit hot path and a failed
	// attempt's partial emissions are discarded wholesale.
	nRed := workerCount(cfg.Reducers)
	nMap := workerCount(cfg.Mappers)
	type mapResult struct {
		parts [][]Pair
		count int
		bytes int64
	}
	results, mapTS, err := runTasks(ctx, "map", len(splits), nMap, pol, inj, func(i int) (mapResult, error) {
		res := mapResult{parts: make([][]Pair, nRed)}
		emit := func(p Pair) {
			h := fnv.New32a()
			h.Write([]byte(p.Key))
			part := int(h.Sum32()) % nRed
			res.parts[part] = append(res.parts[part], p)
			res.count++
			res.bytes += int64(len(p.Key) + sizeOf(p.Value))
		}
		if err := m(splits[i], emit); err != nil {
			return mapResult{}, err
		}
		return res, nil
	})
	stats.addTaskStats(mapTS)
	if err != nil {
		return nil, stats, mapreduceErr("map", err)
	}

	// Shuffle: group by key within each partition. Mapper order (split
	// index) fixes value order within each key, keeping jobs
	// deterministic.
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	_, shufSpan := obs.Start(ctx, "mapreduce.shuffle")
	partitions := make([]map[string][]any, nRed)
	for p := range partitions {
		partitions[p] = make(map[string][]any)
	}
	for _, res := range results {
		stats.MapOutput += res.count
		stats.ShuffleBytes += res.bytes
		for p, pairs := range res.parts {
			for _, kv := range pairs {
				partitions[p][kv.Key] = append(partitions[p][kv.Key], kv.Value)
			}
		}
	}
	parallel.StatsFrom(ctx).AddShuffleBytes(stats.ShuffleBytes)
	shufSpan.SetInt("bytes", stats.ShuffleBytes)
	shufSpan.SetInt("pairs", int64(stats.MapOutput))
	shufSpan.End()

	// Reduce phase: partitions in parallel; keys sorted within each
	// partition for determinism. A reduce task's output is buffered per
	// attempt, so a mid-partition crash discards the partial output and
	// the retry rebuilds it from the (immutable) shuffle groups.
	outParts, redTS, err := runTasks(ctx, "reduce", nRed, nRed, pol, inj, func(p int) ([]Pair, error) {
		keys := make([]string, 0, len(partitions[p]))
		for k := range partitions[p] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var out []Pair
		emit := func(kv Pair) { out = append(out, kv) }
		for _, k := range keys {
			if err := r(k, partitions[p][k], emit); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	stats.addTaskStats(redTS)
	if err != nil {
		return nil, stats, mapreduceErr("reduce", err)
	}

	for p := range partitions {
		stats.ReduceGroups += len(partitions[p])
	}
	var out []Pair
	for _, part := range outParts {
		out = append(out, part...)
	}
	// Final parallel-sort stage (the paper's "assembled via a parallel
	// sort"): merge partition outputs into global key order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	stats.Output = len(out)
	return out, stats, nil
}

// mapreduceErr wraps a stage failure, passing context errors through
// unwrapped so callers can match errors.Is(err, context.Canceled)
// directly.
func mapreduceErr(stage string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("mapreduce: %s: %w", stage, err)
}

// MapOnly runs just a parallel map over the splits with no
// cancellation. See MapOnlyCtx.
func MapOnly(cfg Config, splits []any, m Mapper) ([]Pair, Stats, error) {
	return MapOnlyCtx(context.Background(), cfg, splits, m)
}

// MapOnlyCtx runs just a parallel map over the splits with no shuffle
// or reduce, returning each split's emissions concatenated in split
// order. Splash uses this shape for per-window transformations whose
// outputs are already disjoint. Cancellation of ctx is honored between
// map tasks.
func MapOnlyCtx(ctx context.Context, cfg Config, splits []any, m Mapper) ([]Pair, Stats, error) {
	var stats Stats
	if len(splits) == 0 {
		return nil, stats, ErrNoInput
	}
	stats.InputSplits = len(splits)
	nMap := workerCount(cfg.Mappers)
	pol, inj := cfg.faultSetup(ctx)
	results, mapTS, err := runTasks(ctx, "map", len(splits), nMap, pol, inj, func(i int) ([]Pair, error) {
		var local []Pair
		if err := m(splits[i], func(p Pair) { local = append(local, p) }); err != nil {
			return nil, err
		}
		return local, nil
	})
	stats.addTaskStats(mapTS)
	if err != nil {
		return nil, stats, mapreduceErr("map", err)
	}
	var out []Pair
	for _, rs := range results {
		out = append(out, rs...)
	}
	stats.MapOutput = len(out)
	stats.Output = len(out)
	return out, stats, nil
}
