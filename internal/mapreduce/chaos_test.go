package mapreduce

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"modeldata/internal/parallel"
)

// chaosDocs is a word-count corpus big enough to spread tasks across
// workers but cheap enough to re-run many times.
func chaosDocs() []any {
	words := []string{"model", "data", "ecosystem", "hadoop", "splash", "simsql"}
	splits := make([]any, 24)
	for i := range splits {
		var b strings.Builder
		for k := 0; k <= i%7; k++ {
			b.WriteString(words[(i+k)%len(words)])
			b.WriteByte(' ')
		}
		splits[i] = b.String()
	}
	return splits
}

func countWords(split any, emit func(Pair)) error {
	for _, w := range strings.Fields(split.(string)) {
		emit(Pair{Key: w, Value: 1})
	}
	return nil
}

func sumCounts(key string, values []any, emit func(Pair)) error {
	emit(Pair{Key: key, Value: len(values)})
	return nil
}

// TestChaosOutputBitIdentical is the tentpole acceptance test: a job
// whose task attempts crash and stall at random must emit output
// exactly equal to the failure-free run, across seeds and worker
// counts, because failed attempts discard their partial output and
// retries recompute identical results.
func TestChaosOutputBitIdentical(t *testing.T) {
	splits := chaosDocs()
	clean, _, err := Run(Config{Mappers: 4, Reducers: 3}, splits, countWords, sumCounts)
	if err != nil {
		t.Fatal(err)
	}
	sawRetry := false
	for seed := uint64(0); seed < 6; seed++ {
		for _, cfg := range []Config{
			{Mappers: 1, Reducers: 1},
			{Mappers: 8, Reducers: 3},
		} {
			cfg.MaxRetries = 8
			cfg.Injector = parallel.Chain{
				parallel.PanicInjector{Prob: 0.3, Seed: seed},
				parallel.LatencyInjector{Prob: 0.2, Delay: 200 * time.Microsecond, Seed: seed + 100},
			}
			out, stats, err := Run(cfg, splits, countWords, sumCounts)
			if err != nil {
				t.Fatalf("seed=%d cfg=%+v: %v", seed, cfg, err)
			}
			if len(out) != len(clean) {
				t.Fatalf("seed=%d: %d pairs vs %d", seed, len(out), len(clean))
			}
			for i := range clean {
				if out[i] != clean[i] {
					t.Fatalf("seed=%d: pair %d diverged: %+v vs %+v", seed, i, out[i], clean[i])
				}
			}
			if stats.Retries > 0 {
				sawRetry = true
			}
			if stats.TaskAttempts < int64(len(splits)) {
				t.Fatalf("seed=%d: only %d attempts for %d splits", seed, stats.TaskAttempts, len(splits))
			}
		}
	}
	if !sawRetry {
		t.Fatal("no run ever retried — injector not wired through")
	}
}

// TestCrashNTimesThenSucceed is the classic Hadoop fixture: one task
// dies on its first two attempts and the third commits.
func TestCrashNTimesThenSucceed(t *testing.T) {
	splits := chaosDocs()
	clean, _, err := Run(Config{Mappers: 4, Reducers: 2}, splits, countWords, sumCounts)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := Run(Config{
		Mappers: 4, Reducers: 2,
		MaxRetries: 3,
		Backoff:    20 * time.Microsecond,
		Injector:   parallel.CrashAttempts{Stage: "map", Index: 5, Times: 2},
	}, splits, countWords, sumCounts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if out[i] != clean[i] {
			t.Fatalf("pair %d diverged: %+v vs %+v", i, out[i], clean[i])
		}
	}
	if stats.Retries != 2 {
		t.Fatalf("retries = %d, want 2", stats.Retries)
	}
	// len(splits) map attempts + 2 map retries + 2 reduce attempts.
	if want := int64(len(splits)) + 2 + 2; stats.TaskAttempts != want {
		t.Fatalf("attempts = %d, want %d", stats.TaskAttempts, want)
	}
	if stats.BackoffTime <= 0 {
		t.Fatalf("no backoff recorded: %+v", stats)
	}
}

// TestRetryBudgetExhaustionFails pins the abort path and its error
// chain: the job reports the injected fault as a worker panic after the
// budget is spent.
func TestRetryBudgetExhaustionFails(t *testing.T) {
	_, _, err := Run(Config{
		Mappers: 2, Reducers: 2,
		MaxRetries: 2,
		Backoff:    10 * time.Microsecond,
		Injector:   parallel.CrashAttempts{Stage: "map", Index: 0, Times: 100},
	}, chaosDocs(), countWords, sumCounts)
	if err == nil {
		t.Fatal("job survived an unkillable task")
	}
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic in chain", err)
	}
	if !errors.Is(err, parallel.ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault in chain", err)
	}
}

// TestZeroRetriesKeepsFailFast pins backward compatibility: without a
// retry budget the first crash aborts the job exactly as before.
func TestZeroRetriesKeepsFailFast(t *testing.T) {
	_, stats, err := Run(Config{
		Injector: parallel.CrashAttempts{Stage: "map", Index: 0, Times: 1},
	}, chaosDocs(), countWords, sumCounts)
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	if stats.Retries != 0 {
		t.Fatalf("retries = %d without a budget", stats.Retries)
	}
}

// stallOnce stalls the first attempt of one map task long enough to be
// flagged as a straggler; its backup attempt runs clean.
type stallOnce struct {
	index int
	delay time.Duration
	hits  *atomic.Int64
}

func (s stallOnce) Inject(ti parallel.TaskInfo) {
	if ti.Stage == "map" && ti.Index == s.index && ti.Attempt == 1 {
		s.hits.Add(1)
		time.Sleep(s.delay)
	}
}

// TestSpeculativeExecution manufactures one straggler and requires the
// scheduler to launch a backup attempt whose result matches the
// failure-free run bit for bit.
func TestSpeculativeExecution(t *testing.T) {
	splits := chaosDocs()
	clean, _, err := Run(Config{Mappers: 8, Reducers: 2}, splits, countWords, sumCounts)
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	out, stats, err := Run(Config{
		Mappers: 8, Reducers: 2,
		SpeculativeFactor: 2,
		Injector:          stallOnce{index: 0, delay: 100 * time.Millisecond, hits: &hits},
	}, splits, countWords, sumCounts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if out[i] != clean[i] {
			t.Fatalf("pair %d diverged: %+v vs %+v", i, out[i], clean[i])
		}
	}
	if hits.Load() == 0 {
		t.Fatal("straggler injector never fired")
	}
	if stats.SpeculativeLaunches == 0 {
		t.Fatalf("no speculative backup launched: %+v", stats)
	}
	if stats.SpeculativeWins > stats.SpeculativeLaunches {
		t.Fatalf("wins %d exceed launches %d", stats.SpeculativeWins, stats.SpeculativeLaunches)
	}
}

// TestContextPolicyAndInjectorApply verifies jobs inherit the retry
// policy and injector from the context when the Config leaves them
// unset — the path used by the modeldata facade.
func TestContextPolicyAndInjectorApply(t *testing.T) {
	splits := chaosDocs()
	ctx := parallel.WithRetryPolicy(context.Background(), parallel.RetryPolicy{
		MaxRetries: 3,
		Backoff:    20 * time.Microsecond,
	})
	ctx = parallel.WithFaultInjector(ctx, parallel.CrashAttempts{Stage: "reduce", Index: 1, Times: 1})
	clean, _, err := Run(Config{Mappers: 4, Reducers: 3}, splits, countWords, sumCounts)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := RunCtx(ctx, Config{Mappers: 4, Reducers: 3}, splits, countWords, sumCounts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if out[i] != clean[i] {
			t.Fatalf("pair %d diverged: %+v vs %+v", i, out[i], clean[i])
		}
	}
	if stats.Retries != 1 {
		t.Fatalf("retries = %d, want 1 (the crashed reduce attempt)", stats.Retries)
	}
}

// TestMapOnlyRetries covers the map-only entry point's fault path.
func TestMapOnlyRetries(t *testing.T) {
	splits := []any{1, 2, 3, 4}
	out, stats, err := MapOnlyCtx(context.Background(), Config{
		Mappers:    4,
		MaxRetries: 2,
		Backoff:    10 * time.Microsecond,
		Injector:   parallel.CrashAttempts{Stage: "map", Index: 2, Times: 1},
	}, splits, func(split any, emit func(Pair)) error {
		emit(Pair{Key: "x", Value: split.(int) * 10})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30, 40}
	for i, p := range out {
		if p.Value.(int) != want[i] {
			t.Fatalf("out[%d] = %v, want %d", i, p.Value, want[i])
		}
	}
	if stats.Retries != 1 {
		t.Fatalf("retries = %d, want 1", stats.Retries)
	}
}
