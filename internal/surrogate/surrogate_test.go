package surrogate

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/doe"
	"modeldata/internal/rng"
)

// codedLH returns an r-run Latin hypercube scaled to [0, 1] coded
// coordinates.
func codedLH(t *testing.T, n, r int, seed uint64) [][]float64 {
	t.Helper()
	lh, err := doe.NearlyOrthogonalLH(n, r, seed, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return lh.Points(0, 1)
}

func TestMinimizeNoisyQuadratic(t *testing.T) {
	// min (x−0.7)² + (y+0.2)² with observation noise.
	p := &Problem{
		Objective: func(x []float64, r *rng.Stream) float64 {
			return (x[0]-0.7)*(x[0]-0.7) + (x[1]+0.2)*(x[1]+0.2) + r.Normal(0, 0.02)
		},
		Lo: []float64{-1, -1}, Hi: []float64{1, 1},
		Reps: 6, Seed: 3,
	}
	res, err := p.Minimize(codedLH(t, 2, 13, 5), 15, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Hypot(res.X[0]-0.7, res.X[1]+0.2) > 0.15 {
		t.Fatalf("argmin = %v, want ≈ (0.7, −0.2); F=%g", res.X, res.F)
	}
	if res.Iterations != 6 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.Evals != (13+6)*6 {
		t.Fatalf("evals = %d", res.Evals)
	}
}

func TestMinimizeBeatsDesignOnlyBaseline(t *testing.T) {
	// The sequential refinement should land closer to the optimum than
	// just picking the best initial design point.
	obj := func(x []float64, r *rng.Stream) float64 {
		return math.Abs(x[0]-0.37) + r.Normal(0, 0.01)
	}
	design := codedLH(t, 1, 7, 9)
	p := &Problem{Objective: obj, Lo: []float64{0}, Hi: []float64{1}, Reps: 5, Seed: 11}
	refined, err := p.Minimize(design, 21, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2 := &Problem{Objective: obj, Lo: []float64{0}, Hi: []float64{1}, Reps: 5, Seed: 11}
	designOnly, err := p2.Minimize(design, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	distRefined := math.Abs(refined.X[0] - 0.37)
	distDesign := math.Abs(designOnly.X[0] - 0.37)
	if distRefined > distDesign+1e-9 {
		t.Fatalf("refined %g farther than design-only %g", distRefined, distDesign)
	}
}

func TestMinimizeValidation(t *testing.T) {
	var p Problem
	if _, err := p.Minimize(nil, 5, 1); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("got %v", err)
	}
	p = Problem{
		Objective: func(x []float64, r *rng.Stream) float64 { return 0 },
		Lo:        []float64{1}, Hi: []float64{0},
	}
	if _, err := p.Minimize(nil, 5, 1); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("got %v", err)
	}
	p.Hi = []float64{2}
	if _, err := p.Minimize([][]float64{{0.5}}, 5, 1); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("too few points: %v", err)
	}
	bad := [][]float64{{0.1}, {0.2}, {0.3}, {1.4}}
	if _, err := p.Minimize(bad, 5, 1); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("out-of-range coded value: %v", err)
	}
	ragged := [][]float64{{0.1}, {0.2}, {0.3, 0.4}, {0.5}}
	if _, err := p.Minimize(ragged, 5, 1); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("ragged design: %v", err)
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	mk := func() (Result, error) {
		p := &Problem{
			Objective: func(x []float64, r *rng.Stream) float64 {
				return x[0]*x[0] + r.Normal(0, 0.05)
			},
			Lo: []float64{-1}, Hi: []float64{1}, Reps: 4, Seed: 21,
		}
		return p.Minimize(codedLH(t, 1, 9, 2), 11, 3)
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if a.X[0] != b.X[0] || a.F != b.F {
		t.Fatal("surrogate optimization not deterministic for a fixed seed")
	}
}
