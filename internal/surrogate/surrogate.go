// Package surrogate implements kriging-assisted stochastic
// optimization — the §3.1 research direction the paper spells out:
// "the kriging method used in [45] could potentially be replaced by
// stochastic kriging and extensions ... which incorporate simulation
// variability into the fitting algorithm." A noisy objective (for
// calibration, the MSM distance J(θ)) is evaluated with replications
// at a space-filling design; a stochastic-kriging metamodel is fitted
// with the measured per-point noise; the surrogate's argmin is
// evaluated and added to the design; and the loop repeats — a simple
// sequential-design optimizer in the EGO family.
package surrogate

import (
	"errors"
	"fmt"
	"math"

	"modeldata/internal/calibrate"
	"modeldata/internal/metamodel"
	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// Common errors.
var (
	ErrBadProblem = errors.New("surrogate: invalid problem")
	ErrBadDesign  = errors.New("surrogate: invalid design")
)

// Problem is a noisy minimization problem over a box domain.
type Problem struct {
	// Objective evaluates the noisy objective at x.
	Objective func(x []float64, r *rng.Stream) float64
	// Lo and Hi bound the domain per dimension.
	Lo, Hi []float64
	// Reps is the number of replications averaged per evaluated point
	// (also the source of the stochastic-kriging noise estimates).
	// Default 5.
	Reps int
	// Seed drives all randomness.
	Seed uint64
}

func (p *Problem) validate() error {
	if p.Objective == nil || len(p.Lo) == 0 || len(p.Lo) != len(p.Hi) {
		return fmt.Errorf("%w: objective and matching bounds required", ErrBadProblem)
	}
	for d := range p.Lo {
		if p.Lo[d] >= p.Hi[d] {
			return fmt.Errorf("%w: dimension %d bounds [%g, %g]", ErrBadProblem, d, p.Lo[d], p.Hi[d])
		}
	}
	return nil
}

// Result reports a surrogate optimization run.
type Result struct {
	X []float64
	// F is the replication-averaged objective at X.
	F float64
	// Evals counts objective invocations (replications included).
	Evals int
	// Iterations is the number of refit-and-probe rounds performed.
	Iterations int
}

// point is one evaluated design point.
type point struct {
	x        []float64
	mean     float64
	noiseVar float64 // variance of the mean = s²/reps
}

// Minimize runs the sequential stochastic-kriging loop: it evaluates
// the initial design (coded rows in [0, 1] per dimension scale onto
// [Lo, Hi]), then for `iters` rounds refits the metamodel, probes the
// surrogate argmin over a per-dimension grid of `gridPer` candidates,
// evaluates it, and adds it to the design. It returns the best
// evaluated point.
func (p *Problem) Minimize(design [][]float64, gridPer, iters int) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if len(design) < 4 {
		return Result{}, fmt.Errorf("%w: need ≥ 4 initial points, got %d", ErrBadDesign, len(design))
	}
	if gridPer < 2 {
		gridPer = 11
	}
	reps := p.Reps
	if reps <= 0 {
		reps = 5
	}
	r := rng.New(p.Seed)
	dim := len(p.Lo)

	var res Result
	evaluate := func(x []float64) (point, error) {
		vals := make([]float64, reps)
		for i := range vals {
			vals[i] = p.Objective(x, r.Split())
			res.Evals++
		}
		return point{
			x:        append([]float64(nil), x...),
			mean:     stats.Mean(vals),
			noiseVar: stats.Variance(vals) / float64(reps),
		}, nil
	}

	var pts []point
	for i, row := range design {
		if len(row) != dim {
			return Result{}, fmt.Errorf("%w: row %d has %d coordinates for %d dims", ErrBadDesign, i, len(row), dim)
		}
		x := make([]float64, dim)
		for d, c := range row {
			if c < 0 || c > 1 {
				return Result{}, fmt.Errorf("%w: coded value %g outside [0,1]", ErrBadDesign, c)
			}
			x[d] = p.Lo[d] + c*(p.Hi[d]-p.Lo[d])
		}
		pt, err := evaluate(x)
		if err != nil {
			return Result{}, err
		}
		pts = append(pts, pt)
	}

	for iter := 0; iter < iters; iter++ {
		xs := make([][]float64, len(pts))
		ys := make([]float64, len(pts))
		nv := make([]float64, len(pts))
		for i, pt := range pts {
			xs[i] = pt.x
			ys[i] = pt.mean
			nv[i] = pt.noiseVar
		}
		gp, err := metamodel.FitGPMLE(xs, ys, nv, calibrate.NMOptions{MaxEvals: 200})
		if err != nil {
			return Result{}, fmt.Errorf("surrogate: metamodel fit: %w", err)
		}
		// Probe the surrogate argmin on a grid (random offsets avoid
		// re-probing the identical lattice every round).
		best := make([]float64, dim)
		bestVal := math.Inf(1)
		offset := r.Float64() / float64(gridPer)
		var scan func(d int, x []float64) error
		scan = func(d int, x []float64) error {
			if d == dim {
				v, err := gp.Predict(x)
				if err != nil {
					return err
				}
				if v < bestVal {
					bestVal = v
					copy(best, x)
				}
				return nil
			}
			for g := 0; g < gridPer; g++ {
				frac := (float64(g) + offset) / float64(gridPer)
				x[d] = p.Lo[d] + frac*(p.Hi[d]-p.Lo[d])
				if err := scan(d+1, x); err != nil {
					return err
				}
			}
			return nil
		}
		if err := scan(0, make([]float64, dim)); err != nil {
			return Result{}, err
		}
		pt, err := evaluate(best)
		if err != nil {
			return Result{}, err
		}
		pts = append(pts, pt)
		res.Iterations++
	}

	// Best evaluated point wins.
	bi := 0
	for i, pt := range pts {
		if pt.mean < pts[bi].mean {
			bi = i
		}
	}
	res.X = pts[bi].x
	res.F = pts[bi].mean
	return res, nil
}
