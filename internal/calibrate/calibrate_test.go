package calibrate

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/rng"
)

func TestNelderMeadQuadratic(t *testing.T) {
	// min (x−3)² + (y+1)².
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{0, 0}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.X[0]-3) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Fatalf("argmin = %v", res.X)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxEvals: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock argmin = %v (f=%g)", res.X, res.F)
	}
}

func TestNelderMeadBudget(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 { calls++; return x[0] * x[0] }
	res, err := NelderMead(f, []float64{100}, NMOptions{MaxEvals: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("claimed convergence on a 10-eval budget from x=100")
	}
	if calls > 11 {
		t.Fatalf("made %d calls on budget 10", calls)
	}
	if _, err := NelderMead(f, nil, NMOptions{}); !errors.Is(err, ErrBadStart) {
		t.Fatalf("got %v", err)
	}
}

func TestGridSearch(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + (x[1]-5)*(x[1]-5)
	}
	res, err := GridSearch(f, [][]float64{{0, 1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 2 || res.X[1] != 5 || res.Evals != 12 {
		t.Fatalf("grid result = %+v", res)
	}
	if _, err := GridSearch(f, nil); !errors.Is(err, ErrBadStart) {
		t.Fatalf("got %v", err)
	}
	if _, err := GridSearch(f, [][]float64{{1}, {}}); !errors.Is(err, ErrBadBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestExponentialMLE(t *testing.T) {
	const theta = 2.5
	data := rng.SampleN(rng.ExponentialDist{Rate: theta}, rng.New(1), 50000)
	got, err := ExponentialMLE(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-theta)/theta > 0.02 {
		t.Fatalf("θ̂ = %g, want ≈ %g", got, theta)
	}
	if _, err := ExponentialMLE(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("got %v", err)
	}
	if _, err := ExponentialMLE([]float64{-1, -2}); !errors.Is(err, ErrBadModel) {
		t.Fatalf("got %v", err)
	}
}

func TestNumericalMLEMatchesClosedForm(t *testing.T) {
	const theta = 1.7
	data := rng.SampleN(rng.ExponentialDist{Rate: theta}, rng.New(2), 20000)
	closed, err := ExponentialMLE(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MLE(data, func(th []float64, x float64) float64 {
		if th[0] <= 0 {
			return math.Inf(-1)
		}
		return rng.ExponentialDist{Rate: th[0]}.LogPDF(x)
	}, []float64{1}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-closed) > 1e-3 {
		t.Fatalf("numerical MLE %g vs closed form %g", res.X[0], closed)
	}
	if _, err := MLE(nil, nil, nil, NMOptions{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("got %v", err)
	}
	if _, err := MLE(data, nil, nil, NMOptions{}); !errors.Is(err, ErrBadModel) {
		t.Fatalf("got %v", err)
	}
}

func TestNormalMLE(t *testing.T) {
	d := rng.NormalDist{Mu: 4, Sigma: 2}
	data := rng.SampleN(d, rng.New(3), 20000)
	res, err := MLE(data, func(th []float64, x float64) float64 {
		if th[1] <= 0 {
			return math.Inf(-1)
		}
		return rng.NormalDist{Mu: th[0], Sigma: th[1]}.LogPDF(x)
	}, []float64{0, 1}, NMOptions{MaxEvals: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-4) > 0.05 || math.Abs(res.X[1]-2) > 0.05 {
		t.Fatalf("MLE = %v", res.X)
	}
}

func TestMethodOfMoments(t *testing.T) {
	// Normal: match (mean, variance) → recover (μ, σ).
	observed := []float64{4, 9} // μ=4, σ²=9
	res, err := MethodOfMoments(observed, func(th []float64) []float64 {
		return []float64{th[0], th[1] * th[1]}
	}, []float64{1, 1}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-4) > 1e-4 || math.Abs(math.Abs(res.X[1])-3) > 1e-4 {
		t.Fatalf("MM = %v", res.X)
	}
	if _, err := MethodOfMoments(nil, nil, nil, NMOptions{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("got %v", err)
	}
	if _, err := MethodOfMoments([]float64{1}, func([]float64) []float64 { return nil }, []float64{1, 2}, NMOptions{}); !errors.Is(err, ErrBadModel) {
		t.Fatalf("under-identified: got %v", err)
	}
}

func TestMomentVector(t *testing.T) {
	mv := MomentVector([]float64{1, 2, 3, 4})
	if mv[0] != 2.5 {
		t.Fatalf("mean = %g", mv[0])
	}
	if len(MomentVector([]float64{5})) != 3 {
		t.Fatal("singleton moment vector")
	}
}

// herdingSim is a small stochastic AR(1)-style "herding" model with
// parameters θ = (drift a, noise σ); the MSM tests recover θ from its
// moment signature.
func herdingSim(theta []float64, r *rng.Stream) []float64 {
	a, sigma := theta[0], math.Abs(theta[1])
	if a > 0.99 {
		a = 0.99
	}
	if a < -0.99 {
		a = -0.99
	}
	x := 0.0
	xs := make([]float64, 150)
	for i := range xs {
		x = a*x + r.Normal(0, sigma)
		xs[i] = x
	}
	return MomentVector(xs)
}

func buildMSMProblem(t *testing.T, trueTheta []float64) *MSM {
	t.Helper()
	r := rng.New(101)
	obs := make([][]float64, 60)
	for i := range obs {
		obs[i] = herdingSim(trueTheta, r.Split())
	}
	return &MSM{
		Observed: obs,
		Simulate: herdingSim,
		SimReps:  60,
		Seed:     55,
	}
}

func TestMSMCalibrationRecoversTheta(t *testing.T) {
	trueTheta := []float64{0.7, 0.5}
	p := buildMSMProblem(t, trueTheta)
	if err := p.EstimateOptimalWeight(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Calibrate([]float64{0.3, 1.0}, NMOptions{MaxEvals: 400, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.7) > 0.12 || math.Abs(math.Abs(res.X[1])-0.5) > 0.12 {
		t.Fatalf("MSM θ̂ = %v, want ≈ %v (J=%g)", res.X, trueTheta, res.F)
	}
}

func TestMSMGridVsNelderMead(t *testing.T) {
	trueTheta := []float64{0.6, 0.8}
	p := buildMSMProblem(t, trueTheta)
	grid := [][]float64{
		{0.2, 0.4, 0.6, 0.8},
		{0.4, 0.8, 1.2},
	}
	gres, err := p.CalibrateGrid(grid)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Evals != 12 {
		t.Fatalf("grid evals = %d", gres.Evals)
	}
	if math.Abs(gres.X[0]-0.6) > 0.21 || math.Abs(gres.X[1]-0.8) > 0.41 {
		t.Fatalf("grid θ̂ = %v", gres.X)
	}
	nres, err := p.Calibrate([]float64{0.4, 1.2}, NMOptions{MaxEvals: 300})
	if err != nil {
		t.Fatal(err)
	}
	jGrid, err := p.J(gres.X)
	if err != nil {
		t.Fatal(err)
	}
	jNM, err := p.J(nres.X)
	if err != nil {
		t.Fatal(err)
	}
	if jNM > jGrid+1e-9 {
		t.Fatalf("Nelder-Mead J=%g worse than grid J=%g", jNM, jGrid)
	}
}

func TestMSMJDeterministic(t *testing.T) {
	p := buildMSMProblem(t, []float64{0.5, 0.5})
	j1, err := p.J([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := p.J([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("J not deterministic under common random numbers")
	}
}

func TestMSMRidgePenalty(t *testing.T) {
	p := buildMSMProblem(t, []float64{0.5, 0.5})
	p.Ridge = 1000
	res, err := p.Calibrate([]float64{0.5, 0.5}, NMOptions{MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Heavy ridge anchors θ̂ near the starting point.
	if math.Abs(res.X[0]-0.5) > 0.1 || math.Abs(res.X[1]-0.5) > 0.1 {
		t.Fatalf("ridge ignored: θ̂ = %v", res.X)
	}
}

func TestMSMValidation(t *testing.T) {
	var p MSM
	if _, err := p.J([]float64{1}); !errors.Is(err, ErrMSM) {
		t.Fatalf("got %v", err)
	}
	p2 := &MSM{
		Observed: [][]float64{{1, 2}, {3}},
		Simulate: func([]float64, *rng.Stream) []float64 { return nil },
	}
	if _, err := p2.J([]float64{1}); !errors.Is(err, ErrMSM) {
		t.Fatalf("ragged observations: got %v", err)
	}
	p3 := &MSM{
		Observed: [][]float64{{1, 2}},
		Simulate: func([]float64, *rng.Stream) []float64 { return []float64{1} },
	}
	if _, err := p3.J([]float64{1}); !errors.Is(err, ErrMSM) {
		t.Fatalf("wrong simulator arity: got %v", err)
	}
	if err := p3.EstimateOptimalWeight(); !errors.Is(err, ErrMSM) {
		t.Fatalf("single obs weight: got %v", err)
	}
}
