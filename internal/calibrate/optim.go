// Package calibrate implements the model-calibration toolkit of §3.1
// of the paper: maximum likelihood estimation, the method of moments,
// the method of simulated moments (MSM) with a generalized-distance
// objective J(θ) = GᵀWG, and the derivative-free optimizers (Nelder-
// Mead simplex, grid search) that the agent-based-model calibration
// literature relies on.
package calibrate

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Optimization errors.
var (
	ErrBadStart  = errors.New("calibrate: empty starting point")
	ErrMaxEvals  = errors.New("calibrate: objective evaluation budget exhausted")
	ErrBadBounds = errors.New("calibrate: invalid parameter bounds")
)

// NMOptions tune the Nelder-Mead simplex search.
type NMOptions struct {
	// MaxEvals bounds objective evaluations. Default 2000.
	MaxEvals int
	// Tol stops when the simplex function-value spread falls below it.
	// Default 1e-9.
	Tol float64
	// Step is the initial simplex size relative to |x0| (absolute for
	// zero coordinates). Default 0.1.
	Step float64
}

func (o NMOptions) withDefaults() NMOptions {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.Step <= 0 {
		o.Step = 0.1
	}
	return o
}

// NMResult reports a Nelder-Mead run.
type NMResult struct {
	X     []float64
	F     float64
	Evals int
	// Converged is false when the run stopped on the evaluation budget
	// rather than the tolerance.
	Converged bool
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead simplex
// method (the heuristic optimizer Fabretti [17] applies to ABM
// calibration). It never returns an error for budget exhaustion — the
// best point found is returned with Converged=false.
func NelderMead(f func([]float64) float64, x0 []float64, opts NMOptions) (NMResult, error) {
	if len(x0) == 0 {
		return NMResult{}, ErrBadStart
	}
	opts = opts.withDefaults()
	n := len(x0)
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}
	// Initial simplex: x0 plus n perturbed vertices.
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{x: base, f: eval(base)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		h := opts.Step * math.Abs(x[i])
		if h == 0 { //lint:allow floateq h is Step*|x[i]|, exactly zero only when x[i] is; fall back to the absolute step
			h = opts.Step
		}
		x[i] += h
		simplex[i+1] = vertex{x: x, f: eval(x)}
	}
	centroid := make([]float64, n)
	for evals < opts.MaxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if math.Abs(simplex[n].f-simplex[0].f) < opts.Tol {
			return NMResult{X: simplex[0].x, F: simplex[0].f, Evals: evals, Converged: true}, nil
		}
		// Centroid of all but the worst.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j] / float64(n)
			}
		}
		worst := simplex[n]
		reflect := make([]float64, n)
		for j := range reflect {
			reflect[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(reflect)
		switch {
		case fr < simplex[0].f:
			// Try expansion.
			expand := make([]float64, n)
			for j := range expand {
				expand[j] = centroid[j] + gamma*(reflect[j]-centroid[j])
			}
			fe := eval(expand)
			if fe < fr {
				simplex[n] = vertex{x: expand, f: fe}
			} else {
				simplex[n] = vertex{x: reflect, f: fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{x: reflect, f: fr}
		default:
			// Contraction.
			contract := make([]float64, n)
			for j := range contract {
				contract[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			fc := eval(contract)
			if fc < worst.f {
				simplex[n] = vertex{x: contract, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return NMResult{X: simplex[0].x, F: simplex[0].f, Evals: evals, Converged: false}, nil
}

// GridSearch minimizes f over the Cartesian product of the per-
// dimension value lists — the brute-force baseline the heuristic
// methods are compared against.
func GridSearch(f func([]float64) float64, grid [][]float64) (NMResult, error) {
	if len(grid) == 0 {
		return NMResult{}, ErrBadStart
	}
	for d, vals := range grid {
		if len(vals) == 0 {
			return NMResult{}, fmt.Errorf("%w: dimension %d empty", ErrBadBounds, d)
		}
	}
	n := len(grid)
	idx := make([]int, n)
	x := make([]float64, n)
	best := NMResult{F: math.Inf(1)}
	for {
		for d := range x {
			x[d] = grid[d][idx[d]]
		}
		fv := f(x)
		best.Evals++
		if fv < best.F {
			best.F = fv
			best.X = append([]float64(nil), x...)
		}
		// Odometer increment.
		d := 0
		for d < n {
			idx[d]++
			if idx[d] < len(grid[d]) {
				break
			}
			idx[d] = 0
			d++
		}
		if d == n {
			break
		}
	}
	best.Converged = true
	return best, nil
}
