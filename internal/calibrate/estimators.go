package calibrate

import (
	"errors"
	"fmt"
	"math"

	"modeldata/internal/stats"
)

// Estimation errors.
var (
	ErrNoData   = errors.New("calibrate: no observations")
	ErrBadModel = errors.New("calibrate: invalid model specification")
)

// ExponentialMLE returns the closed-form maximum likelihood estimate
// θ̂ₙ = 1/X̄ₙ for i.i.d. draws from f(x; θ) = θe^(−θx) — the worked
// example of §3.1.
func ExponentialMLE(data []float64) (float64, error) {
	if len(data) == 0 {
		return 0, ErrNoData
	}
	m := stats.Mean(data)
	if m <= 0 {
		return 0, fmt.Errorf("%w: nonpositive sample mean %g", ErrBadModel, m)
	}
	return 1 / m, nil
}

// MLE numerically maximizes the log likelihood Σᵢ log f(xᵢ; θ) over θ
// with Nelder-Mead. logPDF must return −Inf outside the support.
func MLE(data []float64, logPDF func(theta []float64, x float64) float64, theta0 []float64, opts NMOptions) (NMResult, error) {
	if len(data) == 0 {
		return NMResult{}, ErrNoData
	}
	if logPDF == nil {
		return NMResult{}, fmt.Errorf("%w: nil logPDF", ErrBadModel)
	}
	negLL := func(theta []float64) float64 {
		ll := 0.0
		for _, x := range data {
			v := logPDF(theta, x)
			if math.IsNaN(v) {
				return math.Inf(1)
			}
			ll += v
		}
		return -ll
	}
	res, err := NelderMead(negLL, theta0, opts)
	if err != nil {
		return res, err
	}
	res.F = -res.F // report the maximized log likelihood
	return res, nil
}

// MethodOfMoments solves the moment equations Ȳ − m(θ) = 0 by
// minimizing the squared distance ‖Ȳ − m(θ)‖² with Nelder-Mead. The
// moments function m maps θ to the model's theoretical moment vector;
// observed is the corresponding empirical moment vector.
func MethodOfMoments(observed []float64, moments func(theta []float64) []float64, theta0 []float64, opts NMOptions) (NMResult, error) {
	if len(observed) == 0 {
		return NMResult{}, ErrNoData
	}
	if moments == nil {
		return NMResult{}, fmt.Errorf("%w: nil moments function", ErrBadModel)
	}
	if len(observed) < len(theta0) {
		return NMResult{}, fmt.Errorf("%w: %d moments for %d parameters", ErrBadModel, len(observed), len(theta0))
	}
	obj := func(theta []float64) float64 {
		m := moments(theta)
		if len(m) != len(observed) {
			return math.Inf(1)
		}
		s := 0.0
		for i := range m {
			d := observed[i] - m[i]
			s += d * d
		}
		return s
	}
	return NelderMead(obj, theta0, opts)
}

// MomentVector computes the empirical statistic vector
// (mean, variance, lag-1 autocovariance) of a series — a standard Y
// choice for MSM calibration of dynamic agent models.
func MomentVector(xs []float64) []float64 {
	out := []float64{stats.Mean(xs), stats.Variance(xs), 0}
	if len(xs) > 1 {
		out[2] = stats.Covariance(xs[:len(xs)-1], xs[1:])
	}
	return out
}
