package calibrate

import (
	"errors"
	"fmt"

	"modeldata/internal/linalg"
	"modeldata/internal/rng"
)

// This file implements the Method of Simulated Moments (McFadden [41])
// as presented in §3.1: the moment map m(θ) = E[Y | θ] is too complex
// for analysis, so it is approximated by the average m̂(θ) of simulated
// statistic vectors, and θ is chosen to minimize the generalized
// distance J(θ) = GₙᵀWGₙ with Gₙ = Ȳₙ − m̂(θ). W is typically an
// estimate of the inverse variance-covariance matrix of Gₙ.

// ErrMSM wraps MSM configuration problems.
var ErrMSM = errors.New("calibrate: invalid MSM problem")

// MSM is a method-of-simulated-moments calibration problem.
type MSM struct {
	// Observed holds the empirical statistic vectors Y₁…Yₙ (each of
	// dimension m).
	Observed [][]float64
	// Simulate draws one statistic vector from the model at parameter
	// θ.
	Simulate func(theta []float64, r *rng.Stream) []float64
	// SimReps is the number of simulated draws averaged to form m̂(θ).
	// Default 50.
	SimReps int
	// Weight is W; nil means the identity. Use EstimateOptimalWeight
	// for the efficiency-boosting inverse-covariance choice.
	Weight *linalg.Matrix
	// Seed fixes the simulation randomness. J(θ) uses common random
	// numbers across evaluations (the same seed every call), which
	// removes simulation chatter from the optimization surface — the
	// standard trick that makes Nelder-Mead workable here.
	Seed uint64
	// Ridge is an optional L2 regularization coefficient added to J as
	// Ridge·‖θ − θ₀‖², the §3.1 suggestion for combating calibration
	// overfitting; theta0 is the point passed to Calibrate.
	Ridge float64

	ridgeCenter []float64
	ybar        []float64
}

func (p *MSM) dims() (n, m int, err error) {
	if len(p.Observed) == 0 || p.Simulate == nil {
		return 0, 0, fmt.Errorf("%w: need observations and a simulator", ErrMSM)
	}
	m = len(p.Observed[0])
	for i, y := range p.Observed {
		if len(y) != m {
			return 0, 0, fmt.Errorf("%w: observation %d has %d stats, want %d", ErrMSM, i, len(y), m)
		}
	}
	return len(p.Observed), m, nil
}

// observedMean computes Ȳₙ once.
func (p *MSM) observedMean() ([]float64, error) {
	if p.ybar != nil {
		return p.ybar, nil
	}
	n, m, err := p.dims()
	if err != nil {
		return nil, err
	}
	ybar := make([]float64, m)
	for _, y := range p.Observed {
		for j, v := range y {
			ybar[j] += v / float64(n)
		}
	}
	p.ybar = ybar
	return ybar, nil
}

// SimulatedMean computes m̂(θ) by averaging SimReps simulated draws
// with common random numbers.
func (p *MSM) SimulatedMean(theta []float64) ([]float64, error) {
	_, m, err := p.dims()
	if err != nil {
		return nil, err
	}
	reps := p.SimReps
	if reps <= 0 {
		reps = 50
	}
	r := rng.New(p.Seed)
	mean := make([]float64, m)
	for k := 0; k < reps; k++ {
		y := p.Simulate(theta, r.Split())
		if len(y) != m {
			return nil, fmt.Errorf("%w: simulator returned %d stats, want %d", ErrMSM, len(y), m)
		}
		for j, v := range y {
			mean[j] += v / float64(reps)
		}
	}
	return mean, nil
}

// J evaluates the generalized distance J(θ) = GᵀWG (+ ridge penalty).
func (p *MSM) J(theta []float64) (float64, error) {
	ybar, err := p.observedMean()
	if err != nil {
		return 0, err
	}
	mhat, err := p.SimulatedMean(theta)
	if err != nil {
		return 0, err
	}
	g := linalg.Sub(ybar, mhat)
	var j float64
	if p.Weight == nil {
		j = linalg.Dot(g, g)
	} else {
		wg, err := p.Weight.MulVec(g)
		if err != nil {
			return 0, err
		}
		j = linalg.Dot(g, wg)
	}
	if p.Ridge > 0 && p.ridgeCenter != nil {
		d := linalg.Sub(theta, p.ridgeCenter)
		j += p.Ridge * linalg.Dot(d, d)
	}
	return j, nil
}

// EstimateOptimalWeight sets W to the inverse of the sample variance-
// covariance matrix of the observed statistic vectors (scaled by n, the
// covariance of Gₙ = Ȳₙ − m(θ) under the model), the standard
// efficiency-boosting choice [20]. A small ridge is added to keep the
// inverse stable.
func (p *MSM) EstimateOptimalWeight() error {
	n, m, err := p.dims()
	if err != nil {
		return err
	}
	if n < 2 {
		return fmt.Errorf("%w: need ≥ 2 observations for a covariance", ErrMSM)
	}
	ybar, err := p.observedMean()
	if err != nil {
		return err
	}
	cov := linalg.NewMatrix(m, m)
	for _, y := range p.Observed {
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				cov.Set(a, b, cov.At(a, b)+(y[a]-ybar[a])*(y[b]-ybar[b])/float64(n-1))
			}
		}
	}
	// Cov(Ȳₙ) = Cov(Y)/n; regularize the diagonal before inverting.
	for a := 0; a < m; a++ {
		cov.Set(a, a, cov.At(a, a)+1e-9)
	}
	covMean := cov.Scale(1 / float64(n))
	w, err := linalg.Inverse(covMean)
	if err != nil {
		return fmt.Errorf("calibrate: weight matrix: %w", err)
	}
	p.Weight = w
	return nil
}

// Calibrate minimizes J(θ) from theta0 with Nelder-Mead.
func (p *MSM) Calibrate(theta0 []float64, opts NMOptions) (NMResult, error) {
	if _, _, err := p.dims(); err != nil {
		return NMResult{}, err
	}
	p.ridgeCenter = append([]float64(nil), theta0...)
	var evalErr error
	res, err := NelderMead(func(theta []float64) float64 {
		j, err := p.J(theta)
		if err != nil {
			evalErr = err
			return 1e300
		}
		return j
	}, theta0, opts)
	if evalErr != nil {
		return res, evalErr
	}
	return res, err
}

// CalibrateGrid minimizes J(θ) over a parameter grid (the random/grid
// sampling baseline of §3.1).
func (p *MSM) CalibrateGrid(grid [][]float64) (NMResult, error) {
	if _, _, err := p.dims(); err != nil {
		return NMResult{}, err
	}
	var evalErr error
	res, err := GridSearch(func(theta []float64) float64 {
		j, err := p.J(theta)
		if err != nil {
			evalErr = err
			return 1e300
		}
		return j
	}, grid)
	if evalErr != nil {
		return res, evalErr
	}
	return res, err
}
