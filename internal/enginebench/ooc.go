package enginebench

// Out-of-core workloads: the 10⁷-row benchmarks over internal/colstore
// segments. Data builds segment-by-segment from typed vectors — never
// materializing boxed rows — so a 10⁷-row relation costs one segment
// buffer, not ten million engine.Row allocations. The `id` column is
// sequential, clustering segments into disjoint id ranges that a
// BETWEEN predicate can prune via zone maps; `gid` is a small-domain
// group key and `val`/`tag` give the aggregates real work.

import (
	"fmt"

	"modeldata/internal/colstore"
	"modeldata/internal/engine"
	"modeldata/internal/engine/plan"
	"modeldata/internal/rng"
)

// OOCDefaultRows is the headline out-of-core benchmark scale.
const OOCDefaultRows = 10_000_000

// oocGidDomain is the group-by key cardinality.
const oocGidDomain = 1024

// oocSchema is the out-of-core fact relation's layout.
var oocSchema = engine.Schema{
	{Name: "id", Type: engine.TypeInt}, // sequential: clustered, prunable
	{Name: "gid", Type: engine.TypeInt},
	{Name: "val", Type: engine.TypeFloat},
	{Name: "tag", Type: engine.TypeString},
}

// BuildOOCStore writes the rows-row fact relation as segments under
// dir, segRows rows per segment (0 = colstore's default).
func BuildOOCStore(dir string, rows, segRows int) error {
	w, err := colstore.NewWriter(dir, "ooc", oocSchema, colstore.Options{SegmentRows: segRows})
	if err != nil {
		return err
	}
	r := rng.New(0x00c)
	chunk := segRows
	if chunk <= 0 {
		chunk = colstore.DefaultSegmentRows
	}
	tags := make([]string, 16)
	for i := range tags {
		tags[i] = fmt.Sprintf("t%02d", i)
	}
	for lo := 0; lo < rows; lo += chunk {
		n := chunk
		if lo+n > rows {
			n = rows - lo
		}
		// bounded by the segment chunk size
		ids := make([]int64, n)
		gids := make([]int64, n)
		vals := make([]float64, n)
		tagv := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = int64(lo + i)
			gids[i] = int64(r.Intn(oocGidDomain))
			vals[i] = r.Float64()
			tagv[i] = tags[r.Intn(len(tags))]
		}
		b, err := engine.BlockOf("ooc", oocSchema, []any{ids, gids, vals, tagv})
		if err != nil {
			return err
		}
		if err := w.AppendBlock(b); err != nil {
			return err
		}
	}
	return w.Close()
}

// oocJoinDim builds the join dimension: rows/100 stride-distinct ids,
// so each dimension row matches exactly one fact row and the build
// side is large enough to force a Grace spill at a small budget.
func oocJoinDim(rows int) *engine.Table {
	n := rows / 100
	if n < 1 {
		n = 1
	}
	t := &engine.Table{Name: "dim", Schema: engine.Schema{
		{Name: "jid", Type: engine.TypeInt},
		{Name: "label", Type: engine.TypeString},
	}}
	t.Rows = make([]engine.Row, 0, n)
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, engine.Row{
			engine.Int(int64(i * 100)),
			engine.Str(fmt.Sprintf("d%06d", i)),
		})
	}
	return t
}

// OOCWorkload is one out-of-core benchmark: Base is the unoptimized
// execution (full decode, or unlimited-memory hash), Opt the optimized
// one (zone-map-pruned scan, or budgeted spill).
type OOCWorkload struct {
	Op   string
	Rows int
	Base func()
	Opt  func()
}

// Name returns the canonical benchmark label, e.g. "ScanPruned/10000000".
func (w OOCWorkload) Name() string { return fmt.Sprintf("%s/%d", w.Op, w.Rows) }

// OOCWorkloads opens the segment directory written by BuildOOCStore
// twice — once with pruning, once decoding everything — and returns
// the scan, join, and group-by workload pairs. spillBudget is the
// memory budget (bytes) the Opt join/group-by run under; Base runs
// unlimited.
func OOCWorkloads(dir string, rows int, spillBudget int64, spillDir string) ([]OOCWorkload, error) {
	pruned, err := colstore.Open(dir, colstore.Options{})
	if err != nil {
		return nil, err
	}
	full, err := colstore.Open(dir, colstore.Options{DisablePruning: true})
	if err != nil {
		return nil, err
	}
	mustCount := func(q *engine.Query) {
		if _, err := q.Count(); err != nil {
			panic(err)
		}
	}

	// A BETWEEN over 1% of the sequential id range: zone maps prune
	// every segment outside it, the full-decode store reads them all.
	lo, hi := int64(rows/2), int64(rows/2+rows/100)
	between := plan.Between{Col: "id", Lo: plan.IntLit(lo), Hi: plan.IntLit(hi)}
	scan := OOCWorkload{
		Op: "ScanPruned", Rows: rows,
		Base: func() { mustCount(engine.FromStorage(full).WhereExpr(between)) },
		Opt:  func() { mustCount(engine.FromStorage(pruned).WhereExpr(between)) },
	}

	dim := oocJoinDim(rows)
	join := OOCWorkload{
		Op: "JoinSpill", Rows: rows,
		Base: func() { mustCount(engine.FromStorage(pruned).Join(dim, "id", "jid")) },
		Opt: func() {
			mustCount(engine.FromStorage(pruned).Join(dim, "id", "jid").
				WithMemoryBudget(spillBudget).WithSpillDir(spillDir))
		},
	}

	aggs := []engine.Aggregate{
		{Fn: engine.AggCount, As: "n"},
		{Fn: engine.AggSum, Col: "val", As: "sv"},
		{Fn: engine.AggMax, Col: "val", As: "mv"},
	}
	group := OOCWorkload{
		Op: "GroupBySpill", Rows: rows,
		Base: func() { mustCount(engine.FromStorage(pruned).GroupBy([]string{"gid"}, aggs...)) },
		Opt: func() {
			mustCount(engine.FromStorage(pruned).GroupBy([]string{"gid"}, aggs...).
				WithMemoryBudget(spillBudget).WithSpillDir(spillDir))
		},
	}
	return []OOCWorkload{scan, join, group}, nil
}
