// Package enginebench builds deterministic micro-benchmark workloads
// for the relational engine's row and columnar execution paths. The
// same Workload definitions back both the `go test -bench` benchmarks
// (internal/engine/bench_test.go) and the cmd/benchjson trajectory
// recorder, so the numbers in BENCH_4.json measure exactly the code the
// benchmarks do.
package enginebench

import (
	"fmt"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
)

// Sizes are the row counts every operator workload is generated at.
var Sizes = []int{10_000, 100_000}

// Workload is one operator micro-benchmark: Row runs the row-based
// operator once, Col the columnar counterpart. Both operate on
// pre-built inputs (table and decoded block), so an iteration measures
// operator execution, not data generation or boundary conversion; the
// columnar side threads one reusable Scratch through all iterations,
// the way a query plan would.
type Workload struct {
	Op   string // Select, EquiJoin, GroupBy, Distinct
	Rows int
	Row  func()
	Col  func()
}

// Name returns the canonical benchmark label, e.g. "EquiJoin/100000".
func (w Workload) Name() string { return fmt.Sprintf("%s/%d", w.Op, w.Rows) }

// events builds the probe-side fact table: a small-domain int group
// key, a float measure, a small-domain string tag, and a bool flag.
func events(r *rng.Stream, n int) *engine.Table {
	t := &engine.Table{Name: "events", Schema: engine.Schema{
		{Name: "gid", Type: engine.TypeInt},
		{Name: "val", Type: engine.TypeFloat},
		{Name: "tag", Type: engine.TypeString},
		{Name: "flag", Type: engine.TypeBool},
	}}
	t.Rows = make([]engine.Row, 0, n)
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, engine.Row{
			engine.Int(int64(r.Intn(64))),
			engine.Float(r.Float64()),
			engine.Str(fmt.Sprintf("t%02d", r.Intn(16))),
			engine.Bool(r.Bool(0.5)),
		})
	}
	return t
}

// dims builds the small build-side reference table: 64 rows keyed by
// gid, so EquiJoin exercises the small-build-side path.
func dims() *engine.Table {
	t := &engine.Table{Name: "dims", Schema: engine.Schema{
		{Name: "gid", Type: engine.TypeInt},
		{Name: "name", Type: engine.TypeString},
	}}
	for i := 0; i < 64; i++ {
		t.Rows = append(t.Rows, engine.Row{engine.Int(int64(i)), engine.Str(fmt.Sprintf("g%02d", i))})
	}
	return t
}

func mustBlock(t *engine.Table) *engine.ColumnBlock {
	b, err := engine.FromTable(t)
	if err != nil {
		panic(err)
	}
	return b
}

// Workloads builds every operator workload at every size. Generation is
// seeded through internal/rng, so the data — and therefore the work — is
// identical on every run.
func Workloads() []Workload {
	var out []Workload
	r := rng.New(0x5eed)
	dim := dims()
	dimBlock := mustBlock(dim)
	for _, n := range Sizes {
		ev := events(r.Split(), n)
		evBlock := mustBlock(ev)
		sc := engine.NewScratch()
		vi, err := ev.ColIndex("val")
		if err != nil {
			panic(err)
		}

		pred := func(f float64) bool { return f < 0.5 }
		out = append(out, Workload{
			Op: "Select", Rows: n,
			Row: func() {
				engine.Select(ev, func(row engine.Row) bool {
					return row[vi].IsNumeric() && pred(row[vi].AsFloat())
				})
			},
			Col: func() {
				if _, err := evBlock.WhereFloat("val", pred); err != nil {
					panic(err)
				}
			},
		})

		out = append(out, Workload{
			Op: "EquiJoin", Rows: n,
			Row: func() {
				if _, err := engine.EquiJoin(ev, dim, "gid", "gid"); err != nil {
					panic(err)
				}
			},
			Col: func() {
				if _, err := evBlock.EquiJoin(dimBlock, "gid", "gid", sc); err != nil {
					panic(err)
				}
			},
		})

		keys := []string{"gid"}
		aggs := []engine.Aggregate{
			{Fn: engine.AggCount, As: "n"},
			{Fn: engine.AggSum, Col: "val", As: "s"},
			{Fn: engine.AggMin, Col: "val", As: "mn"},
		}
		out = append(out, Workload{
			Op: "GroupBy", Rows: n,
			Row: func() {
				if _, err := engine.GroupBy(ev, keys, aggs); err != nil {
					panic(err)
				}
			},
			Col: func() {
				if _, err := evBlock.GroupBy(keys, aggs, sc); err != nil {
					panic(err)
				}
			},
		})

		// Distinct runs over a projection with heavy duplication (64×16×2
		// distinct combinations), the shape DISTINCT exists for.
		proj, err := engine.Project(ev, "gid", "tag", "flag")
		if err != nil {
			panic(err)
		}
		projBlock := mustBlock(proj)
		out = append(out, Workload{
			Op: "Distinct", Rows: n,
			Row: func() { engine.Distinct(proj) },
			Col: func() { projBlock.Distinct(sc) },
		})
	}
	return out
}
