// Package enginebench builds deterministic micro-benchmark workloads
// for the relational engine's row and columnar execution paths. The
// same Workload definitions back both the `go test -bench` benchmarks
// (internal/engine/bench_test.go) and the cmd/benchjson trajectory
// recorder, so the numbers in BENCH_9.json measure exactly the code the
// benchmarks do.
package enginebench

import (
	"fmt"

	"modeldata/internal/engine"
	"modeldata/internal/engine/plan"
	"modeldata/internal/rng"
)

// Sizes are the row counts every operator workload is generated at.
var Sizes = []int{10_000, 100_000}

// Workload is one operator micro-benchmark: Row runs the row-based
// operator once, Col the columnar counterpart. Both operate on
// pre-built inputs (table and decoded block), so an iteration measures
// operator execution, not data generation or boundary conversion; the
// columnar side threads one reusable Scratch through all iterations,
// the way a query plan would.
type Workload struct {
	Op   string // Select, EquiJoin, GroupBy, Distinct
	Rows int
	Row  func()
	Col  func()
}

// Name returns the canonical benchmark label, e.g. "EquiJoin/100000".
func (w Workload) Name() string { return fmt.Sprintf("%s/%d", w.Op, w.Rows) }

// events builds the probe-side fact table: a small-domain int group
// key, a float measure, a small-domain string tag, and a bool flag.
func events(r *rng.Stream, n int) *engine.Table {
	t := &engine.Table{Name: "events", Schema: engine.Schema{
		{Name: "gid", Type: engine.TypeInt},
		{Name: "val", Type: engine.TypeFloat},
		{Name: "tag", Type: engine.TypeString},
		{Name: "flag", Type: engine.TypeBool},
	}}
	t.Rows = make([]engine.Row, 0, n)
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, engine.Row{
			engine.Int(int64(r.Intn(64))),
			engine.Float(r.Float64()),
			engine.Str(fmt.Sprintf("t%02d", r.Intn(16))),
			engine.Bool(r.Bool(0.5)),
		})
	}
	return t
}

// dims builds the small build-side reference table: 64 rows keyed by
// gid, so EquiJoin exercises the small-build-side path.
func dims() *engine.Table {
	t := &engine.Table{Name: "dims", Schema: engine.Schema{
		{Name: "gid", Type: engine.TypeInt},
		{Name: "name", Type: engine.TypeString},
	}}
	for i := 0; i < 64; i++ {
		t.Rows = append(t.Rows, engine.Row{engine.Int(int64(i)), engine.Str(fmt.Sprintf("g%02d", i))})
	}
	return t
}

func mustBlock(t *engine.Table) *engine.ColumnBlock {
	b, err := engine.FromTable(t)
	if err != nil {
		panic(err)
	}
	return b
}

// Workloads builds every operator workload at every size. Generation is
// seeded through internal/rng, so the data — and therefore the work — is
// identical on every run.
func Workloads() []Workload {
	var out []Workload
	r := rng.New(0x5eed)
	dim := dims()
	dimBlock := mustBlock(dim)
	for _, n := range Sizes {
		ev := events(r.Split(), n)
		evBlock := mustBlock(ev)
		sc := engine.NewScratch()
		vi, err := ev.ColIndex("val")
		if err != nil {
			panic(err)
		}

		pred := func(f float64) bool { return f < 0.5 }
		out = append(out, Workload{
			Op: "Select", Rows: n,
			Row: func() {
				engine.Select(ev, func(row engine.Row) bool {
					return row[vi].IsNumeric() && pred(row[vi].AsFloat())
				})
			},
			Col: func() {
				if _, err := evBlock.WhereFloat("val", pred); err != nil {
					panic(err)
				}
			},
		})

		out = append(out, Workload{
			Op: "EquiJoin", Rows: n,
			Row: func() {
				if _, err := engine.EquiJoin(ev, dim, "gid", "gid"); err != nil {
					panic(err)
				}
			},
			Col: func() {
				if _, err := evBlock.EquiJoin(dimBlock, "gid", "gid", sc); err != nil {
					panic(err)
				}
			},
		})

		keys := []string{"gid"}
		aggs := []engine.Aggregate{
			{Fn: engine.AggCount, As: "n"},
			{Fn: engine.AggSum, Col: "val", As: "s"},
			{Fn: engine.AggMin, Col: "val", As: "mn"},
		}
		out = append(out, Workload{
			Op: "GroupBy", Rows: n,
			Row: func() {
				if _, err := engine.GroupBy(ev, keys, aggs); err != nil {
					panic(err)
				}
			},
			Col: func() {
				if _, err := evBlock.GroupBy(keys, aggs, sc); err != nil {
					panic(err)
				}
			},
		})

		// Distinct runs over a projection with heavy duplication (64×16×2
		// distinct combinations), the shape DISTINCT exists for.
		proj, err := engine.Project(ev, "gid", "tag", "flag")
		if err != nil {
			panic(err)
		}
		projBlock := mustBlock(proj)
		out = append(out, Workload{
			Op: "Distinct", Rows: n,
			Row: func() { engine.Distinct(proj) },
			Col: func() { projBlock.Distinct(sc) },
		})
	}
	return out
}

// PlannerWorkload is one join-heavy query benchmarked with the cost-
// based planner off (written order, the historical execution) and on.
// Both closures produce byte-identical results; the difference is
// purely plan choice.
type PlannerWorkload struct {
	Op   string
	Rows int
	Off  func()
	On   func()
}

// Name returns the canonical benchmark label, e.g. "Join3/100000".
func (w PlannerWorkload) Name() string { return fmt.Sprintf("%s/%d", w.Op, w.Rows) }

// medDims builds a 512-row dimension with fan-out 8 per gid, so the
// written-order join through it multiplies the intermediate by 8.
func medDims() *engine.Table {
	t := &engine.Table{Name: "med", Schema: engine.Schema{
		{Name: "gid", Type: engine.TypeInt},
		{Name: "name", Type: engine.TypeString},
	}}
	for i := 0; i < 512; i++ {
		t.Rows = append(t.Rows, engine.Row{
			engine.Int(int64(i % 64)),
			engine.Str(fmt.Sprintf("g%03d", i)),
		})
	}
	return t
}

// tinyDim is a one-row dimension matching 1/16 of the fact table's
// tags — the join a cost-based planner must run first.
func tinyDim() *engine.Table {
	t := &engine.Table{Name: "tiny", Schema: engine.Schema{
		{Name: "tag", Type: engine.TypeString},
		{Name: "label", Type: engine.TypeString},
	}}
	t.Rows = append(t.Rows, engine.Row{engine.Str("t03"), engine.Str("the-one")})
	return t
}

// PlannerWorkloads builds the planner-off vs planner-on benchmark
// queries. The written join order is deliberately bad: events ⋈ med
// (fan-out 8) first, the selective events ⋈ tiny (keeps 1/16) last.
// A cost-based order joins tiny first, shrinking every intermediate
// 128-fold; Join3Filtered additionally carries a predicate written
// above the first join that pushdown moves onto the events scan.
func PlannerWorkloads() []PlannerWorkload {
	var out []PlannerWorkload
	r := rng.New(0x91a7)
	med := medDims()
	tiny := tinyDim()
	run := func(q *engine.Query, on bool) func() {
		q = q.WithPlanner(on)
		return func() {
			if _, err := q.Run(); err != nil {
				panic(err)
			}
		}
	}
	for _, n := range Sizes {
		ev := events(r.Split(), n)

		q3 := engine.From(ev).
			Join(med, "gid", "gid").
			Join(tiny, "events.tag", "tag")
		out = append(out, PlannerWorkload{
			Op: "Join3", Rows: n,
			Off: run(q3, false),
			On:  run(q3, true),
		})

		qf := engine.From(ev).
			Join(med, "gid", "gid").
			WhereExpr(plan.Cmp{Op: "<", Col: "events.val", Val: plan.FloatLit(0.25)}).
			Join(tiny, "events.tag", "tag")
		out = append(out, PlannerWorkload{
			Op: "Join3Filtered", Rows: n,
			Off: run(qf, false),
			On:  run(qf, true),
		})
	}
	return out
}
