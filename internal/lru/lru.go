// Package lru provides a small bounded least-recently-used cache.
//
// It exists because a long-running process must bound every cache it
// keeps: the mcdb Session's bundle-realization cache and the query
// service's result cache both grow one entry per distinct key, and in
// a server that serves arbitrary (seed, iterations) combinations "one
// entry per key" is a memory leak. Both layers share this
// implementation so eviction behaves (and is metered) the same way
// everywhere.
package lru

import (
	"container/list"
	"sync"
)

// entry is one cached key/value pair, stored in the recency list.
type entry[K comparable, V any] struct {
	key K
	val V
}

// Cache is a bounded LRU map. All methods are safe for concurrent use.
// Get and GetOrAdd promote the touched key to most-recently-used;
// inserting beyond capacity evicts from the least-recently-used end.
type Cache[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List          // guarded by mu; front = most recent; elements hold *entry[K, V]
	idx map[K]*list.Element // guarded by mu
}

// New returns an empty cache bounded to capacity entries. A capacity
// of zero or less is treated as 1 (a bound of "nothing" would make
// every Add a miss-and-evict loop callers never want).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[K]*list.Element, capacity),
	}
}

// Get returns the value cached under k and promotes it to
// most-recently-used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts (or replaces) the value under k, promotes it, and
// returns how many entries were evicted to stay within capacity.
func (c *Cache[K, V]) Add(k K, v V) (evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.ll.MoveToFront(el)
		return 0
	}
	c.idx[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	return c.evictOverLocked()
}

// GetOrAdd returns the value already cached under k (loaded=true), or
// inserts v and returns it (loaded=false). Two goroutines racing to
// fill the same key therefore agree on one winning value — the shape
// the Session bundle cache needs, where a racing realization of the
// same key is identical and either copy may win.
func (c *Cache[K, V]) GetOrAdd(k K, v V) (actual V, loaded bool, evicted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true, 0
	}
	c.idx[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	return v, false, c.evictOverLocked()
}

// evictOverLocked drops least-recently-used entries until the cache
// fits its capacity. Callers hold c.mu.
func (c *Cache[K, V]) evictOverLocked() (evicted int) {
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.idx, el.Value.(*entry[K, V]).key)
		evicted++
	}
	return evicted
}

// Remove deletes the entry under k, returning its value if present.
func (c *Cache[K, V]) Remove(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[k]; ok {
		c.ll.Remove(el)
		delete(c.idx, k)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// RemoveOldest evicts and returns the least-recently-used entry. It
// lets a caller layer its own eviction policy (byte budgets, TTLs) on
// top of the recency order the cache already maintains.
func (c *Cache[K, V]) RemoveOldest() (K, V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.ll.Back()
	if el == nil {
		var zeroK K
		var zeroV V
		return zeroK, zeroV, false
	}
	c.ll.Remove(el)
	e := el.Value.(*entry[K, V])
	delete(c.idx, e.key)
	return e.key, e.val, true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }
