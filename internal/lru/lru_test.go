package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestAddGetEvictOrder(t *testing.T) {
	c := New[int, string](2)
	if ev := c.Add(1, "a"); ev != 0 {
		t.Fatalf("Add(1) evicted %d", ev)
	}
	if ev := c.Add(2, "b"); ev != 0 {
		t.Fatalf("Add(2) evicted %d", ev)
	}
	// Touch 1 so 2 becomes least recently used.
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if ev := c.Add(3, "c"); ev != 1 {
		t.Fatalf("Add(3) evicted %d, want 1", ev)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 should have survived (recently used)")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestAddReplaceDoesNotEvict(t *testing.T) {
	c := New[string, int](1)
	c.Add("k", 1)
	if ev := c.Add("k", 2); ev != 0 {
		t.Fatalf("replacing Add evicted %d", ev)
	}
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
}

func TestGetOrAddRace(t *testing.T) {
	c := New[int, int](4)
	v, loaded, ev := c.GetOrAdd(7, 70)
	if v != 70 || loaded || ev != 0 {
		t.Fatalf("first GetOrAdd = %d, %v, %d", v, loaded, ev)
	}
	v, loaded, _ = c.GetOrAdd(7, 71)
	if v != 70 || !loaded {
		t.Fatalf("second GetOrAdd = %d, %v; existing value must win", v, loaded)
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	c := New[int, int](0)
	if c.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamp to 1", c.Cap())
	}
	c.Add(1, 1)
	if _, ok := c.Get(1); !ok {
		t.Fatal("capacity-1 cache must hold its last entry")
	}
}

func TestBoundedUnderChurn(t *testing.T) {
	const capacity = 8
	c := New[int, int](capacity)
	evictions := 0
	for i := 0; i < 1000; i++ {
		evictions += c.Add(i, i)
		if c.Len() > capacity {
			t.Fatalf("Len %d exceeds capacity %d after %d adds", c.Len(), capacity, i+1)
		}
	}
	if want := 1000 - capacity; evictions != want {
		t.Fatalf("evictions = %d, want %d", evictions, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Add(k, g*1000+i)
				c.Get(k)
				c.GetOrAdd(k, i)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}

// TestLenBoundedDuringChurn reads Len concurrently with writer churn:
// because eviction happens under the same mutex as insertion, no
// interleaving may ever observe the cache above capacity.
func TestLenBoundedDuringChurn(t *testing.T) {
	const capacity = 8
	c := New[int, int](capacity)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(g*10000+i, i)
			}
		}(g)
	}
	for i := 0; i < 5000; i++ {
		if n := c.Len(); n > capacity {
			close(stop)
			wg.Wait()
			t.Fatalf("Len = %d observed above capacity %d during churn", n, capacity)
		}
	}
	close(stop)
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("Len = %d after churn, want <= %d", n, capacity)
	}
}
