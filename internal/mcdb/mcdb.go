// Package mcdb implements the Monte Carlo Database System of §2.1 of
// the paper (Jampani et al., TODS 2011): a relational database extended
// with "stochastic" tables whose contents are not stored values but
// probability distributions, realized on demand by VG (Variable
// Generation) functions. Running a query over one realization draws a
// sample from the query-result distribution; iterating yields samples
// from which moments, quantiles, extreme quantiles (MCDB-R), and
// threshold probabilities are estimated.
//
// Two execution strategies are provided:
//
//   - Naive: instantiate a full database per Monte Carlo iteration and
//     re-run the query (the strawman MCDB is designed to avoid).
//   - Tuple bundles: execute the plan once, with each uncertain cell
//     carrying its instantiations across all Monte Carlo iterations.
package mcdb

import (
	"context"
	"errors"
	"fmt"

	"modeldata/internal/engine"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// Common errors.
var (
	ErrNoSpec    = errors.New("mcdb: no such stochastic table spec")
	ErrBadSpec   = errors.New("mcdb: invalid stochastic table spec")
	ErrNoSamples = errors.New("mcdb: no Monte Carlo samples")
)

// VG is a Variable Generation function: given the parameter row
// produced by the spec's parameter query, it returns one realization of
// the uncertain values for a single outer tuple. VG functions range
// from a draw from a normal distribution to a full backward random walk
// (see the library in vg.go).
type VG func(params engine.Row, r *rng.Stream) ([]engine.Value, error)

// TableSpec declares one stochastic table, mirroring MCDB's
// CREATE TABLE ... AS FOR EACH ... WITH ... syntax:
//
//	CREATE TABLE SBP_DATA(PID, GENDER, SBP) AS
//	  FOR EACH p in PATIENTS
//	  WITH SBP AS Normal(SELECT s.MEAN, s.STD FROM SBP_PARAM s)
//	  SELECT p.PID, p.GENDER, b.VALUE FROM SBP b
type TableSpec struct {
	// Name and Schema of the realized stochastic table.
	Name   string
	Schema engine.Schema
	// ForEach names the deterministic table looped over (the FOR EACH
	// clause). If empty, the VG function is invoked exactly once with a
	// nil outer row.
	ForEach string
	// Params produces the VG parameter row for one outer tuple; in
	// MCDB this is an arbitrary SQL query over the non-random tables.
	// A nil Params passes the outer row itself to the VG function.
	Params func(db *engine.Database, outer engine.Row) (engine.Row, error)
	// VG generates one realization of the uncertain values.
	VG VG
	// OutputRow assembles a realized row from the outer tuple and the
	// VG output (the final SELECT). A nil OutputRow appends the VG
	// values to the outer row.
	OutputRow func(outer engine.Row, vgOut []engine.Value) engine.Row
	// UncertainCols lists the indexes (into Schema) of the columns
	// produced by the VG function; the bundle executor keeps these as
	// per-iteration arrays and the rest as constants. Required for
	// bundled execution; the naive path ignores it.
	UncertainCols []int
}

func (s *TableSpec) validate() error {
	if s.Name == "" || s.VG == nil {
		return fmt.Errorf("%w: %q needs a name and a VG function", ErrBadSpec, s.Name)
	}
	if err := s.Schema.Validate(); err != nil {
		return err
	}
	for _, c := range s.UncertainCols {
		if c < 0 || c >= len(s.Schema) {
			return fmt.Errorf("%w: uncertain column index %d out of range", ErrBadSpec, c)
		}
	}
	return nil
}

// DB is a Monte Carlo database: deterministic base tables plus
// stochastic table specifications.
type DB struct {
	Base  *engine.Database
	specs []*TableSpec
}

// New creates an MCDB over the given deterministic base tables.
func New(base *engine.Database) *DB {
	if base == nil {
		base = engine.NewDatabase()
	}
	return &DB{Base: base}
}

// AddSpec registers a stochastic table specification.
func (db *DB) AddSpec(spec *TableSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	db.specs = append(db.specs, spec)
	return nil
}

// Spec returns the named specification.
func (db *DB) Spec(name string) (*TableSpec, error) {
	for _, s := range db.specs {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNoSpec, name)
}

// realizeSpec materializes one realization of a stochastic table,
// checking ctx every few hundred tuples so a large realization can be
// aborted mid-build.
func (db *DB) realizeSpec(ctx context.Context, spec *TableSpec, r *rng.Stream) (*engine.Table, error) {
	out, err := engine.NewTable(spec.Name, spec.Schema)
	if err != nil {
		return nil, err
	}
	outers, err := db.outerRows(spec)
	if err != nil {
		return nil, err
	}
	for i, outer := range outers {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row, err := db.realizeTuple(spec, outer, r)
		if err != nil {
			return nil, err
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// outerRows returns the FOR EACH loop rows ([nil] when absent).
func (db *DB) outerRows(spec *TableSpec) ([]engine.Row, error) {
	if spec.ForEach == "" {
		return []engine.Row{nil}, nil
	}
	t, err := db.Base.Get(spec.ForEach)
	if err != nil {
		return nil, err
	}
	return t.Rows, nil
}

// vgParams resolves the parameter row for one outer tuple.
func (db *DB) vgParams(spec *TableSpec, outer engine.Row) (engine.Row, error) {
	if spec.Params == nil {
		return outer, nil
	}
	return spec.Params(db.Base, outer)
}

// realizeTuple realizes one output row for one outer tuple.
func (db *DB) realizeTuple(spec *TableSpec, outer engine.Row, r *rng.Stream) (engine.Row, error) {
	params, err := db.vgParams(spec, outer)
	if err != nil {
		return nil, err
	}
	vgOut, err := spec.VG(params, r)
	if err != nil {
		return nil, err
	}
	if spec.OutputRow != nil {
		return spec.OutputRow(outer, vgOut), nil
	}
	row := make(engine.Row, 0, len(outer)+len(vgOut))
	row = append(row, outer...)
	row = append(row, vgOut...)
	return row, nil
}

// Instantiate produces one complete database instance: a clone of the
// deterministic tables plus one realization of every stochastic table.
// Callers inside a parallel loop get cancellation from the loop
// itself; callers holding a context should prefer InstantiateCtx.
func (db *DB) Instantiate(r *rng.Stream) (*engine.Database, error) {
	return db.InstantiateCtx(context.Background(), r)
}

// InstantiateCtx is Instantiate with cancellation: ctx is observed
// between stochastic tables and every few hundred realized tuples, so
// a server handler can abort an instantiation mid-build with ctx.Err().
func (db *DB) InstantiateCtx(ctx context.Context, r *rng.Stream) (*engine.Database, error) {
	inst := db.Base.Clone()
	for _, spec := range db.specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := db.realizeSpec(ctx, spec, r)
		if err != nil {
			return nil, err
		}
		inst.Put(t)
	}
	return inst, nil
}

// Query maps a realized database instance to a scalar sample from the
// query-result distribution.
type Query func(inst *engine.Database) (float64, error)

// MonteCarlo runs the query over iters independent database instances,
// re-instantiating and re-executing everything per iteration — the
// naive strategy the tuple-bundle executor is measured against in
// experiment E1. Iterations fan out over the parallel runtime: each
// iteration draws from a substream split from seed in index order, so
// the returned samples are bit-identical at any worker count (workers
// ≤ 0 uses the context default). Cancellation of ctx aborts between
// iterations with ctx.Err().
func (db *DB) MonteCarlo(ctx context.Context, iters int, seed uint64, workers int, q Query) ([]float64, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("mcdb: iters=%d", iters)
	}
	out := make([]float64, iters)
	err := parallel.ForStreams(ctx, rng.New(seed), iters, parallel.Options{Workers: workers},
		func(i int, r *rng.Stream) error {
			inst, err := db.Instantiate(r)
			if err != nil {
				return err
			}
			v, err := q(inst)
			if err != nil {
				return err
			}
			out[i] = v
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MonteCarloNaive runs the query over iters independent database
// instances on the calling goroutine's default worker pool.
//
// Deprecated: use MonteCarlo, which adds cancellation and worker
// control. The two produce identical samples for the same seed.
func (db *DB) MonteCarloNaive(iters int, seed uint64, q Query) ([]float64, error) {
	return db.MonteCarlo(context.Background(), iters, seed, 0, q)
}
