package mcdb

// Lineage-driven delta re-realization. A what-if experiment — "re-run
// this query with a revised VG function for one customer segment" —
// does not need to pay for a full Monte Carlo run: the baseline bundle
// realization already records, per tuple and per iteration, every value
// the query could read. ExecDelta re-samples only the tuples the change
// touches (on the exact substreams the full realization would hand
// them, so the merged bundle is bit-identical to a from-scratch
// realization of the changed database), then compares old and new
// bundles to find the iterations whose samples can differ. Clean
// iterations reuse the baseline sample verbatim; only dirty ones are
// re-aggregated. The dirtiness test is a value comparison restricted to
// the query's lineage — the tuples that pass WhereDet — which is the
// same per-iteration provenance ExecLineage reports.

import (
	"context"
	"fmt"

	"modeldata/internal/engine"
	"modeldata/internal/obs"
	"modeldata/internal/parallel"
	"modeldata/internal/prov"
	"modeldata/internal/rng"
)

// Metric names reported by delta execution into the per-run registry.
const (
	// MetricDeltaItersSkipped counts Monte Carlo iterations whose
	// samples ExecDelta reused from the baseline bundles instead of
	// recomputing — the saving of delta re-realization.
	MetricDeltaItersSkipped = "mcdb.delta_iters_skipped"
	// MetricDeltaTuplesRerealized counts tuples re-sampled under the
	// changed specification.
	MetricDeltaTuplesRerealized = "mcdb.delta_tuples_rerealized"
)

// Delta describes a hypothetical change to one stochastic table: a
// replacement VG function and/or parameter query for the tuples Where
// selects, or — when both are nil — a MapUnc transform applied directly
// to the realized uncertain values (no VG calls at all, the cheapest
// what-if). Exactly the spec fields named here change; everything else
// (schema, FOR EACH loop, output assembly) is taken from the registered
// TableSpec.
type Delta struct {
	// Table names the stochastic table the change applies to.
	Table string
	// VG, when non-nil, replaces the spec's VG function.
	VG VG
	// Params, when non-nil, replaces the spec's parameter query.
	Params func(db *engine.Database, outer engine.Row) (engine.Row, error)
	// Where selects the affected tuples by their deterministic
	// attributes (uncertain positions hold zero Values). A nil Where
	// affects every tuple.
	Where func(det engine.Row) bool
	// MapUnc, when non-nil, transforms a tuple's realized uncertain
	// values in place (ordered as the spec's UncertainCols), once per
	// iteration — e.g. scale a demand column by 1.1. It requires VG and
	// Params to be nil: it edits realizations instead of re-sampling.
	MapUnc func(det engine.Row, unc []float64)
}

// ExecDelta answers q against the database as modified by d, reusing
// the baseline bundle realization wherever the change cannot have
// altered the answer. The returned samples are bit-identical to
// registering the modified spec in a fresh DB and running Exec with the
// same options — at any worker count — because affected tuples are
// re-sampled on the exact per-tuple substreams the full realization
// derives from (seed, spec order, tuple index). Iterations whose
// samples were reused are counted under MetricDeltaItersSkipped;
// re-sampled tuples under MetricDeltaTuplesRerealized.
func (s *Session) ExecDelta(ctx context.Context, q AggQuery, opts ExecOptions, d Delta) ([]float64, error) {
	return s.ExecDeltaRange(ctx, q, opts, d, 0, opts.Iterations)
}

// ExecDeltaRange is ExecDelta restricted to the iteration window
// [lo, hi) — the sharding primitive, with the same concatenation
// bit-identity guarantee as ExecRange. Skipped-iteration accounting
// covers the full Iterations run (the realization is per-tuple, not
// per-window), so shards report consistent counter values.
func (s *Session) ExecDeltaRange(ctx context.Context, q AggQuery, opts ExecOptions, d Delta, lo, hi int) ([]float64, error) {
	if opts.Iterations <= 0 {
		return nil, fmt.Errorf("mcdb: iters=%d", opts.Iterations)
	}
	if lo < 0 || hi > opts.Iterations || lo > hi {
		return nil, fmt.Errorf("mcdb: window [%d, %d) outside [0, %d)", lo, hi, opts.Iterations)
	}
	switch q.Fn {
	case engine.AggCount, engine.AggSum, engine.AggAvg:
	default:
		return nil, fmt.Errorf("mcdb: aggregate %v not supported by ExecDelta", q.Fn)
	}
	if d.Table == "" {
		return nil, fmt.Errorf("%w: delta names no table", ErrBadSpec)
	}
	if d.MapUnc != nil && (d.VG != nil || d.Params != nil) {
		return nil, fmt.Errorf("%w: delta MapUnc cannot combine with a VG or Params change", ErrBadSpec)
	}
	if opts.Strategy == StrategyNaive {
		return nil, fmt.Errorf("mcdb: delta execution requires the bundle strategy")
	}
	qspec, err := s.db.Spec(q.Table)
	if err != nil {
		return nil, err
	}
	if len(qspec.UncertainCols) == 0 {
		return nil, fmt.Errorf("%w: %q has no UncertainCols for bundled execution", ErrBadSpec, q.Table)
	}
	dspec, err := s.db.Spec(d.Table)
	if err != nil {
		return nil, err
	}
	if len(dspec.UncertainCols) == 0 {
		return nil, fmt.Errorf("%w: %q has no UncertainCols for bundled execution", ErrBadSpec, d.Table)
	}

	ctx, span := obs.Start(ctx, "mcdb.exec_delta")
	span.SetAttr("table", q.Table)
	span.SetAttr("delta_table", d.Table)
	span.SetInt("iterations", int64(opts.Iterations))
	defer span.End()

	old, err := s.bundlesFor(ctx, opts)
	if err != nil {
		return nil, err
	}
	reg := parallel.StatsFrom(ctx).Registry()
	oldBt, ok := old[q.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSpec, q.Table)
	}

	if d.Table != q.Table {
		// The change touches a different stochastic table, so this
		// query's bundle — and every sample — is untouched.
		reg.Counter(MetricDeltaItersSkipped).Add(int64(opts.Iterations))
		span.SetInt("iters_skipped", int64(opts.Iterations))
		return estimateWindow(oldBt, q, lo, hi)
	}

	affected := make([]int, 0, len(oldBt.Det))
	for ti, det := range oldBt.Det {
		if d.Where == nil || d.Where(det) {
			affected = append(affected, ti)
		}
	}
	newBt, detChanged, err := s.rerealize(ctx, dspec, oldBt, d, affected, opts)
	if err != nil {
		return nil, err
	}
	reg.Counter(MetricDeltaTuplesRerealized).Add(int64(len(affected)))
	span.SetInt("tuples_rerealized", int64(len(affected)))

	dirty, dirtyCount := markDirty(q, oldBt, newBt, affected, detChanged, opts.Iterations)
	skipped := opts.Iterations - dirtyCount
	reg.Counter(MetricDeltaItersSkipped).Add(int64(skipped))
	span.SetInt("iters_skipped", int64(skipped))

	newF := newBt
	if q.WhereDet != nil {
		newF = newBt.FilterDet(q.WhereDet)
	}
	if dirtyCount == opts.Iterations {
		full, err := newF.Estimate(q.Col, q.Fn, q.WhereUnc)
		if err != nil {
			return nil, err
		}
		return window(full, lo, hi), nil
	}
	oldF := oldBt
	if q.WhereDet != nil {
		oldF = oldBt.FilterDet(q.WhereDet)
	}
	out, err := oldF.Estimate(q.Col, q.Fn, q.WhereUnc)
	if err != nil {
		return nil, err
	}
	if dirtyCount > 0 {
		dvals, err := estimateDirty(newF, q.Col, q.Fn, q.WhereUnc, dirty)
		if err != nil {
			return nil, err
		}
		for it, isDirty := range dirty {
			if isDirty {
				out[it] = dvals[it]
			}
		}
	}
	return window(out, lo, hi), nil
}

// rerealize builds the changed-world bundle for one spec: unaffected
// tuples share the baseline's Det rows and Unc arrays, affected tuples
// are re-sampled (or value-transformed for a MapUnc delta). The second
// result marks, per affected tuple, whether its deterministic
// attributes changed — which forces every iteration dirty, because
// WhereDet membership may differ.
func (s *Session) rerealize(ctx context.Context, spec *TableSpec, old *BundleTable, d Delta, affected []int, opts ExecOptions) (*BundleTable, []bool, error) {
	nb := &BundleTable{
		Name:          old.Name,
		Schema:        old.Schema.Clone(),
		Iters:         old.Iters,
		UncertainCols: append([]int(nil), old.UncertainCols...),
		Det:           append([]engine.Row(nil), old.Det...),
		Unc:           append([][][]float64(nil), old.Unc...),
	}
	detChanged := make([]bool, len(affected))
	if len(affected) == 0 {
		return nb, detChanged, nil
	}
	if d.MapUnc != nil {
		// Value transform: no VG calls, no randomness — edit copies of
		// the affected tuples' realized arrays in place.
		uncBuf := make([]float64, len(nb.UncertainCols))
		for _, ti := range affected {
			src := old.Unc[ti]
			unc := make([][]float64, len(src))
			for k := range src {
				unc[k] = append([]float64(nil), src[k]...)
			}
			for it := 0; it < nb.Iters; it++ {
				for k := range uncBuf {
					uncBuf[k] = unc[k][it]
				}
				d.MapUnc(old.Det[ti], uncBuf)
				for k := range uncBuf {
					unc[k][it] = uncBuf[k]
				}
			}
			nb.Unc[ti] = unc
		}
		return nb, detChanged, nil
	}
	// VG or Params changed: re-sample the affected tuples on the exact
	// substreams the full realization derives — seed → one Split per
	// spec in registration order (InstantiateBundledCtx) → one SplitN
	// child per tuple in tuple order (parallel.ForStreams inside
	// bundleSpec) — so the merged bundle is bit-identical to realizing
	// the changed database from scratch.
	outers, err := s.db.outerRows(spec)
	if err != nil {
		return nil, nil, err
	}
	if len(outers) != old.Len() {
		return nil, nil, fmt.Errorf("mcdb: base table behind %q changed since realization (%d outer rows, bundle has %d tuples)",
			spec.Name, len(outers), old.Len())
	}
	st := s.db.specStream(spec, opts.Seed)
	if st == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSpec, spec.Name)
	}
	subs := st.SplitN(len(outers))
	vg := spec.VG
	if d.VG != nil {
		vg = d.VG
	}
	err = parallel.For(ctx, len(affected), parallel.Options{Workers: opts.Workers}, func(j int) error {
		ti := affected[j]
		tr := *subs[ti] // pristine copy, as parallel.ForStreams hands bundleSpec
		outer := outers[ti]
		var params engine.Row
		var err error
		if d.Params != nil {
			params, err = d.Params(s.db.Base, outer)
		} else {
			params, err = s.db.vgParams(spec, outer)
		}
		if err != nil {
			return err
		}
		unc := make([][]float64, len(spec.UncertainCols))
		for k := range unc {
			unc[k] = make([]float64, nb.Iters)
		}
		var det engine.Row
		for it := 0; it < nb.Iters; it++ {
			vgOut, err := vg(params, &tr)
			if err != nil {
				return err
			}
			var row engine.Row
			if spec.OutputRow != nil {
				row = spec.OutputRow(outer, vgOut)
			} else {
				row = append(append(engine.Row{}, outer...), vgOut...)
			}
			if len(row) != len(spec.Schema) {
				return fmt.Errorf("%w: %q produced %d values, schema has %d",
					ErrBadSpec, spec.Name, len(row), len(spec.Schema))
			}
			if it == 0 {
				det = row.Clone()
				for _, c := range spec.UncertainCols {
					det[c] = engine.Value{}
				}
			}
			for k, c := range spec.UncertainCols {
				if !row[c].IsNumeric() {
					return fmt.Errorf("%w: %q uncertain column %d is %s, bundles require numeric",
						ErrBadSpec, spec.Name, c, row[c].Type())
				}
				unc[k][it] = row[c].AsFloat()
			}
		}
		nb.Det[ti] = det
		nb.Unc[ti] = unc
		detChanged[j] = !rowsEqual(det, old.Det[ti])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return nb, detChanged, nil
}

// specStream replays the split trajectory of InstantiateBundledCtx up
// to the target spec, returning the exact stream bundleSpec received
// for it, or nil if the spec is not registered.
func (db *DB) specStream(target *TableSpec, seed uint64) *rng.Stream {
	r := rng.New(seed)
	for _, sp := range db.specs {
		st := r.Split()
		if sp == target {
			return st
		}
	}
	return nil
}

// markDirty flags the iterations whose samples can differ between the
// baseline and changed bundles: those where some query-relevant
// affected tuple carries different uncertain values. Bitwise equality
// decides reuse — if every value an iteration can read is unchanged,
// the aggregate (accumulated in the same tuple order) is unchanged too.
// A deterministic-attribute change forces every iteration dirty, since
// the tuple's WhereDet membership itself may have flipped.
func markDirty(q AggQuery, old, nb *BundleTable, affected []int, detChanged []bool, iters int) ([]bool, int) {
	dirty := make([]bool, iters)
	count := 0
	for idx, ti := range affected {
		if q.WhereDet != nil && !q.WhereDet(old.Det[ti]) && !q.WhereDet(nb.Det[ti]) {
			continue // the query never sees this tuple, old world or new
		}
		if detChanged[idx] {
			for it := range dirty {
				dirty[it] = true
			}
			return dirty, iters
		}
		ou, nu := old.Unc[ti], nb.Unc[ti]
		for it := 0; it < iters; it++ {
			if dirty[it] {
				continue
			}
			for k := range ou {
				if ou[k][it] != nu[k][it] { //lint:allow floateq bitwise sameness is exactly what decides sample reuse
					dirty[it] = true
					count++
					break
				}
			}
		}
	}
	return dirty, count
}

// estimateDirty is BundleTable.Estimate restricted to the flagged
// iterations. Tuples accumulate in the same order as a full Estimate,
// so the values at dirty positions are bitwise what Estimate would
// produce there; positions not flagged are left zero and must not be
// read. The empty-selection AVG = 0 convention carries over unchanged.
func estimateDirty(bt *BundleTable, col string, fn engine.AggFunc, pred UncPredicate, dirty []bool) ([]float64, error) {
	schemaIdx, err := bt.Schema.ColIndex(col)
	if err != nil {
		return nil, err
	}
	k, ok := bt.uncPos(schemaIdx)
	if !ok {
		return nil, fmt.Errorf("mcdb: column %q is not uncertain in %q", col, bt.Name)
	}
	idx := make([]int, 0, len(dirty))
	for it, isDirty := range dirty {
		if isDirty {
			idx = append(idx, it)
		}
	}
	sums := make([]float64, bt.Iters)
	counts := make([]float64, bt.Iters)
	uncBuf := make([]float64, len(bt.UncertainCols))
	for i := range bt.Det {
		unc := bt.Unc[i]
		for _, it := range idx {
			if pred != nil {
				for kk := range uncBuf {
					uncBuf[kk] = unc[kk][it]
				}
				if !pred(bt.Det[i], uncBuf) {
					continue
				}
			}
			sums[it] += unc[k][it]
			counts[it]++
		}
	}
	out := make([]float64, bt.Iters)
	switch fn {
	case engine.AggCount:
		copy(out, counts)
	case engine.AggSum:
		copy(out, sums)
	case engine.AggAvg:
		for _, it := range idx {
			// Empty selection: AVG is 0 by convention (see Session.Exec).
			if counts[it] > 0 {
				out[it] = sums[it] / counts[it]
			}
		}
	default:
		return nil, fmt.Errorf("mcdb: bundle aggregate %v not supported", fn)
	}
	return out, nil
}

// estimateWindow runs the standard bundle pipeline (FilterDet →
// Estimate → window) over one bundle table.
func estimateWindow(bt *BundleTable, q AggQuery, lo, hi int) ([]float64, error) {
	if q.WhereDet != nil {
		bt = bt.FilterDet(q.WhereDet)
	}
	full, err := bt.Estimate(q.Col, q.Fn, q.WhereUnc)
	if err != nil {
		return nil, err
	}
	return window(full, lo, hi), nil
}

// window slices the full sample vector to [lo, hi), avoiding a copy
// when the window covers everything.
func window(full []float64, lo, hi int) []float64 {
	if lo == 0 && hi == len(full) {
		return full
	}
	return append([]float64(nil), full[lo:hi]...)
}

// rowsEqual reports exact Value-level equality of two rows.
func rowsEqual(a, b engine.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExecLineage returns, for every Monte Carlo iteration of q, the
// why-provenance of that iteration's sample: the stochastic-table
// tuples (prov.Leaf values whose Row is the tuple's index in the
// realized table) that passed both predicates and therefore contributed
// to the aggregate. Lineage sets are interned in a prov.Arena, so
// iterations with identical lineage share one slice. This is the
// Monte Carlo counterpart of engine-level Query.WithProvenance, and the
// set ExecDelta's dirty-iteration test restricts its value comparison
// to.
func (s *Session) ExecLineage(ctx context.Context, q AggQuery, opts ExecOptions) ([][]prov.Leaf, error) {
	if opts.Iterations <= 0 {
		return nil, fmt.Errorf("mcdb: iters=%d", opts.Iterations)
	}
	spec, err := s.db.Spec(q.Table)
	if err != nil {
		return nil, err
	}
	if len(spec.UncertainCols) == 0 {
		return nil, fmt.Errorf("%w: %q has no UncertainCols for bundled execution", ErrBadSpec, q.Table)
	}
	ctx, span := obs.Start(ctx, "mcdb.lineage")
	span.SetAttr("table", q.Table)
	span.SetInt("iterations", int64(opts.Iterations))
	defer span.End()
	bundles, err := s.bundlesFor(ctx, opts)
	if err != nil {
		return nil, err
	}
	bt, ok := bundles[q.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSpec, q.Table)
	}
	arena := prov.NewArena()
	memo := make(map[prov.Set][]prov.Leaf)
	out := make([][]prov.Leaf, bt.Iters)
	uncBuf := make([]float64, len(bt.UncertainCols))
	leaves := make([]prov.Leaf, 0, bt.Len())
	for it := 0; it < bt.Iters; it++ {
		leaves = leaves[:0]
		for ti := range bt.Det {
			if q.WhereDet != nil && !q.WhereDet(bt.Det[ti]) {
				continue
			}
			if q.WhereUnc != nil {
				unc := bt.Unc[ti]
				for k := range uncBuf {
					uncBuf[k] = unc[k][it]
				}
				if !q.WhereUnc(bt.Det[ti], uncBuf) {
					continue
				}
			}
			leaves = append(leaves, prov.Leaf{Table: q.Table, Row: ti})
		}
		set := arena.SetOf(leaves)
		ls, ok := memo[set]
		if !ok {
			ls = arena.Leaves(set)
			memo[set] = ls
		}
		out[it] = ls
	}
	return out, nil
}
