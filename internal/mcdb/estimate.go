package mcdb

import (
	"fmt"
	"sort"

	"modeldata/internal/stats"
)

// Estimate summarizes Monte Carlo samples of a query result: the
// estimated expectation with a confidence interval, plus the sample
// moments an analyst asks MCDB for.
type Estimate struct {
	N         int
	Mean      float64
	Variance  float64
	CI95      float64 // half-width of the 95% CI for the mean
	Quantiles map[float64]float64
}

// Estimates are requested at these quantiles by default.
var defaultQuantiles = []float64{0.05, 0.25, 0.5, 0.75, 0.95}

// Summarize computes an Estimate from query-result samples.
func Summarize(samples []float64) (Estimate, error) {
	if len(samples) == 0 {
		return Estimate{}, ErrNoSamples
	}
	mean, hw := stats.MeanCI(samples, 0.95)
	qs, err := stats.Quantiles(samples, defaultQuantiles)
	if err != nil {
		return Estimate{}, err
	}
	qm := make(map[float64]float64, len(qs))
	for i, p := range defaultQuantiles {
		qm[p] = qs[i]
	}
	return Estimate{
		N:         len(samples),
		Mean:      mean,
		Variance:  stats.Variance(samples),
		CI95:      hw,
		Quantiles: qm,
	}, nil
}

func (e Estimate) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ± %.3g (95%% CI), var=%.4g, median=%.6g",
		e.N, e.Mean, e.CI95, e.Variance, e.Quantiles[0.5])
}

// RiskQuantile estimates an extreme quantile of the query-result
// distribution (e.g. 0.99 value-at-risk), using the tail-fit estimator
// of MCDB-R (§2.1, [5]) rather than the raw order statistic.
func RiskQuantile(samples []float64, p float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	return stats.ExtremeQuantile(samples, p)
}

// ThresholdProbability estimates P(result > threshold) from the Monte
// Carlo samples.
func ThresholdProbability(samples []float64, threshold float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	hits := 0
	for _, v := range samples {
		if v > threshold {
			hits++
		}
	}
	return float64(hits) / float64(len(samples)), nil
}

// ThresholdQuery answers MCDB's threshold queries of the form "Which
// regions will see more than a 2% decline in sales with at least 50%
// probability?" (§2.1, [42]). perGroup maps each group key to its
// per-iteration query results; the returned slice lists groups whose
// estimated P(result > threshold) is at least minProb.
func ThresholdQuery(perGroup map[string][]float64, threshold, minProb float64) ([]string, error) {
	groups := make([]string, 0, len(perGroup))
	for g := range perGroup {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	var out []string
	for _, g := range groups {
		p, err := ThresholdProbability(perGroup[g], threshold)
		if err != nil {
			return nil, fmt.Errorf("group %q: %w", g, err)
		}
		if p >= minProb {
			out = append(out, g)
		}
	}
	return out, nil
}
