package mcdb

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/parallel"
)

// TestBundleCacheBoundedUnderSeedChurn is the long-running-server
// regression: a Session hammered with distinct (iterations, seed)
// configurations must keep its realization cache bounded, counting
// evictions, instead of holding every bundle set ever realized.
func TestBundleCacheBoundedUnderSeedChurn(t *testing.T) {
	db := sbpFixture(t, 6)
	s := db.NewSession()
	st := parallel.NewStats()
	ctx := parallel.WithStats(context.Background(), st)
	q := AggQuery{Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg}

	const churn = 40
	for seed := uint64(0); seed < churn; seed++ {
		if _, err := s.Exec(ctx, q, ExecOptions{Strategy: StrategyBundle, Iterations: 5, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.bundles.Len(); got > DefaultBundleCacheCap {
		t.Fatalf("bundle cache holds %d entries, capacity %d", got, DefaultBundleCacheCap)
	}
	reg := st.Registry()
	if ev := reg.Counter(MetricRealizeCacheEvictions).Value(); ev != churn-DefaultBundleCacheCap {
		t.Fatalf("evictions = %d, want %d", ev, churn-DefaultBundleCacheCap)
	}
	if misses := reg.Counter(MetricRealizeCacheMisses).Value(); misses != churn {
		t.Fatalf("misses = %d, want %d", misses, churn)
	}

	// Recently used seeds still hit; evicted ones re-realize.
	if _, err := s.Exec(ctx, q, ExecOptions{Strategy: StrategyBundle, Iterations: 5, Seed: churn - 1}); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter(MetricRealizeCacheHits).Value(); hits != 1 {
		t.Fatalf("hits = %d, want 1 for a recently cached seed", hits)
	}

	// A tiny explicit capacity is honored too.
	s2 := db.NewSessionCache(2)
	for seed := uint64(0); seed < 10; seed++ {
		if _, err := s2.Exec(ctx, q, ExecOptions{Strategy: StrategyBundle, Iterations: 5, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s2.bundles.Len(); got > 2 {
		t.Fatalf("capacity-2 cache holds %d entries", got)
	}
}

// TestAvgEmptySelectionRowVsBundle pins the empty-selection AVG
// convention (0, not NaN) and that both strategies agree bit-for-bit
// over a predicate that empties out some iterations entirely.
func TestAvgEmptySelectionRowVsBundle(t *testing.T) {
	db := sbpFixture(t, 4)
	s := db.NewSession()
	// SBP draws are N(120, 15); a 165 mmHg floor leaves most
	// iterations with zero qualifying tuples out of only 4 patients.
	pred := func(det engine.Row, unc []float64) bool { return unc[0] > 165 }
	opts := ExecOptions{Iterations: 60, Seed: 11}

	for _, fn := range []engine.AggFunc{engine.AggAvg, engine.AggSum, engine.AggCount} {
		q := AggQuery{Table: "sbp_data", Col: "sbp", Fn: fn, WhereUnc: pred}
		opts.Strategy = StrategyBundle
		bundle, err := s.Exec(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Strategy = StrategyNaive
		naive, err := s.Exec(context.Background(), q, opts)
		if err != nil {
			t.Fatal(err)
		}
		empties := 0
		for i := range bundle {
			if bundle[i] != naive[i] {
				t.Fatalf("%v iter %d: bundle %v != naive %v", fn, i, bundle[i], naive[i])
			}
			if bundle[i] != bundle[i] { // NaN check
				t.Fatalf("%v iter %d: NaN leaked into samples", fn, i)
			}
			if bundle[i] == 0 {
				empties++
			}
		}
		if fn == engine.AggAvg && empties == 0 {
			t.Fatal("predicate never emptied an iteration; test exercises nothing")
		}
	}
}

// TestExecRangeShardsBitIdentical checks the serving-layer shard
// invariant at the session level: disjoint iteration windows
// concatenated in index order equal the full run, for the naive,
// bundle, and SQL paths.
func TestExecRangeShardsBitIdentical(t *testing.T) {
	db := sbpFixture(t, 8)
	s := db.NewSession()
	const iters = 30
	windows := [][2]int{{0, 9}, {9, 17}, {17, 30}}

	check := func(name string, full []float64, part func(lo, hi int) ([]float64, error)) {
		t.Helper()
		if len(full) != iters {
			t.Fatalf("%s: full run returned %d samples", name, len(full))
		}
		got := make([]float64, 0, iters)
		for _, w := range windows {
			p, err := part(w[0], w[1])
			if err != nil {
				t.Fatalf("%s window %v: %v", name, w, err)
			}
			if len(p) != w[1]-w[0] {
				t.Fatalf("%s window %v: %d samples", name, w, len(p))
			}
			got = append(got, p...)
		}
		for i := range full {
			if got[i] != full[i] {
				t.Fatalf("%s iter %d: sharded %v != full %v", name, i, got[i], full[i])
			}
		}
	}

	ctx := context.Background()
	for _, strat := range []Strategy{StrategyNaive, StrategyBundle} {
		q := AggQuery{Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg}
		opts := ExecOptions{Strategy: strat, Iterations: iters, Seed: 3, Workers: 4}
		full, err := s.Exec(ctx, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		check(strat.String(), full, func(lo, hi int) ([]float64, error) {
			return s.ExecRange(ctx, q, opts, lo, hi)
		})
	}

	const sql = "SELECT AVG(sbp) FROM sbp_data"
	opts := ExecOptions{Iterations: iters, Seed: 3, Workers: 4}
	full, err := s.ExecSQL(ctx, sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	check("sql", full, func(lo, hi int) ([]float64, error) {
		return s.ExecSQLRange(ctx, sql, opts, lo, hi)
	})

	if _, err := s.ExecRange(ctx, AggQuery{Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg},
		ExecOptions{Iterations: iters, Seed: 3}, 5, 40); err == nil {
		t.Fatal("out-of-range window must error")
	}
}

// TestExplainSQLCachedInstantiation checks the server-readiness fix:
// the seed-0 explain instantiation is built once per session, and a
// canceled context aborts the build instead of running to completion.
func TestExplainSQLCachedInstantiation(t *testing.T) {
	db := sbpFixture(t, 5)
	s := db.NewSession()
	ctx := context.Background()
	const sql = "SELECT COUNT(pid) FROM sbp_data"
	if _, _, err := s.ExplainSQL(ctx, sql); err != nil {
		t.Fatal(err)
	}
	inst1 := s.explainInst
	if inst1 == nil {
		t.Fatal("explain instantiation not cached")
	}
	if _, _, err := s.ExplainSQL(ctx, "SELECT SUM(sbp) FROM sbp_data"); err != nil {
		t.Fatal(err)
	}
	if s.explainInst != inst1 {
		t.Fatal("second EXPLAIN rebuilt the instantiation")
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	s2 := db.NewSession()
	if _, _, err := s2.ExplainSQL(canceled, sql); err == nil {
		t.Fatal("ExplainSQL ignored a canceled context")
	}
	if s2.explainInst != nil {
		t.Fatal("canceled EXPLAIN must not cache a partial instantiation")
	}
}

// TestSessionConcurrentHammer drives one Session from many goroutines
// mixing every public entry point under -race, asserting each caller
// sees samples bit-identical to a serial reference run.
func TestSessionConcurrentHammer(t *testing.T) {
	db := sbpFixture(t, 6)
	ref := db.NewSession()
	ctx := context.Background()

	aggQ := AggQuery{Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg}
	const sql = "SELECT AVG(sbp_data.sbp) FROM sbp_data JOIN patients ON sbp_data.pid = patients.pid WHERE patients.gender = 'M'"
	const explainSQL = "SELECT COUNT(pid) FROM sbp_data"

	seeds := []uint64{1, 2, 3}
	wantBundle := make(map[uint64][]float64)
	wantNaive := make(map[uint64][]float64)
	wantSQL := make(map[uint64][]float64)
	for _, seed := range seeds {
		opts := ExecOptions{Iterations: 12, Seed: seed, Workers: 1}
		opts.Strategy = StrategyBundle
		b, err := ref.Exec(ctx, aggQ, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantBundle[seed] = b
		opts.Strategy = StrategyNaive
		nv, err := ref.Exec(ctx, aggQ, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantNaive[seed] = nv
		sq, err := ref.ExecSQL(ctx, sql, ExecOptions{Iterations: 12, Seed: seed, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		wantSQL[seed] = sq
	}
	wantExplain, _, err := ref.ExplainSQL(ctx, explainSQL)
	if err != nil {
		t.Fatal(err)
	}

	s := db.NewSession()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				seed := seeds[(g+round)%len(seeds)]
				opts := ExecOptions{Iterations: 12, Seed: seed, Workers: 2}
				switch (g + round) % 4 {
				case 0:
					opts.Strategy = StrategyBundle
					got, err := s.Exec(ctx, aggQ, opts)
					if err != nil {
						errc <- err
						return
					}
					for i := range got {
						if got[i] != wantBundle[seed][i] {
							t.Errorf("goroutine %d: bundle seed %d iter %d: %v != %v", g, seed, i, got[i], wantBundle[seed][i])
							return
						}
					}
				case 1:
					opts.Strategy = StrategyNaive
					got, err := s.Exec(ctx, aggQ, opts)
					if err != nil {
						errc <- err
						return
					}
					for i := range got {
						if got[i] != wantNaive[seed][i] {
							t.Errorf("goroutine %d: naive seed %d iter %d: %v != %v", g, seed, i, got[i], wantNaive[seed][i])
							return
						}
					}
				case 2:
					got, err := s.ExecSQL(ctx, sql, ExecOptions{Iterations: 12, Seed: seed, Workers: 2})
					if err != nil {
						errc <- err
						return
					}
					for i := range got {
						if got[i] != wantSQL[seed][i] {
							t.Errorf("goroutine %d: sql seed %d iter %d: %v != %v", g, seed, i, got[i], wantSQL[seed][i])
							return
						}
					}
				case 3:
					if _, err := s.Prepared(sql); err != nil {
						errc <- err
						return
					}
					text, _, err := s.ExplainSQL(ctx, explainSQL)
					if err != nil {
						errc <- err
						return
					}
					if !strings.Contains(text, "scan sbp_data") || text != wantExplain {
						t.Errorf("goroutine %d: EXPLAIN text diverged", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestPreparedCacheBoundedUnderStatementChurn is the companion
// regression to the bundle-cache test for the other per-session cache:
// a session fed distinct SQL texts (a query service relaying arbitrary
// tenant statements) must keep its prepared-statement cache bounded
// instead of pinning every plan ever parsed, while repeated texts still
// share one Prepared.
func TestPreparedCacheBoundedUnderStatementChurn(t *testing.T) {
	db := sbpFixture(t, 4)
	s := db.NewSession()

	first, err := s.Prepared("SELECT AVG(sbp) FROM sbp_data")
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Prepared("SELECT AVG(sbp) FROM sbp_data")
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("repeated statement text must share one *engine.Prepared")
	}

	for i := 0; i < 3*DefaultPreparedCacheCap; i++ {
		sql := "SELECT AVG(sbp) FROM sbp_data WHERE sbp > " + strconv.Itoa(i)
		if _, err := s.Prepared(sql); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.prepared.Len(); got > DefaultPreparedCacheCap {
		t.Fatalf("prepared cache holds %d entries, capacity %d", got, DefaultPreparedCacheCap)
	}

	// An evicted statement still works — it is simply re-prepared.
	ctx := context.Background()
	if _, err := s.ExecSQL(ctx, "SELECT AVG(sbp) FROM sbp_data", ExecOptions{Iterations: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
