package mcdb

import (
	"context"
	"fmt"
	"sync"

	"modeldata/internal/engine"
	"modeldata/internal/obs"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// BundleTable is a stochastic table materialized as tuple bundles: the
// plan-once execution strategy of MCDB (§2.1). Each tuple stores its
// deterministic attributes exactly once; each uncertain attribute
// stores its instantiations across all Monte Carlo iterations.
type BundleTable struct {
	Name   string
	Schema engine.Schema
	Iters  int
	// UncertainCols are the schema indexes carried per iteration.
	UncertainCols []int
	// Det holds the deterministic attributes of each tuple; uncertain
	// positions hold the zero Value and must not be read.
	Det []engine.Row
	// Unc[tuple][k][iter] is the value of the k-th uncertain column of
	// the tuple at the given Monte Carlo iteration.
	Unc [][][]float64

	// detOnce caches the columnar decode of Det — the deterministic
	// attributes convert to column vectors once, then every Realize call
	// only patches the uncertain columns. Guarded by sync.Once so
	// concurrent Realize calls share one decode.
	detOnce  sync.Once
	detBlock *engine.ColumnBlock
	detErr   error
}

// uncPos maps schema index → position within the bundle's uncertain
// column list.
func (bt *BundleTable) uncPos(schemaIdx int) (int, bool) {
	for k, c := range bt.UncertainCols {
		if c == schemaIdx {
			return k, true
		}
	}
	return 0, false
}

// InstantiateBundled realizes every stochastic table as a BundleTable
// with iters Monte Carlo instantiations per uncertain cell on the
// default worker pool. See InstantiateBundledCtx.
func (db *DB) InstantiateBundled(iters int, seed uint64) (map[string]*BundleTable, error) {
	return db.InstantiateBundledCtx(context.Background(), iters, seed, 0)
}

// InstantiateBundledCtx realizes every stochastic table as a
// BundleTable with iters Monte Carlo instantiations per uncertain
// cell. The outer FOR EACH loop, parameter queries, and row assembly
// run once; only the VG sampling repeats per iteration — this is the
// tuple-bundle optimization. Tuples fan out over the parallel runtime
// with one substream per tuple (split in tuple order), so the realized
// bundles are bit-identical at any worker count. Spec Params and VG
// hooks must be safe for concurrent calls with distinct streams; every
// hook in this repository is.
func (db *DB) InstantiateBundledCtx(ctx context.Context, iters int, seed uint64, workers int) (map[string]*BundleTable, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("mcdb: iters=%d", iters)
	}
	ctx, span := obs.Start(ctx, "mcdb.instantiate_bundled")
	span.SetInt("iters", int64(iters))
	span.SetInt("tables", int64(len(db.specs)))
	defer span.End()
	r := rng.New(seed)
	out := make(map[string]*BundleTable, len(db.specs))
	for _, spec := range db.specs {
		bt, err := db.bundleSpec(ctx, spec, iters, r.Split(), workers)
		if err != nil {
			return nil, err
		}
		out[spec.Name] = bt
	}
	return out, nil
}

func (db *DB) bundleSpec(ctx context.Context, spec *TableSpec, iters int, r *rng.Stream, workers int) (*BundleTable, error) {
	if len(spec.UncertainCols) == 0 {
		return nil, fmt.Errorf("%w: %q has no UncertainCols for bundled execution", ErrBadSpec, spec.Name)
	}
	outers, err := db.outerRows(spec)
	if err != nil {
		return nil, err
	}
	bt := &BundleTable{
		Name:          spec.Name,
		Schema:        spec.Schema.Clone(),
		Iters:         iters,
		UncertainCols: append([]int(nil), spec.UncertainCols...),
		Det:           make([]engine.Row, len(outers)),
		Unc:           make([][][]float64, len(outers)),
	}
	err = parallel.ForStreams(ctx, r, len(outers), parallel.Options{Workers: workers},
		func(ti int, tr *rng.Stream) error {
			outer := outers[ti]
			// Parameter query runs once per tuple (not per iteration).
			params, err := db.vgParams(spec, outer)
			if err != nil {
				return err
			}
			unc := make([][]float64, len(spec.UncertainCols))
			for k := range unc {
				unc[k] = make([]float64, iters)
			}
			var det engine.Row
			for it := 0; it < iters; it++ {
				vgOut, err := spec.VG(params, tr)
				if err != nil {
					return err
				}
				var row engine.Row
				if spec.OutputRow != nil {
					row = spec.OutputRow(outer, vgOut)
				} else {
					row = append(append(engine.Row{}, outer...), vgOut...)
				}
				if len(row) != len(spec.Schema) {
					return fmt.Errorf("%w: %q produced %d values, schema has %d",
						ErrBadSpec, spec.Name, len(row), len(spec.Schema))
				}
				if it == 0 {
					det = row.Clone()
					for _, c := range spec.UncertainCols {
						det[c] = engine.Value{}
					}
				}
				for k, c := range spec.UncertainCols {
					if !row[c].IsNumeric() {
						return fmt.Errorf("%w: %q uncertain column %d is %s, bundles require numeric",
							ErrBadSpec, spec.Name, c, row[c].Type())
					}
					unc[k][it] = row[c].AsFloat()
				}
			}
			bt.Det[ti] = det
			bt.Unc[ti] = unc
			return nil
		})
	if err != nil {
		return nil, err
	}
	return bt, nil
}

// Len returns the number of tuples in the bundle table.
func (bt *BundleTable) Len() int { return len(bt.Det) }

// FilterDet applies a selection on deterministic attributes once for
// all iterations — the core saving of tuple bundles. The predicate
// receives the deterministic row (uncertain positions are zero Values).
func (bt *BundleTable) FilterDet(pred func(det engine.Row) bool) *BundleTable {
	out := &BundleTable{
		Name:          bt.Name,
		Schema:        bt.Schema.Clone(),
		Iters:         bt.Iters,
		UncertainCols: bt.UncertainCols,
	}
	for i, det := range bt.Det {
		if pred(det) {
			out.Det = append(out.Det, det)
			out.Unc = append(out.Unc, bt.Unc[i])
		}
	}
	return out
}

// UncPredicate qualifies a tuple at one Monte Carlo iteration; unc
// holds the tuple's uncertain values (ordered as UncertainCols) at that
// iteration. A nil UncPredicate accepts every tuple.
type UncPredicate func(det engine.Row, unc []float64) bool

// Estimate scans the bundle table once and computes, per Monte Carlo
// iteration, the aggregate of the named uncertain column over tuples
// satisfying pred. The result is a sample of size Iters from the
// query-result distribution. Supported aggregates: COUNT, SUM, AVG.
//
// Iterations whose selection is empty (pred rejects every tuple)
// yield COUNT = 0, SUM = 0, and — by the repository-wide convention
// documented on Session.Exec — AVG = 0 rather than NaN, keeping the
// sample vector finite and bit-identical to the naive strategy.
func (bt *BundleTable) Estimate(col string, fn engine.AggFunc, pred UncPredicate) ([]float64, error) {
	schemaIdx, err := bt.Schema.ColIndex(col)
	if err != nil {
		return nil, err
	}
	k, ok := bt.uncPos(schemaIdx)
	if !ok {
		return nil, fmt.Errorf("mcdb: column %q is not uncertain in %q", col, bt.Name)
	}
	sums := make([]float64, bt.Iters)
	counts := make([]float64, bt.Iters)
	uncBuf := make([]float64, len(bt.UncertainCols))
	for i := range bt.Det {
		unc := bt.Unc[i]
		for it := 0; it < bt.Iters; it++ {
			if pred != nil {
				for kk := range uncBuf {
					uncBuf[kk] = unc[kk][it]
				}
				if !pred(bt.Det[i], uncBuf) {
					continue
				}
			}
			sums[it] += unc[k][it]
			counts[it]++
		}
	}
	out := make([]float64, bt.Iters)
	switch fn {
	case engine.AggCount:
		copy(out, counts)
	case engine.AggSum:
		copy(out, sums)
	case engine.AggAvg:
		for it := range out {
			// Empty selection: AVG is 0 by convention (see Session.Exec).
			if counts[it] > 0 {
				out[it] = sums[it] / counts[it]
			}
		}
	default:
		return nil, fmt.Errorf("mcdb: bundle aggregate %v not supported", fn)
	}
	return out, nil
}

// Realize materializes the bundle table at a single Monte Carlo
// iteration as an ordinary engine table — useful for spot checks and
// for queries that the bundle executor does not cover. It runs on the
// columnar path — the deterministic columns decode once per bundle
// table, each iteration only swaps in fresh uncertain vectors — and
// falls back to row-at-a-time assembly for bundles whose Det rows the
// columnar layout cannot represent; both paths produce identical
// tables.
func (bt *BundleTable) Realize(iter int) (*engine.Table, error) {
	if b, err := bt.RealizeBlock(iter); err == nil {
		return b.ToTable(), nil
	} else if iter < 0 || iter >= bt.Iters {
		return nil, err
	}
	return bt.realizeRows(iter)
}

// cachedDetBlock decodes the deterministic columns of Det into a
// ColumnBlock exactly once (uncertain positions stay zero-filled and
// are patched per iteration).
func (bt *BundleTable) cachedDetBlock() (*engine.ColumnBlock, error) {
	bt.detOnce.Do(func() {
		bt.detBlock, bt.detErr = engine.FromRowsPartial(bt.Name, bt.Schema, bt.Det, bt.UncertainCols)
	})
	return bt.detBlock, bt.detErr
}

// RealizeBlock materializes the bundle table at a single Monte Carlo
// iteration in columnar form: the cached deterministic block plus one
// freshly gathered vector per uncertain column. This is the batch
// analogue of the tuple-bundle argument — the per-tuple work that does
// not depend on the iteration happens once, not Iters times.
func (bt *BundleTable) RealizeBlock(iter int) (*engine.ColumnBlock, error) {
	if iter < 0 || iter >= bt.Iters {
		return nil, fmt.Errorf("mcdb: iteration %d outside [0, %d)", iter, bt.Iters)
	}
	b, err := bt.cachedDetBlock()
	if err != nil {
		return nil, err
	}
	for k, c := range bt.UncertainCols {
		var vec any
		if bt.Schema[c].Type == engine.TypeInt {
			ints := make([]int64, len(bt.Det))
			for i := range bt.Det {
				ints[i] = int64(bt.Unc[i][k][iter])
			}
			vec = ints
		} else {
			floats := make([]float64, len(bt.Det))
			for i := range bt.Det {
				floats[i] = bt.Unc[i][k][iter]
			}
			vec = floats
		}
		if b, err = b.WithColumn(c, vec); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// realizeRows is the row-at-a-time fallback for Realize, kept for
// bundles whose Det rows hold values that do not match the schema types
// exactly (Insert re-validates and widens them).
func (bt *BundleTable) realizeRows(iter int) (*engine.Table, error) {
	out, err := engine.NewTable(bt.Name, bt.Schema)
	if err != nil {
		return nil, err
	}
	for i, det := range bt.Det {
		row := det.Clone()
		for k, c := range bt.UncertainCols {
			if bt.Schema[c].Type == engine.TypeInt {
				row[c] = engine.Int(int64(bt.Unc[i][k][iter]))
			} else {
				row[c] = engine.Float(bt.Unc[i][k][iter])
			}
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// JoinDet equijoins the bundle table with a deterministic table on a
// deterministic bundle column — the common MCDB query shape where a
// stochastic table (e.g. random demand per customer) joins reference
// data (e.g. customer regions). Because the join key is deterministic,
// the join executes once for all Monte Carlo iterations: matching
// deterministic attributes are appended to each tuple's Det row and the
// uncertain arrays are shared unchanged. Tuples matching multiple
// rows of det are replicated (sharing their uncertain arrays).
func (bt *BundleTable) JoinDet(det *engine.Table, bundleCol, detCol string) (*BundleTable, error) {
	bIdx, err := bt.Schema.ColIndex(bundleCol)
	if err != nil {
		return nil, err
	}
	if _, isUnc := bt.uncPos(bIdx); isUnc {
		return nil, fmt.Errorf("mcdb: join key %q is uncertain; joins must use deterministic columns", bundleCol)
	}
	dIdx, err := det.ColIndex(detCol)
	if err != nil {
		return nil, err
	}
	// Hash the deterministic side. Keys are binary AppendKey encodings
	// built in a reused buffer; a key string is only interned when a new
	// distinct key enters the table.
	ht := make(map[string][]engine.Row, det.Len())
	var keyBuf []byte
	for _, row := range det.Rows {
		keyBuf = row[dIdx].AppendKey(keyBuf[:0])
		ht[string(keyBuf)] = append(ht[string(keyBuf)], row)
	}
	schema := bt.Schema.Clone()
	for _, c := range det.Schema {
		schema = append(schema, engine.Column{Name: det.Name + "." + c.Name, Type: c.Type})
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	out := &BundleTable{
		Name:          bt.Name + "_" + det.Name,
		Schema:        schema,
		Iters:         bt.Iters,
		UncertainCols: append([]int(nil), bt.UncertainCols...),
	}
	for i, d := range bt.Det {
		keyBuf = d[bIdx].AppendKey(keyBuf[:0])
		for _, match := range ht[string(keyBuf)] {
			nr := make(engine.Row, 0, len(d)+len(match))
			nr = append(nr, d...)
			nr = append(nr, match...)
			out.Det = append(out.Det, nr)
			out.Unc = append(out.Unc, bt.Unc[i])
		}
	}
	return out, nil
}
