package mcdb_test

import (
	"fmt"

	"modeldata/internal/engine"
	"modeldata/internal/mcdb"
	"modeldata/internal/rng"
)

// ExampleDB_InstantiateBundled declares a stochastic table and asks a
// distributional question with tuple-bundle execution — the §2.1 MCDB
// workflow in miniature.
func ExampleDB_InstantiateBundled() {
	base := engine.NewDatabase()
	items := engine.MustNewTable("items", engine.Schema{
		{Name: "sku", Type: engine.TypeInt},
	})
	for i := 0; i < 5; i++ {
		items.MustInsert(engine.Int(int64(i)))
	}
	base.Put(items)

	db := mcdb.New(base)
	err := db.AddSpec(&mcdb.TableSpec{
		Name: "demand",
		Schema: engine.Schema{
			{Name: "sku", Type: engine.TypeInt},
			{Name: "qty", Type: engine.TypeFloat},
		},
		ForEach:       "items",
		VG:            mcdb.DistVG(rng.UniformDist{Lo: 0, Hi: 10}),
		UncertainCols: []int{1},
	})
	if err != nil {
		panic(err)
	}
	bundles, err := db.InstantiateBundled(2000, 1)
	if err != nil {
		panic(err)
	}
	totals, err := bundles["demand"].Estimate("qty", engine.AggSum, nil)
	if err != nil {
		panic(err)
	}
	est, err := mcdb.Summarize(totals)
	if err != nil {
		panic(err)
	}
	// 5 items × mean 5 units ⇒ E[total] = 25.
	fmt.Printf("expected total demand ≈ %.0f\n", est.Mean)

	p, err := mcdb.ThresholdProbability(totals, 35)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(total > 35) is small: %v\n", p < 0.2)
	// Output:
	// expected total demand ≈ 25
	// P(total > 35) is small: true
}
