package mcdb

import (
	"fmt"
	"math"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
)

// This file is the library of VG functions shipped with the MCDB layer,
// covering the examples in §2.1 of the paper: a simple normal
// generator, a backward random walk for imputing missing prior prices,
// a forward price path for option valuation, and a Bayesian customer
// demand generator.

// NormalVG returns a VG function drawing one value from
// Normal(params[0], params[1]) — MCDB's Normal VG function used by the
// SBP_DATA example. The parameter row must carry (mean, std).
func NormalVG() VG {
	return func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
		if len(params) < 2 {
			return nil, fmt.Errorf("%w: Normal VG needs (mean, std), got %d params", ErrBadSpec, len(params))
		}
		mean, std := params[0].AsFloat(), params[1].AsFloat()
		return []engine.Value{engine.Float(r.Normal(mean, std))}, nil
	}
}

// PoissonVG returns a VG function drawing one value from
// Poisson(params[0]).
func PoissonVG() VG {
	return func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
		if len(params) < 1 {
			return nil, fmt.Errorf("%w: Poisson VG needs (lambda)", ErrBadSpec)
		}
		return []engine.Value{engine.Int(int64(r.Poisson(params[0].AsFloat())))}, nil
	}
}

// DistVG adapts any rng.Dist into a single-value VG function with fixed
// parameters.
func DistVG(d rng.Dist) VG {
	return func(_ engine.Row, r *rng.Stream) ([]engine.Value, error) {
		return []engine.Value{engine.Float(d.Sample(r))}, nil
	}
}

// BackwardWalkVG returns a VG function that executes a backward
// geometric random walk from a current price to estimate steps missing
// prior prices (the §2.1 example). Parameters: (currentPrice, drift,
// vol). It emits the estimated price `steps` ticks in the past.
func BackwardWalkVG(steps int) VG {
	return func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
		if len(params) < 3 {
			return nil, fmt.Errorf("%w: BackwardWalk VG needs (price, drift, vol)", ErrBadSpec)
		}
		price := params[0].AsFloat()
		drift := params[1].AsFloat()
		vol := params[2].AsFloat()
		for i := 0; i < steps; i++ {
			// Invert one forward log-step: divide out a sampled return.
			price /= 1 + drift + vol*r.StdNormal()
		}
		return []engine.Value{engine.Float(price)}, nil
	}
}

// OptionPayoffVG returns a VG function that simulates a forward
// geometric price path of `steps` ticks and reports the payoff of a
// European call struck at `strike` — the "value of a stock option one
// week from now" example. Parameters: (currentPrice, drift, vol).
func OptionPayoffVG(steps int, strike float64) VG {
	return func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
		if len(params) < 3 {
			return nil, fmt.Errorf("%w: OptionPayoff VG needs (price, drift, vol)", ErrBadSpec)
		}
		price := params[0].AsFloat()
		drift := params[1].AsFloat()
		vol := params[2].AsFloat()
		for i := 0; i < steps; i++ {
			price *= 1 + drift + vol*r.StdNormal()
		}
		payoff := price - strike
		if payoff < 0 {
			payoff = 0
		}
		return []engine.Value{engine.Float(payoff)}, nil
	}
}

// BayesianDemandVG returns a VG function for the customized customer
// demand example of §2.1: a global parametric demand model (gamma prior
// over a customer's mean demand rate) is updated with the customer's
// own purchase history via Bayes' theorem, and demand at the offered
// price is drawn from the posterior predictive.
//
// Parameters: (priorShape, priorRate, custPurchases, custPeriods,
// price). The demand rate λ has prior Gamma(shape, 1/rate); observing
// `custPurchases` purchases over `custPeriods` periods gives posterior
// Gamma(shape+purchases, 1/(rate+periods)). Demand at price p scales
// the posterior rate by the elasticity factor exp(−elasticity·p).
func BayesianDemandVG(elasticity float64) VG {
	return func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
		if len(params) < 5 {
			return nil, fmt.Errorf("%w: BayesianDemand VG needs 5 params", ErrBadSpec)
		}
		shape := params[0].AsFloat()
		rate := params[1].AsFloat()
		purchases := params[2].AsFloat()
		periods := params[3].AsFloat()
		price := params[4].AsFloat()
		postShape := shape + purchases
		postRate := rate + periods
		lambda := r.Gamma(postShape, 1/postRate)
		demand := r.Poisson(lambda * math.Exp(-elasticity*price))
		return []engine.Value{engine.Int(int64(demand))}, nil
	}
}
