package mcdb

import (
	"context"
	"fmt"
	"sync"

	"modeldata/internal/engine"
	"modeldata/internal/lru"
	"modeldata/internal/obs"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// Metric names reported by the session into the per-run registry
// (parallel.StatsFrom(ctx).Registry()). All counter updates are
// nil-safe, so instrumentation costs nothing when no Stats is attached.
const (
	// MetricRealizeCacheHits counts Session.Exec calls served from the
	// bundle-realization cache.
	MetricRealizeCacheHits = "mcdb.realize_cache_hits"
	// MetricRealizeCacheMisses counts bundle realizations paid for.
	MetricRealizeCacheMisses = "mcdb.realize_cache_misses"
	// MetricRealizeCacheEvictions counts realized bundle sets dropped
	// from the session's bounded LRU to stay within its capacity.
	MetricRealizeCacheEvictions = "mcdb.realize_cache_evictions"
)

// DefaultBundleCacheCap bounds the bundle-realization cache of a
// Session created with NewSession. Each entry holds the full bundle
// tables for one (iterations, seed) pair, so in a long-running process
// an unbounded map would grow with every distinct seed a caller ever
// used — a memory leak. Eight entries keep the common
// repeat-the-same-run case hot while bounding residency.
const DefaultBundleCacheCap = 8

// DefaultPreparedCacheCap bounds the per-session prepared-statement
// cache. Each entry pins a parsed plan plus its join-order cache, and a
// session serving arbitrary SQL text (the query service's tenants do)
// would otherwise grow one entry per distinct statement forever — the
// same leak class the bundle cache already closes. Sixty-four keeps any
// realistic statement working set resident.
const DefaultPreparedCacheCap = 64

// This file unifies the two MCDB execution strategies behind one entry
// point. Historically callers chose between MonteCarloNaive (arbitrary
// query closure, full re-instantiation per iteration) and
// InstantiateBundled + BundleTable.Estimate (plan-once tuple bundles)
// — two divergent call paths with different query representations. A
// Session executes one declarative AggQuery under either strategy, so
// strategy choice becomes a knob rather than a rewrite.

// Strategy selects how a Session executes a query.
type Strategy int

// Execution strategies.
const (
	// StrategyAuto bundles when the target spec declares uncertain
	// columns (the fast path) and falls back to naive otherwise.
	StrategyAuto Strategy = iota
	// StrategyNaive re-instantiates the database per iteration.
	StrategyNaive
	// StrategyBundle executes the plan once over tuple bundles.
	StrategyBundle
)

func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyNaive:
		return "naive"
	case StrategyBundle:
		return "bundle"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// AggQuery is the declarative query form both strategies execute:
//
//	SELECT Fn(Col) FROM Table
//	WHERE WhereDet(deterministic attrs) AND WhereUnc(uncertain attrs)
//
// evaluated once per Monte Carlo iteration, yielding one sample of the
// query-result distribution per iteration. WhereDet must inspect only
// deterministic columns (on the bundle path the uncertain positions of
// its row argument hold zero Values); WhereUnc receives the tuple's
// uncertain values at the current iteration, ordered as the spec's
// UncertainCols. Supported aggregates: COUNT, SUM, AVG.
type AggQuery struct {
	Table    string
	Col      string
	Fn       engine.AggFunc
	WhereDet func(det engine.Row) bool
	WhereUnc UncPredicate
}

// ExecOptions configure one Session.Exec call.
type ExecOptions struct {
	Strategy   Strategy
	Iterations int
	// Workers bounds fan-out; zero uses the context default.
	Workers int
	Seed    uint64
}

// Session executes AggQueries over an MCDB, caching bundle
// realizations so repeated queries against the same (iterations, seed)
// pay the VG sampling cost once. The cache is a bounded LRU (see
// DefaultBundleCacheCap); evictions are counted under
// MetricRealizeCacheEvictions. A Session is safe for concurrent use.
type Session struct {
	db *DB

	bundles *lru.Cache[bundleKey, map[string]*BundleTable]

	prepared *lru.Cache[string, *engine.Prepared]

	// explainMu guards the lazily built seed-0 instantiation that
	// EXPLAIN plans against; building it once per session keeps
	// repeated EXPLAINs from paying a full instantiation each call.
	explainMu   sync.Mutex
	explainInst *engine.Database // guarded by explainMu
}

type bundleKey struct {
	iters int
	seed  uint64
}

// NewSession opens a query session over the database with the default
// bundle-cache capacity.
func (db *DB) NewSession() *Session {
	return db.NewSessionCache(DefaultBundleCacheCap)
}

// NewSessionCache opens a query session whose bundle-realization cache
// holds at most capacity (iterations, seed) entries; capacity < 1 is
// clamped to 1. Long-running services size this to their per-tenant
// memory budget.
func (db *DB) NewSessionCache(capacity int) *Session {
	return &Session{
		db:       db,
		bundles:  lru.New[bundleKey, map[string]*BundleTable](capacity),
		prepared: lru.New[string, *engine.Prepared](DefaultPreparedCacheCap),
	}
}

// Exec runs q for opts.Iterations Monte Carlo iterations under the
// selected strategy and returns the per-iteration samples. Results for
// a given (strategy, iterations, seed) are bit-identical at any worker
// count; ctx cancellation aborts mid-run with ctx.Err().
//
// Aggregate semantics over an empty per-iteration selection (every
// tuple filtered out at that iteration): COUNT and SUM are 0, and AVG
// is defined as 0 as well — not NaN — so samples stay finite and the
// naive and bundle strategies agree bit-for-bit. See
// BundleTable.Estimate for the bundle-side statement of the same
// convention.
func (s *Session) Exec(ctx context.Context, q AggQuery, opts ExecOptions) ([]float64, error) {
	return s.ExecRange(ctx, q, opts, 0, opts.Iterations)
}

// ExecRange runs only the iteration window [lo, hi) of the
// opts.Iterations-iteration run Exec would perform, returning hi-lo
// samples. Windows are the sharding primitive: backends that partition
// [0, Iterations) into disjoint contiguous windows and concatenate
// their outputs in index order reproduce the single-node Exec
// bit-identically, because iteration i draws from substream i of the
// same seed regardless of which shard runs it. On the bundle strategy
// the realization covers all Iterations (bundles are per-tuple, not
// per-iteration) and the window selects from the estimated vector;
// the session cache amortizes that realization across a shard's
// queries.
func (s *Session) ExecRange(ctx context.Context, q AggQuery, opts ExecOptions, lo, hi int) ([]float64, error) {
	if opts.Iterations <= 0 {
		return nil, fmt.Errorf("mcdb: iters=%d", opts.Iterations)
	}
	if lo < 0 || hi > opts.Iterations || lo > hi {
		return nil, fmt.Errorf("mcdb: window [%d, %d) outside [0, %d)", lo, hi, opts.Iterations)
	}
	spec, err := s.db.Spec(q.Table)
	if err != nil {
		return nil, err
	}
	switch q.Fn {
	case engine.AggCount, engine.AggSum, engine.AggAvg:
	default:
		return nil, fmt.Errorf("mcdb: aggregate %v not supported by Exec", q.Fn)
	}
	strategy := opts.Strategy
	if strategy == StrategyAuto {
		if len(spec.UncertainCols) > 0 {
			strategy = StrategyBundle
		} else {
			strategy = StrategyNaive
		}
	}
	ctx, span := obs.Start(ctx, "mcdb.exec")
	span.SetAttr("table", q.Table)
	span.SetAttr("strategy", strategy.String())
	span.SetInt("iterations", int64(opts.Iterations))
	span.SetInt("lo", int64(lo))
	span.SetInt("hi", int64(hi))
	defer span.End()
	switch strategy {
	case StrategyBundle:
		return s.execBundle(ctx, spec, q, opts, lo, hi)
	case StrategyNaive:
		return s.execNaive(ctx, spec, q, opts, lo, hi)
	default:
		return nil, fmt.Errorf("mcdb: unknown strategy %v", opts.Strategy)
	}
}

// bundlesFor returns (realizing on demand) the cached bundle tables for
// one (iterations, seed) configuration.
func (s *Session) bundlesFor(ctx context.Context, opts ExecOptions) (map[string]*BundleTable, error) {
	key := bundleKey{iters: opts.Iterations, seed: opts.Seed}
	reg := parallel.StatsFrom(ctx).Registry()
	if cached, ok := s.bundles.Get(key); ok {
		reg.Counter(MetricRealizeCacheHits).Add(1)
		return cached, nil
	}
	reg.Counter(MetricRealizeCacheMisses).Add(1)
	bundles, err := s.db.InstantiateBundledCtx(ctx, opts.Iterations, opts.Seed, opts.Workers)
	if err != nil {
		return nil, err
	}
	// A racing realization of the same key produced identical bundles
	// (same seed, deterministic runtime), so either copy may win.
	actual, _, evicted := s.bundles.GetOrAdd(key, bundles)
	if evicted > 0 {
		reg.Counter(MetricRealizeCacheEvictions).Add(int64(evicted))
	}
	return actual, nil
}

func (s *Session) execBundle(ctx context.Context, spec *TableSpec, q AggQuery, opts ExecOptions, lo, hi int) ([]float64, error) {
	bundles, err := s.bundlesFor(ctx, opts)
	if err != nil {
		return nil, err
	}
	bt, ok := bundles[q.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSpec, q.Table)
	}
	if q.WhereDet != nil {
		bt = bt.FilterDet(q.WhereDet)
	}
	full, err := bt.Estimate(q.Col, q.Fn, q.WhereUnc)
	if err != nil {
		return nil, err
	}
	if lo == 0 && hi == len(full) {
		return full, nil
	}
	return append([]float64(nil), full[lo:hi]...), nil
}

func (s *Session) execNaive(ctx context.Context, spec *TableSpec, q AggQuery, opts ExecOptions, lo, hi int) ([]float64, error) {
	colIdx, err := spec.Schema.ColIndex(q.Col)
	if err != nil {
		return nil, err
	}
	out := make([]float64, hi-lo)
	err = parallel.ForStreamsRange(ctx, rng.New(opts.Seed), opts.Iterations, lo, hi, parallel.Options{Workers: opts.Workers},
		func(i int, r *rng.Stream) error {
			inst, err := s.db.Instantiate(r)
			if err != nil {
				return err
			}
			tbl, err := inst.Get(q.Table)
			if err != nil {
				return err
			}
			var sum float64
			var count int
			uncBuf := make([]float64, len(spec.UncertainCols))
			for _, row := range tbl.Rows {
				if q.WhereDet != nil && !q.WhereDet(row) {
					continue
				}
				if q.WhereUnc != nil {
					for k, c := range spec.UncertainCols {
						uncBuf[k] = row[c].AsFloat()
					}
					if !q.WhereUnc(row, uncBuf) {
						continue
					}
				}
				sum += row[colIdx].AsFloat()
				count++
			}
			switch q.Fn {
			case engine.AggCount:
				out[i-lo] = float64(count)
			case engine.AggSum:
				out[i-lo] = sum
			case engine.AggAvg:
				// Empty selection: AVG is 0 by convention (matches the
				// bundle path in BundleTable.Estimate; see Exec).
				if count > 0 {
					out[i-lo] = sum / float64(count)
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- SQL over Monte Carlo instantiations ---
//
// ExecSQL runs an arbitrary scalar SELECT (joins, WHERE, GROUP BY —
// anything the engine's SQL dialect supports) once per Monte Carlo
// instantiation, where AggQuery is limited to one table and one
// aggregate. The statement is prepared once per Session; the engine's
// cost-based planner picks a join order on the first iteration and the
// Prepared choice cache replays it on the rest (every instantiation of
// a spec has the same row counts, so the cached order always matches).

// Prepared parses sql once and caches it on the session's bounded LRU.
// Repeated calls with the same text return the same *engine.Prepared,
// sharing its join-order cache; statements evicted past
// DefaultPreparedCacheCap are simply re-prepared on next use.
func (s *Session) Prepared(sql string) (*engine.Prepared, error) {
	if p, ok := s.prepared.Get(sql); ok {
		return p, nil
	}
	p, err := engine.Prepare(sql)
	if err != nil {
		return nil, err
	}
	// Two goroutines racing to prepare the same text agree on one
	// winner, so each statement keeps a single join-order cache.
	actual, _, _ := s.prepared.GetOrAdd(sql, p)
	return actual, nil
}

// ExecSQL runs a scalar SELECT for opts.Iterations Monte Carlo
// iterations — each against a fresh instantiation of the database —
// and returns the per-iteration samples. Like Exec, results for a
// given (iterations, seed) are bit-identical at any worker count.
// opts.Strategy is ignored: SQL always runs on full instantiations.
func (s *Session) ExecSQL(ctx context.Context, sql string, opts ExecOptions) ([]float64, error) {
	return s.ExecSQLRange(ctx, sql, opts, 0, opts.Iterations)
}

// ExecSQLRange runs only the iteration window [lo, hi) of the
// opts.Iterations-iteration run ExecSQL would perform, returning hi-lo
// samples — the SQL analogue of ExecRange, with the same
// shard-and-concatenate bit-identity guarantee.
func (s *Session) ExecSQLRange(ctx context.Context, sql string, opts ExecOptions, lo, hi int) ([]float64, error) {
	if opts.Iterations <= 0 {
		return nil, fmt.Errorf("mcdb: iters=%d", opts.Iterations)
	}
	if lo < 0 || hi > opts.Iterations || lo > hi {
		return nil, fmt.Errorf("mcdb: window [%d, %d) outside [0, %d)", lo, hi, opts.Iterations)
	}
	p, err := s.Prepared(sql)
	if err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "mcdb.sql")
	span.SetAttr("sql", sql)
	span.SetInt("iterations", int64(opts.Iterations))
	span.SetInt("lo", int64(lo))
	span.SetInt("hi", int64(hi))
	defer span.End()
	out := make([]float64, hi-lo)
	err = parallel.ForStreamsRange(ctx, rng.New(opts.Seed), opts.Iterations, lo, hi, parallel.Options{Workers: opts.Workers},
		func(i int, r *rng.Stream) error {
			inst, err := s.db.Instantiate(r)
			if err != nil {
				return err
			}
			v, err := p.Scalar(inst)
			if err != nil {
				return err
			}
			out[i-lo] = v
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExplainSQL renders the plan ExecSQL would run, in both text and JSON
// form. Plans depend on table statistics, so the statement is
// explained against a deterministic seed-0 instantiation — the same
// row counts (and thus the same plan) every instantiation gets. The
// instantiation is built at most once per session (under ctx, so a
// server handler can abort a slow build) and reused by every later
// EXPLAIN, whatever its statement.
func (s *Session) ExplainSQL(ctx context.Context, sql string) (string, []byte, error) {
	p, err := s.Prepared(sql)
	if err != nil {
		return "", nil, err
	}
	inst, err := s.explainInstance(ctx)
	if err != nil {
		return "", nil, err
	}
	tree, err := p.Explain(inst)
	if err != nil {
		return "", nil, err
	}
	data, err := tree.JSON()
	if err != nil {
		return "", nil, err
	}
	return tree.Text(), data, nil
}

// explainInstance returns the session's cached seed-0 instantiation,
// building it on first use. The build is serialized so concurrent
// first EXPLAINs pay for one instantiation, not one each.
func (s *Session) explainInstance(ctx context.Context) (*engine.Database, error) {
	s.explainMu.Lock()
	defer s.explainMu.Unlock()
	if s.explainInst != nil {
		return s.explainInst, nil
	}
	inst, err := s.db.InstantiateCtx(ctx, rng.New(0))
	if err != nil {
		return nil, err
	}
	s.explainInst = inst
	return inst, nil
}
