package mcdb

import (
	"context"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// sbpFixture builds the §2.1 blood-pressure example: a PATIENTS table,
// a one-row SBP_PARAM table, and the SBP_DATA stochastic table spec.
func sbpFixture(t *testing.T, nPatients int) *DB {
	t.Helper()
	base := engine.NewDatabase()
	patients := engine.MustNewTable("patients", engine.Schema{
		{Name: "pid", Type: engine.TypeInt},
		{Name: "gender", Type: engine.TypeString},
	})
	for i := 0; i < nPatients; i++ {
		g := "F"
		if i%2 == 0 {
			g = "M"
		}
		patients.MustInsert(engine.Int(int64(i)), engine.Str(g))
	}
	base.Put(patients)

	param := engine.MustNewTable("sbp_param", engine.Schema{
		{Name: "mean", Type: engine.TypeFloat},
		{Name: "std", Type: engine.TypeFloat},
	})
	param.MustInsert(engine.Float(120), engine.Float(15))
	base.Put(param)

	db := New(base)
	spec := &TableSpec{
		Name: "sbp_data",
		Schema: engine.Schema{
			{Name: "pid", Type: engine.TypeInt},
			{Name: "gender", Type: engine.TypeString},
			{Name: "sbp", Type: engine.TypeFloat},
		},
		ForEach: "patients",
		Params: func(db *engine.Database, outer engine.Row) (engine.Row, error) {
			p, err := db.Get("sbp_param")
			if err != nil {
				return nil, err
			}
			return p.Rows[0], nil
		},
		VG:            NormalVG(),
		UncertainCols: []int{2},
	}
	if err := db.AddSpec(spec); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInstantiateSBP(t *testing.T) {
	db := sbpFixture(t, 10)
	inst, err := db.Instantiate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := inst.Get("sbp_data")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 10 {
		t.Fatalf("realized rows = %d", tbl.Len())
	}
	sbps, err := tbl.FloatColumn("sbp")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sbps {
		if v < 30 || v > 220 {
			t.Fatalf("implausible SBP draw %g", v)
		}
	}
	// The deterministic base tables must be present in the instance.
	if _, err := inst.Get("patients"); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloNaiveEstimatesMean(t *testing.T) {
	db := sbpFixture(t, 20)
	samples, err := db.MonteCarloNaive(400, 7, func(inst *engine.Database) (float64, error) {
		tbl, err := inst.Get("sbp_data")
		if err != nil {
			return 0, err
		}
		return engine.From(tbl).
			GroupBy(nil, engine.Aggregate{Fn: engine.AggAvg, Col: "sbp", As: "m"}).
			ScalarFloat()
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-120) > 2 {
		t.Fatalf("estimated mean SBP = %g, want ≈ 120 (%v)", est.Mean, est)
	}
}

func TestBundledMatchesNaiveDistribution(t *testing.T) {
	db := sbpFixture(t, 20)
	const iters = 400
	bundles, err := db.InstantiateBundled(iters, 9)
	if err != nil {
		t.Fatal(err)
	}
	bt := bundles["sbp_data"]
	if bt.Len() != 20 || bt.Iters != iters {
		t.Fatalf("bundle shape: %d tuples × %d iters", bt.Len(), bt.Iters)
	}
	bundledMeans, err := bt.Estimate("sbp", engine.AggAvg, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := db.MonteCarloNaive(iters, 11, func(inst *engine.Database) (float64, error) {
		tbl, _ := inst.Get("sbp_data")
		return engine.From(tbl).
			GroupBy(nil, engine.Aggregate{Fn: engine.AggAvg, Col: "sbp", As: "m"}).
			ScalarFloat()
	})
	if err != nil {
		t.Fatal(err)
	}
	mb, mn := stats.Mean(bundledMeans), stats.Mean(naive)
	if math.Abs(mb-mn) > 2 {
		t.Fatalf("bundled mean %g vs naive mean %g", mb, mn)
	}
	vb, vn := stats.Variance(bundledMeans), stats.Variance(naive)
	if vb <= 0 || vn <= 0 || vb/vn > 3 || vn/vb > 3 {
		t.Fatalf("variance mismatch: bundled %g vs naive %g", vb, vn)
	}
}

func TestBundleDeterministicForSeed(t *testing.T) {
	db := sbpFixture(t, 5)
	b1, err := db.InstantiateBundled(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := db.InstantiateBundled(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	u1, u2 := b1["sbp_data"].Unc, b2["sbp_data"].Unc
	for i := range u1 {
		for it := 0; it < 10; it++ {
			if u1[i][0][it] != u2[i][0][it] {
				t.Fatal("bundled instantiation not deterministic")
			}
		}
	}
}

func TestFilterDetAndUncertainPredicate(t *testing.T) {
	db := sbpFixture(t, 30)
	bundles, err := db.InstantiateBundled(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	bt := bundles["sbp_data"]
	males := bt.FilterDet(func(det engine.Row) bool { return det[1].AsString() == "M" })
	if males.Len() != 15 {
		t.Fatalf("male tuples = %d", males.Len())
	}
	// Count hypertensive males (SBP > 140) per iteration.
	counts, err := males.Estimate("sbp", engine.AggCount, func(det engine.Row, unc []float64) bool {
		return unc[0] > 140
	})
	if err != nil {
		t.Fatal(err)
	}
	// P(SBP > 140) with N(120, 15) ≈ 0.0912; expected count ≈ 1.37.
	want := 15 * (1 - rng.NormalCDF((140.0-120)/15))
	if got := stats.Mean(counts); math.Abs(got-want) > 0.5 {
		t.Fatalf("mean hypertensive count = %g, want ≈ %g", got, want)
	}
}

func TestBundleRealize(t *testing.T) {
	db := sbpFixture(t, 4)
	bundles, err := db.InstantiateBundled(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	bt := bundles["sbp_data"]
	tbl, err := bt.Realize(3)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 4 {
		t.Fatalf("realized rows = %d", tbl.Len())
	}
	v := tbl.Rows[2][2].AsFloat()
	if v != bt.Unc[2][0][3] {
		t.Fatalf("realized value %g != bundle value %g", v, bt.Unc[2][0][3])
	}
	if _, err := bt.Realize(99); err == nil {
		t.Fatal("out-of-range iteration accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	db := New(nil)
	if err := db.AddSpec(&TableSpec{}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("got %v", err)
	}
	err := db.AddSpec(&TableSpec{
		Name:          "x",
		Schema:        engine.Schema{{Name: "a", Type: engine.TypeFloat}},
		VG:            NormalVG(),
		UncertainCols: []int{5},
	})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("got %v", err)
	}
	if _, err := db.Spec("missing"); !errors.Is(err, ErrNoSpec) {
		t.Fatalf("got %v", err)
	}
}

func TestNoForEachSpecRunsOnce(t *testing.T) {
	db := New(nil)
	err := db.AddSpec(&TableSpec{
		Name:          "single",
		Schema:        engine.Schema{{Name: "v", Type: engine.TypeFloat}},
		VG:            DistVG(rng.UniformDist{Lo: 0, Hi: 1}),
		UncertainCols: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := db.Instantiate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := inst.Get("single")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("rows = %d, want 1", tbl.Len())
	}
}

func TestMonteCarloNaiveBadIters(t *testing.T) {
	db := sbpFixture(t, 2)
	if _, err := db.MonteCarloNaive(0, 1, nil); err == nil {
		t.Fatal("iters=0 accepted")
	}
	if _, err := db.InstantiateBundled(0, 1); err == nil {
		t.Fatal("bundled iters=0 accepted")
	}
}

func TestBundleRequiresUncertainCols(t *testing.T) {
	db := New(nil)
	if err := db.AddSpec(&TableSpec{
		Name:   "nouc",
		Schema: engine.Schema{{Name: "v", Type: engine.TypeFloat}},
		VG:     DistVG(rng.UniformDist{Lo: 0, Hi: 1}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InstantiateBundled(5, 1); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("got %v", err)
	}
}

func TestVGLibrary(t *testing.T) {
	r := rng.New(5)
	t.Run("BackwardWalk", func(t *testing.T) {
		vg := BackwardWalkVG(5)
		params := engine.Row{engine.Float(100), engine.Float(0.001), engine.Float(0.01)}
		sum := 0.0
		for i := 0; i < 2000; i++ {
			vals, err := vg(params, r)
			if err != nil {
				t.Fatal(err)
			}
			sum += vals[0].AsFloat()
		}
		mean := sum / 2000
		// Five backward steps of ≈0.1% drift: slightly below 100.
		if mean < 90 || mean > 105 {
			t.Fatalf("backward walk mean = %g", mean)
		}
	})
	t.Run("OptionPayoff", func(t *testing.T) {
		vg := OptionPayoffVG(5, 100)
		params := engine.Row{engine.Float(100), engine.Float(0), engine.Float(0.02)}
		neg := 0
		pos := 0
		for i := 0; i < 500; i++ {
			vals, err := vg(params, r)
			if err != nil {
				t.Fatal(err)
			}
			p := vals[0].AsFloat()
			if p < 0 {
				neg++
			}
			if p > 0 {
				pos++
			}
		}
		if neg > 0 {
			t.Fatalf("%d negative payoffs", neg)
		}
		if pos == 0 {
			t.Fatal("no positive payoffs — vol did nothing")
		}
	})
	t.Run("BayesianDemand", func(t *testing.T) {
		vg := BayesianDemandVG(0) // no price effect: posterior mean only
		// Prior Gamma(2, rate 1); data: 18 purchases over 8 periods →
		// posterior Gamma(20, rate 9), mean λ = 20/9 ≈ 2.22.
		params := engine.Row{
			engine.Float(2), engine.Float(1),
			engine.Float(18), engine.Float(8), engine.Float(0),
		}
		sum := 0.0
		const n = 5000
		for i := 0; i < n; i++ {
			vals, err := vg(params, r)
			if err != nil {
				t.Fatal(err)
			}
			sum += vals[0].AsFloat()
		}
		mean := sum / n
		if math.Abs(mean-20.0/9) > 0.15 {
			t.Fatalf("posterior predictive mean = %g, want ≈ %g", mean, 20.0/9)
		}
	})
	t.Run("ParamErrors", func(t *testing.T) {
		for _, vg := range []VG{NormalVG(), PoissonVG(), BackwardWalkVG(1), OptionPayoffVG(1, 0), BayesianDemandVG(0)} {
			if _, err := vg(nil, r); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("missing params accepted: %v", err)
			}
		}
	})
}

func TestSummarizeAndRisk(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatal("empty Summarize")
	}
	r := rng.New(8)
	samples := rng.SampleN(rng.NormalDist{Mu: 50, Sigma: 5}, r, 4000)
	est, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-50) > 0.5 || math.Abs(est.Quantiles[0.5]-50) > 0.5 {
		t.Fatalf("estimate %v", est)
	}
	if est.String() == "" {
		t.Fatal("empty String")
	}
	q, err := RiskQuantile(samples, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 + 5*rng.NormalQuantile(0.999)
	if math.Abs(q-want) > 2.5 {
		t.Fatalf("risk quantile = %g, want ≈ %g", q, want)
	}
	if _, err := RiskQuantile(nil, 0.5); !errors.Is(err, ErrNoSamples) {
		t.Fatal("empty RiskQuantile")
	}
}

func TestThresholdQuery(t *testing.T) {
	// "Which regions decline more than 2% with ≥ 50% probability?"
	perGroup := map[string][]float64{
		"east":  {0.03, 0.01, 0.04, 0.05}, // 3/4 above 0.02
		"west":  {0.01, 0.00, 0.03, 0.01}, // 1/4 above
		"south": {0.025, 0.021, 0.01, 0.03},
	}
	groups, err := ThresholdQuery(perGroup, 0.02, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(groups)
	if len(groups) != 2 || groups[0] != "east" || groups[1] != "south" {
		t.Fatalf("groups = %v", groups)
	}
	if _, err := ThresholdQuery(map[string][]float64{"x": nil}, 0, 0); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("got %v", err)
	}
	p, err := ThresholdProbability([]float64{1, 2, 3, 4}, 2.5)
	if err != nil || p != 0.5 {
		t.Fatalf("p = %g err = %v", p, err)
	}
}

func TestBundleJoinDet(t *testing.T) {
	// The §2.1 pricing shape: random demand per customer joined with a
	// deterministic region table, then "revenue from East Coast
	// customers" per iteration.
	db := New(nil)
	base := db.Base
	customers := engine.MustNewTable("customers", engine.Schema{
		{Name: "cid", Type: engine.TypeInt},
	})
	regions := engine.MustNewTable("regions", engine.Schema{
		{Name: "cid", Type: engine.TypeInt},
		{Name: "region", Type: engine.TypeString},
	})
	for i := 0; i < 30; i++ {
		customers.MustInsert(engine.Int(int64(i)))
		reg := "west"
		if i%3 == 0 {
			reg = "east"
		}
		regions.MustInsert(engine.Int(int64(i)), engine.Str(reg))
	}
	base.Put(customers)
	base.Put(regions)
	if err := db.AddSpec(&TableSpec{
		Name: "demand",
		Schema: engine.Schema{
			{Name: "cid", Type: engine.TypeInt},
			{Name: "qty", Type: engine.TypeFloat},
		},
		ForEach:       "customers",
		VG:            DistVG(rng.UniformDist{Lo: 0, Hi: 10}),
		UncertainCols: []int{1},
	}); err != nil {
		t.Fatal(err)
	}
	bundles, err := db.InstantiateBundled(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := bundles["demand"].JoinDet(regions, "cid", "cid")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 30 {
		t.Fatalf("joined tuples = %d", joined.Len())
	}
	if _, err := joined.Schema.ColIndex("regions.region"); err != nil {
		t.Fatal("region column missing after join")
	}
	regIdx, _ := joined.Schema.ColIndex("regions.region")
	east := joined.FilterDet(func(det engine.Row) bool {
		return det[regIdx].AsString() == "east"
	})
	if east.Len() != 10 {
		t.Fatalf("east tuples = %d", east.Len())
	}
	sums, err := east.Estimate("qty", engine.AggSum, nil)
	if err != nil {
		t.Fatal(err)
	}
	// E[sum] = 10 customers × mean 5 = 50.
	if m := stats.Mean(sums); math.Abs(m-50) > 3 {
		t.Fatalf("east demand mean = %g, want ≈ 50", m)
	}
}

func TestBundleJoinDetErrors(t *testing.T) {
	db := sbpFixture(t, 4)
	bundles, err := db.InstantiateBundled(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	bt := bundles["sbp_data"]
	other := engine.MustNewTable("other", engine.Schema{{Name: "pid", Type: engine.TypeInt}})
	if _, err := bt.JoinDet(other, "nope", "pid"); err == nil {
		t.Fatal("missing bundle column accepted")
	}
	if _, err := bt.JoinDet(other, "pid", "nope"); err == nil {
		t.Fatal("missing det column accepted")
	}
	// Joining on the uncertain column is rejected.
	if _, err := bt.JoinDet(other, "sbp", "pid"); err == nil {
		t.Fatal("uncertain join key accepted")
	}
}

func TestBundleJoinDetDangling(t *testing.T) {
	db := sbpFixture(t, 4)
	bundles, err := db.InstantiateBundled(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	bt := bundles["sbp_data"]
	lookup := engine.MustNewTable("lookup", engine.Schema{
		{Name: "pid", Type: engine.TypeInt},
		{Name: "tag", Type: engine.TypeString},
	})
	lookup.MustInsert(engine.Int(0), engine.Str("a"))
	lookup.MustInsert(engine.Int(0), engine.Str("b")) // fan-out
	joined, err := bt.JoinDet(lookup, "pid", "pid")
	if err != nil {
		t.Fatal(err)
	}
	// Patient 0 matches twice; patients 1–3 dangle.
	if joined.Len() != 2 {
		t.Fatalf("joined tuples = %d, want 2", joined.Len())
	}
}

// TestSessionExecSQL checks the prepared-SQL path: an arbitrary join
// SELECT runs once per instantiation, bit-identically at any worker
// count, and agrees with the equivalent declarative AggQuery.
func TestSessionExecSQL(t *testing.T) {
	db := sbpFixture(t, 12)
	s := db.NewSession()
	const sql = "SELECT AVG(sbp_data.sbp) " +
		"FROM sbp_data JOIN patients ON sbp_data.pid = patients.pid " +
		"WHERE patients.gender = 'M'"
	opts := ExecOptions{Iterations: 20, Seed: 5}
	var ref []float64
	for _, w := range []int{1, 2, 8} {
		opts.Workers = w
		got, err := s.ExecSQL(context.Background(), sql, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d iter %d: %v vs %v", w, i, got[i], ref[i])
			}
		}
	}

	// The declarative path answers the same question; the samples must
	// match exactly (same seed → same instantiations → same rows).
	agg, err := s.Exec(context.Background(), AggQuery{
		Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg,
		WhereDet: func(r engine.Row) bool { return r[1].AsString() == "M" },
	}, ExecOptions{Strategy: StrategyNaive, Iterations: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if agg[i] != ref[i] {
			t.Fatalf("iter %d: SQL %v vs AggQuery %v", i, ref[i], agg[i])
		}
	}
}

// TestSessionExplainSQL checks plan rendering through the session.
func TestSessionExplainSQL(t *testing.T) {
	db := sbpFixture(t, 12)
	s := db.NewSession()
	const sql = "SELECT COUNT(sbp_data.pid) " +
		"FROM sbp_data JOIN patients ON sbp_data.pid = patients.pid " +
		"WHERE patients.gender = 'F'"
	text, data, err := s.ExplainSQL(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"join sbp_data.pid = patients.pid", "scan sbp_data rows=12", "filter gender = 'F'"} {
		if !strings.Contains(text, want) {
			t.Fatalf("ExplainSQL missing %q:\n%s", want, text)
		}
	}
	if len(data) == 0 || data[0] != '{' {
		t.Fatalf("ExplainSQL JSON = %q", data)
	}

	// Prepared is cached per statement text.
	p1, err := s.Prepared(sql)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Prepared(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("Prepared did not cache the statement")
	}
}
