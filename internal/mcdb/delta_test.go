package mcdb

import (
	"context"
	"math"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// deltaWorld describes one hypothetical change a test applies both ways:
// as a Delta against the baseline session and as a from-scratch spec in
// a second database. ExecDelta must match the second bit-for-bit.
type deltaWorld struct {
	kind      int // 0 VG, 1 Params, 2 MapUnc, 3 other-table
	targetGrp int64
}

const (
	deltaKindVG = iota
	deltaKindParams
	deltaKindMapUnc
	deltaKindOther
)

// buildDeltaDB constructs the items/obs fixture: a deterministic items
// table (id, grp, base) and a stochastic obs table (id, grp, val) whose
// val draws N(base, 1+grp). When changed is true the spec embeds the
// world's modification, producing the database ExecDelta must emulate.
// A second stochastic table obs2 exists for the other-table case.
func buildDeltaDB(t *testing.T, nItems, nGrps int, w deltaWorld, changed bool) *DB {
	t.Helper()
	base := engine.NewDatabase()
	items := engine.MustNewTable("items", engine.Schema{
		{Name: "id", Type: engine.TypeInt},
		{Name: "grp", Type: engine.TypeInt},
		{Name: "base", Type: engine.TypeFloat},
	})
	for i := 0; i < nItems; i++ {
		items.MustInsert(engine.Int(int64(i)), engine.Int(int64(i%nGrps)), engine.Float(10+float64(i%7)))
	}
	base.Put(items)
	db := New(base)

	baseVG := func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
		v := params[2].AsFloat() + r.Normal(0, 1+float64(params[1].AsInt()))
		return []engine.Value{engine.Float(v)}, nil
	}
	obsVG := baseVG
	var obsParams func(db *engine.Database, outer engine.Row) (engine.Row, error)
	if changed {
		switch w.kind {
		case deltaKindVG:
			obsVG = func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
				if params[1].AsInt() != w.targetGrp {
					return baseVG(params, r)
				}
				v := params[2].AsFloat()*1.3 + r.Normal(0, 2)
				return []engine.Value{engine.Float(v)}, nil
			}
		case deltaKindParams:
			obsParams = deltaShiftParams(w.targetGrp)
		case deltaKindMapUnc:
			obsVG = func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
				out, err := baseVG(params, r)
				if err == nil && params[1].AsInt() == w.targetGrp {
					out[0] = engine.Float(math.Min(out[0].AsFloat(), deltaCapFor(params)))
				}
				return out, err
			}
		}
	}
	spec := &TableSpec{
		Name: "obs",
		Schema: engine.Schema{
			{Name: "id", Type: engine.TypeInt},
			{Name: "grp", Type: engine.TypeInt},
			{Name: "base", Type: engine.TypeFloat},
			{Name: "val", Type: engine.TypeFloat},
		},
		ForEach: "items",
		Params:  obsParams,
		VG:      obsVG,
		OutputRow: func(outer engine.Row, vgOut []engine.Value) engine.Row {
			// base rides along deterministically so MapUnc deltas can
			// read it from the det row (uncertain positions are zero).
			return engine.Row{outer[0], outer[1], outer[2], vgOut[0]}
		},
		UncertainCols: []int{3},
	}
	if err := db.AddSpec(spec); err != nil {
		t.Fatal(err)
	}

	obs2VG := func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
		return []engine.Value{engine.Float(100 + r.Normal(0, 3))}, nil
	}
	if changed && w.kind == deltaKindOther {
		obs2VG = func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
			return []engine.Value{engine.Float(200 + r.Normal(0, 9))}, nil
		}
	}
	spec2 := &TableSpec{
		Name: "obs2",
		Schema: engine.Schema{
			{Name: "id", Type: engine.TypeInt},
			{Name: "load", Type: engine.TypeFloat},
		},
		ForEach: "items",
		VG:      obs2VG,
		OutputRow: func(outer engine.Row, vgOut []engine.Value) engine.Row {
			return engine.Row{outer[0], vgOut[0]}
		},
		UncertainCols: []int{1},
	}
	if err := db.AddSpec(spec2); err != nil {
		t.Fatal(err)
	}
	return db
}

// deltaShiftParams is the Params-change hypothesis: the target group's
// base parameter shifts by +5. Off-target rows pass through unchanged,
// so the delta's affected set (Where grp == target) covers exactly the
// rows whose realization can differ.
func deltaShiftParams(targetGrp int64) func(db *engine.Database, outer engine.Row) (engine.Row, error) {
	return func(db *engine.Database, outer engine.Row) (engine.Row, error) {
		if outer[1].AsInt() != targetGrp {
			return outer, nil
		}
		return engine.Row{outer[0], outer[1], engine.Float(outer[2].AsFloat() + 5)}, nil
	}
}

// deltaCapFor is the MapUnc-change hypothesis: cap the realized value
// at base + 1 for the target group.
func deltaCapFor(det engine.Row) float64 { return det[2].AsFloat() + 1 }

// deltaFor renders the world as the Delta ExecDelta receives.
func deltaFor(w deltaWorld) Delta {
	whereGrp := func(det engine.Row) bool { return det[1].AsInt() == w.targetGrp }
	switch w.kind {
	case deltaKindVG:
		return Delta{Table: "obs", Where: whereGrp, VG: func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
			v := params[2].AsFloat()*1.3 + r.Normal(0, 2)
			return []engine.Value{engine.Float(v)}, nil
		}}
	case deltaKindParams:
		return Delta{Table: "obs", Where: whereGrp, Params: deltaShiftParams(w.targetGrp)}
	case deltaKindMapUnc:
		return Delta{Table: "obs", Where: whereGrp, MapUnc: func(det engine.Row, unc []float64) {
			unc[0] = math.Min(unc[0], deltaCapFor(det))
		}}
	default:
		return Delta{Table: "obs2", VG: func(params engine.Row, r *rng.Stream) ([]engine.Value, error) {
			return []engine.Value{engine.Float(200 + r.Normal(0, 9))}, nil
		}}
	}
}

func requireSameSamples(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d samples, want %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: iter %d: got %v, want %v (bit-identity violated)", name, i, got[i], want[i])
		}
	}
}

// TestExecDeltaRandomizedEquivalence is the delta-equivalence suite: 40
// generated pipelines, each mutating one VG function, parameter query,
// realized-value transform, or unrelated table, executed as ExecDelta
// against the baseline session and as a fresh full Exec of the changed
// database. The two must agree bit-for-bit at every worker count, and
// disjoint ExecDeltaRange windows must concatenate to the full run.
func TestExecDeltaRandomizedEquivalence(t *testing.T) {
	gen := rng.New(0xDE17A)
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		nItems := 5 + gen.Intn(28)
		nGrps := 2 + gen.Intn(3)
		iters := 8 + gen.Intn(49)
		seed := gen.Uint64()
		w := deltaWorld{kind: gen.Intn(4), targetGrp: int64(gen.Intn(nGrps))}

		q := AggQuery{Table: "obs", Col: "val"}
		switch gen.Intn(3) {
		case 0:
			q.Fn = engine.AggCount
		case 1:
			q.Fn = engine.AggSum
		default:
			q.Fn = engine.AggAvg
		}
		switch gen.Intn(3) {
		case 1:
			// Sometimes the filtered group is the changed one, sometimes
			// not — the latter exercises full-iteration reuse.
			filterGrp := int64(gen.Intn(nGrps))
			q.WhereDet = func(det engine.Row) bool { return det[1].AsInt() == filterGrp }
		case 2:
			cut := 8 + gen.Float64()*8
			q.WhereUnc = func(det engine.Row, unc []float64) bool { return unc[0] > cut }
		}

		db1 := buildDeltaDB(t, nItems, nGrps, w, false)
		db2 := buildDeltaDB(t, nItems, nGrps, w, true)
		s1, s2 := db1.NewSession(), db2.NewSession()
		d := deltaFor(w)

		want, err := s2.Exec(ctx, q, ExecOptions{Iterations: iters, Seed: seed})
		if err != nil {
			t.Fatalf("trial %d: full exec: %v", trial, err)
		}
		for _, workers := range []int{1, 2, 8} {
			opts := ExecOptions{Iterations: iters, Seed: seed, Workers: workers}
			got, err := s1.ExecDelta(ctx, q, opts, d)
			if err != nil {
				t.Fatalf("trial %d workers %d: ExecDelta: %v", trial, workers, err)
			}
			requireSameSamples(t, "delta vs full", want, got)
		}

		// Sharded windows concatenate to the full run.
		mid := iters / 2
		opts := ExecOptions{Iterations: iters, Seed: seed}
		head, err := s1.ExecDeltaRange(ctx, q, opts, d, 0, mid)
		if err != nil {
			t.Fatalf("trial %d: ExecDeltaRange head: %v", trial, err)
		}
		tail, err := s1.ExecDeltaRange(ctx, q, opts, d, mid, iters)
		if err != nil {
			t.Fatalf("trial %d: ExecDeltaRange tail: %v", trial, err)
		}
		requireSameSamples(t, "windowed delta", want, append(head, tail...))
	}
}

// TestExecDeltaEmptyAVGConvention pins satellite semantics: iterations
// whose selection empties out yield AVG = 0 — never NaN — identically
// on the naive, bundle, and delta paths. With a predicate nothing can
// satisfy, every iteration is empty and all three strategies agree
// bit-for-bit (zeros); with a merely-steep predicate, bundle and delta
// (which share a realization) stay bit-identical while mixing empty and
// non-empty iterations, and the naive path still keeps every sample
// finite with exact zeros at its own empty iterations.
func TestExecDeltaEmptyAVGConvention(t *testing.T) {
	ctx := context.Background()
	w := deltaWorld{kind: deltaKindVG, targetGrp: 1}
	db1 := buildDeltaDB(t, 5, 2, w, false)
	db2 := buildDeltaDB(t, 5, 2, w, true)
	opts := ExecOptions{Iterations: 80, Seed: 7}
	mkQ := func(cut float64) AggQuery {
		return AggQuery{
			Table: "obs", Col: "val", Fn: engine.AggAvg,
			WhereUnc: func(det engine.Row, unc []float64) bool { return unc[0] > cut },
		}
	}
	checkFinite := func(name string, samples []float64) int {
		t.Helper()
		empties := 0
		for i, v := range samples {
			if v != v {
				t.Fatalf("%s: NaN leaked into sample %d", name, i)
			}
			if v == 0 {
				empties++
			}
		}
		return empties
	}

	// Impossible predicate: all three strategies produce all-zero
	// sample vectors, bit-identical by the convention alone.
	impossible := mkQ(1e12)
	naive, err := db2.NewSession().Exec(ctx, impossible, ExecOptions{Strategy: StrategyNaive, Iterations: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := db2.NewSession().Exec(ctx, impossible, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := db1.NewSession().ExecDelta(ctx, impossible, opts, deltaFor(w))
	if err != nil {
		t.Fatal(err)
	}
	requireSameSamples(t, "naive vs bundle (all empty)", naive, bundle)
	requireSameSamples(t, "bundle vs delta (all empty)", bundle, delta)
	if checkFinite("all-empty delta", delta) != 80 {
		t.Fatal("impossible predicate left a non-zero sample")
	}

	// Steep predicate: empty and non-empty iterations mix. Bundle and
	// delta share one realization and must agree bit-for-bit; the naive
	// path draws its own realization but obeys the same convention.
	steep := mkQ(21)
	naive, err = db2.NewSession().Exec(ctx, steep, ExecOptions{Strategy: StrategyNaive, Iterations: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bundle, err = db2.NewSession().Exec(ctx, steep, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, err = db1.NewSession().ExecDelta(ctx, steep, opts, deltaFor(w))
	if err != nil {
		t.Fatal(err)
	}
	requireSameSamples(t, "bundle vs delta (mixed)", bundle, delta)
	checkFinite("steep naive", naive)
	if e := checkFinite("steep delta", delta); e == 0 || e == 80 {
		t.Fatalf("steep predicate emptied %d of 80 iterations; want a mix", e)
	}
}

// TestExecDeltaOtherTableSkipsEverything: a change to an unrelated
// stochastic table reuses every iteration of the query's bundle, and
// the skip counter says so.
func TestExecDeltaOtherTableSkipsEverything(t *testing.T) {
	w := deltaWorld{kind: deltaKindOther}
	db := buildDeltaDB(t, 10, 2, w, false)
	s := db.NewSession()
	st := parallel.NewStats()
	ctx := parallel.WithStats(context.Background(), st)
	q := AggQuery{Table: "obs", Col: "val", Fn: engine.AggAvg}
	opts := ExecOptions{Iterations: 25, Seed: 3}

	baseline, err := s.Exec(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ExecDelta(ctx, q, opts, deltaFor(w))
	if err != nil {
		t.Fatal(err)
	}
	requireSameSamples(t, "unrelated delta", baseline, got)
	if skipped := st.Registry().Counter(MetricDeltaItersSkipped).Value(); skipped != 25 {
		t.Fatalf("delta_iters_skipped = %d, want 25", skipped)
	}
}

// TestExecDeltaMapUncSkipsCleanIterations: a cap transform that rarely
// binds leaves most iterations bitwise unchanged; those must be reused
// (skip counter > 0) while the run as a whole stays bit-identical to
// the changed world, which also must contain dirty iterations for the
// test to mean anything.
func TestExecDeltaMapUncSkipsCleanIterations(t *testing.T) {
	w := deltaWorld{kind: deltaKindMapUnc, targetGrp: 0}
	db1 := buildDeltaDB(t, 6, 3, w, false)
	db2 := buildDeltaDB(t, 6, 3, w, true)
	s := db1.NewSession()
	st := parallel.NewStats()
	ctx := parallel.WithStats(context.Background(), st)
	q := AggQuery{Table: "obs", Col: "val", Fn: engine.AggSum}
	opts := ExecOptions{Iterations: 120, Seed: 19}

	want, err := db2.NewSession().Exec(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ExecDelta(ctx, q, opts, deltaFor(w))
	if err != nil {
		t.Fatal(err)
	}
	requireSameSamples(t, "capped delta", want, got)
	skipped := st.Registry().Counter(MetricDeltaItersSkipped).Value()
	if skipped == 0 {
		t.Fatal("no iteration skipped; the cap bound every iteration")
	}
	if skipped == int64(opts.Iterations) {
		t.Fatal("every iteration skipped; the cap never bound")
	}
	if rerealized := st.Registry().Counter(MetricDeltaTuplesRerealized).Value(); rerealized != 2 {
		t.Fatalf("delta_tuples_rerealized = %d, want 2 (grp 0 of 3 over 6 items)", rerealized)
	}
}

// TestExecDeltaValidation covers the rejection surface.
func TestExecDeltaValidation(t *testing.T) {
	db := buildDeltaDB(t, 4, 2, deltaWorld{}, false)
	s := db.NewSession()
	ctx := context.Background()
	q := AggQuery{Table: "obs", Col: "val", Fn: engine.AggAvg}
	good := ExecOptions{Iterations: 5, Seed: 1}

	cases := []struct {
		name string
		q    AggQuery
		opts ExecOptions
		d    Delta
	}{
		{"no table", q, good, Delta{}},
		{"unknown table", q, good, Delta{Table: "nope"}},
		{"mapunc plus vg", q, good, Delta{Table: "obs",
			MapUnc: func(det engine.Row, unc []float64) {},
			VG:     func(p engine.Row, r *rng.Stream) ([]engine.Value, error) { return nil, nil }}},
		{"naive strategy", q, ExecOptions{Iterations: 5, Strategy: StrategyNaive}, Delta{Table: "obs"}},
		{"zero iters", q, ExecOptions{}, Delta{Table: "obs"}},
		{"bad aggregate", AggQuery{Table: "obs", Col: "val", Fn: engine.AggFunc(99)}, good, Delta{Table: "obs"}},
	}
	for _, tc := range cases {
		if _, err := s.ExecDelta(ctx, tc.q, tc.opts, tc.d); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := s.ExecDeltaRange(ctx, q, good, Delta{Table: "obs"}, 3, 9); err == nil {
		t.Error("window beyond Iterations: expected error")
	}
}

// TestExecLineage checks per-iteration why-provenance against a direct
// scan of the realized bundle, and that iterations with identical
// lineage share one interned slice.
func TestExecLineage(t *testing.T) {
	db := buildDeltaDB(t, 6, 2, deltaWorld{}, false)
	s := db.NewSession()
	ctx := context.Background()
	q := AggQuery{
		Table: "obs", Col: "val", Fn: engine.AggAvg,
		WhereDet: func(det engine.Row) bool { return det[1].AsInt() == 0 },
		WhereUnc: func(det engine.Row, unc []float64) bool { return unc[0] > 11 },
	}
	opts := ExecOptions{Iterations: 20, Seed: 5}

	lin, err := s.ExecLineage(ctx, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 20 {
		t.Fatalf("%d iterations of lineage, want 20", len(lin))
	}
	bundles, err := s.bundlesFor(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	bt := bundles["obs"]
	for it := 0; it < bt.Iters; it++ {
		var want []int
		for ti := range bt.Det {
			if bt.Det[ti][1].AsInt() == 0 && bt.Unc[ti][0][it] > 11 {
				want = append(want, ti)
			}
		}
		if len(lin[it]) != len(want) {
			t.Fatalf("iter %d: %d leaves, want %d", it, len(lin[it]), len(want))
		}
		for j, ti := range want {
			if lin[it][j].Table != "obs" || lin[it][j].Row != ti {
				t.Fatalf("iter %d leaf %d = %+v, want obs:%d", it, j, lin[it][j], ti)
			}
		}
	}
}
