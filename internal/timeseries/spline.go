package timeseries

import (
	"fmt"

	"modeldata/internal/linalg"
	"modeldata/internal/sgd"
)

// Spline is a natural cubic spline through a Series. Sigma holds the
// spline constants σ₀, …, σ_m of §2.2 (the second derivatives at the
// knots, with σ₀ = σ_m = 0 for a natural spline).
type Spline struct {
	s     *Series
	Sigma []float64
}

// SplineSystem builds the tridiagonal linear system A·σ = b whose
// solution gives the interior spline constants σ₁…σ_{m−1}. This is the
// (m−1)×(m−1) system the paper describes as potentially containing
// "millions of rows and millions of columns" for massive time series.
func SplineSystem(s *Series) (*linalg.Tridiagonal, []float64, error) {
	m := s.Len() - 1
	if m < 2 {
		return nil, nil, fmt.Errorf("%w: need ≥ 3 points for a cubic spline, have %d", ErrTooShort, s.Len())
	}
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	n := m - 1 // unknowns σ₁..σ_{m−1}
	tri := &linalg.Tridiagonal{
		Sub:   make([]float64, n-1),
		Diag:  make([]float64, n),
		Super: make([]float64, n-1),
	}
	b := make([]float64, n)
	h := func(j int) float64 { return s.Points[j+1].T - s.Points[j].T }
	d := func(j int) float64 { return s.Points[j].V }
	for i := 0; i < n; i++ {
		j := i + 1 // knot index
		tri.Diag[i] = 2 * (h(j-1) + h(j))
		if i > 0 {
			tri.Sub[i-1] = h(j - 1)
		}
		if i < n-1 {
			tri.Super[i] = h(j)
		}
		b[i] = 6 * ((d(j+1)-d(j))/h(j) - (d(j)-d(j-1))/h(j-1))
	}
	return tri, b, nil
}

// NewSpline fits a natural cubic spline to s, solving the spline
// constant system exactly with the Thomas algorithm.
func NewSpline(s *Series) (*Spline, error) {
	tri, b, err := SplineSystem(s)
	if err != nil {
		return nil, err
	}
	interior, err := tri.SolveThomas(b)
	if err != nil {
		return nil, err
	}
	return splineFromInterior(s, interior), nil
}

// NewSplineSGD fits the spline by minimizing ‖Aσ − b‖² with the given
// SGD solver instead of a direct solve — the §2.2 approach that maps
// onto MapReduce with negligible shuffling. The solver's result is the
// approximate interior constants.
func NewSplineSGD(s *Series, solve sgd.TridiagonalSolver) (*Spline, error) {
	tri, b, err := SplineSystem(s)
	if err != nil {
		return nil, err
	}
	interior, err := solve(tri, b)
	if err != nil {
		return nil, err
	}
	return splineFromInterior(s, interior), nil
}

func splineFromInterior(s *Series, interior []float64) *Spline {
	sigma := make([]float64, s.Len())
	copy(sigma[1:], interior) // σ₀ = σ_m = 0 (natural boundary)
	return &Spline{s: s, Sigma: sigma}
}

// At evaluates the spline at tᵢ using the paper's interpolation formula:
//
//	d̃ᵢ = σⱼ/(6hⱼ)·(s_{j+1}−tᵢ)³ + σ_{j+1}/(6hⱼ)·(tᵢ−sⱼ)³
//	    + (d_{j+1}/hⱼ − σ_{j+1}hⱼ/6)·(tᵢ−sⱼ)
//	    + (dⱼ/hⱼ − σⱼhⱼ/6)·(s_{j+1}−tᵢ)
func (sp *Spline) At(t float64) (float64, error) {
	j, err := sp.s.segmentFor(t)
	if err != nil {
		return 0, err
	}
	return sp.evalSegment(j, t), nil
}

// evalSegment evaluates the spline on segment j at time t without
// bounds checking.
func (sp *Spline) evalSegment(j int, t float64) float64 {
	p0, p1 := sp.s.Points[j], sp.s.Points[j+1]
	h := p1.T - p0.T
	a := p1.T - t
	b := t - p0.T
	s0, s1 := sp.Sigma[j], sp.Sigma[j+1]
	return s0/(6*h)*a*a*a + s1/(6*h)*b*b*b +
		(p1.V/h-s1*h/6)*b + (p0.V/h-s0*h/6)*a
}

// Interpolate evaluates the spline at each target time, which must lie
// within the series range.
func (sp *Spline) Interpolate(targets []float64) ([]float64, error) {
	out := make([]float64, len(targets))
	for i, t := range targets {
		v, err := sp.At(t)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
