package timeseries

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"modeldata/internal/mapreduce"
	"modeldata/internal/rng"
	"modeldata/internal/sgd"
)

func sineSeries(t *testing.T, n int) *Series {
	t.Helper()
	ts := make([]float64, n)
	vs := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i) * 10 / float64(n-1)
		vs[i] = math.Sin(ts[i])
	}
	return mustSeries(t, "sine", ts, vs)
}

func TestSplineTooShort(t *testing.T) {
	s := mustSeries(t, "s", []float64{0, 1}, []float64{1, 2})
	if _, err := NewSpline(s); !errors.Is(err, ErrTooShort) {
		t.Fatalf("got %v, want ErrTooShort", err)
	}
}

func TestSplinePassesThroughKnots(t *testing.T) {
	s := sineSeries(t, 20)
	sp, err := NewSpline(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		got, err := sp.At(p.T)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p.V) > 1e-10 {
			t.Fatalf("spline(%g) = %g, want knot value %g", p.T, got, p.V)
		}
	}
}

func TestSplineNaturalBoundary(t *testing.T) {
	s := sineSeries(t, 15)
	sp, err := NewSpline(s)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Sigma[0] != 0 || sp.Sigma[len(sp.Sigma)-1] != 0 {
		t.Fatalf("boundary sigmas = %g, %g", sp.Sigma[0], sp.Sigma[len(sp.Sigma)-1])
	}
}

func TestSplineApproximatesSmoothFunction(t *testing.T) {
	s := sineSeries(t, 50)
	sp, err := NewSpline(s)
	if err != nil {
		t.Fatal(err)
	}
	// Natural boundary conditions (σ₀ = σ_m = 0) are only O(h²)
	// accurate near the endpoints where sin″ ≠ 0, so check a loose
	// global bound and a tight interior bound.
	maxErr, maxErrInterior := 0.0, 0.0
	for q := 0.1; q < 9.9; q += 0.0317 {
		got, err := sp.At(q)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(got - math.Sin(q))
		if e > maxErr {
			maxErr = e
		}
		if q > 1.5 && q < 8.5 && e > maxErrInterior {
			maxErrInterior = e
		}
	}
	if maxErr > 5e-3 {
		t.Fatalf("spline global max error vs sin = %g", maxErr)
	}
	if maxErrInterior > 1e-4 {
		t.Fatalf("spline interior max error vs sin = %g", maxErrInterior)
	}
}

// Property: a cubic spline reproduces cubic-free data exactly — for
// data sampled from a straight line the spline is that line and all
// sigmas are zero.
func TestSplineExactOnLinesProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a, b := r.Normal(0, 3), r.Normal(0, 3)
		ts := []float64{0, 1, 2, 3.5, 5, 8}
		vs := make([]float64, len(ts))
		for i, tt := range ts {
			vs[i] = a + b*tt
		}
		s, err := FromSlices("lin", ts, vs)
		if err != nil {
			return false
		}
		sp, err := NewSpline(s)
		if err != nil {
			return false
		}
		for _, sig := range sp.Sigma {
			if math.Abs(sig) > 1e-9 {
				return false
			}
		}
		got, err := sp.At(4.2)
		return err == nil && math.Abs(got-(a+b*4.2)) < 1e-9
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplineSGDMatchesExact(t *testing.T) {
	s := sineSeries(t, 200)
	exact, err := NewSpline(s)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := NewSplineSGD(s, sgd.DistributedSolver(sgd.Options{
		Epochs: 300, Kaczmarz: true, Seed: 3, Workers: 4,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Sigma {
		if math.Abs(exact.Sigma[i]-approx.Sigma[i]) > 1e-5 {
			t.Fatalf("sigma[%d]: exact %g vs DSGD %g", i, exact.Sigma[i], approx.Sigma[i])
		}
	}
}

func TestInterpolateMethods(t *testing.T) {
	s := sineSeries(t, 40)
	targets := []float64{0.5, 2.2, 7.7}
	for _, m := range []InterpMethod{InterpStep, InterpLinear, InterpCubicSpline} {
		out, err := Interpolate(s, targets, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if out.Len() != len(targets) {
			t.Fatalf("%v: %d points", m, out.Len())
		}
	}
	if _, err := Interpolate(s, []float64{99}, InterpLinear); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
	if _, err := Interpolate(s, targets, InterpMethod(99)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestClassify(t *testing.T) {
	fine := sineSeries(t, 101) // step 0.1 over [0, 10]
	coarseTicks := []float64{0, 2, 4, 6, 8, 10}
	fineTicks := make([]float64, 201)
	for i := range fineTicks {
		fineTicks[i] = float64(i) * 0.05
	}
	sameTicks := fine.Times()
	if c := Classify(fine, coarseTicks); c != AlignAggregation {
		t.Fatalf("coarse target: %v", c)
	}
	if c := Classify(fine, fineTicks); c != AlignInterpolation {
		t.Fatalf("fine target: %v", c)
	}
	if c := Classify(fine, sameTicks); c != AlignIdentity {
		t.Fatalf("same ticks: %v", c)
	}
}

func TestAlignDispatch(t *testing.T) {
	s := sineSeries(t, 101)
	out, class, err := Align(s, []float64{0, 2, 4, 6, 8}, InterpLinear, AggMean)
	if err != nil || class != AlignAggregation {
		t.Fatalf("agg: class=%v err=%v", class, err)
	}
	if out.Len() != 5 {
		t.Fatalf("agg output = %d", out.Len())
	}
	targets := []float64{1.01, 1.02, 1.03, 1.04, 1.05}
	// Dense targets over a tiny span have a smaller mean step.
	out, class, err = Align(s, targets, InterpCubicSpline, AggMean)
	if err != nil || class != AlignInterpolation {
		t.Fatalf("interp: class=%v err=%v", class, err)
	}
	if out.Len() != len(targets) {
		t.Fatalf("interp output = %d", out.Len())
	}
	_, class, err = Align(s, s.Times(), InterpLinear, AggMean)
	if err != nil || class != AlignIdentity {
		t.Fatalf("identity: class=%v err=%v", class, err)
	}
}

func TestParallelInterpolateMatchesSequential(t *testing.T) {
	s := sineSeries(t, 60)
	sp, err := NewSpline(s)
	if err != nil {
		t.Fatal(err)
	}
	var targets []float64
	for q := 0.05; q < 9.9; q += 0.07 {
		targets = append(targets, q)
	}
	seq, err := sp.Interpolate(targets)
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := ParallelInterpolate(sp, targets, mapreduce.Config{Mappers: 4, Reducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if par.Len() != len(targets) {
		t.Fatalf("parallel output = %d, want %d", par.Len(), len(targets))
	}
	if stats.InputSplits == 0 {
		t.Fatal("no windows processed")
	}
	for i, p := range par.Points {
		if math.Abs(p.T-targets[i]) > 1e-9 {
			t.Fatalf("target order broken at %d: %g vs %g", i, p.T, targets[i])
		}
		if math.Abs(p.V-seq[i]) > 1e-12 {
			t.Fatalf("value mismatch at %d: %g vs %g", i, p.V, seq[i])
		}
	}
}

func TestParallelInterpolateOutOfRange(t *testing.T) {
	s := sineSeries(t, 10)
	sp, err := NewSpline(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParallelInterpolate(sp, []float64{-5}, mapreduce.Config{}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v", err)
	}
}

func TestParallelInterpolateEmptyTargets(t *testing.T) {
	s := sineSeries(t, 10)
	sp, err := NewSpline(s)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ParallelInterpolate(sp, nil, mapreduce.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("expected empty output")
	}
}
