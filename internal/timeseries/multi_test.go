package timeseries

import (
	"errors"
	"math"
	"testing"
)

func multiFixture(t *testing.T, n int) *MultiSeries {
	t.Helper()
	times := make([]float64, n)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range times {
		times[i] = float64(i)
		a[i] = math.Sin(float64(i) / 10)
		b[i] = float64(i) * 2
	}
	m, err := NewMulti("model-out", []string{"temp", "load"}, times, [][]float64{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti("x", nil, nil, nil); err == nil {
		t.Fatal("empty columns accepted")
	}
	if _, err := NewMulti("x", []string{"a"}, []float64{0, 1}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged column accepted")
	}
	if _, err := NewMulti("x", []string{"a"}, []float64{1, 0}, [][]float64{{1, 2}}); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("got %v", err)
	}
}

func TestMultiColumn(t *testing.T) {
	m := multiFixture(t, 10)
	s, err := m.Column("load")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 10 || s.Points[3].V != 6 {
		t.Fatalf("column = %v", s.Points[:4])
	}
	if _, err := m.Column("nope"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestAlignMultiAggregation(t *testing.T) {
	m := multiFixture(t, 100)
	out, class, err := AlignMulti(m, []float64{0, 10, 20, 30}, InterpLinear, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if class != AlignAggregation {
		t.Fatalf("class = %v", class)
	}
	if out.Len() != 4 || len(out.Data) != 2 {
		t.Fatalf("shape %d×%d", out.Len(), len(out.Data))
	}
	// Column "load" is 2t: bucket [10, 20) mean = 2·14.5 = 29.
	if math.Abs(out.Data[1][1]-29) > 1e-9 {
		t.Fatalf("load bucket = %g", out.Data[1][1])
	}
}

func TestAlignMultiInterpolation(t *testing.T) {
	m := multiFixture(t, 50)
	targets := []float64{1.5, 1.75, 2.0, 2.25, 2.5} // mean step 0.25 < source step 1
	out, class, err := AlignMulti(m, targets, InterpLinear, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if class != AlignInterpolation {
		t.Fatalf("class = %v", class)
	}
	// Linear column interpolates exactly.
	for i, tt := range targets {
		if math.Abs(out.Data[1][i]-2*tt) > 1e-9 {
			t.Fatalf("load(%g) = %g", tt, out.Data[1][i])
		}
	}
}

func TestAlignMultiEmpty(t *testing.T) {
	m := &MultiSeries{Name: "e", Columns: []string{"a"}, Data: [][]float64{{}}}
	if _, _, err := AlignMulti(m, []float64{1, 2}, InterpLinear, AggMean); !errors.Is(err, ErrTooShort) {
		t.Fatalf("got %v", err)
	}
}

func TestAlignMultiOutOfRange(t *testing.T) {
	m := multiFixture(t, 10)
	if _, _, err := AlignMulti(m, []float64{100, 100.1, 100.2, 100.25, 100.3}, InterpLinear, AggMean); err == nil {
		t.Fatal("out-of-range targets accepted")
	}
}
