package timeseries

import (
	"context"
	"fmt"
	"sort"

	"modeldata/internal/mapreduce"
)

// AlignClass is the class of time alignment needed between a source and
// target timescale, as determined by Splash's time-aligner tool (§2.2):
// aggregation when the target is coarser than the source, interpolation
// when it is finer, and identity when the tick sets match.
type AlignClass uint8

// Alignment classes.
const (
	AlignIdentity AlignClass = iota
	AlignAggregation
	AlignInterpolation
)

// String names the alignment class.
func (c AlignClass) String() string {
	switch c {
	case AlignIdentity:
		return "identity"
	case AlignAggregation:
		return "aggregation"
	case AlignInterpolation:
		return "interpolation"
	}
	return fmt.Sprintf("AlignClass(%d)", uint8(c))
}

// Classify determines the alignment class from the mean tick spacing of
// the source series and the target tick set.
func Classify(source *Series, targetTicks []float64) AlignClass {
	if source.Len() < 2 || len(targetTicks) < 2 {
		return AlignIdentity
	}
	srcSpan := source.Points[source.Len()-1].T - source.Points[0].T
	srcStep := srcSpan / float64(source.Len()-1)
	tgtStep := (targetTicks[len(targetTicks)-1] - targetTicks[0]) / float64(len(targetTicks)-1)
	const tol = 1e-9
	switch {
	case tgtStep > srcStep*(1+tol):
		return AlignAggregation
	case tgtStep < srcStep*(1-tol):
		return AlignInterpolation
	default:
		return AlignIdentity
	}
}

// InterpMethod selects an interpolation method for alignment.
type InterpMethod uint8

// Interpolation methods.
const (
	InterpStep InterpMethod = iota
	InterpLinear
	InterpCubicSpline
)

// String names the interpolation method.
func (m InterpMethod) String() string {
	switch m {
	case InterpStep:
		return "step"
	case InterpLinear:
		return "linear"
	case InterpCubicSpline:
		return "cubic-spline"
	}
	return fmt.Sprintf("InterpMethod(%d)", uint8(m))
}

// Interpolate aligns s to the finer target ticks with the chosen
// method. All targets must fall within the series range.
func Interpolate(s *Series, targetTicks []float64, method InterpMethod) (*Series, error) {
	var at func(float64) (float64, error)
	switch method {
	case InterpStep:
		at = s.StepAt
	case InterpLinear:
		at = s.LinearAt
	case InterpCubicSpline:
		sp, err := NewSpline(s)
		if err != nil {
			return nil, err
		}
		at = sp.At
	default:
		return nil, fmt.Errorf("timeseries: unknown interpolation method %v", method)
	}
	pts := make([]Point, len(targetTicks))
	for i, t := range targetTicks {
		v, err := at(t)
		if err != nil {
			return nil, err
		}
		pts[i] = Point{T: t, V: v}
	}
	return New(s.Name, pts)
}

// Align classifies and applies the needed alignment in one call,
// returning the aligned series and the class that was applied — the
// behaviour of Splash's time-aligner GUI compiled to code.
func Align(s *Series, targetTicks []float64, method InterpMethod, agg AggKind) (*Series, AlignClass, error) {
	class := Classify(s, targetTicks)
	switch class {
	case AlignAggregation:
		out, err := Aggregate(s, targetTicks, agg)
		return out, class, err
	case AlignInterpolation:
		out, err := Interpolate(s, targetTicks, method)
		return out, class, err
	default:
		return s, AlignIdentity, nil
	}
}

// window is one parallel interpolation unit W = ⟨(sⱼ,dⱼ), (s_{j+1},
// d_{j+1})⟩ plus its spline constants and assigned target points.
type window struct {
	j       int
	targets []float64
}

// ParallelInterpolate performs spline interpolation on the MapReduce
// runtime with no cancellation. See ParallelInterpolateCtx.
func ParallelInterpolate(sp *Spline, targetTicks []float64, cfg mapreduce.Config) (*Series, mapreduce.Stats, error) {
	return ParallelInterpolateCtx(context.Background(), sp, targetTicks, cfg)
}

// ParallelInterpolateCtx performs spline interpolation on the
// MapReduce runtime following §2.2: spline constants are computed once
// (by the provided fit, typically exact Thomas or DSGD), source
// segments become windows processed by parallel mappers, and the
// target series is assembled by the framework's parallel sort. It
// returns the aligned series and the job statistics. Cancellation of
// ctx aborts the job between stages with ctx.Err(); shuffle bytes are
// credited to any parallel.Stats collector carried by ctx.
func ParallelInterpolateCtx(ctx context.Context, sp *Spline, targetTicks []float64, cfg mapreduce.Config) (*Series, mapreduce.Stats, error) {
	s := sp.s
	// Assign each target tick to its window.
	sorted := make([]float64, len(targetTicks))
	copy(sorted, targetTicks)
	sort.Float64s(sorted)
	wins := make(map[int]*window)
	for _, t := range sorted {
		j, err := s.segmentFor(t)
		if err != nil {
			return nil, mapreduce.Stats{}, err
		}
		w, ok := wins[j]
		if !ok {
			w = &window{j: j}
			wins[j] = w
		}
		w.targets = append(w.targets, t)
	}
	segs := make([]int, 0, len(wins))
	for j := range wins {
		segs = append(segs, j)
	}
	sort.Ints(segs)
	splits := make([]any, 0, len(wins))
	for _, j := range segs {
		splits = append(splits, wins[j])
	}
	if len(splits) == 0 {
		return &Series{Name: s.Name}, mapreduce.Stats{}, nil
	}
	out, stats, err := mapreduce.RunCtx(ctx, cfg, splits,
		func(split any, emit func(mapreduce.Pair)) error {
			w := split.(*window)
			for _, t := range w.targets {
				v := sp.evalSegment(w.j, t)
				emit(mapreduce.Pair{Key: fmt.Sprintf("%020.6f", t), Value: Point{T: t, V: v}})
			}
			return nil
		},
		func(key string, values []any, emit func(mapreduce.Pair)) error {
			for _, v := range values {
				emit(mapreduce.Pair{Key: key, Value: v})
			}
			return nil
		})
	if err != nil {
		return nil, stats, err
	}
	pts := make([]Point, len(out))
	for i, p := range out {
		pts[i] = p.Value.(Point)
	}
	aligned, err := New(s.Name, pts)
	if err != nil {
		return nil, stats, err
	}
	return aligned, stats, nil
}
