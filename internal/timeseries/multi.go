package timeseries

import (
	"fmt"
)

// §2.2 notes that each observation dᵢ "can be viewed as a k-tuple for
// some k ≥ 1": model outputs carry several columns per time tick. A
// MultiSeries is that shape — shared observation times with k named
// data columns — and aligns by applying the scalar machinery
// column-wise (the per-column transformations are independent, which
// is also why Splash can parallelize them freely).

// MultiSeries is a k-column time series over shared ticks.
type MultiSeries struct {
	Name    string
	Columns []string
	Times   []float64
	// Data[j] is column j's values, parallel to Times.
	Data [][]float64
}

// NewMulti validates and builds a MultiSeries.
func NewMulti(name string, columns []string, times []float64, data [][]float64) (*MultiSeries, error) {
	if len(columns) == 0 || len(columns) != len(data) {
		return nil, fmt.Errorf("timeseries: %d columns but %d data vectors", len(columns), len(data))
	}
	for j, col := range data {
		if len(col) != len(times) {
			return nil, fmt.Errorf("timeseries: column %q has %d values for %d ticks", columns[j], len(col), len(times))
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("%w: tick %d", ErrUnsorted, i)
		}
	}
	return &MultiSeries{Name: name, Columns: columns, Times: times, Data: data}, nil
}

// Len returns the number of ticks.
func (m *MultiSeries) Len() int { return len(m.Times) }

// Column extracts one column as a scalar Series.
func (m *MultiSeries) Column(name string) (*Series, error) {
	for j, c := range m.Columns {
		if c == name {
			return FromSlices(m.Name+"."+name, m.Times, m.Data[j])
		}
	}
	return nil, fmt.Errorf("timeseries: no column %q in %q", name, m.Name)
}

// AlignMulti aligns every column of m onto the target ticks with the
// given method/aggregation, returning a new MultiSeries on the target
// timescale. The alignment class is detected once from the shared
// ticks (all columns share the timescale, so the class is common).
func AlignMulti(m *MultiSeries, targetTicks []float64, method InterpMethod, agg AggKind) (*MultiSeries, AlignClass, error) {
	if m.Len() == 0 {
		return nil, AlignIdentity, fmt.Errorf("%w: empty multiseries", ErrTooShort)
	}
	var outTimes []float64
	outData := make([][]float64, len(m.Columns))
	var class AlignClass
	for j := range m.Columns {
		col, err := FromSlices(m.Name, m.Times, m.Data[j])
		if err != nil {
			return nil, AlignIdentity, err
		}
		aligned, c, err := Align(col, targetTicks, method, agg)
		if err != nil {
			return nil, c, fmt.Errorf("timeseries: column %q: %w", m.Columns[j], err)
		}
		if j == 0 {
			class = c
			outTimes = aligned.Times()
		} else if aligned.Len() != len(outTimes) {
			// Can only occur with aggregation dropping different empty
			// buckets per column — impossible with shared ticks, so
			// this is an internal invariant failure.
			return nil, c, fmt.Errorf("timeseries: column %q aligned to %d ticks, want %d",
				m.Columns[j], aligned.Len(), len(outTimes))
		}
		outData[j] = aligned.Values()
	}
	out, err := NewMulti(m.Name, m.Columns, outTimes, outData)
	if err != nil {
		return nil, class, err
	}
	return out, class, nil
}
