// Package timeseries implements the time-series data model and the
// Splash-style time-alignment transformations of §2.2 of the paper:
// aggregation when the target model has coarser time granularity,
// interpolation (step, linear, and natural cubic spline) when it has
// finer granularity, and window-parallel execution of interpolation on
// the in-process MapReduce runtime.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"modeldata/internal/linalg"
)

// Common errors.
var (
	ErrUnsorted   = errors.New("timeseries: observation times are not strictly increasing")
	ErrTooShort   = errors.New("timeseries: series too short for this operation")
	ErrOutOfRange = errors.New("timeseries: target time outside the series range")
)

// Point is one observation (sᵢ, dᵢ).
type Point struct {
	T float64 // observation time
	V float64 // observed data
}

// Series is an ordered sequence of observations
// S = ⟨(s₀,d₀), …, (s_m,d_m)⟩ with strictly increasing times.
type Series struct {
	Name   string
	Points []Point
}

// New builds a Series after validating that times strictly increase.
func New(name string, pts []Point) (*Series, error) {
	s := &Series{Name: name, Points: pts}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// FromSlices builds a Series from parallel time and value slices.
func FromSlices(name string, ts, vs []float64) (*Series, error) {
	if len(ts) != len(vs) {
		return nil, fmt.Errorf("timeseries: %d times but %d values", len(ts), len(vs))
	}
	pts := make([]Point, len(ts))
	for i := range ts {
		pts[i] = Point{T: ts[i], V: vs[i]}
	}
	return New(name, pts)
}

// Validate checks that times strictly increase.
func (s *Series) Validate() error {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].T <= s.Points[i-1].T {
			return fmt.Errorf("%w: index %d (t=%g after t=%g)",
				ErrUnsorted, i, s.Points[i].T, s.Points[i-1].T)
		}
	}
	return nil
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Points) }

// Times returns the observation times.
func (s *Series) Times() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.T
	}
	return out
}

// Values returns the observed data.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Slice returns the sub-series with times in [lo, hi).
func (s *Series) Slice(lo, hi float64) *Series {
	var pts []Point
	for _, p := range s.Points {
		if p.T >= lo && p.T < hi {
			pts = append(pts, p)
		}
	}
	return &Series{Name: s.Name, Points: pts}
}

// segmentFor locates j such that s.Points[j].T <= t <= s.Points[j+1].T.
func (s *Series) segmentFor(t float64) (int, error) {
	n := len(s.Points)
	if n < 2 || t < s.Points[0].T || t > s.Points[n-1].T {
		return 0, fmt.Errorf("%w: t=%g not in [%g, %g]", ErrOutOfRange, t,
			s.Points[0].T, s.Points[n-1].T)
	}
	j := sort.Search(n, func(i int) bool { return s.Points[i].T > t }) - 1
	if j >= n-1 {
		j = n - 2
	}
	return j, nil
}

// StepAt returns the last-observation-carried-forward value at t.
func (s *Series) StepAt(t float64) (float64, error) {
	j, err := s.segmentFor(t)
	if err != nil {
		return 0, err
	}
	if t == s.Points[j+1].T { //lint:allow floateq step-function semantics: only an exact knot hit takes the right value
		return s.Points[j+1].V, nil
	}
	return s.Points[j].V, nil
}

// LinearAt returns the linearly interpolated value at t.
func (s *Series) LinearAt(t float64) (float64, error) {
	j, err := s.segmentFor(t)
	if err != nil {
		return 0, err
	}
	p0, p1 := s.Points[j], s.Points[j+1]
	frac := (t - p0.T) / (p1.T - p0.T)
	return p0.V*(1-frac) + p1.V*frac, nil
}

// AggKind selects the aggregation used when aligning to a coarser
// timescale.
type AggKind uint8

// Aggregation kinds.
const (
	AggMean AggKind = iota
	AggSum
	AggFirst
	AggLast
	AggMin
	AggMax
)

// Aggregate aligns s to a coarser target timescale: for consecutive
// target ticks t_i, all source observations with time in [t_i, t_{i+1})
// are folded with the chosen aggregate and reported at t_i. The final
// tick captures all remaining observations at or after it. Empty
// buckets are dropped.
func Aggregate(s *Series, targetTicks []float64, kind AggKind) (*Series, error) {
	if len(targetTicks) == 0 {
		return nil, fmt.Errorf("%w: no target ticks", ErrTooShort)
	}
	for i := 1; i < len(targetTicks); i++ {
		if targetTicks[i] <= targetTicks[i-1] {
			return nil, fmt.Errorf("%w: target tick %d", ErrUnsorted, i)
		}
	}
	var out []Point
	for i, tick := range targetTicks {
		hi := math.Inf(1)
		if i+1 < len(targetTicks) {
			hi = targetTicks[i+1]
		}
		var bucket []float64
		for _, p := range s.Points {
			if p.T >= tick && p.T < hi {
				bucket = append(bucket, p.V)
			}
		}
		if len(bucket) == 0 {
			continue
		}
		out = append(out, Point{T: tick, V: foldAgg(bucket, kind)})
	}
	return New(s.Name, out)
}

func foldAgg(vals []float64, kind AggKind) float64 {
	switch kind {
	case AggMean:
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	case AggSum:
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum
	case AggFirst:
		return vals[0]
	case AggLast:
		return vals[len(vals)-1]
	case AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	}
	return math.NaN()
}

// TrendModel is a polynomial trend d(t) ≈ Σ βₖ tᵏ fitted by least
// squares, used by the Figure 1 extrapolation experiment.
type TrendModel struct {
	Beta []float64 // coefficients, constant term first
	// T0 and TScale standardize time before fitting for conditioning:
	// u = (t − T0)/TScale.
	T0, TScale float64
}

// FitTrend fits a polynomial trend of the given degree to s.
func FitTrend(s *Series, degree int) (*TrendModel, error) {
	n := s.Len()
	if n < degree+1 {
		return nil, fmt.Errorf("%w: %d points for degree %d", ErrTooShort, n, degree)
	}
	t0 := s.Points[0].T
	tScale := s.Points[n-1].T - t0
	if tScale == 0 { //lint:allow floateq exact-zero span means a single instant; guard before dividing
		tScale = 1
	}
	x := linalg.NewMatrix(n, degree+1)
	y := make([]float64, n)
	for i, p := range s.Points {
		u := (p.T - t0) / tScale
		pow := 1.0
		for k := 0; k <= degree; k++ {
			x.Set(i, k, pow)
			pow *= u
		}
		y[i] = p.V
	}
	beta, err := linalg.OLS(x, y)
	if err != nil {
		return nil, err
	}
	return &TrendModel{Beta: beta, T0: t0, TScale: tScale}, nil
}

// At evaluates the trend at time t (extrapolating freely — which is
// exactly the danger Figure 1 illustrates).
func (m *TrendModel) At(t float64) float64 {
	u := (t - m.T0) / m.TScale
	pow := 1.0
	v := 0.0
	for _, b := range m.Beta {
		v += b * pow
		pow *= u
	}
	return v
}
