package timeseries

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"modeldata/internal/rng"
)

func mustSeries(t *testing.T, name string, ts, vs []float64) *Series {
	t.Helper()
	s, err := FromSlices(name, ts, vs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsUnsorted(t *testing.T) {
	_, err := FromSlices("x", []float64{0, 2, 1}, []float64{1, 2, 3})
	if !errors.Is(err, ErrUnsorted) {
		t.Fatalf("got %v, want ErrUnsorted", err)
	}
	_, err = FromSlices("x", []float64{0, 0}, []float64{1, 2})
	if !errors.Is(err, ErrUnsorted) {
		t.Fatalf("duplicate times: got %v, want ErrUnsorted", err)
	}
	_, err = FromSlices("x", []float64{0}, []float64{1, 2})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAccessors(t *testing.T) {
	s := mustSeries(t, "s", []float64{0, 1, 2}, []float64{10, 20, 30})
	if s.Len() != 3 {
		t.Fatal("Len")
	}
	ts, vs := s.Times(), s.Values()
	if ts[2] != 2 || vs[0] != 10 {
		t.Fatal("Times/Values")
	}
	sub := s.Slice(0.5, 2)
	if sub.Len() != 1 || sub.Points[0].V != 20 {
		t.Fatalf("Slice = %v", sub.Points)
	}
}

func TestStepAndLinearAt(t *testing.T) {
	s := mustSeries(t, "s", []float64{0, 1, 3}, []float64{10, 20, 60})
	if v, _ := s.StepAt(0.9); v != 10 {
		t.Fatalf("StepAt(0.9) = %g", v)
	}
	if v, _ := s.StepAt(1); v != 20 {
		t.Fatalf("StepAt(1) = %g", v)
	}
	if v, _ := s.LinearAt(2); v != 40 {
		t.Fatalf("LinearAt(2) = %g", v)
	}
	if v, _ := s.LinearAt(3); v != 60 {
		t.Fatalf("LinearAt(3) endpoint = %g", v)
	}
	if _, err := s.LinearAt(5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("got %v, want ErrOutOfRange", err)
	}
}

func TestAggregateKinds(t *testing.T) {
	s := mustSeries(t, "s",
		[]float64{0, 0.5, 1, 1.5, 2, 2.5},
		[]float64{1, 3, 5, 7, 9, 11})
	cases := map[AggKind][]float64{
		AggMean:  {2, 6, 10},
		AggSum:   {4, 12, 20},
		AggFirst: {1, 5, 9},
		AggLast:  {3, 7, 11},
		AggMin:   {1, 5, 9},
		AggMax:   {3, 7, 11},
	}
	for kind, want := range cases {
		out, err := Aggregate(s, []float64{0, 1, 2}, kind)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 3 {
			t.Fatalf("kind %d: %d buckets", kind, out.Len())
		}
		for i, p := range out.Points {
			if p.V != want[i] {
				t.Errorf("kind %d bucket %d = %g, want %g", kind, i, p.V, want[i])
			}
		}
	}
}

func TestAggregateDropsEmptyBuckets(t *testing.T) {
	s := mustSeries(t, "s", []float64{0, 5}, []float64{1, 2})
	out, err := Aggregate(s, []float64{0, 1, 2, 3, 4, 5}, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("buckets = %d, want 2", out.Len())
	}
}

func TestAggregateErrors(t *testing.T) {
	s := mustSeries(t, "s", []float64{0, 1}, []float64{1, 2})
	if _, err := Aggregate(s, nil, AggMean); !errors.Is(err, ErrTooShort) {
		t.Fatalf("got %v", err)
	}
	if _, err := Aggregate(s, []float64{1, 1}, AggMean); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("got %v", err)
	}
}

func TestFitTrendRecoversLine(t *testing.T) {
	ts := make([]float64, 30)
	vs := make([]float64, 30)
	for i := range ts {
		ts[i] = float64(1970 + i)
		vs[i] = 100 + 3*float64(i)
	}
	s := mustSeries(t, "line", ts, vs)
	m, err := FitTrend(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, year := range []float64{1975, 1990, 2005} {
		want := 100 + 3*(year-1970)
		if got := m.At(year); math.Abs(got-want) > 1e-6 {
			t.Fatalf("trend(%g) = %g, want %g", year, got, want)
		}
	}
}

func TestFitTrendTooShort(t *testing.T) {
	s := mustSeries(t, "s", []float64{0, 1}, []float64{1, 2})
	if _, err := FitTrend(s, 3); !errors.Is(err, ErrTooShort) {
		t.Fatalf("got %v, want ErrTooShort", err)
	}
}

func TestFitTrendConstantTime(t *testing.T) {
	s := mustSeries(t, "s", []float64{5, 6, 7}, []float64{1, 1, 1})
	m, err := FitTrend(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.At(100)-1) > 1e-9 {
		t.Fatal("constant trend wrong")
	}
}

// Property: linear interpolation of a linear series is exact.
func TestLinearInterpExactOnLinesProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a, b := r.Normal(0, 5), r.Normal(0, 5)
		ts := []float64{0, 1, 2.5, 4, 7}
		vs := make([]float64, len(ts))
		for i, tt := range ts {
			vs[i] = a + b*tt
		}
		s, err := FromSlices("lin", ts, vs)
		if err != nil {
			return false
		}
		for _, q := range []float64{0.3, 1.7, 3.14, 6.9} {
			got, err := s.LinearAt(q)
			if err != nil || math.Abs(got-(a+b*q)) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
