package lint

import "go/ast"

// This file is a lightweight intra-function control-flow graph over the
// AST, shared by the path-sensitive analyzers (spanleak's must-reach-End
// reachability, lockguard's held-mutex dataflow). It deliberately stays
// far simpler than x/tools/go/cfg: blocks carry ast.Nodes rather than
// lowered instructions, and the only summarized constructs are the ones
// the repository actually writes — if/else, for, range, switch, type
// switch, select, labeled break/continue, fallthrough, return, and
// panic. goto is lowered conservatively as an edge to the exit block, so
// analyzers over goto-ful code get quieter, never wrong.

// Block is one basic block: a straight-line run of AST nodes executed in
// order, followed by a transfer of control along one of Succs.
//
// Nodes holds statements and, for control headers, their constituent
// parts (an if's Init and Cond, a range's operands, a case clause's
// guard expressions) — never a statement that itself contains the
// block's successors, so walking every block's Nodes visits each node of
// the function exactly once. Function literals appear as values inside
// nodes; their bodies are separate functions and are NOT linked into
// this graph.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Exit is a
// synthetic empty block reached by falling off the end, by every return
// statement, and by terminating calls (panic, goto lowering).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// BuildCFG constructs the control-flow graph of body. It never fails:
// unreachable statements land in dangling blocks with no predecessors.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Exit = b.newBlock()
	b.g.Entry = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	return b.g
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label      string // of the enclosing LabeledStmt, or ""
	breakTo    *Block
	continueTo *Block // nil for switch/select frames
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil while control cannot reach the next statement
	// frames is the stack of enclosing loops/switches/selects, the
	// innermost last. pendingLabel carries a LabeledStmt's label to
	// the loop or switch statement it labels.
	frames       []frame
	pendingLabel string
	// fallTarget is the next case's body block while building a
	// switch case, for fallthrough.
	fallTarget *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends n to the current block, opening a dangling block first if
// control cannot reach here (so unreachable code still has a home).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			b.stmt(s.Stmt)
		default:
			// A label on a plain statement only matters for goto,
			// which is lowered to exit anyway.
			b.stmt(s.Stmt)
		}

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		cond := b.cur
		if cond == nil {
			cond = b.newBlock()
		}
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, join)
			}
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		b.add(s.Init)
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = head
		b.add(s.Cond)
		body := b.newBlock()
		post := b.newBlock()
		join := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join)
		}
		b.frames = append(b.frames, frame{label: label, breakTo: join, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = post
		b.add(s.Post)
		b.edge(post, head)
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = head
		b.add(s.X)
		b.add(s.Key)
		b.add(s.Value)
		body := b.newBlock()
		join := b.newBlock()
		b.edge(head, body)
		b.edge(head, join) // a range over an empty container runs zero times
		b.frames = append(b.frames, frame{label: label, breakTo: join, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, nil, s.Body, true)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Assign, s.Body, true)

	case *ast.SelectStmt:
		b.switchLike(nil, nil, nil, s.Body, false)

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			if b.cur != nil {
				b.edge(b.cur, b.g.Exit)
			}
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, deferred and go calls,
		// inc/dec, empty statements: straight-line.
		b.add(s)
	}
}

// switchLike builds switch, type switch, and select bodies: each clause
// branches from the head, clause bodies never fall through to each other
// (except an explicit fallthrough), and all of them (plus the head, when
// no default clause exists) join afterwards.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFallthrough bool) {
	label := b.takeLabel()
	b.add(init)
	b.add(tag)
	b.add(assign)
	head := b.cur
	if head == nil {
		head = b.newBlock()
	}
	join := b.newBlock()

	// Pre-create each clause's start block so fallthrough can target
	// the next clause before it is built.
	starts := make([]*Block, len(body.List))
	hasDefault := false
	for i := range body.List {
		starts[i] = b.newBlock()
		b.edge(head, starts[i])
	}
	b.frames = append(b.frames, frame{label: label, breakTo: join})
	for i, clause := range body.List {
		prevFall := b.fallTarget
		b.fallTarget = nil
		if allowFallthrough && i+1 < len(body.List) {
			b.fallTarget = starts[i+1]
		}
		b.cur = starts[i]
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				b.add(e)
			}
			if c.List == nil {
				hasDefault = true
			}
			b.stmtList(c.Body)
		case *ast.CommClause:
			b.add(c.Comm)
			if c.Comm == nil {
				hasDefault = true
			}
			b.stmtList(c.Body)
		}
		if b.cur != nil {
			b.edge(b.cur, join)
		}
		b.fallTarget = prevFall
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	if b.cur == nil {
		return
	}
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	var target *Block
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			if label == "" || b.frames[i].label == label {
				target = b.frames[i].breakTo
				break
			}
		}
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].continueTo == nil {
				continue // a switch/select is transparent to continue
			}
			if label == "" || b.frames[i].label == label {
				target = b.frames[i].continueTo
				break
			}
		}
	case "fallthrough":
		target = b.fallTarget
	case "goto":
		// Lowered conservatively: control leaves the analyzable
		// region.
	}
	if target == nil {
		target = b.g.Exit
	}
	b.edge(b.cur, target)
	b.cur = nil
}

// isPanic reports whether e is a call to the predeclared panic. The
// check is syntactic; shadowing panic would defeat it, and nothing in
// this repository does.
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
