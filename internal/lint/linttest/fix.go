package linttest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"modeldata/internal/lint"
)

// RunFix proves an analyzer's suggested fixes are real repairs: it runs
// the analyzer over testdata/src/<fixture>, applies every suggested
// fix, and re-checks the rewritten package — which must both compile
// (strict type check) and re-lint clean. The whole testdata/src tree is
// copied into a temp dir first so fixture stubs keep resolving and the
// checked-in fixtures are never modified.
func RunFix(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	src := filepath.Join("testdata", "src")
	dir := filepath.Join(src, fixture)
	pkg, err := lint.LoadDir(dir, "modeldatalint.test/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	if len(findings) == 0 {
		t.Fatalf("%s: fix fixture produced no diagnostics; nothing to fix", fixture)
	}
	fixable := 0
	for _, f := range findings {
		if f.Fix != nil {
			fixable++
		}
	}
	if fixable == 0 {
		t.Fatalf("%s: none of the %d diagnostics carry a suggested fix", fixture, len(findings))
	}

	fixed, err := lint.ApplyFixes(findings)
	if err != nil {
		t.Fatalf("%s: applying fixes: %v", fixture, err)
	}

	tmp := t.TempDir()
	copyFixtureTree(t, src, tmp)
	for name, content := range fixed {
		rel, err := filepath.Rel(src, name)
		if err != nil {
			t.Fatalf("%s: fix touched %s outside the fixture tree", fixture, name)
		}
		if err := os.WriteFile(filepath.Join(tmp, rel), content, 0o644); err != nil {
			t.Fatalf("writing fixed %s: %v", rel, err)
		}
	}

	repkg, errs := lint.LoadDirStrict(filepath.Join(tmp, fixture), "modeldatalint.test/"+fixture)
	for _, err := range errs {
		t.Errorf("%s: fixed fixture does not compile: %v", fixture, err)
	}
	if t.Failed() {
		for name, content := range fixed {
			t.Logf("fixed %s:\n%s", name, content)
		}
		return
	}
	refindings, err := lint.RunAnalyzers([]*lint.Package{repkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("re-running %s on fixed fixture: %v", a.Name, err)
	}
	for _, f := range refindings {
		t.Errorf("%s: diagnostic survives its own fix: %s", fixture, f)
	}
}

// copyFixtureTree copies every .go file under src into dst, preserving
// structure.
func copyFixtureTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		content, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(filepath.Join(dst, rel)), 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), content, 0o644)
	})
	if err != nil {
		t.Fatalf("copying fixture tree: %v", err)
	}
}
