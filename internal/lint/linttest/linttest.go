// Package linttest runs an analyzer over a fixture package and checks
// its diagnostics against expectations written in the fixture itself,
// in the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives in testdata/src/<name>/ relative to the analyzer's
// test. Lines that must be flagged carry a trailing want comment whose
// quoted regexp must match the diagnostic message:
//
//	seed := time.Now() // want `nondeterministic input`
//
// Lines with a //lint:allow directive exercise the suppression path:
// they must produce no surviving diagnostic, like any unannotated
// clean line. Multiple diagnostics on one line take multiple quoted
// regexps in a single want comment.
package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"modeldata/internal/lint"
)

// wantRE extracts the quoted regexps of a want comment; both `...`
// and "..." quoting are accepted.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads testdata/src/<fixture> as one package, applies the
// analyzer with suppression, and reports any mismatch between the
// surviving diagnostics and the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := lint.LoadDir(dir, "modeldatalint.test/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg.Fset, pkg.Files)
	matched := make([]bool, len(wants))
	for _, f := range findings {
		if !claim(wants, matched, f) {
			t.Errorf("%s: unexpected diagnostic: %s", fixture, f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				fixture, filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
}

// collectWants parses every `// want` comment into one expectation per
// quoted regexp, anchored to the comment's line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(strings.TrimPrefix(text, "want "), -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, pattern: pat, re: re})
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched want on the finding's line whose
// regexp matches; it reports whether one was found.
func claim(wants []want, matched []bool, f lint.Finding) bool {
	for i, w := range wants {
		if matched[i] || w.line != f.Position.Line || w.file != f.Position.Filename {
			continue
		}
		if w.re.MatchString(f.Message) {
			matched[i] = true
			return true
		}
	}
	return false
}

// MustBeClean runs the analyzer over the fixture and fails the test on
// any surviving diagnostic, for all-allowed fixtures.
func MustBeClean(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := lint.LoadDir(dir, "modeldatalint.test/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	for _, f := range findings {
		t.Errorf("%s: expected clean fixture, got: %s", fixture, f)
	}
}
