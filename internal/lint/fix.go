package lint

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// ApplyFixes computes the result of applying every suggested fix among
// findings and returns the new content of each affected file, keyed by
// filename. Files are read from disk; nothing is written — the caller
// decides between rewriting in place (-fix) and printing a diff
// (-fix -diff). Overlapping edits are an error: the analyzers in this
// suite emit disjoint fixes, so overlap means a bug, not a judgment
// call to paper over.
func ApplyFixes(findings []Finding) (map[string][]byte, error) {
	byFile := make(map[string][]Edit)
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
	}
	out := make(map[string][]byte, len(byFile))
	for name, edits := range byFile {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes: %w", err)
		}
		fixed, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", name, err)
		}
		out[name] = fixed
	}
	return out, nil
}

// applyEdits applies edits to src back to front so earlier offsets stay
// valid.
func applyEdits(src []byte, edits []Edit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Offset != edits[j].Offset {
			return edits[i].Offset > edits[j].Offset
		}
		return edits[i].End > edits[j].End
	})
	lastStart := len(src) + 1
	var prev *Edit
	for i := range edits {
		e := edits[i]
		// Identical edits collapse: several findings in one file may
		// each contribute the same "add this import" insertion.
		if prev != nil && e == *prev {
			continue
		}
		prev = &edits[i]
		if e.Offset < 0 || e.End < e.Offset || e.End > len(src) {
			return nil, fmt.Errorf("edit out of range [%d,%d) in %d bytes", e.Offset, e.End, len(src))
		}
		if e.End > lastStart {
			return nil, fmt.Errorf("overlapping suggested fixes at offset %d", e.Offset)
		}
		lastStart = e.Offset
		text := e.NewText
		if e.Indent {
			text = strings.ReplaceAll(text, "\n", "\n"+lineIndent(src, e.Offset))
		}
		src = append(src[:e.Offset:e.Offset], append([]byte(text), src[e.End:]...)...)
	}
	return src, nil
}

// lineIndent returns the leading whitespace of the line containing
// offset.
func lineIndent(src []byte, offset int) string {
	start := offset
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	end := start
	for end < len(src) && (src[end] == ' ' || src[end] == '\t') {
		end++
	}
	return string(src[start:end])
}
