package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file parses the field/var comment conventions the concurrency-era
// analyzers enforce:
//
//	mu      sync.Mutex
//	tenants map[string]*tenant // guarded by mu
//	spans   []*Span            // bounded by -trace ring capacity
//
// A directive is a comment that *starts* with the directive phrase
// (after //), so ordinary prose mentioning "guarded by" mid-sentence is
// never parsed as one. The argument is the rest of the comment:
// lockguard takes the first word as the mutex name, boundedgrowth takes
// the whole rest as the human-readable eviction reason.

// Directive phrases recognized on struct fields and package-level vars.
const (
	GuardedByDirective = "guarded by"
	BoundedByDirective = "bounded by"
)

// FieldDirectives scans every struct type declared in the unit for
// fields carrying the directive and maps each field object to the
// directive's argument. Directives with no argument are returned as
// malformed positions for the analyzer to report.
func FieldDirectives(info *types.Info, files []*ast.File, directive string) (map[*types.Var]string, []token.Pos) {
	out := make(map[*types.Var]string)
	var malformed []token.Pos
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg, pos, ok := commentDirective(field.Doc, field.Comment, directive)
				if !ok {
					continue
				}
				if arg == "" {
					malformed = append(malformed, pos)
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out[v] = arg
					}
				}
			}
			return true
		})
	}
	return out, malformed
}

// VarDirectives scans package-level var declarations for the directive,
// mapping each declared var object to the directive's argument.
func VarDirectives(info *types.Info, files []*ast.File, directive string) (map[*types.Var]string, []token.Pos) {
	out := make(map[*types.Var]string)
	var malformed []token.Pos
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				arg, pos, ok := commentDirective(vs.Doc, vs.Comment, directive)
				if !ok {
					arg, pos, ok = commentDirective(gd.Doc, nil, directive)
				}
				if !ok {
					continue
				}
				if arg == "" {
					malformed = append(malformed, pos)
					continue
				}
				for _, name := range vs.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out[v] = arg
					}
				}
			}
		}
	}
	return out, malformed
}

// commentDirective looks through the doc and line comment groups for a
// comment whose text starts with the directive phrase and returns the
// trimmed argument after it.
func commentDirective(doc, line *ast.CommentGroup, directive string) (arg string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{doc, line} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, directive) {
				continue
			}
			rest := text[len(directive):]
			if rest != "" && rest[0] != ' ' && rest[0] != ':' && rest[0] != '\t' {
				continue // e.g. "guarded byzantine..." is prose
			}
			return strings.TrimSpace(strings.TrimLeft(rest, ": \t")), c.Pos(), true
		}
	}
	return "", token.NoPos, false
}
