// Package ctxplumb enforces context plumbing through long-running
// entry points.
//
// Every cancellable computation in this repo — parallel.ForStreams
// loops, mapreduce stages, Monte Carlo drivers — takes a
// context.Context so callers can bound it (DESIGN.md §4). Two failure
// modes silently break that chain and are flagged here:
//
//  1. An exported function manufactures its own context with
//     context.Background() or context.TODO() instead of accepting one,
//     cutting its callees off from the caller's cancellation. The one
//     sanctioned shape is the deprecation wrapper whose entire body is
//     a single return delegating to the context-aware variant
//     (e.g. Run -> RunCtx), which exists precisely to keep old call
//     sites compiling.
//
//  2. A function accepts a context.Context and then drops it: the
//     parameter is named _, is unnamed, or is never mentioned in the
//     body. Interface-satisfying methods that legitimately ignore
//     their context carry a //lint:allow ctxplumb with the reason.
package ctxplumb

import (
	"go/ast"
	"strings"

	"modeldata/internal/lint"
)

// Analyzer is the ctxplumb rule.
var Analyzer = &lint.Analyzer{
	Name: "ctxplumb",
	Doc: "flags exported entry points that manufacture context.Background()/TODO() (outside " +
		"single-return deprecation wrappers) and functions that drop the context they receive",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		// Tests sit at the root of their call tree, exactly where
		// creating the root context belongs, so the manufactured-
		// context rule does not apply in _test.go files. Dropping a
		// received context is still a bug there.
		inTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDroppedContext(pass, fn)
			if fn.Name.IsExported() && !inTest {
				checkManufacturedContext(pass, fn)
			}
		}
	}
	return nil
}

// checkDroppedContext reports context.Context parameters the function
// can never honor.
func checkDroppedContext(pass *lint.Pass, fn *ast.FuncDecl) {
	for _, field := range fn.Type.Params.List {
		if !lint.IsContextContext(lint.TypeOf(pass.TypesInfo, field.Type)) {
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(),
				"%s takes an unnamed context.Context it cannot use; name it and plumb it through",
				fn.Name.Name)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Reportf(name.Pos(),
					"%s discards its context.Context parameter; plumb it into the work it starts",
					fn.Name.Name)
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if !lint.UsesObject(pass.TypesInfo, fn.Body, obj) {
				pass.Reportf(name.Pos(),
					"%s receives ctx but never uses it: cancellation stops here; "+
						"pass it to callees or select on ctx.Done()", fn.Name.Name)
			}
		}
	}
}

// checkManufacturedContext reports context.Background()/TODO() calls in
// exported functions, except the single-return deprecation-wrapper
// idiom.
func checkManufacturedContext(pass *lint.Pass, fn *ast.FuncDecl) {
	wrapper := isDelegationWrapper(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := lint.CalleePkgFunc(pass.TypesInfo, call)
		if pkg != "context" {
			return true
		}
		// The wrapper escape covers Background only: context.TODO
		// means "not yet plumbed", which is exactly the state this
		// analyzer exists to eliminate.
		if name == "Background" && wrapper {
			return true
		}
		if name == "Background" || name == "TODO" {
			pass.Reportf(call.Pos(),
				"exported %s creates context.%s instead of accepting a context from its caller; "+
					"add a ctx parameter (keep a single-return wrapper for the old signature)",
				fn.Name.Name, name)
		}
		return true
	})
}

// isDelegationWrapper reports whether fn's body is exactly one
// statement delegating to another call — the documented deprecation
// shape `func Run(...) { return RunCtx(context.Background(), ...) }`,
// including the statement-only form for void functions.
func isDelegationWrapper(fn *ast.FuncDecl) bool {
	if len(fn.Body.List) != 1 {
		return false
	}
	switch stmt := fn.Body.List[0].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		_, isCall := stmt.X.(*ast.CallExpr)
		return isCall
	}
	return false
}
