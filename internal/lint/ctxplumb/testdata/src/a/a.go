// Package a exercises the ctxplumb analyzer: manufactured contexts,
// dropped context parameters, the deprecation-wrapper escape, and
// directive suppression.
package a

import "context"

func work(ctx context.Context, n int) error { return ctx.Err() }

// BadManufactured hides real work behind a context it invented, so the
// caller can never cancel it.
func BadManufactured(n int) error {
	ctx := context.Background() // want `creates context.Background instead of accepting a context`
	for i := 0; i < n; i++ {
		if err := work(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// BadTODO is the same bug spelled differently.
func BadTODO(n int) error {
	return process(context.TODO(), n) // want `creates context.TODO instead of accepting a context`
}

func process(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := work(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

// RunCtx is the context-aware entry point.
func RunCtx(ctx context.Context, n int) error { return process(ctx, n) }

// Run is the sanctioned single-return deprecation wrapper: it may
// manufacture a Background context because its whole body is the
// delegation.
func Run(n int) error { return RunCtx(context.Background(), n) }

// BadDropped receives ctx and then ignores it.
func BadDropped(ctx context.Context, n int) int { // want `receives ctx but never uses it`
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// BadDiscarded declares it away outright.
func BadDiscarded(_ context.Context, n int) int { // want `discards its context.Context parameter`
	return n * 2
}

// GoodPlumbed threads the context into the loop.
func GoodPlumbed(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// AllowedIgnore satisfies an interface whose other implementations
// block; the directive records why ignoring ctx is sound here.
func AllowedIgnore(ctx context.Context) error { //lint:allow ctxplumb in-memory fake completes instantly, nothing to cancel
	return nil
}
