package ctxplumb_test

import (
	"testing"

	"modeldata/internal/lint/ctxplumb"
	"modeldata/internal/lint/linttest"
)

func TestCtxplumb(t *testing.T) {
	linttest.Run(t, ctxplumb.Analyzer, "a")
}
