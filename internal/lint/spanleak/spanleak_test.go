package spanleak

import (
	"testing"

	"modeldata/internal/lint/linttest"
)

func TestSpanLeak(t *testing.T) {
	linttest.Run(t, Analyzer, "spanleak")
}

func TestSpanLeakFixturesAreFixable(t *testing.T) {
	linttest.RunFix(t, Analyzer, "spanleakfix")
}
