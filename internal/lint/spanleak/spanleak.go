// Package spanleak enforces the span lifecycle: every span returned by
// obs.Start must reach its End() on every control-flow path out of the
// function that started it, typically via defer.
//
// A leaked span never records its end time, so the Chrome trace drops
// the subtree silently — the observability failure mode PR 5 exists to
// prevent. The analyzer builds the intra-function CFG (lint.BuildCFG)
// and asks, for each obs.Start site, whether the exit block is
// reachable without executing an End for that span; return statements,
// early breaks, and panic paths all count as exits, which is why
// `defer sp.End()` immediately after Start is the canonical shape and
// is what `modeldatalint -fix` inserts.
//
// Spans that escape the starting function — returned, stored, or passed
// onward — transfer the End obligation with them and are not checked
// here. Test files are exempt: a leaked span in a test distorts no
// production trace.
package spanleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"modeldata/internal/lint"
)

// Analyzer is the spanleak rule.
var Analyzer = &lint.Analyzer{
	Name: "spanleak",
	Doc: "flags obs.Start spans that do not reach End() on every control-flow path " +
		"(fix: defer sp.End() right after Start)",
	// The obs package itself constructs and finishes spans as data;
	// its tests exercise half-open spans deliberately.
	DefaultAllow: []string{"internal/obs"},
	Run:          run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, body := range functionBodies(f) {
			checkFunc(pass, body)
		}
	}
	return nil
}

// functionBodies yields every function body in the file — declarations
// and literals — each analyzed as its own scope, in source order.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	g := lint.BuildCFG(body)
	parents := parentMap(body)
	for _, blk := range g.Blocks {
		for i, node := range blk.Nodes {
			assign, spanExpr := startSite(pass.TypesInfo, node, parents)
			if assign == nil {
				continue
			}
			name, ok := spanExpr.(*ast.Ident)
			if !ok {
				continue // sp stored straight into a field: it escapes
			}
			if name.Name == "_" {
				pass.Reportf(assign.Pos(),
					"span from obs.Start is discarded; bind it and defer its End()")
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				obj = pass.TypesInfo.Uses[name]
			}
			if obj == nil {
				continue
			}
			if escapes(pass.TypesInfo, body, assign, obj, parents) {
				continue // responsibility transferred with the span
			}
			if leaks(g, blk, i, pass.TypesInfo, obj) {
				report(pass, assign, name.Name, parents)
			}
		}
	}
}

// startSite matches `ctx, sp := obs.Start(...)` (any assignment token)
// directly in statement position and returns the assignment and the
// span-side expression. Start detection is by package name and path
// suffix so fixture stubs of obs satisfy it too.
func startSite(info *types.Info, node ast.Node, parents map[ast.Node]ast.Node) (*ast.AssignStmt, ast.Expr) {
	assign, ok := node.(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
		return nil, nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	path, fn := lint.CalleePkgFunc(info, call)
	if fn != "Start" || !isObsPath(path) {
		return nil, nil
	}
	return assign, ast.Unparen(assign.Lhs[1])
}

func isObsPath(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// escapes reports whether the span object is used beyond its sanctioned
// lifecycle — any use other than End/SetAttr/SetInt calls, nil
// comparisons, its defining assignment, or an End inside a directly
// deferred closure. An escaping span may be finished elsewhere, so the
// analyzer stays quiet about it.
func escapes(info *types.Info, body *ast.BlockStmt, def *ast.AssignStmt, obj types.Object, parents map[ast.Node]ast.Node) bool {
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || (info.Uses[id] != obj && info.Defs[id] != obj) {
			return true
		}
		if sanctionedUse(id, def, parents) {
			return true
		}
		escaped = true
		return false
	})
	return escaped
}

func sanctionedUse(id *ast.Ident, def *ast.AssignStmt, parents map[ast.Node]ast.Node) bool {
	switch p := parents[id].(type) {
	case *ast.AssignStmt:
		return p == def // the defining statement itself
	case *ast.BinaryExpr:
		return p.Op == token.EQL || p.Op == token.NEQ // sp != nil guards
	case *ast.SelectorExpr:
		if p.X != id {
			return false
		}
		call, ok := parents[p].(*ast.CallExpr)
		if !ok || call.Fun != p {
			return false
		}
		switch p.Sel.Name {
		case "SetAttr", "SetInt":
			return enclosingFuncLit(call, parents) == nil
		case "End":
			lit := enclosingFuncLit(call, parents)
			if lit == nil {
				return true
			}
			// sp.End() inside a closure counts only for the
			// canonical `defer func() { ... sp.End() ... }()`.
			litCall, ok := parents[lit].(*ast.CallExpr)
			if !ok || litCall.Fun != lit {
				return false
			}
			_, isDefer := parents[litCall].(*ast.DeferStmt)
			return isDefer && enclosingFuncLit(parents[litCall], parents) == nil
		}
	}
	return false
}

// enclosingFuncLit returns the innermost function literal containing n,
// or nil when n belongs directly to the analyzed body.
func enclosingFuncLit(n ast.Node, parents map[ast.Node]ast.Node) *ast.FuncLit {
	for p := parents[n]; p != nil; p = parents[p] {
		if lit, ok := p.(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

// leaks reports whether the exit block is reachable from just after the
// Start site without executing an End event for obj.
func leaks(g *lint.CFG, startBlk *lint.Block, startIdx int, info *types.Info, obj types.Object) bool {
	type at struct {
		b *lint.Block
		i int
	}
	seen := make(map[*lint.Block]bool)
	stack := []at{{startBlk, startIdx + 1}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ended := false
		for i := cur.i; i < len(cur.b.Nodes); i++ {
			if endsSpan(cur.b.Nodes[i], info, obj) {
				ended = true
				break
			}
		}
		if ended {
			continue
		}
		if cur.b == g.Exit {
			return true
		}
		for _, s := range cur.b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, at{s, 0})
			}
		}
	}
	return false
}

// endsSpan reports whether node is an End event for the span: a direct
// sp.End() call, defer sp.End(), or a deferred closure containing
// sp.End().
func endsSpan(node ast.Node, info *types.Info, obj types.Object) bool {
	switch n := node.(type) {
	case *ast.ExprStmt:
		return isEndCall(n.X, info, obj)
	case *ast.DeferStmt:
		if isEndCall(n.Call, info, obj) {
			return true
		}
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if found {
					return false
				}
				if e, ok := m.(ast.Expr); ok && isEndCall(e, info, obj) {
					found = true
				}
				return !found
			})
			return found
		}
	}
	return false
}

func isEndCall(e ast.Expr, info *types.Info, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// report emits the leak diagnostic, with the mechanical fix — insert
// `defer sp.End()` right after the Start statement — whenever the
// assignment sits directly in a block, where the insertion is
// syntactically safe. Span.End is idempotent, so an added defer is
// harmless even on paths that already End explicitly.
func report(pass *lint.Pass, assign *ast.AssignStmt, name string, parents map[ast.Node]ast.Node) {
	msg := "span %s from obs.Start does not reach End() on every path; defer %s.End() after Start"
	if _, inBlock := parents[assign].(*ast.BlockStmt); inBlock {
		pass.ReportFixf(assign.Pos(), []lint.TextEdit{{
			Pos:     assign.End(),
			NewText: "\ndefer " + name + ".End()",
			Indent:  true,
		}}, msg, name, name)
		return
	}
	pass.Reportf(assign.Pos(), msg, name, name)
}

// parentMap records each node's syntactic parent within body.
func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
