// Package spanleakfix contains only mechanically fixable leaks:
// `modeldatalint -fix` must turn each into code that compiles and
// re-lints clean, which linttest.RunFix asserts.
package spanleakfix

import (
	"context"
	"errors"

	"modeldatalint.test/obs"
)

func earlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "early") // want `does not reach End`
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

func forgotten(ctx context.Context, n int) int {
	_, sp := obs.Start(ctx, "forgotten") // want `does not reach End`
	if n > 0 {
		sp.SetInt("n", int64(n))
		return n * 2
	}
	return 0
}

func switchLeak(ctx context.Context, mode string) error {
	_, sp := obs.Start(ctx, "switch") // want `does not reach End`
	switch mode {
	case "a":
		sp.End()
		return nil
	case "b":
		return errors.New("mode b leaks")
	}
	sp.End()
	return nil
}
