package spanleak

import (
	"context"
	"errors"

	"modeldatalint.test/obs"
)

// --- canonical clean shapes ---

func deferred(ctx context.Context, fail bool) error {
	ctx, sp := obs.Start(ctx, "deferred")
	defer sp.End()
	_ = ctx
	if fail {
		return errors.New("boom")
	}
	return nil
}

func bothPaths(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "both")
	if fail {
		sp.End()
		return errors.New("boom")
	}
	sp.End()
	return nil
}

func deferClosure(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "closure")
	defer func() { sp.End() }()
	if fail {
		return errors.New("boom")
	}
	return nil
}

func nilCompare(ctx context.Context) {
	_, sp := obs.Start(ctx, "nilcmp")
	defer sp.End()
	if sp == nil {
		return
	}
	sp.SetAttr("k", "v")
}

func loopClean(ctx context.Context, xs []int) {
	for range xs {
		_, sp := obs.Start(ctx, "iter")
		sp.SetInt("n", int64(len(xs)))
		sp.End()
	}
}

// --- leaks ---

func earlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "early") // want `span sp from obs.Start does not reach End`
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

func discard(ctx context.Context) context.Context {
	ctx2, _ := obs.Start(ctx, "discard") // want `span from obs.Start is discarded`
	return ctx2
}

func panics(ctx context.Context, bad bool) {
	_, sp := obs.Start(ctx, "panics") // want `does not reach End`
	if bad {
		panic("bad input")
	}
	sp.End()
}

func loopBreak(ctx context.Context, xs []int) {
	for _, x := range xs {
		_, sp := obs.Start(ctx, "iter") // want `does not reach End`
		if x < 0 {
			break
		}
		sp.End()
	}
}

func inClosure(ctx context.Context) func() {
	return func() {
		_, sp := obs.Start(ctx, "inner") // want `does not reach End`
		sp.SetInt("n", 1)
	}
}

// --- escapes: the End obligation moves with the span, no diagnostic ---

func escapesReturn(ctx context.Context) *obs.Span {
	_, sp := obs.Start(ctx, "escape-return")
	return sp
}

func escapesArg(ctx context.Context) {
	_, sp := obs.Start(ctx, "escape-arg")
	finish(sp)
}

func finish(sp *obs.Span) { sp.End() }

// --- suppression ---

func suppressed(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "suppressed") //lint:allow spanleak fixture abandons the span on purpose
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}
