// Package obs is a miniature stub of modeldata/internal/obs for
// spanleak fixtures: same shape (Start returning a context and a span,
// idempotent End, attribute setters), none of the machinery.
package obs

import "context"

type Span struct{ ended bool }

func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}

func (s *Span) End() {
	if s != nil {
		s.ended = true
	}
}

func (s *Span) SetAttr(k, v string) {}

func (s *Span) SetInt(k string, v int64) {}
