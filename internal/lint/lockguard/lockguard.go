// Package lockguard enforces documented lock discipline: a struct field
// annotated `// guarded by <mu>` may only be read or written while a
// mutex of that name is held in the enclosing function.
//
//	type Server struct {
//		mu      sync.Mutex
//		tenants map[string]*tenant // guarded by mu
//	}
//
// The check is a forward must-analysis over the intra-function CFG
// (lint.BuildCFG): `x.Lock()` / `x.RLock()` adds x's final name to the
// held set, `x.Unlock()` / `x.RUnlock()` removes it (a deferred unlock
// removes nothing — it runs at return), and at control-flow joins the
// held sets intersect, so a lock taken on only one branch does not
// count after the merge.
//
// Matching is by mutex *name*, not object identity — deliberately: the
// serving layer locks s.mu and then touches tenant.inflight, which is
// documented `// guarded by mu` meaning the owning server's mu. The
// name convention keeps that idiom checkable; the cost is that two
// different mutexes with the same field name satisfy each other, which
// code review owns.
//
// Escape hatches: functions whose name ends in Locked assert the caller
// holds every guard (the evictOverLocked convention); test files are
// exempt; anything else takes a //lint:allow lockguard with a reason.
// A `// guarded by` with no mutex name is itself a diagnostic.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"modeldata/internal/lint"
)

// Analyzer is the lockguard rule.
var Analyzer = &lint.Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by <mu>` may only be accessed while that mutex is " +
		"held in the enclosing function (*Locked functions assume the caller holds it)",
	Run: run,
}

func run(pass *lint.Pass) error {
	guarded, malformed := lint.FieldDirectives(pass.TypesInfo, pass.Files, lint.GuardedByDirective)
	for _, pos := range malformed {
		pass.Reportf(pos, "`// guarded by` needs a mutex name")
	}
	if len(guarded) == 0 {
		return nil
	}
	// Reduce each annotation to the guard's name and collect the
	// universe of guards for the dataflow's top element.
	guards := make(map[*types.Var]string, len(guarded))
	all := make(map[string]bool)
	for v, arg := range guarded {
		name := strings.Trim(strings.Fields(arg)[0], ".,;:")
		guards[v] = name
		all[name] = true
	}

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // caller-holds-the-lock convention
			}
			for _, body := range bodies(fn.Body) {
				checkBody(pass, body, guards, all)
			}
		}
	}
	return nil
}

// bodies returns fn's body plus every function literal body inside it,
// each analyzed as its own scope: a closure shipped to a goroutine does
// not inherit the spawning function's held locks.
func bodies(outer *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{outer}
	ast.Inspect(outer, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// event is one position-ordered happening inside a CFG node.
type event struct {
	pos   token.Pos
	kind  int    // eventAccess, eventLock, eventUnlock
	guard string // mutex name
	field string // for accesses
}

const (
	eventAccess = iota
	eventLock
	eventUnlock
)

func checkBody(pass *lint.Pass, body *ast.BlockStmt, guards map[*types.Var]string, all map[string]bool) {
	if !touchesGuarded(pass.TypesInfo, body, guards) {
		return
	}
	g := lint.BuildCFG(body)
	events := make([][]event, len(g.Blocks))
	for i, blk := range g.Blocks {
		for _, node := range blk.Nodes {
			events[i] = append(events[i], nodeEvents(pass.TypesInfo, node, guards)...)
		}
		sort.SliceStable(events[i], func(a, b int) bool {
			return events[i][a].pos < events[i][b].pos
		})
	}

	// Forward must-analysis: IN[b] = ∩ OUT[preds]; unreached blocks
	// stay at top (all guards held) so dead code is never flagged.
	preds := make([][]int, len(g.Blocks))
	for i, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], i)
		}
	}
	top := func() map[string]bool {
		s := make(map[string]bool, len(all))
		for n := range all {
			s[n] = true
		}
		return s
	}
	in := make([]map[string]bool, len(g.Blocks))
	out := make([]map[string]bool, len(g.Blocks))
	for i := range g.Blocks {
		in[i], out[i] = top(), top()
	}
	in[g.Entry.Index] = make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for i := range g.Blocks {
			if g.Blocks[i] != g.Entry {
				newIn := top()
				for _, p := range preds[i] {
					for n := range newIn {
						if !out[p][n] {
							delete(newIn, n)
						}
					}
				}
				if len(preds[i]) > 0 && !sameSet(newIn, in[i]) {
					in[i] = newIn
					changed = true
				}
			}
			newOut := transfer(in[i], events[i])
			if !sameSet(newOut, out[i]) {
				out[i] = newOut
				changed = true
			}
		}
	}

	for i := range g.Blocks {
		held := copySet(in[i])
		for _, e := range events[i] {
			switch e.kind {
			case eventLock:
				held[e.guard] = true
			case eventUnlock:
				delete(held, e.guard)
			case eventAccess:
				if !held[e.guard] {
					pass.Reportf(e.pos,
						"field %s is `// guarded by %s` but accessed without holding %s",
						e.field, e.guard, e.guard)
				}
			}
		}
	}
}

func transfer(in map[string]bool, events []event) map[string]bool {
	held := copySet(in)
	for _, e := range events {
		switch e.kind {
		case eventLock:
			held[e.guard] = true
		case eventUnlock:
			delete(held, e.guard)
		}
	}
	return held
}

func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k, v := range s {
		if v {
			c[k] = true
		}
	}
	return c
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// touchesGuarded cheaply pre-screens the body (excluding nested
// literals, which get their own pass) for any guarded-field access.
func touchesGuarded(info *types.Info, body *ast.BlockStmt, guards map[*types.Var]string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if v, ok := info.Uses[sel.Sel].(*types.Var); ok {
				if _, ok := guards[v]; ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// nodeEvents extracts the node's lock/unlock calls and guarded-field
// accesses in source order, skipping nested function literals (separate
// scopes) and the effects — but not the argument accesses — of deferred
// calls.
func nodeEvents(info *types.Info, node ast.Node, guards map[*types.Var]string) []event {
	var evts []event
	_, isDefer := node.(*ast.DeferStmt)
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body is analyzed as its own function
		case *ast.CallExpr:
			if name, guard, ok := lockCall(n); ok {
				kind := eventLock
				if name == "Unlock" || name == "RUnlock" {
					kind = eventUnlock
				}
				if isDefer && kind == eventUnlock {
					return true // defer mu.Unlock() releases at return, not here
				}
				if !isDefer || kind != eventLock {
					evts = append(evts, event{pos: n.Pos(), kind: kind, guard: guard})
				}
				return true
			}
		case *ast.SelectorExpr:
			if v, ok := info.Uses[n.Sel].(*types.Var); ok {
				if guard, ok := guards[v]; ok {
					evts = append(evts, event{pos: n.Sel.Pos(), kind: eventAccess, guard: guard, field: n.Sel.Name})
				}
			}
		}
		return true
	})
	return evts
}

// lockCall matches x.Lock/RLock/Unlock/RUnlock() and returns the method
// name and the final name of x ("mu" in s.shards[i].mu.Lock()). The
// match is by name, consistent with the guarded-by convention.
func lockCall(call *ast.CallExpr) (method, guard string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return sel.Sel.Name, x.Sel.Name, true
	case *ast.Ident:
		return sel.Sel.Name, x.Name, true
	}
	return "", "", false
}
