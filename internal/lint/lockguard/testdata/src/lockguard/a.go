package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++ // held; clean
	c.mu.Unlock()
}

func (c *counter) incDeferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // deferred unlock runs at return; still held here
}

func (c *counter) bad() int {
	return c.n // want `field n is .// guarded by mu. but accessed without holding mu`
}

func (c *counter) afterUnlock() int {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	return c.n // want `field n is .// guarded by mu. but accessed without holding mu`
}

// branchy locks on only one path: the join must not count the lock.
func (c *counter) branchy(lock bool) int {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n // want `field n is .// guarded by mu. but accessed without holding mu`
}

// inGoroutine: the closure runs later, without the spawner's lock.
func (c *counter) inGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `field n is .// guarded by mu. but accessed without holding mu`
	}()
}

func (c *counter) suppressed() int {
	return c.n //lint:allow lockguard snapshot read; staleness is acceptable here
}

// loadLocked asserts the caller holds the guard.
func (c *counter) loadLocked() int {
	return c.n // *Locked convention; clean
}

type table struct {
	rw   sync.RWMutex
	rows map[string]int // guarded by rw
}

func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k] // read lock counts; clean
}

func (t *table) unlocked(k string) int {
	return t.rows[k] // want `field rows is .// guarded by rw. but accessed without holding rw`
}

// nested access through another struct still matches by guard name: the
// convention documents which mutex, wherever it lives.
type owner struct {
	mu    sync.Mutex
	inner *counter
}

func (o *owner) touchInner() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.n++ // o.mu held; name-based match satisfies `guarded by mu`
}
