package lockguard

// Test files are exempt: tests routinely poke guarded state
// single-threaded.
func testOnlyAccess(c *counter) int {
	return c.n
}
