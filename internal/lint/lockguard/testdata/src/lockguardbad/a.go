// Fixture with a malformed `// guarded by` — no mutex name. Loaded by
// a custom test; a want comment on the same line would itself become
// the directive's argument.
package lockguardbad

import "sync"

type broken struct {
	mu sync.Mutex
	n  int // guarded by
}
