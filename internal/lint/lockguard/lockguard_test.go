package lockguard

import (
	"path/filepath"
	"strings"
	"testing"

	"modeldata/internal/lint"
	"modeldata/internal/lint/linttest"
)

func TestLockGuard(t *testing.T) {
	linttest.Run(t, Analyzer, "lockguard")
}

// TestMalformedDirective pins the diagnostic for a `// guarded by` with
// no mutex name.
func TestMalformedDirective(t *testing.T) {
	dir := filepath.Join("testdata", "src", "lockguardbad")
	pkg, err := lint.LoadDir(dir, "modeldatalint.test/lockguardbad")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{Analyzer})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}
	var malformed int
	for _, f := range findings {
		if strings.Contains(f.Message, "`// guarded by` needs a mutex name") {
			malformed++
		}
	}
	if malformed != 1 {
		t.Errorf("want 1 malformed-directive diagnostic, got %d in:\n%v", malformed, findings)
	}
}
