// Package boundedgrowth flags writes that grow maps and slices with no
// bound on objects that outlive a request: package-level variables and
// fields of long-lived structs.
//
// This is the Session.bundles bug class PR 7 fixed by hand — a
// per-session map fed on the request path that grew for the life of the
// server — promoted to a compile-time invariant. A struct counts as
// long-lived when it carries a sync.Mutex/RWMutex field or any
// `// guarded by` annotation: in this repo, synchronization on a struct
// is precisely the marker that it is shared and outlives any one
// request.
//
// Flagged shapes, outside _test.go files and init functions:
//
//	s.sessions[k] = v            // map insert on a long-lived struct
//	s.log = append(s.log, line)  // self-append on a long-lived struct
//	registry[name] = r           // package-level map insert
//
// The sanctioned ways out: route the data through internal/lru (the
// bounded, evicting cache built for exactly this), or document the
// bound where the field is declared:
//
//	spans []*Span // bounded by -trace ring capacity
//
// A `// bounded by` with no reason is itself a diagnostic. Slice
// index-assignment is never flagged (it cannot grow the backing array),
// and structs without synchronization are presumed request-scoped.
package boundedgrowth

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"modeldata/internal/lint"
)

// Analyzer is the boundedgrowth rule.
var Analyzer = &lint.Analyzer{
	Name: "boundedgrowth",
	Doc: "flags unbounded map/slice growth on package-level vars and long-lived structs; " +
		"route through internal/lru or annotate `// bounded by <reason>`",
	// internal/lru IS the eviction mechanism the rule points at;
	// internal/colstore's buffers are bounded by segment geometry
	// (rows-per-segment and footer-declared block sizes), which its
	// `// bounded by` annotations document case by case.
	DefaultAllow: []string{"internal/lru", "internal/colstore"},
	Run:          run,
}

func run(pass *lint.Pass) error {
	info := pass.TypesInfo
	bounded, badBounded := lint.FieldDirectives(info, pass.Files, lint.BoundedByDirective)
	guarded, _ := lint.FieldDirectives(info, pass.Files, lint.GuardedByDirective)
	pkgBounded, badVarBounded := lint.VarDirectives(info, pass.Files, lint.BoundedByDirective)
	for _, pos := range append(badBounded, badVarBounded...) {
		pass.Reportf(pos, "`// bounded by` needs a reason: say what bounds the growth")
	}

	tracked := trackedFields(info, pass.Files, bounded, guarded)
	pkgVars := packageVars(info, pass.Files, pkgBounded)
	if len(tracked) == 0 && len(pkgVars) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Name.Name == "init" && fn.Recv == nil {
				continue // init runs once; its writes are bounded by program structure
			}
			checkBody(pass, fn.Body, tracked, pkgVars)
		}
	}
	return nil
}

// trackedFields returns the map/slice fields of long-lived structs that
// carry no `// bounded by` annotation.
func trackedFields(info *types.Info, files []*ast.File, bounded, guarded map[*types.Var]string) map[*types.Var]bool {
	tracked := make(map[*types.Var]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			if !longLived(info, st, guarded) {
				return true
			}
			for _, field := range st.Fields.List {
				t := lint.TypeOf(info, field.Type)
				if t == nil || !growable(t) {
					continue
				}
				for _, name := range field.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if _, ok := bounded[v]; ok {
						continue
					}
					tracked[v] = true
				}
			}
			return true
		})
	}
	return tracked
}

// longLived reports whether the struct carries a mutex field or any
// guarded-by annotation — the repo's markers for shared state that
// outlives a request.
func longLived(info *types.Info, st *ast.StructType, guarded map[*types.Var]string) bool {
	for _, field := range st.Fields.List {
		if isMutex(lint.TypeOf(info, field.Type)) {
			return true
		}
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				if _, ok := guarded[v]; ok {
					return true
				}
			}
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

func growable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

// packageVars returns the unannotated package-level map/slice vars.
func packageVars(info *types.Info, files []*ast.File, pkgBounded map[*types.Var]string) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok || !growable(v.Type()) {
						continue
					}
					if _, ok := pkgBounded[v]; ok {
						continue
					}
					out[v] = true
				}
			}
		}
	}
	return out
}

func checkBody(pass *lint.Pass, body *ast.BlockStmt, tracked, pkgVars map[*types.Var]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					checkMapWrite(pass, ix, tracked, pkgVars)
					continue
				}
				if len(n.Lhs) != len(n.Rhs) {
					continue
				}
				if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isAppend(pass.TypesInfo, call) {
					checkGrowTarget(pass, lhs, "append", tracked, pkgVars)
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				checkMapWrite(pass, ix, tracked, pkgVars)
			}
		}
		return true
	})
}

// checkMapWrite flags `x[k] = v` (or `x[k]++`, `x[k] += v`) when x is a
// tracked map: inserting under a fresh key grows it.
func checkMapWrite(pass *lint.Pass, ix *ast.IndexExpr, tracked, pkgVars map[*types.Var]bool) {
	t := lint.TypeOf(pass.TypesInfo, ix.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return // slice index-assignment cannot grow the backing array
	}
	checkGrowTarget(pass, ix.X, "map insert", tracked, pkgVars)
}

// checkGrowTarget resolves the written expression to a tracked field or
// package var and reports the growth.
func checkGrowTarget(pass *lint.Pass, target ast.Expr, how string, tracked, pkgVars map[*types.Var]bool) {
	switch e := ast.Unparen(target).(type) {
	case *ast.SelectorExpr:
		v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		if ok && tracked[v] {
			pass.Reportf(e.Pos(),
				"%s grows field %s of a long-lived struct without bound; route it through internal/lru or annotate the field `// bounded by <reason>`",
				how, e.Sel.Name)
		}
	case *ast.Ident:
		v, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if ok && pkgVars[v] {
			pass.Reportf(e.Pos(),
				"%s grows package-level %s without bound outside init; route it through internal/lru or annotate the var `// bounded by <reason>`",
				how, e.Name)
		}
	}
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}
