package boundedgrowth

// Test files may grow whatever they like: the process is ephemeral.
func testOnlyGrowth() {
	registry["test"] = nil
}
