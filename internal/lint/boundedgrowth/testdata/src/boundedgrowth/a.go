package boundedgrowth

import "sync"

// server is long-lived: it carries a mutex.
type server struct {
	mu       sync.Mutex
	sessions map[string]*session // an unbounded cache waiting to happen
	log      []string
	ring     []string // bounded by fixed ring capacity set at construction
	byID     map[int]string
	hits     map[string]int
}

// session is long-lived via a guarded-by annotation, no mutex of its
// own (the owning server's mu guards it).
type session struct {
	bundles map[string]int // guarded by mu
}

// value structs without synchronization are request-scoped; growth is
// the caller's problem.
type scratch struct {
	rows map[string]int
}

// registry is package-level and unannotated.
var registry = map[string]*server{}

// seeds is package-level but documents its bound.
var seeds = map[string]int{} // bounded by the fixed experiment table

func init() {
	registry["boot"] = nil // init runs once; not flagged
	seeds["default"] = 1
}

func (s *server) insert(k string, v *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[k] = v // want `map insert grows field sessions of a long-lived struct`
}

func (s *server) appendLog(line string) {
	s.log = append(s.log, line) // want `append grows field log of a long-lived struct`
}

func (s *server) count(k string) {
	s.hits[k]++ // want `map insert grows field hits of a long-lived struct`
}

func (s *server) rotate(i int, v string) {
	s.ring[i] = v // slice index-assign cannot grow; clean
}

func (s *server) allow(k string, v *session) {
	s.sessions[k] = v //lint:allow boundedgrowth fixture shows the escape hatch
}

func (sc *scratch) fill(k string, v int) {
	sc.rows[k] = v // request-scoped struct; clean
}

func (se *session) bundle(k string) {
	se.bundles[k]++ // want `map insert grows field bundles of a long-lived struct`
}

func register(name string, s *server) {
	registry[name] = s // want `map insert grows package-level registry without bound outside init`
}

func seed(name string) {
	seeds[name] = 0 // annotated with its bound; clean
}

func other(m map[string]int, k string) {
	m[k] = 1 // a parameter, not a tracked field or package var; clean
}
