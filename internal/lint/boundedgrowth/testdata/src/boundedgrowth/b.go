package boundedgrowth

import "sync"

// tracer documents its bound in a field doc comment rather than a line
// comment; both placements count.
type tracer struct {
	mu sync.Mutex
	// bounded by the -trace ring capacity; oldest spans evicted
	spans []string
}

func (tr *tracer) record(s string) {
	tr.spans = append(tr.spans, s) // doc-comment bound; clean
}
