// Fixture with malformed `// bounded by` directives — no reason given.
// Loaded by a custom test (not a want-comment run: the want text would
// itself become the directive's argument).
package boundedgrowthbad

import "sync"

type cache struct {
	mu      sync.Mutex
	entries map[string]int // bounded by
}

// bounded by:
var index = map[string]int{}
