package boundedgrowth

import (
	"path/filepath"
	"strings"
	"testing"

	"modeldata/internal/lint"
	"modeldata/internal/lint/linttest"
)

func TestBoundedGrowth(t *testing.T) {
	linttest.Run(t, Analyzer, "boundedgrowth")
}

// TestMalformedDirective pins the diagnostic for a `// bounded by` with
// no reason, on a field and on a package-level var.
func TestMalformedDirective(t *testing.T) {
	dir := filepath.Join("testdata", "src", "boundedgrowthbad")
	pkg, err := lint.LoadDir(dir, "modeldatalint.test/boundedgrowthbad")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{Analyzer})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}
	var malformed int
	for _, f := range findings {
		if strings.Contains(f.Message, "`// bounded by` needs a reason") {
			malformed++
		}
	}
	if malformed != 2 {
		t.Errorf("want 2 malformed-directive diagnostics (field + package var), got %d in:\n%v",
			malformed, findings)
	}
}
