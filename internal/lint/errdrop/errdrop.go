// Package errdrop flags discarded error returns: `_ =` assignments and
// bare call statements whose error result vanishes.
//
// PR 5's silent-failure sweep showed what these hide — a checkpoint
// write that never happened, a trace file half-flushed — so outside
// test files every dropped error must either be handled or carry a
// //lint:allow errdrop with the reason the drop is safe.
//
// Two shapes are flagged:
//
//	f()          // bare call, error result ignored
//	_ = f()      // explicit discard
//
// A partial discard like `v, _ := f()` is NOT flagged: naming what you
// keep makes the blank visible and reviewable at the call site. Also
// exempt: deferred and go'd calls (the `defer f.Close()` idiom — the
// error has nowhere to go), the fmt Print family (this repo prints to
// stdout and strings.Builder), and methods on strings/bytes/hash types,
// whose errors are documented to be always nil.
//
// The suggested fix (`modeldatalint -fix`) rewrites the statement into
// the checked-and-logged form, adding the "log" import if needed:
//
//	if err := f(); err != nil {
//		log.Printf("ignored error: %v", err)
//	}
package errdrop

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"modeldata/internal/lint"
)

// Analyzer is the errdrop rule.
var Analyzer = &lint.Analyzer{
	Name: "errdrop",
	Doc: "flags discarded error returns (`_ =` and bare calls) outside tests and annotated " +
		"sites (fix: rewrite into the checked-and-logged form)",
	Run: run,
}

var printFamily = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

// alwaysNilPkgs declare their methods' errors always nil
// (strings.Builder, bytes.Buffer, hash.Hash).
var alwaysNilPkgs = map[string]bool{"strings": true, "bytes": true, "hash": true}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkBareCall(pass, file, n)
			case *ast.AssignStmt:
				checkBlankAssign(pass, file, n)
			}
			return true
		})
	}
	return nil
}

// checkBareCall flags an expression statement that silently drops an
// error result.
func checkBareCall(pass *lint.Pass, file *ast.File, stmt *ast.ExprStmt) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	n, lastIsError := errorResults(pass.TypesInfo, call)
	if !lastIsError || exempt(pass.TypesInfo, call) {
		return
	}
	edits := loggedFormEdits(pass, file, stmt.Pos(), stmt.Pos(), stmt.End(), n)
	pass.ReportFixf(stmt.Pos(), edits,
		"error returned by %s is silently dropped (bare call); handle it, log it, or annotate //lint:allow errdrop",
		exprString(pass.Fset, call.Fun))
}

// checkBlankAssign flags `_ = expr` / `_, _ = f()` where the discarded
// value (or the call's last result) is an error.
func checkBlankAssign(pass *lint.Pass, file *ast.File, stmt *ast.AssignStmt) {
	if stmt.Tok != token.ASSIGN || len(stmt.Rhs) != 1 {
		return
	}
	for _, lhs := range stmt.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			return // partial discards name what they keep; not flagged
		}
	}
	rhs := ast.Unparen(stmt.Rhs[0])
	if call, ok := rhs.(*ast.CallExpr); ok {
		n, lastIsError := errorResults(pass.TypesInfo, call)
		if !lastIsError || exempt(pass.TypesInfo, call) {
			return
		}
		// Rewrite `_ = f()` into the logged form by replacing the
		// blanks with error binders.
		edits := loggedFormEdits(pass, file, stmt.Pos(), call.Pos(), stmt.End(), n)
		pass.ReportFixf(stmt.Pos(), edits,
			"error from %s discarded with _ =; handle it, log it, or annotate //lint:allow errdrop",
			exprString(pass.Fset, call.Fun))
		return
	}
	if isErrorType(lint.TypeOf(pass.TypesInfo, rhs)) {
		pass.Reportf(stmt.Pos(),
			"error value discarded with _ =; handle it, log it, or annotate //lint:allow errdrop")
	}
}

// loggedFormEdits builds the checked-and-logged rewrite: the text from
// stmtPos up to callPos (the `_ = ` prefix, or nothing for a bare call)
// becomes the if-binder, and the closing logging block lands after the
// statement. nResults underscores all but the trailing error.
func loggedFormEdits(pass *lint.Pass, file *ast.File, stmtPos, callPos, stmtEnd token.Pos, nResults int) []lint.TextEdit {
	binder := "if " + strings.Repeat("_, ", nResults-1) + "err := "
	edits := []lint.TextEdit{
		{Pos: stmtPos, End: callPos, NewText: binder},
		{Pos: stmtEnd, NewText: "; err != nil {\n\tlog.Printf(\"ignored error: %v\", err)\n}", Indent: true},
	}
	if e, ok := addImportEdit(file, "log"); ok {
		edits = append(edits, e)
	}
	return edits
}

// addImportEdit returns the edit that adds `"path"` to the file's
// imports, or ok=false when it is already imported.
func addImportEdit(file *ast.File, path string) (lint.TextEdit, bool) {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"`+path+`"` {
			return lint.TextEdit{}, false
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Rparen.IsValid() {
			return lint.TextEdit{Pos: gd.Rparen, NewText: "\t\"" + path + "\"\n"}, true
		}
		return lint.TextEdit{Pos: gd.End(), NewText: "\nimport \"" + path + "\""}, true
	}
	return lint.TextEdit{Pos: file.Name.End(), NewText: "\n\nimport \"" + path + "\""}, true
}

// errorResults reports how many results the call has and whether the
// last one is an error.
func errorResults(info *types.Info, call *ast.CallExpr) (n int, lastIsError bool) {
	t := lint.TypeOf(info, call)
	if t == nil {
		return 0, false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return 0, false
		}
		return tuple.Len(), isErrorType(tuple.At(tuple.Len() - 1).Type())
	}
	return 1, isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// exempt reports whether the call's dropped error is sanctioned: the
// fmt Print family, or a method on a type from a package documented to
// always return nil errors.
func exempt(info *types.Info, call *ast.CallExpr) bool {
	if pkg, name := lint.CalleePkgFunc(info, call); pkg == "fmt" && printFamily[name] {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// The selection's receiver is the static type at the call site
	// (hash.Hash32 for h.Write), not where the method was declared
	// (io.Writer) — the site type is what the always-nil contract is
	// documented on.
	selection := info.Selections[sel]
	if selection == nil {
		return false
	}
	rt := selection.Recv()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return alwaysNilPkgs[named.Obj().Pkg().Path()]
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "call"
	}
	return buf.String()
}
