package errdrop

import (
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"strings"
)

func works() error { return nil }

func pair() (int, error) { return 0, errors.New("x") }

func noError() int { return 1 }

// handled errors and non-error calls are clean.
func clean() {
	if err := works(); err != nil {
		log.Printf("works: %v", err)
	}
	v, err := pair()
	if err != nil {
		log.Printf("pair: %v", err)
	}
	_ = v
	noError()
	fmt.Println("print family errors are documented noise") // exempt
	var b strings.Builder
	b.WriteString("always-nil error") // exempt: strings methods never fail
	h := crc32.NewIEEE()
	h.Write([]byte("hash.Hash writes never fail")) // exempt: hash package
}

// partial discards name what they keep and are not flagged.
func partial() {
	v, _ := pair()
	_ = v
}

// defer and go statements have nowhere to put the error.
func deferred(f *os.File) {
	defer f.Close()
	go works()
}

func bare() {
	works() // want `error returned by works is silently dropped`
}

func blankAssign() {
	_ = works() // want `error from works discarded with _ =`
}

func blankPair() {
	_, _ = pair() // want `error from pair discarded with _ =`
}

func blankValue() {
	err := works()
	_ = err // want `error value discarded with _ =`
}

func suppressed() {
	_ = works() //lint:allow errdrop fixture demonstrates a sanctioned drop
}
