// Fixture for the errdrop suggested fix: every diagnostic here carries
// a rewrite into the checked-and-logged form. The "log" import must be
// added by the fix — this file deliberately starts without it.
package errdropfix

import (
	"errors"
)

func works() error { return nil }

func pair() (int, error) { return 0, errors.New("x") }

func bare() {
	works() // want `error returned by works is silently dropped`
}

func blank() {
	_ = works() // want `error from works discarded with _ =`
}

func blankPair() {
	_, _ = pair() // want `error from pair discarded with _ =`
}

func nested() {
	if true {
		works() // want `error returned by works is silently dropped`
	}
}
