package errdrop

import (
	"testing"

	"modeldata/internal/lint/linttest"
)

func TestErrDrop(t *testing.T) {
	linttest.Run(t, Analyzer, "errdrop")
}

func TestErrDropFixturesAreFixable(t *testing.T) {
	linttest.RunFix(t, Analyzer, "errdropfix")
}
