package lint

import (
	"go/ast"
	"go/types"
)

// CalleePkgFunc resolves call's callee to a package-level function and
// returns the defining package path and function name, or "", "" when
// the callee is anything else (a method, a local function value, a
// builtin, an unresolved identifier).
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", ""
	}
	if _, ok := info.Uses[ident].(*types.PkgName); !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// IsFloat reports whether t is a floating-point type, including
// untyped float constants. Complex types are excluded: the repo does
// not use them, and equality on them is a different discussion.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// TypeOf returns the type of e recorded during checking, or nil.
func TypeOf(info *types.Info, e ast.Expr) types.Type {
	return info.Types[e].Type
}

// IsContextContext reports whether t is context.Context.
func IsContextContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ObjectOf resolves e to the object it names when e is a plain
// identifier, or nil.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[ident]
}

// UsesObject reports whether any identifier under n resolves to obj.
func UsesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if ident, ok := n.(*ast.Ident); ok && info.Uses[ident] == obj {
			found = true
		}
		return !found
	})
	return found
}
