package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFuncCFG parses src (a file containing func f) and builds the CFG
// of f's body.
func buildFuncCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_input.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatalf("no func f in src")
	return nil
}

// markerSite locates the unique node containing a call to the named
// function and returns its block and index within the block.
func markerSite(t *testing.T, g *CFG, name string) (*Block, int) {
	t.Helper()
	var blk *Block
	idx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if containsCall(n, name) {
				if blk != nil {
					t.Fatalf("marker %s() appears in more than one block node", name)
				}
				blk, idx = b, i
			}
		}
	}
	if blk == nil {
		t.Fatalf("marker %s() not found in any block", name)
	}
	return blk, idx
}

func containsCall(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// reachesExitAvoiding reports whether control can flow from just after
// the "from" marker to the exit block without executing a node that
// contains a call to avoid ("" avoids nothing). This is exactly the
// query spanleak asks with avoid = the End call.
func reachesExitAvoiding(t *testing.T, g *CFG, from, avoid string) bool {
	t.Helper()
	blk, idx := markerSite(t, g, from)
	type at struct {
		b *Block
		i int
	}
	seen := map[*Block]bool{}
	stack := []at{{blk, idx + 1}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blocked := false
		for i := cur.i; i < len(cur.b.Nodes); i++ {
			if avoid != "" && containsCall(cur.b.Nodes[i], avoid) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		if cur.b == g.Exit {
			return true
		}
		for _, s := range cur.b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, at{s, 0})
			}
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	g := buildFuncCFG(t, `func f() { a(); b() }`)
	if !reachesExitAvoiding(t, g, "a", "") {
		t.Error("straight line: a should reach exit")
	}
	if reachesExitAvoiding(t, g, "a", "b") {
		t.Error("straight line: a should not reach exit without passing b")
	}
}

func TestCFGIfEarlyReturn(t *testing.T) {
	g := buildFuncCFG(t, `func f(c bool) { a(); if c { return }; b() }`)
	if !reachesExitAvoiding(t, g, "a", "b") {
		t.Error("early return should bypass b")
	}
}

func TestCFGIfElseBothCovered(t *testing.T) {
	g := buildFuncCFG(t, `func f(c bool) { a(); if c { b() } else { b() } }`)
	if reachesExitAvoiding(t, g, "a", "b") {
		t.Error("both branches call b; exit should be unreachable avoiding it")
	}
}

func TestCFGForLoopBreak(t *testing.T) {
	g := buildFuncCFG(t, `func f(c bool) { a(); for { if c { break } }; b() }`)
	if reachesExitAvoiding(t, g, "a", "b") {
		t.Error("only path out of the loop runs through b")
	}
}

func TestCFGInfiniteLoop(t *testing.T) {
	g := buildFuncCFG(t, `func f() { a(); for { c() } }`)
	if reachesExitAvoiding(t, g, "a", "") {
		t.Error("a for-loop without cond or break never reaches exit")
	}
}

func TestCFGRangeMayRunZeroTimes(t *testing.T) {
	g := buildFuncCFG(t, `func f(xs []int) { a(); for range xs { b() } }`)
	if !reachesExitAvoiding(t, g, "a", "b") {
		t.Error("range over an empty slice skips the body")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g := buildFuncCFG(t, `func f(c bool) { a(); if c { panic("x") }; b() }`)
	if !reachesExitAvoiding(t, g, "a", "b") {
		t.Error("panic path should reach exit without b")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildFuncCFG(t, `func f(x int) {
		a()
		switch x {
		case 1:
			fallthrough
		case 2:
			b()
		default:
			b()
		}
	}`)
	if reachesExitAvoiding(t, g, "a", "b") {
		t.Error("every switch path (incl. fallthrough) runs through b")
	}
}

func TestCFGSwitchWithoutDefault(t *testing.T) {
	g := buildFuncCFG(t, `func f(x int) { a(); switch x { case 1: b() } }`)
	if !reachesExitAvoiding(t, g, "a", "b") {
		t.Error("a switch without default can match nothing")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildFuncCFG(t, `func f(ch chan int) {
		a()
		select {
		case <-ch:
			b()
		default:
			b()
		}
	}`)
	if reachesExitAvoiding(t, g, "a", "b") {
		t.Error("both select arms run through b")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildFuncCFG(t, `func f(c bool) {
		a()
	outer:
		for i := 0; i < 3; i++ {
			for {
				if c {
					continue outer
				}
				break outer
			}
		}
		d()
	}`)
	if !reachesExitAvoiding(t, g, "a", "") {
		t.Error("labeled break should exit both loops")
	}
	if reachesExitAvoiding(t, g, "a", "d") {
		t.Error("all paths out of the loops pass through d")
	}
}

// TestCFGNodesAppearOnce guards the walking contract: visiting every
// block's Nodes visits each marker exactly once even when the marker
// sits inside a control header.
func TestCFGNodesAppearOnce(t *testing.T) {
	g := buildFuncCFG(t, `func f(xs []int) {
		if a() {
			b()
		}
		for i := 0; c(i); i++ {
			d()
		}
		switch e() {
		case 1:
		}
	}`)
	for _, m := range []string{"a", "b", "c", "d", "e"} {
		markerSite(t, g, m) // fails if absent or duplicated
	}
}
