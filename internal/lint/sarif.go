package lint

import (
	"encoding/json"
	"io"
)

// This file renders findings as a SARIF-style document (Static Analysis
// Results Interchange Format, v2.1.0 shape) so CI can archive lint
// results as a machine-readable artifact and annotate PRs from it. Only
// the subset of SARIF the repo consumes is emitted — tool.driver.rules
// and results with ruleId/message/locations — but the field names and
// nesting follow the spec, so standard SARIF tooling reads it.

// SARIFLog is the document root.
type SARIFLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []SARIFRun `json:"runs"`
}

type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

type SARIFDriver struct {
	Name  string      `json:"name"`
	Rules []SARIFRule `json:"rules"`
}

type SARIFRule struct {
	ID               string    `json:"id"`
	ShortDescription SARIFText `json:"shortDescription"`
}

type SARIFText struct {
	Text string `json:"text"`
}

type SARIFResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SARIFText       `json:"message"`
	Locations []SARIFLocation `json:"locations"`
	// Fix carries the suggested fix's resolved edits when the
	// diagnostic is mechanical; `modeldatalint -fix` applies the same
	// edits. This is an extension field, not SARIF's fixes shape.
	Fix *Fix `json:"fix,omitempty"`
}

type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF assembles the document for one run of analyzers producing
// findings. Findings keep RunAnalyzers' deterministic order.
func SARIF(analyzers []*Analyzer, findings []Finding) *SARIFLog {
	driver := SARIFDriver{Name: "modeldatalint", Rules: []SARIFRule{}}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, SARIFRule{
			ID:               a.Name,
			ShortDescription: SARIFText{Text: a.Doc},
		})
	}
	results := []SARIFResult{}
	for _, f := range findings {
		results = append(results, SARIFResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: SARIFText{Text: f.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysicalLocation{
					ArtifactLocation: SARIFArtifactLocation{URI: f.Position.Filename},
					Region: SARIFRegion{
						StartLine:   f.Position.Line,
						StartColumn: f.Position.Column,
					},
				},
			}},
			Fix: f.Fix,
		})
	}
	return &SARIFLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs:    []SARIFRun{{Tool: SARIFTool{Driver: driver}, Results: results}},
	}
}

// WriteSARIF encodes the SARIF document for findings onto w.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SARIF(analyzers, findings))
}
