package rngsource_test

import (
	"testing"

	"modeldata/internal/lint/linttest"
	"modeldata/internal/lint/rngsource"
)

func TestRngsource(t *testing.T) {
	linttest.Run(t, rngsource.Analyzer, "a")
}
