// Package a exercises the rngsource analyzer: forbidden randomness
// imports, wall-clock reads, and their sanctioned suppressions.
package a

import (
	"math/rand" // want `import of math/rand breaks seed-reproducibility`
	"time"
)

// BadSeed seeds from the wall clock, the classic reproducibility bug.
func BadSeed() int64 {
	return time.Now().UnixNano() // want `time.Now\(\) is a nondeterministic input`
}

// BadGlobal draws from the banned global source.
func BadGlobal() float64 {
	return rand.Float64()
}

// TimedRun measures wall time only; the directive documents that and
// suppresses the diagnostic.
func TimedRun(work func()) time.Duration {
	start := time.Now() //lint:allow rngsource measurement-only, never flows into results
	work()
	return time.Since(start)
}

// AlsoAllowedAbove shows the leading-directive placement.
func AlsoAllowedAbove() time.Time {
	//lint:allow rngsource measurement-only timestamp for log lines
	return time.Now()
}
