// Package rngsource forbids ambient nondeterminism sources: imports of
// math/rand and crypto/rand, and wall-clock reads via time.Now().
//
// Every random draw in this repository must come from an explicit,
// pre-split rng.Stream so that results are bit-identical across runs
// and worker counts (DESIGN.md §4). A math/rand import reintroduces
// hidden global state; crypto/rand is unseedable by construction; and
// time.Now() is the classic back door (seeding from the clock, or
// letting wall-time flow into results). The only compiled-in exception
// besides internal/rng itself is internal/obs/obs.go, where the single
// time.Now() call in the codebase lives behind the obs.Clock seam —
// every measurement-only clock read (span timing, stats elapsed,
// straggler detection) goes through an injectable obs.Clock, so tests
// can freeze time and the lint surface stays one line. Everything else
// needs an inline //lint:allow rngsource with its reason.
package rngsource

import (
	"go/ast"
	"strconv"

	"modeldata/internal/lint"
)

// bannedImports maps each forbidden import path to the remedy named in
// the diagnostic.
var bannedImports = map[string]string{
	"math/rand":    "draw from a pre-split *rng.Stream instead",
	"math/rand/v2": "draw from a pre-split *rng.Stream instead",
	"crypto/rand":  "unseedable randomness can never be reproduced; use internal/rng",
}

// Analyzer is the rngsource rule.
var Analyzer = &lint.Analyzer{
	Name: "rngsource",
	Doc: "forbids math/rand and crypto/rand imports and time.Now() wall-clock reads; " +
		"all randomness must flow through internal/rng streams seeded by the experiment",
	DefaultAllow: []string{
		"modeldata/internal/rng",
		"internal/obs/obs.go",
	},
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s breaks seed-reproducibility: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name := lint.CalleePkgFunc(pass.TypesInfo, call); pkg == "time" && name == "Now" {
				pass.Reportf(call.Pos(),
					"time.Now() is a nondeterministic input (wall-clock seeding or timing leaking into results); "+
						"take the value as a parameter, or //lint:allow rngsource if this is measurement-only")
			}
			return true
		})
	}
	return nil
}
