// Package suite registers the full modeldatalint analyzer set so the
// command-line multichecker and the repo-wide cleanliness test
// (lint_clean_test.go) run exactly the same rules.
package suite

import (
	"modeldata/internal/lint"
	"modeldata/internal/lint/ctxplumb"
	"modeldata/internal/lint/floateq"
	"modeldata/internal/lint/maporder"
	"modeldata/internal/lint/rngsource"
)

// All returns every analyzer in the suite, in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		ctxplumb.Analyzer,
		floateq.Analyzer,
		maporder.Analyzer,
		rngsource.Analyzer,
	}
}
