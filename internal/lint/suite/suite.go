// Package suite registers the full modeldatalint analyzer set so the
// command-line multichecker and the repo-wide cleanliness test
// (lint_clean_test.go) run exactly the same rules.
package suite

import (
	"modeldata/internal/lint"
	"modeldata/internal/lint/boundedgrowth"
	"modeldata/internal/lint/ctxhttp"
	"modeldata/internal/lint/ctxplumb"
	"modeldata/internal/lint/errdrop"
	"modeldata/internal/lint/floateq"
	"modeldata/internal/lint/lockguard"
	"modeldata/internal/lint/maporder"
	"modeldata/internal/lint/rngsource"
	"modeldata/internal/lint/spanleak"
)

// All returns every analyzer in the suite, in stable order: the four
// determinism-era rules first, then the five concurrency-era rules.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		ctxplumb.Analyzer,
		floateq.Analyzer,
		maporder.Analyzer,
		rngsource.Analyzer,
		boundedgrowth.Analyzer,
		ctxhttp.Analyzer,
		errdrop.Analyzer,
		lockguard.Analyzer,
		spanleak.Analyzer,
	}
}
