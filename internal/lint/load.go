package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked unit: a package's non-test and
// in-package test files together, or an external _test package on its
// own.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir           string
	ImportPath    string
	GoFiles       []string
	CgoFiles      []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Imports       []string
	Standard      bool
	Incomplete    bool
	DepOnly       bool
	ForTest       string
	Match         []string
	IgnoredGoFile []string
}

// Load enumerates the packages matching patterns with `go list` run in
// dir, then parses and type-checks each from source. Dependencies —
// including the standard library — are type-checked from source on
// demand by the importer, so no compiled export data and no external
// module is required. Type errors in dependencies are tolerated
// (analysis proceeds on partial information); the repository itself is
// kept compiling by the build job, so its own units check cleanly.
//
// Checking is parallel, keyed by the import graph: the listed packages'
// export-facing halves (GoFiles only) are checked wave by wave in
// topological order, each wave fanning out across GOMAXPROCS workers
// and registering its results with a shared importer; the test-carrying
// units then check fully parallel, importing the already-checked
// results instead of re-checking dependencies from source. The standard
// library still goes through one mutex-serialized source importer —
// srcimporter is not concurrency-safe — but each stdlib package is
// checked at most once per Load, and the module's own units (the bulk
// of the parse+check work after warmup) no longer serialize.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var mod []listedPackage
	for _, lp := range listed {
		if lp.Standard || len(lp.CgoFiles) > 0 {
			continue
		}
		mod = append(mod, lp)
	}

	fset := token.NewFileSet()
	shared := newSharedImporter(fset)

	// Phase 1: check each package's GoFiles-only unit in dependency
	// order so later waves import checked results, not source. The
	// checked *types.Package doubles as the returned unit when the
	// package has no in-package test files.
	pure := make(map[string]*Package, len(mod))
	var pureMu sync.Mutex
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for _, wave := range topoWaves(mod) {
		parallelDo(len(wave), func(i int) {
			lp := wave[i]
			if len(lp.GoFiles) == 0 {
				return
			}
			files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
			if err != nil {
				fail(fmt.Errorf("%s: %w", lp.ImportPath, err))
				return
			}
			pkg := check(fset, shared, lp.ImportPath, files)
			pureMu.Lock()
			pure[lp.ImportPath] = pkg
			pureMu.Unlock()
			if pkg.Types != nil {
				shared.register(lp.ImportPath, pkg.Types)
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
	}

	// Phase 2: build the returned units. Packages with in-package
	// test files re-check GoFiles+TestGoFiles as one unit (the test
	// files see unexported names, so the halves cannot be checked
	// separately); external _test packages are their own unit. Every
	// in-module import resolves through the phase-1 results, so this
	// phase has no ordering constraints and runs fully parallel.
	units := make([][]*Package, len(mod))
	parallelDo(len(mod), func(i int) {
		lp := mod[i]
		var out []*Package
		if len(lp.TestGoFiles) > 0 {
			names := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
			files, err := parseFiles(fset, lp.Dir, names)
			if err != nil {
				fail(fmt.Errorf("%s: %w", lp.ImportPath, err))
				return
			}
			out = append(out, check(fset, shared, lp.ImportPath, files))
		} else if p := pure[lp.ImportPath]; p != nil {
			out = append(out, p)
		}
		if len(lp.XTestGoFiles) > 0 {
			files, err := parseFiles(fset, lp.Dir, lp.XTestGoFiles)
			if err != nil {
				fail(fmt.Errorf("%s_test: %w", lp.ImportPath, err))
				return
			}
			out = append(out, check(fset, shared, lp.ImportPath+"_test", files))
		}
		units[i] = out
	})
	if firstErr != nil {
		return nil, firstErr
	}

	var pkgs []*Package
	for _, u := range units {
		pkgs = append(pkgs, u...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// topoWaves groups the module's packages into dependency waves: every
// package's in-module imports live in strictly earlier waves. An import
// cycle cannot occur in compiling Go code; if the list is somehow
// cyclic anyway, the remainder becomes one final wave and the importer
// falls back to checking those from source.
func topoWaves(mod []listedPackage) [][]listedPackage {
	inMod := make(map[string]bool, len(mod))
	for _, lp := range mod {
		inMod[lp.ImportPath] = true
	}
	deps := make(map[string][]string, len(mod))
	for _, lp := range mod {
		for _, imp := range lp.Imports {
			if inMod[imp] {
				deps[lp.ImportPath] = append(deps[lp.ImportPath], imp)
			}
		}
	}
	placed := make(map[string]bool, len(mod))
	rest := append([]listedPackage{}, mod...)
	var waves [][]listedPackage
	for len(rest) > 0 {
		var wave, next []listedPackage
		for _, lp := range rest {
			ready := true
			for _, d := range deps[lp.ImportPath] {
				if !placed[d] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, lp)
			} else {
				next = append(next, lp)
			}
		}
		if len(wave) == 0 {
			waves = append(waves, next) // cycle: check the rest as one wave
			break
		}
		for _, lp := range wave {
			placed[lp.ImportPath] = true
		}
		waves = append(waves, wave)
		rest = next
	}
	return waves
}

// parallelDo runs f(0..n-1) across up to GOMAXPROCS goroutines and
// waits for all of them.
func parallelDo(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// sharedImporter resolves the module's own import paths from the
// phase-1 checked results and everything else (the standard library)
// through one mutex-serialized source importer. go/types calls
// ImportFrom from as many goroutines as there are units being checked;
// the registry is read-locked and srcimporter — which is not safe for
// concurrent use — is fully serialized, each stdlib package checked at
// most once and cached inside the importer.
type sharedImporter struct {
	mu sync.RWMutex
	// bounded by the module's package graph: at most one entry per
	// import path the load ever touches
	checked map[string]*types.Package // guarded by mu

	srcMu sync.Mutex
	src   types.ImporterFrom
}

func newSharedImporter(fset *token.FileSet) *sharedImporter {
	return &sharedImporter{
		checked: make(map[string]*types.Package),
		src:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

func (si *sharedImporter) register(path string, pkg *types.Package) {
	si.mu.Lock()
	si.checked[path] = pkg
	si.mu.Unlock()
}

func (si *sharedImporter) Import(path string) (*types.Package, error) {
	return si.ImportFrom(path, "", 0)
}

func (si *sharedImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	si.mu.RLock()
	pkg := si.checked[path]
	si.mu.RUnlock()
	if pkg != nil {
		return pkg, nil
	}
	si.srcMu.Lock()
	defer si.srcMu.Unlock()
	return si.src.ImportFrom(path, srcDir, mode)
}

// dirFset and dirImporter are shared across every LoadDir call in the
// process so fixture loads amortize standard-library source checking:
// the first fixture importing net/http pays for it, the rest hit the
// importer's cache.
var (
	dirOnce     sync.Once
	dirFset     *token.FileSet
	dirImporter *sharedImporter
)

// LoadDir parses and type-checks every .go file directly inside dir as
// a single package unit. It is how linttest loads testdata fixture
// packages, which live outside the module's package graph. Imports of
// the form "modeldatalint.test/<name>" resolve to the sibling directory
// <dir>/../<name>, so a fixture can depend on a stub of a module
// package (e.g. a miniature obs) the way analysistest fixtures use
// their testdata GOPATH.
func LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	dirOnce.Do(func() {
		dirFset = token.NewFileSet()
		dirImporter = newSharedImporter(dirFset)
	})
	files, err := parseFiles(dirFset, dir, names)
	if err != nil {
		return nil, err
	}
	imp := &fixtureImporter{
		root:     filepath.Dir(dir),
		fallback: dirImporter,
		loaded:   make(map[string]*types.Package),
	}
	return check(dirFset, imp, importPath, files), nil
}

// LoadDirStrict is LoadDir with type errors surfaced instead of
// tolerated. linttest.RunFix uses it to prove that a fixture rewritten
// by suggested fixes still compiles; imported fixture stubs are still
// checked tolerantly, since fixes never touch them.
func LoadDirStrict(dir, importPath string) (*Package, []error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, []error{err}
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, []error{fmt.Errorf("lint: no .go files in %s", dir)}
	}
	dirOnce.Do(func() {
		dirFset = token.NewFileSet()
		dirImporter = newSharedImporter(dirFset)
	})
	files, err := parseFiles(dirFset, dir, names)
	if err != nil {
		return nil, []error{err}
	}
	imp := &fixtureImporter{
		root:     filepath.Dir(dir),
		fallback: dirImporter,
		loaded:   make(map[string]*types.Package),
	}
	var errs []error
	pkg := checkInto(dirFset, imp, importPath, files, func(err error) {
		errs = append(errs, err)
	})
	return pkg, errs
}

// fixtureImporter resolves "modeldatalint.test/<name>" imports to
// sibling fixture directories under the same testdata/src root,
// delegating everything else to the shared source importer.
type fixtureImporter struct {
	root     string
	fallback types.ImporterFrom
	loaded   map[string]*types.Package
}

const fixturePrefix = "modeldatalint.test/"

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi *fixtureImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if !strings.HasPrefix(path, fixturePrefix) {
		return fi.fallback.ImportFrom(path, srcDir, mode)
	}
	if pkg := fi.loaded[path]; pkg != nil {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, strings.TrimPrefix(path, fixturePrefix))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture import %q: %w", path, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files, err := parseFiles(dirFset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg := check(dirFset, fi, path, files)
	if pkg.Types == nil {
		return nil, fmt.Errorf("lint: fixture import %q did not check", path)
	}
	fi.loaded[path] = pkg.Types
	return pkg.Types, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one unit, tolerating errors: go/types keeps
// recording partial type information after an error, which is enough
// for every analyzer in this suite, and missing information only makes
// analyzers quieter, never wrong.
func check(fset *token.FileSet, imp types.Importer, importPath string, files []*ast.File) *Package {
	return checkInto(fset, imp, importPath, files, func(error) {})
}

// checkInto is check with the type-error sink exposed.
func checkInto(fset *token.FileSet, imp types.Importer, importPath string, files []*ast.File, sink func(error)) *Package {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       sink,
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}
