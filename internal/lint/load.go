package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked unit: a package's non-test and
// in-package test files together, or an external _test package on its
// own.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir           string
	ImportPath    string
	GoFiles       []string
	CgoFiles      []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Standard      bool
	Incomplete    bool
	DepOnly       bool
	ForTest       string
	Match         []string
	IgnoredGoFile []string
}

// Load enumerates the packages matching patterns with `go list` run in
// dir, then parses and type-checks each from source. Dependencies —
// including the standard library — are type-checked from source on
// demand by the importer, so no compiled export data and no external
// module is required. Type errors in dependencies are tolerated
// (analysis proceeds on partial information); the repository itself is
// kept compiling by the build job, so its own units check cleanly.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.CgoFiles) > 0 {
			continue
		}
		units := [][]string{append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)}
		paths := []string{lp.ImportPath}
		if len(lp.XTestGoFiles) > 0 {
			units = append(units, lp.XTestGoFiles)
			paths = append(paths, lp.ImportPath+"_test")
		}
		for i, names := range units {
			if len(names) == 0 {
				continue
			}
			files, err := parseFiles(fset, lp.Dir, names)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", paths[i], err)
			}
			pkgs = append(pkgs, check(fset, imp, paths[i], files))
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses and type-checks every .go file directly inside dir as
// a single package unit. It is how linttest loads testdata fixture
// packages, which live outside the module's package graph.
func LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "source", nil)
	return check(fset, imp, importPath, files), nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one unit, tolerating errors: go/types keeps
// recording partial type information after an error, which is enough
// for every analyzer in this suite, and missing information only makes
// analyzers quieter, never wrong.
func check(fset *token.FileSet, imp types.Importer, importPath string, files []*ast.File) *Package {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(error) {},
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}
