// Package ctxhttp enforces context plumbing and body hygiene at the
// HTTP boundary, where the serving layer (internal/server, cmd/mdshell)
// meets the network.
//
// Flagged, outside _test.go files:
//
//   - package-level http.Get/Post/Head/PostForm and (*http.Client)
//     Get/Post/Head/PostForm: these APIs take no context, so the query
//     they carry cannot be canceled — the mdshell bug this analyzer was
//     built from. Use http.NewRequestWithContext + Do.
//   - http.NewRequest: always context-free; use NewRequestWithContext.
//   - context.Background()/TODO() inside a handler (a function with
//     http.ResponseWriter and *http.Request parameters): the request
//     already has a context; derive from r.Context().
//   - an *http.Response whose Body is never closed in the acquiring
//     function (and which does not escape): each leaked body pins a
//     connection. Discarding the response entirely (`_, err := c.Do`)
//     is the same leak and is flagged too.
//
// Responses that escape — returned or passed on — carry the close
// obligation with them and are not flagged here.
package ctxhttp

import (
	"go/ast"
	"go/types"
	"strings"

	"modeldata/internal/lint"
)

// Analyzer is the ctxhttp rule.
var Analyzer = &lint.Analyzer{
	Name: "ctxhttp",
	Doc: "HTTP calls must thread a context (NewRequestWithContext, r.Context() in handlers) " +
		"and close response bodies",
	Run: run,
}

var contextFree = map[string]bool{"Get": true, "Post": true, "Head": true, "PostForm": true}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkContextFreeCall(pass, call)
			}
			return true
		})
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if handlerShaped(pass.TypesInfo, fn) {
				checkManufacturedContext(pass, fn)
			}
			for _, body := range bodies(fn.Body) {
				checkBodyClose(pass, body)
			}
		}
	}
	return nil
}

// checkContextFreeCall flags the context-free request APIs.
func checkContextFreeCall(pass *lint.Pass, call *ast.CallExpr) {
	if pkg, name := lint.CalleePkgFunc(pass.TypesInfo, call); pkg == "net/http" {
		if contextFree[name] {
			pass.Reportf(call.Pos(),
				"http.%s takes no context, so this request cannot be canceled; use http.NewRequestWithContext and a client's Do",
				name)
			return
		}
		if name == "NewRequest" {
			pass.Reportf(call.Pos(),
				"http.NewRequest builds a context-free request; use http.NewRequestWithContext")
			return
		}
	}
	if name, ok := clientMethod(pass.TypesInfo, call); ok && contextFree[name] {
		pass.Reportf(call.Pos(),
			"(*http.Client).%s takes no context, so this request cannot be canceled; use http.NewRequestWithContext + Do",
			name)
	}
}

// clientMethod resolves call to a method on net/http.Client.
func clientMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != "net/http" || named.Obj().Name() != "Client" {
		return "", false
	}
	return fn.Name(), true
}

// handlerShaped reports whether fn has http.ResponseWriter and
// *http.Request parameters — the handler signature, however embedded.
func handlerShaped(info *types.Info, fn *ast.FuncDecl) bool {
	var hasW, hasR bool
	for _, field := range fn.Type.Params.List {
		t := lint.TypeOf(info, field.Type)
		if t == nil {
			continue
		}
		if isNetHTTPNamed(t, "ResponseWriter") {
			hasW = true
		}
		if p, ok := t.(*types.Pointer); ok && isNetHTTPNamed(p.Elem(), "Request") {
			hasR = true
		}
	}
	return hasW && hasR
}

func isNetHTTPNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == name
}

// checkManufacturedContext flags context.Background/TODO inside a
// handler, closures included: the request context is right there.
func checkManufacturedContext(pass *lint.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := lint.CalleePkgFunc(pass.TypesInfo, call); pkg == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(),
				"handler %s manufactures context.%s; derive it from r.Context() so the client disconnect cancels the work",
				fn.Name.Name, name)
		}
		return true
	})
}

// bodies returns the function body and each nested literal body, each
// checked separately for response-body hygiene.
func bodies(outer *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{outer}
	ast.Inspect(outer, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// checkBodyClose flags *http.Response acquisitions whose Body is never
// closed in this function.
func checkBodyClose(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // the literal's body gets its own checkBodyClose pass
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !returnsResponse(pass.TypesInfo, call) {
			return true
		}
		respExpr := ast.Unparen(assign.Lhs[0])
		id, ok := respExpr.(*ast.Ident)
		if !ok {
			return true // stored into a field: it escapes
		}
		if id.Name == "_" {
			pass.Reportf(assign.Pos(),
				"response is discarded without closing its Body, pinning the connection; bind it and defer resp.Body.Close()")
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		if respEscapes(pass.TypesInfo, body, assign, obj) {
			return true
		}
		if !closesBody(pass.TypesInfo, body, obj) {
			pass.Reportf(assign.Pos(),
				"response body of %s is never closed in this function; defer %s.Body.Close()",
				id.Name, id.Name)
		}
		return true
	})
}

// returnsResponse reports whether the call produces an *http.Response
// from the client APIs (Do/Get/Post/Head/PostForm or the package-level
// helpers).
func returnsResponse(info *types.Info, call *ast.CallExpr) bool {
	if pkg, name := lint.CalleePkgFunc(info, call); pkg == "net/http" && (contextFree[name]) {
		return true
	}
	name, ok := clientMethod(info, call)
	return ok && (name == "Do" || contextFree[name])
}

// respEscapes reports whether the response itself leaves the function —
// returned, passed to a call, or reassigned — taking the close
// obligation with it. Selector uses (resp.Body, resp.StatusCode) stay
// local.
func respEscapes(info *types.Info, body *ast.BlockStmt, def *ast.AssignStmt, obj types.Object) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		defer func() { stack = append(stack, n) }()
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || (info.Uses[id] != obj && info.Defs[id] != obj) {
			return true
		}
		parent := ast.Node(nil)
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			return true // field access stays local
		case *ast.AssignStmt:
			if p == def {
				return true
			}
		case *ast.BinaryExpr:
			return true // resp == nil guards
		}
		escaped = true
		return false
	})
	return escaped
}

// closesBody reports whether body contains obj.Body.Close(), plain or
// deferred, anywhere (closures included — a deferred closure closing
// the body counts).
func closesBody(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "Body" {
			return true
		}
		id, ok := ast.Unparen(inner.X).(*ast.Ident)
		if ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
