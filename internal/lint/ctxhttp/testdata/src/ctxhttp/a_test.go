package ctxhttp

import "net/http"

// Test files are exempt: httptest round-trips use the short forms
// freely.
func testOnlyGet(url string) {
	resp, err := http.Get(url)
	if err != nil {
		return
	}
	resp.Body.Close()
}
