package ctxhttp

import (
	"context"
	"io"
	"net/http"
)

// good threads a context and closes the body — the shape every
// outbound call should have.
func good(ctx context.Context, c *http.Client, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func pkgGet(url string) {
	resp, err := http.Get(url) // want `http.Get takes no context` `response body of resp is never closed`
	if err != nil {
		return
	}
	_ = resp.StatusCode
}

func clientPost(c *http.Client, url string) {
	resp, err := c.Post(url, "application/json", nil) // want `\(\*http.Client\).Post takes no context`
	if err != nil {
		return
	}
	defer resp.Body.Close()
}

func oldRequest(c *http.Client, url string) error {
	req, err := http.NewRequest(http.MethodGet, url, nil) // want `http.NewRequest builds a context-free request`
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// handler manufactures a context instead of deriving from the request.
func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `handler handler manufactures context.Background`
	_ = ctx
	w.WriteHeader(http.StatusOK)
}

// goodHandler derives from the request; clean.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
	w.WriteHeader(http.StatusOK)
}

// background in a non-handler function is ctxplumb's business, not
// ctxhttp's; clean here.
func worker() context.Context {
	return context.Background()
}

// fetch returns the response: the close obligation escapes with it.
func fetch(ctx context.Context, c *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// escapesToCall hands the response to another function, which owns
// closing it; clean.
func escapesToCall(ctx context.Context, c *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return drain(resp)
}

func drain(resp *http.Response) error {
	defer resp.Body.Close()
	_, err := io.Copy(io.Discard, resp.Body)
	return err
}

// fire discards the response wholesale: same leak, flagged.
func fire(ctx context.Context, c *http.Client, url string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	_, _ = c.Do(req) // want `response is discarded without closing its Body`
}

// leaky never closes.
func leaky(ctx context.Context, c *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.Do(req) // want `response body of resp is never closed`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// closedInDefer closes inside a deferred closure; clean.
func closedInDefer(ctx context.Context, c *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		resp.Body.Close()
	}()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func suppressedGet(url string) {
	resp, err := http.Get(url) //lint:allow ctxhttp one-shot tool invocation; no cancellation story
	if err != nil {
		return
	}
	resp.Body.Close()
}
