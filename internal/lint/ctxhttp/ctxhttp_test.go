package ctxhttp

import (
	"testing"

	"modeldata/internal/lint/linttest"
)

func TestCtxHTTP(t *testing.T) {
	linttest.Run(t, Analyzer, "ctxhttp")
}
