// Package lint is a minimal static-analysis framework in the style of
// golang.org/x/tools/go/analysis, built entirely on the standard
// library so that the repository stays dependency-free. It exists to
// enforce, at compile time, the determinism and numeric-safety
// invariants that PRs 1-2 established at run time: all randomness flows
// through pre-split rng substreams, map iteration never leaks its
// nondeterministic order into results, floats are never compared with
// ==, and long-running entry points plumb a context.Context.
//
// The framework mirrors the x/tools API surface the analyzers need
// (Analyzer, Pass, Reportf, an analysistest-style fixture runner in the
// sibling linttest package) without the dependency: the container this
// repo builds in is hermetic, so golang.org/x/tools cannot be fetched
// or pinned. Should that change, each analyzer's Run func ports to a
// real go/analysis.Analyzer mechanically.
//
// Suppression: a diagnostic is suppressed either by an analyzer's
// compiled-in DefaultAllow list (path fragments for packages whose job
// is exactly the flagged behavior, e.g. internal/rng for rngsource) or
// by an inline directive on, or immediately above, the offending line:
//
//	//lint:allow <rule> <one-line reason>
//
// The reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //lint:allow
	// directives, e.g. "maporder".
	Name string

	// Doc is a one-paragraph description of the invariant the
	// analyzer enforces, shown by `modeldatalint -help`.
	Doc string

	// DefaultAllow lists path fragments (matched as substrings of
	// the diagnostic's file path and the unit's import path) whose
	// diagnostics are suppressed without an inline directive. It is
	// reserved for packages whose purpose is the flagged behavior.
	DefaultAllow []string

	// Run inspects one package unit and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package unit through one analyzer.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string

	report func(Finding)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Position: p.Fset.Position(pos),
		Rule:     p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFixf records a diagnostic at pos together with a suggested fix:
// a set of textual edits that `modeldatalint -fix` can apply
// mechanically. Edits are resolved to file offsets immediately, so the
// Finding stays self-contained once the pass finishes.
func (p *Pass) ReportFixf(pos token.Pos, edits []TextEdit, format string, args ...any) {
	fix := &Fix{}
	for _, e := range edits {
		start := p.Fset.Position(e.Pos)
		end := start
		if e.End.IsValid() {
			end = p.Fset.Position(e.End)
		}
		fix.Edits = append(fix.Edits, Edit{
			Filename: start.Filename,
			Offset:   start.Offset,
			End:      end.Offset,
			NewText:  e.NewText,
			Indent:   e.Indent,
		})
	}
	p.report(Finding{
		Position: p.Fset.Position(pos),
		Rule:     p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// TextEdit is an analyzer-facing edit: replace source range [Pos, End)
// with NewText. A zero End means a pure insertion at Pos. With Indent
// set, every newline in NewText is re-indented to match the line
// containing Pos when the edit is applied, so inserted statements line
// up with their anchor.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
	Indent  bool
}

// Fix is a mechanically applicable suggested fix, as resolved edits.
type Fix struct {
	Edits []Edit `json:"edits"`
}

// Edit is one resolved textual replacement: [Offset, End) of Filename
// becomes NewText.
type Edit struct {
	Filename string `json:"filename"`
	Offset   int    `json:"offset"`
	End      int    `json:"end"`
	NewText  string `json:"newText"`
	Indent   bool   `json:"indent,omitempty"`
}

// Finding is one diagnostic with its resolved file position and, for
// mechanical diagnostics, a suggested fix.
type Finding struct {
	Position token.Position
	Rule     string
	Message  string
	Fix      *Fix
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Rule)
}

// RunAnalyzers applies every analyzer to every package unit, applies
// DefaultAllow lists and //lint:allow directives, and returns the
// surviving findings in deterministic (file, line, column, rule) order.
// Malformed directives are returned as findings of rule "lintdirective".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allows, bad := collectAllows(pkg.Fset, pkg.Files)
		out = append(out, bad...)
		for _, a := range analyzers {
			var found []Finding
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ImportPath: pkg.ImportPath,
				report:     func(f Finding) { found = append(found, f) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, f := range found {
				if defaultAllowed(a, pkg.ImportPath, f.Position.Filename) {
					continue
				}
				if allows.allowed(f.Position.Filename, f.Position.Line, a.Name) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Rule < b.Rule
	})
	return out, nil
}

func defaultAllowed(a *Analyzer, importPath, filename string) bool {
	for _, frag := range a.DefaultAllow {
		if strings.Contains(filename, frag) || strings.Contains(importPath, frag) {
			return true
		}
	}
	return false
}
