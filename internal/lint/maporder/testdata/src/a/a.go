// Package a exercises the maporder analyzer: order-dependent effects
// inside range-over-map loops, the collect-then-sort escape, and
// commutative folds that stay legal.
package a

import (
	"fmt"
	"sort"
)

// BadAppend leaks map order straight into the returned slice.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to keys while ranging over a map with no later sort`
	}
	return keys
}

// GoodCollectThenSort is the sanctioned pattern: gather, sort, emit.
func GoodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type table struct{ rows []int }

// BadEmit appends through a selector the loop does not own, so no sort
// can be verified.
func BadEmit(m map[string]int, out *table) {
	for _, v := range m {
		out.rows = append(out.rows, v) // want `appends to out.rows while ranging over a map`
	}
}

// BadSend delivers values in nondeterministic order.
func BadSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send while ranging over a map`
	}
}

// BadFloatFold reorders float rounding run to run.
func BadFloatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation across map iteration`
	}
	return sum
}

// GoodIntFold is commutative and exact, so it is allowed.
func GoodIntFold(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// BadPrint emits text in map order.
func BadPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt.Println while ranging over a map`
	}
}

// GoodScratch appends only to a slice scoped inside the loop body.
func GoodScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v*2)
		}
		total += len(local)
	}
	return total
}

// AllowedFold documents an intentional order-dependent fold.
func AllowedFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:allow maporder estimator tolerates any summation order by design
	}
	return sum
}
