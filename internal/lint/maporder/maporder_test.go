package maporder_test

import (
	"testing"

	"modeldata/internal/lint/linttest"
	"modeldata/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "a")
}
