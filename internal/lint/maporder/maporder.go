// Package maporder flags `for ... range` loops over maps whose bodies
// leak the map's nondeterministic iteration order into results.
//
// Go randomizes map iteration order on purpose, so any loop that
// appends rows to a slice, sends on a channel, prints, or accumulates
// floating-point sums while ranging over a map produces output that
// differs run to run — the exact bug class that bit-identical
// reproducibility (determinism_test.go, chaos_test.go) exists to
// prevent. The sanctioned pattern is collect-then-sort: range over the
// map to gather keys (or rows), sort the slice, then emit in sorted
// order. A loop whose collected slice is passed to a sort.* or slices.*
// call later in the same function is therefore not flagged.
//
// Integer accumulation (counts, sums of ints) is commutative and exact,
// so it is allowed; float accumulation is flagged because float
// addition rounds differently under reordering.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"modeldata/internal/lint"
)

// Analyzer is the maporder rule.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "flags map-range loops that emit ordered output (append without later sort, channel " +
		"send, printing, float accumulation); collect keys, sort, then emit",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFuncBody examines the map-range loops that belong directly to
// this function body. Loops inside nested function literals are checked
// when the walk reaches that literal, so that the collect-then-sort
// escape looks for the sort call in the right scope.
func checkFuncBody(pass *lint.Pass, body *ast.BlockStmt) {
	inspectSkippingFuncLits(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := lint.TypeOf(pass.TypesInfo, rng.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		checkMapRange(pass, body, rng)
	})
}

// checkMapRange reports order-dependent effects in the body of one
// range-over-map loop.
func checkMapRange(pass *lint.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(stmt.Pos(),
				"channel send while ranging over a map: receive order is nondeterministic; "+
					"collect into a slice, sort, then send")
		case *ast.AssignStmt:
			checkAssign(pass, funcBody, rng, stmt)
		case *ast.CallExpr:
			if pkg, name := lint.CalleePkgFunc(pass.TypesInfo, stmt); pkg == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				pass.Reportf(stmt.Pos(),
					"fmt.%s while ranging over a map prints in nondeterministic order; "+
						"collect keys, sort, then print", name)
			}
		}
		return true
	})
}

func checkAssign(pass *lint.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, stmt *ast.AssignStmt) {
	// Compound float accumulation: sum += v reorders float rounding.
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(stmt.Lhs) == 1 && lint.IsFloat(lint.TypeOf(pass.TypesInfo, stmt.Lhs[0])) {
			pass.Reportf(stmt.Pos(),
				"floating-point accumulation across map iteration: summation order changes "+
					"rounding; collect values, sort keys, then fold")
		}
		return
	}
	// s = append(s, ...) growing something declared outside the loop.
	for i, rhs := range stmt.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || ident.Name != "append" {
			continue
		}
		if obj := pass.TypesInfo.Uses[ident]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				continue // a user-defined append, not the builtin
			}
		}
		if i >= len(stmt.Lhs) {
			continue
		}
		target := ast.Unparen(stmt.Lhs[i])
		obj := lint.ObjectOf(pass.TypesInfo, target)
		if obj == nil {
			// Appending through a selector (out.Rows = append(...))
			// or index expression: emission into a result the loop
			// does not own, with no sort we can verify.
			pass.Reportf(stmt.Pos(),
				"appends to %s while ranging over a map: row order is nondeterministic; "+
					"collect keys, sort, then emit", exprString(target))
			continue
		}
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			continue // loop-local scratch, order cannot escape
		}
		if sortedAfter(pass, funcBody, rng, obj) {
			continue // the collect-then-sort idiom
		}
		pass.Reportf(stmt.Pos(),
			"appends to %s while ranging over a map with no later sort of %s in this function; "+
				"sort before using the slice", obj.Name(), obj.Name())
	}
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// call positioned after the range loop in the same function body —
// the signature of the collect-then-sort idiom.
func sortedAfter(pass *lint.Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkg, _ := lint.CalleePkgFunc(pass.TypesInfo, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if lint.UsesObject(pass.TypesInfo, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// inspectSkippingFuncLits walks n but does not descend into nested
// function literals.
func inspectSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m != nil {
			visit(m)
		}
		return true
	})
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "the result"
}
