package floateq_test

import (
	"testing"

	"modeldata/internal/lint/floateq"
	"modeldata/internal/lint/linttest"
)

func TestFloateq(t *testing.T) {
	linttest.Run(t, floateq.Analyzer, "a")
}
