// Package a exercises the floateq analyzer: exact float comparisons,
// the idioms that pass unannotated, and directive suppression.
package a

import "math"

const eps = 1e-9

// BadEq compares computed floats exactly.
func BadEq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

// BadNeqMixed flags even when only one side is float-typed.
func BadNeqMixed(x float64) bool {
	return x != 0 // want `floating-point != comparison`
}

// BadSwitch compares its float tag with == per case.
func BadSwitch(x float64) string {
	switch x { // want `switch over a floating-point value`
	case 0:
		return "zero"
	case 1:
		return "one"
	}
	return "other"
}

// GoodTolerance is how comparisons should be written.
func GoodTolerance(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

// GoodNaNTest is the canonical self-comparison NaN check.
func GoodNaNTest(x float64) bool {
	return x != x
}

// GoodConstFold compares two compile-time constants.
func GoodConstFold() bool {
	return eps == 1e-9
}

// AllowedExact documents an intentional bit-exact comparison.
func AllowedExact(got, golden float64) bool {
	return got == golden //lint:allow floateq determinism test demands bit-identical output
}
