// Package floateq flags == and != between floating-point operands, and
// switch statements over a float tag.
//
// Exact float equality is almost always a latent bug in a numerical
// codebase: two mathematically equal quantities computed along
// different paths differ in their low bits, and a comparison that holds
// at one worker count fails at another once reduction order changes.
// Comparisons should go through a tolerance helper
// (stats.ApproxEqual) or, where bit-exactness is genuinely the
// contract (golden-value determinism tests, the engine's exact numeric
// Value semantics), carry a //lint:allow floateq with the reason.
//
// Two idioms pass without annotation: comparisons where both operands
// are compile-time constants, and the self-comparison NaN test
// (x != x). _test.go files are exempt wholesale — bit-exact golden
// assertions are precisely what the repo's determinism tests do.
package floateq

import (
	"go/ast"
	"go/token"
	"strings"

	"modeldata/internal/lint"
)

// Analyzer is the floateq rule.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on floating-point operands and switches over float tags; " +
		"use stats.ApproxEqual or an explicit //lint:allow for intentional exact comparison",
	DefaultAllow: []string{
		// value.go's whole purpose is exact cross-type numeric
		// comparison with documented semantics (PR 2).
		"internal/engine/value.go",
	},
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		// Bit-exact golden assertions (got != want) are the point of
		// this repo's determinism tests, so _test.go files are out of
		// scope; production code is where exact comparison hides bugs.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, e)
			case *ast.SwitchStmt:
				if e.Tag != nil && lint.IsFloat(lint.TypeOf(pass.TypesInfo, e.Tag)) {
					pass.Reportf(e.Pos(),
						"switch over a floating-point value compares with ==; "+
							"rewrite as explicit tolerance comparisons")
				}
			}
			return true
		})
	}
	return nil
}

func checkBinary(pass *lint.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	xt, yt := pass.TypesInfo.Types[e.X], pass.TypesInfo.Types[e.Y]
	if !lint.IsFloat(xt.Type) && !lint.IsFloat(yt.Type) {
		return
	}
	if xt.Value != nil && yt.Value != nil {
		return // constant folding, decided at compile time
	}
	if xo := lint.ObjectOf(pass.TypesInfo, e.X); xo != nil && xo == lint.ObjectOf(pass.TypesInfo, e.Y) {
		return // x != x, the NaN test
	}
	pass.Reportf(e.Pos(),
		"floating-point %s comparison is order- and rounding-sensitive; "+
			"use stats.ApproxEqual or annotate the intent with //lint:allow floateq", e.Op)
}
