package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is the comment prefix that suppresses a diagnostic.
const allowDirective = "//lint:allow"

// allowSet maps filename -> line -> set of allowed rule names.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) add(filename string, line int, rule string) {
	byLine := s[filename]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[filename] = byLine
	}
	rules := byLine[line]
	if rules == nil {
		rules = make(map[string]bool)
		byLine[line] = rules
	}
	rules[rule] = true
}

func (s allowSet) allowed(filename string, line int, rule string) bool {
	return s[filename][line][rule]
}

// collectAllows scans every comment in the unit for //lint:allow
// directives. A directive suppresses the named rule on its own line and
// on the line that follows it, so both trailing and leading placement
// work:
//
//	sum += v //lint:allow floateq exact accumulation is intended
//
//	//lint:allow maporder commutative fold, order cannot leak
//	for k := range m { ... }
//
// A directive missing its rule or its reason is returned as a
// "lintdirective" finding so sloppy suppressions fail CI like any other
// diagnostic.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Finding) {
	allows := make(allowSet)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Position: pos,
						Rule:     "lintdirective",
						Message:  "malformed //lint:allow: need a rule name and a one-line reason",
					})
					continue
				}
				rule := fields[0]
				allows.add(pos.Filename, pos.Line, rule)
				allows.add(pos.Filename, pos.Line+1, rule)
			}
		}
	}
	return allows, bad
}
