// Package pdesmas reproduces the PDES-MAS architecture studied in §2.4
// of the paper (Suryanarayanan & Theodoropoulos, TOMACS 2013): parallel
// "agent logical processes" (ALPs) simulate massive agent populations
// and progress through simulated time at different rates, while a tree
// of "communication logical processes" (CLPs) maintains timestamped
// histories of shared-state variables (SSVs) — the externally viewable
// agent attributes such as position. Agents discover neighbors through
// instantaneous range queries ("all agents within one mile, right now,
// over 25 years old"), which is hard to answer correctly precisely
// because ALPs are unsynchronized.
//
// The package implements (i) the CLP tree with SSV histories, access
// accounting, and hot-SSV migration toward the accessing ALP, and
// (ii) two range-query algorithms: the naive latest-value read and the
// timestamp-synchronized read, whose accuracy the experiments compare
// against a fully synchronized ground truth.
package pdesmas

import (
	"errors"
	"fmt"
	"sort"
)

// Common errors.
var (
	ErrNoSSV   = errors.New("pdesmas: no such shared-state variable")
	ErrNoALP   = errors.New("pdesmas: no such agent logical process")
	ErrBadTree = errors.New("pdesmas: invalid tree configuration")
)

// SSVID identifies one shared-state variable: a public attribute of one
// agent.
type SSVID struct {
	Agent int
	Attr  string
}

// versioned is one timestamped SSV write.
type versioned struct {
	T float64
	V float64
}

// history is the timestamped value sequence of one SSV, kept sorted by
// write time (ALPs write monotonically).
type history struct {
	values []versioned
}

// write appends a value at time t. Out-of-order writes (possible during
// optimistic execution) are inserted in place.
func (h *history) write(t, v float64) {
	n := len(h.values)
	if n == 0 || h.values[n-1].T <= t {
		h.values = append(h.values, versioned{T: t, V: v})
		return
	}
	i := sort.Search(n, func(k int) bool { return h.values[k].T > t })
	h.values = append(h.values, versioned{})
	copy(h.values[i+1:], h.values[i:])
	h.values[i] = versioned{T: t, V: v}
}

// at returns the value in effect at time t (the latest write with
// timestamp ≤ t) and whether the history extends to t (i.e. the writer
// has advanced at least to t, so the value is final rather than an
// estimate).
func (h *history) at(t float64) (v float64, ok, final bool) {
	n := len(h.values)
	if n == 0 {
		return 0, false, false
	}
	i := sort.Search(n, func(k int) bool { return h.values[k].T > t })
	if i == 0 {
		return 0, false, false
	}
	return h.values[i-1].V, true, h.values[n-1].T >= t
}

// latest returns the most recent value regardless of timestamp.
func (h *history) latest() (float64, bool) {
	if len(h.values) == 0 {
		return 0, false
	}
	return h.values[len(h.values)-1].V, true
}

// clp is one communication logical process: a node of the CLP tree
// holding a shard of the SSVs.
type clp struct {
	id       int
	parent   *clp
	children []*clp
	ssvs     map[SSVID]*history
	// access[id][alp] counts reads of each SSV issued by each ALP,
	// driving per-SSV migration decisions.
	access map[SSVID]map[int]int
}

func newCLP(id int) *clp {
	return &clp{id: id, ssvs: make(map[SSVID]*history), access: make(map[SSVID]map[int]int)}
}

// recordAccess bumps the per-SSV, per-ALP access counter.
func (c *clp) recordAccess(id SSVID, alpID int) {
	m, ok := c.access[id]
	if !ok {
		m = make(map[int]int)
		c.access[id] = m
	}
	m[alpID]++
}

// Tree is the CLP tree. Leaves host ALPs; SSVs live at exactly one CLP
// and may migrate.
type Tree struct {
	root   *clp
	leaves []*clp
	nodes  []*clp
	// home maps each SSV to the CLP currently holding it.
	home map[SSVID]*clp
	// alpLeaf maps ALP id → its attachment leaf.
	alpLeaf map[int]*clp
	// Hops accumulates tree-edge traversals for all routed operations;
	// the load-balancing experiments read it.
	Hops int
}

// NewTree builds a balanced binary CLP tree with the given number of
// leaves (must be ≥ 1).
func NewTree(leaves int) (*Tree, error) {
	if leaves < 1 {
		return nil, fmt.Errorf("%w: %d leaves", ErrBadTree, leaves)
	}
	t := &Tree{home: make(map[SSVID]*clp), alpLeaf: make(map[int]*clp)}
	next := 0
	mk := func() *clp {
		c := newCLP(next)
		next++
		t.nodes = append(t.nodes, c)
		return c
	}
	// Build bottom-up: level of leaves, then pair upward.
	level := make([]*clp, leaves)
	for i := range level {
		level[i] = mk()
		t.leaves = append(t.leaves, level[i])
	}
	for len(level) > 1 {
		var up []*clp
		for i := 0; i < len(level); i += 2 {
			p := mk()
			p.children = append(p.children, level[i])
			level[i].parent = p
			if i+1 < len(level) {
				p.children = append(p.children, level[i+1])
				level[i+1].parent = p
			}
			up = append(up, p)
		}
		level = up
	}
	t.root = level[0]
	return t, nil
}

// AttachALP binds an ALP to a leaf CLP (its communication port).
func (t *Tree) AttachALP(alpID, leaf int) error {
	if leaf < 0 || leaf >= len(t.leaves) {
		return fmt.Errorf("%w: leaf %d", ErrBadTree, leaf)
	}
	t.alpLeaf[alpID] = t.leaves[leaf]
	return nil
}

// hopDistance counts tree edges between two CLPs.
func hopDistance(a, b *clp) int {
	depth := func(c *clp) int {
		d := 0
		for c.parent != nil {
			c = c.parent
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	hops := 0
	for da > db {
		a = a.parent
		da--
		hops++
	}
	for db > da {
		b = b.parent
		db--
		hops++
	}
	for a != b {
		a = a.parent
		b = b.parent
		hops += 2
	}
	return hops
}

// homeFor returns (creating if needed) the home CLP of an SSV; new SSVs
// are placed on the leaf derived from the agent id, spreading state
// across the tree.
func (t *Tree) homeFor(id SSVID, create bool) (*clp, error) {
	if c, ok := t.home[id]; ok {
		return c, nil
	}
	if !create {
		return nil, fmt.Errorf("%w: %v", ErrNoSSV, id)
	}
	c := t.leaves[id.Agent%len(t.leaves)]
	t.home[id] = c
	c.ssvs[id] = &history{}
	return c, nil
}

// Write records a timestamped SSV write issued by the given ALP.
func (t *Tree) Write(alpID int, id SSVID, time, value float64) error {
	src, ok := t.alpLeaf[alpID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoALP, alpID)
	}
	dst, err := t.homeFor(id, true)
	if err != nil {
		return err
	}
	t.Hops += hopDistance(src, dst)
	dst.ssvs[id].write(time, value)
	return nil
}

// ReadAt reads the SSV value in effect at the given time on behalf of
// an ALP, recording access statistics and routing hops. final reports
// whether the writer has already advanced past the read time.
func (t *Tree) ReadAt(alpID int, id SSVID, time float64) (v float64, final bool, err error) {
	src, ok := t.alpLeaf[alpID]
	if !ok {
		return 0, false, fmt.Errorf("%w: %d", ErrNoALP, alpID)
	}
	c, err := t.homeFor(id, false)
	if err != nil {
		return 0, false, err
	}
	t.Hops += hopDistance(src, c)
	c.recordAccess(id, alpID)
	val, ok, fin := c.ssvs[id].at(time)
	if !ok {
		return 0, false, fmt.Errorf("%w: %v has no value at t=%g", ErrNoSSV, id, time)
	}
	return val, fin, nil
}

// ReadLatest reads the most recent SSV value regardless of timestamp —
// the naive instantaneous semantics.
func (t *Tree) ReadLatest(alpID int, id SSVID) (float64, error) {
	src, ok := t.alpLeaf[alpID]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoALP, alpID)
	}
	c, err := t.homeFor(id, false)
	if err != nil {
		return 0, err
	}
	t.Hops += hopDistance(src, c)
	c.recordAccess(id, alpID)
	v, ok2 := c.ssvs[id].latest()
	if !ok2 {
		return 0, fmt.Errorf("%w: %v is empty", ErrNoSSV, id)
	}
	return v, nil
}

// SSVs returns the ids of all registered SSVs in deterministic order.
func (t *Tree) SSVs() []SSVID {
	out := make([]SSVID, 0, len(t.home))
	for id := range t.home {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Agent != out[j].Agent {
			return out[i].Agent < out[j].Agent
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// Migrate moves every SSV to the attachment leaf of its most frequent
// accessor — the tree reconfiguration that "move[s] SSVs closer to the
// ALPs that are accessing them". Access counters reset afterwards. It
// returns the number of SSVs that moved.
func (t *Tree) Migrate() int {
	moved := 0
	for _, id := range t.SSVs() {
		cur := t.home[id]
		counts := cur.access[id]
		bestALP, bestCount := -1, 0
		// Deterministic tie-break: lowest ALP id wins.
		alps := make([]int, 0, len(counts))
		for a := range counts {
			alps = append(alps, a)
		}
		sort.Ints(alps)
		for _, a := range alps {
			if counts[a] > bestCount {
				bestALP, bestCount = a, counts[a]
			}
		}
		if bestALP < 0 {
			continue
		}
		dst := t.alpLeaf[bestALP]
		if dst == nil || dst == cur {
			continue
		}
		dst.ssvs[id] = cur.ssvs[id]
		delete(cur.ssvs, id)
		t.home[id] = dst
		moved++
	}
	for _, c := range t.nodes {
		c.access = make(map[SSVID]map[int]int)
	}
	return moved
}
