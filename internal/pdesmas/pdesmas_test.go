package pdesmas

import (
	"errors"
	"testing"
	"testing/quick"

	"modeldata/internal/rng"
)

func TestHistoryWriteAndRead(t *testing.T) {
	var h history
	h.write(1, 10)
	h.write(3, 30)
	h.write(2, 20) // out-of-order insert
	if v, ok, final := h.at(2.5); !ok || v != 20 || !final {
		t.Fatalf("at(2.5) = %g ok=%v final=%v", v, ok, final)
	}
	if v, ok, final := h.at(3); !ok || v != 30 || !final {
		t.Fatalf("at(3) = %g ok=%v final=%v", v, ok, final)
	}
	if v, ok, final := h.at(9); !ok || v != 30 || final {
		t.Fatalf("at(9) = %g ok=%v final=%v (writer behind)", v, ok, final)
	}
	if _, ok, _ := h.at(0.5); ok {
		t.Fatal("read before first write should fail")
	}
	if v, ok := h.latest(); !ok || v != 30 {
		t.Fatalf("latest = %g", v)
	}
	var empty history
	if _, ok := empty.latest(); ok {
		t.Fatal("empty latest should fail")
	}
}

func TestHistoryOrderInvariantProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		var h history
		for i := 0; i < 30; i++ {
			h.write(r.Float64()*10, float64(i))
		}
		for i := 1; i < len(h.values); i++ {
			if h.values[i-1].T > h.values[i].T {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewTreeShapes(t *testing.T) {
	for _, leaves := range []int{1, 2, 3, 4, 7, 8} {
		tr, err := NewTree(leaves)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.leaves) != leaves {
			t.Fatalf("leaves = %d, want %d", len(tr.leaves), leaves)
		}
		// Every leaf must reach the root.
		for _, l := range tr.leaves {
			c := l
			for c.parent != nil {
				c = c.parent
			}
			if c != tr.root {
				t.Fatal("leaf disconnected from root")
			}
		}
	}
	if _, err := NewTree(0); !errors.Is(err, ErrBadTree) {
		t.Fatalf("got %v", err)
	}
}

func TestTreeWriteReadAndHops(t *testing.T) {
	tr, err := NewTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachALP(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachALP(1, 3); err != nil {
		t.Fatal(err)
	}
	id := SSVID{Agent: 0, Attr: "pos"} // homes on leaf 0
	if err := tr.Write(0, id, 1, 5); err != nil {
		t.Fatal(err)
	}
	h0 := tr.Hops // write from ALP0 (leaf 0) to leaf 0: 0 hops
	if h0 != 0 {
		t.Fatalf("local write cost %d hops", h0)
	}
	if _, _, err := tr.ReadAt(1, id, 1); err != nil {
		t.Fatal(err)
	}
	if tr.Hops == 0 {
		t.Fatal("remote read cost no hops")
	}
	if _, _, err := tr.ReadAt(99, id, 1); !errors.Is(err, ErrNoALP) {
		t.Fatalf("got %v", err)
	}
	if _, _, err := tr.ReadAt(0, SSVID{Agent: 9, Attr: "x"}, 1); !errors.Is(err, ErrNoSSV) {
		t.Fatalf("got %v", err)
	}
	if _, err := tr.ReadLatest(0, id); err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachALP(0, 99); !errors.Is(err, ErrBadTree) {
		t.Fatalf("got %v", err)
	}
}

func TestMigrationReducesHops(t *testing.T) {
	tr, err := NewTree(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachALP(0, 7); err != nil {
		t.Fatal(err)
	}
	// SSV homed far from ALP 0.
	id := SSVID{Agent: 0, Attr: "pos"}
	if err := tr.AttachALP(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(1, id, 0, 1); err != nil {
		t.Fatal(err)
	}
	// ALP 0 hammers it.
	for i := 0; i < 50; i++ {
		if _, _, err := tr.ReadAt(0, id, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Hops
	moved := tr.Migrate()
	if moved != 1 {
		t.Fatalf("moved = %d", moved)
	}
	tr.Hops = 0
	for i := 0; i < 50; i++ {
		if _, _, err := tr.ReadAt(0, id, 0); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Hops != 0 {
		t.Fatalf("post-migration reads cost %d hops (pre: %d)", tr.Hops, before)
	}
}

func TestWorldAdvanceAndQueries(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Agents: 300, ALPs: 6, Leaves: 4,
		DtMin: 0.05, DtMax: 0.3, Speed: 1, Span: 100,
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Desynchronize heavily: the fastest ALP runs 3× past the horizon.
	if err := w.AdvanceAllUneven(10, 2.0); err != nil {
		t.Fatal(err)
	}
	q := RangeQuery{Time: 10, Center: 50, Radius: 20, MinAge: 25, AskerID: 0}
	truth := w.GroundTruth(q)
	if len(truth) == 0 {
		t.Fatal("degenerate query: empty ground truth")
	}
	syncRes, err := w.RunSync(q)
	if err != nil {
		t.Fatal(err)
	}
	naiveRes, err := w.RunNaive(q)
	if err != nil {
		t.Fatal(err)
	}
	syncErr := SymmetricDiff(syncRes.Agents, truth)
	naiveErr := SymmetricDiff(naiveRes.Agents, truth)
	if syncErr > naiveErr {
		t.Fatalf("synchronized query error %d worse than naive %d", syncErr, naiveErr)
	}
	if naiveErr == 0 {
		t.Fatal("naive query unexpectedly exact — ALPs not desynchronized?")
	}
	// Every ALP has advanced past t=10, so no sync read is stale.
	if syncRes.Stale != 0 {
		t.Fatalf("stale reads = %d with all ALPs past the horizon", syncRes.Stale)
	}
}

func TestStaleDetection(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Agents: 50, ALPs: 2, Leaves: 2,
		DtMin: 0.1, DtMax: 0.1, Speed: 1, Span: 10,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Advance only ALP 0; ALP 1's agents stay at t=0.
	if err := w.AdvanceALP(0, 5); err != nil {
		t.Fatal(err)
	}
	q := RangeQuery{Time: 5, Center: 5, Radius: 100, MinAge: 0, AskerID: 0}
	res, err := w.RunSync(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale == 0 {
		t.Fatal("no stale reads detected for a lagging ALP")
	}
}

func TestAdvanceALPErrors(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		Agents: 10, ALPs: 2, Leaves: 2,
		DtMin: 0.1, DtMax: 0.2, Speed: 1, Span: 10,
	}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceALP(9, 1); !errors.Is(err, ErrNoALP) {
		t.Fatalf("got %v", err)
	}
	if _, err := NewWorld(WorldConfig{}, rng.New(1)); !errors.Is(err, ErrBadTree) {
		t.Fatalf("got %v", err)
	}
}

func TestSymmetricDiff(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2}, []int{1, 2}, 0},
		{[]int{1}, []int{2}, 2},
		{[]int{1, 2, 3}, []int{2, 4}, 3},
		{[]int{1, 2, 3}, nil, 3},
	}
	for _, c := range cases {
		if got := SymmetricDiff(c.a, c.b); got != c.want {
			t.Errorf("SymmetricDiff(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSSVsDeterministicOrder(t *testing.T) {
	tr, err := NewTree(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachALP(0, 0); err != nil {
		t.Fatal(err)
	}
	for _, ag := range []int{3, 1, 2} {
		if err := tr.Write(0, SSVID{Agent: ag, Attr: "pos"}, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	ids := tr.SSVs()
	if len(ids) != 3 || ids[0].Agent != 1 || ids[2].Agent != 3 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestMigrationIsPerSSV(t *testing.T) {
	// Two SSVs homed on the same CLP, hammered by different ALPs: each
	// must migrate to ITS OWN accessor's leaf, not both to one.
	tr, err := NewTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachALP(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachALP(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachALP(9, 0); err != nil { // writer on leaf 0
		t.Fatal(err)
	}
	// Agents 0 and 4 both hash to leaf 0 (agent % 4 leaves).
	idA := SSVID{Agent: 0, Attr: "pos"}
	idB := SSVID{Agent: 4, Attr: "pos"}
	if err := tr.Write(9, idA, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(9, idB, 0, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := tr.ReadAt(0, idA, 0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tr.ReadAt(1, idB, 0); err != nil {
			t.Fatal(err)
		}
	}
	if moved := tr.Migrate(); moved != 2 {
		t.Fatalf("moved = %d, want 2", moved)
	}
	if tr.home[idA] != tr.leaves[1] {
		t.Fatal("SSV A did not migrate to ALP 0's leaf")
	}
	if tr.home[idB] != tr.leaves[2] {
		t.Fatal("SSV B did not migrate to ALP 1's leaf")
	}
}
