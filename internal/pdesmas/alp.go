package pdesmas

import (
	"fmt"
	"sort"

	"modeldata/internal/rng"
)

// This file provides the ALP (agent logical process) layer over the CLP
// tree, plus the two range-query algorithms whose accuracy the paper's
// experiments probe. Agents move along a line with constant velocity,
// which keeps the ground truth exactly computable while preserving the
// phenomenon under study: ALPs advance through simulated time at
// different rates, so "right now" is ill-defined across the system.

// PosAttr is the SSV attribute name used for agent positions.
const PosAttr = "pos"

// ALP is one agent logical process: it owns a subset of the agents and
// advances them at its own cadence through its sense-think-respond
// cycle.
type ALP struct {
	ID int
	// LVT is the local virtual time the ALP has reached.
	LVT float64
	// Dt is the ALP's time-step size (its rate of progress per step).
	Dt     float64
	agents []int
}

// World is a complete PDES-MAS instance: a CLP tree plus ALPs and the
// static agent attributes (age) used by range-query predicates.
type World struct {
	Tree *Tree
	ALPs []*ALP
	// pos0 and vel define each agent's true trajectory
	// pos(t) = pos0 + vel·t.
	pos0, vel []float64
	age       []int
}

// WorldConfig sizes a World.
type WorldConfig struct {
	Agents int
	ALPs   int
	Leaves int
	// DtMin and DtMax bound the per-ALP step sizes; spreading them out
	// desynchronizes the ALPs.
	DtMin, DtMax float64
	// Speed bounds agent velocity magnitude.
	Speed float64
	// Span is the width of the initial position interval [0, Span).
	Span float64
}

// NewWorld builds a world with deterministic agent trajectories and
// round-robin agent→ALP assignment.
func NewWorld(cfg WorldConfig, r *rng.Stream) (*World, error) {
	if cfg.Agents < 1 || cfg.ALPs < 1 || cfg.Leaves < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadTree, cfg)
	}
	tree, err := NewTree(cfg.Leaves)
	if err != nil {
		return nil, err
	}
	w := &World{
		Tree: tree,
		pos0: make([]float64, cfg.Agents),
		vel:  make([]float64, cfg.Agents),
		age:  make([]int, cfg.Agents),
	}
	for i := 0; i < cfg.Agents; i++ {
		w.pos0[i] = r.Float64() * cfg.Span
		w.vel[i] = (2*r.Float64() - 1) * cfg.Speed
		w.age[i] = 1 + r.Intn(90)
	}
	for a := 0; a < cfg.ALPs; a++ {
		dt := cfg.DtMin + (cfg.DtMax-cfg.DtMin)*r.Float64()
		alp := &ALP{ID: a, Dt: dt}
		if err := tree.AttachALP(a, a%cfg.Leaves); err != nil {
			return nil, err
		}
		w.ALPs = append(w.ALPs, alp)
	}
	for i := 0; i < cfg.Agents; i++ {
		alp := w.ALPs[i%cfg.ALPs]
		alp.agents = append(alp.agents, i)
	}
	// Initial SSV writes at t = 0.
	for _, alp := range w.ALPs {
		for _, ag := range alp.agents {
			if err := tree.Write(alp.ID, SSVID{Agent: ag, Attr: PosAttr}, 0, w.pos0[ag]); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// Age returns an agent's (static, externally known) age.
func (w *World) Age(agent int) int { return w.age[agent] }

// TruePos returns the exact agent position at time t.
func (w *World) TruePos(agent int, t float64) float64 {
	return w.pos0[agent] + w.vel[agent]*t
}

// AdvanceALP advances one ALP through whole steps until its LVT reaches
// at least `until`, writing each agent's position SSV at every step.
func (w *World) AdvanceALP(alpID int, until float64) error {
	if alpID < 0 || alpID >= len(w.ALPs) {
		return fmt.Errorf("%w: %d", ErrNoALP, alpID)
	}
	alp := w.ALPs[alpID]
	for alp.LVT < until {
		alp.LVT += alp.Dt
		for _, ag := range alp.agents {
			id := SSVID{Agent: ag, Attr: PosAttr}
			if err := w.Tree.Write(alp.ID, id, alp.LVT, w.TruePos(ag, alp.LVT)); err != nil {
				return err
			}
		}
	}
	return nil
}

// AdvanceAllUneven advances every ALP to its own multiple of horizon:
// ALP a reaches roughly horizon·(1 + skew·a/(len−1)), producing the
// unequal progress rates the range-query problem stems from.
func (w *World) AdvanceAllUneven(horizon, skew float64) error {
	n := len(w.ALPs)
	for a := 0; a < n; a++ {
		frac := 0.0
		if n > 1 {
			frac = float64(a) / float64(n-1)
		}
		if err := w.AdvanceALP(a, horizon*(1+skew*frac)); err != nil {
			return err
		}
	}
	return nil
}

// RangeQuery is the §2.4 query: "find all agents who are, right now,
// within [center±radius] and over minAge years old".
type RangeQuery struct {
	Time    float64
	Center  float64
	Radius  float64
	MinAge  int
	AskerID int // the ALP issuing the query
}

// QueryResult reports a range-query answer.
type QueryResult struct {
	Agents []int
	// Stale counts SSV reads whose writer had not yet advanced to the
	// query time, so the value was provisional.
	Stale int
}

// RunSync answers the query with timestamp-synchronized reads: each
// position is the SSV value in effect at the query time.
func (w *World) RunSync(q RangeQuery) (QueryResult, error) {
	var res QueryResult
	for agent := 0; agent < len(w.pos0); agent++ {
		if w.age[agent] <= q.MinAge {
			continue
		}
		v, final, err := w.Tree.ReadAt(q.AskerID, SSVID{Agent: agent, Attr: PosAttr}, q.Time)
		if err != nil {
			return res, err
		}
		if !final {
			res.Stale++
		}
		if v >= q.Center-q.Radius && v <= q.Center+q.Radius {
			res.Agents = append(res.Agents, agent)
		}
	}
	sort.Ints(res.Agents)
	return res, nil
}

// RunNaive answers the query with latest-value reads, ignoring
// timestamps — correct only if every ALP happens to sit exactly at the
// query time.
func (w *World) RunNaive(q RangeQuery) (QueryResult, error) {
	var res QueryResult
	for agent := 0; agent < len(w.pos0); agent++ {
		if w.age[agent] <= q.MinAge {
			continue
		}
		v, err := w.Tree.ReadLatest(q.AskerID, SSVID{Agent: agent, Attr: PosAttr})
		if err != nil {
			return res, err
		}
		if v >= q.Center-q.Radius && v <= q.Center+q.Radius {
			res.Agents = append(res.Agents, agent)
		}
	}
	sort.Ints(res.Agents)
	return res, nil
}

// GroundTruth answers the query against the exact trajectories.
func (w *World) GroundTruth(q RangeQuery) []int {
	var out []int
	for agent := 0; agent < len(w.pos0); agent++ {
		if w.age[agent] <= q.MinAge {
			continue
		}
		v := w.TruePos(agent, q.Time)
		if v >= q.Center-q.Radius && v <= q.Center+q.Radius {
			out = append(out, agent)
		}
	}
	sort.Ints(out)
	return out
}

// SymmetricDiff counts elements in exactly one of two sorted int
// slices — the query-error metric of the experiments.
func SymmetricDiff(a, b []int) int {
	i, j, diff := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			diff++
			i++
		default:
			diff++
			j++
		}
	}
	return diff + (len(a) - i) + (len(b) - j)
}
