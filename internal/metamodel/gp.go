package metamodel

import (
	"fmt"
	"math"
	"sort"

	"modeldata/internal/calibrate"
	"modeldata/internal/linalg"
)

// GP is a Gaussian-process metamodel Y(x) = β₀ + M(x) with the paper's
// product-exponential covariance (Eq. 5):
//
//	Σ_M(xᵢ, xⱼ) = τ²·Π_k exp(−θ_k·(x_{i,k} − x_{j,k})²).
//
// For deterministic simulations the predictor (Eq. 6) interpolates the
// design points exactly; StochasticKriging adds per-design-point
// simulation noise Σ_ε so the predictor smooths instead.
type GP struct {
	X     [][]float64 // design points
	Beta0 float64
	Tau2  float64
	Theta []float64
	// alpha = [Σ_M + Σ_ε]⁻¹ (ȳ − β₀·1), precomputed at fit time.
	alpha []float64
	// NoiseVar holds Σ_ε's diagonal (nil for deterministic kriging).
	NoiseVar []float64
}

// Cov evaluates the Eq. (5) covariance between two inputs.
func (g *GP) Cov(a, b []float64) float64 {
	s := 0.0
	for k := range a {
		d := a[k] - b[k]
		s += g.Theta[k] * d * d
	}
	return g.Tau2 * math.Exp(-s)
}

// FitGP fits a deterministic (interpolating) kriging metamodel with
// the given hyperparameters: β₀ is estimated by generalized least
// squares and the predictor weights are precomputed.
func FitGP(x [][]float64, y []float64, theta []float64, tau2 float64) (*GP, error) {
	return fitGP(x, y, theta, tau2, nil)
}

// FitStochasticKriging fits the stochastic-kriging variant of
// Ankenman, Nelson & Staum: y are the per-design-point averages over
// Monte Carlo replications and noiseVar[i] = V(xᵢ)/nᵢ is the variance
// of that average. The predictor uses [Σ_M + Σ_ε]⁻¹ and no longer
// interpolates.
func FitStochasticKriging(x [][]float64, y, noiseVar []float64, theta []float64, tau2 float64) (*GP, error) {
	if len(noiseVar) != len(x) {
		return nil, fmt.Errorf("%w: %d noise variances for %d design points", ErrDims, len(noiseVar), len(x))
	}
	return fitGP(x, y, theta, tau2, noiseVar)
}

func fitGP(x [][]float64, y, theta []float64, tau2 float64, noiseVar []float64) (*GP, error) {
	r := len(x)
	if r == 0 || len(y) != r {
		return nil, fmt.Errorf("%w: %d design points, %d responses", ErrBadDesign, r, len(y))
	}
	n := len(x[0])
	if len(theta) != n {
		return nil, fmt.Errorf("%w: %d thetas for %d factors", ErrDims, len(theta), n)
	}
	if tau2 <= 0 {
		return nil, fmt.Errorf("%w: τ² = %g", ErrBadDesign, tau2)
	}
	g := &GP{X: x, Tau2: tau2, Theta: append([]float64(nil), theta...), NoiseVar: noiseVar}
	// Build Σ = Σ_M (+ Σ_ε) with a tiny jitter for conditioning.
	sigma := linalg.NewMatrix(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			sigma.Set(i, j, g.Cov(x[i], x[j]))
		}
		sigma.Set(i, i, sigma.At(i, i)+1e-10)
		if noiseVar != nil {
			if noiseVar[i] < 0 {
				return nil, fmt.Errorf("%w: negative noise variance at %d", ErrBadDesign, i)
			}
			sigma.Set(i, i, sigma.At(i, i)+noiseVar[i])
		}
	}
	chol, err := linalg.Cholesky(sigma)
	if err != nil {
		return nil, fmt.Errorf("metamodel: covariance factorization: %w", err)
	}
	// GLS estimate of β₀: (1ᵀΣ⁻¹y)/(1ᵀΣ⁻¹1).
	ones := make([]float64, r)
	for i := range ones {
		ones[i] = 1
	}
	si1, err := linalg.CholeskySolve(chol, ones)
	if err != nil {
		return nil, err
	}
	siy, err := linalg.CholeskySolve(chol, y)
	if err != nil {
		return nil, err
	}
	g.Beta0 = linalg.Dot(ones, siy) / linalg.Dot(ones, si1)
	resid := make([]float64, r)
	for i := range resid {
		resid[i] = y[i] - g.Beta0
	}
	g.alpha, err = linalg.CholeskySolve(chol, resid)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// Predict evaluates the Eq. (6) optimal predictor
// Ŷ(x₀) = β₀ + Σ_M(x₀,·)ᵀ[Σ]⁻¹(ȳ − β₀·1).
func (g *GP) Predict(x0 []float64) (float64, error) {
	if len(x0) != len(g.X[0]) {
		return 0, fmt.Errorf("%w: point has %d factors, want %d", ErrDims, len(x0), len(g.X[0]))
	}
	s := g.Beta0
	for i, xi := range g.X {
		s += g.Cov(x0, xi) * g.alpha[i]
	}
	return s, nil
}

// ThetaImportance classifies the factors by their GP sensitivity
// coefficients (§4.3): θ_j ≈ 0 means the correlation in dimension j is
// ≈ 1 everywhere, so the response does not vary with factor j. It
// returns the indexes with θ_j ≥ threshold.
func ThetaImportance(theta []float64, threshold float64) []int {
	var out []int
	for j, v := range theta {
		if v >= threshold {
			out = append(out, j)
		}
	}
	return out
}

// FitGPMLE selects the GP hyperparameters (θ, τ²) by maximizing the
// profile log likelihood of the design data with Nelder-Mead over log
// hyperparameters, then fits the GP. For stochastic data pass noiseVar
// (nil for deterministic kriging).
func FitGPMLE(x [][]float64, y []float64, noiseVar []float64, opts calibrate.NMOptions) (*GP, error) {
	r := len(x)
	if r == 0 || len(y) != r {
		return nil, fmt.Errorf("%w: %d design points, %d responses", ErrBadDesign, r, len(y))
	}
	n := len(x[0])
	negLL := func(logParams []float64) float64 {
		theta := make([]float64, n)
		for j := range theta {
			theta[j] = math.Exp(logParams[j])
		}
		tau2 := math.Exp(logParams[n])
		ll, err := gpLogLikelihood(x, y, theta, tau2, noiseVar)
		if err != nil {
			return 1e300
		}
		return -ll
	}
	start := make([]float64, n+1)
	for j := range start {
		start[j] = 0 // θ = 1, τ² = 1
	}
	res, err := calibrate.NelderMead(negLL, start, opts)
	if err != nil {
		return nil, err
	}
	theta := make([]float64, n)
	for j := range theta {
		theta[j] = math.Exp(res.X[j])
	}
	tau2 := math.Exp(res.X[n])
	return fitGP(x, y, theta, tau2, noiseVar)
}

// gpLogLikelihood evaluates the multivariate normal log likelihood of
// the responses under the GP prior with the given hyperparameters.
func gpLogLikelihood(x [][]float64, y, theta []float64, tau2 float64, noiseVar []float64) (float64, error) {
	g := &GP{Tau2: tau2, Theta: theta}
	r := len(x)
	sigma := linalg.NewMatrix(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			sigma.Set(i, j, g.Cov(x[i], x[j]))
		}
		sigma.Set(i, i, sigma.At(i, i)+1e-10)
		if noiseVar != nil {
			sigma.Set(i, i, sigma.At(i, i)+noiseVar[i])
		}
	}
	chol, err := linalg.Cholesky(sigma)
	if err != nil {
		return 0, err
	}
	ones := make([]float64, r)
	for i := range ones {
		ones[i] = 1
	}
	si1, err := linalg.CholeskySolve(chol, ones)
	if err != nil {
		return 0, err
	}
	siy, err := linalg.CholeskySolve(chol, y)
	if err != nil {
		return 0, err
	}
	beta0 := linalg.Dot(ones, siy) / linalg.Dot(ones, si1)
	resid := make([]float64, r)
	for i := range resid {
		resid[i] = y[i] - beta0
	}
	sir, err := linalg.CholeskySolve(chol, resid)
	if err != nil {
		return 0, err
	}
	quad := linalg.Dot(resid, sir)
	logDet := 0.0
	for i := 0; i < r; i++ {
		logDet += 2 * math.Log(chol.At(i, i))
	}
	return -0.5 * (quad + logDet + float64(r)*math.Log(2*math.Pi)), nil
}

// ThetaImportanceByGap classifies factors by the largest gap in the
// sorted log-sensitivities: MLE-fitted θ values for inactive factors
// collapse toward zero across many orders of magnitude, so a fixed
// threshold is brittle while the log-scale gap between the active and
// inactive groups is enormous. Values below floor are clamped before
// the gap analysis (floor ≤ 0 selects 1e-12). If all θ are within one
// decade, every factor is reported important.
func ThetaImportanceByGap(theta []float64, floor float64) []int {
	if len(theta) == 0 {
		return nil
	}
	if floor <= 0 {
		floor = 1e-12
	}
	type entry struct {
		idx int
		lg  float64
	}
	entries := make([]entry, len(theta))
	for i, v := range theta {
		if v < floor {
			v = floor
		}
		entries[i] = entry{idx: i, lg: math.Log10(v)}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].lg < entries[b].lg })
	// Largest adjacent gap in sorted log space.
	gapAt, gapSize := -1, 1.0 // require at least one decade
	for i := 1; i < len(entries); i++ {
		if g := entries[i].lg - entries[i-1].lg; g > gapSize {
			gapSize = g
			gapAt = i
		}
	}
	if gapAt < 0 {
		out := make([]int, len(theta))
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	for _, e := range entries[gapAt:] {
		out = append(out, e.idx)
	}
	sort.Ints(out)
	return out
}
