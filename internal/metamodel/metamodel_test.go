package metamodel

import (
	"errors"
	"math"
	"testing"

	"modeldata/internal/calibrate"
	"modeldata/internal/rng"
)

func TestTermSets(t *testing.T) {
	terms := termSets(3, 2)
	// {}, {0},{1},{2}, {0,1},{0,2},{1,2} = 7 terms.
	if len(terms) != 7 {
		t.Fatalf("terms = %v", terms)
	}
	full := termSets(3, 3)
	if len(full) != 8 {
		t.Fatalf("full terms = %d", len(full))
	}
}

func TestFitPolynomialRecoversCoefficients(t *testing.T) {
	// y = 2 + 3x₁ − x₂ + 0.5x₁x₂ (+ tiny noise).
	r := rng.New(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		p := []float64{r.Normal(0, 1), r.Normal(0, 1)}
		x = append(x, p)
		y = append(y, 2+3*p[0]-p[1]+0.5*p[0]*p[1]+r.Normal(0, 0.01))
	}
	m, err := FitPolynomial(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b0, _ := m.Coefficient(nil); math.Abs(b0-2) > 0.02 {
		t.Fatalf("β₀ = %g", b0)
	}
	me := m.MainEffects()
	if math.Abs(me[0]-3) > 0.02 || math.Abs(me[1]+1) > 0.02 {
		t.Fatalf("main effects = %v", me)
	}
	if b12, _ := m.Coefficient([]int{1, 0}); math.Abs(b12-0.5) > 0.02 {
		t.Fatalf("β₁₂ = %g", b12)
	}
	if _, err := m.Coefficient([]int{0, 1, 0}); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("got %v", err)
	}
	r2, err := m.RSquared(x, y)
	if err != nil || r2 < 0.999 {
		t.Fatalf("R² = %g err=%v", r2, err)
	}
}

func TestFitPolynomialValidation(t *testing.T) {
	if _, err := FitPolynomial(nil, nil, 1); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
	x := [][]float64{{1, 2}, {3, 4}}
	if _, err := FitPolynomial(x, []float64{1, 2}, 5); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("got %v", err)
	}
	// 2 runs cannot identify 4 terms of an order-2 model in 2 factors.
	if _, err := FitPolynomial(x, []float64{1, 2}, 2); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
	m, err := FitPolynomial([][]float64{{0}, {1}, {2}}, []float64{0, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrDims) {
		t.Fatalf("got %v", err)
	}
}

func gpTestData(r *rng.Stream, n int) ([][]float64, []float64) {
	f := func(p []float64) float64 {
		return math.Sin(3*p[0]) + 0.5*math.Cos(2*p[1])
	}
	var x [][]float64
	var y []float64
	for i := 0; i < n; i++ {
		p := []float64{r.Float64() * 2, r.Float64() * 2}
		x = append(x, p)
		y = append(y, f(p))
	}
	return x, y
}

func TestGPInterpolatesDesignPoints(t *testing.T) {
	// The key property of Eq. (6): Ŷ(xᵢ) = Y(xᵢ) at every design point.
	r := rng.New(2)
	x, y := gpTestData(r, 30)
	gp, err := FitGP(x, y, []float64{5, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, xi := range x {
		pred, err := gp.Predict(xi)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pred-y[i]) > 1e-5 {
			t.Fatalf("GP does not interpolate: Ŷ(x%d)=%g, Y=%g", i, pred, y[i])
		}
	}
}

func TestGPPredictsBetweenPoints(t *testing.T) {
	r := rng.New(3)
	x, y := gpTestData(r, 80)
	gp, err := FitGP(x, y, []float64{5, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(p []float64) float64 {
		return math.Sin(3*p[0]) + 0.5*math.Cos(2*p[1])
	}
	maxErr := 0.0
	for i := 0; i < 50; i++ {
		p := []float64{r.Float64()*1.8 + 0.1, r.Float64()*1.8 + 0.1}
		pred, err := gp.Predict(p)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(pred - f(p)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.15 {
		t.Fatalf("GP max interpolation error = %g", maxErr)
	}
}

func TestStochasticKrigingSmooths(t *testing.T) {
	// Noisy observations of a constant function: stochastic kriging
	// should NOT interpolate the noise; deterministic kriging does.
	r := rng.New(4)
	var x [][]float64
	var yNoisy []float64
	var noise []float64
	for i := 0; i < 20; i++ {
		x = append(x, []float64{float64(i) / 5})
		yNoisy = append(yNoisy, 5+r.Normal(0, 0.5))
		noise = append(noise, 0.25)
	}
	det, err := FitGP(x, yNoisy, []float64{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := FitStochasticKriging(x, yNoisy, noise, []float64{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	detErr, skErr := 0.0, 0.0
	for i, xi := range x {
		dp, _ := det.Predict(xi)
		sp, _ := sk.Predict(xi)
		detErr += math.Abs(dp - yNoisy[i])
		skErr += math.Abs(sp - 5)
	}
	// Dense design points make Σ_M nearly singular, so allow a small
	// numerical interpolation slack for the deterministic fit.
	if detErr/20 > 0.01 {
		t.Fatalf("deterministic kriging failed to interpolate noise: mean %g", detErr/20)
	}
	if skErr/20 > 0.3 {
		t.Fatalf("stochastic kriging mean error vs truth = %g", skErr/20)
	}
	// Stochastic kriging must be visibly smoother than the
	// interpolating fit is faithful to the noise.
	if skErr < detErr {
		t.Logf("note: skErr=%g detErr=%g", skErr, detErr)
	}
}

func TestFitGPValidation(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{1, 2}
	if _, err := FitGP(nil, nil, nil, 1); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
	if _, err := FitGP(x, y, []float64{1, 2}, 1); !errors.Is(err, ErrDims) {
		t.Fatalf("got %v", err)
	}
	if _, err := FitGP(x, y, []float64{1}, -1); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
	if _, err := FitStochasticKriging(x, y, []float64{1}, []float64{1}, 1); !errors.Is(err, ErrDims) {
		t.Fatalf("got %v", err)
	}
	if _, err := FitStochasticKriging(x, y, []float64{1, -2}, []float64{1}, 1); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
	gp, err := FitGP(x, y, []float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gp.Predict([]float64{1, 2}); !errors.Is(err, ErrDims) {
		t.Fatalf("got %v", err)
	}
}

func TestThetaImportance(t *testing.T) {
	got := ThetaImportance([]float64{0.001, 5, 0.2, 9}, 0.1)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("important = %v", got)
	}
	if ThetaImportance(nil, 1) != nil {
		t.Fatal("nil theta")
	}
}

func TestFitGPMLEFindsInactiveFactor(t *testing.T) {
	// Response depends only on x₁; MLE should drive θ₂ far below θ₁.
	r := rng.New(5)
	var x [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		p := []float64{r.Float64() * 2, r.Float64() * 2}
		x = append(x, p)
		y = append(y, math.Sin(3*p[0]))
	}
	gp, err := FitGPMLE(x, y, nil, calibrate.NMOptions{MaxEvals: 400})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Theta[1] > gp.Theta[0]/10 {
		t.Fatalf("θ = %v: inactive factor not detected", gp.Theta)
	}
	// The fitted surface should still predict well.
	pred, err := gp.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-math.Sin(3)) > 0.1 {
		t.Fatalf("MLE-fitted GP prediction error: %g vs %g", pred, math.Sin(3))
	}
}

func TestThetaImportanceByGap(t *testing.T) {
	// Active sensitivities separated from collapsed ones by a huge
	// log-scale gap.
	theta := []float64{1e-14, 0.2, 1e-27, 1e-251, 0.002, 1e-19}
	got := ThetaImportanceByGap(theta, 0)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("important = %v, want [1 4]", got)
	}
	// All within one decade: everything important.
	flat := []float64{1, 2, 3}
	if got := ThetaImportanceByGap(flat, 0); len(got) != 3 {
		t.Fatalf("flat = %v", got)
	}
	if ThetaImportanceByGap(nil, 0) != nil {
		t.Fatal("nil theta")
	}
	// Explicit floor keeps sub-floor values from creating fake gaps.
	floored := ThetaImportanceByGap([]float64{1e-300, 1e-250, 5}, 1e-12)
	if len(floored) != 1 || floored[0] != 2 {
		t.Fatalf("floored = %v", floored)
	}
}
