// Package metamodel implements the simulation metamodels of §4.1 of
// the paper: polynomial response-surface models fitted by least squares
// (from plain linear models up to full interaction models), Gaussian-
// process metamodels (kriging) with the paper's product-exponential
// covariance and the optimal predictor of Eq. (6), and stochastic
// kriging, which adds intrinsic simulation noise [Σ_M + Σ_ε]⁻¹.
// Metamodels support "simulation on demand": once fitted, model output
// at new inputs is approximated almost instantly.
package metamodel

import (
	"errors"
	"fmt"
	"sort"

	"modeldata/internal/linalg"
)

// Common errors.
var (
	ErrBadDesign = errors.New("metamodel: invalid design")
	ErrBadOrder  = errors.New("metamodel: invalid interaction order")
	ErrDims      = errors.New("metamodel: dimension mismatch")
)

// Polynomial is the classic polynomial metamodel of Eq. (3):
// Y(x) = β₀ + Σβᵢxᵢ + Σβᵢⱼxᵢxⱼ + … + ε, fitted up to interaction
// order Order (1 = the simple linear model).
type Polynomial struct {
	N     int     // input dimension
	Order int     // highest interaction order kept
	Terms [][]int // variable index sets; Terms[0] = {} is the intercept
	Beta  []float64
}

// termSets enumerates the index subsets of {0..n−1} with size ≤ order,
// in size-then-lexicographic order.
func termSets(n, order int) [][]int {
	var out [][]int
	out = append(out, []int{}) // intercept
	var rec func(start int, cur []int)
	bySize := make([][][]int, order+1)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			cp := append([]int(nil), cur...)
			bySize[len(cur)] = append(bySize[len(cur)], cp)
		}
		if len(cur) == order {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	for s := 1; s <= order; s++ {
		out = append(out, bySize[s]...)
	}
	return out
}

// FitPolynomial fits the polynomial metamodel to design points X
// (rows = runs) and responses y.
func FitPolynomial(x [][]float64, y []float64, order int) (*Polynomial, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d design points, %d responses", ErrBadDesign, len(x), len(y))
	}
	n := len(x[0])
	if order < 1 || order > n {
		return nil, fmt.Errorf("%w: order %d for %d factors", ErrBadOrder, order, n)
	}
	terms := termSets(n, order)
	if len(x) < len(terms) {
		return nil, fmt.Errorf("%w: %d runs cannot identify %d terms", ErrBadDesign, len(x), len(terms))
	}
	dm := linalg.NewMatrix(len(x), len(terms))
	for i, row := range x {
		if len(row) != n {
			return nil, fmt.Errorf("%w: run %d has %d factors, want %d", ErrBadDesign, i, len(row), n)
		}
		for j, term := range terms {
			v := 1.0
			for _, k := range term {
				v *= row[k]
			}
			dm.Set(i, j, v)
		}
	}
	beta, err := linalg.OLS(dm, y)
	if err != nil {
		return nil, err
	}
	return &Polynomial{N: n, Order: order, Terms: terms, Beta: beta}, nil
}

// Predict evaluates the fitted response surface at x.
func (p *Polynomial) Predict(x []float64) (float64, error) {
	if len(x) != p.N {
		return 0, fmt.Errorf("%w: point has %d factors, want %d", ErrDims, len(x), p.N)
	}
	out := 0.0
	for j, term := range p.Terms {
		v := p.Beta[j]
		for _, k := range term {
			v *= x[k]
		}
		out += v
	}
	return out, nil
}

// MainEffects returns the first-order coefficients β₁…βₙ — the
// "sensitivities" used for factor classification (§4.3).
func (p *Polynomial) MainEffects() []float64 {
	out := make([]float64, p.N)
	for j, term := range p.Terms {
		if len(term) == 1 {
			out[term[0]] = p.Beta[j]
		}
	}
	return out
}

// Coefficient returns the coefficient of the interaction term over the
// given (sorted) variable indexes; an empty set gives β₀.
func (p *Polynomial) Coefficient(vars []int) (float64, error) {
	sorted := append([]int(nil), vars...)
	sort.Ints(sorted)
	for j, term := range p.Terms {
		if equalInts(term, sorted) {
			return p.Beta[j], nil
		}
	}
	return 0, fmt.Errorf("%w: term %v not in the order-%d model", ErrBadOrder, vars, p.Order)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RSquared returns the coefficient of determination of the fit on the
// training design.
func (p *Polynomial) RSquared(x [][]float64, y []float64) (float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, ErrBadDesign
	}
	mean := 0.0
	for _, v := range y {
		mean += v / float64(len(y))
	}
	ssTot, ssRes := 0.0, 0.0
	for i, row := range x {
		pred, err := p.Predict(row)
		if err != nil {
			return 0, err
		}
		ssTot += (y[i] - mean) * (y[i] - mean)
		ssRes += (y[i] - pred) * (y[i] - pred)
	}
	if ssTot == 0 { //lint:allow floateq exactly constant response: R² is 1 by convention, and any nonzero ssTot divides safely
		return 1, nil
	}
	return 1 - ssRes/ssTot, nil
}
