package doe

import (
	"errors"
	"testing"
)

func TestResolutionOfKnownDesigns(t *testing.T) {
	cases := []struct {
		name string
		n    int
		gens []Generator
		want int
	}{
		{
			name: "2^(7-4) III (Figure 3)",
			n:    7,
			gens: []Generator{
				{Factor: 3, Words: []int{0, 1}},
				{Factor: 4, Words: []int{0, 2}},
				{Factor: 5, Words: []int{1, 2}},
				{Factor: 6, Words: []int{0, 1, 2}},
			},
			want: 3,
		},
		{
			name: "2^(4-1) IV",
			n:    4,
			gens: []Generator{{Factor: 3, Words: []int{0, 1, 2}}},
			want: 4,
		},
		{
			name: "2^(5-1) V",
			n:    5,
			gens: []Generator{{Factor: 4, Words: []int{0, 1, 2, 3}}},
			want: 5,
		},
		{
			name: "2^(7-1) VII",
			n:    7,
			gens: []Generator{{Factor: 6, Words: []int{0, 1, 2, 3, 4, 5}}},
			want: 7,
		},
		{
			name: "2^(7-2) IV (the 32-run design)",
			n:    7,
			gens: []Generator{
				{Factor: 5, Words: []int{0, 1, 2, 3}},
				{Factor: 6, Words: []int{0, 1, 3, 4}},
			},
			want: 4,
		},
	}
	for _, c := range cases {
		got, err := Resolution(c.n, c.gens)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: resolution = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestResolutionFullFactorial(t *testing.T) {
	got, err := Resolution(5, nil)
	if err != nil || got != 0 {
		t.Fatalf("full factorial resolution = %d err=%v", got, err)
	}
}

func TestDefiningWordsCount(t *testing.T) {
	// p generators ⇒ 2^p − 1 defining words.
	gens := []Generator{
		{Factor: 3, Words: []int{0, 1}},
		{Factor: 4, Words: []int{0, 2}},
		{Factor: 5, Words: []int{1, 2}},
		{Factor: 6, Words: []int{0, 1, 2}},
	}
	words, err := DefiningWords(7, gens)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 15 {
		t.Fatalf("defining words = %d, want 15", len(words))
	}
	// Sorted by length; the shortest must be length 3 for this III
	// design.
	if len(words[0]) != 3 {
		t.Fatalf("shortest word = %v", words[0])
	}
}

func TestWordLengthPattern(t *testing.T) {
	gens := []Generator{{Factor: 3, Words: []int{0, 1, 2}}}
	pattern, err := WordLengthPattern(4, gens)
	if err != nil {
		t.Fatal(err)
	}
	// Single generator: one word of length 4.
	for l, count := range pattern {
		want := 0
		if l == 4 {
			want = 1
		}
		if count != want {
			t.Fatalf("pattern[%d] = %d", l, count)
		}
	}
}

func TestDefiningWordsErrors(t *testing.T) {
	if _, err := DefiningWords(3, []Generator{{Factor: 9, Words: []int{0}}}); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
	if _, err := DefiningWords(3, []Generator{{Factor: 2, Words: []int{9}}}); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
}

func TestStandardFractions(t *testing.T) {
	cases := []struct {
		factors, runs, wantRes int
	}{
		{4, 8, 4},
		{5, 16, 5},
		{5, 8, 3},
		{6, 32, 6},
		{6, 16, 4},
		{6, 8, 3},
		{7, 64, 7},
		{7, 32, 4},
		{7, 16, 4},
		{8, 16, 4},
		{8, 32, 4},
		{8, 64, 5},
	}
	for _, c := range cases {
		d, gens, err := StandardFraction(c.factors, c.runs)
		if err != nil {
			t.Fatalf("%d factors / %d runs: %v", c.factors, c.runs, err)
		}
		if d.NumRuns() != c.runs || d.Factors != c.factors {
			t.Fatalf("%d/%d: shape %d×%d", c.factors, c.runs, d.NumRuns(), d.Factors)
		}
		if !d.ColumnsOrthogonal() || !d.Balanced() {
			t.Fatalf("%d/%d: not orthogonal/balanced", c.factors, c.runs)
		}
		res, err := Resolution(c.factors, gens)
		if err != nil {
			t.Fatal(err)
		}
		if res != c.wantRes {
			t.Errorf("%d factors / %d runs: resolution %d, want %d", c.factors, c.runs, res, c.wantRes)
		}
	}
	if _, _, err := StandardFraction(9, 8); !errors.Is(err, ErrNoDesign) {
		t.Fatalf("got %v", err)
	}
}

func TestPlackettBurman12(t *testing.T) {
	d, err := PlackettBurman12(11)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRuns() != 12 || d.Factors != 11 {
		t.Fatalf("shape %d×%d", d.NumRuns(), d.Factors)
	}
	if !d.ColumnsOrthogonal() {
		t.Fatal("PB12 columns not orthogonal")
	}
	if !d.Balanced() {
		t.Fatal("PB12 columns not balanced")
	}
	// Fewer factors reuse the leading columns.
	d5, err := PlackettBurman12(5)
	if err != nil {
		t.Fatal(err)
	}
	if d5.Factors != 5 || !d5.ColumnsOrthogonal() {
		t.Fatal("PB12(5) invalid")
	}
	if _, err := PlackettBurman12(12); !errors.Is(err, ErrBadFactors) {
		t.Fatalf("got %v", err)
	}
	if _, err := PlackettBurman12(0); !errors.Is(err, ErrBadFactors) {
		t.Fatalf("got %v", err)
	}
}

func TestPlackettBurmanEstimatesElevenMainEffects(t *testing.T) {
	// A saturated screen: 12 runs estimate 11 main effects.
	d, err := PlackettBurman12(11)
	if err != nil {
		t.Fatal(err)
	}
	beta := []float64{1, 0, 2, 0, 0, -3, 0, 0, 0, 4, 0}
	y := make([]float64, d.NumRuns())
	for i, run := range d.Runs {
		v := 0.0
		for j, b := range beta {
			v += b * float64(run[j])
		}
		y[i] = v
	}
	effects, err := MainEffects(d, y)
	if err != nil {
		t.Fatal(err)
	}
	for j, e := range effects {
		if diff := e.Effect - 2*beta[j]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("factor %d effect %g, want %g", j, e.Effect, 2*beta[j])
		}
	}
}
