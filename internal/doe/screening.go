package doe

import (
	"fmt"
	"sort"

	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// This file implements sequential bifurcation (§4.3): under a linear
// metamodel with Gaussian observation noise and non-negative main
// effects, important factors can be identified by *group* tests — run
// the simulation with a whole group of factors at their high levels and
// the rest low, compare against the all-low response, and recurse only
// into groups that show an effect. Group testing is far cheaper than
// testing each factor individually.

// Simulator evaluates the model at a ±1 factor-level vector.
type Simulator func(levels []int, r *rng.Stream) float64

// SBOptions tune sequential bifurcation.
type SBOptions struct {
	// Replications per probe point (averaged to fight noise). Default 3.
	Replications int
	// Threshold is the minimum group effect considered important; a
	// group whose estimated effect falls below it is discarded whole.
	Threshold float64
	// Seed drives the simulation randomness.
	Seed uint64
}

func (o SBOptions) withDefaults() SBOptions {
	if o.Replications <= 0 {
		o.Replications = 3
	}
	return o
}

// SBResult reports a sequential bifurcation run.
type SBResult struct {
	Important []int
	// Runs is the number of simulator invocations spent (the quantity
	// compared against one-factor-at-a-time screening in E12).
	Runs int
}

// SequentialBifurcation screens n factors with the given simulator.
// The probe at "group prefix high" follows Bettonvil & Kleijnen's
// formulation: factors 1…k high, the rest low; the effect of group
// (a, b] is y(b) − y(a), which under the linear model equals the sum of
// the group's main effects.
func SequentialBifurcation(n int, sim Simulator, opts SBOptions) (SBResult, error) {
	if n < 1 {
		return SBResult{}, fmt.Errorf("%w: %d", ErrBadFactors, n)
	}
	if sim == nil {
		return SBResult{}, fmt.Errorf("%w: nil simulator", ErrBadDesign)
	}
	opts = opts.withDefaults()
	stream := rng.New(opts.Seed)
	var result SBResult

	// probe(k) = averaged response with factors [0, k) high, rest low;
	// memoized because the recursion reuses boundary probes.
	cache := make(map[int]float64)
	probe := func(k int) float64 {
		if v, ok := cache[k]; ok {
			return v
		}
		levels := make([]int, n)
		for j := 0; j < n; j++ {
			if j < k {
				levels[j] = 1
			} else {
				levels[j] = -1
			}
		}
		sum := 0.0
		for rep := 0; rep < opts.Replications; rep++ {
			sum += sim(levels, stream.Split())
			result.Runs++
		}
		v := sum / float64(opts.Replications)
		cache[k] = v
		return v
	}

	var recurse func(lo, hi int)
	recurse = func(lo, hi int) {
		effect := probe(hi) - probe(lo)
		if effect <= opts.Threshold {
			return // group shows no effect: discard whole
		}
		if hi-lo == 1 {
			result.Important = append(result.Important, lo)
			return
		}
		mid := (lo + hi) / 2
		recurse(lo, mid)
		recurse(mid, hi)
	}
	recurse(0, n)
	sort.Ints(result.Important)
	return result, nil
}

// OneFactorAtATime is the naive screening baseline: each factor is
// probed individually against the all-low base point.
func OneFactorAtATime(n int, sim Simulator, opts SBOptions) (SBResult, error) {
	if n < 1 {
		return SBResult{}, fmt.Errorf("%w: %d", ErrBadFactors, n)
	}
	if sim == nil {
		return SBResult{}, fmt.Errorf("%w: nil simulator", ErrBadDesign)
	}
	opts = opts.withDefaults()
	stream := rng.New(opts.Seed)
	var result SBResult
	base := make([]int, n)
	for j := range base {
		base[j] = -1
	}
	probeAt := func(levels []int) float64 {
		sum := 0.0
		for rep := 0; rep < opts.Replications; rep++ {
			sum += sim(levels, stream.Split())
			result.Runs++
		}
		return sum / float64(opts.Replications)
	}
	y0 := probeAt(base)
	for j := 0; j < n; j++ {
		levels := append([]int(nil), base...)
		levels[j] = 1
		if probeAt(levels)-y0 > opts.Threshold {
			result.Important = append(result.Important, j)
		}
	}
	return result, nil
}

// LinearScreeningModel builds a Simulator for a linear metamodel with
// the given main effects (on the ±1 scale) and Gaussian noise — the
// §4.3 setting in which sequential bifurcation is provably efficient.
func LinearScreeningModel(mainEffects []float64, noise float64) Simulator {
	return func(levels []int, r *rng.Stream) float64 {
		y := 0.0
		for j, b := range mainEffects {
			y += b * float64(levels[j])
		}
		if noise > 0 {
			y += r.Normal(0, noise)
		}
		return y
	}
}

// EffectVariance estimates the replication noise of a simulator at the
// all-low point — useful for choosing SBOptions.Threshold.
func EffectVariance(n int, sim Simulator, reps int, seed uint64) float64 {
	stream := rng.New(seed)
	levels := make([]int, n)
	for j := range levels {
		levels[j] = -1
	}
	xs := make([]float64, reps)
	for i := range xs {
		xs[i] = sim(levels, stream.Split())
	}
	return stats.Variance(xs)
}
