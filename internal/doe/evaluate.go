package doe

import (
	"context"
	"fmt"

	"modeldata/internal/parallel"
	"modeldata/internal/rng"
	"modeldata/internal/stats"
)

// EvalOptions tune EvaluateDesign.
type EvalOptions struct {
	// Replications per design point (averaged to fight noise).
	// Default 1.
	Replications int
	// Seed drives the simulation randomness.
	Seed uint64
	// Workers bounds design-point parallelism; zero uses the context
	// default.
	Workers int
}

// EvaluateDesign runs the simulator once (or Replications times,
// averaged) at every run of a two-level design and returns the
// per-run responses — the y vector MainEffects and metamodel fitting
// consume. Design points fan out over the parallel runtime with one
// substream per run, split in run order, so responses are bit-identical
// at any worker count. The simulator must be safe for concurrent calls
// with distinct streams. Cancellation of ctx aborts between runs.
func EvaluateDesign(ctx context.Context, d *Design, sim Simulator, opts EvalOptions) ([]float64, error) {
	if d == nil || d.NumRuns() == 0 {
		return nil, fmt.Errorf("%w: empty design", ErrBadDesign)
	}
	if sim == nil {
		return nil, fmt.Errorf("%w: nil simulator", ErrBadDesign)
	}
	reps := opts.Replications
	if reps <= 0 {
		reps = 1
	}
	out := make([]float64, d.NumRuns())
	err := parallel.ForStreams(ctx, rng.New(opts.Seed), d.NumRuns(), parallel.Options{Workers: opts.Workers},
		func(i int, r *rng.Stream) error {
			sum := 0.0
			for rep := 0; rep < reps; rep++ {
				sum += sim(d.Runs[i], r.Split())
			}
			out[i] = sum / float64(reps)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReplicationNoise estimates the per-point replication standard
// deviation of a simulator over a design by evaluating every run twice
// — a quick diagnostic for choosing EvalOptions.Replications.
func ReplicationNoise(ctx context.Context, d *Design, sim Simulator, opts EvalOptions) (float64, error) {
	a, err := EvaluateDesign(ctx, d, sim, opts)
	if err != nil {
		return 0, err
	}
	opts.Seed++
	b, err := EvaluateDesign(ctx, d, sim, opts)
	if err != nil {
		return 0, err
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	// Var(a−b) = 2σ² for independent replicates.
	return stats.StdDev(diffs) / 1.4142135623730951, nil
}
