package doe

import (
	"fmt"
	"math"

	"modeldata/internal/rng"
)

// LatinHypercube is an n-factor, r-run Latin hypercube design: each
// column is a permutation of the r centered levels
// −(r−1)/2, …, (r−1)/2 (for r = 9: −4 … 4, as in Figure 5), so each
// possible level appears exactly once per factor.
type LatinHypercube struct {
	Factors int
	Levels  [][]int // Levels[i][j] = centered level of factor j in run i
}

// NumRuns returns the number of design points.
func (lh *LatinHypercube) NumRuns() int { return len(lh.Levels) }

// Points maps the centered integer levels onto [lo, hi] per factor.
func (lh *LatinHypercube) Points(lo, hi float64) [][]float64 {
	r := lh.NumRuns()
	span := float64(r - 1)
	out := make([][]float64, r)
	for i, run := range lh.Levels {
		row := make([]float64, len(run))
		for j, lvl := range run {
			frac := (float64(lvl) + span/2) / span
			row[j] = lo + frac*(hi-lo)
		}
		out[i] = row
	}
	return out
}

// IsLatin verifies the defining property: each centered level appears
// exactly once in every column.
func (lh *LatinHypercube) IsLatin() bool {
	r := lh.NumRuns()
	for j := 0; j < lh.Factors; j++ {
		seen := make(map[int]bool, r)
		for _, run := range lh.Levels {
			seen[run[j]] = true
		}
		for lvl := 0; lvl < r; lvl++ {
			if !seen[lvl-(r-1)/2] {
				return false
			}
		}
	}
	return true
}

// MaxColumnCorrelation returns the largest absolute pairwise Pearson
// correlation between factor columns; 0 means fully orthogonal.
func (lh *LatinHypercube) MaxColumnCorrelation() float64 {
	r := lh.NumRuns()
	if r < 2 {
		return 0
	}
	maxCorr := 0.0
	// Centered levels have mean 0 by construction; variance is equal
	// across columns, so correlation reduces to normalized dot product.
	norm := 0.0
	for i := 0; i < r; i++ {
		lvl := float64(lh.Levels[i][0])
		norm += lvl * lvl
	}
	for a := 0; a < lh.Factors; a++ {
		for b := a + 1; b < lh.Factors; b++ {
			dot := 0.0
			for i := 0; i < r; i++ {
				dot += float64(lh.Levels[i][a]) * float64(lh.Levels[i][b])
			}
			if c := math.Abs(dot / norm); c > maxCorr {
				maxCorr = c
			}
		}
	}
	return maxCorr
}

// RandomLH builds the basic randomized Latin hypercube of §4.2: each
// column is an independent uniform permutation of the r levels. r must
// be ≥ 2; the paper notes these behave poorly unless r ≫ n.
func RandomLH(n, r int, stream *rng.Stream) (*LatinHypercube, error) {
	if n < 1 || r < 2 {
		return nil, fmt.Errorf("%w: n=%d r=%d", ErrBadDesign, n, r)
	}
	lh := &LatinHypercube{Factors: n, Levels: make([][]int, r)}
	for i := range lh.Levels {
		lh.Levels[i] = make([]int, n)
	}
	offset := (r - 1) / 2
	for j := 0; j < n; j++ {
		perm := stream.Perm(r)
		for i := 0; i < r; i++ {
			lh.Levels[i][j] = perm[i] - offset
		}
	}
	return lh, nil
}

// NearlyOrthogonalLH builds a nearly orthogonal Latin hypercube by
// iterated column-swap descent on the maximum column correlation
// (Cioppa & Lucas construct NOLHs algebraically; a seeded local search
// achieves the same "good space-filling and orthogonality" contract
// for the design sizes used here). For odd r and small n the search
// typically reaches exact orthogonality (e.g. the n=2, r=9 design of
// Figure 5).
func NearlyOrthogonalLH(n, r int, seed uint64, maxIters int) (*LatinHypercube, error) {
	stream := rng.New(seed)
	lh, err := RandomLH(n, r, stream)
	if err != nil {
		return nil, err
	}
	if maxIters <= 0 {
		maxIters = 20000
	}
	best := lh.MaxColumnCorrelation()
	for iter := 0; iter < maxIters && best > 0; iter++ {
		// Swap two levels within a random non-first column.
		j := 0
		if n > 1 {
			j = 1 + stream.Intn(n-1)
		}
		a, b := stream.Intn(r), stream.Intn(r)
		if a == b {
			continue
		}
		lh.Levels[a][j], lh.Levels[b][j] = lh.Levels[b][j], lh.Levels[a][j]
		if c := lh.MaxColumnCorrelation(); c <= best {
			best = c
		} else {
			lh.Levels[a][j], lh.Levels[b][j] = lh.Levels[b][j], lh.Levels[a][j]
		}
	}
	return lh, nil
}

// OrthogonalLH29 returns an exactly orthogonal Latin hypercube for
// n = 2 factors and r = 9 runs with levels −4 … 4 — the configuration
// of Figure 5. It is found by seeded descent and verified orthogonal.
func OrthogonalLH29() (*LatinHypercube, error) {
	for seed := uint64(1); seed < 64; seed++ {
		lh, err := NearlyOrthogonalLH(2, 9, seed, 20000)
		if err != nil {
			return nil, err
		}
		if lh.MaxColumnCorrelation() == 0 { //lint:allow floateq correlation of integer level columns is exactly zero when orthogonal
			return lh, nil
		}
	}
	return nil, fmt.Errorf("%w: orthogonal 2×9 LH not found", ErrNoDesign)
}
