package doe_test

import (
	"fmt"

	"modeldata/internal/doe"
)

// ExampleResolutionIII7 prints the Figure 3 design verbatim.
func ExampleResolutionIII7() {
	d := doe.ResolutionIII7()
	for _, run := range d.Runs {
		for j, v := range run {
			if j > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%+d", v)
		}
		fmt.Println()
	}
	// Output:
	// -1 -1 -1 +1 +1 +1 -1
	// +1 -1 -1 -1 -1 +1 +1
	// -1 +1 -1 -1 +1 -1 +1
	// +1 +1 -1 +1 -1 -1 -1
	// -1 -1 +1 +1 -1 -1 +1
	// +1 -1 +1 -1 +1 -1 -1
	// -1 +1 +1 -1 -1 +1 -1
	// +1 +1 +1 +1 +1 +1 +1
}

// ExampleResolution computes a design's resolution from its defining
// relation.
func ExampleResolution() {
	// Figure 3's generators: D=AB, E=AC, F=BC, G=ABC.
	gens := []doe.Generator{
		{Factor: 3, Words: []int{0, 1}},
		{Factor: 4, Words: []int{0, 2}},
		{Factor: 5, Words: []int{1, 2}},
		{Factor: 6, Words: []int{0, 1, 2}},
	}
	res, err := doe.Resolution(7, gens)
	if err != nil {
		panic(err)
	}
	fmt.Println("resolution:", res)
	// Output:
	// resolution: 3
}
