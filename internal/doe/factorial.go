// Package doe implements the statistical experimental-design toolkit
// of §4.2–4.3 of the paper: two-level full and fractional factorial
// designs (including the resolution III design of Figure 3 and its
// resolution IV fold-over), main-effects analysis (Figure 4) with
// half-normal (Daniel) diagnostics, randomized / orthogonal / nearly
// orthogonal Latin hypercube designs (Figure 5), and sequential
// bifurcation factor screening.
package doe

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"modeldata/internal/rng"
)

// Common errors.
var (
	ErrBadFactors = errors.New("doe: invalid factor count")
	ErrBadDesign  = errors.New("doe: invalid design")
	ErrNoDesign   = errors.New("doe: no design available for this configuration")
)

// Design is a two-level design matrix: Runs[i][j] ∈ {−1, +1} is the
// level of factor j in run i.
type Design struct {
	Factors int
	Runs    [][]int
}

// NumRuns returns the number of runs.
func (d *Design) NumRuns() int { return len(d.Runs) }

// Points converts the ±1 design to float64 rows (for metamodel
// fitting).
func (d *Design) Points() [][]float64 {
	out := make([][]float64, len(d.Runs))
	for i, run := range d.Runs {
		row := make([]float64, len(run))
		for j, v := range run {
			row[j] = float64(v)
		}
		out[i] = row
	}
	return out
}

// ColumnsOrthogonal reports whether every pair of factor columns has
// zero dot product — the property that makes fractional factorial
// analysis clean.
func (d *Design) ColumnsOrthogonal() bool {
	for a := 0; a < d.Factors; a++ {
		for b := a + 1; b < d.Factors; b++ {
			dot := 0
			for _, run := range d.Runs {
				dot += run[a] * run[b]
			}
			if dot != 0 {
				return false
			}
		}
	}
	return true
}

// Balanced reports whether each column has equally many −1 and +1
// levels.
func (d *Design) Balanced() bool {
	for j := 0; j < d.Factors; j++ {
		s := 0
		for _, run := range d.Runs {
			s += run[j]
		}
		if s != 0 {
			return false
		}
	}
	return true
}

// FullFactorial returns the 2ⁿ design in standard order: factor 0
// alternates fastest.
func FullFactorial(n int) (*Design, error) {
	if n < 1 || n > 20 {
		return nil, fmt.Errorf("%w: %d", ErrBadFactors, n)
	}
	runs := 1 << n
	d := &Design{Factors: n, Runs: make([][]int, runs)}
	for i := 0; i < runs; i++ {
		row := make([]int, n)
		for j := 0; j < n; j++ {
			if i&(1<<j) != 0 {
				row[j] = 1
			} else {
				row[j] = -1
			}
		}
		d.Runs[i] = row
	}
	return d, nil
}

// Generator defines one aliased factor of a fractional factorial: the
// target factor's column is the product of the base-factor columns.
type Generator struct {
	Factor int   // index of the generated factor
	Words  []int // indexes of the base factors whose product defines it
}

// FractionalFactorial builds a 2^(n−p) design: a full factorial on the
// base factors (those not named as generator targets) with each
// generated column defined by its generator product.
func FractionalFactorial(n int, gens []Generator) (*Design, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: %d", ErrBadFactors, n)
	}
	generated := make(map[int]Generator, len(gens))
	for _, g := range gens {
		if g.Factor < 0 || g.Factor >= n {
			return nil, fmt.Errorf("%w: generator target %d", ErrBadDesign, g.Factor)
		}
		if _, dup := generated[g.Factor]; dup {
			return nil, fmt.Errorf("%w: duplicate generator for factor %d", ErrBadDesign, g.Factor)
		}
		generated[g.Factor] = g
	}
	var base []int
	for j := 0; j < n; j++ {
		if _, ok := generated[j]; !ok {
			base = append(base, j)
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("%w: all factors generated", ErrBadDesign)
	}
	for _, g := range gens {
		for _, w := range g.Words {
			if _, isGen := generated[w]; isGen {
				return nil, fmt.Errorf("%w: generator for %d references generated factor %d", ErrBadDesign, g.Factor, w)
			}
			if w < 0 || w >= n {
				return nil, fmt.Errorf("%w: generator word %d", ErrBadDesign, w)
			}
		}
	}
	baseDesign, err := FullFactorial(len(base))
	if err != nil {
		return nil, err
	}
	basePos := make(map[int]int, len(base))
	for pos, j := range base {
		basePos[j] = pos
	}
	d := &Design{Factors: n, Runs: make([][]int, baseDesign.NumRuns())}
	for i, baseRun := range baseDesign.Runs {
		row := make([]int, n)
		for pos, j := range base {
			row[j] = baseRun[pos]
		}
		for _, g := range gens {
			v := 1
			for _, w := range g.Words {
				v *= baseRun[basePos[w]]
			}
			row[g.Factor] = v
		}
		d.Runs[i] = row
	}
	return d, nil
}

// ResolutionIII7 returns the resolution III design for seven factors
// shown in Figure 3 of the paper: a 2^(7−4) design with base factors
// (x₁, x₂, x₃) and generators x₄ = x₁x₂, x₅ = x₁x₃, x₆ = x₂x₃,
// x₇ = x₁x₂x₃ — eight runs estimating all seven main effects.
func ResolutionIII7() *Design {
	d, err := FractionalFactorial(7, []Generator{
		{Factor: 3, Words: []int{0, 1}},
		{Factor: 4, Words: []int{0, 2}},
		{Factor: 5, Words: []int{1, 2}},
		{Factor: 6, Words: []int{0, 1, 2}},
	})
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return d
}

// FoldOver returns the fold-over of a design: the original runs plus
// every run with all signs flipped. Folding a resolution III design
// yields a resolution IV design (16 runs for 7 factors), de-aliasing
// main effects from two-factor interactions.
func FoldOver(d *Design) *Design {
	out := &Design{Factors: d.Factors}
	out.Runs = append(out.Runs, d.Runs...)
	for _, run := range d.Runs {
		flipped := make([]int, len(run))
		for j, v := range run {
			flipped[j] = -v
		}
		out.Runs = append(out.Runs, flipped)
	}
	return out
}

// ResolutionIV7 returns the 16-run resolution IV design for seven
// factors referenced in §4.2 (the fold-over of Figure 3).
func ResolutionIV7() *Design { return FoldOver(ResolutionIII7()) }

// ResolutionV7 returns the 32-run 2^(7−2) design referenced in §4.2
// for estimating main effects and second-order interactions with seven
// factors, built with the standard generators x₆ = x₁x₂x₃x₄ and
// x₇ = x₁x₂x₄x₅.
func ResolutionV7() *Design {
	d, err := FractionalFactorial(7, []Generator{
		{Factor: 5, Words: []int{0, 1, 2, 3}},
		{Factor: 6, Words: []int{0, 1, 3, 4}},
	})
	if err != nil {
		panic(err)
	}
	return d
}

// DesignFor returns a two-level design for n factors at the requested
// resolution (3, 4, or 5) when a standard construction is available.
// Resolution 3 uses saturated Plackett-Burman-style powers of two via
// fractional factorials when n+1 is a power of two; other sizes return
// ErrNoDesign.
func DesignFor(n, resolution int) (*Design, error) {
	if n == 7 {
		switch resolution {
		case 3:
			return ResolutionIII7(), nil
		case 4:
			return ResolutionIV7(), nil
		case 5:
			return ResolutionV7(), nil
		}
	}
	return nil, fmt.Errorf("%w: n=%d resolution=%d", ErrNoDesign, n, resolution)
}

// MainEffect is one factor's Figure 4 summary: the average response at
// the low and high levels and the effect (high − low).
type MainEffect struct {
	Factor        int
	LowMean       float64
	HighMean      float64
	Effect        float64
	HalfNormalAbs float64 // |Effect|, filled by HalfNormalScores
}

// MainEffects computes the Figure 4 main-effects plot data from a
// design and its observed responses.
func MainEffects(d *Design, y []float64) ([]MainEffect, error) {
	if len(y) != d.NumRuns() {
		return nil, fmt.Errorf("%w: %d responses for %d runs", ErrBadDesign, len(y), d.NumRuns())
	}
	out := make([]MainEffect, d.Factors)
	for j := 0; j < d.Factors; j++ {
		var loSum, hiSum float64
		var loN, hiN int
		for i, run := range d.Runs {
			if run[j] < 0 {
				loSum += y[i]
				loN++
			} else {
				hiSum += y[i]
				hiN++
			}
		}
		if loN == 0 || hiN == 0 {
			return nil, fmt.Errorf("%w: factor %d never varies", ErrBadDesign, j)
		}
		me := MainEffect{
			Factor:   j,
			LowMean:  loSum / float64(loN),
			HighMean: hiSum / float64(hiN),
		}
		me.Effect = me.HighMean - me.LowMean
		me.HalfNormalAbs = math.Abs(me.Effect)
		out[j] = me
	}
	return out, nil
}

// HalfNormalScores returns the Daniel-plot coordinates for a set of
// effects: the absolute effects sorted ascending, paired with the
// half-normal quantiles Φ⁻¹(0.5 + 0.5·(i−0.5)/m). Effects that stand
// far above the line through the bulk are significant.
func HalfNormalScores(effects []MainEffect) (absEffects, quantiles []float64) {
	m := len(effects)
	absEffects = make([]float64, m)
	for i, e := range effects {
		absEffects[i] = e.HalfNormalAbs
	}
	sort.Float64s(absEffects)
	quantiles = make([]float64, m)
	for i := 0; i < m; i++ {
		p := 0.5 + 0.5*(float64(i)+0.5)/float64(m)
		quantiles[i] = rng.NormalQuantile(p)
	}
	return absEffects, quantiles
}
