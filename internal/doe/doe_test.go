package doe

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"modeldata/internal/metamodel"
	"modeldata/internal/rng"
)

func TestFullFactorial(t *testing.T) {
	d, err := FullFactorial(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRuns() != 8 || !d.Balanced() || !d.ColumnsOrthogonal() {
		t.Fatalf("2³ design invalid: %v", d.Runs)
	}
	if _, err := FullFactorial(0); !errors.Is(err, ErrBadFactors) {
		t.Fatalf("got %v", err)
	}
	if _, err := FullFactorial(25); !errors.Is(err, ErrBadFactors) {
		t.Fatalf("got %v", err)
	}
}

// TestFigure3Exact verifies the resolution III design reproduces
// Figure 3 of the paper row for row.
func TestFigure3Exact(t *testing.T) {
	want := [][]int{
		{-1, -1, -1, 1, 1, 1, -1},
		{1, -1, -1, -1, -1, 1, 1},
		{-1, 1, -1, -1, 1, -1, 1},
		{1, 1, -1, 1, -1, -1, -1},
		{-1, -1, 1, 1, -1, -1, 1},
		{1, -1, 1, -1, 1, -1, -1},
		{-1, 1, 1, -1, -1, 1, -1},
		{1, 1, 1, 1, 1, 1, 1},
	}
	d := ResolutionIII7()
	if d.NumRuns() != 8 || d.Factors != 7 {
		t.Fatalf("shape: %d runs × %d factors", d.NumRuns(), d.Factors)
	}
	for i, row := range want {
		for j, v := range row {
			if d.Runs[i][j] != v {
				t.Fatalf("run %d factor %d = %d, want %d", i+1, j+1, d.Runs[i][j], v)
			}
		}
	}
	if !d.ColumnsOrthogonal() || !d.Balanced() {
		t.Fatal("Figure 3 design not orthogonal/balanced")
	}
}

func TestResolutionIVAndV(t *testing.T) {
	iv := ResolutionIV7()
	if iv.NumRuns() != 16 || !iv.ColumnsOrthogonal() || !iv.Balanced() {
		t.Fatalf("res IV: %d runs", iv.NumRuns())
	}
	v := ResolutionV7()
	if v.NumRuns() != 32 || !v.ColumnsOrthogonal() || !v.Balanced() {
		t.Fatalf("res V: %d runs", v.NumRuns())
	}
	// §4.2's design-size ladder for 7 factors: 8, 16, 32, 128.
	full, _ := FullFactorial(7)
	sizes := []int{ResolutionIII7().NumRuns(), iv.NumRuns(), v.NumRuns(), full.NumRuns()}
	want := []int{8, 16, 32, 128}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("design sizes = %v, want %v", sizes, want)
		}
	}
}

func TestDesignFor(t *testing.T) {
	for _, res := range []int{3, 4, 5} {
		if _, err := DesignFor(7, res); err != nil {
			t.Fatalf("DesignFor(7, %d): %v", res, err)
		}
	}
	if _, err := DesignFor(5, 3); !errors.Is(err, ErrNoDesign) {
		t.Fatalf("got %v", err)
	}
}

func TestFractionalFactorialValidation(t *testing.T) {
	cases := []struct {
		n    int
		gens []Generator
	}{
		{1, nil},
		{3, []Generator{{Factor: 9, Words: []int{0}}}},
		{3, []Generator{{Factor: 2, Words: []int{0}}, {Factor: 2, Words: []int{1}}}},
		{3, []Generator{{Factor: 2, Words: []int{9}}}},
		{2, []Generator{{Factor: 0, Words: []int{1}}, {Factor: 1, Words: []int{0}}}},
	}
	for i, c := range cases {
		if _, err := FractionalFactorial(c.n, c.gens); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Generators referencing generated factors are rejected.
	_, err := FractionalFactorial(4, []Generator{
		{Factor: 2, Words: []int{0, 1}},
		{Factor: 3, Words: []int{2}},
	})
	if !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
}

// TestMainEffectsRecoverLinearModel reproduces Figure 4: on the
// resolution III design, main effects computed from low/high means
// recover the true coefficients of a linear response.
func TestMainEffectsRecoverLinearModel(t *testing.T) {
	d := ResolutionIII7()
	beta := []float64{2, -1, 0, 3, 0.5, 0, -2}
	r := rng.New(1)
	y := make([]float64, d.NumRuns())
	for i, run := range d.Runs {
		v := 10.0
		for j, b := range beta {
			v += b * float64(run[j])
		}
		y[i] = v + r.Normal(0, 0.01)
	}
	effects, err := MainEffects(d, y)
	if err != nil {
		t.Fatal(err)
	}
	for j, e := range effects {
		// Effect (high − low) = 2β under the linear model.
		if math.Abs(e.Effect-2*beta[j]) > 0.05 {
			t.Fatalf("factor %d effect = %g, want %g", j, e.Effect, 2*beta[j])
		}
		if math.Abs((e.LowMean+e.HighMean)/2-10) > 0.05 {
			t.Fatalf("factor %d means %g/%g off-center", j, e.LowMean, e.HighMean)
		}
	}
	// Agreement with the OLS polynomial metamodel's main effects.
	poly, err := metamodel.FitPolynomial(d.Points(), y, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range poly.MainEffects() {
		if math.Abs(2*b-effects[j].Effect) > 1e-9 {
			t.Fatalf("OLS and contrast main effects disagree at %d: %g vs %g", j, 2*b, effects[j].Effect)
		}
	}
}

func TestMainEffectsValidation(t *testing.T) {
	d := ResolutionIII7()
	if _, err := MainEffects(d, []float64{1}); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
	constant := &Design{Factors: 1, Runs: [][]int{{1}, {1}}}
	if _, err := MainEffects(constant, []float64{1, 2}); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
}

func TestHalfNormalScores(t *testing.T) {
	effects := []MainEffect{
		{HalfNormalAbs: 0.1}, {HalfNormalAbs: 5}, {HalfNormalAbs: 0.2},
	}
	abs, q := HalfNormalScores(effects)
	if len(abs) != 3 || len(q) != 3 {
		t.Fatal("lengths")
	}
	if !sort.Float64sAreSorted(abs) || !sort.Float64sAreSorted(q) {
		t.Fatal("scores must be ascending")
	}
	if abs[2] != 5 {
		t.Fatalf("largest effect = %g", abs[2])
	}
	if q[0] <= 0 {
		t.Fatalf("half-normal quantiles must be positive: %v", q)
	}
}

func TestRandomLHProperties(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		lh, err := RandomLH(3, 9, rng.New(seed))
		if err != nil {
			return false
		}
		return lh.IsLatin() && lh.NumRuns() == 9
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RandomLH(0, 9, rng.New(1)); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
}

func TestLatinHypercubePoints(t *testing.T) {
	lh, err := RandomLH(2, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pts := lh.Points(0, 1)
	for _, row := range pts {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("point out of range: %v", row)
			}
		}
	}
	// Each column must cover {0, 0.25, 0.5, 0.75, 1}.
	for j := 0; j < 2; j++ {
		seen := make(map[float64]bool)
		for _, row := range pts {
			seen[row[j]] = true
		}
		if len(seen) != 5 {
			t.Fatalf("column %d covers %d levels", j, len(seen))
		}
	}
}

// TestFigure5OrthogonalLH reproduces the Figure 5 configuration: a
// 2-factor, 9-run Latin hypercube with levels −4…4 whose columns are
// exactly orthogonal.
func TestFigure5OrthogonalLH(t *testing.T) {
	lh, err := OrthogonalLH29()
	if err != nil {
		t.Fatal(err)
	}
	if lh.NumRuns() != 9 || lh.Factors != 2 {
		t.Fatalf("shape: %d×%d", lh.NumRuns(), lh.Factors)
	}
	if !lh.IsLatin() {
		t.Fatal("not a Latin hypercube")
	}
	if c := lh.MaxColumnCorrelation(); c != 0 {
		t.Fatalf("column correlation = %g, want 0", c)
	}
	// Levels must be exactly −4…4 in each column.
	for j := 0; j < 2; j++ {
		min, max := 99, -99
		for _, run := range lh.Levels {
			if run[j] < min {
				min = run[j]
			}
			if run[j] > max {
				max = run[j]
			}
		}
		if min != -4 || max != 4 {
			t.Fatalf("column %d levels span [%d, %d]", j, min, max)
		}
	}
}

func TestNOLHImprovesOnRandom(t *testing.T) {
	random, err := RandomLH(4, 17, rng.New(12345))
	if err != nil {
		t.Fatal(err)
	}
	nolh, err := NearlyOrthogonalLH(4, 17, 12345, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if !nolh.IsLatin() {
		t.Fatal("NOLH lost the Latin property")
	}
	if nolh.MaxColumnCorrelation() > 0.05 {
		t.Fatalf("NOLH correlation = %g, want < 0.05", nolh.MaxColumnCorrelation())
	}
	if nolh.MaxColumnCorrelation() > random.MaxColumnCorrelation() {
		t.Fatal("NOLH worse than its random start")
	}
}

func TestSequentialBifurcationFindsImportantFactors(t *testing.T) {
	const n = 32
	beta := make([]float64, n)
	beta[3], beta[17], beta[29] = 5, 8, 3 // three important factors
	sim := LinearScreeningModel(beta, 0.1)
	res, err := SequentialBifurcation(n, sim, SBOptions{Threshold: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 17, 29}
	if len(res.Important) != 3 || res.Important[0] != want[0] ||
		res.Important[1] != want[1] || res.Important[2] != want[2] {
		t.Fatalf("important = %v, want %v", res.Important, want)
	}
	// Group testing must beat one-factor-at-a-time on runs.
	ofat, err := OneFactorAtATime(n, sim, SBOptions{Threshold: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ofat.Important) != 3 {
		t.Fatalf("OFAT important = %v", ofat.Important)
	}
	if res.Runs >= ofat.Runs {
		t.Fatalf("SB used %d runs, OFAT %d — no saving", res.Runs, ofat.Runs)
	}
}

func TestSequentialBifurcationAllUnimportant(t *testing.T) {
	sim := LinearScreeningModel(make([]float64, 16), 0.05)
	res, err := SequentialBifurcation(16, sim, SBOptions{Threshold: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Important) != 0 {
		t.Fatalf("phantom factors: %v", res.Important)
	}
	// One group test (two probes × replications) should suffice.
	if res.Runs > 2*3 {
		t.Fatalf("runs = %d for an all-null model", res.Runs)
	}
}

func TestScreeningValidation(t *testing.T) {
	if _, err := SequentialBifurcation(0, nil, SBOptions{}); !errors.Is(err, ErrBadFactors) {
		t.Fatalf("got %v", err)
	}
	if _, err := SequentialBifurcation(3, nil, SBOptions{}); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
	if _, err := OneFactorAtATime(0, nil, SBOptions{}); !errors.Is(err, ErrBadFactors) {
		t.Fatalf("got %v", err)
	}
	if _, err := OneFactorAtATime(3, nil, SBOptions{}); !errors.Is(err, ErrBadDesign) {
		t.Fatalf("got %v", err)
	}
}

func TestEffectVariance(t *testing.T) {
	sim := LinearScreeningModel([]float64{1, 1}, 2)
	v := EffectVariance(2, sim, 2000, 7)
	if math.Abs(v-4) > 0.5 {
		t.Fatalf("noise variance = %g, want ≈ 4", v)
	}
}
