package doe

import (
	"fmt"
	"sort"
)

// This file computes the resolution of a fractional factorial from its
// defining relation, and provides further standard designs: Plackett-
// Burman screening designs and preset minimum-aberration fractions for
// 4–8 factors. Resolution is the length of the shortest word in the
// defining relation: resolution III designs alias main effects with
// two-factor interactions, IV de-aliases main effects, V de-aliases
// two-factor interactions from each other (§4.2).

// DefiningWords returns the defining relation of a fractional
// factorial given its generators: every product of a non-empty subset
// of the generator words I = (factor · word-product). Each word is the
// sorted factor-index set of one relation element.
func DefiningWords(n int, gens []Generator) ([][]int, error) {
	if len(gens) == 0 {
		return nil, nil
	}
	// Represent words as bitmasks over factors.
	base := make([]uint64, len(gens))
	for i, g := range gens {
		if g.Factor < 0 || g.Factor >= n || n > 63 {
			return nil, fmt.Errorf("%w: generator %d", ErrBadDesign, i)
		}
		var mask uint64 = 1 << uint(g.Factor)
		for _, w := range g.Words {
			if w < 0 || w >= n {
				return nil, fmt.Errorf("%w: generator word %d", ErrBadDesign, w)
			}
			mask ^= 1 << uint(w)
		}
		base[i] = mask
	}
	var words [][]int
	for subset := 1; subset < 1<<len(gens); subset++ {
		var mask uint64
		for i := range base {
			if subset&(1<<i) != 0 {
				mask ^= base[i]
			}
		}
		var word []int
		for f := 0; f < n; f++ {
			if mask&(1<<uint(f)) != 0 {
				word = append(word, f)
			}
		}
		words = append(words, word)
	}
	sort.Slice(words, func(i, j int) bool { return len(words[i]) < len(words[j]) })
	return words, nil
}

// Resolution returns the design resolution implied by the generators:
// the length of the shortest defining word. A full factorial (no
// generators) returns 0 ("unlimited").
func Resolution(n int, gens []Generator) (int, error) {
	words, err := DefiningWords(n, gens)
	if err != nil {
		return 0, err
	}
	if len(words) == 0 {
		return 0, nil
	}
	return len(words[0]), nil
}

// WordLengthPattern returns the number of defining words of each
// length 1..n — the aberration profile used to compare designs of
// equal resolution.
func WordLengthPattern(n int, gens []Generator) ([]int, error) {
	words, err := DefiningWords(n, gens)
	if err != nil {
		return nil, err
	}
	pattern := make([]int, n+1)
	for _, w := range words {
		pattern[len(w)]++
	}
	return pattern, nil
}

// standardGenerators holds minimum-aberration generator sets for
// common 2^(n−p) fractions (Box, Hunter & Hunter / Montgomery tables).
// Key: [factors, runs].
var standardGenerators = map[[2]int][]Generator{
	{4, 8}:  {{Factor: 3, Words: []int{0, 1, 2}}},                                                                                                             // 2^(4−1) IV
	{5, 16}: {{Factor: 4, Words: []int{0, 1, 2, 3}}},                                                                                                          // 2^(5−1) V
	{5, 8}:  {{Factor: 3, Words: []int{0, 1}}, {Factor: 4, Words: []int{0, 2}}},                                                                               // 2^(5−2) III
	{6, 32}: {{Factor: 5, Words: []int{0, 1, 2, 3, 4}}},                                                                                                       // 2^(6−1) VI
	{6, 16}: {{Factor: 4, Words: []int{0, 1, 2}}, {Factor: 5, Words: []int{1, 2, 3}}},                                                                         // 2^(6−2) IV
	{6, 8}:  {{Factor: 3, Words: []int{0, 1}}, {Factor: 4, Words: []int{0, 2}}, {Factor: 5, Words: []int{1, 2}}},                                              // 2^(6−3) III
	{7, 64}: {{Factor: 6, Words: []int{0, 1, 2, 3, 4, 5}}},                                                                                                    // 2^(7−1) VII
	{7, 32}: {{Factor: 5, Words: []int{0, 1, 2, 3}}, {Factor: 6, Words: []int{0, 1, 3, 4}}},                                                                   // 2^(7−2) IV
	{7, 16}: {{Factor: 4, Words: []int{0, 1, 2}}, {Factor: 5, Words: []int{1, 2, 3}}, {Factor: 6, Words: []int{0, 2, 3}}},                                     // 2^(7−3) IV
	{8, 16}: {{Factor: 4, Words: []int{1, 2, 3}}, {Factor: 5, Words: []int{0, 2, 3}}, {Factor: 6, Words: []int{0, 1, 3}}, {Factor: 7, Words: []int{0, 1, 2}}}, // 2^(8−4) IV
	{8, 32}: {{Factor: 5, Words: []int{0, 1, 2}}, {Factor: 6, Words: []int{0, 1, 3}}, {Factor: 7, Words: []int{1, 2, 3, 4}}},                                  // 2^(8−3) IV
	{8, 64}: {{Factor: 6, Words: []int{0, 1, 2, 3}}, {Factor: 7, Words: []int{0, 1, 4, 5}}},                                                                   // 2^(8−2) V
}

// StandardFraction builds the standard minimum-aberration 2^(n−p)
// design with the given number of factors and runs, or ErrNoDesign if
// no preset is registered.
func StandardFraction(factors, runs int) (*Design, []Generator, error) {
	gens, ok := standardGenerators[[2]int{factors, runs}]
	if !ok {
		return nil, nil, fmt.Errorf("%w: no standard 2^(n−p) fraction for %d factors in %d runs",
			ErrNoDesign, factors, runs)
	}
	d, err := FractionalFactorial(factors, gens)
	if err != nil {
		return nil, nil, err
	}
	return d, gens, nil
}

// pb12FirstRow is the cyclic first row of the 12-run Plackett-Burman
// design.
var pb12FirstRow = []int{1, 1, -1, 1, 1, 1, -1, -1, -1, 1, -1}

// PlackettBurman12 builds the 12-run Plackett-Burman screening design
// for up to 11 factors: rows 1–11 are cyclic shifts of the generating
// row; row 12 is all −1. Plackett-Burman designs are the saturated
// resolution III screens used when 2^(n−p) sizes are too coarse.
func PlackettBurman12(factors int) (*Design, error) {
	if factors < 1 || factors > 11 {
		return nil, fmt.Errorf("%w: PB12 supports 1–11 factors, got %d", ErrBadFactors, factors)
	}
	d := &Design{Factors: factors}
	for r := 0; r < 11; r++ {
		row := make([]int, factors)
		for j := 0; j < factors; j++ {
			row[j] = pb12FirstRow[(j+11-r)%11]
		}
		d.Runs = append(d.Runs, row)
	}
	last := make([]int, factors)
	for j := range last {
		last[j] = -1
	}
	d.Runs = append(d.Runs, last)
	return d, nil
}
