// Package server is the serving layer over the Monte Carlo Database:
// a multi-tenant query service hosting many concurrent mcdb.Sessions
// behind an HTTP/JSON API (stdlib net/http only). It owns the concerns
// a long-running process adds on top of a correct library — tenant
// isolation (per-tenant seed namespaces split from one base stream),
// admission control (global and per-tenant in-flight limits, per-query
// worker budgets), a bounded result cache, sharded execution that is
// bit-identical to a single-node run, paginated result delivery, and
// graceful drain.
//
// Determinism is the load-bearing wall: because a (tenant, query, seed,
// iterations) tuple always produces the same samples at any worker
// count and any shard split, results are cacheable, shardable, and
// reproducible offline by a client holding the response's
// effective_seed.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"modeldata/internal/lru"
	"modeldata/internal/mcdb"
	"modeldata/internal/obs"
	"modeldata/internal/parallel"
	"modeldata/internal/rng"
)

// Metric names reported into the server's registry, which also receives
// the mcdb.realize_cache_* counters of every session the server drives
// (the request context carries the server's parallel.Stats). DESIGN.md
// §8 documents the naming scheme.
const (
	// MetricAdmitted counts requests that passed admission control.
	MetricAdmitted = "server.admitted"
	// MetricRejectedBusy counts requests rejected by the global
	// in-flight limit.
	MetricRejectedBusy = "server.rejected_busy"
	// MetricRejectedTenant counts requests rejected by a per-tenant
	// in-flight limit.
	MetricRejectedTenant = "server.rejected_tenant"
	// MetricRejectedDraining counts requests rejected because the
	// server was shutting down.
	MetricRejectedDraining = "server.rejected_draining"
	// MetricInFlight gauges the queries currently executing.
	MetricInFlight = "server.inflight"
	// MetricTenants gauges the tenants currently registered.
	MetricTenants = "server.tenants"
	// MetricCacheHits counts queries answered from the result cache.
	MetricCacheHits = "server.cache.hits"
	// MetricCacheMisses counts queries that had to execute.
	MetricCacheMisses = "server.cache.misses"
	// MetricCacheEvictions counts result vectors dropped by the LRU —
	// whether for entry count, byte budget, staleness, or being too
	// large to cache at all.
	MetricCacheEvictions = "server.cache.evictions"
	// MetricCacheBytes gauges the bytes currently held by the result
	// cache (sample payloads; keys are not counted).
	MetricCacheBytes = "server.cache.bytes"
	// MetricQueries counts structured aggregate queries served.
	MetricQueries = "server.queries"
	// MetricSQL counts SQL queries served.
	MetricSQL = "server.sql"
	// MetricExplains counts EXPLAIN requests served.
	MetricExplains = "server.explains"
)

// Config sizes and wires a Server. The zero value of every limit field
// selects a sensible default (see the constants below); Open is the
// only field most deployments must set.
type Config struct {
	// BaseSeed roots the per-tenant seed namespaces. Two servers with
	// the same BaseSeed answer identically; changing it re-keys every
	// tenant at once.
	BaseSeed uint64
	// Shards is the number of backend shards each query's iteration
	// range is partitioned across (1 = single-node execution).
	Shards int
	// MaxInFlight bounds concurrently executing queries server-wide.
	MaxInFlight int
	// TenantMaxInFlight bounds concurrently executing queries per
	// tenant, so one tenant cannot starve the rest.
	TenantMaxInFlight int
	// MaxWorkers caps the per-query worker budget. A request's workers
	// field is clamped to [1, MaxWorkers] and divided across shards.
	MaxWorkers int
	// MaxIterations bounds the iterations a single request may ask for.
	MaxIterations int
	// ResultCacheCap bounds the result cache (sample vectors retained).
	ResultCacheCap int
	// CacheMaxBytes bounds the result cache by payload bytes: inserting
	// past the budget evicts least-recently-used entries, and a single
	// result larger than the whole budget is simply not cached.
	CacheMaxBytes int64
	// CacheTTL bounds result staleness: entries older than the TTL are
	// evicted on lookup (and count as misses). Zero keeps entries until
	// evicted by capacity.
	CacheTTL time.Duration
	// Clock supplies the timestamps TTL expiry is judged against.
	// Defaults to obs.Wall; tests inject an obs.ManualClock.
	Clock obs.Clock
	// BundleCacheCap sizes each session's bundle-realization LRU.
	BundleCacheCap int
	// PageSize caps samples per response page; requests asking for more
	// are clamped.
	PageSize int
	// MaxTenants bounds how many tenants the server will materialize
	// through Open. Each tenant pins a database plus per-shard session
	// caches, and Open runs on the request path, so without a cap any
	// client that can invent tenant names can grow server memory without
	// bound. Preregistration via AddTenant is operator-driven and not
	// subject to the cap.
	MaxTenants int
	// Trace enables span collection for /debug/trace. Off by default:
	// spans accumulate until scraped, which an unscraped server should
	// not pay for.
	Trace bool
	// Open materializes the database for a tenant seen for the first
	// time. It is called at most once per tenant, under the server's
	// registry lock (keep it cheap). A nil Open rejects unknown
	// tenants; use AddTenant to preregister.
	Open func(tenant string) (*mcdb.DB, error)
}

// Default limits applied by New for zero Config fields.
const (
	DefaultMaxInFlight       = 32
	DefaultTenantMaxInFlight = 8
	DefaultMaxWorkers        = 8
	DefaultMaxIterations     = 100000
	DefaultResultCacheCap    = 256
	DefaultCacheMaxBytes     = 64 << 20
	DefaultPageSize          = 1000
	DefaultMaxTenants        = 64
)

// Server hosts per-tenant Monte Carlo query sessions behind an HTTP
// API. Create one with New; it is safe for concurrent use.
type Server struct {
	cfg   Config
	stats *parallel.Stats
	reg   *obs.Registry
	cache *lru.Cache[resultKey, cachedResult]
	// cacheMu serializes cache mutations with the byte accounting; the
	// inner lru lock alone cannot keep cacheBytes consistent with the
	// entries that are actually resident.
	cacheMu    sync.Mutex
	cacheBytes int64 // guarded by cacheMu

	// tracer, when non-nil, collects spans for /debug/trace. Scraping
	// swaps in a fresh tracer so span memory stays bounded.
	tracer atomic.Pointer[obs.Tracer]

	mu       sync.Mutex
	draining bool // guarded by mu
	inflight int  // guarded by mu
	// bounded by the Config.MaxTenants admission cap in tenantFor
	tenants map[string]*tenant // guarded by mu
}

// tenant is one isolated namespace: its own database, one session per
// shard (each with its own bounded bundle cache, as a real backend
// shard would hold its own realizations), and an in-flight count.
type tenant struct {
	name     string
	db       *mcdb.DB
	shards   []*mcdb.Session
	inflight int // guarded by mu (the owning Server's)
}

// resultKey identifies one cacheable answer. Determinism makes the
// worker count and shard split irrelevant to the samples, so neither
// is part of the key. Everything that changes the payload IS part of
// it: the lineage flag (a lineage response carries per-iteration
// provenance a plain run does not — before the flag joined the key,
// the two collided and a cached plain run could answer a lineage
// request with no lineage) and the canonical what-if text (a delta run
// answers a hypothetical database, never the base one).
type resultKey struct {
	tenant  string
	kind    string // "agg" or "sql"
	text    string // canonical query text
	seed    uint64
	iters   int
	lineage bool   // response carries per-iteration lineage
	whatif  string // canonical delta text, "" for the base database
}

// cachedResult is one resident cache entry: the full sample vector,
// the per-iteration lineage when the key's lineage flag is set, the
// accounted payload size, and the insertion time for TTL expiry.
type cachedResult struct {
	samples []float64
	lineage [][]int
	bytes   int64
	at      time.Time
}

// New builds a Server from cfg, applying defaults for zero limits.
func New(cfg Config) *Server {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.TenantMaxInFlight <= 0 {
		cfg.TenantMaxInFlight = DefaultTenantMaxInFlight
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = DefaultMaxWorkers
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = DefaultMaxIterations
	}
	if cfg.ResultCacheCap <= 0 {
		cfg.ResultCacheCap = DefaultResultCacheCap
	}
	if cfg.CacheMaxBytes <= 0 {
		cfg.CacheMaxBytes = DefaultCacheMaxBytes
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.Wall
	}
	if cfg.BundleCacheCap <= 0 {
		cfg.BundleCacheCap = mcdb.DefaultBundleCacheCap
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	stats := parallel.NewStats()
	s := &Server{
		cfg:     cfg,
		stats:   stats,
		reg:     stats.Registry(),
		cache:   lru.New[resultKey, cachedResult](cfg.ResultCacheCap),
		tenants: make(map[string]*tenant),
	}
	if cfg.Trace {
		s.tracer.Store(obs.NewTracer())
	}
	return s
}

// AddTenant preregisters a tenant with an already-built database,
// bypassing Config.Open. Registering a name twice replaces the earlier
// tenant.
func (s *Server) AddTenant(name string, db *mcdb.DB) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenants[name] = s.newTenant(name, db)
	s.reg.Gauge(MetricTenants).Set(int64(len(s.tenants)))
}

// newTenant builds the per-shard sessions. Caller holds s.mu.
func (s *Server) newTenant(name string, db *mcdb.DB) *tenant {
	t := &tenant{name: name, db: db, shards: make([]*mcdb.Session, s.cfg.Shards)}
	for i := range t.shards {
		t.shards[i] = db.NewSessionCache(s.cfg.BundleCacheCap)
	}
	return t
}

// tenantFor returns the named tenant, materializing it through
// Config.Open on first sight.
func (s *Server) tenantFor(name string) (*tenant, error) {
	if name == "" {
		return nil, badRequestf("tenant is required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t, nil
	}
	if s.cfg.Open == nil {
		return nil, &StatusError{Code: 404, Msg: fmt.Sprintf("unknown tenant %q", name)}
	}
	// Cap request-path materialization: tenants are never evicted, so
	// past this point every unknown name would be a permanent memory
	// grant to whoever sent it.
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, &StatusError{Code: 429, Msg: fmt.Sprintf("tenant capacity (%d) reached", s.cfg.MaxTenants)}
	}
	db, err := s.cfg.Open(name)
	if err != nil {
		return nil, &StatusError{Code: 404, Msg: fmt.Sprintf("tenant %q: %v", name, err)}
	}
	t := s.newTenant(name, db)
	s.tenants[name] = t
	s.reg.Gauge(MetricTenants).Set(int64(len(s.tenants)))
	return t, nil
}

// admit applies admission control for one query against the named
// tenant. On success it returns the tenant and a release func the
// caller must invoke exactly once when the query finishes.
func (s *Server) admit(name string) (*tenant, func(), error) {
	t, err := s.tenantFor(name)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		s.reg.Counter(MetricRejectedDraining).Inc()
		return nil, nil, &StatusError{Code: 503, RetryAfter: 1, Msg: "server is draining"}
	case s.inflight >= s.cfg.MaxInFlight:
		s.reg.Counter(MetricRejectedBusy).Inc()
		return nil, nil, &StatusError{Code: 429, RetryAfter: 1, Msg: "server at capacity"}
	case t.inflight >= s.cfg.TenantMaxInFlight:
		s.reg.Counter(MetricRejectedTenant).Inc()
		return nil, nil, &StatusError{Code: 429, RetryAfter: 1,
			Msg: fmt.Sprintf("tenant %q at capacity", name)}
	}
	s.inflight++
	t.inflight++
	s.reg.Counter(MetricAdmitted).Inc()
	s.reg.Gauge(MetricInFlight).Set(int64(s.inflight))
	release := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.inflight--
		t.inflight--
		s.reg.Gauge(MetricInFlight).Set(int64(s.inflight))
	}
	return t, release, nil
}

// BeginDrain moves the server into drain mode: new queries are
// rejected with 503 while already-admitted ones run to completion. The
// process pairs this with http.Server.Shutdown, which waits for
// in-flight connections.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// EffectiveSeed returns the seed the server actually executes for a
// tenant's request seed: a namespace split of the server's base seed,
// so tenants with the same request seed draw independent samples. The
// mapping is pure — a client holding the response's effective_seed
// reproduces the exact samples offline with a plain mcdb.Session.
func (s *Server) EffectiveSeed(tenant string, seed uint64) uint64 {
	return rng.NamespaceSeed(s.cfg.BaseSeed, tenant, seed)
}

// Stats exposes the server-wide stats collector (and through its
// Registry, every metric the server and its sessions report).
func (s *Server) Stats() *parallel.Stats { return s.stats }

// StatusError is an error with an HTTP status. The handlers map any
// other error to 500.
type StatusError struct {
	Code int
	// RetryAfter, when positive, is sent as a Retry-After header
	// (seconds) — set on admission rejections so clients back off.
	RetryAfter int
	Msg        string
}

func (e *StatusError) Error() string { return e.Msg }

func badRequestf(format string, args ...any) error {
	return &StatusError{Code: 400, Msg: fmt.Sprintf(format, args...)}
}
