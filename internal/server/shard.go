package server

// Sharded execution. A query's iteration range [0, iters) is split
// into one contiguous window per backend shard and the windows run
// concurrently, each on its own session. Because iteration i draws
// from substream i of the same effective seed on every shard
// (parallel.ForStreamsRange), copying each shard's output back into
// its window reconstructs the single-node sample vector bit for bit —
// the invariant TestShardedMatchesSingleNode pins end to end.

import (
	"context"
	"sync"

	"modeldata/internal/mcdb"
	"modeldata/internal/obs"
)

// splitRange partitions [0, n) into k contiguous windows of near-equal
// width (the first n%k windows are one wider). Windows for k > n come
// out empty rather than overlapping.
func splitRange(n, k int) [][2]int {
	windows := make([][2]int, k)
	base, extra := n/k, n%k
	lo := 0
	for i := range windows {
		w := base
		if i < extra {
			w++
		}
		windows[i] = [2]int{lo, lo + w}
		lo += w
	}
	return windows
}

// rangeRunner executes one iteration window on one shard's session
// with the given worker budget.
type rangeRunner func(ctx context.Context, sess *mcdb.Session, workers, lo, hi int) ([]float64, error)

// sharded fans a query out across the tenant's shard sessions and
// merges the per-window outputs in index order. The query's worker
// budget is divided across shards so total fan-out stays within it.
// The first shard error wins; other shards may keep running until the
// loop notices cancellation, but their outputs are discarded.
func (s *Server) sharded(ctx context.Context, t *tenant, iters, workers int, run rangeRunner) ([]float64, error) {
	windows := splitRange(iters, len(t.shards))
	perShard := workers / len(windows)
	if perShard < 1 {
		perShard = 1
	}
	out := make([]float64, iters)
	errs := make([]error, len(windows))
	var wg sync.WaitGroup
	for k, w := range windows {
		if w[0] == w[1] {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			sctx, span := obs.Start(ctx, "server.shard")
			span.SetInt("shard", int64(k))
			span.SetInt("lo", int64(lo))
			span.SetInt("hi", int64(hi))
			defer span.End()
			part, err := run(sctx, t.shards[k], perShard, lo, hi)
			if err != nil {
				errs[k] = err
				return
			}
			copy(out[lo:hi], part)
		}(k, w[0], w[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
