package server

// The HTTP surface (stdlib net/http only). Handlers are thin: decode,
// delegate to the Server methods, encode — every policy decision
// (admission, caching, sharding) lives behind the method API so tests
// and other frontends can drive it directly.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"

	"modeldata/internal/obs"
)

// maxBodyBytes bounds request bodies; queries are small JSON documents.
const maxBodyBytes = 1 << 20

// Handler returns the server's HTTP API:
//
//	POST /v1/query       structured aggregate query (QueryRequest)
//	POST /v1/sql         SQL query or EXPLAIN (SQLRequest)
//	GET  /metrics        metrics snapshot (sorted text, one per line)
//	GET  /debug/trace    Chrome trace of spans since the last scrape
//	GET  /debug/pprof/*  runtime profiles
//	GET  /healthz        200 serving / 503 draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/sql", s.handleSQL)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.Query(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	var req SQLRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.SQL(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, resp)
}

// handleMetrics renders the registry as sorted "name value" lines.
// In-flight and tenant gauges are refreshed at scrape time.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.reg.Gauge(MetricInFlight).Set(int64(s.inflight))
	s.reg.Gauge(MetricTenants).Set(int64(len(s.tenants)))
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	writeBody(w, s.reg.Snapshot().String()+"\n")
}

// handleTrace exports the spans recorded since the previous scrape as
// a Chrome trace and installs a fresh tracer, so span memory stays
// bounded however long the process runs.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer.Load() == nil {
		http.Error(w, "tracing disabled (enable Config.Trace)", http.StatusNotFound)
		return
	}
	old := s.tracer.Swap(obs.NewTracer())
	w.Header().Set("Content-Type", "application/json")
	if err := old.WriteChromeTrace(w); err != nil {
		// Headers are gone; all we can do is log via the response.
		fmt.Fprintf(w, "\ntrace export error: %v\n", err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	writeBody(w, "ok\n")
}

// writeBody writes a rendered text response. A failed write means the
// client went away mid-response; logging it keeps the disconnect from
// vanishing silently (the PR 5 silent-failure rule).
func writeBody(w http.ResponseWriter, body string) {
	if _, err := io.WriteString(w, body); err != nil {
		log.Printf("server: writing response: %v", err)
	}
}

// decodeJSON decodes a bounded JSON body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		return badRequestf("request body: %v", err)
	}
	return nil
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var se *StatusError
	if errors.As(err, &se) {
		code = se.Code
		if se.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfter))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if encErr := json.NewEncoder(w).Encode(errorResponse{Error: err.Error()}); encErr != nil {
		log.Printf("server: writing error response: %v", encErr)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already written, so the client sees a
		// truncated body; the log line is the server-side signal.
		log.Printf("server: writing response: %v", err)
	}
}
