package server

// Lineage and what-if tests for the query surface, anchored by the
// result-cache key regression: before the lineage flag (and the
// what-if transform) joined resultKey, a plain run and a lineage run
// of the same query collided, so a cached plain answer could satisfy
// a lineage request with no lineage at all — and a what-if answer
// could shadow the base query's. These tests pin both separations and
// the end-to-end semantics of each feature.

import (
	"context"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/experiments"
	"modeldata/internal/mcdb"
	"modeldata/internal/rng"
)

// TestLineageCacheKeySeparation is the collision regression, both
// directions: a plain run must not serve a later lineage request from
// the cache, and a lineage run must not mark a later plain request as
// cached-with-lineage. Identical requests on each side still hit.
func TestLineageCacheKeySeparation(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 3})
	plain := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "count",
		Iterations: 12, Seed: 5}
	lineage := plain
	lineage.Lineage = true

	p1, _ := post[QueryResponse](t, ts.URL+"/v1/query", plain)
	if p1 == nil || p1.Cached {
		t.Fatal("first plain run should compute")
	}
	l1, _ := post[QueryResponse](t, ts.URL+"/v1/query", lineage)
	if l1 == nil {
		t.Fatal("lineage query failed")
	}
	if l1.Cached {
		t.Fatal("lineage request hit the plain run's cache entry (key collision)")
	}
	if len(l1.Lineage) != len(l1.Samples) {
		t.Fatalf("lineage rows %d != samples %d", len(l1.Lineage), len(l1.Samples))
	}
	// Identical lineage request: a genuine hit, payload intact.
	l2, _ := post[QueryResponse](t, ts.URL+"/v1/query", lineage)
	if l2 == nil || !l2.Cached {
		t.Fatal("repeated lineage request should hit its own entry")
	}
	if len(l2.Lineage) != len(l1.Lineage) {
		t.Fatalf("cached lineage lost: %d rows, want %d", len(l2.Lineage), len(l1.Lineage))
	}
	// The other direction: the plain request hits its own (plain) entry
	// and never grows a lineage payload.
	p2, _ := post[QueryResponse](t, ts.URL+"/v1/query", plain)
	if p2 == nil || !p2.Cached {
		t.Fatal("repeated plain request should hit")
	}
	if p2.Lineage != nil {
		t.Fatal("plain response carries lineage")
	}
	// Samples are identical across all four — the key split changes
	// caching, never values.
	for i := range p1.Samples {
		if p1.Samples[i] != l1.Samples[i] {
			t.Fatalf("iter %d: lineage run changed samples", i)
		}
	}
}

// TestLineageCountsContributors: for COUNT with a deterministic
// predicate, each sample literally counts its contributing tuples, so
// the lineage row length must equal the sample value, and every tuple
// index must denote a male patient (even pid in the fixture).
func TestLineageCountsContributors(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 11})
	male := "M"
	req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "count",
		Where:      []Predicate{{Col: "gender", Op: "eq", Str: &male}, {Col: "sbp", Op: "gt", Value: 120}},
		Iterations: 20, Seed: 2, Lineage: true}
	resp, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
	if resp == nil {
		t.Fatal("query failed")
	}
	if len(resp.Lineage) != len(resp.Samples) {
		t.Fatalf("lineage rows %d != samples %d", len(resp.Lineage), len(resp.Samples))
	}
	for i, s := range resp.Samples {
		if float64(len(resp.Lineage[i])) != s {
			t.Fatalf("iter %d: %d lineage tuples, sample %v", i, len(resp.Lineage[i]), s)
		}
		for _, row := range resp.Lineage[i] {
			if row%2 != 0 {
				t.Fatalf("iter %d: tuple %d is not a male patient", i, row)
			}
		}
	}
}

// TestLineagePagesWithSamples: the lineage payload pages in lockstep
// with the sample vector.
func TestLineagePagesWithSamples(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 7})
	req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "count",
		Iterations: 25, Seed: 1, Lineage: true}
	whole, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
	if whole == nil {
		t.Fatal("query failed")
	}
	paged := req
	paged.Offset, paged.Limit = 10, 10
	page, _ := post[QueryResponse](t, ts.URL+"/v1/query", paged)
	if page == nil {
		t.Fatal("page failed")
	}
	if len(page.Lineage) != len(page.Samples) {
		t.Fatalf("page lineage %d != page samples %d", len(page.Lineage), len(page.Samples))
	}
	for i := range page.Lineage {
		want, got := whole.Lineage[10+i], page.Lineage[i]
		if len(want) != len(got) {
			t.Fatalf("page iter %d: %d tuples, want %d", i, len(got), len(want))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("page iter %d tuple %d: %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestWhatIfMatchesDirectDelta: a served what-if answer is
// bit-identical to a direct ExecDelta with the namespaced seed,
// shards or not.
func TestWhatIfMatchesDirectDelta(t *testing.T) {
	const baseSeed = 19
	for _, shards := range []int{1, 3} {
		_, ts := newTestServer(t, Config{BaseSeed: baseSeed, Shards: shards})
		male := "M"
		req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg",
			Iterations: 30, Seed: 4, Workers: 4,
			WhatIf: &WhatIf{Col: "sbp", Scale: 1.1, Shift: -2,
				Where: []Predicate{{Col: "gender", Op: "eq", Str: &male}}}}
		resp, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
		if resp == nil {
			t.Fatalf("shards=%d: what-if query failed", shards)
		}
		db := sbpDB(t)
		want, err := db.NewSession().ExecDelta(context.Background(),
			mcdb.AggQuery{Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg},
			mcdb.ExecOptions{Iterations: 30, Seed: rng.NamespaceSeed(baseSeed, "acme", 4)},
			mcdb.Delta{Table: "sbp_data",
				Where:  func(det engine.Row) bool { return det[1].Equal(engine.Str("M")) },
				MapUnc: func(det engine.Row, unc []float64) { unc[0] = unc[0]*1.1 - 2 }})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if resp.Samples[i] != want[i] {
				t.Fatalf("shards=%d iter %d: server %v != direct %v", shards, i, resp.Samples[i], want[i])
			}
		}
	}
}

func sbpDB(t *testing.T) *mcdb.DB {
	t.Helper()
	db, err := experiments.SBPDatabase(fixturePatients)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestWhatIfCacheKeySeparation: the base query, a what-if, and a
// different what-if all occupy distinct cache entries; repeating any
// of them hits its own.
func TestWhatIfCacheKeySeparation(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 23})
	base := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg",
		Iterations: 15, Seed: 6}
	scaled := base
	scaled.WhatIf = &WhatIf{Col: "sbp", Scale: 1.5}
	shifted := base
	shifted.WhatIf = &WhatIf{Col: "sbp", Shift: 10}

	b1, _ := post[QueryResponse](t, ts.URL+"/v1/query", base)
	w1, _ := post[QueryResponse](t, ts.URL+"/v1/query", scaled)
	w2, _ := post[QueryResponse](t, ts.URL+"/v1/query", shifted)
	if b1 == nil || w1 == nil || w2 == nil {
		t.Fatal("query failed")
	}
	if w1.Cached || w2.Cached {
		t.Fatal("a what-if request hit another request's cache entry (key collision)")
	}
	if b1.Samples[0] == w1.Samples[0] || w1.Samples[0] == w2.Samples[0] {
		t.Fatal("distinct transforms returned identical first samples")
	}
	for _, req := range []QueryRequest{base, scaled, shifted} {
		again, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
		if again == nil || !again.Cached {
			t.Fatal("repeated request should hit its own entry")
		}
	}
}

// TestLineageWhatIfValidation: the combinations the surface rejects.
func TestLineageWhatIfValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 1})
	cases := []QueryRequest{
		// lineage + whatif
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5,
			Lineage: true, WhatIf: &WhatIf{Col: "sbp", Shift: 1}},
		// lineage under the naive strategy
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5,
			Strategy: "naive", Lineage: true},
		// whatif under the naive strategy
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5,
			Strategy: "naive", WhatIf: &WhatIf{Col: "sbp", Shift: 1}},
		// whatif on a deterministic column
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5,
			WhatIf: &WhatIf{Col: "gender", Shift: 1}},
		// whatif on an unknown table
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5,
			WhatIf: &WhatIf{Table: "nope", Col: "sbp", Shift: 1}},
		// whatif predicate on an uncertain column
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5,
			WhatIf: &WhatIf{Col: "sbp", Shift: 1,
				Where: []Predicate{{Col: "sbp", Op: "gt", Value: 100}}}},
	}
	for i, req := range cases {
		resp, httpResp := post[QueryResponse](t, ts.URL+"/v1/query", req)
		if resp != nil || httpResp.StatusCode != 400 {
			t.Fatalf("case %d: status %d, want 400", i, httpResp.StatusCode)
		}
	}
}
