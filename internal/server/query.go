package server

// The query surface: JSON request/response types and the two
// execution entry points (structured aggregate queries and SQL), both
// answering through the bounded result cache. Responses carry the full
// distribution summary plus one page of raw samples; the cache stores
// the complete sample vector so later pages of a cached query never
// re-execute.

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"modeldata/internal/engine"
	"modeldata/internal/mcdb"
	"modeldata/internal/obs"
	"modeldata/internal/parallel"
)

// Predicate is one conjunct of a query's WHERE clause. Numeric
// comparisons set Value; string equality tests set Str. Predicates on
// a spec's uncertain columns are evaluated against each Monte Carlo
// realization; the rest filter deterministic attributes once.
type Predicate struct {
	Col   string  `json:"col"`
	Op    string  `json:"op"` // eq, ne, lt, le, gt, ge (or =, !=, <, <=, >, >=)
	Value float64 `json:"value,omitempty"`
	Str   *string `json:"str,omitempty"`
}

// QueryRequest asks for one aggregate over a stochastic table:
// SELECT fn(col) FROM table WHERE where..., run for iterations Monte
// Carlo iterations under the tenant's seed namespace.
type QueryRequest struct {
	Tenant     string      `json:"tenant"`
	Table      string      `json:"table"`
	Col        string      `json:"col"`
	Fn         string      `json:"fn"` // count, sum, avg
	Where      []Predicate `json:"where,omitempty"`
	Iterations int         `json:"iterations"`
	Seed       uint64      `json:"seed"`
	// Workers is the per-query worker budget (clamped to the server's
	// MaxWorkers and divided across shards); 0 asks for the maximum.
	Workers  int    `json:"workers,omitempty"`
	Strategy string `json:"strategy,omitempty"` // auto, naive, bundle
	// Offset/Limit page through the sample vector; Limit 0 means one
	// full page (the server's PageSize).
	Offset int `json:"offset,omitempty"`
	Limit  int `json:"limit,omitempty"`
	// Lineage asks for per-iteration why-provenance: for every Monte
	// Carlo iteration, the indexes of the stochastic-table tuples that
	// contributed to the sample. Bundle strategy only; cannot be
	// combined with WhatIf.
	Lineage bool `json:"lineage,omitempty"`
	// WhatIf, when set, answers the query against a hypothetical
	// database instead of the base one, via delta re-realization
	// (mcdb.Session.ExecDelta): only the affected tuples and dirty
	// iterations are recomputed.
	WhatIf *WhatIf `json:"whatif,omitempty"`
}

// WhatIf is the declarative form of a value-transform delta: scale and
// shift one uncertain column (new = old*scale + shift) for the tuples
// the deterministic Where predicates select. Scale 0 means 1, so the
// zero value of either knob is a no-op on that axis.
type WhatIf struct {
	// Table names the stochastic table to modify; empty means the
	// query's table.
	Table string `json:"table,omitempty"`
	// Col is the uncertain column transformed.
	Col   string  `json:"col"`
	Scale float64 `json:"scale,omitempty"`
	Shift float64 `json:"shift,omitempty"`
	// Where selects the affected tuples by deterministic attributes;
	// empty affects every tuple.
	Where []Predicate `json:"where,omitempty"`
}

// SQLRequest runs a scalar SELECT once per Monte Carlo instantiation,
// or (with Explain) returns its cost-based plan without executing.
type SQLRequest struct {
	Tenant     string `json:"tenant"`
	SQL        string `json:"sql"`
	Explain    bool   `json:"explain,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Offset     int    `json:"offset,omitempty"`
	Limit      int    `json:"limit,omitempty"`
}

// Summary is the distribution summary of the full sample vector
// (mcdb.Estimate flattened — its quantile map has float keys, which
// encoding/json cannot marshal).
type Summary struct {
	N        int     `json:"n"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	CI95     float64 `json:"ci95"`
	Median   float64 `json:"median"`
}

// QueryResponse answers a QueryRequest. EffectiveSeed is the namespaced
// seed actually executed: a plain mcdb.Session run with it reproduces
// Samples exactly, shards or not.
type QueryResponse struct {
	Tenant        string  `json:"tenant"`
	EffectiveSeed uint64  `json:"effective_seed"`
	Iterations    int     `json:"iterations"`
	Shards        int     `json:"shards"`
	Cached        bool    `json:"cached"`
	Summary       Summary `json:"summary"`
	Offset        int     `json:"offset"`
	// NextOffset is the offset of the next page, or -1 when Samples
	// ends the vector.
	NextOffset int       `json:"next_offset"`
	Samples    []float64 `json:"samples"`
	// Lineage, present only when the request set Lineage, pages in step
	// with Samples: Lineage[i] lists the tuple indexes of the query's
	// table that contributed to Samples[i]'s iteration.
	Lineage [][]int `json:"lineage,omitempty"`
}

// SQLResponse answers an SQLRequest. For Explain requests only the
// plan fields are set.
type SQLResponse struct {
	QueryResponse
	Plan     string          `json:"plan,omitempty"`
	PlanJSON json.RawMessage `json:"plan_json,omitempty"`
}

// Query executes a structured aggregate query for one tenant.
func (s *Server) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	fn, err := parseAgg(req.Fn)
	if err != nil {
		return nil, err
	}
	strat, err := parseStrategy(req.Strategy)
	if err != nil {
		return nil, err
	}
	if err := s.checkIterations(req.Iterations); err != nil {
		return nil, err
	}
	t, release, err := s.admit(req.Tenant)
	if err != nil {
		return nil, err
	}
	defer release()
	ctx = s.requestContext(ctx)
	ctx, span := obs.Start(ctx, "server.query")
	span.SetAttr("tenant", req.Tenant)
	span.SetAttr("table", req.Table)
	defer span.End()

	spec, err := t.db.Spec(req.Table)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	preds, err := compileWhere(spec, req.Where)
	if err != nil {
		return nil, err
	}
	if (req.Lineage || req.WhatIf != nil) && strat == mcdb.StrategyNaive {
		return nil, badRequestf("lineage and what-if require the bundle strategy")
	}
	var delta mcdb.Delta
	var whatifCanon string
	if req.WhatIf != nil {
		if req.Lineage {
			return nil, badRequestf("lineage cannot be combined with whatif (lineage reflects the base realization)")
		}
		delta, whatifCanon, err = compileWhatIf(t.db, req.Table, req.WhatIf)
		if err != nil {
			return nil, err
		}
	}
	q := mcdb.AggQuery{Table: req.Table, Col: req.Col, Fn: fn,
		WhereDet: preds.det, WhereUnc: preds.unc}
	key := resultKey{tenant: req.Tenant, kind: "agg",
		text: canonicalAgg(req, strat, preds), seed: req.Seed, iters: req.Iterations,
		lineage: req.Lineage, whatif: whatifCanon}
	samples, lineage, cached, err := s.results(key, func() ([]float64, [][]int, error) {
		opts := mcdb.ExecOptions{
			Strategy:   strat,
			Iterations: req.Iterations,
			Seed:       s.EffectiveSeed(req.Tenant, req.Seed),
		}
		vec, err := s.sharded(ctx, t, req.Iterations, s.workerBudget(req.Workers),
			func(ctx context.Context, sess *mcdb.Session, workers, lo, hi int) ([]float64, error) {
				o := opts
				o.Workers = workers
				if req.WhatIf != nil {
					return sess.ExecDeltaRange(ctx, q, o, delta, lo, hi)
				}
				return sess.ExecRange(ctx, q, o, lo, hi)
			})
		if err != nil || !req.Lineage {
			return vec, nil, err
		}
		// Lineage comes from shard 0's session over the full iteration
		// range; its bundle cache already holds this realization when
		// the sample run above touched shard 0.
		o := opts
		o.Workers = s.workerBudget(req.Workers)
		leaves, err := t.shards[0].ExecLineage(ctx, q, o)
		if err != nil {
			return nil, nil, err
		}
		rows := make([][]int, len(leaves))
		for i, ls := range leaves {
			rows[i] = make([]int, len(ls))
			for j, lf := range ls {
				rows[i][j] = lf.Row
			}
		}
		return vec, rows, nil
	})
	if err != nil {
		return nil, err
	}
	s.reg.Counter(MetricQueries).Inc()
	resp, err := s.respond(req.Tenant, req.Seed, req.Iterations, req.Offset, req.Limit, samples, cached)
	if err != nil {
		return nil, err
	}
	if req.Lineage && lineage != nil {
		end := resp.Offset + len(resp.Samples)
		resp.Lineage = lineage[resp.Offset:end:end]
	}
	return resp, nil
}

// compileWhatIf lowers the declarative what-if onto an mcdb.Delta: a
// deterministic tuple selector plus an in-place scale-and-shift of one
// uncertain column. The returned canonical text joins the cache key so
// a what-if answer can never shadow (or be shadowed by) the base
// query's, and distinct transforms never share an entry.
func compileWhatIf(db *mcdb.DB, queryTable string, w *WhatIf) (mcdb.Delta, string, error) {
	table := w.Table
	if table == "" {
		table = queryTable
	}
	spec, err := db.Spec(table)
	if err != nil {
		return mcdb.Delta{}, "", badRequestf("whatif table: %v", err)
	}
	idx, err := spec.Schema.ColIndex(w.Col)
	if err != nil {
		return mcdb.Delta{}, "", badRequestf("whatif column: %v", err)
	}
	uncPos := -1
	for k, c := range spec.UncertainCols {
		if c == idx {
			uncPos = k
		}
	}
	if uncPos < 0 {
		return mcdb.Delta{}, "", badRequestf("whatif column %q is not an uncertain column of %q", w.Col, table)
	}
	preds, err := compileWhere(spec, w.Where)
	if err != nil {
		return mcdb.Delta{}, "", err
	}
	if preds.unc != nil {
		return mcdb.Delta{}, "", badRequestf("whatif predicates must be deterministic (uncertain columns select per-iteration, not per-tuple)")
	}
	scale, shift := w.Scale, w.Shift
	if scale == 0 { //lint:allow floateq the JSON zero value means "unset", mapped to the identity scale
		scale = 1
	}
	k := uncPos
	d := mcdb.Delta{
		Table:  table,
		Where:  preds.det,
		MapUnc: func(det engine.Row, unc []float64) { unc[k] = unc[k]*scale + shift },
	}
	var b strings.Builder
	fmt.Fprintf(&b, "whatif %s.%s*%s+%s", table, w.Col,
		strconv.FormatFloat(scale, 'g', -1, 64), strconv.FormatFloat(shift, 'g', -1, 64))
	for _, c := range preds.canon {
		b.WriteByte('|')
		b.WriteString(c)
	}
	return d, b.String(), nil
}

// SQL executes (or explains) a scalar SELECT for one tenant.
func (s *Server) SQL(ctx context.Context, req SQLRequest) (*SQLResponse, error) {
	if strings.TrimSpace(req.SQL) == "" {
		return nil, badRequestf("sql is required")
	}
	if !req.Explain {
		if err := s.checkIterations(req.Iterations); err != nil {
			return nil, err
		}
	}
	t, release, err := s.admit(req.Tenant)
	if err != nil {
		return nil, err
	}
	defer release()
	ctx = s.requestContext(ctx)
	ctx, span := obs.Start(ctx, "server.sql")
	span.SetAttr("tenant", req.Tenant)
	span.SetAttr("sql", req.SQL)
	defer span.End()

	if req.Explain {
		// Plans are statistics-dependent but instantiation-stable, so
		// shard 0's session (with its cached seed-0 instantiation)
		// speaks for all shards.
		text, data, err := t.shards[0].ExplainSQL(ctx, req.SQL)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		s.reg.Counter(MetricExplains).Inc()
		return &SQLResponse{
			QueryResponse: QueryResponse{Tenant: req.Tenant, Shards: len(t.shards), NextOffset: -1},
			Plan:          text,
			PlanJSON:      json.RawMessage(data),
		}, nil
	}

	key := resultKey{tenant: req.Tenant, kind: "sql", text: req.SQL,
		seed: req.Seed, iters: req.Iterations}
	samples, _, cached, err := s.results(key, func() ([]float64, [][]int, error) {
		seed := s.EffectiveSeed(req.Tenant, req.Seed)
		vec, err := s.sharded(ctx, t, req.Iterations, s.workerBudget(req.Workers),
			func(ctx context.Context, sess *mcdb.Session, workers, lo, hi int) ([]float64, error) {
				o := mcdb.ExecOptions{Iterations: req.Iterations, Seed: seed, Workers: workers}
				return sess.ExecSQLRange(ctx, req.SQL, o, lo, hi)
			})
		return vec, nil, err
	})
	if err != nil {
		// A parse error surfaces here (the statement is prepared inside
		// the shard run); report it as the client's fault.
		if _, ok := err.(*StatusError); !ok && ctx.Err() == nil {
			err = badRequestf("%v", err)
		}
		return nil, err
	}
	s.reg.Counter(MetricSQL).Inc()
	resp, err := s.respond(req.Tenant, req.Seed, req.Iterations, req.Offset, req.Limit, samples, cached)
	if err != nil {
		return nil, err
	}
	return &SQLResponse{QueryResponse: *resp}, nil
}

// results answers key from the cache or computes, stores, and counts.
// Two racing misses on the same key both compute, but determinism makes
// their vectors identical, so either store is correct.
func (s *Server) results(key resultKey, compute func() ([]float64, [][]int, error)) ([]float64, [][]int, bool, error) {
	if v, l, ok := s.cacheGet(key); ok {
		s.reg.Counter(MetricCacheHits).Inc()
		return v, l, true, nil
	}
	s.reg.Counter(MetricCacheMisses).Inc()
	v, l, err := compute()
	if err != nil {
		return nil, nil, false, err
	}
	s.cacheStore(key, v, l)
	return v, l, false, nil
}

// resultBytes is the accounted payload size of one cached entry: the
// sample vector plus any lineage rows (tuple indexes at word size;
// slice headers are noise next to the payload and are not counted).
func resultBytes(samples []float64, lineage [][]int) int64 {
	n := int64(len(samples)) * 8
	for _, l := range lineage {
		n += int64(len(l)) * 8
	}
	return n
}

// cacheGet returns the fresh cached entry for key, evicting it (and
// reporting a miss) when it has outlived Config.CacheTTL.
func (s *Server) cacheGet(key resultKey) ([]float64, [][]int, bool) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	v, ok := s.cache.Get(key)
	if !ok {
		return nil, nil, false
	}
	if s.cfg.CacheTTL > 0 && s.cfg.Clock.Now().Sub(v.at) > s.cfg.CacheTTL {
		s.cache.Remove(key)
		s.cacheBytes -= v.bytes
		s.reg.Counter(MetricCacheEvictions).Inc()
		s.reg.Gauge(MetricCacheBytes).Set(s.cacheBytes)
		return nil, nil, false
	}
	return v.samples, v.lineage, true
}

// cacheStore inserts a computed entry, evicting least-recently-used
// entries until both the entry-count and byte budgets hold. An entry
// larger than the whole byte budget is not cached at all (storing it
// would evict everything and then still break the bound).
func (s *Server) cacheStore(key resultKey, samples []float64, lineage [][]int) {
	bytes := resultBytes(samples, lineage)
	if bytes > s.cfg.CacheMaxBytes {
		s.reg.Counter(MetricCacheEvictions).Inc()
		return
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if old, ok := s.cache.Remove(key); ok { // replacement: retire old accounting
		s.cacheBytes -= old.bytes
	}
	evicted := 0
	for s.cache.Len() >= s.cache.Cap() || s.cacheBytes+bytes > s.cfg.CacheMaxBytes {
		_, old, ok := s.cache.RemoveOldest()
		if !ok {
			break
		}
		s.cacheBytes -= old.bytes
		evicted++
	}
	// The explicit evictions above keep the cache under its entry cap,
	// so this Add never evicts internally (which would skew byte
	// accounting).
	s.cache.Add(key, cachedResult{samples: samples, lineage: lineage, bytes: bytes, at: s.cfg.Clock.Now()})
	s.cacheBytes += bytes
	if evicted > 0 {
		s.reg.Counter(MetricCacheEvictions).Add(int64(evicted))
	}
	s.reg.Gauge(MetricCacheBytes).Set(s.cacheBytes)
}

// respond assembles the common response: full-vector summary plus the
// requested page of samples.
func (s *Server) respond(tenant string, seed uint64, iters, offset, limit int, samples []float64, cached bool) (*QueryResponse, error) {
	page, next, err := s.paginate(samples, offset, limit)
	if err != nil {
		return nil, err
	}
	est, err := mcdb.Summarize(samples)
	if err != nil {
		return nil, err
	}
	return &QueryResponse{
		Tenant:        tenant,
		EffectiveSeed: s.EffectiveSeed(tenant, seed),
		Iterations:    iters,
		Shards:        s.cfg.Shards,
		Cached:        cached,
		Summary: Summary{N: est.N, Mean: est.Mean, Variance: est.Variance,
			CI95: est.CI95, Median: est.Quantiles[0.5]},
		Offset:     offset,
		NextOffset: next,
		Samples:    page,
	}, nil
}

// paginate selects [offset, offset+limit) of the vector, clamping
// limit to the server page size. next is -1 when the page exhausts the
// vector.
func (s *Server) paginate(samples []float64, offset, limit int) (page []float64, next int, err error) {
	if offset < 0 || offset > len(samples) {
		return nil, 0, badRequestf("offset %d outside [0, %d]", offset, len(samples))
	}
	if limit <= 0 || limit > s.cfg.PageSize {
		limit = s.cfg.PageSize
	}
	end := offset + limit
	if end > len(samples) {
		end = len(samples)
	}
	next = end
	if end == len(samples) {
		next = -1
	}
	return samples[offset:end:end], next, nil
}

// requestContext attaches the server-wide stats collector (so session
// metrics land in the server registry) and, when tracing is on, the
// current tracer.
func (s *Server) requestContext(ctx context.Context) context.Context {
	ctx = parallel.WithStats(ctx, s.stats)
	if tr := s.tracer.Load(); tr != nil {
		ctx = obs.WithTracer(ctx, tr)
	}
	return ctx
}

// workerBudget clamps a requested worker count to [1, MaxWorkers],
// with 0 (unset) asking for the maximum.
func (s *Server) workerBudget(req int) int {
	if req <= 0 || req > s.cfg.MaxWorkers {
		return s.cfg.MaxWorkers
	}
	return req
}

func (s *Server) checkIterations(iters int) error {
	if iters <= 0 {
		return badRequestf("iterations must be positive, got %d", iters)
	}
	if iters > s.cfg.MaxIterations {
		return badRequestf("iterations %d exceeds server limit %d", iters, s.cfg.MaxIterations)
	}
	return nil
}

func parseAgg(fn string) (engine.AggFunc, error) {
	switch strings.ToLower(fn) {
	case "count":
		return engine.AggCount, nil
	case "sum":
		return engine.AggSum, nil
	case "avg":
		return engine.AggAvg, nil
	}
	return 0, badRequestf("unknown aggregate %q (want count, sum, or avg)", fn)
}

func parseStrategy(s string) (mcdb.Strategy, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return mcdb.StrategyAuto, nil
	case "naive":
		return mcdb.StrategyNaive, nil
	case "bundle":
		return mcdb.StrategyBundle, nil
	}
	return 0, badRequestf("unknown strategy %q (want auto, naive, or bundle)", s)
}

// compiled holds a WHERE clause lowered onto the two predicate slots
// of mcdb.AggQuery, plus the canonical text of each conjunct for the
// cache key.
type compiled struct {
	det   func(engine.Row) bool
	unc   mcdb.UncPredicate
	canon []string
}

// compileWhere routes each predicate to the deterministic or uncertain
// slot by whether its column is one the spec's VG function produces.
// Comparisons go through engine.Value's exact total order, so int
// columns compare correctly against float literals.
func compileWhere(spec *mcdb.TableSpec, preds []Predicate) (compiled, error) {
	var out compiled
	var det []func(engine.Row) bool
	var unc []func([]float64) bool
	for _, p := range preds {
		idx, err := spec.Schema.ColIndex(p.Col)
		if err != nil {
			return out, badRequestf("predicate column: %v", err)
		}
		op, cmp, err := compare(p.Op)
		if err != nil {
			return out, err
		}
		uncPos := -1
		for k, c := range spec.UncertainCols {
			if c == idx {
				uncPos = k
			}
		}
		if uncPos >= 0 {
			if p.Str != nil {
				return out, badRequestf("predicate on uncertain column %q must be numeric", p.Col)
			}
			lit := engine.Float(p.Value)
			k := uncPos
			unc = append(unc, func(u []float64) bool { return cmp(engine.Float(u[k]), lit) })
			out.canon = append(out.canon, fmt.Sprintf("unc %s %s %s",
				p.Col, op, strconv.FormatFloat(p.Value, 'g', -1, 64)))
			continue
		}
		lit := engine.Float(p.Value)
		canonLit := strconv.FormatFloat(p.Value, 'g', -1, 64)
		if p.Str != nil {
			lit = engine.Str(*p.Str)
			canonLit = strconv.Quote(*p.Str)
		}
		i := idx
		det = append(det, func(r engine.Row) bool { return cmp(r[i], lit) })
		out.canon = append(out.canon, fmt.Sprintf("det %s %s %s", p.Col, op, canonLit))
	}
	if len(det) > 0 {
		out.det = func(r engine.Row) bool {
			for _, f := range det {
				if !f(r) {
					return false
				}
			}
			return true
		}
	}
	if len(unc) > 0 {
		out.unc = func(det engine.Row, u []float64) bool {
			for _, f := range unc {
				if !f(u) {
					return false
				}
			}
			return true
		}
	}
	return out, nil
}

// compare maps an operator spelling to its canonical name and an
// engine.Value comparison (Equal/Less compose into all six operators,
// keeping float comparison semantics in one audited place).
func compare(op string) (string, func(a, b engine.Value) bool, error) {
	switch op {
	case "eq", "=", "==":
		return "eq", func(a, b engine.Value) bool { return a.Equal(b) }, nil
	case "ne", "!=", "<>":
		return "ne", func(a, b engine.Value) bool { return !a.Equal(b) }, nil
	case "lt", "<":
		return "lt", func(a, b engine.Value) bool { return a.Less(b) }, nil
	case "le", "<=":
		return "le", func(a, b engine.Value) bool { return !b.Less(a) }, nil
	case "gt", ">":
		return "gt", func(a, b engine.Value) bool { return b.Less(a) }, nil
	case "ge", ">=":
		return "ge", func(a, b engine.Value) bool { return !a.Less(b) }, nil
	}
	return "", nil, badRequestf("unknown operator %q", op)
}

// canonicalAgg renders the query in a normalized form for the cache
// key: strategy and operator spellings are canonicalized so equivalent
// requests share an entry.
func canonicalAgg(req QueryRequest, strat mcdb.Strategy, preds compiled) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%s", req.Table, req.Col, strings.ToLower(req.Fn), strat)
	for _, c := range preds.canon {
		b.WriteByte('|')
		b.WriteString(c)
	}
	return b.String()
}
