package server

// Result-cache bound tests: the byte budget, TTL expiry, and a churn
// loop asserting the byte gauge never exceeds its budget and always
// matches what is resident.

import (
	"fmt"
	"testing"
	"time"

	"modeldata/internal/obs"
	"modeldata/internal/rng"
)

func cacheServer(cfg Config) *Server {
	return New(cfg)
}

func storedVec(n int, fill float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = fill
	}
	return v
}

func key(i int) resultKey {
	return resultKey{tenant: "t", kind: "agg", text: fmt.Sprintf("q%d", i), seed: 1, iters: 1}
}

func TestCacheByteBudgetEvicts(t *testing.T) {
	// Budget fits exactly two 100-sample vectors (800 bytes each).
	s := cacheServer(Config{CacheMaxBytes: 1600})
	s.cacheStore(key(1), storedVec(100, 1), nil)
	s.cacheStore(key(2), storedVec(100, 2), nil)
	if got := s.reg.Gauge(MetricCacheBytes).Value(); got != 1600 {
		t.Fatalf("cache bytes = %d, want 1600", got)
	}
	// A third insert must evict the least-recently-used (key 1).
	s.cacheStore(key(3), storedVec(100, 3), nil)
	if got := s.reg.Gauge(MetricCacheBytes).Value(); got != 1600 {
		t.Fatalf("cache bytes after eviction = %d, want 1600", got)
	}
	if _, _, ok := s.cacheGet(key(1)); ok {
		t.Fatal("key 1 should have been evicted by the byte budget")
	}
	for _, i := range []int{2, 3} {
		if _, _, ok := s.cacheGet(key(i)); !ok {
			t.Fatalf("key %d should be resident", i)
		}
	}
	if s.reg.Counter(MetricCacheEvictions).Value() == 0 {
		t.Fatal("eviction counter did not advance")
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	s := cacheServer(Config{CacheMaxBytes: 800})
	s.cacheStore(key(1), storedVec(50, 1), nil)  // 400 bytes: fits
	s.cacheStore(key(2), storedVec(200, 2), nil) // 1600 bytes: over the whole budget
	if _, _, ok := s.cacheGet(key(2)); ok {
		t.Fatal("an entry larger than the byte budget must not be cached")
	}
	if _, _, ok := s.cacheGet(key(1)); !ok {
		t.Fatal("storing an oversized entry must not disturb resident ones")
	}
	if got := s.reg.Gauge(MetricCacheBytes).Value(); got != 400 {
		t.Fatalf("cache bytes = %d, want 400", got)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clock := obs.NewManualClock(time.Unix(1000, 0))
	s := cacheServer(Config{CacheTTL: time.Minute, Clock: clock})
	s.cacheStore(key(1), storedVec(10, 1), nil)
	if _, _, ok := s.cacheGet(key(1)); !ok {
		t.Fatal("fresh entry should hit")
	}
	clock.Advance(59 * time.Second)
	if _, _, ok := s.cacheGet(key(1)); !ok {
		t.Fatal("entry within TTL should hit")
	}
	clock.Advance(2 * time.Second) // now 61s past insertion
	if _, _, ok := s.cacheGet(key(1)); ok {
		t.Fatal("stale entry should miss")
	}
	if got := s.reg.Gauge(MetricCacheBytes).Value(); got != 0 {
		t.Fatalf("cache bytes after expiry = %d, want 0", got)
	}
	// Re-storing after expiry starts a fresh TTL window.
	s.cacheStore(key(1), storedVec(10, 2), nil)
	if _, _, ok := s.cacheGet(key(1)); !ok {
		t.Fatal("re-stored entry should hit")
	}
}

func TestCacheReplacementKeepsAccounting(t *testing.T) {
	s := cacheServer(Config{CacheMaxBytes: 4000})
	s.cacheStore(key(1), storedVec(100, 1), nil) // 800 bytes
	s.cacheStore(key(1), storedVec(200, 2), nil) // replaced: 1600 bytes
	if got := s.reg.Gauge(MetricCacheBytes).Value(); got != 1600 {
		t.Fatalf("cache bytes after replacement = %d, want 1600", got)
	}
	v, _, ok := s.cacheGet(key(1))
	if !ok || len(v) != 200 || v[0] != 2 {
		t.Fatalf("replacement not visible: %v %d", ok, len(v))
	}
}

func TestCacheChurnHoldsBudgets(t *testing.T) {
	const budget = 10_000
	clock := obs.NewManualClock(time.Unix(1000, 0))
	s := cacheServer(Config{
		ResultCacheCap: 16,
		CacheMaxBytes:  budget,
		CacheTTL:       time.Minute,
		Clock:          clock,
	})
	r := rng.New(523)
	for i := 0; i < 2000; i++ {
		switch r.Intn(3) {
		case 0, 1:
			s.cacheStore(key(r.Intn(40)), storedVec(r.Intn(300), float64(i)), nil)
		case 2:
			s.cacheGet(key(r.Intn(40)))
		}
		if r.Intn(20) == 0 {
			clock.Advance(7 * time.Second)
		}
		bytes := s.reg.Gauge(MetricCacheBytes).Value()
		if bytes < 0 || bytes > budget {
			t.Fatalf("step %d: cache bytes %d outside [0, %d]", i, bytes, budget)
		}
		if n := s.cache.Len(); n > 16 {
			t.Fatalf("step %d: %d entries exceed the entry cap", i, n)
		}
	}
	// Drain everything and confirm the accounting returns to zero.
	s.cacheMu.Lock()
	for {
		_, old, ok := s.cache.RemoveOldest()
		if !ok {
			break
		}
		s.cacheBytes -= old.bytes
	}
	if s.cacheBytes != 0 {
		s.cacheMu.Unlock()
		t.Fatalf("after draining, residual byte accounting %d", s.cacheBytes)
	}
	s.cacheMu.Unlock()
}
