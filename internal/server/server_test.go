package server

// End-to-end tests over httptest: the acceptance criteria of the
// serving layer. The load-bearing assertions are bit-identity — a
// server answer equals a direct mcdb.Session run with the namespaced
// seed, at any shard count — plus cache visibility through /metrics
// and admission behavior under load and drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"modeldata/internal/engine"
	"modeldata/internal/experiments"
	"modeldata/internal/mcdb"
	"modeldata/internal/rng"
)

const fixturePatients = 12

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Open == nil {
		cfg.Open = func(string) (*mcdb.DB, error) {
			return experiments.SBPDatabase(fixturePatients)
		}
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post[T any](t *testing.T, url string, req any) (*T, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	out := new(T)
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("response %s: %v", data, err)
	}
	return out, resp
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// directRun reproduces a server aggregate answer with a plain session,
// the way a client holding effective_seed would.
func directRun(t *testing.T, q mcdb.AggQuery, opts mcdb.ExecOptions) []float64 {
	t.Helper()
	db, err := experiments.SBPDatabase(fixturePatients)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := db.NewSession().Exec(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestQueryBitIdenticalToDirectSession is the core acceptance: for a
// fixed (tenant, query, seed, iterations), the served samples equal a
// direct mcdb.Session run with the namespaced effective seed.
func TestQueryBitIdenticalToDirectSession(t *testing.T) {
	const baseSeed = 42
	s, ts := newTestServer(t, Config{BaseSeed: baseSeed})
	req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg",
		Iterations: 40, Seed: 7}
	resp, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
	if resp == nil {
		t.Fatal("query failed")
	}
	wantSeed := rng.NamespaceSeed(baseSeed, "acme", 7)
	if resp.EffectiveSeed != wantSeed {
		t.Fatalf("effective_seed = %d, want %d", resp.EffectiveSeed, wantSeed)
	}
	if resp.EffectiveSeed != s.EffectiveSeed("acme", 7) {
		t.Fatal("EffectiveSeed accessor disagrees with response")
	}
	want := directRun(t, mcdb.AggQuery{Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg},
		mcdb.ExecOptions{Iterations: 40, Seed: wantSeed})
	if len(resp.Samples) != 40 {
		t.Fatalf("got %d samples, want 40", len(resp.Samples))
	}
	for i := range want {
		if resp.Samples[i] != want[i] {
			t.Fatalf("iter %d: server %v != direct %v", i, resp.Samples[i], want[i])
		}
	}
	if resp.Summary.N != 40 || resp.Summary.Variance <= 0 {
		t.Fatalf("summary not populated: %+v", resp.Summary)
	}
}

// TestSQLBitIdenticalToDirectSession covers the SQL path the same way,
// including a JOIN against a deterministic table.
func TestSQLBitIdenticalToDirectSession(t *testing.T) {
	const baseSeed = 9
	_, ts := newTestServer(t, Config{BaseSeed: baseSeed})
	const sql = "SELECT AVG(sbp_data.sbp) FROM sbp_data JOIN patients ON sbp_data.pid = patients.pid WHERE patients.gender = 'M'"
	req := SQLRequest{Tenant: "acme", SQL: sql, Iterations: 25, Seed: 3}
	resp, _ := post[SQLResponse](t, ts.URL+"/v1/sql", req)
	if resp == nil {
		t.Fatal("sql query failed")
	}
	db, err := experiments.SBPDatabase(fixturePatients)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.NewSession().ExecSQL(context.Background(), sql,
		mcdb.ExecOptions{Iterations: 25, Seed: rng.NamespaceSeed(baseSeed, "acme", 3)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if resp.Samples[i] != want[i] {
			t.Fatalf("iter %d: server %v != direct %v", i, resp.Samples[i], want[i])
		}
	}
}

// TestShardedMatchesSingleNode is the split-and-merge acceptance: a
// 3-shard server answers bit-identically to a 1-shard server (and thus
// to a direct session), for both query surfaces.
func TestShardedMatchesSingleNode(t *testing.T) {
	_, one := newTestServer(t, Config{BaseSeed: 5, Shards: 1})
	_, three := newTestServer(t, Config{BaseSeed: 5, Shards: 3})

	agg := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "sum",
		Iterations: 31, Seed: 2, Workers: 6}
	r1, _ := post[QueryResponse](t, one.URL+"/v1/query", agg)
	r3, _ := post[QueryResponse](t, three.URL+"/v1/query", agg)
	if r1 == nil || r3 == nil {
		t.Fatal("query failed")
	}
	if r3.Shards != 3 {
		t.Fatalf("shards = %d, want 3", r3.Shards)
	}
	if len(r1.Samples) != 31 || len(r3.Samples) != 31 {
		t.Fatalf("sample counts %d, %d", len(r1.Samples), len(r3.Samples))
	}
	for i := range r1.Samples {
		if r1.Samples[i] != r3.Samples[i] {
			t.Fatalf("agg iter %d: 1-shard %v != 3-shard %v", i, r1.Samples[i], r3.Samples[i])
		}
	}

	sqlReq := SQLRequest{Tenant: "acme", SQL: "SELECT COUNT(pid) FROM sbp_data",
		Iterations: 17, Seed: 8}
	s1, _ := post[SQLResponse](t, one.URL+"/v1/sql", sqlReq)
	s3, _ := post[SQLResponse](t, three.URL+"/v1/sql", sqlReq)
	if s1 == nil || s3 == nil {
		t.Fatal("sql failed")
	}
	for i := range s1.Samples {
		if s1.Samples[i] != s3.Samples[i] {
			t.Fatalf("sql iter %d: 1-shard %v != 3-shard %v", i, s1.Samples[i], s3.Samples[i])
		}
	}
}

// TestTenantSeedNamespacing: the same request under two tenants draws
// from independent seed namespaces, and each is reproducible offline
// from its effective seed.
func TestTenantSeedNamespacing(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 77})
	req := QueryRequest{Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 20, Seed: 1}
	req.Tenant = "alpha"
	ra, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
	req.Tenant = "beta"
	rb, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
	if ra == nil || rb == nil {
		t.Fatal("query failed")
	}
	if ra.EffectiveSeed == rb.EffectiveSeed {
		t.Fatal("tenants share an effective seed")
	}
	same := true
	for i := range ra.Samples {
		if ra.Samples[i] != rb.Samples[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct tenants produced identical samples")
	}
	for _, r := range []*QueryResponse{ra, rb} {
		want := directRun(t, mcdb.AggQuery{Table: "sbp_data", Col: "sbp", Fn: engine.AggAvg},
			mcdb.ExecOptions{Iterations: 20, Seed: r.EffectiveSeed})
		for i := range want {
			if r.Samples[i] != want[i] {
				t.Fatalf("tenant %s iter %d not reproducible from effective seed", r.Tenant, i)
			}
		}
	}
}

// TestResultCacheHitAndMetrics: a repeated request is served from the
// cache (cached=true, no extra execution) and the server.cache.*
// counters are visible through /metrics.
func TestResultCacheHitAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 1})
	req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg",
		Iterations: 15, Seed: 4}
	first, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
	second, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
	if first == nil || second == nil {
		t.Fatal("query failed")
	}
	if first.Cached {
		t.Fatal("first request claims a cache hit")
	}
	if !second.Cached {
		t.Fatal("second identical request missed the cache")
	}
	for i := range first.Samples {
		if first.Samples[i] != second.Samples[i] {
			t.Fatalf("iter %d: cached samples differ", i)
		}
	}
	metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{MetricCacheHits, MetricCacheMisses, MetricAdmitted} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics lacks %s:\n%s", want, metrics)
		}
	}
	if !metricAtLeast(t, metrics, MetricCacheHits, 1) {
		t.Fatalf("server.cache.hits not positive:\n%s", metrics)
	}
}

// metricAtLeast parses one "name value" line of the /metrics text.
func metricAtLeast(t *testing.T, metrics, name string, min int) bool {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == name {
			var v int
			if _, err := fmt.Sscanf(fields[1], "%d", &v); err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v >= min
		}
	}
	return false
}

// TestResultCacheEviction: a tiny result cache under distinct queries
// stays bounded and counts evictions.
func TestResultCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{BaseSeed: 1, ResultCacheCap: 2})
	for seed := uint64(1); seed <= 4; seed++ {
		req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg",
			Iterations: 8, Seed: seed}
		if resp, _ := post[QueryResponse](t, ts.URL+"/v1/query", req); resp == nil {
			t.Fatal("query failed")
		}
	}
	if n := s.cache.Len(); n > 2 {
		t.Fatalf("result cache holds %d entries, capacity 2", n)
	}
	metrics := getBody(t, ts.URL+"/metrics")
	if !metricAtLeast(t, metrics, MetricCacheEvictions, 2) {
		t.Fatalf("expected ≥2 evictions:\n%s", metrics)
	}
}

// TestPredicatesMatchDirectClosures: JSON predicates on deterministic
// and uncertain columns lower to the same answers as hand-written
// closures on a direct session.
func TestPredicatesMatchDirectClosures(t *testing.T) {
	const baseSeed = 13
	_, ts := newTestServer(t, Config{BaseSeed: baseSeed})
	male := "M"
	req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "count",
		Where: []Predicate{
			{Col: "gender", Op: "eq", Str: &male},
			{Col: "sbp", Op: "gt", Value: 130},
		},
		Iterations: 30, Seed: 6}
	resp, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
	if resp == nil {
		t.Fatal("query failed")
	}
	want := directRun(t, mcdb.AggQuery{
		Table: "sbp_data", Col: "sbp", Fn: engine.AggCount,
		WhereDet: func(r engine.Row) bool { return r[1].Equal(engine.Str("M")) },
		WhereUnc: func(det engine.Row, unc []float64) bool { return unc[0] > 130 },
	}, mcdb.ExecOptions{Iterations: 30, Seed: rng.NamespaceSeed(baseSeed, "acme", 6)})
	for i := range want {
		if resp.Samples[i] != want[i] {
			t.Fatalf("iter %d: server %v != direct %v", i, resp.Samples[i], want[i])
		}
	}
}

// TestPagination: pages reassemble the full vector exactly, with
// next_offset chaining and terminating at -1.
func TestPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 1})
	full := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg",
		Iterations: 27, Seed: 5}
	whole, _ := post[QueryResponse](t, ts.URL+"/v1/query", full)
	if whole == nil {
		t.Fatal("query failed")
	}
	if whole.NextOffset != -1 {
		t.Fatalf("single-page response has next_offset %d", whole.NextOffset)
	}
	var got []float64
	offset, pages := 0, 0
	for {
		req := full
		req.Offset, req.Limit = offset, 10
		page, _ := post[QueryResponse](t, ts.URL+"/v1/query", req)
		if page == nil {
			t.Fatal("page request failed")
		}
		got = append(got, page.Samples...)
		pages++
		if page.NextOffset < 0 {
			break
		}
		offset = page.NextOffset
	}
	if pages != 3 {
		t.Fatalf("27 samples at limit 10 took %d pages, want 3", pages)
	}
	if len(got) != len(whole.Samples) {
		t.Fatalf("reassembled %d samples, want %d", len(got), len(whole.Samples))
	}
	for i := range got {
		if got[i] != whole.Samples[i] {
			t.Fatalf("iter %d: paged %v != whole %v", i, got[i], whole.Samples[i])
		}
	}
	bad := full
	bad.Offset = 99
	if resp, httpResp := post[QueryResponse](t, ts.URL+"/v1/query", bad); resp != nil || httpResp.StatusCode != 400 {
		t.Fatalf("offset past the end: status %d", httpResp.StatusCode)
	}
}

// TestExplain: /v1/sql with explain returns the cost-based plan
// without executing any iterations.
func TestExplain(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 1})
	req := SQLRequest{Tenant: "acme", Explain: true,
		SQL: "SELECT AVG(sbp_data.sbp) FROM sbp_data JOIN patients ON sbp_data.pid = patients.pid"}
	resp, _ := post[SQLResponse](t, ts.URL+"/v1/sql", req)
	if resp == nil {
		t.Fatal("explain failed")
	}
	if !strings.Contains(resp.Plan, "join") {
		t.Fatalf("plan text lacks a join:\n%s", resp.Plan)
	}
	if len(resp.PlanJSON) == 0 || !json.Valid(resp.PlanJSON) {
		t.Fatal("plan_json missing or invalid")
	}
	if len(resp.Samples) != 0 {
		t.Fatal("explain executed samples")
	}
	metrics := getBody(t, ts.URL+"/metrics")
	if !metricAtLeast(t, metrics, MetricExplains, 1) {
		t.Fatalf("server.explains not counted:\n%s", metrics)
	}
}

// TestAdmissionControl exercises the counters directly: the global and
// per-tenant in-flight limits reject with 429 until a release.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{MaxInFlight: 2, TenantMaxInFlight: 1,
		Open: func(string) (*mcdb.DB, error) { return experiments.SBPDatabase(4) }})

	_, rel1, err := s.admit("a")
	if err != nil {
		t.Fatal(err)
	}
	// Tenant limit: a second query for "a" is rejected.
	if _, _, err := s.admit("a"); !isStatus(err, 429) {
		t.Fatalf("tenant overflow: %v", err)
	}
	_, rel2, err := s.admit("b")
	if err != nil {
		t.Fatal(err)
	}
	// Global limit: a third concurrent query is rejected even for a
	// fresh tenant.
	if _, _, err := s.admit("c"); !isStatus(err, 429) {
		t.Fatalf("global overflow: %v", err)
	}
	rel1()
	_, rel3, err := s.admit("c")
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
	rel3()

	reg := s.Stats().Registry()
	if v := reg.Counter(MetricAdmitted).Value(); v != 3 {
		t.Fatalf("admitted = %d, want 3", v)
	}
	if v := reg.Counter(MetricRejectedTenant).Value(); v != 1 {
		t.Fatalf("rejected_tenant = %d, want 1", v)
	}
	if v := reg.Counter(MetricRejectedBusy).Value(); v != 1 {
		t.Fatalf("rejected_busy = %d, want 1", v)
	}
}

func isStatus(err error, code int) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == code
}

// TestDrain: after BeginDrain, new queries get 503 with Retry-After
// and /healthz flips to 503, while /metrics stays readable.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{BaseSeed: 1})
	req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg",
		Iterations: 5, Seed: 1}
	if resp, _ := post[QueryResponse](t, ts.URL+"/v1/query", req); resp == nil {
		t.Fatal("pre-drain query failed")
	}
	s.BeginDrain()
	resp, httpResp := post[QueryResponse](t, ts.URL+"/v1/query", req)
	if resp != nil || httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained server accepted a query: status %d", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d during drain", health.StatusCode)
	}
	if body := getBody(t, ts.URL+"/metrics"); !strings.Contains(body, MetricRejectedDraining) {
		t.Fatalf("drain rejection not counted:\n%s", body)
	}
}

// TestTraceEndpoint: with tracing on, /debug/trace exports spans and
// resets the collector; with tracing off it 404s.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 1, Trace: true})
	req := QueryRequest{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg",
		Iterations: 5, Seed: 1}
	if resp, _ := post[QueryResponse](t, ts.URL+"/v1/query", req); resp == nil {
		t.Fatal("query failed")
	}
	trace := getBody(t, ts.URL+"/debug/trace")
	if !strings.Contains(trace, "server.query") {
		t.Fatalf("trace lacks the server.query span:\n%.200s", trace)
	}
	// Scraping reset the tracer: an immediate re-scrape is empty of
	// query spans.
	if again := getBody(t, ts.URL+"/debug/trace"); strings.Contains(again, "server.query") {
		t.Fatal("trace scrape did not reset the collector")
	}

	_, off := newTestServer(t, Config{BaseSeed: 1})
	resp, err := http.Get(off.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint with tracing off: %d", resp.StatusCode)
	}
}

// TestRequestValidation: malformed requests are 4xx, not 500.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{BaseSeed: 1, MaxIterations: 100})
	cases := []QueryRequest{
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "median", Iterations: 5},
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 0},
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 101},
		{Tenant: "acme", Table: "nope", Col: "sbp", Fn: "avg", Iterations: 5},
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5,
			Where: []Predicate{{Col: "sbp", Op: "like", Value: 1}}},
		{Tenant: "acme", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5,
			Strategy: "quantum"},
		{Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5}, // no tenant
	}
	for i, req := range cases {
		resp, httpResp := post[QueryResponse](t, ts.URL+"/v1/query", req)
		if resp != nil || httpResp.StatusCode != 400 {
			t.Fatalf("case %d: status %d, want 400", i, httpResp.StatusCode)
		}
	}
	if resp, httpResp := post[SQLResponse](t, ts.URL+"/v1/sql",
		SQLRequest{Tenant: "acme", SQL: "SELEKT 1", Iterations: 5}); resp != nil || httpResp.StatusCode != 400 {
		t.Fatalf("bad sql: status %d, want 400", httpResp.StatusCode)
	}

	// Unknown tenant on a server without Open.
	s := New(Config{})
	sts := httptest.NewServer(s.Handler())
	defer sts.Close()
	if resp, httpResp := post[QueryResponse](t, sts.URL+"/v1/query",
		QueryRequest{Tenant: "ghost", Table: "sbp_data", Col: "sbp", Fn: "avg", Iterations: 5}); resp != nil || httpResp.StatusCode != 404 {
		t.Fatalf("unknown tenant: status %d, want 404", httpResp.StatusCode)
	}
}

// TestSplitRange pins the window arithmetic.
func TestSplitRange(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {31, 4}, {5, 8}, {0, 2}, {7, 1}} {
		windows := splitRange(tc.n, tc.k)
		if len(windows) != tc.k {
			t.Fatalf("splitRange(%d,%d): %d windows", tc.n, tc.k, len(windows))
		}
		covered := 0
		lo := 0
		for _, w := range windows {
			if w[0] != lo || w[1] < w[0] {
				t.Fatalf("splitRange(%d,%d): bad window %v at lo=%d", tc.n, tc.k, w, lo)
			}
			covered += w[1] - w[0]
			lo = w[1]
		}
		if covered != tc.n || lo != tc.n {
			t.Fatalf("splitRange(%d,%d) covers %d", tc.n, tc.k, covered)
		}
	}
}

// TestTenantCapBoundsMaterialization is the unbounded-tenant-map
// regression: tenantFor materializes a tenant per unknown name on the
// request path, so any client that can invent names could grow server
// memory forever. Past Config.MaxTenants new names are rejected with
// 429 while existing tenants keep working; preregistration via
// AddTenant stays exempt from the cap.
func TestTenantCapBoundsMaterialization(t *testing.T) {
	s := New(Config{MaxTenants: 2,
		Open: func(string) (*mcdb.DB, error) { return experiments.SBPDatabase(4) }})

	if _, err := s.tenantFor("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tenantFor("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tenantFor("c"); !isStatus(err, 429) {
		t.Fatalf("third tenant must hit the cap with 429, got: %v", err)
	}
	// Known tenants are unaffected by the cap.
	if _, err := s.tenantFor("a"); err != nil {
		t.Fatalf("existing tenant rejected after cap: %v", err)
	}
	// The operator path bypasses the cap by design.
	db, err := experiments.SBPDatabase(4)
	if err != nil {
		t.Fatal(err)
	}
	s.AddTenant("ops", db)
	if _, err := s.tenantFor("ops"); err != nil {
		t.Fatalf("preregistered tenant rejected: %v", err)
	}
	if got := s.Stats().Registry().Gauge(MetricTenants).Value(); got != 3 {
		t.Fatalf("tenants gauge = %d, want 3", got)
	}
}
