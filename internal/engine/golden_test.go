package engine

// Golden-equivalence suite: every columnar operator must produce a
// byte-identical table to its row-based counterpart — same schema, same
// row order, same Value payload bits — on randomized inputs that cover
// the awkward corners of the key encoding (NaN, -0, int64s beyond
// float64 precision, strings containing the old separator byte, empty
// results). Equality is checked down to float bit patterns, not
// tolerances: the columnar path is an optimization, never a semantic
// change.

import (
	"fmt"
	"math"
	"testing"

	"modeldata/internal/rng"
)

// sameValueBits reports whether two Values are indistinguishable.
// Floats compare by bit pattern (so -0 vs +0 is a difference), except
// that all NaNs form one equivalence class: values the operators copy
// (keys, MIN/MAX) keep their exact payloads on both paths, but a NaN
// produced by arithmetic (SUM/AVG) has no payload guarantee — the
// compiler may order commutative float additions differently per code
// shape, and the hardware propagates whichever operand's payload comes
// first. The engine itself treats every NaN as one key ("nNaN").
func sameValueBits(a, b Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch a.Type() {
	case TypeFloat:
		af, bf := a.AsFloat(), b.AsFloat()
		if math.IsNaN(af) || math.IsNaN(bf) {
			return math.IsNaN(af) && math.IsNaN(bf)
		}
		return math.Float64bits(af) == math.Float64bits(bf)
	default:
		return a.Key() == b.Key() && a.String() == b.String()
	}
}

// requireSameTable fails the test unless the two tables are
// byte-identical: same name, schema, row count, and every Value equal
// down to payload bits. nil Rows and empty Rows are the same relation.
func requireSameTable(t *testing.T, label string, want, got *Table) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("%s: name %q vs %q", label, want.Name, got.Name)
	}
	if len(want.Schema) != len(got.Schema) {
		t.Fatalf("%s: schema width %d vs %d", label, len(want.Schema), len(got.Schema))
	}
	for j := range want.Schema {
		if want.Schema[j] != got.Schema[j] {
			t.Fatalf("%s: schema[%d] %+v vs %+v", label, j, want.Schema[j], got.Schema[j])
		}
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows vs %d rows", label, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			t.Fatalf("%s: row %d arity %d vs %d", label, i, len(want.Rows[i]), len(got.Rows[i]))
		}
		for j := range want.Rows[i] {
			if !sameValueBits(want.Rows[i][j], got.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d: %v (key %q) vs %v (key %q)",
					label, i, j,
					want.Rows[i][j], want.Rows[i][j].Key(),
					got.Rows[i][j], got.Rows[i][j].Key())
			}
		}
	}
}

// randomValue draws a Value of the given type, biased toward collisions
// (small domains) and toward the encoder's corner cases.
func randomValue(r *rng.Stream, typ Type) Value {
	switch typ {
	case TypeInt:
		switch r.Intn(8) {
		case 0:
			// Beyond float64 precision: exercises the keyTagBig escape.
			return Int((int64(1) << 53) + 1 + int64(r.Intn(5)))
		case 1:
			return Int(-((int64(1) << 53) + 3 + int64(r.Intn(5))))
		default:
			return Int(int64(r.Intn(7)) - 3)
		}
	case TypeFloat:
		switch r.Intn(10) {
		case 0:
			return Float(math.NaN())
		case 1:
			return Float(math.Copysign(0, -1))
		case 2:
			return Float(math.Inf(1 - 2*r.Intn(2)))
		default:
			return Float(float64(r.Intn(7)) - 3)
		}
	case TypeString:
		// Includes the empty string and strings containing the old
		// "\x00" separator byte, which the length-prefixed encoding
		// must keep distinct from column boundaries.
		choices := []string{"", "a", "b", "ab", "a\x00", "\x00a", "a\x00b", "xyz"}
		return Str(choices[r.Intn(len(choices))])
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// randomTable builds a table of n rows over a fixed mixed schema.
func randomTable(r *rng.Stream, name string, n int) *Table {
	schema := Schema{
		{Name: "id", Type: TypeInt},
		{Name: "x", Type: TypeFloat},
		{Name: "tag", Type: TypeString},
		{Name: "flag", Type: TypeBool},
	}
	t := &Table{Name: name, Schema: schema}
	for i := 0; i < n; i++ {
		row := make(Row, len(schema))
		for j, c := range schema {
			row[j] = randomValue(r, c.Type)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// mustBlock decodes t, failing the test on error (golden tables are
// always strictly typed).
func mustBlock(t *testing.T, tbl *Table) *ColumnBlock {
	t.Helper()
	b, err := FromTable(tbl)
	if err != nil {
		t.Fatalf("FromTable(%s): %v", tbl.Name, err)
	}
	return b
}

func TestGoldenRoundTrip(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		tbl := randomTable(r.Split(), "rt", r.Intn(40))
		requireSameTable(t, "round-trip", tbl, mustBlock(t, tbl).ToTable())
	}
}

func TestGoldenWhere(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 30; trial++ {
		tr := r.Split()
		tbl := randomTable(tr, "w", tr.Intn(60))
		b := mustBlock(t, tbl)

		probe := randomValue(tr, Type(tr.Intn(4)))
		for _, col := range []string{"id", "x", "tag", "flag"} {
			j, _ := tbl.ColIndex(col)
			want := Select(tbl, func(row Row) bool { return row[j].Equal(probe) })
			got, err := b.WhereEq(col, probe)
			if err != nil {
				t.Fatalf("WhereEq: %v", err)
			}
			requireSameTable(t, "WhereEq("+col+")", want, got.ToTable())
		}

		cut := float64(tr.Intn(5)) - 2
		pred := func(f float64) bool { return f < cut }
		for _, col := range []string{"id", "x"} {
			j, _ := tbl.ColIndex(col)
			want := Select(tbl, func(row Row) bool { return row[j].IsNumeric() && pred(row[j].AsFloat()) })
			got, err := b.WhereFloat(col, pred)
			if err != nil {
				t.Fatalf("WhereFloat: %v", err)
			}
			requireSameTable(t, "WhereFloat("+col+")", want, got.ToTable())
		}

		sPred := func(s string) bool { return len(s) >= 2 }
		jj, _ := tbl.ColIndex("tag")
		want := Select(tbl, func(row Row) bool { return row[jj].Type() == TypeString && sPred(row[jj].AsString()) })
		got, err := b.WhereString("tag", sPred)
		if err != nil {
			t.Fatalf("WhereString: %v", err)
		}
		requireSameTable(t, "WhereString", want, got.ToTable())
	}
}

func TestGoldenProjectRenameLimit(t *testing.T) {
	r := rng.New(43)
	for trial := 0; trial < 20; trial++ {
		tr := r.Split()
		tbl := randomTable(tr, "p", tr.Intn(40))
		b := mustBlock(t, tbl)

		want, err := Project(tbl, "tag", "id")
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Project("tag", "id")
		if err != nil {
			t.Fatal(err)
		}
		requireSameTable(t, "Project", want, got.ToTable())

		want, err = Rename(tbl, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		got, err = b.Rename("x", "y")
		if err != nil {
			t.Fatal(err)
		}
		requireSameTable(t, "Rename", want, got.ToTable())

		n := tr.Intn(50)
		requireSameTable(t, "Limit", Limit(tbl, n), b.Limit(n).ToTable())
	}
}

func TestGoldenEquiJoin(t *testing.T) {
	r := rng.New(44)
	cols := []string{"id", "x", "tag", "flag"}
	for trial := 0; trial < 30; trial++ {
		tr := r.Split()
		l := randomTable(tr, "l", tr.Intn(50))
		rt := randomTable(tr, "r", tr.Intn(50))
		lb, rb := mustBlock(t, l), mustBlock(t, rt)
		sc := NewScratch()
		for _, lc := range cols {
			for _, rc := range cols {
				want, err := EquiJoin(l, rt, lc, rc)
				if err != nil {
					t.Fatal(err)
				}
				got, err := lb.EquiJoin(rb, lc, rc, sc)
				if err != nil {
					t.Fatal(err)
				}
				requireSameTable(t, "EquiJoin("+lc+","+rc+")", want, got.ToTable())
			}
		}
	}
}

func TestGoldenGroupBy(t *testing.T) {
	r := rng.New(45)
	aggSets := [][]Aggregate{
		{{Fn: AggCount, As: "n"}},
		{{Fn: AggSum, Col: "x", As: "sx"}, {Fn: AggAvg, Col: "id", As: "ai"}},
		{{Fn: AggMin, Col: "x", As: "mnx"}, {Fn: AggMax, Col: "x", As: "mxx"}},
		{{Fn: AggMin, Col: "tag", As: "mnt"}, {Fn: AggMax, Col: "flag", As: "mxf"}},
		{{Fn: AggCount, As: "n"}, {Fn: AggSum, Col: "id", As: "si"},
			{Fn: AggMin, Col: "id", As: "mni"}, {Fn: AggMax, Col: "tag", As: "mxt"}},
	}
	keySets := [][]string{nil, {"tag"}, {"id"}, {"x"}, {"flag"}, {"tag", "flag"}, {"id", "x"}}
	for trial := 0; trial < 12; trial++ {
		tr := r.Split()
		tbl := randomTable(tr, "g", tr.Intn(60))
		b := mustBlock(t, tbl)
		for _, keys := range keySets {
			for ai, aggs := range aggSets {
				want, err := GroupBy(tbl, keys, aggs)
				if err != nil {
					t.Fatal(err)
				}
				got, err := b.GroupBy(keys, aggs, nil)
				if err != nil {
					t.Fatal(err)
				}
				requireSameTable(t, fmt.Sprintf("GroupBy(keys=%v aggs=%d)", keys, ai), want, got)
			}
		}
	}
}

func TestGoldenGroupByEmptyGlobal(t *testing.T) {
	tbl := randomTable(rng.New(9), "empty", 0)
	b := mustBlock(t, tbl)
	aggs := []Aggregate{
		{Fn: AggCount, As: "n"}, {Fn: AggSum, Col: "x", As: "s"},
		{Fn: AggMin, Col: "x", As: "mn"}, {Fn: AggMax, Col: "tag", As: "mx"},
	}
	want, err := GroupBy(tbl, nil, aggs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.GroupBy(nil, aggs, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTable(t, "empty global group", want, got)
}

func TestGoldenDistinctOrderBy(t *testing.T) {
	r := rng.New(46)
	for trial := 0; trial < 20; trial++ {
		tr := r.Split()
		tbl := randomTable(tr, "d", tr.Intn(60))
		b := mustBlock(t, tbl)
		sc := NewScratch()

		requireSameTable(t, "Distinct", Distinct(tbl), b.Distinct(sc).ToTable())

		// Single-column distinct exercises the code-based fast path.
		proj, err := Project(tbl, "x")
		if err != nil {
			t.Fatal(err)
		}
		pb := mustBlock(t, proj)
		requireSameTable(t, "Distinct(single)", Distinct(proj), pb.Distinct(sc).ToTable())

		for _, col := range []string{"id", "x", "tag", "flag"} {
			for _, desc := range []bool{false, true} {
				want, err := OrderBy(tbl, col, desc)
				if err != nil {
					t.Fatal(err)
				}
				got, err := b.OrderBy(col, desc)
				if err != nil {
					t.Fatal(err)
				}
				requireSameTable(t, "OrderBy("+col+")", want, got.ToTable())
			}
		}
	}
}

// TestGoldenQueryPipeline drives the public Query API over chained
// operations and checks the result against the same chain built from
// the row operators directly.
func TestGoldenQueryPipeline(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 15; trial++ {
		tr := r.Split()
		people := randomTable(tr, "people", 20+tr.Intn(40))
		ref := randomTable(tr, "ref", tr.Intn(20))

		got, err := From(people).
			WhereFloat("x", func(f float64) bool { return f > -1 }).
			Join(ref, "id", "id").
			Select("people.tag", "people.x", "ref.id").
			Distinct().
			OrderBy("people.tag", false).
			Limit(25).
			Run()
		if err != nil {
			t.Fatal(err)
		}

		j, _ := people.ColIndex("x")
		step := Select(people, func(row Row) bool { return row[j].IsNumeric() && row[j].AsFloat() > -1 })
		step, err = EquiJoin(step, ref, "id", "id")
		if err != nil {
			t.Fatal(err)
		}
		step, err = Project(step, "people.tag", "people.x", "ref.id")
		if err != nil {
			t.Fatal(err)
		}
		step = Distinct(step)
		step, err = OrderBy(step, "people.tag", false)
		if err != nil {
			t.Fatal(err)
		}
		step = Limit(step, 25)

		requireSameTable(t, "query pipeline", step, got)
	}
}

// TestGoldenSQLMixedColumnFallback checks that a table the columnar
// layout cannot represent (an int value in a float column, as Insert's
// widening rules permit before widening) still executes through SQL via
// the row fallback with identical results.
func TestQueryRowFallback(t *testing.T) {
	// Hand-build a table whose "x" column mixes dynamic types, which
	// strict columnar decode rejects.
	tbl := &Table{
		Name: "mixed",
		Schema: Schema{
			{Name: "id", Type: TypeInt},
			{Name: "x", Type: TypeFloat},
		},
		Rows: []Row{
			{Int(1), Float(1.5)},
			{Int(2), Int(7)}, // dynamic int in a float column
			{Int(3), Float(-2)},
		},
	}
	if _, err := FromTable(tbl); err == nil {
		t.Fatal("expected strict decode to reject mixed column")
	}
	got, err := From(tbl).WhereFloat("x", func(f float64) bool { return f > 0 }).Run()
	if err != nil {
		t.Fatal(err)
	}
	j, _ := tbl.ColIndex("x")
	want := Select(tbl, func(row Row) bool { return row[j].IsNumeric() && row[j].AsFloat() > 0 })
	requireSameTable(t, "row fallback", want, got)
}
