package engine

// Prepared statements: parse a SELECT once, execute it many times,
// and remember the planner's join-order choice between executions.
//
// The cache deliberately stores ONLY the join order (a *plan.Choice),
// keyed by the scans' aliases and row counts. Everything the
// byte-identity machinery depends on — pushed-filter bitmaps, the
// written-order build-side reconstruction, the canonical output
// signature — is recomputed from the actual data on every execution,
// so a recalled order can change speed but never results. If a table
// grows between executions the key changes and the order is re-chosen.
//
// A Prepared is parsed without a database: table names resolve at
// Query/Exec time against whichever Database the caller supplies.
// That is what mcdb needs — one statement planned once, executed
// against every per-stream instantiation.

import (
	"strings"
	"sync"

	"modeldata/internal/engine/plan"
)

// Prepared is a parsed SELECT plus the memoized join-order choice.
// It is safe for concurrent use.
type Prepared struct {
	src string
	st  *selectStmt

	mu        sync.Mutex
	choiceKey string
	choice    *plan.Choice
}

// Prepare parses a SELECT statement for repeated execution. Only
// SELECT can be prepared; DDL and inserts run through Database.Query.
func Prepare(sql string) (*Prepared, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if !(p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "select")) {
		return nil, sqlErrf("only SELECT can be prepared, near %q", p.cur().text)
	}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &Prepared{src: sql, st: st}, nil
}

// Source returns the SQL text the statement was prepared from.
func (p *Prepared) Source() string { return p.src }

// Query binds the statement to db and returns the lazy query, wired
// to this statement's choice cache.
func (p *Prepared) Query(db *Database) (*Query, error) {
	q, err := buildSelectQuery(db, p.st)
	if err != nil {
		return nil, err
	}
	nq := *q
	nq.cache = p
	return &nq, nil
}

// Exec binds the statement to db and runs it.
func (p *Prepared) Exec(db *Database) (*Table, error) {
	q, err := p.Query(db)
	if err != nil {
		return nil, err
	}
	return q.Run()
}

// Scalar binds the statement to db and runs it as a scalar query:
// exactly one row and one numeric column, as QueryScalar.
func (p *Prepared) Scalar(db *Database) (float64, error) {
	t, err := p.Exec(db)
	if err != nil {
		return 0, err
	}
	if t.Len() != 1 || len(t.Schema) != 1 {
		return 0, sqlErrf("scalar query returned %d×%d", t.Len(), len(t.Schema))
	}
	v := t.Rows[0][0]
	if !v.IsNumeric() {
		return 0, sqlErrf("scalar query returned %s", v.Type())
	}
	return v.AsFloat(), nil
}

// Explain binds the statement to db and returns its plan tree.
func (p *Prepared) Explain(db *Database) (*plan.Tree, error) {
	q, err := p.Query(db)
	if err != nil {
		return nil, err
	}
	return q.Explain()
}

// lookupChoice recalls the cached join order if the region signature
// still matches.
func (p *Prepared) lookupChoice(key string) *plan.Choice {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.choice != nil && p.choiceKey == key {
		return p.choice
	}
	return nil
}

// storeChoice memoizes a join order. The Choice is treated as
// read-only from here on.
func (p *Prepared) storeChoice(key string, c *plan.Choice) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.choiceKey, p.choice = key, c
}
