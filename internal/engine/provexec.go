package engine

// Why-provenance threading through query execution. When a query runs
// WithProvenance, the execution state carries one hidden TypeInt column
// (provColName, NUL-prefixed like the planner's row-id columns so no
// user name can collide with it) holding, per row, an interned
// prov.Set handle: the set of source-table rows that produced the row.
// The invariant between operators is simple — the provenance column is
// always the LAST column of the state — and each operator either
// preserves it untouched (filters, rename, order-by, limit: they only
// select or permute rows) or is wrapped here to combine annotations
// (join ⊗, group-by/distinct ⊕) and restore the invariant.
//
// The semiring is sets-of-input-rows under union for both ⊗ and ⊕
// (internal/prov), so annotations are insensitive to the planner's
// join reordering: planexec.go computes region-exit annotations from
// the same hidden row-id columns its order-restoring sort uses, and
// union's associativity/commutativity guarantees the result matches
// written-order execution.

import (
	"fmt"

	"modeldata/internal/prov"
)

// provColName names the hidden provenance column. The NUL prefix keeps
// it out of any user-referencable namespace, exactly like ridColName.
const provColName = "\x00prov"

var provCol = Column{Name: provColName, Type: TypeInt}

// provState is a chain's provenance context: the arena interning this
// execution's annotation sets.
type provState struct {
	arena *prov.Arena
}

// WithProvenance makes the query record why-provenance: every result
// row is annotated with the set of source-table rows that produced it,
// retrievable from the result via Table.Lineage. Joins union the two
// sides' annotations; group-by and distinct union across the rows
// merged into each output row. Provenance never changes the visible
// result — rows, order, and values are identical to a run without it.
//
// Storage-backed queries disable zone-map pruning under provenance so
// row annotations index the full stored relation; the extra decode
// cost is the price of stable leaf identities.
func (q *Query) WithProvenance() *Query {
	nq := *q
	nq.provOn = true
	return &nq
}

// hasProvCol reports whether the schema's last column is the hidden
// provenance column.
func hasProvCol(s Schema) bool {
	return len(s) > 0 && s[len(s)-1].Name == provColName
}

// annotateBlock appends the provenance column to a source block: row i
// gets the singleton set {name:i}. Row indexes are logical, so the
// leaf of a source row is its index in the source relation.
func (ps *provState) annotateBlock(b *ColumnBlock) *ColumnBlock {
	n := b.Len()
	ids := make([]int64, b.nrows)
	for i := 0; i < n; i++ {
		ids[b.phys(i)] = int64(ps.arena.Leaf(b.Name, i))
	}
	provAnnotated.Add(int64(n))
	return &ColumnBlock{
		Name:   b.Name,
		Schema: append(b.Schema.Clone(), provCol),
		nrows:  b.nrows,
		sel:    b.sel,
		cols:   append(append(make([]colvec, 0, len(b.cols)+1), b.cols...), colvec{ints: ids}),
	}
}

// annotateTable is annotateBlock for the row path.
func (ps *provState) annotateTable(t *Table) *Table {
	out := &Table{Name: t.Name, Schema: append(t.Schema.Clone(), provCol)}
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		nr := make(Row, 0, len(r)+1)
		nr = append(nr, r...)
		nr = append(nr, Int(int64(ps.arena.Leaf(t.Name, i))))
		out.Rows[i] = nr
	}
	provAnnotated.Add(int64(len(t.Rows)))
	return out
}

// annotateSource appends source annotations to the chain's current
// state (the scan the recorded operations will replay over).
func (c *chain) annotateSource() {
	if b := c.block(); b != nil {
		c.setBlock(c.prov.annotateBlock(b))
		return
	}
	c.setTable(c.prov.annotateTable(c.t))
}

// stripProv detaches the hidden provenance column from a materialized
// result, moving the per-row sets into the table's lineage so callers
// see exactly the schema they asked for.
func stripProv(arena *prov.Arena, t *Table) *Table {
	if !hasProvCol(t.Schema) {
		return t
	}
	pi := len(t.Schema) - 1
	sets := make([]prov.Set, len(t.Rows))
	rows := make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		sets[i] = prov.Set(r[pi].AsInt())
		rows[i] = r[:pi:pi]
	}
	return &Table{
		Name:    t.Name,
		Schema:  t.Schema[:pi].Clone(),
		Rows:    rows,
		lineage: &tableLineage{arena: arena, sets: sets},
	}
}

// applyProv executes the recorded operations that must combine or
// re-anchor annotations. It reports handled=false for operations the
// plain executor already keeps correct (filters, rename, order-by,
// limit only select or permute rows, and the provenance column rides
// along untouched).
func (c *chain) applyProv(op *qop, q *Query) (handled bool, err error) {
	switch op.kind {
	case opWhereRow:
		// The opaque predicate must see the user row shape, not the
		// annotated one.
		t := c.table()
		pi := len(t.Schema) - 1
		c.setTable(Select(t, func(r Row) bool { return op.pred(r[:pi]) }))
		return true, nil

	case opSelect:
		// Project the user columns plus the hidden one.
		cols := append(append(make([]string, 0, len(op.cols)+1), op.cols...), provColName)
		if b := c.block(); b != nil {
			nb, err := b.Project(cols...)
			if err != nil {
				return true, err
			}
			c.setBlock(nb)
			return true, nil
		}
		t, err := Project(c.table(), cols...)
		if err != nil {
			return true, err
		}
		c.setTable(t)
		return true, nil

	case opJoin:
		return true, c.provJoin(op)

	case opGroupBy:
		return true, c.provGroupBy(op)

	case opDistinct:
		return true, c.provDistinct()

	case opExtend:
		// Extend's callback must see user rows; compute over the
		// stripped shape, then re-attach the annotation column last.
		t := c.table()
		pi := len(t.Schema) - 1
		stripped := &Table{Name: t.Name, Schema: t.Schema[:pi].Clone(), Rows: make([]Row, len(t.Rows))}
		for i, r := range t.Rows {
			stripped.Rows[i] = r[:pi:pi]
		}
		et, err := Extend(stripped, op.extName, op.extType, op.extFn)
		if err != nil {
			return true, err
		}
		et.Schema = append(et.Schema, provCol)
		for i, r := range et.Rows {
			et.Rows[i] = append(r, t.Rows[i][pi])
		}
		c.setTable(et)
		return true, nil
	}
	return false, nil
}

// provJoin runs an equi-join with both sides annotated and ⊗-combines
// the two provenance columns of each output row into one. The right
// table is annotated on entry (its rows become fresh leaves); row
// counts are unchanged by the extra column, so the build-side choice —
// and therefore emission order — matches an unannotated run exactly.
func (c *chain) provJoin(op *qop) error {
	if b := c.block(); b != nil {
		if rb, err := FromTable(op.joinT); err == nil {
			arb := c.prov.annotateBlock(rb)
			jb, err := b.equiJoinBudget(arb, op.joinL, op.joinR, c.sc, c.budget, c.spillDir)
			if err != nil {
				return err
			}
			// Left annotations sit just before the right side's columns,
			// right annotations last; both are dense after the join.
			lp := len(b.Schema) - 1
			rp := len(jb.Schema) - 1
			merged := make([]int64, jb.nrows)
			lints, rints := jb.cols[lp].ints, jb.cols[rp].ints
			for i := range merged {
				merged[i] = int64(c.prov.arena.Join(prov.Set(lints[i]), prov.Set(rints[i])))
			}
			out := &ColumnBlock{
				Name:   op.name,
				Schema: append(op.schema.Clone(), provCol),
				nrows:  jb.nrows,
				sel:    jb.sel,
				cols:   make([]colvec, 0, len(op.schema)+1),
			}
			for j := range jb.Schema {
				if j == lp || j == rp {
					continue
				}
				out.cols = append(out.cols, jb.cols[j])
			}
			out.cols = append(out.cols, colvec{ints: merged})
			c.setBlock(out)
			return nil
		}
	}
	t := c.table()
	art := c.prov.annotateTable(op.joinT)
	jt, err := EquiJoin(t, art, op.joinL, op.joinR)
	if err != nil {
		return err
	}
	lp := len(t.Schema) - 1
	rp := len(jt.Schema) - 1
	out := &Table{Name: op.name, Schema: append(op.schema.Clone(), provCol)}
	out.Rows = make([]Row, len(jt.Rows))
	for i, r := range jt.Rows {
		m := c.prov.arena.Join(prov.Set(r[lp].AsInt()), prov.Set(r[rp].AsInt()))
		nr := make(Row, 0, len(out.Schema))
		nr = append(nr, r[:lp]...)
		nr = append(nr, r[lp+1:rp]...)
		nr = append(nr, Int(int64(m)))
		out.Rows[i] = nr
	}
	c.setTable(out)
	return nil
}

// provGroupBy aggregates with ⊕-combined group annotations: each output
// group's set is the union of its input rows' sets, accumulated in
// logical row order. The aggregate values come from the same
// first-appearance grouping the plain operators use, so visible output
// is identical to an unannotated run. Provenance group-bys never spill:
// annotations live in the arena, which the on-disk partitions cannot
// carry.
func (c *chain) provGroupBy(op *qop) error {
	if b := c.block(); b != nil {
		keyIdx, aggIdx, err := b.groupCols(op.cols, op.aggs)
		if err != nil {
			return err
		}
		n := b.Len()
		var gids, firstP []int32
		if len(keyIdx) == 0 {
			gids = make([]int32, n)
			if n > 0 {
				firstP = []int32{int32(b.phys(0))}
			}
		} else {
			gids, firstP = b.groupIDs(keyIdx, c.sc)
		}
		nGroups := len(firstP)
		synthesized := false
		if len(op.cols) == 0 && nGroups == 0 {
			nGroups = 1
			synthesized = true
		}
		rows := b.aggregateGroups(keyIdx, aggIdx, op.aggs, gids, firstP, nGroups, synthesized)
		gsets := make([]prov.Set, nGroups)
		pvec := b.cols[len(b.Schema)-1].ints
		for i := 0; i < n; i++ {
			g := gids[i]
			gsets[g] = c.prov.arena.Union(gsets[g], prov.Set(pvec[b.phys(i)]))
		}
		out, err := NewTable(op.name, append(op.schema.Clone(), provCol))
		if err != nil {
			return err
		}
		out.Rows = rows
		for g := range out.Rows {
			out.Rows[g] = append(out.Rows[g], Int(int64(gsets[g])))
		}
		c.setTable(out)
		return nil
	}

	// Row path: group assignment replicates GroupBy's first-appearance
	// keying over the user columns, so the plain aggregate rows and the
	// per-group annotation merges line up index for index.
	t := c.table()
	pi := len(t.Schema) - 1
	stripped := &Table{Name: t.Name, Schema: t.Schema[:pi].Clone(), Rows: make([]Row, len(t.Rows))}
	for i, r := range t.Rows {
		stripped.Rows[i] = r[:pi:pi]
	}
	gt, err := GroupBy(stripped, op.cols, op.aggs)
	if err != nil {
		return err
	}
	keyIdx := make([]int, len(op.cols))
	for i, k := range op.cols {
		j, err := stripped.ColIndex(k)
		if err != nil {
			return err
		}
		keyIdx[i] = j
	}
	gofKey := make(map[string]int, len(gt.Rows))
	var gsets []prov.Set
	var keyBuf []byte
	for i, r := range stripped.Rows {
		keyBuf = appendRowKey(keyBuf[:0], r, keyIdx)
		g, ok := gofKey[string(keyBuf)]
		if !ok {
			g = len(gsets)
			gofKey[string(keyBuf)] = g
			gsets = append(gsets, prov.Empty)
		}
		gsets[g] = c.prov.arena.Union(gsets[g], prov.Set(t.Rows[i][pi].AsInt()))
	}
	if len(gsets) == 0 && len(gt.Rows) == 1 {
		// Synthesized empty global group: no inputs, empty annotation.
		gsets = append(gsets, prov.Empty)
	}
	if len(gsets) != len(gt.Rows) {
		return fmt.Errorf("engine: provenance group count %d != aggregate group count %d", len(gsets), len(gt.Rows))
	}
	gt.Name = op.name
	gt.Schema = append(gt.Schema, provCol)
	for g := range gt.Rows {
		gt.Rows[g] = append(gt.Rows[g], Int(int64(gsets[g])))
	}
	c.setTable(gt)
	return nil
}

// provDistinct removes duplicates judged on the user columns only and
// ⊕-merges each duplicate's annotation into the kept first row, so the
// surviving row names every input that could have produced it.
func (c *chain) provDistinct() error {
	if b := c.block(); b != nil {
		pi := len(b.Schema) - 1
		userIdx := make([]int, pi)
		for j := range userIdx {
			userIdx[j] = j
		}
		var gids, firstP []int32
		if pi == 0 {
			// Degenerate: every row is the same (empty) user tuple.
			n := b.Len()
			gids = make([]int32, n)
			if n > 0 {
				firstP = []int32{int32(b.phys(0))}
			}
		} else {
			gids, firstP = b.groupIDs(userIdx, c.sc)
		}
		gsets := make([]prov.Set, len(firstP))
		pvec := b.cols[pi].ints
		n := b.Len()
		for i := 0; i < n; i++ {
			g := gids[i]
			gsets[g] = c.prov.arena.Union(gsets[g], prov.Set(pvec[b.phys(i)]))
		}
		merged := make([]int64, b.nrows)
		for g, p := range firstP {
			merged[p] = int64(gsets[g])
		}
		nb, err := b.withSel(firstP).WithColumn(pi, merged)
		if err != nil {
			return err
		}
		c.setBlock(nb)
		return nil
	}
	t := c.table()
	pi := len(t.Schema) - 1
	seen := make(map[string]int, len(t.Rows))
	out := &Table{Name: t.Name, Schema: t.Schema.Clone()}
	var keyBuf []byte
	for _, r := range t.Rows {
		keyBuf = keyBuf[:0]
		for _, v := range r[:pi] {
			keyBuf = v.AppendKey(keyBuf)
		}
		s := prov.Set(r[pi].AsInt())
		if k, ok := seen[string(keyBuf)]; ok {
			kr := out.Rows[k]
			kr[pi] = Int(int64(c.prov.arena.Union(prov.Set(kr[pi].AsInt()), s)))
			continue
		}
		seen[string(keyBuf)] = len(out.Rows)
		nr := make(Row, len(r))
		copy(nr, r)
		out.Rows = append(out.Rows, nr)
	}
	c.setTable(out)
	return nil
}
