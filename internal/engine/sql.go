package engine

// This file gives the engine a textual SQL dialect, since every system
// surveyed in the paper exposes SQL: MCDB/SimSQL queries, Indemics'
// observation queries and Algorithm 1, and the DEFINE-style scalar
// statements. The dialect covers:
//
//	SELECT [DISTINCT] <cols | * | aggregates> FROM <table>
//	    [JOIN <table> ON <col> = <col>]...
//	    [WHERE <boolean expression>]
//	    [GROUP BY <cols>]
//	    [ORDER BY <col> [ASC|DESC]]
//	    [LIMIT <n>]
//	EXPLAIN [JSON] SELECT ...
//	CREATE TABLE <name> (<col> <type>, ...)
//	INSERT INTO <name> VALUES (<literal>, ...)
//
// Aggregates: COUNT(*), COUNT(col), SUM, AVG, MIN, MAX, with optional
// "AS alias". WHERE supports comparisons (=, <>, !=, <, <=, >, >=),
// BETWEEN ... AND ..., AND/OR/NOT, and parentheses; literals are
// (optionally signed) numbers, 'strings', TRUE/FALSE.
//
// Dialect notes: after a JOIN, columns are addressed by their
// table-qualified names ("person.pid"); in grouped queries the output
// lists the GROUP BY keys first and then the aggregates, regardless of
// SELECT-list order.
//
// Statements compile onto the Query builder (WHERE becomes a
// plan.Expr), so SQL flows through the same cost-based planner as
// builder queries: filters are pushed below joins, join order and
// build sides are chosen by estimated cardinality, and EXPLAIN renders
// the chosen plan as text (or, with EXPLAIN JSON, as a serialized plan
// tree) without executing the query.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"modeldata/internal/engine/plan"
)

// ErrSQL wraps all SQL parse and execution errors.
var ErrSQL = errors.New("engine: SQL error")

func sqlErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSQL, fmt.Sprintf(format, args...))
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lexSQL(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return sqlErrf("unterminated string at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) || c == '.' || c == 'e' || c == 'E' ||
			((c == '+' || c == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '*', ';', '-', '+':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return sqlErrf("unexpected character %q at offset %d", c, l.pos)
}

// --- parser ---

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// keyword reports whether the current token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return sqlErrf("expected %s near %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return sqlErrf("expected %q near %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", sqlErrf("expected identifier near %q", p.cur().text)
	}
	return p.next().text, nil
}

// selectItem is one SELECT-list entry.
type selectItem struct {
	star  bool    // plain column "*": SELECT *
	col   string  // column reference
	agg   AggFunc // valid when isAgg
	isAgg bool
	alias string
}

// sqlJoin is one JOIN clause.
type sqlJoin struct {
	table string
	left  string // left join column, as written
	right string // right join column, as written
}

// selectStmt is a parsed SELECT.
type selectStmt struct {
	distinct bool
	items    []selectItem
	from     string
	joins    []sqlJoin
	where    plan.Expr // nil when absent
	groupBy  []string
	orderBy  string
	desc     bool
	limit    int // -1 when absent
}

var aggNames = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

func (p *parser) parseSelect() (*selectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	st := &selectStmt{limit: -1}
	st.distinct = p.keyword("distinct")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.items = append(st.items, item)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.from = from
	for p.keyword("join") {
		var jn sqlJoin
		jn.table, err = p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		jn.left, err = p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		jn.right, err = p.ident()
		if err != nil {
			return nil, err
		}
		st.joins = append(st.joins, jn)
	}
	if p.keyword("where") {
		st.where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.groupBy = append(st.groupBy, col)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		st.orderBy, err = p.ident()
		if err != nil {
			return nil, err
		}
		if p.keyword("desc") {
			st.desc = true
		} else {
			p.keyword("asc")
		}
	}
	if p.keyword("limit") {
		if p.cur().kind != tokNumber {
			return nil, sqlErrf("expected number after LIMIT near %q", p.cur().text)
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return nil, sqlErrf("bad LIMIT: %v", err)
		}
		st.limit = n
	}
	p.symbol(";")
	if p.cur().kind != tokEOF {
		return nil, sqlErrf("trailing input near %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	var item selectItem
	if p.symbol("*") {
		item.star = true
		return item, nil
	}
	name, err := p.ident()
	if err != nil {
		return item, err
	}
	if fn, isAgg := aggNames[strings.ToLower(name)]; isAgg && p.symbol("(") {
		item.isAgg = true
		item.agg = fn
		if p.symbol("*") {
			if fn != AggCount {
				return item, sqlErrf("%s(*) is only valid for COUNT", name)
			}
		} else {
			item.col, err = p.ident()
			if err != nil {
				return item, err
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return item, err
		}
	} else {
		item.col = name
	}
	if p.keyword("as") {
		item.alias, err = p.ident()
		if err != nil {
			return item, err
		}
	}
	return item, nil
}

// The WHERE grammar parses directly into plan.Expr nodes — the same
// inspectable expression values the planner pushes below joins.

func (p *parser) parseOr() (plan.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = plan.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (plan.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = plan.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (plan.Expr, error) {
	if p.keyword("not") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return plan.Not{E: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (plan.Expr, error) {
	if p.symbol("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.keyword("between") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return plan.Between{Col: col, Lo: litOfValue(lo), Hi: litOfValue(hi)}, nil
	}
	if p.cur().kind != tokSymbol {
		return nil, sqlErrf("expected comparison operator near %q", p.cur().text)
	}
	op := p.next().text
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
	default:
		return nil, sqlErrf("unknown operator %q", op)
	}
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return plan.Cmp{Op: op, Col: col, Val: litOfValue(val)}, nil
}

func (p *parser) parseLiteral() (Value, error) {
	// Leading sign on numeric literals.
	if p.cur().kind == tokSymbol && (p.cur().text == "-" || p.cur().text == "+") {
		neg := p.next().text == "-"
		v, err := p.parseLiteral()
		if err != nil {
			return Value{}, err
		}
		if !neg {
			return v, nil
		}
		switch v.Type() {
		case TypeInt:
			return Int(-v.AsInt()), nil
		case TypeFloat:
			return Float(-v.AsFloat()), nil
		}
		return Value{}, sqlErrf("cannot negate %s literal", v.Type())
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Value{}, sqlErrf("bad number %q", t.text)
			}
			return Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, sqlErrf("bad integer %q", t.text)
		}
		return Int(n), nil
	case tokString:
		p.i++
		return Str(t.text), nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.i++
			return Bool(true), nil
		case "false":
			p.i++
			return Bool(false), nil
		}
	}
	return Value{}, sqlErrf("expected literal near %q", t.text)
}

// --- execution ---

// selectAggs extracts the aggregate list of a grouped SELECT,
// validating that non-aggregate items are GROUP BY keys.
func selectAggs(st *selectStmt) ([]Aggregate, error) {
	var aggs []Aggregate
	for _, item := range st.items {
		if !item.isAgg {
			// Non-aggregate items must be group-by keys; they are
			// emitted automatically by GroupBy.
			if !containsFold(st.groupBy, item.col) {
				return nil, sqlErrf("column %q must appear in GROUP BY", item.col)
			}
			continue
		}
		name := item.alias
		if name == "" {
			name = strings.ToLower(item.agg.String())
			if item.col != "" {
				name += "_" + item.col
			}
		}
		aggs = append(aggs, Aggregate{Fn: item.agg, Col: item.col, As: name})
	}
	return aggs, nil
}

// selectProjection extracts the projection columns and renames of a
// non-aggregate SELECT list.
func selectProjection(st *selectStmt) (cols []string, renames map[string]string, err error) {
	renames = map[string]string{}
	for _, item := range st.items {
		if item.star {
			return nil, nil, sqlErrf("cannot mix * with named columns")
		}
		cols = append(cols, item.col)
		if item.alias != "" {
			renames[item.col] = item.alias
		}
	}
	return cols, renames, nil
}

func selectHasAgg(st *selectStmt) bool {
	for _, item := range st.items {
		if item.isAgg {
			return true
		}
	}
	return false
}

// buildSelectQuery compiles a parsed SELECT onto the Query builder,
// which hands it to the planner at Run. The first JOIN prefixes both
// sides' columns with their table names; later JOINs keep the
// accumulated names and prefix only the new table, so every column
// stays addressable as "table.col" however many joins are chained.
func buildSelectQuery(db *Database, st *selectStmt) (*Query, error) {
	var q *Query
	if t, err := db.Get(st.from); err == nil {
		q = From(t)
	} else if stg, ok := db.Storage(st.from); ok {
		// FROM falls back to a registered storage backend when no
		// in-memory table claims the name. JOIN right sides stay
		// table-only: join operands must be resident either way, and
		// keeping them tables preserves the planner's join region.
		q = FromStorage(stg)
	} else {
		return nil, err
	}
	for i, jn := range st.joins {
		right, err := db.Get(jn.table)
		if err != nil {
			return nil, err
		}
		// Join columns may be written bare or table-qualified
		// ("person.pid"); strip a matching table qualifier so the name
		// resolves against the pre-join schemas. After the first join
		// the left side keeps its qualified names, so the qualifier is
		// stripped only against the original FROM table.
		leftArg := jn.left
		if i == 0 {
			leftArg = stripQualifier(leftArg, st.from)
		}
		q = q.join(right, leftArg, stripQualifier(jn.right, jn.table), i > 0)
	}
	if st.where != nil {
		q = q.WhereExpr(st.where)
	}
	if selectHasAgg(st) || len(st.groupBy) > 0 {
		aggs, err := selectAggs(st)
		if err != nil {
			return nil, err
		}
		q = q.GroupBy(st.groupBy, aggs...)
	} else if !(len(st.items) == 1 && st.items[0].star) {
		cols, renames, err := selectProjection(st)
		if err != nil {
			return nil, err
		}
		q = q.Select(cols...)
		// Renames of distinct columns commute; apply in sorted order
		// for determinism.
		fromCols := make([]string, 0, len(renames))
		for from := range renames {
			fromCols = append(fromCols, from)
		}
		sort.Strings(fromCols)
		for _, from := range fromCols {
			q = q.Rename(from, renames[from])
		}
	}
	if st.distinct {
		q = q.Distinct()
	}
	if st.orderBy != "" {
		q = q.OrderBy(st.orderBy, st.desc)
	}
	if st.limit >= 0 {
		q = q.Limit(st.limit)
	}
	if q.err != nil {
		return nil, q.err
	}
	return q, nil
}

// explainTable renders a plan tree as the EXPLAIN result table: one
// "plan" text column, one row per plan line (or a single row holding
// the JSON document).
func explainTable(tree *plan.Tree, asJSON bool) (*Table, error) {
	out, err := NewTable("explain", Schema{{Name: "plan", Type: TypeString}})
	if err != nil {
		return nil, err
	}
	if asJSON {
		data, err := tree.JSON()
		if err != nil {
			return nil, err
		}
		if err := out.Insert(Row{Str(string(data))}); err != nil {
			return nil, err
		}
		return out, nil
	}
	text := strings.TrimRight(tree.Text(), "\n")
	for _, line := range strings.Split(text, "\n") {
		if err := out.Insert(Row{Str(line)}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// stripQualifier removes a "table." prefix when it names the expected
// table.
func stripQualifier(col, table string) string {
	if i := strings.IndexByte(col, '.'); i > 0 && strings.EqualFold(col[:i], table) {
		return col[i+1:]
	}
	return col
}

func containsFold(xs []string, s string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// Query executes a SQL statement against the database and returns the
// result table. Supported statements: SELECT (returns rows), EXPLAIN
// [JSON] SELECT (returns the plan as a one-column text table), CREATE
// TABLE (returns an empty result), INSERT INTO ... VALUES (returns an
// empty result).
func (db *Database) Query(sql string) (*Table, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	switch {
	case p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "select"):
		st, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		q, err := buildSelectQuery(db, st)
		if err != nil {
			return nil, err
		}
		return q.Run()
	case p.keyword("explain"):
		asJSON := p.keyword("json")
		if !(p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "select")) {
			return nil, sqlErrf("EXPLAIN supports only SELECT, near %q", p.cur().text)
		}
		st, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		q, err := buildSelectQuery(db, st)
		if err != nil {
			return nil, err
		}
		tree, err := q.Explain()
		if err != nil {
			return nil, err
		}
		return explainTable(tree, asJSON)
	case p.keyword("create"):
		return db.execCreate(p)
	case p.keyword("insert"):
		return db.execInsert(p)
	}
	return nil, sqlErrf("expected SELECT, EXPLAIN, CREATE TABLE, or INSERT near %q", p.cur().text)
}

// QueryScalar executes a SELECT that must produce exactly one row and
// one numeric column — Algorithm 1's DEFINE ... AS (SELECT COUNT ...).
func (db *Database) QueryScalar(sql string) (float64, error) {
	t, err := db.Query(sql)
	if err != nil {
		return 0, err
	}
	if t.Len() != 1 || len(t.Schema) != 1 {
		return 0, sqlErrf("scalar query returned %d×%d", t.Len(), len(t.Schema))
	}
	v := t.Rows[0][0]
	if !v.IsNumeric() {
		return 0, sqlErrf("scalar query returned %s", v.Type())
	}
	return v.AsFloat(), nil
}

var typeNames = map[string]Type{
	"int": TypeInt, "integer": TypeInt, "bigint": TypeInt,
	"float": TypeFloat, "double": TypeFloat, "real": TypeFloat,
	"varchar": TypeString, "text": TypeString, "string": TypeString,
	"bool": TypeBool, "boolean": TypeBool,
}

func (db *Database) execCreate(p *parser) (*Table, error) {
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var schema Schema
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, ok := typeNames[strings.ToLower(typeName)]
		if !ok {
			return nil, sqlErrf("unknown type %q", typeName)
		}
		// Swallow optional length suffix: VARCHAR(32).
		if p.symbol("(") {
			if p.cur().kind != tokNumber {
				return nil, sqlErrf("expected length near %q", p.cur().text)
			}
			p.next()
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		schema = append(schema, Column{Name: col, Type: typ})
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	p.symbol(";")
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.Put(t)
	return &Table{Name: name, Schema: schema.Clone()}, nil
}

func (db *Database) execInsert(p *parser) (*Table, error) {
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	inserted := 0
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row Row
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		inserted++
		if !p.symbol(",") {
			break
		}
	}
	p.symbol(";")
	out, err := NewTable("inserted", Schema{{Name: "n", Type: TypeInt}})
	if err != nil {
		return nil, err
	}
	if err := out.Insert(Row{Int(int64(inserted))}); err != nil {
		return nil, err
	}
	return out, nil
}
