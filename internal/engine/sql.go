package engine

// This file gives the engine a textual SQL dialect, since every system
// surveyed in the paper exposes SQL: MCDB/SimSQL queries, Indemics'
// observation queries and Algorithm 1, and the DEFINE-style scalar
// statements. The dialect covers:
//
//	SELECT [DISTINCT] <cols | * | aggregates> FROM <table>
//	    [JOIN <table> ON <col> = <col>]
//	    [WHERE <boolean expression>]
//	    [GROUP BY <cols>]
//	    [ORDER BY <col> [ASC|DESC]]
//	    [LIMIT <n>]
//	CREATE TABLE <name> (<col> <type>, ...)
//	INSERT INTO <name> VALUES (<literal>, ...)
//
// Aggregates: COUNT(*), COUNT(col), SUM, AVG, MIN, MAX, with optional
// "AS alias". WHERE supports comparisons (=, <>, !=, <, <=, >, >=),
// BETWEEN ... AND ..., AND/OR/NOT, and parentheses; literals are
// (optionally signed) numbers, 'strings', TRUE/FALSE.
//
// Dialect notes: after a JOIN, columns are addressed by their
// table-qualified names ("person.pid"); in grouped queries the output
// lists the GROUP BY keys first and then the aggregates, regardless of
// SELECT-list order.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ErrSQL wraps all SQL parse and execution errors.
var ErrSQL = errors.New("engine: SQL error")

func sqlErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSQL, fmt.Sprintf(format, args...))
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lexSQL(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return sqlErrf("unterminated string at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) || c == '.' || c == 'e' || c == 'E' ||
			((c == '+' || c == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '*', ';', '-', '+':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return sqlErrf("unexpected character %q at offset %d", c, l.pos)
}

// --- parser ---

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// keyword reports whether the current token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return sqlErrf("expected %s near %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return sqlErrf("expected %q near %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", sqlErrf("expected identifier near %q", p.cur().text)
	}
	return p.next().text, nil
}

// selectItem is one SELECT-list entry.
type selectItem struct {
	star  bool    // plain column "*": SELECT *
	col   string  // column reference
	agg   AggFunc // valid when isAgg
	isAgg bool
	alias string
}

// selectStmt is a parsed SELECT.
type selectStmt struct {
	distinct bool
	items    []selectItem
	from     string
	join     string // joined table ("" if none)
	joinL    string // left join column
	joinR    string // right join column
	where    *whereExpr
	groupBy  []string
	orderBy  string
	desc     bool
	limit    int // -1 when absent
}

// whereExpr is a boolean expression tree.
type whereExpr struct {
	op       string // "and", "or", "not", "cmp", "between"
	l, r     *whereExpr
	cmpOp    string
	col      string
	val      Value
	lo, hi   Value
	hasLo    bool
	negateIn bool
}

var aggNames = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

func (p *parser) parseSelect() (*selectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	st := &selectStmt{limit: -1}
	st.distinct = p.keyword("distinct")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.items = append(st.items, item)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.from = from
	if p.keyword("join") {
		st.join, err = p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		st.joinL, err = p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		st.joinR, err = p.ident()
		if err != nil {
			return nil, err
		}
	}
	if p.keyword("where") {
		st.where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.groupBy = append(st.groupBy, col)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		st.orderBy, err = p.ident()
		if err != nil {
			return nil, err
		}
		if p.keyword("desc") {
			st.desc = true
		} else {
			p.keyword("asc")
		}
	}
	if p.keyword("limit") {
		if p.cur().kind != tokNumber {
			return nil, sqlErrf("expected number after LIMIT near %q", p.cur().text)
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return nil, sqlErrf("bad LIMIT: %v", err)
		}
		st.limit = n
	}
	p.symbol(";")
	if p.cur().kind != tokEOF {
		return nil, sqlErrf("trailing input near %q", p.cur().text)
	}
	return st, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	var item selectItem
	if p.symbol("*") {
		item.star = true
		return item, nil
	}
	name, err := p.ident()
	if err != nil {
		return item, err
	}
	if fn, isAgg := aggNames[strings.ToLower(name)]; isAgg && p.symbol("(") {
		item.isAgg = true
		item.agg = fn
		if p.symbol("*") {
			if fn != AggCount {
				return item, sqlErrf("%s(*) is only valid for COUNT", name)
			}
		} else {
			item.col, err = p.ident()
			if err != nil {
				return item, err
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return item, err
		}
	} else {
		item.col = name
	}
	if p.keyword("as") {
		item.alias, err = p.ident()
		if err != nil {
			return item, err
		}
	}
	return item, nil
}

func (p *parser) parseOr() (*whereExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &whereExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (*whereExpr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &whereExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (*whereExpr, error) {
	if p.keyword("not") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &whereExpr{op: "not", l: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (*whereExpr, error) {
	if p.symbol("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.keyword("between") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &whereExpr{op: "between", col: col, lo: lo, hi: hi, hasLo: true}, nil
	}
	if p.cur().kind != tokSymbol {
		return nil, sqlErrf("expected comparison operator near %q", p.cur().text)
	}
	op := p.next().text
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
	default:
		return nil, sqlErrf("unknown operator %q", op)
	}
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &whereExpr{op: "cmp", cmpOp: op, col: col, val: val}, nil
}

func (p *parser) parseLiteral() (Value, error) {
	// Leading sign on numeric literals.
	if p.cur().kind == tokSymbol && (p.cur().text == "-" || p.cur().text == "+") {
		neg := p.next().text == "-"
		v, err := p.parseLiteral()
		if err != nil {
			return Value{}, err
		}
		if !neg {
			return v, nil
		}
		switch v.Type() {
		case TypeInt:
			return Int(-v.AsInt()), nil
		case TypeFloat:
			return Float(-v.AsFloat()), nil
		}
		return Value{}, sqlErrf("cannot negate %s literal", v.Type())
	}
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Value{}, sqlErrf("bad number %q", t.text)
			}
			return Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, sqlErrf("bad integer %q", t.text)
		}
		return Int(n), nil
	case tokString:
		p.i++
		return Str(t.text), nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.i++
			return Bool(true), nil
		case "false":
			p.i++
			return Bool(false), nil
		}
	}
	return Value{}, sqlErrf("expected literal near %q", t.text)
}

// --- execution ---

// compileWhere converts the expression tree into a Predicate over the
// given schema.
func compileWhere(e *whereExpr, schema Schema) (Predicate, error) {
	switch e.op {
	case "and":
		l, err := compileWhere(e.l, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileWhere(e.r, schema)
		if err != nil {
			return nil, err
		}
		return func(row Row) bool { return l(row) && r(row) }, nil
	case "or":
		l, err := compileWhere(e.l, schema)
		if err != nil {
			return nil, err
		}
		r, err := compileWhere(e.r, schema)
		if err != nil {
			return nil, err
		}
		return func(row Row) bool { return l(row) || r(row) }, nil
	case "not":
		inner, err := compileWhere(e.l, schema)
		if err != nil {
			return nil, err
		}
		return func(row Row) bool { return !inner(row) }, nil
	case "between":
		idx, err := schema.ColIndex(e.col)
		if err != nil {
			return nil, err
		}
		lo, hi := e.lo, e.hi
		return func(row Row) bool {
			v := row[idx]
			return !v.Less(lo) && !hi.Less(v)
		}, nil
	case "cmp":
		idx, err := schema.ColIndex(e.col)
		if err != nil {
			return nil, err
		}
		val := e.val
		switch e.cmpOp {
		case "=":
			return func(row Row) bool { return row[idx].Equal(val) }, nil
		case "<>", "!=":
			return func(row Row) bool { return !row[idx].Equal(val) }, nil
		case "<":
			return func(row Row) bool { return row[idx].Less(val) }, nil
		case "<=":
			return func(row Row) bool { return !val.Less(row[idx]) }, nil
		case ">":
			return func(row Row) bool { return val.Less(row[idx]) }, nil
		case ">=":
			return func(row Row) bool { return !row[idx].Less(val) }, nil
		}
	}
	return nil, sqlErrf("unsupported WHERE node %q", e.op)
}

// compileWhereCol converts the expression tree into a logical-row
// predicate over the block, mirroring compileWhere exactly: leaves read
// column values through the block (allocation-free Value reconstruction)
// and compare with the same Equal/Less semantics as the row path.
func compileWhereCol(e *whereExpr, b *ColumnBlock) (func(i int) bool, error) {
	switch e.op {
	case "and":
		l, err := compileWhereCol(e.l, b)
		if err != nil {
			return nil, err
		}
		r, err := compileWhereCol(e.r, b)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return l(i) && r(i) }, nil
	case "or":
		l, err := compileWhereCol(e.l, b)
		if err != nil {
			return nil, err
		}
		r, err := compileWhereCol(e.r, b)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return l(i) || r(i) }, nil
	case "not":
		inner, err := compileWhereCol(e.l, b)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return !inner(i) }, nil
	case "between":
		idx, err := b.ColIndex(e.col)
		if err != nil {
			return nil, err
		}
		lo, hi := e.lo, e.hi
		return func(i int) bool {
			v := b.value(i, idx)
			return !v.Less(lo) && !hi.Less(v)
		}, nil
	case "cmp":
		idx, err := b.ColIndex(e.col)
		if err != nil {
			return nil, err
		}
		val := e.val
		switch e.cmpOp {
		case "=":
			return func(i int) bool { return b.value(i, idx).Equal(val) }, nil
		case "<>", "!=":
			return func(i int) bool { return !b.value(i, idx).Equal(val) }, nil
		case "<":
			return func(i int) bool { return b.value(i, idx).Less(val) }, nil
		case "<=":
			return func(i int) bool { return !val.Less(b.value(i, idx)) }, nil
		case ">":
			return func(i int) bool { return val.Less(b.value(i, idx)) }, nil
		case ">=":
			return func(i int) bool { return !b.value(i, idx).Less(val) }, nil
		}
	}
	return nil, sqlErrf("unsupported WHERE node %q", e.op)
}

// selectAggs extracts the aggregate list of a grouped SELECT,
// validating that non-aggregate items are GROUP BY keys.
func selectAggs(st *selectStmt) ([]Aggregate, error) {
	var aggs []Aggregate
	for _, item := range st.items {
		if !item.isAgg {
			// Non-aggregate items must be group-by keys; they are
			// emitted automatically by GroupBy.
			if !containsFold(st.groupBy, item.col) {
				return nil, sqlErrf("column %q must appear in GROUP BY", item.col)
			}
			continue
		}
		name := item.alias
		if name == "" {
			name = strings.ToLower(item.agg.String())
			if item.col != "" {
				name += "_" + item.col
			}
		}
		aggs = append(aggs, Aggregate{Fn: item.agg, Col: item.col, As: name})
	}
	return aggs, nil
}

// selectProjection extracts the projection columns and renames of a
// non-aggregate SELECT list.
func selectProjection(st *selectStmt) (cols []string, renames map[string]string, err error) {
	renames = map[string]string{}
	for _, item := range st.items {
		if item.star {
			return nil, nil, sqlErrf("cannot mix * with named columns")
		}
		cols = append(cols, item.col)
		if item.alias != "" {
			renames[item.col] = item.alias
		}
	}
	return cols, renames, nil
}

func selectHasAgg(st *selectStmt) bool {
	for _, item := range st.items {
		if item.isAgg {
			return true
		}
	}
	return false
}

// execSelect runs a parsed SELECT against the database. Execution is
// columnar when the involved tables decode into uniform column vectors,
// and falls back to the row operators when they do not; both paths
// produce byte-identical results (golden_test.go).
func execSelect(db *Database, st *selectStmt) (*Table, error) {
	t, err := db.Get(st.from)
	if err != nil {
		return nil, err
	}
	var right *Table
	if st.join != "" {
		right, err = db.Get(st.join)
		if err != nil {
			return nil, err
		}
	}
	if b, berr := FromTable(t); berr == nil {
		out, err := execSelectCol(st, b, right)
		if err == nil {
			colQueries.Add(1)
			return out, nil
		}
		if !errors.Is(err, ErrMixedColumn) {
			return nil, err
		}
		// The join table failed columnar decode: run on rows.
		noteColFallback(err)
	} else {
		noteColFallback(berr)
	}
	return execSelectRows(st, t, right)
}

// execSelectCol runs the SELECT over the columnar operators. An
// ErrMixedColumn return means a table could not be decoded and the
// caller should retry on the row path; any other error is final.
func execSelectCol(st *selectStmt, b *ColumnBlock, right *Table) (*Table, error) {
	sc := NewScratch()
	if right != nil {
		rb, err := FromTable(right)
		if err != nil {
			return nil, err
		}
		// Join columns may be written bare or table-qualified
		// ("person.pid"); strip a matching table qualifier so the name
		// resolves against the pre-join schemas.
		b, err = b.EquiJoin(rb,
			stripQualifier(st.joinL, st.from),
			stripQualifier(st.joinR, st.join), sc)
		if err != nil {
			return nil, err
		}
	}
	if st.where != nil {
		pred, err := compileWhereCol(st.where, b)
		if err != nil {
			return nil, err
		}
		b = b.whereFunc(pred)
	}
	if selectHasAgg(st) || len(st.groupBy) > 0 {
		aggs, err := selectAggs(st)
		if err != nil {
			return nil, err
		}
		t, err := b.GroupBy(st.groupBy, aggs, sc)
		if err != nil {
			return nil, err
		}
		// Group-by output is a small row table; finish on rows.
		return execSelectTail(st, t)
	}
	if !(len(st.items) == 1 && st.items[0].star) {
		cols, renames, err := selectProjection(st)
		if err != nil {
			return nil, err
		}
		if b, err = b.Project(cols...); err != nil {
			return nil, err
		}
		for from, to := range renames {
			if b, err = b.Rename(from, to); err != nil {
				return nil, err
			}
		}
	}
	if st.distinct {
		b = b.Distinct(sc)
	}
	if st.orderBy != "" {
		var err error
		if b, err = b.OrderBy(st.orderBy, st.desc); err != nil {
			return nil, err
		}
	}
	if st.limit >= 0 {
		b = b.Limit(st.limit)
	}
	return b.ToTable(), nil
}

// execSelectRows is the row-operator fallback, used when a table holds
// values the columnar layout cannot represent.
func execSelectRows(st *selectStmt, t *Table, right *Table) (*Table, error) {
	var err error
	if right != nil {
		t, err = EquiJoin(t, right,
			stripQualifier(st.joinL, st.from),
			stripQualifier(st.joinR, st.join))
		if err != nil {
			return nil, err
		}
	}
	if st.where != nil {
		pred, err := compileWhere(st.where, t.Schema)
		if err != nil {
			return nil, err
		}
		t = Select(t, pred)
	}
	switch {
	case selectHasAgg(st) || len(st.groupBy) > 0:
		aggs, err := selectAggs(st)
		if err != nil {
			return nil, err
		}
		t, err = GroupBy(t, st.groupBy, aggs)
		if err != nil {
			return nil, err
		}
	case len(st.items) == 1 && st.items[0].star:
		// SELECT *: keep every column.
	default:
		cols, renames, err := selectProjection(st)
		if err != nil {
			return nil, err
		}
		t, err = Project(t, cols...)
		if err != nil {
			return nil, err
		}
		for from, to := range renames {
			t, err = Rename(t, from, to)
			if err != nil {
				return nil, err
			}
		}
	}
	return execSelectTail(st, t)
}

// execSelectTail applies DISTINCT / ORDER BY / LIMIT to a row table.
func execSelectTail(st *selectStmt, t *Table) (*Table, error) {
	var err error
	if st.distinct {
		t = Distinct(t)
	}
	if st.orderBy != "" {
		t, err = OrderBy(t, st.orderBy, st.desc)
		if err != nil {
			return nil, err
		}
	}
	if st.limit >= 0 {
		t = Limit(t, st.limit)
	}
	return t, nil
}

// stripQualifier removes a "table." prefix when it names the expected
// table.
func stripQualifier(col, table string) string {
	if i := strings.IndexByte(col, '.'); i > 0 && strings.EqualFold(col[:i], table) {
		return col[i+1:]
	}
	return col
}

func containsFold(xs []string, s string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// Query executes a SQL statement against the database and returns the
// result table. Supported statements: SELECT (returns rows), CREATE
// TABLE (returns an empty result), INSERT INTO ... VALUES (returns an
// empty result).
func (db *Database) Query(sql string) (*Table, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	switch {
	case p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "select"):
		st, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return execSelect(db, st)
	case p.keyword("create"):
		return db.execCreate(p)
	case p.keyword("insert"):
		return db.execInsert(p)
	}
	return nil, sqlErrf("expected SELECT, CREATE TABLE, or INSERT near %q", p.cur().text)
}

// QueryScalar executes a SELECT that must produce exactly one row and
// one numeric column — Algorithm 1's DEFINE ... AS (SELECT COUNT ...).
func (db *Database) QueryScalar(sql string) (float64, error) {
	t, err := db.Query(sql)
	if err != nil {
		return 0, err
	}
	if t.Len() != 1 || len(t.Schema) != 1 {
		return 0, sqlErrf("scalar query returned %d×%d", t.Len(), len(t.Schema))
	}
	v := t.Rows[0][0]
	if !v.IsNumeric() {
		return 0, sqlErrf("scalar query returned %s", v.Type())
	}
	return v.AsFloat(), nil
}

var typeNames = map[string]Type{
	"int": TypeInt, "integer": TypeInt, "bigint": TypeInt,
	"float": TypeFloat, "double": TypeFloat, "real": TypeFloat,
	"varchar": TypeString, "text": TypeString, "string": TypeString,
	"bool": TypeBool, "boolean": TypeBool,
}

func (db *Database) execCreate(p *parser) (*Table, error) {
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var schema Schema
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typ, ok := typeNames[strings.ToLower(typeName)]
		if !ok {
			return nil, sqlErrf("unknown type %q", typeName)
		}
		// Swallow optional length suffix: VARCHAR(32).
		if p.symbol("(") {
			if p.cur().kind != tokNumber {
				return nil, sqlErrf("expected length near %q", p.cur().text)
			}
			p.next()
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		schema = append(schema, Column{Name: col, Type: typ})
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	p.symbol(";")
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.Put(t)
	return &Table{Name: name, Schema: schema.Clone()}, nil
}

func (db *Database) execInsert(p *parser) (*Table, error) {
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	inserted := 0
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row Row
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
		inserted++
		if !p.symbol(",") {
			break
		}
	}
	p.symbol(";")
	out, err := NewTable("inserted", Schema{{Name: "n", Type: TypeInt}})
	if err != nil {
		return nil, err
	}
	if err := out.Insert(Row{Int(int64(inserted))}); err != nil {
		return nil, err
	}
	return out, nil
}
