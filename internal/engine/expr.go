package engine

// Bridging between the engine's Value world and the plan package's
// serializable expression values. Compilation mirrors the historical
// WHERE compilers exactly — the same ColIndex resolution, the same
// Equal/Less comparison semantics on the row and block paths — so a
// query filtered through a plan.Expr is byte-identical to one filtered
// through the old opaque closures.

import (
	"fmt"

	"modeldata/internal/engine/plan"
)

// litOfValue converts an engine Value to a plan literal. Every Value
// has exactly one of the four scalar types, so this is total.
func litOfValue(v Value) plan.Lit {
	switch v.Type() {
	case TypeFloat:
		return plan.FloatLit(v.AsFloat())
	case TypeString:
		return plan.StringLit(v.AsString())
	case TypeBool:
		return plan.BoolLit(v.AsBool())
	default:
		return plan.IntLit(v.AsInt())
	}
}

// valOfLit converts a plan literal back to an engine Value. The round
// trip valOfLit(litOfValue(v)) reproduces v exactly, payload bits
// included.
func valOfLit(l plan.Lit) Value {
	switch l.Kind {
	case plan.LitFloat:
		return Float(l.F)
	case plan.LitString:
		return Str(l.S)
	case plan.LitBool:
		return Bool(l.B)
	default:
		return Int(l.I)
	}
}

// predFns recovers the opaque closures referenced by plan.ColPred
// nodes; the Query implements it over its recorded ops.
type predFns interface {
	colPredFns(ref int) (ffn func(float64) bool, sfn func(string) bool)
}

// compileExprRow compiles e into a row predicate over the schema, with
// exactly the historical row-path semantics: comparisons use
// Value.Equal/Less, BETWEEN is !v.Less(lo) && !hi.Less(v), float
// predicates see only numeric values, string predicates only strings.
func compileExprRow(e plan.Expr, schema Schema, fns predFns) (Predicate, error) {
	switch t := e.(type) {
	case plan.And:
		l, err := compileExprRow(t.L, schema, fns)
		if err != nil {
			return nil, err
		}
		r, err := compileExprRow(t.R, schema, fns)
		if err != nil {
			return nil, err
		}
		return func(row Row) bool { return l(row) && r(row) }, nil
	case plan.Or:
		l, err := compileExprRow(t.L, schema, fns)
		if err != nil {
			return nil, err
		}
		r, err := compileExprRow(t.R, schema, fns)
		if err != nil {
			return nil, err
		}
		return func(row Row) bool { return l(row) || r(row) }, nil
	case plan.Not:
		inner, err := compileExprRow(t.E, schema, fns)
		if err != nil {
			return nil, err
		}
		return func(row Row) bool { return !inner(row) }, nil
	case plan.Between:
		idx, err := schema.ColIndex(t.Col)
		if err != nil {
			return nil, err
		}
		lo, hi := valOfLit(t.Lo), valOfLit(t.Hi)
		return func(row Row) bool {
			v := row[idx]
			return !v.Less(lo) && !hi.Less(v)
		}, nil
	case plan.Cmp:
		idx, err := schema.ColIndex(t.Col)
		if err != nil {
			return nil, err
		}
		val := valOfLit(t.Val)
		switch t.Op {
		case "=":
			return func(row Row) bool { return row[idx].Equal(val) }, nil
		case "<>", "!=":
			return func(row Row) bool { return !row[idx].Equal(val) }, nil
		case "<":
			return func(row Row) bool { return row[idx].Less(val) }, nil
		case "<=":
			return func(row Row) bool { return !val.Less(row[idx]) }, nil
		case ">":
			return func(row Row) bool { return val.Less(row[idx]) }, nil
		case ">=":
			return func(row Row) bool { return !row[idx].Less(val) }, nil
		}
		return nil, fmt.Errorf("engine: unknown comparison %q", t.Op)
	case plan.ColPred:
		idx, err := schema.ColIndex(t.Col)
		if err != nil {
			return nil, err
		}
		ffn, sfn := fns.colPredFns(t.Ref)
		switch t.Fn {
		case "float":
			if ffn == nil {
				return nil, fmt.Errorf("engine: dangling float predicate ref %d", t.Ref)
			}
			return func(row Row) bool { return row[idx].IsNumeric() && ffn(row[idx].AsFloat()) }, nil
		case "string":
			if sfn == nil {
				return nil, fmt.Errorf("engine: dangling string predicate ref %d", t.Ref)
			}
			return func(row Row) bool { return row[idx].Type() == TypeString && sfn(row[idx].AsString()) }, nil
		}
		return nil, fmt.Errorf("engine: unknown predicate domain %q", t.Fn)
	}
	return nil, fmt.Errorf("engine: unsupported expression %T", e)
}

// compileExprBlock compiles e into a logical-row predicate over the
// block, mirroring compileExprRow leaf for leaf: values are read
// through the block (allocation-free reconstruction) and compared with
// the same Equal/Less semantics as the row path.
func compileExprBlock(e plan.Expr, b *ColumnBlock, fns predFns) (func(i int) bool, error) {
	switch t := e.(type) {
	case plan.And:
		l, err := compileExprBlock(t.L, b, fns)
		if err != nil {
			return nil, err
		}
		r, err := compileExprBlock(t.R, b, fns)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return l(i) && r(i) }, nil
	case plan.Or:
		l, err := compileExprBlock(t.L, b, fns)
		if err != nil {
			return nil, err
		}
		r, err := compileExprBlock(t.R, b, fns)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return l(i) || r(i) }, nil
	case plan.Not:
		inner, err := compileExprBlock(t.E, b, fns)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return !inner(i) }, nil
	case plan.Between:
		idx, err := b.ColIndex(t.Col)
		if err != nil {
			return nil, err
		}
		lo, hi := valOfLit(t.Lo), valOfLit(t.Hi)
		return func(i int) bool {
			v := b.value(i, idx)
			return !v.Less(lo) && !hi.Less(v)
		}, nil
	case plan.Cmp:
		idx, err := b.ColIndex(t.Col)
		if err != nil {
			return nil, err
		}
		val := valOfLit(t.Val)
		switch t.Op {
		case "=":
			return func(i int) bool { return b.value(i, idx).Equal(val) }, nil
		case "<>", "!=":
			return func(i int) bool { return !b.value(i, idx).Equal(val) }, nil
		case "<":
			return func(i int) bool { return b.value(i, idx).Less(val) }, nil
		case "<=":
			return func(i int) bool { return !val.Less(b.value(i, idx)) }, nil
		case ">":
			return func(i int) bool { return val.Less(b.value(i, idx)) }, nil
		case ">=":
			return func(i int) bool { return !b.value(i, idx).Less(val) }, nil
		}
		return nil, fmt.Errorf("engine: unknown comparison %q", t.Op)
	case plan.ColPred:
		idx, err := b.ColIndex(t.Col)
		if err != nil {
			return nil, err
		}
		ffn, sfn := fns.colPredFns(t.Ref)
		switch t.Fn {
		case "float":
			if ffn == nil {
				return nil, fmt.Errorf("engine: dangling float predicate ref %d", t.Ref)
			}
			return func(i int) bool {
				v := b.value(i, idx)
				return v.IsNumeric() && ffn(v.AsFloat())
			}, nil
		case "string":
			if sfn == nil {
				return nil, fmt.Errorf("engine: dangling string predicate ref %d", t.Ref)
			}
			return func(i int) bool {
				v := b.value(i, idx)
				return v.Type() == TypeString && sfn(v.AsString())
			}, nil
		}
		return nil, fmt.Errorf("engine: unknown predicate domain %q", t.Fn)
	}
	return nil, fmt.Errorf("engine: unsupported expression %T", e)
}

// validateExprCols checks that every column e references resolves in
// the schema, returning the first resolution error (the same error the
// eager execution path would have produced).
func validateExprCols(e plan.Expr, schema Schema) error {
	for _, c := range plan.Columns(e) {
		if _, err := schema.ColIndex(c); err != nil {
			return err
		}
	}
	return nil
}
