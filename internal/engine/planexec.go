package engine

// Planned execution of a lowered join region. The contract is strict:
// planner-on output is byte-identical to planner-off output — same
// rows, same order, same Value payloads — for every query, so the
// planner can never change results, only speed.
//
// How that is achieved: the written (planner-off) path's output order
// is fully determined by its hash-build choices. Joins emit in probe
// order with build-insertion order within a key, so if the written
// path builds left at join p the new scan's rows become the slowest-
// varying sort key, otherwise the fastest. Executing joins in ANY
// order therefore produces the written order after sorting by per-scan
// row ids in that signature sequence. The planned path:
//
//  1. evaluates every pushed filter per scan, recording for each row
//     the earliest written position that rejects it (failPos);
//  2. reconstructs, by counting alone (canonLens), the written path's
//     intermediate sizes, hence its exact build-side choices;
//  3. when keeping written order, forces those build sides and needs
//     no sort at all — pushdown is a pure restriction and emission
//     order is preserved;
//  4. when reordering joins, tags each scan with a hidden row-id
//     column, joins in the cost-chosen order with whichever side is
//     observed smaller, and restores written order with one stable
//     sort over the row-id signature.

import (
	"sort"
	"strconv"
	"strings"

	"modeldata/internal/engine/plan"
	"modeldata/internal/prov"
)

// failNever marks a row rejected by no pushed filter.
const failNever = int32(1) << 30

// satCap bounds saturating counting arithmetic; any real intermediate
// is far below it, and a saturated count only means "build right".
const satCap = int64(1) << 62

// planRegion plans and executes q's join region, leaving the region's
// output in ch. It returns the number of leading ops consumed and
// whether it handled them; (0, false) means the caller must replay
// everything through the direct chain.
func (q *Query) planRegion(ch *chain) (int, bool) {
	reg := q.lowerRegion()
	if reg == nil {
		return 0, false
	}
	m := len(reg.joins)

	// Decode every scan, deduplicating self-joins. Any failure falls
	// back to the direct chain, which reproduces the historical mixed
	// row/column execution for undecodable tables.
	blocks := make([]*ColumnBlock, len(reg.scans))
	decoded := make(map[*Table]*ColumnBlock, len(reg.scans))
	for s, t := range reg.scans {
		if b, ok := decoded[t]; ok {
			blocks[s] = b
			continue
		}
		b, err := FromTable(t)
		if err != nil {
			if s == 0 {
				// The direct chain would hit this decode too; latch the
				// fallback now so it is noted exactly once.
				noteColFallback(err)
				ch.noCol = true
			}
			return 0, false
		}
		blocks[s] = b
		decoded[t] = b
	}

	// Pushed filters: failPos[s][i] is the earliest written position
	// (join count at write time) whose filter rejects row i of scan s.
	failPos := make([][]int32, len(blocks))
	for s, b := range blocks {
		fp := make([]int32, b.Len())
		for i := range fp {
			fp[i] = failNever
		}
		failPos[s] = fp
	}
	pushedBelow := 0
	for _, f := range reg.filters {
		b := blocks[f.scan]
		pred, err := compileExprBlock(f.pred, b, q)
		if err != nil {
			return 0, false
		}
		n := b.Len()
		rowsScanned.Add(int64(n))
		fp := failPos[f.scan]
		pos := int32(f.pos)
		for i := 0; i < n; i++ {
			if pos < fp[i] && !pred(i) {
				fp[i] = pos
			}
		}
		if f.scan > 0 || f.pos > 0 {
			// Scan 0 filters at position 0 run where written; everything
			// else crossed at least one join to reach its scan.
			pushedBelow++
		}
	}

	// Written-path build sides, reconstructed by counting.
	lj := make([]int, m)
	rj := make([]int, m)
	for p, jn := range reg.joins {
		a, err := blocks[jn.leftScan].ColIndex(jn.leftCol)
		if err != nil {
			return 0, false
		}
		bcol, err := blocks[p+1].ColIndex(jn.rightCol)
		if err != nil {
			return 0, false
		}
		lj[p], rj[p] = a, bcol
	}
	lens := canonLens(blocks, failPos, reg.joins, lj, rj)
	bl := make([]bool, m)
	sig := []int{0}
	for p := 1; p <= m; p++ {
		left := lens[p-1] < int64(blocks[p].Len())
		bl[p-1] = left
		if left {
			sig = append([]int{p}, sig...)
		} else {
			sig = append(sig, p)
		}
	}

	// Join order: cost-based for 2+ joins (cached across executions of
	// a Prepared statement), written order otherwise.
	var choice *plan.Choice
	if m >= 2 {
		choice = q.chooseOrder(reg, blocks)
	}
	reordered := choice != nil && choice.Reordered

	// Per-scan inputs: pushed filters applied, columns pruned to what
	// the rest of the query can observe, plus a hidden row-id column
	// per scan when reordering (for the final restoring sort) or when
	// recording provenance (region-exit annotations are built from the
	// same row ids, so they survive any join order).
	provOn := ch.prov != nil
	ret := q.retainedCols(reg)
	scanBlks := make([]*ColumnBlock, len(blocks))
	keepIdx := make([]map[string]int, len(blocks))
	for s, b := range blocks {
		scanBlks[s] = buildScanBlock(b, failPos[s], ret[s], reordered || provOn, s)
		mp := make(map[string]int, len(ret[s]))
		for i, rc := range ret[s] {
			mp[strings.ToLower(rc.bare)] = i
		}
		keepIdx[s] = mp
	}

	type pstep struct {
		leftScan, rightScan int
		leftCol, rightCol   string
		buildLeft           bool // meaningful only when forced
		forced              bool
	}
	steps := make([]pstep, m)
	startScan := 0
	if reordered {
		startScan = choice.Order[0]
		for i, st := range choice.Steps {
			steps[i] = pstep{
				leftScan: st.LeftScan, rightScan: st.RightScan,
				leftCol: st.LeftCol, rightCol: st.RightCol,
			}
		}
	} else {
		for p := 0; p < m; p++ {
			jn := reg.joins[p]
			steps[p] = pstep{
				leftScan: jn.leftScan, rightScan: p + 1,
				leftCol: jn.leftCol, rightCol: jn.rightCol,
				buildLeft: bl[p], forced: true,
			}
		}
	}

	// The join loop. colPos tracks where each scan's kept columns (and
	// row-id column) currently sit in the accumulated block.
	colPos := make([][]int, len(blocks))
	accRid := make([]int, len(blocks))
	acc := scanBlks[startScan]
	{
		pos := make([]int, len(ret[startScan]))
		for i := range pos {
			pos[i] = i
		}
		colPos[startScan] = pos
		accRid[startScan] = len(pos)
	}
	for _, st := range steps {
		right := scanBlks[st.rightScan]
		li := colPos[st.leftScan][keepIdx[st.leftScan][strings.ToLower(st.leftCol)]]
		ri := keepIdx[st.rightScan][strings.ToLower(st.rightCol)]
		buildLeft := st.buildLeft
		if !st.forced {
			// Reordered joins build on the observed smaller side (a sort
			// restores written order later, so the choice is free).
			buildLeft = acc.Len() < right.Len()
		}
		lidx, ridx := joinPairs(acc, right, li, ri, buildLeft, ch.sc, ch.budget, ch.spillDir)
		out := &ColumnBlock{
			Schema: append(acc.Schema.Clone(), right.Schema.Clone()...),
			nrows:  len(lidx),
			cols:   make([]colvec, 0, len(acc.Schema)+len(right.Schema)),
		}
		for j := range acc.Schema {
			out.cols = append(out.cols, gather(acc.cols[j], acc.Schema[j].Type, lidx))
		}
		for j := range right.Schema {
			out.cols = append(out.cols, gather(right.cols[j], right.Schema[j].Type, ridx))
		}
		ch.sc.putIdx(0, lidx)
		ch.sc.putIdx(1, ridx)
		off := len(acc.Schema)
		pos := make([]int, len(ret[st.rightScan]))
		for i := range pos {
			pos[i] = off + i
		}
		colPos[st.rightScan] = pos
		accRid[st.rightScan] = off + len(pos)
		acc = out
	}

	// Restore written order: sort by the row-id signature, then put the
	// columns back in written order (dropping the row-id columns).
	if reordered {
		n := acc.Len()
		sel := make([]int32, n)
		for i := 0; i < n; i++ {
			sel[i] = int32(acc.phys(i))
		}
		ridVecs := make([][]int64, 0, len(sig))
		for _, s := range sig {
			ridVecs = append(ridVecs, acc.cols[accRid[s]].ints)
		}
		sort.SliceStable(sel, func(x, y int) bool {
			a, b := sel[x], sel[y]
			for _, rv := range ridVecs {
				if rv[a] != rv[b] {
					return rv[a] < rv[b]
				}
			}
			return false
		})
		acc = acc.withSel(sel)
		planCanonSorts.Add(1)
	}
	outSchema := make(Schema, 0, len(acc.Schema))
	outCols := make([]colvec, 0, len(acc.Schema))
	for s := range scanBlks {
		for _, p := range colPos[s] {
			outSchema = append(outSchema, acc.Schema[p])
			outCols = append(outCols, acc.cols[p])
		}
	}
	if provOn {
		// Region-exit provenance: each output row's annotation is the
		// ⊗-union of one leaf per scan, recovered from the hidden row-id
		// columns before they are dropped. Union is associative and
		// commutative, so the cost-chosen join order cannot change the
		// sets. Self-join scans share their table name, so both sides'
		// leaves land in one identity space.
		n := acc.Len()
		ids := make([]int64, acc.nrows)
		arena := ch.prov.arena
		for i := 0; i < n; i++ {
			p := acc.phys(i)
			set := prov.Empty
			for s := range scanBlks {
				rid := acc.cols[accRid[s]].ints[p]
				set = arena.Join(set, arena.Leaf(reg.scans[s].Name, int(rid)))
			}
			ids[p] = int64(set)
		}
		provAnnotated.Add(int64(n))
		outSchema = append(outSchema, provCol)
		outCols = append(outCols, colvec{ints: ids})
	}
	acc = &ColumnBlock{Name: reg.name, Schema: outSchema, nrows: acc.nrows, sel: acc.sel, cols: outCols}

	// Residual multi-scan filters, exactly where they were written:
	// after all joins, on the written-order block.
	for _, p := range reg.post {
		pred, err := compileExprBlock(p, acc, q)
		if err != nil {
			return 0, false
		}
		acc = acc.whereFunc(pred)
	}

	colQueries.Add(1)
	planPlanned.Add(1)
	planPushdown.Add(int64(pushedBelow))
	if reordered {
		planReordered.Add(1)
	}
	ch.setBlock(acc)
	return reg.end, true
}

// chooseOrder runs (or recalls) the cost-based join-order choice.
// Prepared statements cache the Choice keyed by the scans' identity
// and sizes; only the order is cached — the order-restoring machinery
// recomputes everything data-dependent per execution, so a cached
// order can never change results.
func (q *Query) chooseOrder(reg *region, blocks []*ColumnBlock) *plan.Choice {
	if q.cache == nil {
		return plan.Choose(newBlockCatalog(reg.scans, blocks), regionSpecLite(reg))
	}
	key := scanSignature(reg)
	if c := q.cache.lookupChoice(key); c != nil {
		planCacheHits.Add(1)
		return c
	}
	planCacheMisses.Add(1)
	c := plan.Choose(newBlockCatalog(reg.scans, blocks), regionSpecLite(reg))
	if c != nil {
		q.cache.storeChoice(key, c)
	}
	return c
}

// regionSpecLite lowers a region without projection-pruning detail —
// all the optimizer needs.
func regionSpecLite(reg *region) *plan.RegionSpec {
	spec := &plan.RegionSpec{}
	for s, t := range reg.scans {
		spec.Scans = append(spec.Scans, plan.ScanSpec{
			Table: t.Name, Alias: reg.aliases[s], Rows: int64(t.Len()),
		})
	}
	for _, jn := range reg.joins {
		spec.Joins = append(spec.Joins, plan.JoinSpec{
			Left: jn.leftScan, LeftCol: jn.leftCol, RightCol: jn.rightCol,
		})
	}
	for _, f := range reg.filters {
		spec.Filters = append(spec.Filters, plan.FilterSpec{Scan: f.scan, Pos: f.pos, Pred: f.pred})
	}
	return spec
}

// scanSignature identifies a region's inputs for the choice cache.
func scanSignature(reg *region) string {
	var b strings.Builder
	for i, t := range reg.scans {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(reg.aliases[i])
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(t.Len()))
	}
	return b.String()
}

// ridColName names a scan's hidden row-id column; the NUL prefix keeps
// it out of any user-referencable namespace.
func ridColName(scan int) string {
	return "\x00rid" + strconv.Itoa(scan)
}

// buildScanBlock assembles one scan's planned input: kept columns
// renamed to their region-exit names, the pushed-filter selection, and
// (when reordering) an identity row-id column.
func buildScanBlock(b *ColumnBlock, fp []int32, keep []retCol, withRid bool, scan int) *ColumnBlock {
	n := b.Len()
	schema := make(Schema, 0, len(keep)+1)
	cols := make([]colvec, 0, len(keep)+1)
	for _, rc := range keep {
		schema = append(schema, Column{Name: rc.name, Type: b.Schema[rc.col].Type})
		cols = append(cols, b.cols[rc.col])
	}
	if withRid {
		rid := make([]int64, n)
		for i := range rid {
			rid[i] = int64(i)
		}
		schema = append(schema, Column{Name: ridColName(scan), Type: TypeInt})
		cols = append(cols, colvec{ints: rid})
	}
	nb := &ColumnBlock{Name: b.Name, Schema: schema, nrows: n, cols: cols}
	all := true
	var sel []int32
	for i := 0; i < n; i++ {
		if fp[i] == failNever {
			sel = append(sel, int32(i))
		} else {
			all = false
		}
	}
	if !all {
		if sel == nil {
			sel = emptySel
		}
		nb.sel = sel
	}
	return nb
}

// canonLens reconstructs the written path's intermediate sizes:
// lens[0] is scan 0 after its position-0 filters, lens[p] (p ≥ 1) the
// row count of the written intermediate after join p with every filter
// written at positions ≤ p applied. The written path builds join p's
// hash on the left exactly when lens[p-1] < len(scan p), and the
// planned path must reproduce those choices to reproduce emission
// order — so they are recovered here by counting alone, never by
// materializing the written intermediates.
//
// Each lens[p] is a Yannakakis-style bottom-up count over the join
// tree spanning scans 0..p: cnt[t] maps scan t's parent-edge key to
// the number of partial join tuples rooted at t, and scan 0's weighted
// sum is the intermediate's size. Arithmetic saturates at satCap; a
// saturated count compares "huge", which only flips a build side
// toward the raw scan — still exactly what the written path would do,
// since the real count is at least as large.
func canonLens(blocks []*ColumnBlock, failPos [][]int32, joins []regionJoin, lj, rj []int) []int64 {
	m := len(joins)
	lens := make([]int64, m)
	var c0 int64
	for _, f := range failPos[0] {
		if f > 0 {
			c0++
		}
	}
	lens[0] = c0
	var kb []byte
	for p := 1; p < m; p++ {
		cnt := make([]map[string]int64, p+1)
		for t := p; t >= 1; t-- {
			b := blocks[t]
			mp := make(map[string]int64, b.Len())
			fp := failPos[t]
			for i, n := 0, b.Len(); i < n; i++ {
				if int(fp[i]) <= p {
					continue
				}
				w := int64(1)
				// Joins introducing a scan below t in the tree slice:
				// join c introduces scan c+1 and hangs it off leftScan.
				for c := t; c < p; c++ {
					if joins[c].leftScan != t {
						continue
					}
					kb = b.appendKeyAt(kb[:0], i, lj[c])
					w = satMul(w, cnt[c+1][string(kb)])
					if w == 0 {
						break
					}
				}
				if w == 0 {
					continue
				}
				kb = b.appendKeyAt(kb[:0], i, rj[t-1])
				mp[string(kb)] = satAdd(mp[string(kb)], w)
			}
			cnt[t] = mp
		}
		var total int64
		b0 := blocks[0]
		fp := failPos[0]
		for i, n := 0, b0.Len(); i < n; i++ {
			if int(fp[i]) <= p {
				continue
			}
			w := int64(1)
			for c := 0; c < p; c++ {
				if joins[c].leftScan != 0 {
					continue
				}
				kb = b0.appendKeyAt(kb[:0], i, lj[c])
				w = satMul(w, cnt[c+1][string(kb)])
				if w == 0 {
					break
				}
			}
			total = satAdd(total, w)
		}
		lens[p] = total
	}
	return lens
}

// satAdd and satMul saturate at satCap; inputs are non-negative.
func satAdd(a, b int64) int64 {
	if a > satCap-b {
		return satCap
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > satCap/b {
		return satCap
	}
	return a * b
}
