package engine

// The storage seam. Storage abstracts "something that can stream a
// relation as ColumnBlocks": the in-memory *Table is one
// implementation (one partition, no pruning) and the on-disk column
// store in internal/colstore is another (many segment partitions,
// zone-map pruning). Query.FromStorage and SQL FROM resolution consume
// the interface, so every operator above the scan — filters, joins,
// group-by, the spill paths — is shared between backends, which is
// what makes the byte-identical storage-equivalence suite possible
// (and is the swappable-backend split the Extensible Database
// Simulator paper argues for).

import (
	"context"
	"fmt"

	"modeldata/internal/engine/plan"
)

// ScanStats reports what one partitioned scan did: how many partitions
// (segments) the storage holds for the scan, how many it actually
// decoded, and how many column blocks zone maps pruned without decode.
type ScanStats struct {
	Partitions   int64
	Scanned      int64
	BlocksPruned int64
}

// PartitionIter streams the partitions of one scan. Next returns
// (nil, nil) after the final partition. Stats is valid once Next has
// returned nil and reflects the whole scan.
type PartitionIter interface {
	Next() (*ColumnBlock, error)
	Stats() ScanStats
}

// Storage is a scannable relation backend. ScanPartitions streams the
// relation as one or more ColumnBlocks; cols (nil = all, in schema
// order) projects columns before decode, and pred is a pruning *hint*:
// the storage may use it to skip partitions that cannot contain a
// matching row, but must never use it to drop individual rows —
// callers re-apply every filter to the blocks they receive, so a
// storage that ignores pred entirely is still correct.
type Storage interface {
	// StorageName names the relation (the table name blocks carry).
	StorageName() string
	// StorageSchema returns the relation's schema.
	StorageSchema() Schema
	// NumRows returns the total row count across all partitions.
	NumRows() int64
	// ScanPartitions starts a scan. The iterator must be drained or
	// abandoned; it holds no locks between Next calls.
	ScanPartitions(ctx context.Context, cols []string, pred plan.Expr) (PartitionIter, error)
}

// ScanPlanner is an optional Storage refinement for EXPLAIN: it
// predicts, without decoding data, how many partitions a scan with the
// given pruning hint would touch and how many column blocks it would
// prune. The on-disk store implements it from segment footers.
type ScanPlanner interface {
	PlanScan(pred plan.Expr) (partitions, blocksPruned int64)
}

// StorageName implements Storage for the in-memory table.
func (t *Table) StorageName() string { return t.Name }

// StorageSchema implements Storage.
func (t *Table) StorageSchema() Schema { return t.Schema.Clone() }

// NumRows implements Storage.
func (t *Table) NumRows() int64 { return int64(len(t.Rows)) }

// ScanPartitions implements Storage: the whole table is one partition,
// decoded strictly (a mixed column fails the scan — storage callers
// have no row path to fall back to). The pruning hint is ignored;
// filters re-apply above.
func (t *Table) ScanPartitions(ctx context.Context, cols []string, _ plan.Expr) (PartitionIter, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := FromTable(t)
	if err != nil {
		return nil, err
	}
	if cols != nil {
		if b, err = b.Project(cols...); err != nil {
			return nil, err
		}
		b.Name = t.Name
	}
	return &tableIter{block: b}, nil
}

// tableIter yields one block, then (nil, nil).
type tableIter struct {
	block *ColumnBlock
	done  bool
}

func (it *tableIter) Next() (*ColumnBlock, error) {
	if it.done {
		return nil, nil
	}
	it.done = true
	return it.block, nil
}

func (it *tableIter) Stats() ScanStats {
	return ScanStats{Partitions: 1, Scanned: 1}
}

// concatBlocks concatenates partitions (all sharing schema) into one
// dense block named name. A single partition passes through without
// copying; zero partitions produce an empty block of the schema.
func concatBlocks(name string, schema Schema, parts []*ColumnBlock) (*ColumnBlock, error) {
	if len(parts) == 1 {
		b := parts[0].Dense()
		if b == parts[0] {
			nb := *b
			nb.Name = name
			return &nb, nil
		}
		b.Name = name
		return b, nil
	}
	total := 0
	dense := make([]*ColumnBlock, len(parts))
	for i, p := range parts {
		if !p.Schema.Equal(schema) {
			return nil, fmt.Errorf("%w: partition %d schema differs from scan schema", ErrSchema, i)
		}
		dense[i] = p.Dense()
		total += dense[i].Len()
	}
	out := &ColumnBlock{
		Name:   name,
		Schema: schema.Clone(),
		nrows:  total,
		cols:   make([]colvec, len(schema)),
	}
	for j, c := range schema {
		switch c.Type {
		case TypeInt:
			v := make([]int64, 0, total)
			for _, d := range dense {
				v = append(v, d.cols[j].ints[:d.nrows]...)
			}
			out.cols[j].ints = v
		case TypeFloat:
			v := make([]float64, 0, total)
			for _, d := range dense {
				v = append(v, d.cols[j].floats[:d.nrows]...)
			}
			out.cols[j].floats = v
		case TypeString:
			v := make([]string, 0, total)
			for _, d := range dense {
				v = append(v, d.cols[j].strs[:d.nrows]...)
			}
			out.cols[j].strs = v
		case TypeBool:
			v := make([]bool, 0, total)
			for _, d := range dense {
				v = append(v, d.cols[j].bools[:d.nrows]...)
			}
			out.cols[j].bools = v
		}
	}
	return out, nil
}
