package engine

// Lowering: extracting the plannable "join region" from a recorded
// query. The region is the maximal prefix of scans, equi-joins, and
// filters whose conjuncts each touch a single scan; the optimizer
// (internal/engine/plan) reorders it, and everything after it replays
// as written. Lowering is pure analysis — it never executes anything.

import (
	"fmt"
	"strings"

	"modeldata/internal/engine/plan"
)

// colOrigin tracks where one column of the query's evolving schema
// came from: the scan that produced it, its bare (scan-local) name,
// and its current qualified name.
type colOrigin struct {
	scan int
	bare string
	name string
}

// regionJoin is one written join edge in scan-index form: it matches
// leftCol of scan leftScan against rightCol of the scan it introduces
// (join j introduces scan j+1).
type regionJoin struct {
	leftScan int
	leftCol  string
	rightCol string
}

// regionFilter is a single-scan filter conjunct. pos is the number of
// joins recorded when it was written; pred uses bare column names.
type regionFilter struct {
	scan int
	pos  int
	pred plan.Expr
}

// region is a lowered join region.
type region struct {
	scans   []*Table
	aliases []string // display aliases, deduplicated for self-joins
	joins   []regionJoin
	filters []regionFilter
	post    []plan.Expr // multi-scan conjuncts, exit-qualified names
	end     int         // number of leading ops the region consumed
	cols    []colOrigin // region output columns in written order
	name    string      // region output table name
}

// lowerRegion extracts q's join region, or nil when the query has no
// plannable prefix (no joins, or an unplannable shape). Filters whose
// conjuncts each touch one scan are recorded for pushdown; a filter
// with a multi-scan conjunct ends the region early if more joins
// follow it, and otherwise lands in post (it runs after all joins
// either way, exactly where it was written).
func (q *Query) lowerRegion() *region {
	if q.src == nil {
		return nil
	}
	prefixEnd, joinsTotal := 0, 0
	for prefixEnd < len(q.ops) {
		switch q.ops[prefixEnd].kind {
		case opJoin:
			joinsTotal++
		case opFilter:
		default:
			goto scanned
		}
		prefixEnd++
	}
scanned:
	if joinsTotal == 0 {
		return nil
	}
	r := &region{scans: []*Table{q.src}, aliases: []string{q.src.Name}, name: q.src.Name}
	cols := make([]colOrigin, 0, len(q.src.Schema))
	for _, c := range q.src.Schema {
		cols = append(cols, colOrigin{scan: 0, bare: c.Name, name: c.Name})
	}
	joinsLeft := joinsTotal
	i := 0
walk:
	for ; i < prefixEnd; i++ {
		op := q.ops[i]
		switch op.kind {
		case opFilter:
			conjs := plan.Conjuncts(op.expr)
			scansOf := make([]int, len(conjs))
			multi := false
			for k, cj := range conjs {
				s, ok := conjunctScan(cols, cj)
				if !ok {
					return nil
				}
				scansOf[k] = s
				if s < 0 {
					multi = true
				}
			}
			if multi && joinsLeft > 0 {
				// A cross-scan predicate with joins still to come: the
				// op must replay in place, so the region ends here.
				break walk
			}
			for k, cj := range conjs {
				if scansOf[k] >= 0 {
					r.filters = append(r.filters, regionFilter{
						scan: scansOf[k], pos: len(r.joins), pred: bareExpr(cols, cj),
					})
				} else {
					// No joins follow, so written names are exit names.
					r.post = append(r.post, cj)
				}
			}
		case opJoin:
			joinsLeft--
			lo, ok := resolveCol(cols, op.joinL)
			if !ok {
				return nil
			}
			rj, err := op.joinT.Schema.ColIndex(op.joinR)
			if err != nil {
				return nil
			}
			k := len(r.scans)
			if !op.joinFlat {
				for idx := range cols {
					cols[idx].name = r.name + "." + cols[idx].name
				}
			}
			for _, c := range op.joinT.Schema {
				cols = append(cols, colOrigin{scan: k, bare: c.Name, name: op.joinT.Name + "." + c.Name})
			}
			r.name = r.name + "_" + op.joinT.Name
			r.scans = append(r.scans, op.joinT)
			r.aliases = append(r.aliases, dedupAlias(r.aliases, op.joinT.Name))
			r.joins = append(r.joins, regionJoin{
				leftScan: lo.scan, leftCol: lo.bare, rightCol: op.joinT.Schema[rj].Name,
			})
		}
	}
	if len(r.joins) == 0 {
		return nil
	}
	r.end = i
	r.cols = cols
	return r
}

// resolveCol finds the first column whose current name matches,
// case-insensitively — the same first-match rule Schema.ColIndex uses.
func resolveCol(cols []colOrigin, name string) (colOrigin, bool) {
	for _, c := range cols {
		if strings.EqualFold(c.name, name) {
			return c, true
		}
	}
	return colOrigin{}, false
}

// conjunctScan returns the single scan a conjunct's columns resolve
// to, -1 if they span scans, and ok=false on a resolution failure.
func conjunctScan(cols []colOrigin, e plan.Expr) (int, bool) {
	refs := plan.Columns(e)
	scan := -2
	for _, rc := range refs {
		o, ok := resolveCol(cols, rc)
		if !ok {
			return 0, false
		}
		if scan == -2 {
			scan = o.scan
		} else if scan != o.scan {
			return -1, true
		}
	}
	if scan == -2 {
		return -1, true
	}
	return scan, true
}

// bareExpr rewrites e's qualified column names to their bare
// (scan-local) forms.
func bareExpr(cols []colOrigin, e plan.Expr) plan.Expr {
	return plan.RenameCols(e, func(name string) string {
		if o, ok := resolveCol(cols, name); ok {
			return o.bare
		}
		return name
	})
}

func dedupAlias(used []string, name string) string {
	alias := name
	for n := 2; ; n++ {
		clash := false
		for _, u := range used {
			if u == alias {
				clash = true
				break
			}
		}
		if !clash {
			return alias
		}
		alias = fmt.Sprintf("%s_%d", name, n)
	}
}

// --- projection pruning ---

// retCol is one physical column the planned region must materialize.
type retCol struct {
	col  int    // index in the scan's schema
	bare string // scan-local name
	name string // region-exit (qualified) name
}

// retainedCols computes, per scan, the columns planned execution must
// carry: those the query tail can reference (neededAtExit) plus the
// region's own join keys and post-filter columns. Results preserve
// each scan's schema order.
func (q *Query) retainedCols(reg *region) [][]retCol {
	need := q.neededAtExit(reg)
	local := make([]map[string]bool, len(reg.scans))
	mark := func(scan int, bare string) {
		if local[scan] == nil {
			local[scan] = make(map[string]bool)
		}
		local[scan][strings.ToLower(bare)] = true
	}
	for j, jn := range reg.joins {
		mark(jn.leftScan, jn.leftCol)
		mark(j+1, jn.rightCol)
	}
	for _, p := range reg.post {
		for _, c := range plan.Columns(p) {
			if o, ok := resolveCol(reg.cols, c); ok {
				mark(o.scan, o.bare)
			}
		}
	}
	out := make([][]retCol, len(reg.scans))
	counts := make([]int, len(reg.scans))
	for _, c := range reg.cols {
		idx := counts[c.scan]
		counts[c.scan]++
		if need == nil || need[strings.ToLower(c.name)] || local[c.scan][strings.ToLower(c.bare)] {
			out[c.scan] = append(out[c.scan], retCol{col: idx, bare: c.bare, name: c.name})
		}
	}
	return out
}

// neededAtExit returns the set of region-exit column names (lowercase)
// the operations after the region require, or nil meaning all of them.
// It walks the tail backward: projections and aggregations narrow the
// set; whole-row operations (Where, Extend, Distinct, trailing joins)
// widen it to everything, since they observe the full schema.
func (q *Query) neededAtExit(reg *region) map[string]bool {
	var need map[string]bool // nil = all
	tail := q.ops[reg.end:]
	for i := len(tail) - 1; i >= 0; i-- {
		op := tail[i]
		switch op.kind {
		case opLimit:
			// row count only; the set is unchanged
		case opFilter:
			if need != nil {
				for _, c := range plan.Columns(op.expr) {
					need[strings.ToLower(c)] = true
				}
			}
		case opOrderBy:
			if need != nil {
				need[strings.ToLower(op.col)] = true
			}
		case opSelect:
			s := make(map[string]bool, len(op.cols))
			for _, c := range op.cols {
				s[strings.ToLower(c)] = true
			}
			need = s
		case opRename:
			if need != nil {
				delete(need, strings.ToLower(op.newName))
				need[strings.ToLower(op.oldName)] = true
			}
		case opGroupBy:
			s := make(map[string]bool, len(op.cols)+len(op.aggs))
			for _, k := range op.cols {
				s[strings.ToLower(k)] = true
			}
			for _, a := range op.aggs {
				if a.Col != "" {
					s[strings.ToLower(a.Col)] = true
				}
			}
			need = s
		default: // opWhereRow, opExtend, opDistinct, opJoin
			need = nil
		}
	}
	return need
}

// --- EXPLAIN ---

// Explain returns the logical plan Run would execute, without running
// it. With the planner enabled the join region appears in its
// optimized form (filters pushed to their scans, joins in cost-chosen
// order with build sides and cardinality estimates); with it disabled,
// or for unplannable queries, the written shape is shown. Render with
// Tree.Text or serialize with Tree.JSON.
func (q *Query) Explain() (*plan.Tree, error) {
	if q.err != nil {
		return nil, q.err
	}
	if q.store != nil {
		// Storage-backed scan: one scan node annotated with the
		// storage's partition/pruning prediction (from segment footers,
		// no data decoded), then the recorded operations as written.
		root := &plan.Node{
			Kind: plan.KindScan, Table: q.store.StorageName(),
			Alias: q.store.StorageName(), Rows: q.store.NumRows(),
		}
		if sp, ok := q.store.(ScanPlanner); ok {
			root.Partitions, root.BlocksPruned = sp.PlanScan(q.leadingFilterExpr())
		}
		for _, op := range q.ops {
			root = opNode(op, root)
		}
		return &plan.Tree{Root: root}, nil
	}
	if q.src == nil {
		return nil, fmt.Errorf("engine: explain of empty query")
	}
	start := 0
	var root *plan.Node
	if reg := q.lowerRegion(); reg != nil {
		spec, cat := q.regionSpec(reg)
		var choice *plan.Choice
		if q.plannerOn() && len(reg.joins) >= 2 {
			choice = plan.Choose(cat, spec)
		}
		if choice == nil {
			choice = plan.WrittenOrder(cat, spec)
		}
		root = plan.BuildTree(spec, choice)
		start = reg.end
	} else {
		root = &plan.Node{Kind: plan.KindScan, Table: q.src.Name, Alias: q.src.Name, Rows: int64(q.src.Len())}
	}
	for _, op := range q.ops[start:] {
		root = opNode(op, root)
	}
	return &plan.Tree{Root: root}, nil
}

// regionSpec lowers a region to the plan package's spec plus a
// statistics catalog over the scans. Decoding here is silent — no
// fallback metrics — because nothing is being executed.
func (q *Query) regionSpec(reg *region) (*plan.RegionSpec, plan.Catalog) {
	ret := q.retainedCols(reg)
	spec := &plan.RegionSpec{}
	for s, t := range reg.scans {
		cols := make([]string, 0, len(ret[s]))
		for _, rc := range ret[s] {
			cols = append(cols, rc.bare)
		}
		spec.Scans = append(spec.Scans, plan.ScanSpec{
			Table: t.Name, Alias: reg.aliases[s], Rows: int64(t.Len()), Cols: cols,
		})
	}
	for _, jn := range reg.joins {
		spec.Joins = append(spec.Joins, plan.JoinSpec{
			Left: jn.leftScan, LeftCol: jn.leftCol, RightCol: jn.rightCol,
		})
	}
	for _, f := range reg.filters {
		spec.Filters = append(spec.Filters, plan.FilterSpec{Scan: f.scan, Pos: f.pos, Pred: f.pred})
	}
	spec.Post = append(spec.Post, reg.post...)
	blocks := make([]*ColumnBlock, len(reg.scans))
	decoded := make(map[*Table]*ColumnBlock, len(reg.scans))
	for s, t := range reg.scans {
		if b, ok := decoded[t]; ok {
			blocks[s] = b
			continue
		}
		if b, err := FromTable(t); err == nil {
			blocks[s] = b
			decoded[t] = b
		}
	}
	return spec, newBlockCatalog(reg.scans, blocks)
}

// opNode renders one recorded operation as a plan node over input.
func opNode(op *qop, input *plan.Node) *plan.Node {
	switch op.kind {
	case opWhereRow:
		return &plan.Node{Kind: plan.KindOpaque, Op: "where(func)", Input: input}
	case opFilter:
		return &plan.Node{Kind: plan.KindFilter, Pred: op.expr, Input: input}
	case opSelect:
		return &plan.Node{Kind: plan.KindProject, Cols: op.cols, Input: input}
	case opRename:
		return &plan.Node{Kind: plan.KindOpaque, Op: "rename " + op.oldName + " -> " + op.newName, Input: input}
	case opJoin:
		return &plan.Node{
			Kind: plan.KindJoin,
			Left: input,
			Right: &plan.Node{
				Kind: plan.KindScan, Table: op.joinT.Name, Alias: op.joinT.Name, Rows: int64(op.joinT.Len()),
			},
			LeftCol: op.joinL, RightCol: op.joinR,
		}
	case opGroupBy:
		aggs := make([]plan.AggSpec, 0, len(op.aggs))
		for _, a := range op.aggs {
			aggs = append(aggs, plan.AggSpec{Fn: a.Fn.String(), Col: a.Col, As: a.As})
		}
		return &plan.Node{Kind: plan.KindAggregate, Keys: op.cols, Aggs: aggs, Input: input}
	case opOrderBy:
		return &plan.Node{Kind: plan.KindSort, Col: op.col, Desc: op.desc, Input: input}
	case opDistinct:
		return &plan.Node{Kind: plan.KindDistinct, Input: input}
	case opLimit:
		return &plan.Node{Kind: plan.KindLimit, N: op.n, Input: input}
	case opExtend:
		return &plan.Node{Kind: plan.KindOpaque, Op: "extend " + op.extName, Input: input}
	}
	return input
}
