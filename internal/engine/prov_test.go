package engine

import (
	"fmt"
	"reflect"
	"testing"

	"modeldata/internal/prov"
)

func provTestTables() (*Table, *Table) {
	people := MustNewTable("people", Schema{
		{Name: "pid", Type: TypeInt},
		{Name: "city", Type: TypeString},
		{Name: "age", Type: TypeFloat},
	})
	people.MustInsert(Int(1), Str("oslo"), Float(30))
	people.MustInsert(Int(2), Str("rome"), Float(40))
	people.MustInsert(Int(3), Str("oslo"), Float(50))
	people.MustInsert(Int(4), Str("rome"), Float(60))

	visits := MustNewTable("visits", Schema{
		{Name: "pid", Type: TypeInt},
		{Name: "site", Type: TypeString},
	})
	visits.MustInsert(Int(1), Str("a"))
	visits.MustInsert(Int(2), Str("b"))
	visits.MustInsert(Int(2), Str("c"))
	visits.MustInsert(Int(4), Str("d"))
	return people, visits
}

func leavesOf(t *testing.T, res *Table, row int) []prov.Leaf {
	t.Helper()
	ls, ok := res.Lineage(row)
	if !ok {
		t.Fatalf("Lineage(%d) not available", row)
	}
	return ls
}

// TestProvFilterSelect: filters and projections keep per-row source
// lineage intact, and the visible output matches a provenance-free run.
func TestProvFilterSelect(t *testing.T) {
	people, _ := provTestTables()
	q := From(people).
		WhereFloat("age", func(a float64) bool { return a >= 40 }).
		Select("pid", "city")
	plain := q.MustRun()
	res := q.WithProvenance().MustRun()
	if !tablesEqualForTest(plain, res) {
		t.Fatalf("provenance changed visible output:\n%v\nvs\n%v", plain, res)
	}
	if !res.HasLineage() {
		t.Fatal("result has no lineage")
	}
	// Rows 40, 50, 60 are people rows 1, 2, 3.
	for i, want := range []int{1, 2, 3} {
		if got := leavesOf(t, res, i); !reflect.DeepEqual(got, []prov.Leaf{{Table: "people", Row: want}}) {
			t.Fatalf("row %d lineage = %v, want people:%d", i, got, want)
		}
	}
	if _, ok := plain.Lineage(0); ok {
		t.Fatal("plain run unexpectedly carries lineage")
	}
}

// TestProvJoin: each joined row's lineage is the union of both sides'
// source rows, on the planner-on and planner-off paths alike.
func TestProvJoin(t *testing.T) {
	people, visits := provTestTables()
	for _, plannerOn := range []bool{true, false} {
		q := From(people).
			Join(visits, "pid", "pid").
			WithPlanner(plannerOn).
			WithProvenance()
		res := q.MustRun()
		plain := From(people).Join(visits, "pid", "pid").WithPlanner(plannerOn).MustRun()
		if !tablesEqualForTest(plain, res) {
			t.Fatalf("planner=%v: provenance changed join output", plannerOn)
		}
		// Join emits probe order: people 1-v0, 2-v1, 2-v2, 4-v3.
		want := [][]prov.Leaf{
			{{Table: "people", Row: 0}, {Table: "visits", Row: 0}},
			{{Table: "people", Row: 1}, {Table: "visits", Row: 1}},
			{{Table: "people", Row: 1}, {Table: "visits", Row: 2}},
			{{Table: "people", Row: 3}, {Table: "visits", Row: 3}},
		}
		if res.Len() != len(want) {
			t.Fatalf("planner=%v: %d rows, want %d", plannerOn, res.Len(), len(want))
		}
		for i, w := range want {
			if got := leavesOf(t, res, i); !reflect.DeepEqual(got, w) {
				t.Fatalf("planner=%v row %d lineage = %v, want %v", plannerOn, i, got, w)
			}
		}
	}
}

// TestProvGroupBy: group annotations are the union of every member
// row's lineage, through joins.
func TestProvGroupBy(t *testing.T) {
	people, visits := provTestTables()
	q := From(people).
		Join(visits, "pid", "pid").
		GroupBy([]string{"people.city"}, Aggregate{Fn: AggCount, Col: "", As: "n"}).
		WithProvenance()
	res := q.MustRun()
	// Groups in first appearance order: oslo (people 0 × visits 0),
	// rome (people 1 × visits 1,2; people 3 × visits 3).
	want := [][]prov.Leaf{
		{{Table: "people", Row: 0}, {Table: "visits", Row: 0}},
		{{Table: "people", Row: 1}, {Table: "people", Row: 3}, {Table: "visits", Row: 1}, {Table: "visits", Row: 2}, {Table: "visits", Row: 3}},
	}
	if res.Len() != 2 {
		t.Fatalf("got %d groups, want 2:\n%v", res.Len(), res)
	}
	for i, w := range want {
		if got := leavesOf(t, res, i); !reflect.DeepEqual(got, w) {
			t.Fatalf("group %d lineage = %v, want %v", i, got, w)
		}
	}
}

// TestProvDistinct: duplicates merge their lineage into the kept row.
func TestProvDistinct(t *testing.T) {
	people, _ := provTestTables()
	q := From(people).Select("city").Distinct().WithProvenance()
	res := q.MustRun()
	want := [][]prov.Leaf{
		{{Table: "people", Row: 0}, {Table: "people", Row: 2}}, // oslo
		{{Table: "people", Row: 1}, {Table: "people", Row: 3}}, // rome
	}
	if res.Len() != 2 {
		t.Fatalf("got %d rows, want 2", res.Len())
	}
	for i, w := range want {
		if got := leavesOf(t, res, i); !reflect.DeepEqual(got, w) {
			t.Fatalf("row %d lineage = %v, want %v", i, got, w)
		}
	}
}

// TestProvEmptyAggregate: the synthesized global group over empty
// input has empty lineage, not a failure.
func TestProvEmptyAggregate(t *testing.T) {
	people, _ := provTestTables()
	res := From(people).
		WhereFloat("age", func(a float64) bool { return a > 1000 }).
		GroupBy(nil, Aggregate{Fn: AggCount, As: "n"}).
		WithProvenance().
		MustRun()
	if res.Len() != 1 || res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("unexpected empty aggregate: %v", res)
	}
	if got := leavesOf(t, res, 0); len(got) != 0 {
		t.Fatalf("empty group lineage = %v, want empty", got)
	}
}

// TestProvPlannerReorderInvariance: a three-way join whose cost-chosen
// order differs from the written order must yield identical lineage to
// the planner-off run, because the semiring is order-insensitive.
func TestProvPlannerReorderInvariance(t *testing.T) {
	big := MustNewTable("big", Schema{{Name: "k", Type: TypeInt}, {Name: "x", Type: TypeInt}})
	for i := 0; i < 200; i++ {
		big.MustInsert(Int(int64(i%10)), Int(int64(i)))
	}
	mid := MustNewTable("mid", Schema{{Name: "k", Type: TypeInt}, {Name: "m", Type: TypeInt}})
	for i := 0; i < 20; i++ {
		mid.MustInsert(Int(int64(i%10)), Int(int64(i)))
	}
	small := MustNewTable("small", Schema{{Name: "k", Type: TypeInt}, {Name: "s", Type: TypeInt}})
	for i := 0; i < 3; i++ {
		small.MustInsert(Int(int64(i)), Int(int64(100+i)))
	}
	build := func(plannerOn bool) *Table {
		return From(big).
			Join(mid, "k", "k").
			Join(small, "big.k", "k").
			WithPlanner(plannerOn).
			WithProvenance().
			MustRun()
	}
	on, off := build(true), build(false)
	if !tablesEqualForTest(on, off) {
		t.Fatal("planner changed visible output under provenance")
	}
	for i := 0; i < on.Len(); i++ {
		lon, loff := leavesOf(t, on, i), leavesOf(t, off, i)
		if !reflect.DeepEqual(lon, loff) {
			t.Fatalf("row %d lineage differs: planner-on %v vs planner-off %v", i, lon, loff)
		}
	}
}

// TestProvStorageBacked: storage-backed scans annotate rows with
// indexes into the full stored relation.
func TestProvStorageBacked(t *testing.T) {
	people, _ := provTestTables()
	res := FromStorage(people).
		WhereString("city", func(s string) bool { return s == "rome" }).
		Select("pid").
		WithProvenance().
		MustRun()
	want := [][]prov.Leaf{
		{{Table: "people", Row: 1}},
		{{Table: "people", Row: 3}},
	}
	if res.Len() != 2 {
		t.Fatalf("got %d rows, want 2", res.Len())
	}
	for i, w := range want {
		if got := leavesOf(t, res, i); !reflect.DeepEqual(got, w) {
			t.Fatalf("row %d lineage = %v, want %v", i, got, w)
		}
	}
}

// TestProvRowPathFallback: a table that fails the strict columnar
// decode (mixed dynamic types) still threads provenance through the
// row operators.
func TestProvRowPathFallback(t *testing.T) {
	mixed := MustNewTable("mixed", Schema{
		{Name: "k", Type: TypeInt},
		{Name: "v", Type: TypeFloat},
	})
	mixed.Rows = append(mixed.Rows,
		Row{Int(1), Float(1.5)},
		Row{Int(2), Int(7)}, // dynamic Int in a Float column: decode fails
		Row{Int(1), Float(2.5)},
	)
	res := From(mixed).
		GroupBy([]string{"k"}, Aggregate{Fn: AggCount, As: "n"}).
		WithProvenance().
		MustRun()
	if res.Len() != 2 {
		t.Fatalf("got %d groups, want 2", res.Len())
	}
	want := [][]prov.Leaf{
		{{Table: "mixed", Row: 0}, {Table: "mixed", Row: 2}},
		{{Table: "mixed", Row: 1}},
	}
	for i, w := range want {
		if got := leavesOf(t, res, i); !reflect.DeepEqual(got, w) {
			t.Fatalf("group %d lineage = %v, want %v", i, got, w)
		}
	}
}

// TestProvOutputUnchangedRandomized: across a grid of pipeline shapes,
// WithProvenance never changes the visible result.
func TestProvOutputUnchangedRandomized(t *testing.T) {
	people, visits := provTestTables()
	shapes := []func() *Query{
		func() *Query { return From(people).WhereEq("city", Str("oslo")) },
		func() *Query { return From(people).Select("city", "age").OrderBy("age", true).Limit(2) },
		func() *Query {
			return From(people).Rename("age", "years").WhereFloat("years", func(a float64) bool { return a < 55 })
		},
		func() *Query {
			return From(people).Join(visits, "pid", "pid").GroupBy([]string{"visits.site"}, Aggregate{Fn: AggCount, As: "n"})
		},
		func() *Query { return From(people).Select("city").Distinct().OrderBy("city", false) },
		func() *Query {
			return From(people).Extend("older", TypeFloat, func(r Row) Value { return Float(r[2].AsFloat() + 1) }).Limit(3)
		},
		func() *Query { return From(people).Where(func(r Row) bool { return r[0].AsInt()%2 == 1 }) },
	}
	for si, mk := range shapes {
		for _, plannerOn := range []bool{true, false} {
			t.Run(fmt.Sprintf("shape%d_planner%v", si, plannerOn), func(t *testing.T) {
				plain := mk().WithPlanner(plannerOn).MustRun()
				withP := mk().WithPlanner(plannerOn).WithProvenance().MustRun()
				if !tablesEqualForTest(plain, withP) {
					t.Fatalf("visible output differs:\n%v\nvs\n%v", plain, withP)
				}
				if !withP.HasLineage() {
					t.Fatal("no lineage recorded")
				}
			})
		}
	}
}

// tablesEqualForTest compares two tables for identical schema, rows,
// and Value payloads.
func tablesEqualForTest(a, b *Table) bool {
	if !a.Schema.Equal(b.Schema) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}
