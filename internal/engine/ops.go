package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Predicate decides whether a row qualifies.
type Predicate func(Row) bool

// Select returns a new table containing the rows of t that satisfy
// pred. Rows are shared, not copied; treat query results as immutable.
func Select(t *Table, pred Predicate) *Table {
	rowsScanned.Add(int64(len(t.Rows)))
	out := &Table{Name: t.Name, Schema: t.Schema.Clone()}
	for _, r := range t.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Project returns a new table with only the named columns, in order.
func Project(t *Table, cols ...string) (*Table, error) {
	idx := make([]int, len(cols))
	schema := make(Schema, len(cols))
	for i, c := range cols {
		j, err := t.ColIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
		schema[i] = t.Schema[j]
	}
	out := &Table{Name: t.Name, Schema: schema}
	out.Rows = make([]Row, len(t.Rows))
	for ri, r := range t.Rows {
		nr := make(Row, len(idx))
		for i, j := range idx {
			nr[i] = r[j]
		}
		out.Rows[ri] = nr
	}
	return out, nil
}

// Rename returns a shallow copy of t with column old renamed to new.
func Rename(t *Table, oldName, newName string) (*Table, error) {
	j, err := t.ColIndex(oldName)
	if err != nil {
		return nil, err
	}
	out := &Table{Name: t.Name, Schema: t.Schema.Clone(), Rows: t.Rows}
	out.Schema[j].Name = newName
	return out, nil
}

// prefixSchema returns t's schema with each column prefixed by the
// table name ("table.col"), used to disambiguate join outputs.
func prefixSchema(t *Table) Schema {
	s := make(Schema, len(t.Schema))
	for i, c := range t.Schema {
		s[i] = Column{Name: t.Name + "." + c.Name, Type: c.Type}
	}
	return s
}

// EquiJoin computes the equijoin of l and r on l.leftCol = r.rightCol
// using a hash join. Output columns are prefixed with their table names
// to avoid collisions.
func EquiJoin(l, r *Table, leftCol, rightCol string) (*Table, error) {
	li, err := l.ColIndex(leftCol)
	if err != nil {
		return nil, fmt.Errorf("join left: %w", err)
	}
	ri, err := r.ColIndex(rightCol)
	if err != nil {
		return nil, fmt.Errorf("join right: %w", err)
	}
	// Build on the smaller side.
	build, probe := r, l
	bi, pi := ri, li
	swapped := false
	if len(l.Rows) < len(r.Rows) {
		build, probe = l, r
		bi, pi = li, ri
		swapped = true
	}
	ht := make(map[string][]Row, len(build.Rows))
	var keyBuf []byte // reused binary key buffer; interned only on new keys
	for _, row := range build.Rows {
		keyBuf = row[bi].AppendKey(keyBuf[:0])
		ht[string(keyBuf)] = append(ht[string(keyBuf)], row)
	}
	out := &Table{
		Name:   l.Name + "_" + r.Name,
		Schema: append(prefixSchema(l), prefixSchema(r)...),
	}
	for _, prow := range probe.Rows {
		keyBuf = prow[pi].AppendKey(keyBuf[:0])
		for _, brow := range ht[string(keyBuf)] {
			lrow, rrow := prow, brow
			if swapped {
				lrow, rrow = brow, prow
			}
			nr := make(Row, 0, len(lrow)+len(rrow))
			nr = append(nr, lrow...)
			nr = append(nr, rrow...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// ThetaJoin computes the join of l and r keeping pairs that satisfy
// pred, which receives the left and right rows. This is the general
// (nested-loop) join used for ABS neighbor predicates that are not
// equality conditions.
func ThetaJoin(l, r *Table, pred func(left, right Row) bool) *Table {
	out := &Table{
		Name:   l.Name + "_" + r.Name,
		Schema: append(prefixSchema(l), prefixSchema(r)...),
	}
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			if pred(lr, rr) {
				nr := make(Row, 0, len(lr)+len(rr))
				nr = append(nr, lr...)
				nr = append(nr, rr...)
				out.Rows = append(out.Rows, nr)
			}
		}
	}
	return out
}

// PartitionedSelfJoin implements the ABS-step-as-self-join observation
// of Wang et al. (§2.1): agents (rows) interact only with "nearby"
// agents, so the self-join can be partitioned by a locality key and the
// partitions processed in parallel. partKey maps a row to its partition;
// pred and combine define the join condition and output row. Rows only
// join within a partition. The output schema is given by outSchema.
func PartitionedSelfJoin(t *Table, partKey func(Row) string,
	pred func(a, b Row) bool, combine func(a, b Row) Row,
	outSchema Schema, workers int) *Table {
	if workers < 1 {
		workers = 1
	}
	parts := make(map[string][]Row)
	for _, r := range t.Rows {
		k := partKey(r)
		parts[k] = append(parts[k], r)
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic output order

	results := make([][]Row, len(keys))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, k := range keys {
		wg.Add(1)
		go func(i int, rows []Row) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local []Row
			for _, a := range rows {
				for _, b := range rows {
					if pred(a, b) {
						local = append(local, combine(a, b))
					}
				}
			}
			results[i] = local
		}(i, parts[k])
	}
	wg.Wait()
	out := &Table{Name: t.Name + "_selfjoin", Schema: outSchema.Clone()}
	for _, rs := range results {
		out.Rows = append(out.Rows, rs...)
	}
	return out
}

// AggFunc identifies an aggregate function.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(a))
}

// Aggregate describes one aggregate output: fn applied to column Col
// (ignored for COUNT), labeled As in the output schema.
type Aggregate struct {
	Fn  AggFunc
	Col string
	As  string
}

type aggState struct {
	count    int64
	sum      float64
	min, max Value
	seen     bool
}

// GroupBy groups t by the given key columns and computes the requested
// aggregates per group. With no key columns, a single global group is
// produced (even over an empty input, matching SQL semantics for
// COUNT(*) = 0). Output schema is keys followed by aggregates.
func GroupBy(t *Table, keys []string, aggs []Aggregate) (*Table, error) {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		j, err := t.ColIndex(k)
		if err != nil {
			return nil, err
		}
		keyIdx[i] = j
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Fn == AggCount {
			aggIdx[i] = -1
			continue
		}
		j, err := t.ColIndex(a.Col)
		if err != nil {
			return nil, err
		}
		aggIdx[i] = j
	}

	type group struct {
		keyVals Row
		states  []aggState
	}
	groups := make(map[string]*group)
	order := []string{} // deterministic order of first appearance
	var keyBuf []byte   // reused binary key buffer; interned once per group
	for _, r := range t.Rows {
		keyBuf = appendRowKey(keyBuf[:0], r, keyIdx)
		g, ok := groups[string(keyBuf)]
		if !ok {
			kv := make(Row, len(keyIdx))
			for i, j := range keyIdx {
				kv[i] = r[j]
			}
			g = &group{keyVals: kv, states: make([]aggState, len(aggs))}
			k := string(keyBuf)
			groups[k] = g
			order = append(order, k)
		}
		for i := range aggs {
			st := &g.states[i]
			st.count++
			if aggIdx[i] < 0 {
				continue
			}
			v := r[aggIdx[i]]
			if v.IsNumeric() {
				st.sum += v.AsFloat()
			}
			if !st.seen || v.Less(st.min) {
				st.min = v
			}
			if !st.seen || st.max.Less(v) {
				st.max = v
			}
			st.seen = true
		}
	}
	if len(keys) == 0 && len(groups) == 0 {
		groups[""] = &group{states: make([]aggState, len(aggs))}
		order = append(order, "")
	}

	schema := make(Schema, 0, len(keys)+len(aggs))
	for i, k := range keys {
		schema = append(schema, Column{Name: k, Type: t.Schema[keyIdx[i]].Type})
	}
	for i, a := range aggs {
		name := a.As
		if name == "" {
			name = a.Fn.String() + "_" + a.Col
		}
		typ := TypeFloat
		if a.Fn == AggCount {
			typ = TypeInt
		} else if a.Fn == AggMin || a.Fn == AggMax {
			typ = t.Schema[aggIdx[i]].Type
		}
		schema = append(schema, Column{Name: name, Type: typ})
	}
	out, err := NewTable(t.Name+"_group", schema)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		g := groups[k]
		row := make(Row, 0, len(schema))
		row = append(row, g.keyVals...)
		for i, a := range aggs {
			st := g.states[i]
			switch a.Fn {
			case AggCount:
				row = append(row, Int(st.count))
			case AggSum:
				row = append(row, Float(st.sum))
			case AggAvg:
				if st.count == 0 {
					row = append(row, Float(0))
				} else {
					row = append(row, Float(st.sum/float64(st.count)))
				}
			case AggMin:
				row = append(row, st.min)
			case AggMax:
				row = append(row, st.max)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Union appends the rows of b to those of a; the schemas must match.
func Union(a, b *Table) (*Table, error) {
	if !a.Schema.Equal(b.Schema) {
		return nil, fmt.Errorf("%w: union of %q and %q", ErrSchema, a.Name, b.Name)
	}
	out := &Table{Name: a.Name, Schema: a.Schema.Clone()}
	out.Rows = make([]Row, 0, len(a.Rows)+len(b.Rows))
	out.Rows = append(out.Rows, a.Rows...)
	out.Rows = append(out.Rows, b.Rows...)
	return out, nil
}

// Distinct removes duplicate rows, preserving first-appearance order.
func Distinct(t *Table) *Table {
	seen := make(map[string]bool, len(t.Rows))
	out := &Table{Name: t.Name, Schema: t.Schema.Clone()}
	var keyBuf []byte // reused binary key buffer; interned once per distinct row
	for _, r := range t.Rows {
		keyBuf = keyBuf[:0]
		for _, v := range r {
			keyBuf = v.AppendKey(keyBuf)
		}
		if !seen[string(keyBuf)] {
			seen[string(keyBuf)] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// OrderBy sorts the table by the named column, ascending or descending,
// with a stable sort. It returns a new table.
func OrderBy(t *Table, col string, desc bool) (*Table, error) {
	j, err := t.ColIndex(col)
	if err != nil {
		return nil, err
	}
	out := &Table{Name: t.Name, Schema: t.Schema.Clone()}
	out.Rows = make([]Row, len(t.Rows))
	copy(out.Rows, t.Rows)
	sort.SliceStable(out.Rows, func(a, b int) bool {
		if desc {
			return out.Rows[b][j].Less(out.Rows[a][j])
		}
		return out.Rows[a][j].Less(out.Rows[b][j])
	})
	return out, nil
}

// Limit returns at most n rows of t.
func Limit(t *Table, n int) *Table {
	out := &Table{Name: t.Name, Schema: t.Schema.Clone()}
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	if n < 0 {
		n = 0
	}
	out.Rows = append(out.Rows, t.Rows[:n]...)
	return out
}

// Extend appends a computed column to each row.
func Extend(t *Table, name string, typ Type, f func(Row) Value) (*Table, error) {
	schema := append(t.Schema.Clone(), Column{Name: name, Type: typ})
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	out := &Table{Name: t.Name, Schema: schema}
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		nr := make(Row, 0, len(r)+1)
		nr = append(nr, r...)
		nr = append(nr, f(r))
		out.Rows[i] = nr
	}
	return out, nil
}
