package engine_test

import (
	"fmt"
	"log"

	"modeldata/internal/engine"
)

// ExampleDatabase_Query shows the SQL front end: the observation
// queries of §2.4 run as plain SQL text.
func ExampleDatabase_Query() {
	db := engine.NewDatabase()
	stmts := []string{
		`CREATE TABLE person (pid INT, age INT, state VARCHAR(1))`,
		`INSERT INTO person VALUES (1, 3, 'S'), (2, 34, 'I'), (3, 4, 'I'), (4, 61, 'R')`,
	}
	for _, s := range stmts {
		if _, err := db.Query(s); err != nil {
			log.Fatal(err)
		}
	}
	infected, err := db.QueryScalar(`SELECT COUNT(*) FROM person WHERE state = 'I'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("infected:", infected)

	preschool, err := db.Query(`SELECT pid FROM person WHERE age BETWEEN 0 AND 4 ORDER BY pid`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range preschool.Rows {
		fmt.Println("preschooler:", row[0])
	}
	// Output:
	// infected: 2
	// preschooler: 1
	// preschooler: 3
}

// ExampleFrom shows the fluent relational API equivalent.
func ExampleFrom() {
	t := engine.MustNewTable("sales", engine.Schema{
		{Name: "region", Type: engine.TypeString},
		{Name: "amt", Type: engine.TypeFloat},
	})
	t.MustInsert(engine.Str("east"), engine.Float(10))
	t.MustInsert(engine.Str("west"), engine.Float(20))
	t.MustInsert(engine.Str("east"), engine.Float(30))

	total, err := engine.From(t).
		WhereEq("region", engine.Str("east")).
		GroupBy(nil, engine.Aggregate{Fn: engine.AggSum, Col: "amt", As: "s"}).
		ScalarFloat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("east total:", total)
	// Output:
	// east total: 40
}
