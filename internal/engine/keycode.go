package engine

// Binary key encoding for joins, grouping, and duplicate elimination.
//
// Value.Key renders a human-readable string key, allocating on every
// call (strconv formatting plus concatenation). The hot operator paths
// instead use AppendKey, which appends a compact self-delimiting binary
// encoding into a caller-supplied buffer: callers reuse one buffer
// across rows and pay an allocation only when a new distinct key is
// interned into a hash table (map lookups with string(buf) compile to
// allocation-free probes).
//
// The encoding preserves the engine's key-equality semantics exactly:
// two Values produce identical encodings iff their Key() strings are
// equal. In particular an int64 that is exactly representable as a
// float64 shares its encoding with the equal float (cross-type numeric
// joins keep working), an unrepresentable int64 gets a tagged encoding
// of its own, every NaN payload collapses to one canonical NaN key, and
// -0 keeps a key distinct from +0 (matching strconv's "-0" vs "0").
// Unlike the old Key()+separator scheme, concatenated AppendKey
// encodings are injective even when string values contain the separator
// byte: strings are length-prefixed, not delimited.

import (
	"encoding/binary"
	"math"
)

// Key encoding tags. Each tagged payload is self-delimiting: numeric
// tags are followed by exactly eight bytes, the bool tag by one, and
// the string tag by a uvarint length plus that many bytes.
const (
	keyTagNum  byte = 'n' // float64 bits (also covers representable ints)
	keyTagBig  byte = 'i' // int64 not exactly representable as float64
	keyTagStr  byte = 's'
	keyTagBool byte = 'b'
)

// canonicalNaNBits is the single bit pattern all NaNs encode to, so
// that every NaN payload lands in the same hash bucket — mirroring
// Value.Key, where strconv renders every NaN as "NaN".
const canonicalNaNBits = 0x7ff8000000000000

// numKeyBits returns the hash-key bit pattern of a float64: its IEEE
// bits with NaNs canonicalized. -0 and +0 keep distinct patterns,
// matching Value.Key.
func numKeyBits(f float64) uint64 {
	if math.IsNaN(f) {
		return canonicalNaNBits
	}
	return math.Float64bits(f)
}

// intKeyBits returns the hash-key bit pattern for an int64 together
// with the tag identifying its key space: representable ints live in
// the float64 ("n") space so they collide with their float twins,
// unrepresentable ints live in the tagged int ("i") space.
func intKeyBits(i int64) (bits uint64, tag byte) {
	if floatRepresentable(i) {
		return math.Float64bits(float64(i)), keyTagNum
	}
	return uint64(i), keyTagBig
}

func appendTagged64(dst []byte, tag byte, bits uint64) []byte {
	return append(dst, tag,
		byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}

func appendStringKey(dst []byte, s string) []byte {
	dst = append(dst, keyTagStr)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBoolKey(dst []byte, b bool) []byte {
	if b {
		return append(dst, keyTagBool, 1)
	}
	return append(dst, keyTagBool, 0)
}

// AppendKey appends the binary key encoding of v to dst and returns the
// extended buffer. Append-only: with sufficient capacity it does not
// allocate, so operators can reuse one buffer across an entire scan.
// Encoding equality coincides with Key() string equality.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.typ {
	case TypeInt:
		bits, tag := intKeyBits(v.i)
		return appendTagged64(dst, tag, bits)
	case TypeFloat:
		return appendTagged64(dst, keyTagNum, numKeyBits(v.f))
	case TypeString:
		return appendStringKey(dst, v.s)
	case TypeBool:
		return appendBoolKey(dst, v.b)
	}
	return append(dst, '?')
}

// appendRowKey appends the composite key of the row restricted to the
// given column indexes. Concatenation of self-delimiting encodings is
// injective, so composite keys collide iff every component key matches.
func appendRowKey(dst []byte, r Row, idx []int) []byte {
	for _, j := range idx {
		dst = r[j].AppendKey(dst)
	}
	return dst
}
