package engine_test

// Operator micro-benchmarks, row vs columnar, over the shared
// enginebench workloads (external test package: enginebench imports
// engine). Run with:
//
//	go test -run '^$' -bench BenchmarkEngine -benchmem ./internal/engine/
//
// cmd/benchjson records the same workloads into BENCH_9.json.

import (
	"fmt"
	"testing"

	"modeldata/internal/enginebench"
)

func benchOp(b *testing.B, op string) {
	for _, w := range enginebench.Workloads() {
		if w.Op != op {
			continue
		}
		b.Run(fmt.Sprintf("rows=%d/row", w.Rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Row()
			}
		})
		b.Run(fmt.Sprintf("rows=%d/col", w.Rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Col()
			}
		})
	}
}

func BenchmarkEngineSelect(b *testing.B)   { benchOp(b, "Select") }
func BenchmarkEngineEquiJoin(b *testing.B) { benchOp(b, "EquiJoin") }
func BenchmarkEngineGroupBy(b *testing.B)  { benchOp(b, "GroupBy") }
func BenchmarkEngineDistinct(b *testing.B) { benchOp(b, "Distinct") }

// BenchmarkPlanner times join-heavy queries with the cost-based
// planner off (written join order) and on (reordered + pushdown).
// cmd/benchjson records the same pairs into BENCH_9.json.
func BenchmarkPlanner(b *testing.B) {
	for _, w := range enginebench.PlannerWorkloads() {
		b.Run(fmt.Sprintf("%s/rows=%d/off", w.Op, w.Rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.Off()
			}
		})
		b.Run(fmt.Sprintf("%s/rows=%d/on", w.Op, w.Rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w.On()
			}
		})
	}
}
