package engine

import (
	"math"
	"testing"
)

// Int64 exactness regression tests. float64 has 53 mantissa bits, so
// distinct int64 values above 2^53 can round to the same float64; the
// engine must nonetheless treat them as distinct keys and compare them
// without precision loss.

const two53 = int64(1) << 53 // 9007199254740992, the first gap

func TestLargeInt64KeysAreDistinct(t *testing.T) {
	// 2^53 and 2^53+1 round to the same float64 — the original bug
	// collapsed them into one join/group key.
	pairs := [][2]int64{
		{two53, two53 + 1},
		{-two53, -two53 - 1},
		{math.MaxInt64, math.MaxInt64 - 1},
		{math.MinInt64, math.MinInt64 + 1},
	}
	for _, p := range pairs {
		if Int(p[0]).Key() == Int(p[1]).Key() {
			t.Errorf("Int(%d) and Int(%d) share key %q", p[0], p[1], Int(p[0]).Key())
		}
	}
	// Representable ints still share keys with their float twins so
	// cross-type numeric joins keep working.
	if Int(two53).Key() != Float(float64(two53)).Key() {
		t.Fatal("exactly representable int lost its float key")
	}
	if Int(3).Key() != Float(3).Key() {
		t.Fatal("small numeric keys should match")
	}
}

func TestKeyEqualityCoincidesWithEqual(t *testing.T) {
	vals := []Value{
		Int(two53), Int(two53 + 1), Int(two53 + 2),
		Int(-two53), Int(-two53 - 1),
		Int(math.MaxInt64), Int(math.MinInt64),
		Int(0), Int(3),
		Float(float64(two53)), Float(float64(two53) + 2), Float(3), Float(3.5),
	}
	for _, a := range vals {
		for _, b := range vals {
			if (a.Key() == b.Key()) != a.Equal(b) {
				t.Errorf("Key/Equal disagree for %v vs %v: keys %q/%q equal=%v",
					a, b, a.Key(), b.Key(), a.Equal(b))
			}
		}
	}
}

func TestEqualExactAt2p53Boundary(t *testing.T) {
	if !Int(two53 + 1).Equal(Int(two53 + 1)) {
		t.Fatal("int self-equality lost")
	}
	if Int(two53 + 1).Equal(Int(two53)) {
		t.Fatal("distinct large ints compare equal")
	}
	// float64(2^53+1) rounds to 2^53: the mixed comparison must not.
	if Int(two53 + 1).Equal(Float(float64(two53))) {
		t.Fatal("Int(2^53+1) equals Float(2^53) via rounding")
	}
	if !Int(two53).Equal(Float(float64(two53))) {
		t.Fatal("exact mixed equality at 2^53 lost")
	}
	if Int(math.MaxInt64).Equal(Float(9.223372036854776e18)) {
		// 2^63 is out of int64 range; no int64 equals it.
		t.Fatal("MaxInt64 equals out-of-range float")
	}
	if Int(3).Equal(Float(3.5)) || !Int(3).Equal(Float(3)) {
		t.Fatal("small mixed equality broken")
	}
}

func TestLessExactAt2p53Boundary(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(two53), Int(two53 + 1), true},
		{Int(two53 + 1), Int(two53), false},
		{Int(-two53 - 1), Int(-two53), true},
		// float64(2^53+1) == 2^53.0, but the int is strictly greater.
		{Int(two53 + 1), Float(float64(two53)), false},
		{Float(float64(two53)), Int(two53 + 1), true},
		{Int(two53), Float(float64(two53)), false}, // equal, not less
		// Fractions just above an integer.
		{Int(5), Float(5.5), true},
		{Float(5.5), Int(6), true},
		{Float(5.5), Int(5), false},
		// Out-of-range floats bracket every int64.
		{Int(math.MaxInt64), Float(1e19), true},
		{Float(1e19), Int(math.MaxInt64), false},
		{Int(math.MinInt64), Float(-1e19), false},
		{Float(-1e19), Int(math.MinInt64), true},
		// NaN is neither less nor greater.
		{Int(0), Float(math.NaN()), false},
		{Float(math.NaN()), Int(0), false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestEquiJoinLargeInt64Keys is the end-to-end regression: joining on
// int64 IDs above 2^53 must match exact IDs only, not float64-rounded
// neighbors.
func TestEquiJoinLargeInt64Keys(t *testing.T) {
	left := MustNewTable("l", Schema{
		{Name: "id", Type: TypeInt},
		{Name: "tag", Type: TypeString},
	})
	left.MustInsert(Int(two53), Str("a"))
	left.MustInsert(Int(two53+1), Str("b"))
	left.MustInsert(Int(two53+2), Str("c"))
	right := MustNewTable("r", Schema{
		{Name: "rid", Type: TypeInt},
		{Name: "val", Type: TypeFloat},
	})
	right.MustInsert(Int(two53+1), Float(1))
	right.MustInsert(Int(two53+3), Float(2))

	out, err := EquiJoin(left, right, "id", "rid")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("join produced %d rows, want 1 (rounded keys matched)", out.Len())
	}
	if out.Rows[0][1].AsString() != "b" {
		t.Fatalf("joined wrong row: %v", out.Rows[0])
	}
}

func TestGroupByLargeInt64Keys(t *testing.T) {
	tbl := MustNewTable("t", Schema{
		{Name: "id", Type: TypeInt},
		{Name: "x", Type: TypeFloat},
	})
	tbl.MustInsert(Int(two53), Float(1))
	tbl.MustInsert(Int(two53+1), Float(2))
	tbl.MustInsert(Int(two53), Float(3))
	out, err := GroupBy(tbl, []string{"id"}, []Aggregate{{Fn: AggCount, Col: "x", As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("grouped into %d groups, want 2", out.Len())
	}
}

func TestDistinctLargeInt64(t *testing.T) {
	tbl := MustNewTable("t", Schema{{Name: "id", Type: TypeInt}})
	tbl.MustInsert(Int(two53))
	tbl.MustInsert(Int(two53 + 1))
	tbl.MustInsert(Int(two53))
	if got := Distinct(tbl).Len(); got != 2 {
		t.Fatalf("distinct kept %d rows, want 2", got)
	}
}

// TestQueryBranching pins the copy-on-branch builder semantics: a saved
// prefix can feed several derived queries without being mutated.
func TestQueryBranching(t *testing.T) {
	tbl := MustNewTable("person", Schema{
		{Name: "pid", Type: TypeInt},
		{Name: "age", Type: TypeInt},
	})
	tbl.MustInsert(Int(1), Int(3))
	tbl.MustInsert(Int(2), Int(34))
	tbl.MustInsert(Int(3), Int(4))
	tbl.MustInsert(Int(4), Int(61))

	base := From(tbl).WhereFloat("age", func(a float64) bool { return a >= 18 })

	// Branch 1: project to pid.
	ids, err := base.Select("pid").Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids.Schema) != 1 || ids.Len() != 2 {
		t.Fatalf("projected branch: %d cols × %d rows", len(ids.Schema), ids.Len())
	}
	// Branch 2: the prefix still has both columns and both rows.
	n, err := base.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("prefix count = %d after branching, want 2", n)
	}
	full, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Schema) != 2 {
		t.Fatalf("prefix schema narrowed to %d cols by a branch", len(full.Schema))
	}
	// Branch 3: a second filter stacks on the same prefix independently.
	old, err := base.WhereFloat("age", func(a float64) bool { return a > 40 }).Count()
	if err != nil {
		t.Fatal(err)
	}
	if old != 1 {
		t.Fatalf("second branch count = %d, want 1", old)
	}
	// Error latching stays per-branch: a bad column poisons only its
	// branch.
	if _, err := base.Select("nope").Run(); err == nil {
		t.Fatal("bad column did not error")
	}
	if _, err := base.Run(); err != nil {
		t.Fatalf("error leaked into the shared prefix: %v", err)
	}
}
