package plan

// Selectivity rules, in the classic System R tradition: exact formulas
// where statistics permit, fixed magic numbers where they don't. All
// estimates are clamped to [0,1]; the numbers only steer plan choice,
// so being wrong costs performance, never correctness.

// defaultSel is the selectivity assumed for predicates the model
// cannot see through (opaque column predicates, range predicates on
// columns without numeric stats).
const defaultSel = 0.33

// Selectivity estimates the fraction of rows of scan that satisfy e,
// using cat for column statistics. stats may be nil for sub-terms.
func Selectivity(cat Catalog, scan int, e Expr) float64 {
	switch t := e.(type) {
	case Cmp:
		return cmpSelectivity(cat, scan, t)
	case Between:
		cs, ok := cat.ColStats(scan, t.Col)
		if !ok || !cs.Numeric {
			return defaultSel
		}
		lo, okLo := t.Lo.Float()
		hi, okHi := t.Hi.Float()
		if !okLo || !okHi {
			return defaultSel
		}
		return rangeFraction(cs, lo, hi)
	case And:
		return clampSel(Selectivity(cat, scan, t.L) * Selectivity(cat, scan, t.R))
	case Or:
		a := Selectivity(cat, scan, t.L)
		b := Selectivity(cat, scan, t.R)
		return clampSel(a + b - a*b)
	case Not:
		return clampSel(1 - Selectivity(cat, scan, t.E))
	case ColPred:
		return defaultSel
	}
	return 1
}

func cmpSelectivity(cat Catalog, scan int, c Cmp) float64 {
	cs, ok := cat.ColStats(scan, c.Col)
	switch c.Op {
	case "=":
		if ok && cs.NDV > 0 {
			return clampSel(1 / float64(cs.NDV))
		}
		return 0.1
	case "<>", "!=":
		if ok && cs.NDV > 0 {
			return clampSel(1 - 1/float64(cs.NDV))
		}
		return 0.9
	case "<", "<=":
		if ok && cs.Numeric {
			if v, okV := c.Val.Float(); okV {
				return rangeFraction(cs, cs.Min, v)
			}
		}
		return defaultSel
	case ">", ">=":
		if ok && cs.Numeric {
			if v, okV := c.Val.Float(); okV {
				return rangeFraction(cs, v, cs.Max)
			}
		}
		return defaultSel
	}
	return 1
}

// rangeFraction estimates the fraction of a numeric column's rows that
// fall in [lo, hi], assuming a uniform distribution over [Min, Max].
func rangeFraction(cs ColStats, lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	if lo < cs.Min {
		lo = cs.Min
	}
	if cs.Max < hi {
		hi = cs.Max
	}
	if hi < lo {
		return 0
	}
	width := cs.Max - cs.Min
	if !(width > 0) {
		// Single-valued (or empty) column: the range either covers the
		// value or it doesn't, and the clamps above already decided.
		return 1
	}
	return clampSel((hi - lo) / width)
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// JoinCard estimates the cardinality of an equi-join producing from
// left rows joined to right rows on columns with the given NDVs,
// using |L|·|R| / max(ndvL, ndvR, 1).
func JoinCard(left, right float64, ndvL, ndvR int64) float64 {
	d := int64(1)
	if ndvL > d {
		d = ndvL
	}
	if ndvR > d {
		d = ndvR
	}
	return left * right / float64(d)
}
