package plan

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Node kinds.
const (
	KindScan      = "scan"
	KindFilter    = "filter"
	KindProject   = "project"
	KindJoin      = "join"
	KindAggregate = "aggregate"
	KindSort      = "sort"
	KindDistinct  = "distinct"
	KindLimit     = "limit"
	// KindOpaque marks an operation the planner cannot see through
	// (a func(Row) predicate or a computed column); it is a barrier
	// for every rewrite rule.
	KindOpaque = "opaque"
)

// AggSpec describes one aggregate output of an Aggregate node.
type AggSpec struct {
	Fn  string `json:"fn"`
	Col string `json:"col,omitempty"`
	As  string `json:"as,omitempty"`
}

// Node is one logical plan operator. A single struct (rather than a
// type per kind) keeps plans trivially serializable and comparable;
// Kind selects which fields are meaningful:
//
//	scan      Table, Alias, Cols, Rows
//	filter    Input, Pred
//	project   Input, Cols
//	join      Left, Right, LeftCol, RightCol, BuildLeft, EstRows
//	aggregate Input, Keys, Aggs
//	sort      Input, Col, Desc
//	distinct  Input
//	limit     Input, N
//	opaque    Input, Op
type Node struct {
	Kind string

	Table string
	Alias string
	Cols  []string
	Rows  int64

	// Partitions and BlocksPruned annotate storage-backed scans: how
	// many on-disk partitions (segments) the relation holds and how
	// many column blocks zone maps would prune for the scan's
	// predicate. Zero for in-memory scans.
	Partitions   int64
	BlocksPruned int64

	Pred Expr

	LeftCol   string
	RightCol  string
	BuildLeft bool
	EstRows   float64

	Keys []string
	Aggs []AggSpec

	Col  string
	Desc bool

	N int

	Op string

	Input *Node
	Left  *Node
	Right *Node
}

// Tree is a complete logical plan with rendering helpers.
type Tree struct {
	Root *Node
}

// Text renders the plan as a deterministic indented tree, child nodes
// two spaces deeper than their parent, join children left before right.
func (t *Tree) Text() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.line())
		b.WriteByte('\n')
		if n.Input != nil {
			walk(n.Input, depth+1)
		}
		if n.Left != nil {
			walk(n.Left, depth+1)
		}
		if n.Right != nil {
			walk(n.Right, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// line renders one node without its children.
func (n *Node) line() string {
	switch n.Kind {
	case KindScan:
		s := "scan " + n.Alias
		if n.Table != "" && n.Table != n.Alias {
			s += " (" + n.Table + ")"
		}
		s += " rows=" + strconv.FormatInt(n.Rows, 10)
		if len(n.Cols) > 0 {
			s += " cols=[" + strings.Join(n.Cols, ",") + "]"
		}
		if n.Partitions > 0 {
			s += " partitions=" + strconv.FormatInt(n.Partitions, 10)
		}
		if n.BlocksPruned > 0 {
			s += " blocks_pruned=" + strconv.FormatInt(n.BlocksPruned, 10)
		}
		return s
	case KindFilter:
		return "filter " + n.Pred.String()
	case KindProject:
		return "project [" + strings.Join(n.Cols, ",") + "]"
	case KindJoin:
		side := "right"
		if n.BuildLeft {
			side = "left"
		}
		return fmt.Sprintf("join %s = %s build=%s est_rows=%s",
			n.LeftCol, n.RightCol, side, formatEst(n.EstRows))
	case KindAggregate:
		var parts []string
		for _, a := range n.Aggs {
			p := a.Fn
			if a.Col != "" {
				p += "(" + a.Col + ")"
			} else {
				p += "(*)"
			}
			if a.As != "" {
				p += " as " + a.As
			}
			parts = append(parts, p)
		}
		return "aggregate keys=[" + strings.Join(n.Keys, ",") + "] aggs=[" + strings.Join(parts, ", ") + "]"
	case KindSort:
		dir := "asc"
		if n.Desc {
			dir = "desc"
		}
		return "sort " + n.Col + " " + dir
	case KindDistinct:
		return "distinct"
	case KindLimit:
		return "limit " + strconv.Itoa(n.N)
	case KindOpaque:
		return "opaque " + n.Op
	}
	return n.Kind
}

// formatEst renders estimated cardinalities compactly and stably.
func formatEst(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// JSON renders the plan as its canonical JSON form.
func (t *Tree) JSON() ([]byte, error) { return json.Marshal(t.Root) }

// FromJSON parses a plan previously rendered by JSON.
func FromJSON(data []byte) (*Tree, error) {
	var n Node
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, err
	}
	return &Tree{Root: &n}, nil
}

// Fingerprint returns a short stable hash of the plan's JSON form,
// usable as a cache key.
func (t *Tree) Fingerprint() string {
	data, err := t.JSON()
	if err != nil {
		return "plan-unencodable"
	}
	h := fnv.New64a()
	h.Write(data)
	return strconv.FormatUint(h.Sum64(), 16)
}

// --- JSON encoding ---
//
// Expr is an interface, so Node and Expr marshal through kind-tagged
// mirror structs. Literal payloads are rendered as strings (via
// Lit.String-compatible formatting without quotes), which keeps NaN
// and ±Inf floats representable in JSON.

type jsonLit struct {
	Kind string `json:"kind"`
	V    string `json:"v"`
}

type jsonExpr struct {
	Kind string    `json:"kind"` // cmp, between, and, or, not, colpred
	Op   string    `json:"op,omitempty"`
	Col  string    `json:"col,omitempty"`
	Val  *jsonLit  `json:"val,omitempty"`
	Lo   *jsonLit  `json:"lo,omitempty"`
	Hi   *jsonLit  `json:"hi,omitempty"`
	Fn   string    `json:"fn,omitempty"`
	Ref  int       `json:"ref,omitempty"`
	L    *jsonExpr `json:"l,omitempty"`
	R    *jsonExpr `json:"r,omitempty"`
}

func litToJSON(l Lit) *jsonLit {
	var v string
	switch l.Kind {
	case LitInt:
		v = strconv.FormatInt(l.I, 10)
	case LitFloat:
		v = strconv.FormatFloat(l.F, 'g', -1, 64)
	case LitString:
		v = l.S
	case LitBool:
		v = strconv.FormatBool(l.B)
	}
	return &jsonLit{Kind: l.Kind.String(), V: v}
}

func litFromJSON(j *jsonLit) (Lit, error) {
	if j == nil {
		return Lit{}, fmt.Errorf("plan: missing literal")
	}
	switch j.Kind {
	case "int":
		i, err := strconv.ParseInt(j.V, 10, 64)
		if err != nil {
			return Lit{}, fmt.Errorf("plan: bad int literal %q", j.V)
		}
		return IntLit(i), nil
	case "float":
		f, err := strconv.ParseFloat(j.V, 64)
		if err != nil {
			return Lit{}, fmt.Errorf("plan: bad float literal %q", j.V)
		}
		return FloatLit(f), nil
	case "string":
		return StringLit(j.V), nil
	case "bool":
		return BoolLit(j.V == "true"), nil
	}
	return Lit{}, fmt.Errorf("plan: unknown literal kind %q", j.Kind)
}

func exprToJSON(e Expr) *jsonExpr {
	switch t := e.(type) {
	case Cmp:
		return &jsonExpr{Kind: "cmp", Op: t.Op, Col: t.Col, Val: litToJSON(t.Val)}
	case Between:
		return &jsonExpr{Kind: "between", Col: t.Col, Lo: litToJSON(t.Lo), Hi: litToJSON(t.Hi)}
	case And:
		return &jsonExpr{Kind: "and", L: exprToJSON(t.L), R: exprToJSON(t.R)}
	case Or:
		return &jsonExpr{Kind: "or", L: exprToJSON(t.L), R: exprToJSON(t.R)}
	case Not:
		return &jsonExpr{Kind: "not", L: exprToJSON(t.E)}
	case ColPred:
		return &jsonExpr{Kind: "colpred", Col: t.Col, Fn: t.Fn, Ref: t.Ref}
	}
	return nil
}

func exprFromJSON(j *jsonExpr) (Expr, error) {
	if j == nil {
		return nil, nil
	}
	switch j.Kind {
	case "cmp":
		v, err := litFromJSON(j.Val)
		if err != nil {
			return nil, err
		}
		return Cmp{Op: j.Op, Col: j.Col, Val: v}, nil
	case "between":
		lo, err := litFromJSON(j.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := litFromJSON(j.Hi)
		if err != nil {
			return nil, err
		}
		return Between{Col: j.Col, Lo: lo, Hi: hi}, nil
	case "and", "or", "not":
		l, err := exprFromJSON(j.L)
		if err != nil {
			return nil, err
		}
		if j.Kind == "not" {
			return Not{E: l}, nil
		}
		r, err := exprFromJSON(j.R)
		if err != nil {
			return nil, err
		}
		if j.Kind == "and" {
			return And{L: l, R: r}, nil
		}
		return Or{L: l, R: r}, nil
	case "colpred":
		return ColPred{Col: j.Col, Fn: j.Fn, Ref: j.Ref}, nil
	}
	return nil, fmt.Errorf("plan: unknown expr kind %q", j.Kind)
}

type jsonNode struct {
	Kind         string    `json:"kind"`
	Table        string    `json:"table,omitempty"`
	Alias        string    `json:"alias,omitempty"`
	Cols         []string  `json:"cols,omitempty"`
	Rows         int64     `json:"rows,omitempty"`
	Partitions   int64     `json:"partitions,omitempty"`
	BlocksPruned int64     `json:"blocks_pruned,omitempty"`
	Pred         *jsonExpr `json:"pred,omitempty"`
	LeftCol      string    `json:"left_col,omitempty"`
	RightCol     string    `json:"right_col,omitempty"`
	BuildLeft    bool      `json:"build_left,omitempty"`
	EstRows      float64   `json:"est_rows,omitempty"`
	Keys         []string  `json:"keys,omitempty"`
	Aggs         []AggSpec `json:"aggs,omitempty"`
	Col          string    `json:"col,omitempty"`
	Desc         bool      `json:"desc,omitempty"`
	N            int       `json:"n,omitempty"`
	Op           string    `json:"op,omitempty"`
	Input        *jsonNode `json:"input,omitempty"`
	Left         *jsonNode `json:"left,omitempty"`
	Right        *jsonNode `json:"right,omitempty"`
}

func nodeToJSON(n *Node) *jsonNode {
	if n == nil {
		return nil
	}
	return &jsonNode{
		Kind: n.Kind, Table: n.Table, Alias: n.Alias, Cols: n.Cols, Rows: n.Rows,
		Partitions: n.Partitions, BlocksPruned: n.BlocksPruned,
		Pred: exprToJSON(n.Pred), LeftCol: n.LeftCol, RightCol: n.RightCol,
		BuildLeft: n.BuildLeft, EstRows: n.EstRows, Keys: n.Keys, Aggs: n.Aggs,
		Col: n.Col, Desc: n.Desc, N: n.N, Op: n.Op,
		Input: nodeToJSON(n.Input), Left: nodeToJSON(n.Left), Right: nodeToJSON(n.Right),
	}
}

func nodeFromJSON(j *jsonNode) (*Node, error) {
	if j == nil {
		return nil, nil
	}
	pred, err := exprFromJSON(j.Pred)
	if err != nil {
		return nil, err
	}
	input, err := nodeFromJSON(j.Input)
	if err != nil {
		return nil, err
	}
	left, err := nodeFromJSON(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := nodeFromJSON(j.Right)
	if err != nil {
		return nil, err
	}
	return &Node{
		Kind: j.Kind, Table: j.Table, Alias: j.Alias, Cols: j.Cols, Rows: j.Rows,
		Partitions: j.Partitions, BlocksPruned: j.BlocksPruned,
		Pred: pred, LeftCol: j.LeftCol, RightCol: j.RightCol,
		BuildLeft: j.BuildLeft, EstRows: j.EstRows, Keys: j.Keys, Aggs: j.Aggs,
		Col: j.Col, Desc: j.Desc, N: j.N, Op: j.Op,
		Input: input, Left: left, Right: right,
	}, nil
}

// MarshalJSON implements json.Marshaler.
func (n *Node) MarshalJSON() ([]byte, error) { return json.Marshal(nodeToJSON(n)) }

// UnmarshalJSON implements json.Unmarshaler.
func (n *Node) UnmarshalJSON(data []byte) error {
	var j jsonNode
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	dn, err := nodeFromJSON(&j)
	if err != nil {
		return err
	}
	*n = *dn
	return nil
}
