package plan

import (
	"math"
	"strings"
	"testing"
)

// fakeCat is a hand-filled Catalog for optimizer tests.
type fakeCat struct {
	rows []int64
	cols []map[string]ColStats
}

func (c *fakeCat) ScanRows(scan int) int64 {
	if scan < 0 || scan >= len(c.rows) {
		return 0
	}
	return c.rows[scan]
}

func (c *fakeCat) ColStats(scan int, col string) (ColStats, bool) {
	if scan < 0 || scan >= len(c.cols) || c.cols[scan] == nil {
		return ColStats{}, false
	}
	cs, ok := c.cols[scan][strings.ToLower(col)]
	return cs, ok
}

func TestExprString(t *testing.T) {
	e := And{
		L: Or{
			L: Cmp{Op: ">", Col: "val", Val: FloatLit(1.5)},
			R: Between{Col: "id", Lo: IntLit(3), Hi: IntLit(9)},
		},
		R: Not{E: Cmp{Op: "=", Col: "tag", Val: StringLit("it's")}},
	}
	want := "((val > 1.5 or id between 3 and 9) and not tag = 'it''s')"
	if got := e.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestColumnsAndConjuncts(t *testing.T) {
	e := And{
		L: And{
			L: Cmp{Op: "=", Col: "a", Val: IntLit(1)},
			R: ColPred{Col: "B", Fn: "float", Ref: 2},
		},
		R: Cmp{Op: "<", Col: "a", Val: IntLit(9)},
	}
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "B" {
		t.Fatalf("Columns = %v", cols)
	}
	cj := Conjuncts(e)
	if len(cj) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cj))
	}
	if cj[0].String() != "a = 1" || cj[2].String() != "a < 9" {
		t.Fatalf("conjunct order wrong: %v", cj)
	}
}

func TestRenameCols(t *testing.T) {
	e := Or{
		L: Cmp{Op: "=", Col: "x", Val: IntLit(1)},
		R: Not{E: Between{Col: "y", Lo: IntLit(0), Hi: IntLit(5)}},
	}
	r := RenameCols(e, func(c string) string { return "t." + c })
	want := "(t.x = 1 or not t.y between 0 and 5)"
	if got := r.String(); got != want {
		t.Fatalf("renamed = %q, want %q", got, want)
	}
	// Original untouched (Exprs are values).
	if strings.Contains(e.String(), "t.") {
		t.Fatalf("RenameCols mutated its input: %s", e)
	}
}

// sampleTree builds a plan exercising every node kind and every Expr
// form, including literals JSON cannot natively hold (NaN, ±Inf).
func sampleTree() *Tree {
	scanA := &Node{Kind: KindScan, Table: "events", Alias: "e", Rows: 10000, Cols: []string{"id", "val"}}
	filt := &Node{Kind: KindFilter, Input: scanA, Pred: And{
		L: Cmp{Op: ">=", Col: "val", Val: FloatLit(math.Inf(-1))},
		R: Or{
			L: Between{Col: "id", Lo: IntLit(10), Hi: IntLit(20)},
			R: Not{E: ColPred{Col: "val", Fn: "float", Ref: 3}},
		},
	}}
	scanB := &Node{Kind: KindScan, Table: "users", Alias: "u", Rows: 64}
	join := &Node{
		Kind: KindJoin, Left: filt, Right: scanB,
		LeftCol: "e.uid", RightCol: "u.id", BuildLeft: false, EstRows: 156.25,
	}
	agg := &Node{Kind: KindAggregate, Input: join, Keys: []string{"u.name"},
		Aggs: []AggSpec{{Fn: "count"}, {Fn: "sum", Col: "val", As: "total"}}}
	srt := &Node{Kind: KindSort, Input: agg, Col: "total", Desc: true}
	lim := &Node{Kind: KindLimit, Input: srt, N: 5}
	op := &Node{Kind: KindOpaque, Input: lim, Op: "extend rank"}
	return &Tree{Root: op}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	tr := sampleTree()
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("round trip not byte-stable:\n%s\n%s", data, data2)
	}
	if tr.Text() != back.Text() {
		t.Fatalf("text render changed across round trip:\n%s\n%s", tr.Text(), back.Text())
	}
	if tr.Fingerprint() != back.Fingerprint() {
		t.Fatal("fingerprint changed across round trip")
	}
}

func TestTreeTextDeterministic(t *testing.T) {
	a, b := sampleTree().Text(), sampleTree().Text()
	if a != b {
		t.Fatal("Text() not deterministic")
	}
	for _, want := range []string{
		"opaque extend rank",
		"limit 5",
		"sort total desc",
		"aggregate keys=[u.name] aggs=[count(*), sum(val) as total]",
		"join e.uid = u.id build=right est_rows=156.25",
		"scan e (events) rows=10000 cols=[id,val]",
		"scan u (users) rows=64",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("Text() missing %q:\n%s", want, a)
		}
	}
}

func TestSelectivity(t *testing.T) {
	cat := &fakeCat{
		rows: []int64{1000},
		cols: []map[string]ColStats{{
			"gid": {NDV: 50, Min: 0, Max: 49, Numeric: true},
			"val": {NDV: 1000, Min: 0, Max: 100, Numeric: true},
		}},
	}
	if got := Selectivity(cat, 0, Cmp{Op: "=", Col: "gid", Val: IntLit(7)}); got != 0.02 {
		t.Fatalf("eq sel = %v, want 0.02", got)
	}
	if got := Selectivity(cat, 0, Cmp{Op: ">", Col: "val", Val: FloatLit(75)}); got != 0.25 {
		t.Fatalf("range sel = %v, want 0.25", got)
	}
	if got := Selectivity(cat, 0, Between{Col: "val", Lo: FloatLit(0), Hi: FloatLit(200)}); got != 1 {
		t.Fatalf("clamped between sel = %v, want 1", got)
	}
	if got := Selectivity(cat, 0, Cmp{Op: "=", Col: "nostats", Val: IntLit(1)}); got != 0.1 {
		t.Fatalf("no-stats eq sel = %v, want 0.1", got)
	}
	and := And{
		L: Cmp{Op: "=", Col: "gid", Val: IntLit(7)},
		R: Cmp{Op: ">", Col: "val", Val: FloatLit(75)},
	}
	if got := Selectivity(cat, 0, and); got != 0.02*0.25 {
		t.Fatalf("and sel = %v", got)
	}
	if got := Selectivity(cat, 0, ColPred{Col: "val", Fn: "float"}); got != defaultSel {
		t.Fatalf("colpred sel = %v, want %v", got, defaultSel)
	}
}

func TestJoinCard(t *testing.T) {
	if got := JoinCard(1000, 50, 50, 50); got != 1000 {
		t.Fatalf("JoinCard = %v, want 1000", got)
	}
	if got := JoinCard(10, 10, 0, 0); got != 100 {
		t.Fatalf("JoinCard with zero NDVs = %v, want 100", got)
	}
}

// starRegion is a 3-table star: a big fact scan joined to a selective
// tiny dimension (written second) and a larger one (written first).
// Cost-based ordering should take the tiny join before the medium one.
func starRegion() (*fakeCat, *RegionSpec) {
	cat := &fakeCat{
		rows: []int64{100000, 512, 4},
		cols: []map[string]ColStats{
			{
				"gid": {NDV: 512, Min: 0, Max: 511, Numeric: true},
				"tag": {NDV: 1000},
			},
			{"gid": {NDV: 512, Min: 0, Max: 511, Numeric: true}},
			{"tag": {NDV: 4}},
		},
	}
	region := &RegionSpec{
		Scans: []ScanSpec{
			{Table: "fact", Alias: "fact", Rows: 100000},
			{Table: "med", Alias: "med", Rows: 512},
			{Table: "tiny", Alias: "tiny", Rows: 4},
		},
		Joins: []JoinSpec{
			{Left: 0, LeftCol: "gid", RightCol: "gid"},
			{Left: 0, LeftCol: "tag", RightCol: "tag"},
		},
	}
	return cat, region
}

func TestChooseReordersStar(t *testing.T) {
	cat, region := starRegion()
	c := Choose(cat, region)
	if c == nil {
		t.Fatal("Choose returned nil")
	}
	if !c.Reordered {
		t.Fatalf("expected reorder, got order %v", c.Order)
	}
	// The tiny join (edge 1) must execute before the med join (edge 0).
	if c.Steps[0].Edge != 1 || c.Steps[1].Edge != 0 {
		t.Fatalf("step edges = [%d %d], want [1 0]", c.Steps[0].Edge, c.Steps[1].Edge)
	}
	w := WrittenOrder(cat, region)
	if w == nil {
		t.Fatal("WrittenOrder returned nil")
	}
	if w.Reordered {
		t.Fatal("WrittenOrder must not report reordering")
	}
	if !(c.Cost < w.Cost) {
		t.Fatalf("chosen cost %v not below written cost %v", c.Cost, w.Cost)
	}
}

func TestChooseDeterministic(t *testing.T) {
	cat, region := starRegion()
	a, b := Choose(cat, region), Choose(cat, region)
	if a.Cost != b.Cost {
		t.Fatal("Choose cost not deterministic")
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("Choose order not deterministic: %v vs %v", a.Order, b.Order)
		}
	}
}

func TestWrittenOrderIsWritten(t *testing.T) {
	cat, region := starRegion()
	w := WrittenOrder(cat, region)
	for i, s := range w.Order {
		if s != i {
			t.Fatalf("WrittenOrder order = %v", w.Order)
		}
	}
	for j, st := range w.Steps {
		if st.Edge != j || st.RightScan != j+1 {
			t.Fatalf("step %d = %+v", j, st)
		}
	}
}

func TestBuildTreePushedFilters(t *testing.T) {
	cat, region := starRegion()
	region.Filters = []FilterSpec{
		{Scan: 0, Pos: 2, Pred: Cmp{Op: ">", Col: "val", Val: FloatLit(10)}},
	}
	region.Post = []Expr{Cmp{Op: "=", Col: "fact.gid", Val: IntLit(3)}}
	c := Choose(cat, region)
	root := BuildTree(region, c)
	// Root is the post filter; below it joins; the pushed filter sits
	// directly above the fact scan.
	if root.Kind != KindFilter || root.Pred.String() != "fact.gid = 3" {
		t.Fatalf("root = %s", root.line())
	}
	text := (&Tree{Root: root}).Text()
	idxFilter := strings.Index(text, "filter val > 10")
	idxScan := strings.Index(text, "scan fact")
	idxJoin := strings.Index(text, "join ")
	if idxFilter < 0 || idxScan < 0 || idxJoin < 0 {
		t.Fatalf("missing nodes:\n%s", text)
	}
	if !(idxJoin < idxFilter && idxFilter < idxScan) {
		t.Fatalf("pushed filter not between join and scan:\n%s", text)
	}
}
