package plan

// The optimizer works on a "join region": the maximal prefix of a
// query made of scans, equi-joins, and pushable filters. The physical
// layer lowers that prefix into a RegionSpec, Choose picks a join
// order and build sides by estimated cardinality, and the executor
// runs the chosen order. Everything downstream of the region (opaque
// predicates, projections, aggregates, sorts) executes as written.

// ScanSpec describes one base table input of a join region. Scans are
// indexed by written order: scan 0 is the query's source table, scan
// k is the right input of the k'th join.
type ScanSpec struct {
	Table string
	Alias string
	Rows  int64
	// Cols lists the physical columns the region needs from this scan
	// (projection pruning); empty means all.
	Cols []string
}

// JoinSpec is one written equi-join edge: join j matches LeftCol of
// scan Left (some scan with index ≤ j) against RightCol of scan j+1.
// The edges form a tree over the scans — each join introduces exactly
// one new scan.
type JoinSpec struct {
	Left     int
	LeftCol  string
	RightCol string
}

// FilterSpec is a single-scan filter eligible for pushdown. Pos is the
// number of joins already recorded when the filter was written (so a
// filter with Pos > Scan has been pushed below at least one join);
// Pred's column names are bare (scan-local).
type FilterSpec struct {
	Scan int
	Pos  int
	Pred Expr
}

// RegionSpec is a lowered join region: the scans, the written join
// edges, the pushable single-scan filters, and any residual filters
// that reference multiple scans (applied after all joins, as written).
type RegionSpec struct {
	Scans   []ScanSpec
	Joins   []JoinSpec
	Filters []FilterSpec
	// Post holds multi-scan filters in output (qualified) column names.
	Post []Expr
}

// JoinStep is one executed join of a chosen order: the accumulated
// intermediate (containing LeftScan) joined to scan RightScan on the
// written edge Edge.
type JoinStep struct {
	LeftScan  int
	LeftCol   string
	RightScan int
	RightCol  string
	// Edge is the index of the written JoinSpec this step executes.
	Edge int
	// BuildLeft reports the cost model's guess at the smaller side;
	// the executor may override it with observed cardinalities.
	BuildLeft bool
	// Est is the estimated output cardinality of this step.
	Est float64
}

// Choice is the optimizer's decision for one region.
type Choice struct {
	// Order is the scan visit order; Order[0] is the start scan.
	Order []int
	Steps []JoinStep
	// EstScan is the post-filter cardinality estimate per scan,
	// indexed by written scan index.
	EstScan []float64
	Cost    float64
	// Reordered reports whether Order differs from written order.
	Reordered bool
}

// ndvOf returns the NDV of a join column, falling back to the scan's
// row count (every row distinct) when no statistics are available.
func ndvOf(cat Catalog, scan int, col string) int64 {
	if cs, ok := cat.ColStats(scan, col); ok && cs.NDV > 0 {
		return cs.NDV
	}
	r := cat.ScanRows(scan)
	if r < 1 {
		return 1
	}
	return r
}

// filteredEst returns the estimated post-filter cardinality of every
// scan: rows × the product of its pushed filters' selectivities.
func filteredEst(cat Catalog, region *RegionSpec) []float64 {
	f := make([]float64, len(region.Scans))
	for i := range region.Scans {
		f[i] = float64(cat.ScanRows(i))
	}
	for _, fl := range region.Filters {
		f[fl.Scan] *= Selectivity(cat, fl.Scan, fl.Pred)
	}
	return f
}

// Choose picks a join order for the region by greedy cardinality
// estimation: for every possible start scan it grows the join tree one
// adjacent scan at a time, always taking the candidate that minimizes
// the estimated intermediate cardinality, then keeps the start whose
// complete order has the lowest total cost (sum of intermediate sizes
// plus hash-build sizes). Deterministic: ties resolve to the lower
// scan index, comparisons are strict.
func Choose(cat Catalog, region *RegionSpec) *Choice {
	n := len(region.Scans)
	m := len(region.Joins)
	f := filteredEst(cat, region)
	if n == 0 || m != n-1 {
		return nil
	}

	var best *Choice
	for start := 0; start < n; start++ {
		in := make([]bool, n)
		in[start] = true
		order := []int{start}
		steps := make([]JoinStep, 0, m)
		cur := f[start]
		cost := 0.0
		ok := true
		for len(order) < n {
			bestCand := -1
			bestEdge := -1
			var bestSetScan int
			var bestSetCol, bestCandCol string
			bestEst := 0.0
			for c := 0; c < n; c++ {
				if in[c] {
					continue
				}
				edge, setScan, setCol, candCol := -1, -1, "", ""
				for j, js := range region.Joins {
					l, r := js.Left, j+1
					if l == c && in[r] {
						edge, setScan, setCol, candCol = j, r, js.RightCol, js.LeftCol
						break
					}
					if r == c && in[l] {
						edge, setScan, setCol, candCol = j, l, js.LeftCol, js.RightCol
						break
					}
				}
				if edge < 0 {
					continue
				}
				est := JoinCard(cur, f[c], ndvOf(cat, setScan, setCol), ndvOf(cat, c, candCol))
				if bestCand < 0 || est < bestEst {
					bestCand, bestEdge, bestEst = c, edge, est
					bestSetScan, bestSetCol, bestCandCol = setScan, setCol, candCol
				}
			}
			if bestCand < 0 {
				ok = false
				break
			}
			build := cur
			if f[bestCand] < build {
				build = f[bestCand]
			}
			cost += bestEst + build
			steps = append(steps, JoinStep{
				LeftScan:  bestSetScan,
				LeftCol:   bestSetCol,
				RightScan: bestCand,
				RightCol:  bestCandCol,
				Edge:      bestEdge,
				BuildLeft: cur < f[bestCand],
				Est:       bestEst,
			})
			in[bestCand] = true
			order = append(order, bestCand)
			cur = bestEst
		}
		if !ok {
			continue
		}
		if best == nil || cost < best.Cost {
			reordered := false
			for i, s := range order {
				if s != i {
					reordered = true
					break
				}
			}
			best = &Choice{
				Order:     order,
				Steps:     steps,
				EstScan:   f,
				Cost:      cost,
				Reordered: reordered,
			}
		}
	}
	return best
}

// WrittenOrder returns the Choice describing the region executed in
// written order — scan 0 first, then each join as written — with cost
// estimates filled in. The executor uses it when it skips reordering
// (single-join regions); EXPLAIN uses it to render the written plan.
func WrittenOrder(cat Catalog, region *RegionSpec) *Choice {
	n := len(region.Scans)
	m := len(region.Joins)
	if n == 0 || m != n-1 {
		return nil
	}
	f := filteredEst(cat, region)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	steps := make([]JoinStep, 0, m)
	cur := f[0]
	cost := 0.0
	for j, js := range region.Joins {
		r := j + 1
		est := JoinCard(cur, f[r], ndvOf(cat, js.Left, js.LeftCol), ndvOf(cat, r, js.RightCol))
		build := cur
		if f[r] < build {
			build = f[r]
		}
		cost += est + build
		steps = append(steps, JoinStep{
			LeftScan:  js.Left,
			LeftCol:   js.LeftCol,
			RightScan: r,
			RightCol:  js.RightCol,
			Edge:      j,
			BuildLeft: cur < f[r],
			Est:       est,
		})
		cur = est
	}
	return &Choice{Order: order, Steps: steps, EstScan: f, Cost: cost}
}

// BuildTree renders the region under a chosen order as a logical plan
// tree (for EXPLAIN). Pushed filters sit directly above their scan;
// residual multi-scan filters sit above the last join.
func BuildTree(region *RegionSpec, c *Choice) *Node {
	scanNode := func(i int) *Node {
		n := &Node{
			Kind:  KindScan,
			Table: region.Scans[i].Table,
			Alias: region.Scans[i].Alias,
			Rows:  region.Scans[i].Rows,
			Cols:  region.Scans[i].Cols,
		}
		var out *Node = n
		for _, fl := range region.Filters {
			if fl.Scan == i {
				out = &Node{Kind: KindFilter, Pred: fl.Pred, Input: out}
			}
		}
		return out
	}
	root := scanNode(c.Order[0])
	for _, st := range c.Steps {
		root = &Node{
			Kind:      KindJoin,
			Left:      root,
			Right:     scanNode(st.RightScan),
			LeftCol:   region.Scans[st.LeftScan].Alias + "." + st.LeftCol,
			RightCol:  region.Scans[st.RightScan].Alias + "." + st.RightCol,
			BuildLeft: st.BuildLeft,
			EstRows:   st.Est,
		}
	}
	for _, p := range region.Post {
		root = &Node{Kind: KindFilter, Pred: p, Input: root}
	}
	return root
}
